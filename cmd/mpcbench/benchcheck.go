package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchcheck compares `go test -bench` output against the committed
// BENCH_BASELINE.json and fails when any benchmark regresses past the
// ratio threshold. It is the CI bench-smoke gate: the smoke lane runs
// every delivery-path benchmark once (-benchtime 1x) and pipes the
// output here, so engine regressions fail loudly instead of drifting in
// silently. Benchmarks absent from the baseline (new ones) and baseline
// entries not exercised by the run (other packages) are reported but
// never fatal — only a measured regression fails the check.

// baselineFile mirrors the committed BENCH_BASELINE.json schema.
type baselineFile struct {
	Description string          `json:"description"`
	Benchmarks  []baselineEntry `json:"benchmarks"`
}

type baselineEntry struct {
	Package string  `json:"package"`
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// MaxRatio, when > 0, overrides the command-line ratio threshold
	// for this one benchmark. Used to hold hot paths to a tighter gate
	// than the lane-wide default — e.g. the tracing-disabled round path
	// is pinned at 1.05 so observability never taxes normal runs.
	MaxRatio float64 `json:"max_ratio,omitempty"`
}

// parseBenchOutput extracts (package, benchmark) -> ns/op from `go test
// -bench` text output. Benchmark names carry a -GOMAXPROCS suffix that
// is stripped to match baseline names.
func parseBenchOutput(r io.Reader) (map[[2]string]float64, error) {
	out := map[[2]string]float64{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Expect: Name-N  iterations  ns  "ns/op"  [...]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[[2]string{pkg, name}] = ns
	}
	return out, sc.Err()
}

// runBenchCheck returns the number of regressions (benchmarks slower
// than maxRatio × baseline) and prints a comparison report to w.
func runBenchCheck(w io.Writer, baselinePath, benchOutPath string, maxRatio float64) (int, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("read baseline: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("parse baseline: %w", err)
	}
	var in io.Reader = os.Stdin
	if benchOutPath != "" && benchOutPath != "-" {
		f, err := os.Open(benchOutPath)
		if err != nil {
			return 0, fmt.Errorf("open bench output: %w", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		return 0, fmt.Errorf("parse bench output: %w", err)
	}

	baseline := map[[2]string]float64{}
	for _, e := range base.Benchmarks {
		baseline[[2]string{e.Package, e.Name}] = e.NsPerOp
	}
	regressions, compared, unknown := 0, 0, 0
	for _, e := range base.Benchmarks {
		key := [2]string{e.Package, e.Name}
		ns, ok := measured[key]
		if !ok || e.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := ns / e.NsPerOp
		limit := maxRatio
		if e.MaxRatio > 0 {
			limit = e.MaxRatio
		}
		status := "ok"
		if ratio > limit {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-11s %-34s %-28s %12.0f ns baseline %12.0f ns ratio %.2f (limit %.2fx)\n",
			status, e.Package, e.Name, ns, e.NsPerOp, ratio, limit)
	}
	for key := range measured {
		if _, ok := baseline[key]; !ok {
			unknown++
		}
	}
	fmt.Fprintf(w, "benchcheck: %d compared, %d regressions (threshold %.1fx), %d benchmarks not in baseline\n",
		compared, regressions, maxRatio, unknown)
	return regressions, nil
}
