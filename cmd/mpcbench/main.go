// Command mpcbench regenerates the tutorial's tables and figures on the
// MPC simulator and prints paper-formula vs. measured values.
//
// Usage:
//
//	mpcbench                 # run every experiment (E01..E20)
//	mpcbench -run E07,E10    # run a subset
//	mpcbench -markdown       # emit GitHub-flavored markdown (EXPERIMENTS.md body)
//	mpcbench -list           # list experiment IDs and titles
//
// It also carries the CI benchmark gate:
//
//	go test -bench . -benchtime 1x ./... | mpcbench -benchcheck -
//
// which compares each benchmark's ns/op against BENCH_BASELINE.json and
// exits non-zero when any exceeds -maxratio times its baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpcquery/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	benchCheck := flag.String("benchcheck", "", "compare `go test -bench` output (file path, or - for stdin) against the baseline and exit non-zero on regressions")
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "baseline file for -benchcheck")
	maxRatio := flag.Float64("maxratio", 3.0, "fail -benchcheck when measured ns/op exceeds this multiple of baseline")
	flag.Parse()

	if *benchCheck != "" {
		regressions, err := runBenchCheck(os.Stdout, *baseline, *benchCheck, *maxRatio)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return
	}

	selected := experiments.All
	if *runFlag != "" {
		selected = nil
		for _, id := range strings.Split(*runFlag, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "mpcbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run()
		if *markdown {
			fmt.Print(table.Markdown())
		} else {
			fmt.Print(table.Render())
			fmt.Printf("  (%v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
}
