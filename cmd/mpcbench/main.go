// Command mpcbench regenerates the tutorial's tables and figures on the
// MPC simulator and prints paper-formula vs. measured values.
//
// Usage:
//
//	mpcbench                 # run every experiment (E01..E20)
//	mpcbench -run E07,E10    # run a subset
//	mpcbench -markdown       # emit GitHub-flavored markdown (EXPERIMENTS.md body)
//	mpcbench -list           # list experiment IDs and titles
//
// It also carries the CI benchmark gate:
//
//	go test -bench . -benchtime 1x ./... | mpcbench -benchcheck -
//
// which compares each benchmark's ns/op against BENCH_BASELINE.json and
// exits non-zero when any exceeds -maxratio times its baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mpcquery/internal/experiments"
	"mpcquery/internal/mpc"
	"mpcquery/internal/trace"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	benchCheck := flag.String("benchcheck", "", "compare `go test -bench` output (file path, or - for stdin) against the baseline and exit non-zero on regressions")
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "baseline file for -benchcheck")
	maxRatio := flag.Float64("maxratio", 3.0, "fail -benchcheck when measured ns/op exceeds this multiple of baseline")
	traceFile := flag.String("trace", "", "record every cluster the experiments build into one trace file (.jsonl → JSON lines, otherwise Chrome trace_event)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	flag.Parse()

	if *benchCheck != "" {
		regressions, err := runBenchCheck(os.Stdout, *baseline, *benchCheck, *maxRatio)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return
	}

	selected := experiments.All
	if *runFlag != "" {
		selected = nil
		for _, id := range strings.Split(*runFlag, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "mpcbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	var rec *trace.Recorder
	if *traceFile != "" {
		// Experiments build their clusters internally, so the recorder is
		// installed as the process-wide default picked up by NewCluster.
		rec = trace.NewRecorder()
		mpc.SetDefaultTracer(rec)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run()
		if *markdown {
			fmt.Print(table.Markdown())
		} else {
			fmt.Print(table.Render())
			fmt.Printf("  (%v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}

	if rec != nil {
		if err := writeTrace(*traceFile, rec); err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", rec.Len(), *traceFile)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mpcbench: memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// writeTrace exports rec to path, choosing the format by extension:
// .jsonl → JSON lines, anything else Chrome trace_event.
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = trace.WriteJSONL(f, rec.Events())
	} else {
		err = trace.WriteChrome(f, rec.Events())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
