package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: mpcquery/internal/mpc
cpu: some CPU
BenchmarkRound/p8-4         	     100	   1500000 ns/op	 2200000 B/op	      79 allocs/op
BenchmarkDeliver/p256-4     	      50	   2400000 ns/op
PASS
ok  	mpcquery/internal/mpc	1.234s
pkg: mpcquery/internal/join2
BenchmarkHashJoin/p8-4      	      10	   9000000 ns/op
--- BENCH: garbage line that should be ignored
BenchmarkBroken notanumber ns/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]string]float64{
		{"mpcquery/internal/mpc", "BenchmarkRound/p8"}:      1500000,
		{"mpcquery/internal/mpc", "BenchmarkDeliver/p256"}:  2400000,
		{"mpcquery/internal/join2", "BenchmarkHashJoin/p8"}: 9000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%v = %v, want %v", k, got[k], v)
		}
	}
}

func TestRunBenchCheck(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "baseline.json")
	benchPath := filepath.Join(dir, "bench.txt")
	baselineJSON := `{
	  "description": "test",
	  "benchmarks": [
	    {"package": "mpcquery/internal/mpc", "name": "BenchmarkRound/p8", "ns_per_op": 1000000},
	    {"package": "mpcquery/internal/mpc", "name": "BenchmarkDeliver/p256", "ns_per_op": 2000000},
	    {"package": "mpcquery/internal/sortmpc", "name": "BenchmarkNotRun/p8", "ns_per_op": 1}
	  ]
	}`
	if err := os.WriteFile(baselinePath, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPath, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}

	// Round/p8 is 1.5x baseline, Deliver/p256 is 1.2x: both pass at 3x.
	var out strings.Builder
	regressions, err := runBenchCheck(&out, baselinePath, benchPath, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "2 compared") {
		t.Fatalf("report should compare exactly the 2 measured baseline entries:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 benchmarks not in baseline") {
		t.Fatalf("report should count the un-baselined join2 benchmark:\n%s", out.String())
	}

	// At a 1.3x threshold Round/p8 (ratio 1.5) regresses.
	out.Reset()
	regressions, err = runBenchCheck(&out, baselinePath, benchPath, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("report should flag the regression:\n%s", out.String())
	}
}

// TestRunBenchCheckPerEntryRatio: an entry's max_ratio overrides the
// lane-wide threshold in both directions — tightening the gate on a
// pinned hot path, loosening it on a known-noisy benchmark.
func TestRunBenchCheckPerEntryRatio(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "baseline.json")
	benchPath := filepath.Join(dir, "bench.txt")
	// Round/p8 measures 1.5x its baseline, Deliver/p256 1.2x.
	baselineJSON := `{
	  "description": "test",
	  "benchmarks": [
	    {"package": "mpcquery/internal/mpc", "name": "BenchmarkRound/p8", "ns_per_op": 1000000, "max_ratio": 1.05},
	    {"package": "mpcquery/internal/mpc", "name": "BenchmarkDeliver/p256", "ns_per_op": 2000000, "max_ratio": 10}
	  ]
	}`
	if err := os.WriteFile(baselinePath, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPath, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}

	// The lane default of 3x would pass both; the pinned 1.05x gate on
	// Round/p8 must fail it anyway.
	var out strings.Builder
	regressions, err := runBenchCheck(&out, baselinePath, benchPath, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (pinned Round/p8)\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "limit 1.05x") {
		t.Fatalf("report should show the per-entry limit:\n%s", out.String())
	}

	// Conversely, a lane default of 1.1x would fail Deliver/p256
	// (ratio 1.2), but its 10x entry limit lets it pass.
	out.Reset()
	regressions, err = runBenchCheck(&out, baselinePath, benchPath, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the pinned entry)\n%s", regressions, out.String())
	}
}
