package main

// TCP-transport plumbing: with -transport=tcp, mpcrun spawns worker
// subprocesses (re-executions of itself in the hidden -net-worker
// mode), reads each worker's bound address from its stdout, and dials
// an mpcnet transport over them. Conforming transports are observably
// identical, so the run's output and (L, r, C) are bit-for-bit those of
// -transport=local; only the physical delivery path changes.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"

	"mpcquery/internal/mpcnet"
)

// runNetWorker is the -net-worker main: listen, print the bound
// address (the driver parses it), serve one driver connection, exit.
func runNetWorker(addr string) int {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun: worker:", err)
		return 1
	}
	fmt.Println(lis.Addr().String())
	if err := mpcnet.ServeOne(lis); err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun: worker:", err)
		return 1
	}
	return 0
}

// spawnTCPTransport starts the worker subprocesses and dials them. The
// returned cleanup closes the transport (BYE makes workers exit
// cleanly) and reaps the processes.
func spawnTCPTransport(p, workers int) (*mpcnet.Transport, func(), error) {
	if workers <= 0 {
		workers = p
		if workers > 4 {
			workers = 4
		}
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var cmds []*exec.Cmd
	kill := func() {
		for _, cmd := range cmds {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}
	addrs := make([]string, workers)
	for i := range addrs {
		cmd := exec.Command(exe, "-net-worker", "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			kill()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			kill()
			return nil, nil, err
		}
		cmds = append(cmds, cmd)
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			kill()
			return nil, nil, fmt.Errorf("worker %d reported no address: %v", i, sc.Err())
		}
		addrs[i] = sc.Text()
	}
	tr, err := mpcnet.Dial(p, addrs, mpcnet.Options{WriteTimeout: 30 * time.Second})
	if err != nil {
		kill()
		return nil, nil, err
	}
	cleanup := func() {
		_ = tr.Close()
		for _, cmd := range cmds {
			_ = cmd.Wait()
		}
	}
	return tr, cleanup, nil
}
