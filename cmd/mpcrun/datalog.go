package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpcquery/internal/chaos"
	"mpcquery/internal/core"
	"mpcquery/internal/query"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
	"mpcquery/internal/workload"
)

// compileDatalog parses and compiles a Datalog rule set and builds its
// input relations: one per EDB predicate, loaded from <dataDir>/<name>.csv
// when -data is set, generated under the -skew profile otherwise.
func compileDatalog(src, dataDir string, n int, skew string, seed int64) (*query.Compiled, map[string]*relation.Relation, error) {
	prog, err := query.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	edb := prog.EDB()
	names := make([]string, 0, len(edb))
	for name := range edb {
		names = append(names, name)
	}
	sort.Strings(names)
	rels := map[string]*relation.Relation{}
	for i, name := range names {
		arity := edb[name]
		if dataDir != "" {
			path := filepath.Join(dataDir, name+".csv")
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, fmt.Errorf("load %s: %w", name, err)
			}
			rel, err := relation.ReadCSV(name, f)
			f.Close()
			if err != nil {
				return nil, nil, fmt.Errorf("load %s: %w", name, err)
			}
			if rel.Arity() != arity {
				return nil, nil, fmt.Errorf("load %s: CSV has %d columns, program uses %d", name, rel.Arity(), arity)
			}
			rels[name] = rel
			continue
		}
		attrs := make([]string, arity)
		for j := range attrs {
			attrs[j] = fmt.Sprintf("c%d", j)
		}
		s := seed + int64(i)
		dom := n / 2
		if dom < 2 {
			dom = 2
		}
		switch skew {
		case "zipf":
			rels[name] = workload.Zipf(name, attrs, n, dom, 1.4, s)
		default:
			rels[name] = workload.Uniform(name, attrs, n, dom, s)
		}
	}
	c, err := query.Compile(prog, query.CatalogOf(rels))
	if err != nil {
		return nil, nil, err
	}
	return c, rels, nil
}

// runDatalog executes a compiled Datalog query on the engine and prints
// the standard mpcrun report, composing with -chaos, -trace, and
// -transport exactly like the named-query path.
func runDatalog(engine *core.Engine, c *query.Compiled, rels map[string]*relation.Relation, alg core.Algorithm, p int, transportDesc string, sched *chaos.Schedule, rec *trace.Recorder, traceFile string) int {
	var res *query.RunResult
	failure, err := chaos.Capture(func() error {
		var runErr error
		res, runErr = c.Run(engine, rels, alg)
		return runErr
	})
	if failure != nil {
		writeTrace(traceFile, rec)
		fmt.Fprintln(os.Stderr, "mpcrun:", sched.Report(nil, failure))
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		return 1
	}
	writeTrace(traceFile, rec)
	in := 0
	for _, r := range rels {
		in += r.Len()
	}
	fmt.Printf("program    %s\n", strings.ReplaceAll(c.Program.String(), "\n", "\n           "))
	fmt.Printf("kind       %s\n", c.Kind)
	fmt.Printf("servers    p = %d, IN = %d tuples\n", p, in)
	fmt.Printf("transport  %s\n", transportDesc)
	if res.Reason != "" {
		fmt.Printf("algorithm  %s (%s)\n", res.Algorithm, res.Reason)
	} else {
		fmt.Printf("algorithm  %s\n", res.Algorithm)
	}
	fmt.Printf("output     %d tuples (%s)\n", res.Output.Len(), strings.Join(res.Output.Attrs(), ", "))
	fmt.Printf("cost       L = %d tuples/server/round, r = %d rounds, C = %d tuples total\n",
		res.MaxLoad, res.Rounds, res.TotalComm)
	if res.Iterations > 0 {
		fmt.Printf("fixpoint   %d semi-naive iterations\n", res.Iterations)
	}
	if sched != nil {
		fmt.Printf("chaos      %s\n", sched.Report(res.Metrics, nil))
	}
	return 0
}
