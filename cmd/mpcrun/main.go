// Command mpcrun executes one conjunctive query on the MPC simulator
// and reports the result size together with the metered cost (L, r, C).
//
// Usage:
//
//	mpcrun -query triangle -n 20000 -p 64
//	mpcrun -query join2 -n 50000 -p 16 -alg skewjoin -skew zipf
//	mpcrun -query path4 -n 10000 -p 32 -alg gym-opt -verbose
//	mpcrun -q 'R(x,y), S(y,z), T(z,x)' -n 5000 -p 27
//	mpcrun -q 'E(a,b), F(b,c)' -data ./csvdir -p 8
//	mpcrun -query triangle -n 5000 -p 27 -explain
//	mpcrun -query triangle -n 20000 -p 16 -skew heavy -adaptive
//	mpcrun -query triangle -n 20000 -p 8 -capacities 4,4,1,1,1,1,1,1
//	mpcrun -recursive tc -n 2000 -p 16 -skew zipf
//
// Queries: triangle, join2, rst, path<k>, star<k>, cycle<k>, or an
// arbitrary conjunctive query body via -q. With -data, each atom's
// relation is loaded from <dir>/<atom>.csv (header row + int64 rows)
// instead of being generated.
// Algorithms: auto (default), hashjoin, broadcast, skewjoin, sortjoin,
// hypercube, skewhc, gym, gym-opt, binaryplan, bigjoin, hl-triangle.
// Skew: none (default), zipf, heavy.
//
// With -recursive tc|reach|cc the run evaluates a recursive workload —
// transitive closure, reachability from a source, or connected
// components — by semi-naive fixpoint over a generated random graph
// with -n edges (heavy-tailed degrees under -skew zipf). Each fixpoint
// iteration costs two metered rounds; the report adds the iteration
// count next to (L, r, C). Composes with -chaos, -trace, -transport,
// -p, and -seed.
//
// With -chaos seed[:key=rate,...] (e.g. -chaos 7:drop=0.1,crash=0.05)
// the run executes under that deterministic fault schedule: faults are
// injected at every round's delivery boundary and repaired by bounded
// replay. A recovered run reports the exact output and (L, r, C) of the
// fault-free run plus a recovery summary; an unrecovered one exits
// non-zero with the spec that reproduces it.
//
// With -adaptive, HyperCube executions run the skew-reactive driver:
// a metered probe round routes a prefix of the input under the uniform
// plan, and the driver switches the remaining rounds to SkewHC if the
// probe's receive vector shows emerging skew. The report prints the
// decision and its evidence. A switched run is bit-identical to one
// that chose the skew path up front.
//
// With -capacities c0,c1,... (len p, entries > 0) the cluster is
// heterogeneous: the planner costs candidates against the effective
// parallelism Σc/max(c), HyperCube runs capacity-proportional cell
// ownership, and the report adds the capacity-normalized makespan
// max_i(received_i / c_i) next to (L, r, C).
//
// With -explain the cost-based planner (internal/plan) evaluates every
// candidate strategy against statistics collected from the actual
// input, prints the full candidate listing — predicted (L, r, C) per
// candidate and the rejection reason for each loser — and exits
// without executing. -rounds caps the planner's round budget.
//
// With -transport=tcp (e.g. mpcrun -query triangle -n 5000 -p 27
// -transport=tcp -net-workers 4) round delivery runs over the mpcnet
// TCP backend: mpcrun re-executes itself as worker subprocesses, each
// owning a destination shard, and every delivered fragment crosses real
// sockets. Conforming transports are observably identical, so the
// output and the (L, r, C) report are bit-for-bit those of the default
// -transport=local; only the physical delivery path changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mpcquery/internal/chaos"
	"mpcquery/internal/core"
	"mpcquery/internal/cost"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/plan"
	"mpcquery/internal/query"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
	"mpcquery/internal/workload"
)

func main() {
	queryName := flag.String("query", "triangle", "named query: triangle, join2, rst, path<k>, star<k>, cycle<k>")
	queryBody := flag.String("q", "", "conjunctive query body, e.g. 'R(x,y), S(y,z), T(z,x)' (overrides -query)")
	dataDir := flag.String("data", "", "directory of <atom>.csv files to load instead of generating data")
	n := flag.Int("n", 10000, "tuples per generated relation")
	p := flag.Int("p", 16, "number of servers")
	alg := flag.String("alg", "auto", "algorithm (auto, hashjoin, broadcast, skewjoin, sortjoin, hypercube, skewhc, gym, gym-opt, binaryplan, bigjoin, hl-triangle)")
	skew := flag.String("skew", "none", "generated data skew: none, zipf, heavy")
	seed := flag.Int64("seed", 1, "random seed")
	chaosSpec := flag.String("chaos", "", "fault schedule seed[:drop=r,dup=r,crash=r,straggle=r,delay=n,persist=n,attempts=n]")
	explain := flag.Bool("explain", false, "print the cost-based plan listing (predicted L, r, C per candidate) and exit without executing")
	rounds := flag.Int("rounds", 0, "round budget for -explain planning (0 = unlimited)")
	traceFile := flag.String("trace", "", "write an execution trace to this file (.jsonl → JSON lines, otherwise Chrome trace_event for Perfetto/chrome://tracing)")
	recKind := flag.String("recursive", "", "run a recursive workload instead of a conjunctive query: tc (transitive closure), reach (reachability from vertex 0), cc (connected components); -n sets the edge count")
	transport := flag.String("transport", "local", "round delivery backend: local (in-process) or tcp (worker subprocesses over real sockets)")
	netWorkers := flag.Int("net-workers", 0, "worker processes for -transport=tcp (0 = min(p, 4))")
	netWorker := flag.Bool("net-worker", false, "run as an mpcnet worker process (internal, used by -transport=tcp)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address in -net-worker mode")
	adaptive := flag.Bool("adaptive", false, "skew-reactive execution: probe, then switch HyperCube plans to SkewHC on emerging skew")
	capacities := flag.String("capacities", "", "comma-separated per-server capacities (len p, entries > 0) for heterogeneity-aware shares")
	verbose := flag.Bool("verbose", false, "print per-round metrics")
	flag.Parse()

	caps, err := cost.ParseCapacities(*capacities)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}
	if caps != nil && len(caps) != *p {
		fmt.Fprintf(os.Stderr, "mpcrun: -capacities has %d entries for p=%d\n", len(caps), *p)
		os.Exit(1)
	}

	if *netWorker {
		os.Exit(runNetWorker(*listen))
	}

	var q hypergraph.Query
	var rels map[string]*relation.Relation
	// A '-query'/'-q' value containing ':-' is a Datalog rule set: it
	// goes through the internal/query frontend — the same parser,
	// semantic checks, and compiler mpcserve uses.
	var compiled *query.Compiled
	datalogSrc := ""
	if strings.Contains(*queryBody, ":-") {
		datalogSrc = *queryBody
	} else if strings.Contains(*queryName, ":-") {
		datalogSrc = *queryName
	}
	if *recKind == "" && datalogSrc != "" {
		compiled, rels, err = compileDatalog(datalogSrc, *dataDir, *n, *skew, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpcrun:", err)
			os.Exit(1)
		}
		q = compiled.Query
	} else if *recKind == "" {
		if *queryBody != "" {
			q, err = hypergraph.Parse("adhoc", *queryBody)
		} else {
			q, err = parseQuery(*queryName)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpcrun:", err)
			os.Exit(1)
		}
		if *dataDir != "" {
			rels, err = loadCSVDir(q, *dataDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpcrun:", err)
				os.Exit(1)
			}
		} else {
			rels = generate(q, *n, *skew, *seed)
		}
	} else if *explain {
		fmt.Fprintln(os.Stderr, "mpcrun: -explain applies to conjunctive queries, not -recursive workloads")
		os.Exit(1)
	}
	if *explain {
		if compiled != nil && compiled.Kind == query.KindRecursive {
			fmt.Fprintln(os.Stderr, "mpcrun: -explain applies to conjunctive queries, not recursive rule sets")
			os.Exit(1)
		}
		opts := plan.Options{MaxRounds: *rounds, Capacities: caps}
		if compiled != nil {
			opts.Aggregate = compiled.Aggregate
		}
		pl, perr := plan.For(q, rels, *p, opts)
		if pl == nil {
			fmt.Fprintln(os.Stderr, "mpcrun:", perr)
			os.Exit(1)
		}
		fmt.Print(pl.Explain())
		if perr != nil {
			// The listing itself is still useful when every candidate was
			// rejected (e.g. an impossible round budget).
			fmt.Fprintln(os.Stderr, "mpcrun:", perr)
			os.Exit(1)
		}
		return
	}
	engine := core.NewEngine(*p, *seed)
	engine.Adaptive = *adaptive
	engine.Capacities = caps
	transportDesc := "local (in-process)"
	switch *transport {
	case "local":
	case "tcp":
		tr, cleanup, terr := spawnTCPTransport(*p, *netWorkers)
		if terr != nil {
			fmt.Fprintln(os.Stderr, "mpcrun: tcp transport:", terr)
			os.Exit(1)
		}
		defer cleanup()
		engine.Transport = tr
		w := *netWorkers
		if w <= 0 {
			w = *p
			if w > 4 {
				w = 4
			}
		}
		transportDesc = fmt.Sprintf("tcp (%d worker processes)", w)
	default:
		fmt.Fprintln(os.Stderr, "mpcrun: unknown -transport", *transport)
		os.Exit(1)
	}
	var sched *chaos.Schedule
	if *chaosSpec != "" {
		sched, err = chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpcrun:", err)
			os.Exit(1)
		}
		engine.Chaos = sched
	}
	var rec *trace.Recorder
	if *traceFile != "" {
		rec = trace.NewRecorder()
		engine.Trace = rec
	}
	if *recKind != "" {
		if code := runRecursive(engine, *recKind, *n, *skew, *seed, transportDesc, sched, rec, *traceFile, *verbose); code != 0 {
			os.Exit(code)
		}
		return
	}
	if compiled != nil {
		if code := runDatalog(engine, compiled, rels, core.Algorithm(*alg), *p, transportDesc, sched, rec, *traceFile); code != 0 {
			os.Exit(code)
		}
		return
	}
	var exec *core.Execution
	failure, err := chaos.Capture(func() error {
		var execErr error
		exec, execErr = engine.Execute(core.Request{
			Query:     q,
			Relations: rels,
			Algorithm: core.Algorithm(*alg),
		})
		return execErr
	})
	if failure != nil {
		// The trace is most valuable exactly when the run failed: flush
		// whatever was recorded before exiting.
		writeTrace(*traceFile, rec)
		fmt.Fprintln(os.Stderr, "mpcrun:", sched.Report(nil, failure))
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		os.Exit(1)
	}
	writeTrace(*traceFile, rec)
	in := 0
	for _, r := range rels {
		in += r.Len()
	}
	fmt.Printf("query      %s\n", q)
	fmt.Printf("servers    p = %d, IN = %d tuples\n", *p, in)
	fmt.Printf("transport  %s\n", transportDesc)
	fmt.Printf("algorithm  %s (%s)\n", exec.Algorithm, exec.Reason)
	fmt.Printf("output     %d tuples\n", exec.Output.Len())
	fmt.Printf("cost       L = %d tuples/server/round, r = %d rounds, C = %d tuples total\n",
		exec.MaxLoad, exec.Rounds, exec.TotalComm)
	if caps != nil {
		fmt.Printf("capacity   effective p = %.2f, normalized makespan = %.1f\n",
			cost.EffectiveParallelism(caps), exec.Metrics.NormalizedMakespan(caps))
	}
	if sched != nil {
		fmt.Printf("chaos      %s\n", sched.Report(exec.Metrics, nil))
	}
	sizes := map[string]int64{}
	for _, a := range q.Atoms {
		n := int64(rels[a.Name].Len())
		if n < 1 {
			n = 1
		}
		sizes[a.Name] = n
	}
	if prof, perr := cost.NewProfile(q, sizes, *p); perr == nil {
		fmt.Printf("theory     %s\n", indentAfterFirst(prof.String(), "           "))
	}
	if *verbose {
		fmt.Print(exec.Metrics.String())
	}
}

// runRecursive executes a semi-naive fixpoint workload on the engine:
// -recursive tc|reach|cc over a generated random graph with -n edges
// (heavy-tailed degrees under -skew zipf/heavy). Composes with -chaos,
// -trace, -transport, -p, and -seed exactly like the query path.
func runRecursive(engine *core.Engine, kind string, n int, skew string, seed int64, transportDesc string, sched *chaos.Schedule, rec *trace.Recorder, traceFile string, verbose bool) int {
	vertices := n / 3
	if vertices < 2 {
		vertices = 2
	}
	var edges *relation.Relation
	if skew == "zipf" || skew == "heavy" {
		edges = workload.PowerLawGraph("E", "src", "dst", vertices, n, seed)
	} else {
		edges = workload.RandomGraph("E", "src", "dst", vertices, n, seed)
	}
	req := core.RecursiveRequest{Kind: core.RecursiveKind(kind), Edges: edges}
	if req.Kind == core.RecReachable {
		req.Sources = []relation.Value{edges.Row(0)[0]}
	}
	var exec *core.RecursiveExecution
	failure, err := chaos.Capture(func() error {
		var execErr error
		exec, execErr = engine.ExecuteRecursive(req)
		return execErr
	})
	if failure != nil {
		writeTrace(traceFile, rec)
		fmt.Fprintln(os.Stderr, "mpcrun:", sched.Report(nil, failure))
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun:", err)
		return 1
	}
	writeTrace(traceFile, rec)
	fmt.Printf("workload   recursive %s (semi-naive fixpoint)\n", kind)
	fmt.Printf("servers    p = %d, IN = %d edges over %d vertices\n", engine.P, edges.Len(), vertices)
	fmt.Printf("transport  %s\n", transportDesc)
	fmt.Printf("output     %d tuples after %d iterations\n", exec.Output.Len(), exec.Iterations)
	fmt.Printf("cost       L = %d tuples/server/round, r = %d rounds, C = %d tuples total\n",
		exec.MaxLoad, exec.Rounds, exec.TotalComm)
	if sched != nil {
		fmt.Printf("chaos      %s\n", sched.Report(exec.Metrics, nil))
	}
	if verbose {
		fmt.Print(exec.Metrics.String())
	}
	return 0
}

// writeTrace exports the recorded events to path — JSON lines when the
// file ends in .jsonl, Chrome trace_event (Perfetto-loadable) otherwise.
// No-op when tracing was not requested.
func writeTrace(path string, rec *trace.Recorder) {
	if path == "" || rec == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun: trace:", err)
		os.Exit(1)
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = trace.WriteJSONL(f, rec.Events())
	} else {
		err = trace.WriteChrome(f, rec.Events())
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcrun: trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", rec.Len(), path)
}

// indentAfterFirst indents every line after the first, aligning
// multi-line values under their label.
func indentAfterFirst(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}

// parseQuery resolves a query name, supporting parameterized families
// like path7 or star3.
func parseQuery(name string) (hypergraph.Query, error) {
	switch name {
	case "triangle":
		return hypergraph.Triangle(), nil
	case "join2":
		return hypergraph.TwoWayJoin(), nil
	case "rst":
		return hypergraph.RST(), nil
	case "product":
		return hypergraph.CartesianProduct(), nil
	}
	for _, fam := range []struct {
		prefix string
		make   func(int) hypergraph.Query
	}{
		{"path", hypergraph.Path},
		{"star", hypergraph.Star},
		{"cycle", hypergraph.Cycle},
	} {
		if strings.HasPrefix(name, fam.prefix) {
			k, err := strconv.Atoi(name[len(fam.prefix):])
			if err != nil || k < 1 {
				return hypergraph.Query{}, fmt.Errorf("bad query %q", name)
			}
			return fam.make(k), nil
		}
	}
	return hypergraph.Query{}, fmt.Errorf("unknown query %q", name)
}

// generate builds input relations for the query under the requested
// skew profile.
func generate(q hypergraph.Query, n int, skew string, seed int64) map[string]*relation.Relation {
	rels := map[string]*relation.Relation{}
	dom := n / 2
	if dom < 2 {
		dom = 2
	}
	for i, a := range q.Atoms {
		s := seed + int64(i)
		var r *relation.Relation
		switch skew {
		case "zipf":
			r = workload.Zipf(a.Name, padAttrs(a), n, dom, 1.4, s)
		case "heavy":
			heavyCount := n / 5
			r = workload.PlantHeavy(a.Name, "k", "v", n-heavyCount, int64(n), []relation.Value{0}, []int{heavyCount})
			r = reshape(r, a)
		default:
			r = workload.Uniform(a.Name, padAttrs(a), n, dom, s)
		}
		rels[a.Name] = r
	}
	return rels
}

func padAttrs(a hypergraph.Atom) []string {
	attrs := make([]string, len(a.Vars))
	copy(attrs, a.Vars)
	return attrs
}

// loadCSVDir loads <dir>/<atom>.csv for every atom of q.
func loadCSVDir(q hypergraph.Query, dir string) (map[string]*relation.Relation, error) {
	rels := map[string]*relation.Relation{}
	for _, a := range q.Atoms {
		path := filepath.Join(dir, a.Name+".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", a.Name, err)
		}
		rel, err := relation.ReadCSV(a.Name, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", a.Name, err)
		}
		if rel.Arity() != len(a.Vars) {
			return nil, fmt.Errorf("load %s: CSV has %d columns, atom wants %d", a.Name, rel.Arity(), len(a.Vars))
		}
		rels[a.Name] = rel
	}
	return rels, nil
}

// reshape adapts the 2-column PlantHeavy output to the atom's arity.
func reshape(r *relation.Relation, a hypergraph.Atom) *relation.Relation {
	out := relation.New(a.Name, a.Vars...)
	row := make([]relation.Value, len(a.Vars))
	for i := 0; i < r.Len(); i++ {
		src := r.Row(i)
		for j := range row {
			row[j] = src[j%2]
		}
		out.AppendRow(row)
	}
	return out
}
