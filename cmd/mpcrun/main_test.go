package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/core"
	"mpcquery/internal/plan"
	"mpcquery/internal/stats"
	"mpcquery/internal/trace"
)

func TestParseQuery(t *testing.T) {
	for _, tc := range []struct {
		name  string
		atoms int
		ok    bool
	}{
		{"triangle", 3, true},
		{"join2", 2, true},
		{"rst", 3, true},
		{"product", 2, true},
		{"path5", 5, true},
		{"star3", 3, true},
		{"cycle4", 4, true},
		{"pathX", 0, false},
		{"path0", 0, false},
		{"nonsense", 0, false},
	} {
		q, err := parseQuery(tc.name)
		if tc.ok && err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: expected error", tc.name)
			}
			continue
		}
		if len(q.Atoms) != tc.atoms {
			t.Errorf("%s: %d atoms, want %d", tc.name, len(q.Atoms), tc.atoms)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	q, err := parseQuery("triangle")
	if err != nil {
		t.Fatal(err)
	}
	for _, skew := range []string{"none", "zipf", "heavy"} {
		rels := generate(q, 500, skew, 1)
		if len(rels) != 3 {
			t.Fatalf("%s: %d relations", skew, len(rels))
		}
		for _, a := range q.Atoms {
			r := rels[a.Name]
			if r == nil || r.Len() != 500 || r.Arity() != len(a.Vars) {
				t.Fatalf("%s: relation %s malformed", skew, a.Name)
			}
		}
	}
	// Heavy skew must actually plant a heavy hitter.
	rels := generate(q, 500, "heavy", 1)
	d := stats.DegreesOf(rels["R"], rels["R"].Attrs()[0])
	if d.Max() < 90 {
		t.Fatalf("heavy skew max degree = %d, want ≈ n/5", d.Max())
	}
}

// TestEndToEndViaEngine exercises the same path main() drives.
func TestEndToEndViaEngine(t *testing.T) {
	q, err := parseQuery("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rels := generate(q, 300, "none", 2)
	engine := core.NewEngine(8, 1)
	exec, err := engine.Execute(core.Request{Query: q, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	want := core.Reference(q, rels)
	got := exec.Output.Clone()
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("engine output differs from reference")
	}
}

// TestChaosViaEngine exercises the -chaos path main() drives: an
// engine with a fault schedule attached must produce the same output
// and (L, r, C) as the fault-free engine, and a schedule with a
// permanent fault must surface a RecoveryFailure through chaos.Capture.
func TestChaosViaEngine(t *testing.T) {
	q, err := parseQuery("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rels := generate(q, 300, "none", 2)
	clean := core.NewEngine(8, 1)
	cleanExec, err := clean.Execute(core.Request{Query: q, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}

	engine := core.NewEngine(8, 1)
	engine.Chaos = chaos.MustParseSchedule("7:drop=0.1,dup=0.05,crash=0.1,straggle=0.2")
	var exec *core.Execution
	failure, err := chaos.Capture(func() error {
		var execErr error
		exec, execErr = engine.Execute(core.Request{Query: q, Relations: rels})
		return execErr
	})
	if failure != nil || err != nil {
		t.Fatalf("chaos execution failed: %v / %v", failure, err)
	}
	if exec.MaxLoad != cleanExec.MaxLoad || exec.Rounds != cleanExec.Rounds || exec.TotalComm != cleanExec.TotalComm {
		t.Fatalf("chaos (L,r,C) = (%d,%d,%d), fault-free (%d,%d,%d)",
			exec.MaxLoad, exec.Rounds, exec.TotalComm, cleanExec.MaxLoad, cleanExec.Rounds, cleanExec.TotalComm)
	}
	got, want := exec.Output.Clone(), cleanExec.Output.Clone()
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("chaos engine output differs from fault-free engine")
	}

	// Permanent faults (persist ≥ attempts) must fail loudly.
	engine.Chaos = chaos.MustParseSchedule("7:drop=0.5,persist=4,attempts=3")
	failure, err = chaos.Capture(func() error {
		_, execErr := engine.Execute(core.Request{Query: q, Relations: rels})
		return execErr
	})
	if failure == nil || err == nil {
		t.Fatal("permanent-fault schedule did not surface a RecoveryFailure")
	}
}

func TestHLTriangleViaEngine(t *testing.T) {
	q, err := parseQuery("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rels := generate(q, 400, "heavy", 3)
	engine := core.NewEngine(27, 1)
	exec, err := engine.Execute(core.Request{Query: q, Relations: rels, Algorithm: core.AlgHLTriangle})
	if err != nil {
		t.Fatal(err)
	}
	want := core.Reference(q, rels)
	got := exec.Output.Clone()
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("HL triangle via engine differs from reference")
	}
	// HL on a non-triangle query must be rejected.
	q2, _ := parseQuery("path3")
	rels2 := generate(q2, 100, "none", 1)
	if _, err := engine.Execute(core.Request{Query: q2, Relations: rels2, Algorithm: core.AlgHLTriangle}); err == nil {
		t.Fatal("expected error for HL on path query")
	}
}

// TestTraceViaEngine exercises the -trace path main() drives: an engine
// with a recorder attached records a consistent trace, and writeTrace
// emits both formats — the Chrome file parseable as trace_event JSON,
// the JSONL file round-tripping through the strict parser.
func TestTraceViaEngine(t *testing.T) {
	q, err := parseQuery("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rels := generate(q, 300, "none", 2)
	engine := core.NewEngine(8, 1)
	rec := trace.NewRecorder()
	engine.Trace = rec
	exec, err := engine.Execute(core.Request{Query: q, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("traced execution recorded no events")
	}
	// The trace must carry the planner annotation and one frame pair per
	// metered round.
	starts, ends, annotates := 0, 0, 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindRoundStart:
			starts++
		case trace.KindRoundEnd:
			ends++
		case trace.KindAnnotate:
			annotates++
		}
	}
	if starts != exec.Rounds || ends != exec.Rounds {
		t.Fatalf("trace has %d starts / %d ends, execution metered %d rounds", starts, ends, exec.Rounds)
	}
	if annotates == 0 {
		t.Fatal("no planner/algorithm annotations recorded")
	}

	dir := t.TempDir()
	for _, name := range []string{"out.jsonl", "out.json"} {
		path := filepath.Join(dir, name)
		writeTrace(path, rec)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if strings.HasSuffix(name, ".jsonl") {
			events, err := trace.ReadJSONL(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("JSONL trace does not parse back: %v", err)
			}
			if len(events) != rec.Len() {
				t.Fatalf("JSONL trace has %d events, recorder %d", len(events), rec.Len())
			}
		} else {
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("Chrome trace is not valid trace_event JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("Chrome trace has no events")
			}
		}
	}
	// writeTrace without a path or recorder is a no-op, not a crash.
	writeTrace("", rec)
	writeTrace(filepath.Join(dir, "x.jsonl"), nil)
}

// TestExplainViaPlanner exercises the -explain path: plan the triangle
// query over generated inputs and check the listing shows at least
// three applicable candidates, each with a predicted (L, r, C).
func TestExplainViaPlanner(t *testing.T) {
	q, err := parseQuery("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rels := generate(q, 500, "none", 1)
	pl, err := plan.For(q, rels, 8, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	applicable := 0
	for _, c := range pl.Candidates {
		if c.Applicable {
			applicable++
		}
	}
	if applicable < 3 {
		t.Fatalf("triangle has %d applicable candidates, want >= 3\n%s", applicable, pl.Explain())
	}
	out := pl.Explain()
	for _, want := range []string{"candidates:", "L≈", "r=", "C≈", "chosen: "} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
}
