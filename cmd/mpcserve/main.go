// Command mpcserve is a long-running multi-tenant query service over
// the MPC simulator: it registers a data set once, then serves Datalog
// queries over HTTP with admission control, per-tenant token-bucket
// quotas, and a plan cache.
//
// Usage:
//
//	mpcserve -demo -n 5000 -addr 127.0.0.1:8080
//	mpcserve -data ./csvdir -p 16 -quota-rate 10 -quota-burst 20
//	mpcserve -demo -adaptive -capacities 4,4,1,1,1,1,1,1
//
// Endpoints:
//
//	POST /query    {"tenant":"t1","query":"q(x,z) :- R(x,y), S(y,z).","trace":false}
//	GET  /healthz  liveness probe
//	GET  /metrics  counters: queries, sheds, in-flight high water,
//	               plan-cache hits/misses/invalidations, per-tenant 429s
//
// Failures map to statuses: 400 malformed query (the body carries the
// line:col-positioned message), 429 tenant over quota, 503 shed by
// admission control, 500 execution failure.
//
// With -data every <dir>/<name>.csv (header row + int64 rows) is
// registered as relation <name>. With -demo a small generated data set
// is registered instead: binary R, S, T, E and unary V — enough to run
// joins, aggregates, transitive closure, and reachability out of the
// box.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpcquery/internal/cost"
	"mpcquery/internal/relation"
	"mpcquery/internal/service"
	"mpcquery/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	p := flag.Int("p", 8, "simulated cluster size per query")
	seed := flag.Int64("seed", 1, "engine seed (equal seeds give bit-identical executions)")
	dataDir := flag.String("data", "", "directory of <name>.csv files to register as relations")
	demo := flag.Bool("demo", false, "register a generated demo data set (R, S, T, E binary; V unary)")
	n := flag.Int("n", 5000, "tuples per demo relation")
	maxInflight := flag.Int("max-inflight", 4, "maximum concurrently executing queries")
	maxQueue := flag.Int("max-queue", 16, "maximum queries waiting for an execution slot")
	queueTimeout := flag.Duration("queue-timeout", 100*time.Millisecond, "how long a queued query waits before being shed")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant sustained queries/second (0 disables quotas)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-tenant burst capacity (default max(quota-rate, 1))")
	cacheSize := flag.Int("plan-cache", 128, "plan cache capacity (entries)")
	maxRows := flag.Int("max-rows", 100, "result rows embedded per response")
	adaptive := flag.Bool("adaptive", false, "skew-reactive execution: probe, then switch HyperCube plans to SkewHC on emerging skew")
	capacities := flag.String("capacities", "", "comma-separated per-server capacities (len p, entries > 0) for heterogeneity-aware shares")
	flag.Parse()

	caps, err := cost.ParseCapacities(*capacities)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		os.Exit(1)
	}
	if caps != nil && len(caps) != *p {
		fmt.Fprintf(os.Stderr, "mpcserve: -capacities has %d entries for p=%d\n", len(caps), *p)
		os.Exit(1)
	}

	svc, err := buildService(service.Config{
		P:             *p,
		Seed:          *seed,
		MaxInflight:   *maxInflight,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
		QuotaRate:     *quotaRate,
		QuotaBurst:    *quotaBurst,
		PlanCacheSize: *cacheSize,
		MaxResultRows: *maxRows,
		Adaptive:      *adaptive,
		Capacities:    caps,
	}, *dataDir, *demo, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		os.Exit(1)
	}
	fmt.Printf("mpcserve: serving %v on http://%s (p=%d)\n", svc.Relations(), *addr, *p)
	if err := http.ListenAndServe(*addr, svc.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "mpcserve:", err)
		os.Exit(1)
	}
}

// buildService constructs the service and registers its data set from
// -data, -demo, or both (CSV wins on name collision, registered last).
func buildService(cfg service.Config, dataDir string, demo bool, n int, seed int64) (*service.Service, error) {
	if dataDir == "" && !demo {
		return nil, fmt.Errorf("no data: pass -data <dir> or -demo")
	}
	svc := service.New(cfg)
	if demo {
		dom := n / 2
		if dom < 2 {
			dom = 2
		}
		for i, name := range []string{"R", "S", "T"} {
			svc.Register(workload.Uniform(name, []string{"a", "b"}, n, dom, seed+int64(i)))
		}
		edges := workload.RandomGraph("E", "s", "d", n/2+2, n, seed+10)
		svc.Register(edges)
		// V: a handful of source vertices for reachability programs.
		v := relation.New("V", "v")
		for i := 0; i < 3 && i < edges.Len(); i++ {
			v.AppendRow([]relation.Value{edges.Row(i)[0]})
		}
		svc.Register(v)
	}
	if dataDir != "" {
		paths, err := filepath.Glob(filepath.Join(dataDir, "*.csv"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("no *.csv files in %s", dataDir)
		}
		for _, path := range paths {
			name := strings.TrimSuffix(filepath.Base(path), ".csv")
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			rel, err := relation.ReadCSV(name, f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", name, err)
			}
			svc.Register(rel)
		}
	}
	return svc, nil
}
