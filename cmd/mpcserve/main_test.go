package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpcquery/internal/service"
)

func postQuery(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

func TestDemoServiceEndToEnd(t *testing.T) {
	svc, err := buildService(service.Config{P: 4}, "", true, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Relations(); len(got) != 5 {
		t.Fatalf("demo relations %v", got)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	code, m := postQuery(t, srv.URL, `{"tenant":"t1","query":"q(x, y, z) :- R(x, y), S(y, z)."}`)
	if code != 200 || m["kind"] != "join" {
		t.Fatalf("join: %d %v", code, m)
	}
	code, m = postQuery(t, srv.URL, `{"query":"reach(x) :- V(x).\nreach(y) :- reach(x), E(x, y)."}`)
	if code != 200 || m["kind"] != "recursive" {
		t.Fatalf("recursive: %d %v", code, m)
	}
	code, m = postQuery(t, srv.URL, `{"query":"spend(x, sum(y)) :- R(x, y)."}`)
	if code != 200 || m["kind"] != "aggregate" {
		t.Fatalf("aggregate: %d %v", code, m)
	}
	code, m = postQuery(t, srv.URL, `{"query":"q(x) :- Nope(x)"}`)
	if code != 400 || !strings.Contains(m["error"].(string), "unknown relation") {
		t.Fatalf("unknown relation: %d %v", code, m)
	}
}

func TestBuildServiceCSV(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "Edge.csv"), []byte("s,d\n1,2\n2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := buildService(service.Config{P: 2}, dir, false, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	code, m := postQuery(t, srv.URL, `{"query":"tc(x, y) :- Edge(x, y).\ntc(x, z) :- tc(x, y), Edge(y, z)."}`)
	if code != 200 || m["rows"].(float64) != 3 {
		t.Fatalf("csv tc: %d %v", code, m)
	}
}

func TestBuildServiceRequiresData(t *testing.T) {
	if _, err := buildService(service.Config{}, "", false, 0, 1); err == nil {
		t.Fatal("expected error without -data or -demo")
	}
}
