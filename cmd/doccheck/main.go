// Command doccheck is the documentation gate for the CI docs lane.
// It enforces two invariants that rot silently without a check:
//
//  1. Every relative markdown link in the repo's own documentation
//     resolves — the file exists, and when the link carries a
//     #fragment, a heading with that GitHub-style anchor slug exists
//     in the target file. External (http/https/mailto) links are not
//     fetched; CI must not depend on the network.
//  2. Every Go package in the repo has a package-level doc comment
//     (checked with go/parser, the same source of truth godoc uses).
//
// Usage:
//
//	doccheck [-root dir]
//
// Retrieval-artifact files (PAPER.md, PAPERS.md, SNIPPETS.md) are
// skipped as link *sources*: they quote external material whose links
// we do not own. They still count as link *targets*.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	linkProblems, err := CheckMarkdown(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	problems = append(problems, linkProblems...)
	docProblems, err := CheckPackageDocs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	problems = append(problems, docProblems...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}
