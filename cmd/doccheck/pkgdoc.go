package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// CheckPackageDocs verifies that every Go package in the repository
// carries a package-level doc comment on at least one of its non-test
// files — the invariant godoc renders and the ARCHITECTURE.md map
// relies on. Directories containing only test files are skipped.
func CheckPackageDocs(root string) ([]string, error) {
	dirs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var problems []string
	fset := token.NewFileSet()
	for dir, files := range dirs {
		documented := false
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", f, err)
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			rel, _ := filepath.Rel(root, dir)
			problems = append(problems, fmt.Sprintf("%s: package has no package-level doc comment", rel))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
