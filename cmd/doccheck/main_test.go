package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, name, content string) {
	t.Helper()
	path := filepath.Join(root, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "README.md", strings.Join([]string{
		"# Title",
		"## Query planning",
		"See [the guide](docs/guide.md) and [planning](#query-planning).",
		"Broken: [missing](nope.md) and [bad anchor](docs/guide.md#nowhere).",
		"External [ok](https://example.com/x#y).",
		"```",
		"[not a link](also-missing.md)",
		"```",
		"Inline `[code](ignored.md)` span.",
	}, "\n"))
	write(t, root, "docs/guide.md", "# Guide\n## The (L, r, C) model\nBack to [readme](../README.md#query-planning).\n")

	problems, err := CheckMarkdown(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want 2 problems, got %d: %v", len(problems), problems)
	}
	if !strings.Contains(problems[0], "nope.md") {
		t.Errorf("first problem should be the missing file: %v", problems[0])
	}
	if !strings.Contains(problems[1], "#nowhere") {
		t.Errorf("second problem should be the bad anchor: %v", problems[1])
	}
}

func TestCheckMarkdownAnchorSlugs(t *testing.T) {
	root := t.TempDir()
	// Punctuation is dropped, spaces hyphenate, duplicates get -N.
	write(t, root, "a.md", strings.Join([]string{
		"# The (L, r, C) model",
		"## Setup",
		"## Setup",
		"[one](b.md#the-l-r-c-model)",
		"[two](b.md#setup-1)",
	}, "\n"))
	write(t, root, "b.md", "# The (L, r, C) model\n## Setup\n## Setup\n")
	problems, err := CheckMarkdown(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("want no problems, got %v", problems)
	}
}

func TestCheckMarkdownSkipsRetrievalArtifacts(t *testing.T) {
	root := t.TempDir()
	write(t, root, "SNIPPETS.md", "[dead](gone.md)\n")
	write(t, root, "PAPERS.md", "[dead](gone.md)\n")
	write(t, root, "PAPER.md", "[dead](gone.md)\n")
	problems, err := CheckMarkdown(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("retrieval artifacts must not be scanned as sources, got %v", problems)
	}
}

func TestCheckPackageDocs(t *testing.T) {
	root := t.TempDir()
	write(t, root, "good/good.go", "// Package good is documented.\npackage good\n")
	write(t, root, "bad/bad.go", "package bad\n")
	write(t, root, "testonly/x_test.go", "package testonly\n")
	problems, err := CheckPackageDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "bad") {
		t.Fatalf("want exactly the undocumented package flagged, got %v", problems)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The gate CI runs, run as a test too: the repo's own docs and
	// package comments must stay clean.
	root := repoRoot(t)
	if problems, err := CheckMarkdown(root); err != nil || len(problems) != 0 {
		t.Errorf("CheckMarkdown: err=%v problems=%v", err, problems)
	}
	if problems, err := CheckPackageDocs(root); err != nil || len(problems) != 0 {
		t.Errorf("CheckPackageDocs: err=%v problems=%v", err, problems)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
