package main

import (
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

// skipSources are markdown files whose links we do not own: retrieval
// artifacts quoting external material. They are never scanned for
// outgoing links but remain valid link targets.
var skipSources = map[string]bool{
	"PAPER.md":    true,
	"PAPERS.md":   true,
	"SNIPPETS.md": true,
}

// linkRe matches the target of an inline markdown link or image,
// `[text](target)` / `![alt](target)`, with an optional title.
var linkRe = regexp.MustCompile(`\]\(\s*<?([^)<>\s]+)>?(?:\s+"[^"]*")?\s*\)`)

// inlineCodeRe matches `code spans`, which may legitimately contain
// bracket-paren sequences that are not links.
var inlineCodeRe = regexp.MustCompile("`[^`]*`")

// CheckMarkdown validates every relative link in the repository's own
// markdown files: the target file must exist, and a #fragment must
// match a GitHub-style heading anchor in the target. Returns one
// human-readable problem string per broken link.
func CheckMarkdown(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)

	anchorCache := map[string]map[string]bool{}
	var problems []string
	for _, f := range files {
		if skipSources[filepath.Base(f)] {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		rel, _ := filepath.Rel(root, f)
		for i, line := range linkLines(string(data)) {
			for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
				if p := checkLink(root, f, m[1], anchorCache); p != "" {
					problems = append(problems, fmt.Sprintf("%s:%d: %s", rel, i+1, p))
				}
			}
		}
	}
	return problems, nil
}

// linkLines returns the file's lines with fenced code blocks and
// inline code spans blanked out, so transcripts and code samples are
// not scanned for links. Line numbering is preserved.
func linkLines(src string) []string {
	lines := strings.Split(src, "\n")
	inFence := false
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			lines[i] = ""
			continue
		}
		if inFence {
			lines[i] = ""
			continue
		}
		lines[i] = inlineCodeRe.ReplaceAllString(line, "")
	}
	return lines
}

// checkLink validates one link target found in file. Returns "" when
// the link is fine or out of scope (absolute URLs).
func checkLink(root, file, target string, anchorCache map[string]map[string]bool) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "" // external; CI must not depend on the network
	}
	path, fragment, _ := strings.Cut(target, "#")
	if dec, err := url.PathUnescape(path); err == nil {
		path = dec
	}
	resolved := file
	if path != "" {
		if filepath.IsAbs(path) || strings.HasPrefix(path, "/") {
			resolved = filepath.Join(root, path)
		} else {
			resolved = filepath.Join(filepath.Dir(file), path)
		}
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, path)
		}
	}
	if fragment == "" {
		return ""
	}
	if !strings.EqualFold(filepath.Ext(resolved), ".md") {
		return "" // anchors into non-markdown files are not checkable
	}
	anchors, ok := anchorCache[resolved]
	if !ok {
		data, err := os.ReadFile(resolved)
		if err != nil {
			return fmt.Sprintf("broken link %q: %v", target, err)
		}
		anchors = headingAnchors(string(data))
		anchorCache[resolved] = anchors
	}
	if !anchors[strings.ToLower(fragment)] {
		return fmt.Sprintf("broken link %q: no heading with anchor #%s", target, fragment)
	}
	return ""
}

// headingAnchors collects the GitHub-style anchor slugs of every ATX
// heading in the document, with -1, -2, ... suffixes for duplicates.
func headingAnchors(src string) map[string]bool {
	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ' && text[0] != '\t') {
			continue // not an ATX heading (e.g. "#!/bin/sh" or no space)
		}
		s := slugify(text)
		if n := seen[s]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			anchors[s] = true
		}
		seen[s]++
	}
	return anchors
}

// slugify approximates GitHub's heading-to-anchor algorithm: lowercase,
// drop punctuation (including markdown formatting characters), turn
// spaces into hyphens, keep hyphens and underscores.
func slugify(heading string) string {
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
