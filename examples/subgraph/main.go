// Subgraph-query demo (slide 97's motivation: BiGJoin, SEED,
// TwinTwigJoin, PSgL all compute subgraph queries at scale): count
// 4-cycles in a power-law graph with the one-round HyperCube algorithm.
// The cycle query C4(a,b,c,d) = E1(a,b) ⋈ E2(b,c) ⋈ E3(c,d) ⋈ E4(d,a)
// has τ* = 2, so the skew-free one-round load is N/√p — and because the
// graph is power-law, the example also shows the planner escalating to
// SkewHC when the hub vertices trip the heavy-hitter threshold.
package main

import (
	"fmt"
	"math"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func main() {
	const (
		vertices = 3000
		edges    = 12000
		servers  = 16
	)
	g := workload.PowerLawGraph("E", "a", "b", vertices, edges, 3)
	// The 4-cycle query: every atom reads the same edge relation.
	q := hypergraph.Cycle(4)
	rels := map[string]*relation.Relation{}
	for _, atom := range q.Atoms {
		e := relation.New(atom.Name, atom.Vars...)
		for i := 0; i < g.Len(); i++ {
			e.AppendRow(g.Row(i))
		}
		rels[atom.Name] = e
	}

	engine := core.NewEngine(servers, 1)
	exec, err := engine.Execute(core.Request{Query: q, Relations: rels})
	if err != nil {
		panic(err)
	}
	fmt.Println("=== subgraph matching: 4-cycles on a power-law graph (slide 97) ===")
	fmt.Printf("graph        %d vertices, %d power-law edges\n", vertices, edges)
	fmt.Printf("query        %s (τ* = 2)\n", q)
	fmt.Printf("planner      %s — %s\n", exec.Algorithm, exec.Reason)
	fmt.Printf("4-cycles     %d (directed, labelled)\n", exec.Output.Len())
	fmt.Printf("cost         L = %d, r = %d, C = %d\n", exec.MaxLoad, exec.Rounds, exec.TotalComm)
	fmt.Printf("theory       skew-free load ≈ #atoms·N/√p = %.0f tuples/server\n",
		4*float64(edges)/math.Sqrt(servers))

	// Verify against a single-machine worst-case-optimal join.
	want := core.Reference(q, rels)
	got := exec.Output.Clone()
	got.Dedup()
	want.Dedup()
	if got.EqualAsSets(want) {
		fmt.Println("verified     distributed result == single-machine reference")
	} else {
		panic("verification failed")
	}
}
