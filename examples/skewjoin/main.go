// Skew demo: joins a Zipf-skewed clickstream against a user table with
// the plain parallel hash join and with the heavy-hitter-aware skew
// join (slides 27–30), showing how the hash join's maximum load
// collapses onto the server owning the hot key while the skew join
// spreads each heavy hitter over a dedicated grid of servers.
package main

import (
	"fmt"

	"mpcquery/internal/join2"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
	"mpcquery/internal/workload"
)

func main() {
	const (
		nClicks = 60000
		nUsers  = 8000
		servers = 32
	)
	// clicks(page, user): user activity is Zipf — a few power users
	// dominate the stream.
	clicks := workload.Zipf("clicks", []string{"user", "page"}, nClicks, nUsers, 1.3, 7).
		Project("clicks", "page", "user")
	// users(user, profile): unique key per user, as a dimension table.
	users := workload.Matching("users", []string{"user", "profile"}, nUsers)

	in := clicks.Len() + users.Len()
	heavy := stats.JoinHeavyHitters(clicks, users, "user", in/servers)
	outSize := relation.HashJoin("ref", clicks, users).Len()
	fmt.Println("=== skew-aware two-way join (slides 27–30) ===")
	fmt.Printf("input        %d clicks ⋈ %d users on `user`, p = %d\n", nClicks, nUsers, servers)
	fmt.Printf("skew         %d heavy hitters above IN/p = %d; output %d tuples\n",
		len(heavy), in/servers, outSize)

	hash := mpc.NewCluster(servers, 1)
	join2.HashJoin(hash, clicks, users, "out", 99)
	fmt.Printf("hash join    L = %-8d (ideal IN/p = %d)\n", hash.Metrics().MaxLoad(), in/servers)

	skew := mpc.NewCluster(servers, 1)
	join2.SkewJoin(skew, clicks, users, "out", 99)
	fmt.Printf("skew join    L = %-8d in %d rounds (degrees + heavy broadcast + shuffle)\n",
		skew.Metrics().MaxLoad(), skew.Metrics().Rounds())

	sortj := mpc.NewCluster(servers, 1)
	join2.SortJoin(sortj, clicks, users, "out", 99)
	fmt.Printf("sort join    L = %-8d in %d rounds (PSRS + boundary fix-up)\n",
		sortj.Metrics().MaxLoad(), sortj.Metrics().Rounds())

	// All three compute the same result.
	want := relation.HashJoin("want", clicks, users)
	for name, c := range map[string]*mpc.Cluster{"hash": hash, "skew": skew, "sort": sortj} {
		if !c.Gather("out").EqualAsSets(want) {
			panic(name + " join produced a wrong result")
		}
	}
	fmt.Println("verified     all three algorithms agree with the local reference")
}
