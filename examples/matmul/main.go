// Matrix multiplication demo (slides 107–126): multiplies two 128×128
// matrices three ways on the simulator — the one-round rectangle-block
// algorithm, the multi-round square-block rotation algorithm, and the
// SQL join+aggregate formulation — and prints the communication/round
// trade-off the tutorial's slide-126 figure summarizes.
package main

import (
	"fmt"

	"mpcquery/internal/cost"
	"mpcquery/internal/matmul"
	"mpcquery/internal/mpc"
)

func main() {
	const n = 128
	a := matmul.Random(n, 9, 1)
	b := matmul.Random(n, 9, 2)
	want := matmul.Multiply(a, b)
	fmt.Println("=== MPC matrix multiplication (slides 107–126) ===")
	fmt.Printf("n = %d; C and L count matrix elements\n\n", n)
	fmt.Printf("%-22s %5s %8s %7s %10s %12s\n", "algorithm", "p", "L", "rounds", "C", "C formula")

	// One-round rectangle-block on a 4×4 grid.
	cr := mpc.NewCluster(16, 1)
	rr, err := matmul.RectangleBlock(cr, a, b)
	check(err, rr.C.Equal(want), "rectangle")
	lr := float64(cr.Metrics().MaxLoad())
	fmt.Printf("%-22s %5d %8d %7d %10d %12.0f\n", "rectangle (1 round)", 16,
		cr.Metrics().MaxLoad(), rr.Rounds, cr.Metrics().TotalComm(), cost.MatMulRectComm(n, lr))

	// Multi-round square-block with H = 4 blocks (p = 16).
	cs := mpc.NewCluster(16, 1)
	rs, err := matmul.SquareBlock(cs, a, b, 4, 1)
	check(err, rs.C.Equal(want), "square")
	fmt.Printf("%-22s %5d %8d %7d %10d %12s\n", "square-block H=4", 16,
		cs.Metrics().MaxLoad(), rs.Rounds, cs.Metrics().TotalComm(), "2Hn²")

	// Same algorithm with doubled processors (slide 119: p = 2H²).
	c2 := mpc.NewCluster(32, 1)
	r2, err := matmul.SquareBlock(c2, a, b, 4, 2)
	check(err, r2.C.Equal(want), "square g=2")
	fmt.Printf("%-22s %5d %8d %7d %10d %12s\n", "square-block H=4 g=2", 32,
		c2.Metrics().MaxLoad(), r2.Rounds, c2.Metrics().TotalComm(), "2Hn²+n²")

	// SQL formulation (slide 108).
	cq := mpc.NewCluster(16, 1)
	rq, err := matmul.SQLJoinAggregate(cq, a, b, 42)
	check(err, rq.C.Equal(want), "sql")
	fmt.Printf("%-22s %5d %8d %7d %10d %12s\n", "SQL join+aggregate", 16,
		cq.Metrics().MaxLoad(), rq.Rounds, cq.Metrics().TotalComm(), "-")

	fmt.Println("\nall four results verified element-wise against the local reference")
	fmt.Printf("lower bound  C ≥ n³/√L = %.0f at the square-block load (slides 123–124)\n",
		cost.MatMulCommLB(n, float64(cs.Metrics().MaxLoad())))
}

func check(err error, correct bool, what string) {
	if err != nil {
		panic(what + ": " + err.Error())
	}
	if !correct {
		panic(what + ": wrong product")
	}
}
