// Analytics demo: the grouped-aggregate join of slide 52 —
//
//	SELECT cKey, month, SUM(price)
//	FROM Orders ⋈ Customers GROUP BY cKey, month
//
// executed as a star-schema query (orders ⋈ customers ⋈ regions) with
// distributed Yannakakis (GYM), followed by a distributed group-by
// round. The acyclic query's load stays O((IN+OUT)/p) end to end.
package main

import (
	"fmt"
	"math/rand"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/yannakakis"
)

func main() {
	const (
		nOrders    = 40000
		nCustomers = 3000
		nRegions   = 50
		servers    = 16
	)
	rng := rand.New(rand.NewSource(11))
	// orders(oid, cKey, month, price): the unique order id keeps the
	// join's set semantics aligned with SQL bag semantics (duplicate
	// orders must each contribute to the SUM).
	orders := relation.New("orders", "oid", "cKey", "month", "price")
	for i := 0; i < nOrders; i++ {
		orders.Append(
			relation.Value(i),
			relation.Value(rng.Intn(nCustomers)),
			relation.Value(rng.Intn(12)),
			relation.Value(5+rng.Intn(500)))
	}
	// customers(cKey, region); regions(region, active) with some regions
	// filtered out, so the semijoin phases genuinely prune.
	customers := relation.New("customers", "cKey", "region")
	for i := 0; i < nCustomers; i++ {
		customers.Append(relation.Value(i), relation.Value(rng.Intn(nRegions)))
	}
	regions := relation.New("regions", "region", "active")
	for i := 0; i < nRegions; i++ {
		if i%3 != 0 { // a third of the regions are inactive
			regions.Append(relation.Value(i), 1)
		}
	}

	// The acyclic join: orders(oid, cKey, month, price) ⋈
	// customers(cKey, region) ⋈ regions(region, active).
	q := hypergraph.NewQuery("sales",
		hypergraph.Atom{Name: "orders", Vars: []string{"oid", "cKey", "month", "price"}},
		hypergraph.Atom{Name: "customers", Vars: []string{"cKey", "region"}},
		hypergraph.Atom{Name: "regions", Vars: []string{"region", "active"}},
	)
	ok, jt := hypergraph.IsAcyclic(q)
	if !ok {
		panic("star schema must be acyclic")
	}
	rels := map[string]*relation.Relation{
		"orders": orders, "customers": customers, "regions": regions,
	}
	c := mpc.NewCluster(servers, 1)
	res := yannakakis.GYMOptimized(c, jt, rels, "joined", 42)

	// Distributed GROUP BY (cKey, month) SUM(price): one more round that
	// co-partitions pre-aggregated partials by group key.
	c.Round("groupby", func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel("joined")
		if frag == nil {
			return
		}
		partial := relation.GroupBy("pagg", frag, []string{"cKey", "month"}, relation.Sum, "price", "total")
		st := out.Open("grouped", "cKey", "month", "total")
		for i := 0; i < partial.Len(); i++ {
			row := partial.Row(i)
			st.SendRow(relation.Bucket(relation.HashRow(row, []int{0, 1}, 77), c.P()), row)
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		frag := srv.RelOrEmpty("grouped", "cKey", "month", "total")
		srv.Put(relation.GroupBy("result", frag, []string{"cKey", "month"}, relation.Sum, "total", "total"))
	})
	result := c.Gather("result")
	m := c.Metrics()

	fmt.Println("=== star-schema analytics with GYM (slides 52, 64–94) ===")
	fmt.Printf("inputs       %d orders, %d customers, %d active regions, p = %d\n",
		nOrders, nCustomers, regions.Len(), servers)
	fmt.Printf("join phase   GYM optimized: %d rounds\n", res.Rounds)
	fmt.Printf("group-by     1 round with local pre-aggregation (combiners)\n")
	fmt.Printf("result       %d (cKey, month) groups\n", result.Len())
	fmt.Printf("cost         L = %d, r = %d, C = %d\n", m.MaxLoad(), m.Rounds(), m.TotalComm())

	// Verify against a single-machine evaluation.
	joined := relation.MultiJoin("ref", orders, customers, regions)
	want := relation.GroupBy("want", joined, []string{"cKey", "month"}, relation.Sum, "price", "total")
	if result.EqualAsSets(want) {
		fmt.Println("verified     distributed aggregate == single-machine reference")
	} else {
		panic("verification failed")
	}
}
