// Quickstart: count triangles in a graph on a simulated 64-server MPC
// cluster with the one-round HyperCube algorithm — the tutorial's
// headline result (slides 34–36) — and compare the metered load with
// the theory's N/p^{2/3}.
package main

import (
	"fmt"
	"math"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func main() {
	const (
		vertices = 5000
		edges    = 60000
		servers  = 64
	)
	// The triangle query Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x), with all
	// three relations equal to one random edge set.
	r, s, t := workload.TriangleInput(vertices, edges, 42)
	engine := core.NewEngine(servers, 1)
	exec, err := engine.Execute(core.Request{
		Query:     hypergraph.Triangle(),
		Relations: map[string]*relation.Relation{"R": r, "S": s, "T": t},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("=== mpcquery quickstart: one-round triangle counting ===")
	fmt.Printf("graph        %d vertices, %d edges\n", vertices, edges)
	fmt.Printf("cluster      p = %d servers\n", servers)
	fmt.Printf("planner      %s — %s\n", exec.Algorithm, exec.Reason)
	fmt.Printf("triangles    %d (directed)\n", exec.Output.Len())
	fmt.Printf("rounds       %d (the whole join is a single communication round)\n", exec.Rounds)
	fmt.Printf("max load L   %d tuples/server\n", exec.MaxLoad)
	fmt.Printf("theory       3·N/p^{2/3} = %.0f tuples/server (slide 36)\n",
		3*float64(edges)/math.Pow(servers, 2.0/3.0))
	fmt.Printf("total comm   %d tuples\n", exec.TotalComm)

	// Sanity: the distributed answer matches a single-machine join.
	want := core.Reference(hypergraph.Triangle(),
		map[string]*relation.Relation{"R": r, "S": s, "T": t})
	if exec.Output.EqualAsSets(want) {
		fmt.Println("verified     distributed result == single-machine reference")
	} else {
		panic("verification failed")
	}
}
