// Sorting demo (slides 99–106): sorts half a million records with PSRS
// (parallel sort by regular sampling) and with fan-limited multi-round
// sorts, demonstrating the Ω(log_L N) round/load trade-off behind the
// sorting lower bounds.
package main

import (
	"fmt"

	"mpcquery/internal/cost"
	"mpcquery/internal/mpc"
	"mpcquery/internal/sortmpc"
	"mpcquery/internal/workload"
)

func main() {
	const (
		n       = 500000
		servers = 32
	)
	fmt.Println("=== parallel sorting in MPC (slides 99–106) ===")
	fmt.Printf("N = %d records, p = %d servers, ideal load N/p = %d\n\n", n, servers, n/servers)
	fmt.Printf("%-26s %7s %9s %12s\n", "algorithm", "rounds", "max L", "total C")

	run := func(name string, sortFn func(c *mpc.Cluster) *sortmpc.Result) {
		c := mpc.NewCluster(servers, 1)
		c.ScatterRoundRobin(workload.Uniform("R", []string{"k", "v"}, n, 1<<40, 7))
		res := sortFn(c)
		if err := sortmpc.VerifySorted(c, "sorted", []string{"k"}); err != nil {
			panic(name + ": " + err.Error())
		}
		if c.TotalLen("sorted") != n {
			panic(name + ": lost tuples")
		}
		fmt.Printf("%-26s %7d %9d %12d\n", name, res.Rounds,
			c.Metrics().MaxLoad(), c.Metrics().TotalComm())
	}

	run("PSRS (regular sampling)", func(c *mpc.Cluster) *sortmpc.Result {
		return sortmpc.PSRS(c, "R", []string{"k"}, "sorted")
	})
	run("PSRS (random sampling)", func(c *mpc.Cluster) *sortmpc.Result {
		return sortmpc.PSRSRandomSample(c, "R", []string{"k"}, "sorted", 64)
	})
	for _, fan := range []int{2, 4} {
		fan := fan
		run(fmt.Sprintf("fan-limited (fan=%d)", fan), func(c *mpc.Cluster) *sortmpc.Result {
			return sortmpc.FanLimitedSort(c, "R", []string{"k"}, "sorted", fan)
		})
	}
	fmt.Printf("\nlower bounds: any MPC sort needs ≥ log_L N = %.1f rounds at L = N/p,\n",
		cost.SortRoundsLB(n, float64(n/servers)))
	fmt.Printf("and Ω(N·log_L N) = %.2g total communication (slide 105)\n",
		cost.SortCommLB(n, float64(n/servers)))
	fmt.Println("all runs verified globally sorted with zero lost records")
}
