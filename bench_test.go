// Package main's bench file wires every experiment of DESIGN.md's
// per-experiment index (E01–E20, one per table/figure of the tutorial)
// into `go test -bench=.`. Each benchmark regenerates its artifact and
// reports key measured quantities as benchmark metrics so runs are
// comparable over time. The tables themselves (paper vs measured) are
// printed by `go run ./cmd/mpcbench`.
package main

import (
	"strconv"
	"testing"

	"mpcquery/internal/experiments"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// runExperiment executes the experiment once per benchmark iteration
// and reports its row count (a proxy for completed sweep points).
func runExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		t := e.Run()
		rows = len(t.Rows)
		if rows == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE01CostRegimes(b *testing.B)        { runExperiment(b, "E01") }
func BenchmarkE02LoadConcentration(b *testing.B)  { runExperiment(b, "E02") }
func BenchmarkE03SkewThreshold(b *testing.B)      { runExperiment(b, "E03") }
func BenchmarkE04Cartesian(b *testing.B)          { runExperiment(b, "E04") }
func BenchmarkE05SkewJoin(b *testing.B)           { runExperiment(b, "E05") }
func BenchmarkE06SortJoin(b *testing.B)           { runExperiment(b, "E06") }
func BenchmarkE07TriangleHC(b *testing.B)         { runExperiment(b, "E07") }
func BenchmarkE08UnequalShares(b *testing.B)      { runExperiment(b, "E08") }
func BenchmarkE09Speedup(b *testing.B)            { runExperiment(b, "E09") }
func BenchmarkE10SkewHC(b *testing.B)             { runExperiment(b, "E10") }
func BenchmarkE11OneVsMulti(b *testing.B)         { runExperiment(b, "E11") }
func BenchmarkE12ScalabilityLimit(b *testing.B)   { runExperiment(b, "E12") }
func BenchmarkE13IntermediateBlowup(b *testing.B) { runExperiment(b, "E13") }
func BenchmarkE14GYM(b *testing.B)                { runExperiment(b, "E14") }
func BenchmarkE15Crossover(b *testing.B)          { runExperiment(b, "E15") }
func BenchmarkE16WidthDepth(b *testing.B)         { runExperiment(b, "E16") }
func BenchmarkE17PSRS(b *testing.B)               { runExperiment(b, "E17") }
func BenchmarkE18SortBounds(b *testing.B)         { runExperiment(b, "E18") }
func BenchmarkE19MatMul(b *testing.B)             { runExperiment(b, "E19") }
func BenchmarkE20CommLoadTradeoff(b *testing.B)   { runExperiment(b, "E20") }

// A-series: the ablations DESIGN.md calls out.
func BenchmarkA01ShareRounding(b *testing.B) { runExperiment(b, "A01") }
func BenchmarkA02LocalJoin(b *testing.B)     { runExperiment(b, "A02") }
func BenchmarkA03Splitters(b *testing.B)     { runExperiment(b, "A03") }
func BenchmarkA04MatMulGroups(b *testing.B)  { runExperiment(b, "A04") }
func BenchmarkA05Combiner(b *testing.B)      { runExperiment(b, "A05") }
func BenchmarkA06HLSemijoins(b *testing.B)   { runExperiment(b, "A06") }

// TestAllExperimentsProduceTables is the smoke test guaranteeing that
// every experiment in the index runs to completion and yields a
// non-empty table with a consistent schema.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are not short")
	}
	for _, e := range experiments.All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl := e.Run()
			if tbl.ID != e.ID {
				t.Fatalf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row %d has %d cells, header %d", i, len(row), len(tbl.Header))
				}
			}
			if tbl.Render() == "" || tbl.Markdown() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
	// Index completeness: E01..E20 all present.
	for i := 1; i <= 20; i++ {
		id := "E" + pad2(i)
		if experiments.ByID(id) == nil {
			t.Errorf("experiment %s missing from index", id)
		}
	}
}

func pad2(i int) string {
	s := strconv.Itoa(i)
	if len(s) == 1 {
		return "0" + s
	}
	return s
}

func BenchmarkE21SparseMatMul(b *testing.B)      { runExperiment(b, "E21") }
func BenchmarkE22BigJoin(b *testing.B)           { runExperiment(b, "E22") }
func BenchmarkE23ShareSweep(b *testing.B)        { runExperiment(b, "E23") }
func BenchmarkE24PlannerAcc(b *testing.B)        { runExperiment(b, "E24") }
func BenchmarkE25RecursiveRounds(b *testing.B)   { runExperiment(b, "E25") }
func BenchmarkE26IVMDeltaScaling(b *testing.B)   { runExperiment(b, "E26") }
func BenchmarkE27ServiceThroughput(b *testing.B) { runExperiment(b, "E27") }
func BenchmarkE28Adaptive(b *testing.B)          { runExperiment(b, "E28") }
func BenchmarkA07BigJoinOrder(b *testing.B)      { runExperiment(b, "A07") }

// BenchmarkMPCShuffle times the simulator's round engine through the
// public API: a fixed cluster-wide volume hash-shuffled every round,
// swept over the cluster sizes where delivery overhead dominates.
func BenchmarkMPCShuffle(b *testing.B) {
	const tuples = 1 << 17
	for _, p := range []int{8, 64, 256} {
		b.Run("p"+strconv.Itoa(p), func(b *testing.B) {
			c := mpc.NewCluster(p, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Round("shuffle", func(s *mpc.Server, out *mpc.Out) {
					st := out.Open("M", "a", "b")
					per := tuples / s.P()
					for j := 0; j < per; j++ {
						st.Send((j+s.ID())%s.P(), relation.Value(j), relation.Value(s.ID()))
					}
				})
				b.StopTimer()
				c.DeleteAll("M")
				c.ResetMetrics()
				b.StartTimer()
			}
		})
	}
}
