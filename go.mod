module mpcquery

go 1.22
