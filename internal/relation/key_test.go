package relation

import (
	"testing"
	"testing/quick"
)

func TestEncodeKeyInjective(t *testing.T) {
	f := func(a, b int64, c, d int64) bool {
		ka := EncodeKey([]Value{a, b}, []int{0, 1})
		kb := EncodeKey([]Value{c, d}, []int{0, 1})
		if a == c && b == d {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Deterministic(t *testing.T) {
	f := func(v int64, seed uint64) bool {
		return Hash64(v, seed) == Hash64(v, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64SeedIndependence(t *testing.T) {
	// Different seeds should produce different bucketings for most
	// values; check the two hash streams are not identical.
	same := 0
	for v := Value(0); v < 1000; v++ {
		if Bucket(Hash64(v, 1), 16) == Bucket(Hash64(v, 2), 16) {
			same++
		}
	}
	// Expect ~1/16 collisions on buckets; flag if > 1/4 agree.
	if same > 250 {
		t.Fatalf("seeds 1 and 2 agree on %d/1000 buckets; hashes not independent", same)
	}
}

func TestBucketBalance(t *testing.T) {
	// Sequential integers must spread near-uniformly over p buckets:
	// this is exactly the property parallel hash join relies on.
	const n, p = 100000, 64
	counts := make([]int, p)
	for v := Value(0); v < n; v++ {
		counts[Bucket(Hash64(v, 99), p)]++
	}
	mean := n / p
	for b, c := range counts {
		if c < mean*7/10 || c > mean*13/10 {
			t.Fatalf("bucket %d has %d of %d values (mean %d); hash too skewed", b, c, n, mean)
		}
	}
}

func TestHashRowMultiColumn(t *testing.T) {
	r1 := []Value{1, 2}
	r2 := []Value{2, 1}
	if HashRow(r1, []int{0, 1}, 7) == HashRow(r2, []int{0, 1}, 7) {
		t.Fatalf("hash should distinguish column order of values")
	}
	if HashRow(r1, []int{0}, 7) != HashRow(r2, []int{1}, 7) {
		t.Fatalf("hash of equal projected values must agree")
	}
}

func TestIndexLookup(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 10}, {2, 20}, {1, 30}})
	ix := BuildIndex(r, []string{"x"})
	if got := ix.LookupKey([]Value{1}); len(got) != 2 {
		t.Fatalf("lookup x=1 returned %d rows, want 2", len(got))
	}
	if got := ix.LookupKey([]Value{9}); len(got) != 0 {
		t.Fatalf("lookup x=9 returned %d rows, want 0", len(got))
	}
	if ix.DistinctKeys() != 2 {
		t.Fatalf("distinct keys = %d, want 2", ix.DistinctKeys())
	}
	// Probe with a differently-shaped row.
	probe := []Value{99, 1}
	if got := ix.Lookup(probe, []int{1}); len(got) != 2 {
		t.Fatalf("probe lookup returned %d rows, want 2", len(got))
	}
}

func TestGroupBySum(t *testing.T) {
	r := FromRows("R", []string{"g", "v"}, [][]Value{{1, 10}, {2, 5}, {1, 7}, {2, 5}})
	out := GroupBy("G", r, []string{"g"}, Sum, "v", "total")
	want := FromRows("W", []string{"g", "total"}, [][]Value{{1, 17}, {2, 10}})
	if !out.EqualAsSets(want) {
		t.Fatalf("group-by sum = %v, want %v", out, want)
	}
}

func TestGroupByCountMinMax(t *testing.T) {
	r := FromRows("R", []string{"g", "v"}, [][]Value{{1, 10}, {1, 3}, {2, 8}})
	cnt := GroupBy("C", r, []string{"g"}, Count, "", "n")
	if !cnt.EqualAsSets(FromRows("W", []string{"g", "n"}, [][]Value{{1, 2}, {2, 1}})) {
		t.Fatalf("count wrong: %v", cnt)
	}
	mn := GroupBy("M", r, []string{"g"}, Min, "v", "m")
	if !mn.EqualAsSets(FromRows("W", []string{"g", "m"}, [][]Value{{1, 3}, {2, 8}})) {
		t.Fatalf("min wrong: %v", mn)
	}
	mx := GroupBy("M", r, []string{"g"}, Max, "v", "m")
	if !mx.EqualAsSets(FromRows("W", []string{"g", "m"}, [][]Value{{1, 10}, {2, 8}})) {
		t.Fatalf("max wrong: %v", mx)
	}
}

func TestDistinct(t *testing.T) {
	r := FromRows("R", []string{"x"}, [][]Value{{3}, {1}, {3}, {2}})
	got := Distinct(r, "x")
	want := []Value{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct = %v, want %v", got, want)
		}
	}
}
