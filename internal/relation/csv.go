package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV serialization: the header row carries the schema, every further
// row one tuple of int64 values. This is the on-disk interchange format
// for cmd/mpcrun's -csv mode and for users bringing their own data.

// WriteCSV writes r with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.attrs); err != nil {
		return fmt.Errorf("relation: write header: %w", err)
	}
	record := make([]string, r.Arity())
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		for j, v := range row {
			record[j] = strconv.FormatInt(v, 10)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relation: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV (or any integer CSV with
// a header row) under the given name.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read header: %w", err)
	}
	rel := New(name, header...)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
		row := make([]Value, len(record))
		for j, s := range record {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: line %d column %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		rel.AppendRow(row)
	}
	return rel, nil
}
