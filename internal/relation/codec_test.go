package relation

import (
	"math"
	"testing"
)

func TestValueCodecRoundTrip(t *testing.T) {
	cases := []Value{0, 1, -1, 63, 64, -64, -65, 127, 128, 1 << 20, -(1 << 20),
		math.MaxInt64, math.MinInt64, math.MinInt64 + 1}
	for _, v := range cases {
		b := AppendValue(nil, v)
		got, n := ConsumeValue(b)
		if n != len(b) || got != v {
			t.Errorf("value %d: decoded %d consuming %d of %d bytes", v, got, n, len(b))
		}
	}
}

func TestValueCodecCompactness(t *testing.T) {
	// Zig-zag keeps small magnitudes of either sign to one byte.
	for _, v := range []Value{0, 1, -1, 63, -64} {
		if b := AppendValue(nil, v); len(b) != 1 {
			t.Errorf("value %d: %d bytes, want 1", v, len(b))
		}
	}
	if b := AppendValue(nil, math.MinInt64); len(b) > 10 {
		t.Errorf("MinInt64: %d bytes, want ≤ 10", len(b))
	}
}

func TestConsumeValuesRoundTrip(t *testing.T) {
	vals := []Value{5, -7, 0, 1 << 40, -(1 << 40), math.MaxInt64}
	b := AppendValues(nil, vals)
	got, n, ok := ConsumeValues(nil, b, len(vals))
	if !ok || n != len(b) {
		t.Fatalf("consume: ok=%v n=%d len=%d", ok, n, len(b))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d: got %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestConsumeValueMalformed(t *testing.T) {
	if _, n := ConsumeValue(nil); n != 0 {
		t.Errorf("empty input: consumed %d bytes", n)
	}
	// A truncated varint (continuation bit set, no next byte).
	if _, n := ConsumeValue([]byte{0x80}); n != 0 {
		t.Errorf("truncated varint: consumed %d bytes", n)
	}
	if _, _, ok := ConsumeValues(nil, []byte{0x01, 0x80}, 2); ok {
		t.Error("truncated stream decoded as ok")
	}
}
