package relation

import (
	"math/rand"
	"testing"
)

func TestNewPanics(t *testing.T) {
	mustPanic(t, "dup attr", func() { New("R", "x", "x") })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestAppendRowLen(t *testing.T) {
	r := New("R", "x", "y")
	if r.Len() != 0 || r.Arity() != 2 {
		t.Fatalf("empty relation wrong shape: len=%d arity=%d", r.Len(), r.Arity())
	}
	r.Append(1, 2)
	r.AppendRow([]Value{3, 4})
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	if got := r.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("row 1 = %v", got)
	}
	if r.Words() != 4 {
		t.Fatalf("words = %d, want 4", r.Words())
	}
	mustPanic(t, "arity mismatch", func() { r.Append(1) })
}

func TestColLookup(t *testing.T) {
	r := New("R", "x", "y", "z")
	if r.Col("y") != 1 || r.Col("w") != -1 {
		t.Fatalf("Col lookup broken")
	}
	mustPanic(t, "missing col", func() { r.MustCol("w") })
}

func TestProjectSelect(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 10}, {2, 20}, {3, 30}})
	p := r.Project("P", "y")
	if p.Len() != 3 || p.Row(0)[0] != 10 {
		t.Fatalf("project wrong: %v", p)
	}
	// Project can also reorder.
	p2 := r.Project("P2", "y", "x")
	if got := p2.Row(2); got[0] != 30 || got[1] != 3 {
		t.Fatalf("reorder project wrong: %v", got)
	}
	s := r.Select("S", func(row []Value) bool { return row[0] >= 2 })
	if s.Len() != 2 {
		t.Fatalf("select kept %d rows, want 2", s.Len())
	}
	se := r.SelectEq("E", "x", 2)
	if se.Len() != 1 || se.Row(0)[1] != 20 {
		t.Fatalf("selectEq wrong: %v", se)
	}
}

func TestSortDedup(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{
		{2, 1}, {1, 5}, {2, 1}, {1, 2}, {1, 2},
	})
	r.Dedup()
	want := [][]Value{{1, 2}, {1, 5}, {2, 1}}
	if r.Len() != len(want) {
		t.Fatalf("dedup kept %d rows, want %d: %v", r.Len(), len(want), r)
	}
	for i, w := range want {
		if got := r.Row(i); got[0] != w[0] || got[1] != w[1] {
			t.Fatalf("row %d = %v, want %v", i, got, w)
		}
	}
}

func TestSortByKeyOnly(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{3, 0}, {1, 9}, {2, 5}})
	r.SortBy("x")
	for i := 0; i < r.Len()-1; i++ {
		if r.Row(i)[0] > r.Row(i + 1)[0] {
			t.Fatalf("not sorted by x at %d", i)
		}
	}
}

func TestEqualAsSets(t *testing.T) {
	a := FromRows("A", []string{"x", "y"}, [][]Value{{1, 2}, {3, 4}, {1, 2}})
	b := FromRows("B", []string{"y", "x"}, [][]Value{{4, 3}, {2, 1}})
	if !a.EqualAsSets(b) {
		t.Fatalf("sets should be equal despite attr order and dups")
	}
	c := FromRows("C", []string{"x", "y"}, [][]Value{{1, 2}})
	if a.EqualAsSets(c) {
		t.Fatalf("different sets reported equal")
	}
	d := FromRows("D", []string{"x", "z"}, [][]Value{{1, 2}, {3, 4}})
	if a.EqualAsSets(d) {
		t.Fatalf("different schemas reported equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows("A", []string{"x"}, [][]Value{{1}})
	b := a.Clone()
	b.Append(2)
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", a.Len(), b.Len())
	}
}

func randRel(rng *rand.Rand, name string, attrs []string, n, domain int) *Relation {
	r := New(name, attrs...)
	row := make([]Value, len(attrs))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = Value(rng.Intn(domain))
		}
		r.AppendRow(row)
	}
	return r
}

// TestJoinImplementationsAgree cross-validates hash join, sort-merge
// join, and nested-loop join on random inputs, including high-duplicate
// domains that stress the merge run logic.
func TestJoinImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		dom := 2 + rng.Intn(8)
		r := randRel(rng, "R", []string{"x", "y"}, rng.Intn(40), dom)
		s := randRel(rng, "S", []string{"y", "z"}, rng.Intn(40), dom)
		h := HashJoin("J", r, s)
		m := SortMergeJoin("J", r, s)
		n := NestedLoopJoin("J", r, s)
		if !h.EqualAsSets(n) {
			t.Fatalf("trial %d: hash join != nested loop\nR=%v\nS=%v", trial, r, s)
		}
		if !m.EqualAsSets(n) {
			t.Fatalf("trial %d: sort-merge join != nested loop", trial)
		}
		// Bag sizes must also agree (joins preserve multiplicity).
		if h.Len() != n.Len() || m.Len() != n.Len() {
			t.Fatalf("trial %d: bag sizes differ: hash=%d merge=%d nl=%d", trial, h.Len(), m.Len(), n.Len())
		}
	}
}

func TestJoinMultiAttr(t *testing.T) {
	r := FromRows("R", []string{"x", "y", "z"}, [][]Value{{1, 2, 3}, {1, 2, 4}, {5, 6, 7}})
	s := FromRows("S", []string{"x", "y", "w"}, [][]Value{{1, 2, 9}, {5, 0, 9}})
	j := HashJoin("J", r, s)
	// Shares x and y: only the (1,2,*) rows match.
	if j.Len() != 2 {
		t.Fatalf("join len = %d, want 2: %v", j.Len(), j)
	}
	if j.Arity() != 4 {
		t.Fatalf("join arity = %d, want 4 (x,y,z,w)", j.Arity())
	}
}

func TestCrossProduct(t *testing.T) {
	r := FromRows("R", []string{"x"}, [][]Value{{1}, {2}})
	s := FromRows("S", []string{"z"}, [][]Value{{10}, {20}, {30}})
	cp := CrossProduct("C", r, s)
	if cp.Len() != 6 {
		t.Fatalf("cross product len = %d, want 6", cp.Len())
	}
	mustPanic(t, "shared attrs", func() { CrossProduct("C", r, r) })
}

func TestSemijoinAntijoin(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 1}, {2, 2}, {3, 3}})
	s := FromRows("S", []string{"y", "z"}, [][]Value{{1, 0}, {3, 0}})
	semi := Semijoin("SJ", r, s)
	anti := Antijoin("AJ", r, s)
	if semi.Len() != 2 || anti.Len() != 1 {
		t.Fatalf("semi=%d anti=%d, want 2,1", semi.Len(), anti.Len())
	}
	if anti.Row(0)[1] != 2 {
		t.Fatalf("antijoin kept wrong row: %v", anti.Row(0))
	}
	// Semijoin + antijoin partition r.
	if semi.Len()+anti.Len() != r.Len() {
		t.Fatalf("semijoin/antijoin do not partition input")
	}
	// No shared attributes: semijoin keeps all iff s nonempty.
	u := FromRows("U", []string{"w"}, [][]Value{{5}})
	if Semijoin("SJ", r, u).Len() != r.Len() {
		t.Fatalf("semijoin with disjoint nonempty should keep all")
	}
	if Semijoin("SJ", r, New("E", "w")).Len() != 0 {
		t.Fatalf("semijoin with disjoint empty should keep none")
	}
	if Antijoin("AJ", r, New("E", "w")).Len() != r.Len() {
		t.Fatalf("antijoin with disjoint empty should keep all")
	}
}

func TestSemijoinReducesNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := randRel(rng, "R", []string{"x", "y"}, rng.Intn(50), 10)
		s := randRel(rng, "S", []string{"y", "z"}, rng.Intn(50), 10)
		semi := Semijoin("SJ", r, s)
		if semi.Len() > r.Len() {
			t.Fatalf("semijoin grew: %d > %d", semi.Len(), r.Len())
		}
		// Every semijoin survivor must appear in the full join projection.
		j := HashJoin("J", r, s).Project("P", "x", "y")
		j.Dedup()
		sd := semi.Clone()
		sd.Dedup()
		if !sd.EqualAsSets(j) {
			t.Fatalf("semijoin survivors != join projection")
		}
	}
}

func TestIntersect(t *testing.T) {
	a := FromRows("A", []string{"x"}, [][]Value{{1}, {2}, {3}})
	b := FromRows("B", []string{"x"}, [][]Value{{2}, {3}, {4}})
	c := FromRows("C", []string{"x"}, [][]Value{{3}, {4}, {5}})
	got := Intersect("I", a, b, c)
	if got.Len() != 1 || got.Row(0)[0] != 3 {
		t.Fatalf("intersect = %v, want {3}", got)
	}
}

func TestMultiJoinChain(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 2}, {2, 3}})
	s := FromRows("S", []string{"y", "z"}, [][]Value{{2, 5}, {3, 6}})
	u := FromRows("U", []string{"z", "w"}, [][]Value{{5, 7}})
	j := MultiJoin("J", r, s, u)
	if j.Len() != 1 {
		t.Fatalf("chain join len = %d, want 1: %v", j.Len(), j)
	}
	row := j.Row(0)
	want := []Value{1, 2, 5, 7}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("chain join row = %v, want %v", row, want)
		}
	}
}

func TestTopKByCount(t *testing.T) {
	r := FromRows("R", []string{"x"}, [][]Value{{1}, {1}, {1}, {2}, {2}, {3}})
	top := TopKByCount(r, "x", 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Fatalf("topK = %v", top)
	}
}
