package relation

import "testing"

// FuzzBucketRouting fuzzes the hash-partition routing primitive every
// shuffle round is built on: for any hash value and cluster size,
// Bucket must assign exactly one server in [0, p), deterministically.
func FuzzBucketRouting(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(1<<63), 7)
	f.Add(^uint64(0), 1024)
	f.Fuzz(func(t *testing.T, h uint64, p int) {
		if p < 1 || p > 1<<16 {
			t.Skip("cluster size outside supported range")
		}
		dst := Bucket(h, p)
		if dst < 0 || dst >= p {
			t.Fatalf("Bucket(%d, %d) = %d outside [0, %d)", h, p, dst, p)
		}
		if again := Bucket(h, p); again != dst {
			t.Fatalf("Bucket(%d, %d) nondeterministic: %d then %d", h, p, dst, again)
		}
	})
}

// FuzzHashRowRouting fuzzes end-to-end tuple routing (HashRow ∘ Bucket)
// as the algorithms use it: the same tuple hashed on the same columns
// with the same seed must land on the same single server in [0, p) —
// the invariant that makes hash joins meet matching tuples.
func FuzzHashRowRouting(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), uint64(0), 2)
	f.Add(int64(-1), int64(42), int64(7), uint64(0x9e3779b9), 8)
	f.Add(int64(1<<62), int64(-1<<62), int64(5), ^uint64(0), 1)
	f.Fuzz(func(t *testing.T, a, b, c int64, seed uint64, p int) {
		if p < 1 || p > 1<<16 {
			t.Skip("cluster size outside supported range")
		}
		row := []Value{a, b, c}
		cols := []int{0, 1, 2}
		dst := Bucket(HashRow(row, cols, seed), p)
		if dst < 0 || dst >= p {
			t.Fatalf("tuple %v routed to %d outside [0, %d)", row, dst, p)
		}
		// A copy of the tuple (as after a network hop) routes identically.
		copyRow := []Value{a, b, c}
		if again := Bucket(HashRow(copyRow, cols, seed), p); again != dst {
			t.Fatalf("tuple %v routed to %d then %d", row, dst, again)
		}
		// Routing on a subset of columns must agree for tuples equal on
		// that subset, regardless of the other attributes.
		other := []Value{a, b, c + 1}
		if d2 := Bucket(HashRow(other, []int{0, 1}, seed), p); d2 != Bucket(HashRow(row, []int{0, 1}, seed), p) {
			t.Fatalf("join-key routing differs for tuples equal on the key: %d vs %d", d2, dst)
		}
	})
}
