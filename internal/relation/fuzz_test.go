package relation

import "testing"

// FuzzBucketRouting fuzzes the hash-partition routing primitive every
// shuffle round is built on: for any hash value and cluster size,
// Bucket must assign exactly one server in [0, p), deterministically.
func FuzzBucketRouting(f *testing.F) {
	f.Add(uint64(0), 1)
	f.Add(uint64(1<<63), 7)
	f.Add(^uint64(0), 1024)
	f.Fuzz(func(t *testing.T, h uint64, p int) {
		if p < 1 || p > 1<<16 {
			t.Skip("cluster size outside supported range")
		}
		dst := Bucket(h, p)
		if dst < 0 || dst >= p {
			t.Fatalf("Bucket(%d, %d) = %d outside [0, %d)", h, p, dst, p)
		}
		if again := Bucket(h, p); again != dst {
			t.Fatalf("Bucket(%d, %d) nondeterministic: %d then %d", h, p, dst, again)
		}
	})
}

// FuzzHashRowRouting fuzzes end-to-end tuple routing (HashRow ∘ Bucket)
// as the algorithms use it: the same tuple hashed on the same columns
// with the same seed must land on the same single server in [0, p) —
// the invariant that makes hash joins meet matching tuples.
func FuzzHashRowRouting(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), uint64(0), 2)
	f.Add(int64(-1), int64(42), int64(7), uint64(0x9e3779b9), 8)
	f.Add(int64(1<<62), int64(-1<<62), int64(5), ^uint64(0), 1)
	f.Fuzz(func(t *testing.T, a, b, c int64, seed uint64, p int) {
		if p < 1 || p > 1<<16 {
			t.Skip("cluster size outside supported range")
		}
		row := []Value{a, b, c}
		cols := []int{0, 1, 2}
		dst := Bucket(HashRow(row, cols, seed), p)
		if dst < 0 || dst >= p {
			t.Fatalf("tuple %v routed to %d outside [0, %d)", row, dst, p)
		}
		// A copy of the tuple (as after a network hop) routes identically.
		copyRow := []Value{a, b, c}
		if again := Bucket(HashRow(copyRow, cols, seed), p); again != dst {
			t.Fatalf("tuple %v routed to %d then %d", row, dst, again)
		}
		// Routing on a subset of columns must agree for tuples equal on
		// that subset, regardless of the other attributes.
		other := []Value{a, b, c + 1}
		if d2 := Bucket(HashRow(other, []int{0, 1}, seed), p); d2 != Bucket(HashRow(row, []int{0, 1}, seed), p) {
			t.Fatalf("join-key routing differs for tuples equal on the key: %d vs %d", d2, dst)
		}
	})
}

// FuzzRadixIndex fuzzes the radix hash kernel against the EncodeKey map
// oracle: for an arbitrary relation (decoded from raw bytes as int64
// key/payload pairs) and an arbitrary probe key, insert and lookup must
// agree exactly — same groups, same row ids, same order — including
// when keys collide in the table's hash buckets.
func FuzzRadixIndex(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, int64(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, int64(-1))
	f.Fuzz(func(t *testing.T, data []byte, probeKey int64) {
		r := New("F", "k", "v")
		for i := 0; i+8 <= len(data); i += 8 {
			var k int64
			for j := 0; j < 8; j++ {
				k |= int64(data[i+j]) << (8 * j)
			}
			// Narrow part of the key space so collisions actually occur.
			if k%3 == 0 {
				k %= 16
			}
			r.Append(Value(k), Value(i))
		}
		ix := BuildIndex(r, []string{"k"})
		oracle := map[Value][]int32{}
		for i := 0; i < r.Len(); i++ {
			oracle[r.Row(i)[0]] = append(oracle[r.Row(i)[0]], int32(i))
		}
		if ix.DistinctKeys() != len(oracle) {
			t.Fatalf("DistinctKeys = %d, oracle %d", ix.DistinctKeys(), len(oracle))
		}
		check := func(key Value) {
			got := ix.LookupKey([]Value{key})
			want := oracle[key]
			if len(got) != len(want) {
				t.Fatalf("key %d: %d rows, oracle %d", key, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("key %d: rows %v, oracle %v", key, got, want)
				}
			}
		}
		for k := range oracle {
			check(k)
		}
		check(Value(probeKey))
	})
}
