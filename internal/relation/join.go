package relation

import "sort"

// Local (single-server) join algorithms. The tutorial stresses that the
// choice of local join algorithm is independent of the parallel
// algorithm (slide 32); every parallel operator in this repository takes
// whatever arrives at a server and applies one of these.

// HashJoin computes the natural join of r and s using a radix hash
// index on the smaller input. The output schema is r's attributes
// followed by s's non-shared attributes. With no shared attributes it
// degenerates to the Cartesian product.
//
// Output order matches the historical map-based implementation exactly:
// probe rows in relation order, each matched against its key group's
// build rows in ascending row order — the bit-identity the differential
// harnesses rely on.
func HashJoin(name string, r, s *Relation) *Relation {
	shared := SharedAttrs(r, s)
	out := New(name, joinSchema(r, s)...)
	if len(shared) == 0 {
		return crossProduct(out, r, s)
	}
	// Build on the smaller side.
	build, probe := r, s
	if s.Len() < r.Len() {
		build, probe = s, r
	}
	buildCols := make([]int, len(shared))
	probeCols := make([]int, len(shared))
	for i, a := range shared {
		buildCols[i] = build.MustCol(a)
		probeCols[i] = probe.MustCol(a)
	}
	a := getArena()
	defer putArena(a)
	var ri rowIndex
	buildRowIndex(&ri, build, buildCols, a)

	// Pass 1: probe every row once, recording its key group. Probes are
	// radix-partitioned like the build side, so each burst of lookups
	// hits one cache-resident slot region; refs land at the original
	// row position, preserving output order. The match refs double as
	// the exact output size, so pass 2 emits into fully presized
	// storage with no re-probing and no append growth.
	n := probe.Len()
	checkRowCount("HashJoin probe", n)
	refs := arenaRefs(&a.refs, n)
	phash := arenaU64(&a.hashes, n)
	for i := 0; i < n; i++ {
		phash[i] = kernelRowHash(probe.Row(i), probeCols, kernelSeed)
	}
	total := 0
	if nparts := len(ri.pMask); nparts == 1 {
		for i := 0; i < n; i++ {
			g := ri.lookupRefH(phash[i], probe.Row(i), probeCols)
			refs[i] = g
			total += int(g.count)
		}
	} else {
		ordRows, ordHash, _ := partitionScatter(a, phash, nparts, ri.shift)
		for i, row := range ordRows {
			g := ri.lookupRefH(ordHash[i], probe.Row(int(row)), probeCols)
			refs[row] = g
			total += int(g.count)
		}
	}

	// Pass 2: bulk emit. Each output row is the r-row followed by s's
	// non-shared columns, exactly as makeEmitter appends them.
	extra := make([]int, 0, s.Arity())
	for i, at := range s.Attrs() {
		if r.Col(at) < 0 {
			extra = append(extra, i)
		}
	}
	out.data = make([]Value, total*out.Arity())
	data := out.data
	w := 0
	if build == r {
		for i := 0; i < n; i++ {
			g := refs[i]
			if g.count == 0 {
				continue
			}
			srow := probe.Row(i)
			for _, bj := range ri.group(g) {
				w += copy(data[w:], build.Row(int(bj)))
				for _, c := range extra {
					data[w] = srow[c]
					w++
				}
			}
		}
	} else {
		for i := 0; i < n; i++ {
			g := refs[i]
			if g.count == 0 {
				continue
			}
			rrow := probe.Row(i)
			for _, bj := range ri.group(g) {
				srow := build.Row(int(bj))
				w += copy(data[w:], rrow)
				for _, c := range extra {
					data[w] = srow[c]
					w++
				}
			}
		}
	}
	return out
}

// makeEmitter returns a function appending the natural-join combination
// of a row of r and a row of s to out.
func makeEmitter(out, r, s *Relation) func(rrow, srow []Value) {
	extra := make([]int, 0, s.Arity())
	for i, a := range s.Attrs() {
		if r.Col(a) < 0 {
			extra = append(extra, i)
		}
	}
	return func(rrow, srow []Value) {
		out.data = append(out.data, rrow...)
		for _, c := range extra {
			out.data = append(out.data, srow[c])
		}
	}
}

func crossProduct(out, r, s *Relation) *Relation {
	emit := makeEmitter(out, r, s)
	nr, ns := r.Len(), s.Len()
	out.Grow(nr * ns * out.Arity()) // exact output size: one reallocation at most
	for i := 0; i < nr; i++ {
		ri := r.Row(i)
		for j := 0; j < ns; j++ {
			emit(ri, s.Row(j))
		}
	}
	return out
}

// CrossProduct computes the Cartesian product of r and s. Shared
// attribute names are not allowed (rename first).
func CrossProduct(name string, r, s *Relation) *Relation {
	if len(SharedAttrs(r, s)) != 0 {
		panic("relation: CrossProduct with shared attributes; use HashJoin")
	}
	return crossProduct(New(name, joinSchema(r, s)...), r, s)
}

// SortMergeJoin computes the natural join by sorting both inputs on the
// shared attributes and merging. Semantics match HashJoin; it exists so
// tests can cross-validate the two implementations and so the parallel
// sort join has a local counterpart.
func SortMergeJoin(name string, r, s *Relation) *Relation {
	shared := SharedAttrs(r, s)
	out := New(name, joinSchema(r, s)...)
	if len(shared) == 0 {
		return crossProduct(out, r, s)
	}
	rs, ss := r.Clone(), s.Clone()
	rs.SortBy(shared...)
	ss.SortBy(shared...)
	rc := make([]int, len(shared))
	sc := make([]int, len(shared))
	for i, a := range shared {
		rc[i] = rs.MustCol(a)
		sc[i] = ss.MustCol(a)
	}
	cmp := func(a, b []Value) int {
		for i := range shared {
			if a[rc[i]] != b[sc[i]] {
				if a[rc[i]] < b[sc[i]] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	emit := makeEmitter(out, r, s)
	i, j := 0, 0
	nr, ns := rs.Len(), ss.Len()
	for i < nr && j < ns {
		c := cmp(rs.Row(i), ss.Row(j))
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the run of equal keys on both sides.
			i2 := i + 1
			for i2 < nr && cmp(rs.Row(i2), ss.Row(j)) == 0 {
				i2++
			}
			j2 := j + 1
			for j2 < ns && cmp(rs.Row(i), ss.Row(j2)) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					emit(rs.Row(a), ss.Row(b))
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

// NestedLoopJoin is the O(|r|·|s|) reference implementation used only to
// validate the fast joins in tests.
func NestedLoopJoin(name string, r, s *Relation) *Relation {
	shared := SharedAttrs(r, s)
	out := New(name, joinSchema(r, s)...)
	rc := make([]int, len(shared))
	sc := make([]int, len(shared))
	for i, a := range shared {
		rc[i] = r.MustCol(a)
		sc[i] = s.MustCol(a)
	}
	emit := makeEmitter(out, r, s)
	nr, ns := r.Len(), s.Len()
	for i := 0; i < nr; i++ {
		ri := r.Row(i)
	probe:
		for j := 0; j < ns; j++ {
			sj := s.Row(j)
			for k := range shared {
				if ri[rc[k]] != sj[sc[k]] {
					continue probe
				}
			}
			emit(ri, sj)
		}
	}
	return out
}

// Semijoin returns the tuples of r that join with at least one tuple of
// s on their shared attributes (r ⋉ s). With no shared attributes it
// returns all of r if s is non-empty, else none.
func Semijoin(name string, r, s *Relation) *Relation {
	shared := SharedAttrs(r, s)
	if len(shared) == 0 {
		if s.Len() > 0 {
			out := r.Clone()
			out.name = name
			return out
		}
		return New(name, r.attrs...)
	}
	scols := make([]int, len(shared))
	cols := make([]int, len(shared))
	for i, a := range shared {
		scols[i] = s.MustCol(a)
		cols[i] = r.MustCol(a)
	}
	a := getArena()
	defer putArena(a)
	var ri rowIndex
	buildRowIndex(&ri, s, scols, a)
	return r.Select(name, func(row []Value) bool {
		return ri.lookupRef(row, cols).count > 0
	})
}

// Antijoin returns the tuples of r that join with no tuple of s.
func Antijoin(name string, r, s *Relation) *Relation {
	shared := SharedAttrs(r, s)
	if len(shared) == 0 {
		if s.Len() > 0 {
			return New(name, r.attrs...)
		}
		out := r.Clone()
		out.name = name
		return out
	}
	scols := make([]int, len(shared))
	cols := make([]int, len(shared))
	for i, a := range shared {
		scols[i] = s.MustCol(a)
		cols[i] = r.MustCol(a)
	}
	a := getArena()
	defer putArena(a)
	var ri rowIndex
	buildRowIndex(&ri, s, scols, a)
	return r.Select(name, func(row []Value) bool {
		return ri.lookupRef(row, cols).count == 0
	})
}

// Intersect returns the set intersection of relations with identical
// schemas (used by the optimized GYM semijoin phase).
func Intersect(name string, rels ...*Relation) *Relation {
	if len(rels) == 0 {
		panic("relation: Intersect of nothing")
	}
	out := rels[0].Clone()
	out.name = name
	for _, s := range rels[1:] {
		out = Semijoin(name, out, s.Project("tmp", out.attrs...))
	}
	out.Dedup()
	return out
}

// MultiJoin naturally joins the given relations left to right with
// binary hash joins. It is the baseline "iterative binary join" local
// evaluator; see GenericJoin for the worst-case-optimal alternative.
func MultiJoin(name string, rels ...*Relation) *Relation {
	if len(rels) == 0 {
		panic("relation: MultiJoin of nothing")
	}
	acc := rels[0]
	for i, s := range rels[1:] {
		nm := name
		if i < len(rels)-2 {
			nm = "tmp"
		}
		acc = HashJoin(nm, acc, s)
	}
	if acc == rels[0] {
		acc = acc.Clone()
		acc.name = name
	}
	return acc
}

// TopKByCount is a helper returning the k most frequent values of attr,
// most frequent first, ties broken by value.
func TopKByCount(r *Relation, attr string, k int) []Value {
	c := r.MustCol(attr)
	counts := make(map[Value]int)
	n := r.Len()
	for i := 0; i < n; i++ {
		counts[r.Row(i)[c]]++
	}
	vals := make([]Value, 0, len(counts))
	for v := range counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(a, b int) bool {
		if counts[vals[a]] != counts[vals[b]] {
			return counts[vals[a]] > counts[vals[b]]
		}
		return vals[a] < vals[b]
	})
	if len(vals) > k {
		vals = vals[:k]
	}
	return vals
}
