package relation

import "sort"

// LeapfrogJoin is a second worst-case-optimal multiway join, in the
// style of Leapfrog Triejoin (Veldhuizen '14): each relation is sorted
// into a trie ordering consistent with the global variable order, and
// at every level the participating relations intersect their current
// key ranges by leapfrogging — repeatedly galloping (exponential
// search) to the maximum of the current candidates. It computes exactly
// the same set of bindings as GenericJoin; having two independent
// worst-case-optimal implementations lets tests cross-validate them and
// benchmarks compare their constants.
//
// varOrder must cover every attribute of every input exactly once; the
// output schema is varOrder.
func LeapfrogJoin(name string, varOrder []string, rels ...*Relation) *Relation {
	if len(rels) == 0 {
		panic("relation: LeapfrogJoin of nothing")
	}
	// seen/pos are membership/position maps over variable names; their
	// iteration order is never relied upon (trie levels are ordered by
	// pos values, and all row comparisons are numeric on Value tuples).
	seen := map[string]bool{}
	pos := map[string]int{}
	for i, v := range varOrder {
		if seen[v] {
			panic("relation: LeapfrogJoin duplicate variable " + v)
		}
		seen[v] = true
		pos[v] = i
	}
	for _, r := range rels {
		for _, a := range r.Attrs() {
			if !seen[a] {
				panic("relation: LeapfrogJoin variable order misses " + a)
			}
		}
	}
	out := New(name, varOrder...)
	// Per relation: its columns permuted into global variable order, and
	// its rows sorted by that permuted key.
	type trie struct {
		rel  *Relation
		cols []int // column index per level (sorted by global var order)
		vars []int // global position of each level's variable
		rows []int32
	}
	tries := make([]*trie, len(rels))
	for i, r := range rels {
		t := &trie{rel: r}
		attrs := append([]string(nil), r.Attrs()...)
		sort.Slice(attrs, func(a, b int) bool { return pos[attrs[a]] < pos[attrs[b]] })
		for _, a := range attrs {
			t.cols = append(t.cols, r.MustCol(a))
			t.vars = append(t.vars, pos[a])
		}
		t.rows = make([]int32, r.Len())
		for j := range t.rows {
			t.rows[j] = int32(j)
		}
		sort.Slice(t.rows, func(a, b int) bool {
			ra, rb := r.Row(int(t.rows[a])), r.Row(int(t.rows[b]))
			for _, c := range t.cols {
				if ra[c] != rb[c] {
					return ra[c] < rb[c]
				}
			}
			return false
		})
		tries[i] = t
	}
	// Current row range per relation, and each relation's current trie
	// level (how many of its own variables are bound).
	type rng struct{ lo, hi int }
	ranges := make([]rng, len(tries))
	levels := make([]int, len(tries))
	for i, t := range tries {
		ranges[i] = rng{0, len(t.rows)}
	}
	binding := make([]Value, len(varOrder))

	// valueAt returns the level-key of trie i's row at sorted index k.
	valueAt := func(i, k int) Value {
		t := tries[i]
		return t.rel.Row(int(t.rows[k]))[t.cols[levels[i]]]
	}
	// gallop advances lo within [lo, hi) to the first row whose current
	// level value is ≥ v, using exponential search then binary search.
	gallop := func(i int, v Value) int {
		lo, hi := ranges[i].lo, ranges[i].hi
		if lo >= hi || valueAt(i, lo) >= v {
			return lo
		}
		step := 1
		prev := lo
		for lo+step < hi && valueAt(i, lo+step) < v {
			prev = lo + step
			step *= 2
		}
		limit := lo + step
		if limit > hi {
			limit = hi
		}
		return prev + sort.Search(limit-prev, func(k int) bool {
			return valueAt(i, prev+k) >= v
		})
	}
	// runEnd returns the end of the run of rows equal to v at the current
	// level of trie i, starting at lo.
	runEnd := func(i, lo int, v Value) int {
		hi := ranges[i].hi
		return lo + sort.Search(hi-lo, func(k int) bool {
			return valueAt(i, lo+k) > v
		})
	}

	// Contract: every recurse call leaves ranges and levels exactly as
	// it found them for its participants — deeper levels iterate over
	// the same shared state, so each level restores on every exit path.
	var recurse func(depth int)
	recurse = func(depth int) {
		if depth == len(varOrder) {
			out.data = append(out.data, binding...)
			return
		}
		// Relations whose next unbound variable is varOrder[depth].
		var part []int
		for i, t := range tries {
			if levels[i] < len(t.cols) && t.vars[levels[i]] == depth {
				part = append(part, i)
			}
		}
		if len(part) == 0 {
			// No relation constrains this variable: with full-coverage
			// inputs this cannot happen for satisfiable bindings.
			return
		}
		entry := make([]rng, len(part))
		for k, i := range part {
			entry[k] = ranges[i]
		}
		defer func() {
			for k, i := range part {
				ranges[i] = entry[k]
			}
		}()
		// Any empty range kills the subtree.
		for _, i := range part {
			if ranges[i].lo >= ranges[i].hi {
				return
			}
		}
		// Leapfrog: candidate = max of current heads; gallop all to it.
		run := make([]rng, len(part))
		for {
			cand := valueAt(part[0], ranges[part[0]].lo)
			for _, i := range part[1:] {
				if v := valueAt(i, ranges[i].lo); v > cand {
					cand = v
				}
			}
			agree := true
			for _, i := range part {
				lo := gallop(i, cand)
				ranges[i].lo = lo
				if lo >= ranges[i].hi {
					return // exhausted
				}
				if valueAt(i, lo) != cand {
					agree = false
				}
			}
			if !agree {
				continue
			}
			// Match: bind and recurse on the equal runs.
			binding[depth] = cand
			for k, i := range part {
				end := runEnd(i, ranges[i].lo, cand)
				run[k] = rng{ranges[i].lo, end}
				ranges[i] = run[k]
				levels[i]++
			}
			recurse(depth + 1)
			for k, i := range part {
				// Continue after the run, within this level's bounds.
				ranges[i] = rng{run[k].hi, entry[k].hi}
				levels[i]--
			}
			for _, i := range part {
				if ranges[i].lo >= ranges[i].hi {
					return
				}
			}
		}
	}
	recurse(0)
	return out
}
