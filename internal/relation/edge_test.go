package relation

import "testing"

// Table-driven edge cases for the relational substrate: zero-arity
// schemas, empty relations, and duplicate tuples under bag semantics.
// These pin the behaviors every MPC algorithm silently relies on.

func mustPanicR(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	f()
}

// TestZeroAritySchemas pins the nullary-relation contract: arity-0
// relations are legal (they carry decision-query results as a
// multiplicity of the empty tuple), store no words, and behave as
// proper bags under append, projection, selection, and dedup.
func TestZeroAritySchemas(t *testing.T) {
	t.Run("New with empty schema", func(t *testing.T) {
		r := New("R")
		if r.Arity() != 0 || r.Len() != 0 || r.Words() != 0 {
			t.Fatalf("fresh nullary relation: arity=%d len=%d words=%d", r.Arity(), r.Len(), r.Words())
		}
		r.Append()
		r.AppendRow(nil)
		r.AppendFlat(nil, 3)
		if r.Len() != 5 || r.Words() != 0 {
			t.Fatalf("after appends: len=%d words=%d, want 5/0", r.Len(), r.Words())
		}
		if row := r.Row(2); len(row) != 0 {
			t.Fatalf("nullary row has %d values", len(row))
		}
		c := r.Clone()
		if c.Len() != 5 {
			t.Fatalf("clone len = %d", c.Len())
		}
		c.AppendAll(r)
		if c.Len() != 10 {
			t.Fatalf("appendAll len = %d", c.Len())
		}
		sel := r.Select("s", func([]Value) bool { return true })
		if sel.Len() != 5 {
			t.Fatalf("select len = %d", sel.Len())
		}
		r.Dedup()
		if r.Len() != 1 {
			t.Fatalf("dedup left %d copies of the empty tuple", r.Len())
		}
		if !r.EqualAsSets(c) {
			t.Fatal("nullary EqualAsSets must ignore multiplicity")
		}
		mustPanicR(t, "appendFlat words into arity 0", func() { r.AppendFlat([]Value{1}, 1) })
	})
	t.Run("FromRows with empty schema", func(t *testing.T) {
		if r := FromRows("R", nil, nil); r.Arity() != 0 || r.Len() != 0 {
			t.Fatalf("arity=%d len=%d", r.Arity(), r.Len())
		}
	})
	t.Run("Project to zero attributes keeps rows", func(t *testing.T) {
		r := FromRows("R", []string{"x"}, [][]Value{{1}, {2}, {2}})
		p := r.Project("p") // the decision-query projection
		if p.Arity() != 0 || p.Len() != 3 {
			t.Fatalf("arity=%d len=%d, want 0/3", p.Arity(), p.Len())
		}
	})
	// Wrong-arity appends are still rejected.
	r := New("R", "x", "y")
	mustPanicR(t, "append arity 0", func() { r.Append() })
	mustPanicR(t, "append arity 1", func() { r.Append(1) })
	mustPanicR(t, "appendFlat word mismatch", func() { r.AppendFlat([]Value{1, 2, 3}, 2) })
}

// TestEmptyRelations: every operator must treat an empty relation as a
// proper zero, not a special case.
func TestEmptyRelations(t *testing.T) {
	empty := New("E", "x", "y")
	nonEmpty := FromRows("R", []string{"y", "z"}, [][]Value{{1, 2}})
	tests := []struct {
		name string
		got  *Relation
	}{
		{"project", empty.Project("p", "y")},
		{"select", empty.Select("s", func([]Value) bool { return true })},
		{"clone", empty.Clone()},
		{"hash join empty⋈R", HashJoin("j", empty, nonEmpty)},
		{"hash join R⋈empty", HashJoin("j", nonEmpty, empty)},
		{"sort-merge join", SortMergeJoin("j", empty, nonEmpty)},
		{"nested-loop join", NestedLoopJoin("j", empty, nonEmpty)},
		{"semijoin", Semijoin("sj", empty, nonEmpty)},
		{"generic join", GenericJoin("g", []string{"x", "y", "z"}, empty, nonEmpty)},
		{"group-by", GroupBy("a", empty, []string{"x"}, Sum, "y", "s")},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got.Len() != 0 {
				t.Fatalf("got %d tuples from an empty input, want 0", tc.got.Len())
			}
		})
	}
	// In-place operators are no-ops on empties.
	e := New("E", "x")
	e.Sort()
	e.Dedup()
	if e.Len() != 0 || e.Words() != 0 {
		t.Fatal("sort/dedup changed an empty relation")
	}
	// Antijoin against an empty reducer keeps everything.
	if got := Antijoin("aj", nonEmpty, New("E", "y")); got.Len() != 1 {
		t.Fatalf("antijoin vs empty kept %d tuples, want 1", got.Len())
	}
}

// TestDuplicateTuplesBagSemantics: the storage layer is a bag —
// duplicates survive append, projection, selection and joins, and only
// Dedup collapses them.
func TestDuplicateTuplesBagSemantics(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 2}, {1, 2}, {1, 2}, {3, 4}})
	tests := []struct {
		name string
		got  *Relation
		want int
	}{
		{"append retains duplicates", r, 4},
		{"projection retains duplicates", r.Project("p", "x"), 4},
		{"projection can create duplicates", FromRows("S", []string{"x", "y"}, [][]Value{{1, 1}, {1, 2}}).Project("p", "x"), 2},
		{"selection retains duplicates", r.SelectEq("s", "x", 1), 3},
		{"clone retains duplicates", r.Clone(), 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.got.Len() != tc.want {
				t.Fatalf("got %d tuples, want %d", tc.got.Len(), tc.want)
			}
		})
	}
	// Joins multiply multiplicities: 3 copies of (1,2) ⋈ 2 copies of
	// (2,9) yield 6 output tuples.
	s := FromRows("S", []string{"y", "z"}, [][]Value{{2, 9}, {2, 9}})
	if got := HashJoin("j", r, s); got.Len() != 6 {
		t.Fatalf("bag join produced %d tuples, want 6", got.Len())
	}
	// AppendAll concatenates bags.
	both := r.Clone()
	both.AppendAll(r)
	if both.Len() != 8 {
		t.Fatalf("appendAll: %d tuples, want 8", both.Len())
	}
	// Dedup collapses to the support, exactly once each.
	d := r.Clone()
	d.Dedup()
	if d.Len() != 2 {
		t.Fatalf("dedup: %d tuples, want 2", d.Len())
	}
	d.Dedup() // idempotent
	if d.Len() != 2 {
		t.Fatalf("dedup not idempotent: %d tuples", d.Len())
	}
	// EqualAsSets ignores multiplicity by design.
	if !r.EqualAsSets(d) {
		t.Fatal("EqualAsSets must ignore duplicate multiplicity")
	}
}
