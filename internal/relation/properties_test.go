package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRel is a quick.Generator producing small random binary relations
// over a small domain (so joins actually match).
type genRel struct {
	rel *Relation
}

// Generate implements quick.Generator.
func (genRel) Generate(rand *rand.Rand, size int) reflect.Value {
	n := rand.Intn(25)
	r := New("G", "a", "b")
	for i := 0; i < n; i++ {
		r.Append(Value(rand.Intn(6)), Value(rand.Intn(6)))
	}
	return reflect.ValueOf(genRel{rel: r})
}

func asSchema(g genRel, name, a1, a2 string) *Relation {
	out := New(name, a1, a2)
	for i := 0; i < g.rel.Len(); i++ {
		out.AppendRow(g.rel.Row(i))
	}
	return out
}

// Join is commutative as a set of bindings.
func TestPropJoinCommutative(t *testing.T) {
	f := func(gr, gs genRel) bool {
		r := asSchema(gr, "R", "x", "y")
		s := asSchema(gs, "S", "y", "z")
		rs := HashJoin("J", r, s)
		sr := HashJoin("J", s, r).Project("J", "x", "y", "z")
		return rs.EqualAsSets(sr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Join is associative as a set of bindings.
func TestPropJoinAssociative(t *testing.T) {
	f := func(gr, gs, gu genRel) bool {
		r := asSchema(gr, "R", "x", "y")
		s := asSchema(gs, "S", "y", "z")
		u := asSchema(gu, "U", "z", "w")
		left := HashJoin("J", HashJoin("t", r, s), u)
		right := HashJoin("J", r, HashJoin("t", s, u))
		return left.EqualAsSets(right.Project("J", left.Attrs()...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Semijoin is idempotent: (r ⋉ s) ⋉ s = r ⋉ s.
func TestPropSemijoinIdempotent(t *testing.T) {
	f := func(gr, gs genRel) bool {
		r := asSchema(gr, "R", "x", "y")
		s := asSchema(gs, "S", "y", "z")
		once := Semijoin("SJ", r, s)
		twice := Semijoin("SJ", once, s)
		return once.Len() == twice.Len() && once.EqualAsSets(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Semijoin then join equals join: (r ⋉ s) ⋈ s = r ⋈ s.
func TestPropSemijoinPreservesJoin(t *testing.T) {
	f := func(gr, gs genRel) bool {
		r := asSchema(gr, "R", "x", "y")
		s := asSchema(gs, "S", "y", "z")
		full := HashJoin("J", r, s)
		reduced := HashJoin("J", Semijoin("SJ", r, s), s)
		return full.Len() == reduced.Len() && full.EqualAsSets(reduced)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Dedup is idempotent and order-insensitive.
func TestPropDedupIdempotent(t *testing.T) {
	f := func(g genRel) bool {
		a := g.rel.Clone()
		a.Dedup()
		b := a.Clone()
		b.Dedup()
		return a.Len() == b.Len() && a.EqualAsSets(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// GroupBy Sum conserves the total.
func TestPropGroupBySumConservation(t *testing.T) {
	f := func(g genRel) bool {
		r := asSchema(g, "R", "g", "v")
		agg := GroupBy("A", r, []string{"g"}, Sum, "v", "s")
		var total, aggTotal Value
		for i := 0; i < r.Len(); i++ {
			total += r.Row(i)[1]
		}
		for i := 0; i < agg.Len(); i++ {
			aggTotal += agg.Row(i)[1]
		}
		return total == aggTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// GroupBy Count conserves cardinality.
func TestPropGroupByCountConservation(t *testing.T) {
	f := func(g genRel) bool {
		r := asSchema(g, "R", "g", "v")
		agg := GroupBy("A", r, []string{"g"}, Count, "", "n")
		var total Value
		for i := 0; i < agg.Len(); i++ {
			total += agg.Row(i)[1]
		}
		return int(total) == r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The three multiway implementations agree on triangles.
func TestPropMultiwayImplementationsAgree(t *testing.T) {
	f := func(gr, gs, gu genRel) bool {
		r := asSchema(gr, "R", "x", "y")
		s := asSchema(gs, "S", "y", "z")
		u := asSchema(gu, "T", "z", "x")
		r.Dedup()
		s.Dedup()
		u.Dedup()
		gj := GenericJoin("J", []string{"x", "y", "z"}, r, s, u)
		lf := LeapfrogJoin("J", []string{"x", "y", "z"}, r, s, u)
		bj := MultiJoin("J", r, s, u).Project("J", "x", "y", "z")
		bj.Dedup()
		return gj.EqualAsSets(lf) && gj.Len() == lf.Len() && gj.EqualAsSets(bj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Projection to all attributes is the identity (as a bag).
func TestPropProjectIdentity(t *testing.T) {
	f := func(g genRel) bool {
		r := g.rel
		p := r.Project("P", r.Attrs()...)
		return p.Len() == r.Len() && p.EqualAsSets(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Antijoin complements semijoin exactly.
func TestPropSemiAntiPartition(t *testing.T) {
	f := func(gr, gs genRel) bool {
		r := asSchema(gr, "R", "x", "y")
		s := asSchema(gs, "S", "y", "z")
		semi := Semijoin("S", r, s)
		anti := Antijoin("A", r, s)
		if semi.Len()+anti.Len() != r.Len() {
			return false
		}
		union := semi.Clone()
		union.AppendAll(anti)
		return union.EqualAsSets(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
