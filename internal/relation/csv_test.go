package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randRel(rng, "R", []string{"x", "y", "z"}, 200, 1000)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != r.Len() || !got.EqualAsSets(r) {
		t.Fatal("CSV round trip lost tuples")
	}
	for i, a := range got.Attrs() {
		if a != r.Attrs()[i] {
			t.Fatalf("schema changed: %v vs %v", got.Attrs(), r.Attrs())
		}
	}
}

func TestCSVEmptyRelation(t *testing.T) {
	r := New("E", "a", "b")
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("E", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Arity() != 2 {
		t.Fatal("empty relation round trip wrong")
	}
}

func TestCSVNegativeValues(t *testing.T) {
	r := FromRows("R", []string{"v"}, [][]Value{{-5}, {1 << 60}, {0}})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSets(r) {
		t.Fatal("negative/large values corrupted")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV("R", strings.NewReader("x,y\n1,notanumber\n")); err == nil {
		t.Fatal("non-integer should error")
	}
	if _, err := ReadCSV("R", strings.NewReader("x,y\n1\n")); err == nil {
		t.Fatal("short row should error")
	}
}
