// Package relation implements the in-memory relational substrate used by
// every MPC algorithm in this repository: flat row-major relations over
// int64 attribute values, together with the local (single-server)
// operators — selection, projection, sorting, deduplication, hash and
// sort-merge joins, semijoins, grouping — that each simulated server runs
// between communication rounds.
//
// The representation is deliberately simple and allocation-friendly: a
// relation of arity k stores its tuples in one []Value of length k·Len(),
// and Row(i) returns a subslice view. All operators are deterministic.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is the domain of every attribute. The tutorial's algorithms are
// agnostic to the attribute domain; integers keep hashing and comparison
// cheap and deterministic.
type Value = int64

// Relation is a named bag of tuples with a fixed schema. Attribute names
// drive natural joins: two relations join on the attributes they share.
//
// A relation may have arity 0 (a nullary relation): its tuples carry no
// values, so only their multiplicity is stored. Nullary relations are
// the result type of boolean/decision queries — "is the answer
// non-empty" is a relation holding zero or more copies of the empty
// tuple — and the MPC engine delivers and meters them like any other.
type Relation struct {
	name  string
	attrs []string
	data  []Value // row-major, len = arity * rows
	nrows int     // row count when arity == 0 (data stays empty)
}

// New returns an empty relation with the given name and attribute names.
// It panics on duplicate attributes, since such schemas are always
// construction bugs. An empty attrs list constructs a nullary relation.
func New(name string, attrs ...string) *Relation {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			panic(fmt.Sprintf("relation: duplicate attribute %q in %s", a, name))
		}
		seen[a] = true
	}
	return &Relation{name: name, attrs: append([]string(nil), attrs...)}
}

// FromRows builds a relation from explicit rows; convenient in tests.
func FromRows(name string, attrs []string, rows [][]Value) *Relation {
	r := New(name, attrs...)
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Rename returns the same relation with a new name (shares storage).
func (r *Relation) Rename(name string) *Relation {
	out := *r
	out.name = name
	return &out
}

// Attrs returns the schema. The slice must not be mutated.
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if len(r.attrs) == 0 {
		return r.nrows
	}
	return len(r.data) / len(r.attrs)
}

// Words returns the total number of Values stored; this is the "word
// count" unit used by the MPC load metering.
func (r *Relation) Words() int { return len(r.data) }

// Append adds one tuple. It panics if the arity does not match.
func (r *Relation) Append(vals ...Value) {
	if len(vals) != len(r.attrs) {
		panic(fmt.Sprintf("relation %s: append arity %d, want %d", r.name, len(vals), len(r.attrs)))
	}
	if len(r.attrs) == 0 {
		r.nrows++
		return
	}
	r.data = append(r.data, vals...)
}

// AppendRow adds one tuple given as a slice (copied).
func (r *Relation) AppendRow(row []Value) { r.Append(row...) }

// AppendAll copies every tuple of s into r. Schemas must match exactly.
func (r *Relation) AppendAll(s *Relation) {
	if len(s.attrs) != len(r.attrs) {
		panic(fmt.Sprintf("relation %s: appendAll arity mismatch with %s", r.name, s.name))
	}
	r.nrows += s.nrows
	r.data = append(r.data, s.data...)
}

// Grow reserves capacity for at least words more values, so a known
// upcoming volume of appends performs at most one reallocation.
func (r *Relation) Grow(words int) {
	if cap(r.data)-len(r.data) < words {
		nd := make([]Value, len(r.data), len(r.data)+words)
		copy(nd, r.data)
		r.data = nd
	}
}

// AppendFlat appends tuples rows stored row-major in flat, in one bulk
// copy. This is the MPC delivery engine's hot path: one bounds check
// and one copy per fragment instead of one call per row. For nullary
// relations flat must be empty and only the count is added.
func (r *Relation) AppendFlat(flat []Value, tuples int) {
	k := len(r.attrs)
	if k == 0 {
		if len(flat) != 0 {
			panic(fmt.Sprintf("relation %s: appendFlat %d words into arity 0", r.name, len(flat)))
		}
		r.nrows += tuples
		return
	}
	if len(flat) != tuples*k {
		panic(fmt.Sprintf("relation %s: appendFlat %d words for %d tuples of arity %d",
			r.name, len(flat), tuples, k))
	}
	r.data = append(r.data, flat...)
}

// Row returns tuple i as a view into the underlying storage. Callers must
// not retain it across mutations of r.
func (r *Relation) Row(i int) []Value {
	k := len(r.attrs)
	return r.data[i*k : (i+1)*k : (i+1)*k]
}

// Col returns the index of the named attribute, or -1 if absent.
func (r *Relation) Col(attr string) int {
	for i, a := range r.attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// MustCol is Col but panics on a missing attribute.
func (r *Relation) MustCol(attr string) int {
	c := r.Col(attr)
	if c < 0 {
		panic(fmt.Sprintf("relation %s: no attribute %q (have %v)", r.name, attr, r.attrs))
	}
	return c
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	out := New(r.name, r.attrs...)
	out.data = append([]Value(nil), r.data...)
	out.nrows = r.nrows
	return out
}

// Empty returns an empty relation with the same name and schema.
func (r *Relation) Empty() *Relation { return New(r.name, r.attrs...) }

// Project returns a new relation keeping only the named attributes, in
// the given order. Duplicate rows are retained (bag semantics); call
// Dedup for set semantics.
func (r *Relation) Project(name string, attrs ...string) *Relation {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.MustCol(a)
	}
	out := New(name, attrs...)
	if len(attrs) == 0 {
		// Projection to zero attributes keeps each row as one copy of
		// the empty tuple — the decision-query projection.
		out.nrows = r.Len()
		return out
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		for _, c := range cols {
			out.data = append(out.data, row[c])
		}
	}
	return out
}

// Select returns the tuples satisfying pred.
func (r *Relation) Select(name string, pred func(row []Value) bool) *Relation {
	out := New(name, r.attrs...)
	if len(r.attrs) == 0 {
		for i := 0; i < r.nrows; i++ {
			if pred(nil) {
				out.nrows++
			}
		}
		return out
	}
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		if pred(row) {
			out.data = append(out.data, row...)
		}
	}
	return out
}

// SelectEq returns the tuples whose attr equals v.
func (r *Relation) SelectEq(name, attr string, v Value) *Relation {
	c := r.MustCol(attr)
	return r.Select(name, func(row []Value) bool { return row[c] == v })
}

// SortBy sorts r in place lexicographically by the given attributes,
// breaking ties by the full tuple so the order is total and deterministic.
func (r *Relation) SortBy(attrs ...string) {
	if len(r.attrs) == 0 {
		return // nullary: all tuples are the empty tuple
	}
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.MustCol(a)
	}
	k := len(r.attrs)
	n := r.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := r.data[idx[a]*k:idx[a]*k+k], r.data[idx[b]*k:idx[b]*k+k]
		for _, c := range cols {
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		for c := 0; c < k; c++ {
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		return false
	})
	sorted := make([]Value, 0, len(r.data))
	for _, i := range idx {
		sorted = append(sorted, r.data[i*k:i*k+k]...)
	}
	r.data = sorted
}

// Sort sorts r in place by all attributes left to right.
func (r *Relation) Sort() { r.SortBy(r.attrs...) }

// Dedup sorts r and removes duplicate tuples in place.
func (r *Relation) Dedup() {
	if len(r.attrs) == 0 {
		if r.nrows > 1 {
			r.nrows = 1
		}
		return
	}
	r.Sort()
	k := len(r.attrs)
	n := r.Len()
	if n == 0 {
		return
	}
	w := 1
	for i := 1; i < n; i++ {
		if !rowsEqual(r.data[i*k:i*k+k], r.data[(w-1)*k:w*k]) {
			copy(r.data[w*k:(w+1)*k], r.data[i*k:(i+1)*k])
			w++
		}
	}
	r.data = r.data[:w*k]
}

func rowsEqual(a, b []Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EqualAsSets reports whether r and s contain the same set of tuples
// (ignoring order and duplicates). Schemas must have the same attributes,
// possibly in different order.
func (r *Relation) EqualAsSets(s *Relation) bool {
	if len(r.attrs) != len(s.attrs) {
		return false
	}
	perm := make([]int, len(r.attrs))
	for i, a := range r.attrs {
		c := s.Col(a)
		if c < 0 {
			return false
		}
		perm[i] = c
	}
	a := r.Clone()
	a.Dedup()
	b := s.Project("tmp", r.attrs...)
	_ = perm
	b.Dedup()
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !rowsEqual(a.Row(i), b.Row(i)) {
			return false
		}
	}
	return true
}

// String renders a small relation for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d rows]", r.name, strings.Join(r.attrs, ","), r.Len())
	n := r.Len()
	if n > 20 {
		n = 20
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\n  %v", r.Row(i))
	}
	if r.Len() > n {
		fmt.Fprintf(&b, "\n  ... (%d more)", r.Len()-n)
	}
	return b.String()
}

// SharedAttrs returns the attributes present in both r and s, in r's
// schema order. This drives natural joins and semijoins.
func SharedAttrs(r, s *Relation) []string {
	var shared []string
	for _, a := range r.attrs {
		if s.Col(a) >= 0 {
			shared = append(shared, a)
		}
	}
	return shared
}

// joinSchema returns the natural-join output schema: r's attributes
// followed by s's attributes that are not in r.
func joinSchema(r, s *Relation) []string {
	out := append([]string(nil), r.attrs...)
	for _, a := range s.attrs {
		if r.Col(a) < 0 {
			out = append(out, a)
		}
	}
	return out
}
