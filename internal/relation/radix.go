package relation

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Radix-partitioned open-addressing hash kernels. Every local operator
// that used to key a Go map on EncodeKey strings (BuildIndex/HashJoin,
// GroupBy, Distinct, GenericJoin's per-variable grouping) now runs on
// these: rows are hashed once with HashRow, partitioned by the high
// hash bits so each partition's table region stays cache-resident, and
// inserted into an open-addressing region addressed by the low hash
// bits. A slot matches only when both the full 64-bit hash and the
// actual key columns compare equal, so hash collisions are verified
// against the stored rows and never merge distinct keys.
//
// Build-side scratch (hash arrays, partition counters, chain links,
// slot regions, grouped row ids) lives in a kernelArena recycled
// through a sync.Pool, so steady-state rounds of an MPC run reuse the
// same allocations instead of rebuilding map buckets every round.

// kernelSeed is the fixed seed the local-operator kernels hash under.
// It is independent of the per-round routing seeds, so table layout
// never correlates with how tuples were partitioned across servers.
const kernelSeed uint64 = 0x8c5d1b6f0f3a9e21

// kernelRowHash and kernelValHash are the hash hooks for the kernels.
// Tests override them with deliberately weak functions to force full
// 64-bit hash collisions and exercise the key-verification path.
var (
	kernelRowHash = fastRowHash
	kernelValHash = fastValHash
)

// fastValHash is a splitmix64-style mixer: far cheaper than the
// byte-at-a-time Hash64 used for routing, and only ever consumed by
// the local kernels (table layout is internal, so it need not match
// the routing hash). Both the high bits (partition selection) and the
// low bits (slot index) come out well mixed.
func fastValHash(v Value, seed uint64) uint64 {
	x := uint64(v) ^ seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fastRowHash combines the selected columns with a multiply-fold per
// value and a final splitmix64 finisher.
func fastRowHash(row []Value, cols []int, seed uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, c := range cols {
		x := uint64(row[c])
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		h = (h ^ x) * 0xc4ceb9fe1a85ec53
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return h
}

const (
	// radixMinRows is the build size below which a single table region
	// is used: the whole table fits in cache, so partitioning would
	// only add a scatter pass.
	radixMinRows = 1 << 14
	// radixTargetRows is the aimed-for number of build rows per
	// partition; each partition's slot region (2 slots/row, 16 B/slot)
	// then stays within the L2 working set.
	radixTargetRows = 1 << 12
	// radixMaxParts bounds the partition fan-out.
	radixMaxParts = 1 << 9
)

// checkRowCount guards the int32 row ids used throughout the kernels.
// Row ids are int32 to halve index memory; past MaxInt32 rows the ids
// would silently truncate, so fail loudly instead.
func checkRowCount(op string, n int) {
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("relation: %s over %d rows exceeds the int32 row-id limit (%d)",
			op, n, math.MaxInt32))
	}
}

// radixParts picks a power-of-two partition count for n build rows.
func radixParts(n int) int {
	if n < radixMinRows {
		return 1
	}
	p := nextPow2(n / radixTargetRows)
	if p > radixMaxParts {
		p = radixMaxParts
	}
	return p
}

func nextPow2(n int) int {
	if n < 2 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// kernelArena holds the reusable scratch of one kernel invocation. One
// arena is checked out of a pool per operator call and returned when
// the operator's output has been emitted, so the backing arrays are
// reused across rounds instead of reallocated. An Index returned to a
// caller (BuildIndex) owns a private arena that is simply dropped with
// the Index, never repooled.
type kernelArena struct {
	hashes  []uint64 // per-row key hash
	ordHash []uint64 // hashes in partition-scatter order
	ordRows []int32  // row ids in partition-scatter order
	next    []int32  // chain links: next row with the same key
	pcnt    []int32  // rows per partition
	pcur    []int32  // scatter/emit cursors per partition
	refs    []groupRef
	slots   []idxSlot
	rows    []int32 // row ids grouped by key
	gslots  []groupSlot
	pOff    []int    // per-partition slot-region offsets
	pMask   []uint64 // per-partition slot-index masks
	keys    []Value  // flat group-key storage, arity per group
	aggs    []Value  // per-group aggregate accumulator
	cnts    []int64  // per-group row count
	order   []int32  // group emit order
}

var arenaPool = sync.Pool{New: func() any { return new(kernelArena) }}

func getArena() *kernelArena  { return arenaPool.Get().(*kernelArena) }
func putArena(a *kernelArena) { arenaPool.Put(a) }

func arenaU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func arenaI32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func arenaI64(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func arenaRefs(buf *[]groupRef, n int) []groupRef {
	if cap(*buf) < n {
		*buf = make([]groupRef, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func arenaSlots(buf *[]idxSlot, n int) []idxSlot {
	if cap(*buf) < n {
		*buf = make([]idxSlot, n)
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return *buf
}

func arenaGSlots(buf *[]groupSlot, n int) []groupSlot {
	if cap(*buf) < n {
		*buf = make([]groupSlot, n)
	}
	*buf = (*buf)[:n]
	clear(*buf)
	return *buf
}

// idxSlot is one open-addressing slot of a rowIndex. During the insert
// pass start holds the chain-head row id; the finalize pass rewrites it
// to the group's offset into the grouped rows array. count==0 marks an
// empty slot (every occupied slot holds at least one row).
type idxSlot struct {
	hash  uint64
	start int32
	count int32
}

// groupRef addresses one key group inside a rowIndex: rows[start :
// start+count] are the matching row ids, in ascending order.
type groupRef struct{ start, count int32 }

// rowIndex is the radix-partitioned hash index over a key column set.
// Partition = hash >> shift (high bits); within partition p the slot
// region is slots[pOff[p] : pOff[p+1]], addressed by hash & pMask[p]
// (low bits) with linear probing. Regions are sized to 2 slots per
// build row, so the load factor never exceeds 1/2 and probes terminate.
type rowIndex struct {
	rel      *Relation
	cols     []int
	shift    uint
	pOff     []int
	pMask    []uint64
	slots    []idxSlot
	rows     []int32
	distinct int
}

// partitionScatter computes per-partition row counts for hashes and, if
// nparts > 1, scatters row ids (and their hashes) into partition order.
// The counting sort is stable, so row ids stay ascending within each
// partition — the property that keeps every key group's row list in
// the original relation order.
func partitionScatter(a *kernelArena, hashes []uint64, nparts int, shift uint) (ordRows []int32, ordHash []uint64, pcnt []int32) {
	n := len(hashes)
	pcnt = arenaI32(&a.pcnt, nparts)
	clear(pcnt)
	if nparts == 1 {
		pcnt[0] = int32(n)
		return nil, hashes, pcnt
	}
	for _, h := range hashes {
		pcnt[h>>shift]++
	}
	cur := arenaI32(&a.pcur, nparts)
	off := int32(0)
	for p := 0; p < nparts; p++ {
		cur[p] = off
		off += pcnt[p]
	}
	ordRows = arenaI32(&a.ordRows, n)
	ordHash = arenaU64(&a.ordHash, n)
	for i, h := range hashes {
		c := cur[h>>shift]
		ordRows[c] = int32(i)
		ordHash[c] = h
		cur[h>>shift] = c + 1
	}
	return ordRows, ordHash, pcnt
}

// sizeRegions assigns each partition a power-of-two slot region of at
// least twice its row count, so the load factor never exceeds 1/2 even
// if every row starts its own key group. It returns the per-partition
// region offsets and slot-index masks (arena-backed) and the total
// slot count.
func sizeRegions(a *kernelArena, pcnt []int32) (pOff []int, pMask []uint64, total int) {
	nparts := len(pcnt)
	if cap(a.pOff) < nparts+1 {
		a.pOff = make([]int, nparts+1)
		a.pMask = make([]uint64, nparts)
	}
	pOff = a.pOff[:nparts+1]
	pMask = a.pMask[:nparts]
	for p := 0; p < nparts; p++ {
		sz := nextPow2(2 * int(pcnt[p]))
		if sz < 4 {
			sz = 4
		}
		pOff[p] = total
		pMask[p] = uint64(sz - 1)
		total += sz
	}
	pOff[nparts] = total
	return pOff, pMask, total
}

// buildRowIndex builds ix over rel's cols using a's scratch. The slot
// and row arrays stay referenced by ix, so the arena must outlive it.
func buildRowIndex(ix *rowIndex, rel *Relation, cols []int, a *kernelArena) {
	n := rel.Len()
	checkRowCount("BuildIndex", n)
	nparts := radixParts(n)
	*ix = rowIndex{rel: rel, cols: cols, shift: uint(64 - bits.TrailingZeros(uint(nparts)))}

	hashes := arenaU64(&a.hashes, n)
	for i := 0; i < n; i++ {
		hashes[i] = kernelRowHash(rel.Row(i), cols, kernelSeed)
	}
	ordRows, ordHash, pcnt := partitionScatter(a, hashes, nparts, ix.shift)
	var total int
	ix.pOff, ix.pMask, total = sizeRegions(a, pcnt)
	slots := arenaSlots(&a.slots, total)
	next := arenaI32(&a.next, n)

	insert := func(row int32, h uint64) {
		p := h >> ix.shift
		base, mask := ix.pOff[p], ix.pMask[p]
		j := h & mask
		for {
			s := &slots[base+int(j)]
			if s.count == 0 {
				s.hash, s.start, s.count = h, row, 1
				next[row] = -1
				ix.distinct++
				return
			}
			if s.hash == h && rowKeysEqual(rel, cols, int(s.start), int(row)) {
				next[row] = s.start
				s.start = row
				s.count++
				return
			}
			j = (j + 1) & mask
		}
	}
	if ordRows == nil {
		for i := 0; i < n; i++ {
			insert(int32(i), hashes[i])
		}
	} else {
		// Partition-ordered inserts keep each region cache-hot.
		for i, row := range ordRows {
			insert(row, ordHash[i])
		}
	}

	// Finalize: flatten the per-slot chains into one grouped row array.
	// Chains link newest-first, so writing each group back-to-front
	// restores ascending row order within the group.
	rows := arenaI32(&a.rows, n)
	off := int32(0)
	for si := range slots {
		s := &slots[si]
		if s.count == 0 {
			continue
		}
		head := s.start
		s.start = off
		off += s.count
		w := off
		for r := head; r >= 0; r = next[r] {
			w--
			rows[w] = r
		}
	}
	ix.slots, ix.rows = slots, rows
}

// rowKeysEqual reports whether rows i and j of rel agree on cols.
func rowKeysEqual(rel *Relation, cols []int, i, j int) bool {
	ri, rj := rel.Row(i), rel.Row(j)
	for _, c := range cols {
		if ri[c] != rj[c] {
			return false
		}
	}
	return true
}

// lookupRef returns the key group matching probe (under probeCols), or
// a zero groupRef when the key is absent.
func (ix *rowIndex) lookupRef(probe []Value, probeCols []int) groupRef {
	return ix.lookupRefH(kernelRowHash(probe, probeCols, kernelSeed), probe, probeCols)
}

func (ix *rowIndex) lookupRefH(h uint64, probe []Value, probeCols []int) groupRef {
	if ix.distinct == 0 {
		return groupRef{}
	}
	p := h >> ix.shift
	base, mask := ix.pOff[p], ix.pMask[p]
	j := h & mask
	for {
		s := &ix.slots[base+int(j)]
		if s.count == 0 {
			return groupRef{}
		}
		if s.hash == h && ix.keyMatches(int(ix.rows[s.start]), probe, probeCols) {
			return groupRef{s.start, s.count}
		}
		j = (j + 1) & mask
	}
}

// keyMatches verifies a hash hit against the actual key columns of a
// representative stored row — the collision check that keeps distinct
// keys with equal hashes apart.
func (ix *rowIndex) keyMatches(row int, probe []Value, probeCols []int) bool {
	stored := ix.rel.Row(row)
	for k, c := range ix.cols {
		if stored[c] != probe[probeCols[k]] {
			return false
		}
	}
	return true
}

// group returns the row ids of one key group, ascending.
func (ix *rowIndex) group(g groupRef) []int32 {
	return ix.rows[g.start : g.start+int32(g.count) : g.start+int32(g.count)]
}

// groupSlot is one open-addressing slot of the grouping kernels
// (GroupBy, Distinct, GenericJoin's valueGroups): gid holds the group
// id plus one, so zero marks an empty slot.
type groupSlot struct {
	hash uint64
	gid  int32
}

// valueGroups groups a set of rows of one relation by a single column:
// the radix-kernel replacement for GenericJoin's map[Value][]int32.
// vals lists the distinct values in first-occurrence order; the rows of
// group g are rows[start[g]:start[g+1]], in rowset order. Lookup is by
// open addressing on the value hash with full value verification.
type valueGroups struct {
	slots []groupSlot
	mask  uint64
	vals  []Value
	start []int32
	rows  []int32
}

// buildValueGroups groups rowset (row ids of rel) by column col. The
// result is self-contained (no arena references): GenericJoin caches
// these across its whole recursion. a provides transient scratch only.
func buildValueGroups(rel *Relation, col int, rowset []int32, a *kernelArena) *valueGroups {
	n := len(rowset)
	size := nextPow2(2 * n)
	if size < 4 {
		size = 4
	}
	g := &valueGroups{
		slots: make([]groupSlot, size),
		mask:  uint64(size - 1),
		vals:  make([]Value, 0, 16),
	}
	gids := arenaI32(&a.next, n)
	cnts := arenaI32(&a.pcnt, 0)
	for i, row := range rowset {
		v := rel.Row(int(row))[col]
		h := kernelValHash(v, kernelSeed)
		j := h & g.mask
		for {
			s := &g.slots[j]
			if s.gid == 0 {
				s.hash, s.gid = h, int32(len(g.vals))+1
				g.vals = append(g.vals, v)
				cnts = append(cnts, 0)
				gids[i] = s.gid - 1
				break
			}
			if s.hash == h && g.vals[s.gid-1] == v {
				gids[i] = s.gid - 1
				break
			}
			j = (j + 1) & g.mask
		}
		cnts[gids[i]]++
	}
	a.pcnt = cnts
	ng := len(g.vals)
	g.start = make([]int32, ng+1)
	off := int32(0)
	for gi := 0; gi < ng; gi++ {
		g.start[gi] = off
		off += cnts[gi]
	}
	g.start[ng] = off
	cur := arenaI32(&a.pcur, ng)
	copy(cur, g.start[:ng])
	g.rows = make([]int32, n)
	for i, row := range rowset {
		g.rows[cur[gids[i]]] = row
		cur[gids[i]]++
	}
	return g
}

// lookup returns the group id of v, or -1 if v is absent.
func (g *valueGroups) lookup(v Value) int {
	h := kernelValHash(v, kernelSeed)
	j := h & g.mask
	for {
		s := &g.slots[j]
		if s.gid == 0 {
			return -1
		}
		if s.hash == h && g.vals[s.gid-1] == v {
			return int(s.gid - 1)
		}
		j = (j + 1) & g.mask
	}
}

// rowsOf returns the rows of group gid, in original rowset order.
func (g *valueGroups) rowsOf(gid int) []int32 {
	return g.rows[g.start[gid]:g.start[gid+1]:g.start[gid+1]]
}
