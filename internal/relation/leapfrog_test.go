package relation

import (
	"math/rand"
	"testing"
)

func TestLeapfrogTriangle(t *testing.T) {
	edges := [][]Value{{1, 2}, {2, 3}, {3, 1}, {1, 4}}
	r := FromRows("R", []string{"x", "y"}, edges)
	s := FromRows("S", []string{"y", "z"}, edges)
	u := FromRows("T", []string{"z", "x"}, edges)
	got := LeapfrogJoin("Tri", []string{"x", "y", "z"}, r, s, u)
	want := GenericJoin("Tri", []string{"x", "y", "z"}, r, s, u)
	if !got.EqualAsSets(want) || got.Len() != want.Len() {
		t.Fatalf("leapfrog = %v, want %v", got, want)
	}
}

// TestLeapfrogMatchesGenericJoin cross-validates the two worst-case-
// optimal implementations on random cyclic and acyclic queries.
func TestLeapfrogMatchesGenericJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		dom := 2 + rng.Intn(7)
		r := randRel(rng, "R", []string{"x", "y"}, rng.Intn(35), dom)
		s := randRel(rng, "S", []string{"y", "z"}, rng.Intn(35), dom)
		u := randRel(rng, "T", []string{"z", "x"}, rng.Intn(35), dom)
		r.Dedup()
		s.Dedup()
		u.Dedup()
		lf := LeapfrogJoin("J", []string{"x", "y", "z"}, r, s, u)
		gj := GenericJoin("J", []string{"x", "y", "z"}, r, s, u)
		if !lf.EqualAsSets(gj) || lf.Len() != gj.Len() {
			t.Fatalf("trial %d: leapfrog %d rows, generic %d rows", trial, lf.Len(), gj.Len())
		}
	}
}

func TestLeapfrogChainQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := randRel(rng, "R", []string{"a", "b"}, 50, 8)
	s := randRel(rng, "S", []string{"b", "c"}, 50, 8)
	u := randRel(rng, "U", []string{"c", "d"}, 50, 8)
	r.Dedup()
	s.Dedup()
	u.Dedup()
	lf := LeapfrogJoin("J", []string{"a", "b", "c", "d"}, r, s, u)
	gj := GenericJoin("J", []string{"a", "b", "c", "d"}, r, s, u)
	if !lf.EqualAsSets(gj) {
		t.Fatal("leapfrog disagrees on chain query")
	}
}

func TestLeapfrogVarOrderInsensitive(t *testing.T) {
	// Any variable order yields the same result set.
	rng := rand.New(rand.NewSource(37))
	r := randRel(rng, "R", []string{"x", "y"}, 30, 5)
	s := randRel(rng, "S", []string{"y", "z"}, 30, 5)
	u := randRel(rng, "T", []string{"z", "x"}, 30, 5)
	r.Dedup()
	s.Dedup()
	u.Dedup()
	orders := [][]string{
		{"x", "y", "z"}, {"z", "y", "x"}, {"y", "x", "z"}, {"y", "z", "x"},
	}
	base := LeapfrogJoin("J", orders[0], r, s, u)
	for _, ord := range orders[1:] {
		got := LeapfrogJoin("J", ord, r, s, u)
		if got.Len() != base.Len() {
			t.Fatalf("order %v: %d rows, want %d", ord, got.Len(), base.Len())
		}
		if !got.Project("p", "x", "y", "z").EqualAsSets(base) {
			t.Fatalf("order %v: different bindings", ord)
		}
	}
}

func TestLeapfrogSingleRelationAndEmpty(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 2}, {3, 4}})
	got := LeapfrogJoin("J", []string{"y", "x"}, r)
	want := FromRows("W", []string{"y", "x"}, [][]Value{{2, 1}, {4, 3}})
	if !got.EqualAsSets(want) {
		t.Fatalf("single relation: %v", got)
	}
	empty := New("E", "x", "y")
	s := FromRows("S", []string{"y", "z"}, [][]Value{{2, 9}})
	if out := LeapfrogJoin("J", []string{"x", "y", "z"}, empty, s); out.Len() != 0 {
		t.Fatalf("empty input join = %d rows", out.Len())
	}
}

func TestLeapfrogDuplicateRunHandling(t *testing.T) {
	// Heavy duplication of join keys: runs must be enumerated fully.
	r := New("R", "x", "y")
	s := New("S", "y", "z")
	for i := Value(0); i < 6; i++ {
		r.Append(i%2, 7)
		s.Append(7, i%3)
	}
	r.Dedup()
	s.Dedup()
	lf := LeapfrogJoin("J", []string{"x", "y", "z"}, r, s)
	if lf.Len() != 2*3 {
		t.Fatalf("run join = %d rows, want 6", lf.Len())
	}
}

func TestLeapfrogPanics(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 2}})
	mustPanic(t, "dup var", func() { LeapfrogJoin("J", []string{"x", "x"}, r) })
	mustPanic(t, "missing var", func() { LeapfrogJoin("J", []string{"x"}, r) })
	mustPanic(t, "no rels", func() { LeapfrogJoin("J", []string{"x"}) })
}

func BenchmarkLocalJoinTriangle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n string, a1, a2 string) *Relation {
		r := randRel(rng, n, []string{a1, a2}, 3000, 400)
		r.Dedup()
		return r
	}
	r := mk("R", "x", "y")
	s := mk("S", "y", "z")
	u := mk("T", "z", "x")
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GenericJoin("J", []string{"x", "y", "z"}, r, s, u)
		}
	})
	b.Run("leapfrog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			LeapfrogJoin("J", []string{"x", "y", "z"}, r, s, u)
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MultiJoin("J", r, s, u)
		}
	})
}
