// Value codec hooks for wire transports.
//
// The MPC model meters communication in tuples and words, but a real
// transport ships bytes. These helpers define the repository's one
// binary encoding of attribute values — zig-zag varint, so small
// magnitudes of either sign stay short — and are shared by every layer
// that serializes tuples (internal/mpcnet frames today). Keeping the
// codec next to the Value definition means a change of the value domain
// and a change of its wire form are the same review.

package relation

import "encoding/binary"

// zigzag folds signed values into unsigned ones with small absolute
// values mapping to small encodings: 0→0, -1→1, 1→2, -2→3, ...
func zigzag(v Value) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) Value { return Value(u>>1) ^ -Value(u&1) }

// AppendValue appends the zig-zag varint encoding of v to dst and
// returns the extended slice. The encoding is 1 byte for values in
// [-64, 63] and at most 10 bytes for any int64.
func AppendValue(dst []byte, v Value) []byte {
	return binary.AppendUvarint(dst, zigzag(v))
}

// ConsumeValue decodes one value from the front of b, returning the
// value and the number of bytes consumed. n == 0 reports a malformed or
// truncated encoding (including varints longer than 10 bytes).
func ConsumeValue(b []byte) (Value, int) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0
	}
	return unzigzag(u), n
}

// AppendValues appends the encodings of vals in order.
func AppendValues(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		dst = AppendValue(dst, v)
	}
	return dst
}

// ConsumeValues decodes count values from the front of b into dst
// (appending), returning the extended slice and the bytes consumed.
// A malformed or truncated stream yields ok == false; dst may then hold
// a prefix of the decoded values. Decoding never over-allocates on
// hostile input: each encoded value occupies at least one byte, so
// callers bounding count by len(b) bound the allocation too.
func ConsumeValues(dst []Value, b []byte, count int) (vals []Value, n int, ok bool) {
	for i := 0; i < count; i++ {
		v, vn := ConsumeValue(b[n:])
		if vn == 0 {
			return dst, n, false
		}
		dst = append(dst, v)
		n += vn
	}
	return dst, n, true
}
