package relation

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Tests for the radix-partitioned hash kernels: oracle comparisons
// against EncodeKey maps, full-range int64 domains (negative values,
// values straddling 2^32), adversarial hash collisions via the kernel
// hash hooks, and the numeric group-ordering contract.

// fullRangeValue draws from a domain engineered to break byte-wise
// lexicographic orderings and 32-bit truncations: negatives, values
// straddling 2^32, and the int64 extremes, mixed with small ints.
func fullRangeValue(rng *rand.Rand) Value {
	specials := []Value{
		math.MinInt64, math.MinInt64 + 1, -(1 << 40), -(1 << 32), -257, -256, -255, -2, -1,
		0, 1, 2, 255, 256, 257, 1<<32 - 1, 1 << 32, 1<<32 + 1, 1 << 40, math.MaxInt64 - 1, math.MaxInt64,
	}
	switch rng.Intn(3) {
	case 0:
		return specials[rng.Intn(len(specials))]
	case 1:
		return Value(rng.Int63()) - Value(rng.Int63())
	default:
		return Value(rng.Intn(32)) - 16
	}
}

func fullRangeRel(rng *rand.Rand, name string, attrs []string, n int) *Relation {
	r := New(name, attrs...)
	row := make([]Value, len(attrs))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = fullRangeValue(rng)
		}
		r.AppendRow(row)
	}
	return r
}

// mapIndexOracle is the retired EncodeKey → map[string][]int32 index,
// kept as the test oracle the radix kernel is validated against.
func mapIndexOracle(rel *Relation, cols []int) map[string][]int32 {
	m := make(map[string][]int32, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		m[EncodeKey(rel.Row(i), cols)] = append(m[EncodeKey(rel.Row(i), cols)], int32(i))
	}
	return m
}

func sameRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		r := fullRangeRel(rng, "R", []string{"a", "b", "c"}, n)
		attrs := [][]string{{"a"}, {"a", "b"}, {"c", "a"}}[trial%3]
		cols := make([]int, len(attrs))
		for i, a := range attrs {
			cols[i] = r.MustCol(a)
		}
		ix := BuildIndex(r, attrs)
		oracle := mapIndexOracle(r, cols)
		if ix.DistinctKeys() != len(oracle) {
			t.Fatalf("trial %d: DistinctKeys = %d, oracle %d", trial, ix.DistinctKeys(), len(oracle))
		}
		for i := 0; i < n; i++ {
			got := ix.Lookup(r.Row(i), cols)
			want := oracle[EncodeKey(r.Row(i), cols)]
			if !sameRows(got, want) {
				t.Fatalf("trial %d row %d: Lookup = %v, oracle %v", trial, i, got, want)
			}
		}
		// Misses: probe keys unlikely to be present.
		probe := make([]Value, len(cols))
		probeCols := make([]int, len(cols))
		for i := range probeCols {
			probeCols[i] = i
		}
		for tries := 0; tries < 20; tries++ {
			for j := range probe {
				probe[j] = fullRangeValue(rng)
			}
			got := ix.Lookup(probe, probeCols)
			want := oracle[EncodeKey(probe, probeCols)]
			if !sameRows(got, want) {
				t.Fatalf("trial %d probe %v: Lookup = %v, oracle %v", trial, probe, got, want)
			}
		}
	}
}

// TestIndexRadixPartitioned pushes past the single-region threshold so
// the multi-partition scatter path is exercised against the oracle.
func TestIndexRadixPartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := radixMinRows * 3
	r := New("R", "a", "b")
	for i := 0; i < n; i++ {
		r.Append(Value(rng.Intn(n/4))-Value(n/8), Value(rng.Int63())-Value(rng.Int63()))
	}
	cols := []int{0}
	ix := BuildIndex(r, []string{"a"})
	oracle := mapIndexOracle(r, cols)
	if ix.DistinctKeys() != len(oracle) {
		t.Fatalf("DistinctKeys = %d, oracle %d", ix.DistinctKeys(), len(oracle))
	}
	for i := 0; i < n; i += 17 {
		got := ix.Lookup(r.Row(i), cols)
		want := oracle[EncodeKey(r.Row(i), cols)]
		if !sameRows(got, want) {
			t.Fatalf("row %d: Lookup = %v, oracle %v", i, got, want)
		}
	}
}

// TestIndexCollisionVerification swaps the kernel hashes for degenerate
// functions so every key collides on the full 64-bit hash; the kernel
// must still answer exactly via its stored-key verification. Not run in
// parallel: it mutates the package-level hash hooks.
func TestIndexCollisionVerification(t *testing.T) {
	defer func(rh func([]Value, []int, uint64) uint64, vh func(Value, uint64) uint64) {
		kernelRowHash, kernelValHash = rh, vh
	}(kernelRowHash, kernelValHash)
	// Two-valued hash: massive full-hash collisions across distinct keys.
	kernelRowHash = func(row []Value, cols []int, seed uint64) uint64 {
		return uint64(row[cols[0]]) & 1
	}
	kernelValHash = func(v Value, seed uint64) uint64 { return uint64(v) & 1 }

	rng := rand.New(rand.NewSource(13))
	r := fullRangeRel(rng, "R", []string{"a", "b"}, 300)
	cols := []int{0, 1}
	ix := BuildIndex(r, []string{"a", "b"})
	oracle := mapIndexOracle(r, cols)
	if ix.DistinctKeys() != len(oracle) {
		t.Fatalf("DistinctKeys = %d, oracle %d", ix.DistinctKeys(), len(oracle))
	}
	for i := 0; i < r.Len(); i++ {
		got := ix.Lookup(r.Row(i), cols)
		want := oracle[EncodeKey(r.Row(i), cols)]
		if !sameRows(got, want) {
			t.Fatalf("row %d: Lookup = %v, oracle %v under colliding hash", i, got, want)
		}
	}
	// The grouping kernels must survive the same abuse.
	s := fullRangeRel(rng, "S", []string{"b", "c"}, 300)
	checkJoinImplsAgree(t, r, s)
	agg := GroupBy("A", r, []string{"a"}, Count, "", "n")
	if agg.Len() != len(mapIndexOracle(r, []int{0})) {
		t.Fatalf("GroupBy under colliding hash: %d groups", agg.Len())
	}
	gj := GenericJoin("J", []string{"a", "b", "c"}, r, s)
	lf := LeapfrogJoin("J", []string{"a", "b", "c"}, r, s)
	if !gj.EqualAsSets(lf) {
		t.Fatal("GenericJoin disagrees with LeapfrogJoin under colliding hash")
	}
}

// checkJoinImplsAgree asserts HashJoin, SortMergeJoin and NestedLoopJoin
// produce the same bag of tuples on r ⋈ s.
func checkJoinImplsAgree(t *testing.T, r, s *Relation) {
	t.Helper()
	hj := HashJoin("J", r, s)
	sm := SortMergeJoin("J", r, s)
	nl := NestedLoopJoin("J", r, s)
	for _, pair := range []struct {
		name string
		got  *Relation
	}{{"SortMergeJoin", sm}, {"NestedLoopJoin", nl}} {
		a, b := hj.Clone(), pair.got.Clone()
		a.Sort()
		b.Sort()
		if a.Len() != b.Len() {
			t.Fatalf("HashJoin %d rows, %s %d rows", hj.Len(), pair.name, pair.got.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if !rowsEqual(a.Row(i), b.Row(i)) {
				t.Fatalf("HashJoin and %s disagree at sorted row %d: %v vs %v",
					pair.name, i, a.Row(i), b.Row(i))
			}
		}
	}
}

// TestPropJoinImplsAgreeFullRange cross-validates the three local join
// implementations on full-range int64 domains, where any lexicographic
// or 32-bit shortcut in the radix kernel would diverge.
func TestPropJoinImplsAgreeFullRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		r := fullRangeRel(rng, "R", []string{"x", "y"}, rng.Intn(120))
		s := fullRangeRel(rng, "S", []string{"y", "z"}, rng.Intn(120))
		checkJoinImplsAgree(t, r, s)
	}
}

// naiveGroupBy is the reference GroupBy: collect values per key with a
// map, aggregate, then sort rows numerically by key tuple.
func naiveGroupBy(name string, r *Relation, groupAttrs []string, fn AggFunc, aggAttr, outAttr string) *Relation {
	gcols := make([]int, len(groupAttrs))
	for i, a := range groupAttrs {
		gcols[i] = r.MustCol(a)
	}
	acol := -1
	if fn != Count {
		acol = r.MustCol(aggAttr)
	}
	type grp struct {
		key  []Value
		vals []Value
	}
	groups := map[string]*grp{}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		k := EncodeKey(row, gcols)
		g := groups[k]
		if g == nil {
			key := make([]Value, len(gcols))
			for j, c := range gcols {
				key[j] = row[c]
			}
			g = &grp{key: key}
			groups[k] = g
		}
		if acol >= 0 {
			g.vals = append(g.vals, row[acol])
		} else {
			g.vals = append(g.vals, 1)
		}
	}
	all := make([]*grp, 0, len(groups))
	for _, g := range groups {
		all = append(all, g)
	}
	sort.Slice(all, func(a, b int) bool {
		for i := range all[a].key {
			if all[a].key[i] != all[b].key[i] {
				return all[a].key[i] < all[b].key[i]
			}
		}
		return false
	})
	out := New(name, append(append([]string(nil), groupAttrs...), outAttr)...)
	for _, g := range all {
		var agg Value
		switch fn {
		case Sum:
			for _, v := range g.vals {
				agg += v
			}
		case Count:
			agg = Value(len(g.vals))
		case Min:
			agg = g.vals[0]
			for _, v := range g.vals {
				if v < agg {
					agg = v
				}
			}
		case Max:
			agg = g.vals[0]
			for _, v := range g.vals {
				if v > agg {
					agg = v
				}
			}
		}
		out.data = append(out.data, g.key...)
		out.data = append(out.data, agg)
	}
	return out
}

// TestGroupByOracle validates GroupBy — rows AND order — against the
// naive reference over full-range domains for every aggregate.
func TestGroupByOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		r := fullRangeRel(rng, "R", []string{"g1", "g2", "v"}, rng.Intn(300))
		for _, fn := range []AggFunc{Sum, Count, Min, Max} {
			got := GroupBy("A", r, []string{"g1", "g2"}, fn, "v", "out")
			want := naiveGroupBy("A", r, []string{"g1", "g2"}, fn, "v", "out")
			if got.Len() != want.Len() {
				t.Fatalf("trial %d fn %d: %d groups, want %d", trial, fn, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				if !rowsEqual(got.Row(i), want.Row(i)) {
					t.Fatalf("trial %d fn %d row %d: got %v, want %v",
						trial, fn, i, got.Row(i), want.Row(i))
				}
			}
		}
	}
}

// TestGroupBySortedNumeric is the ordering regression test: output must
// be ascending by group key compared numerically. The retired
// implementation sorted by little-endian EncodeKey bytes, which orders
// 256 before 1 and positives before negatives — it fails this test for
// any key ≥ 256 or < 0.
func TestGroupBySortedNumeric(t *testing.T) {
	r := FromRows("R", []string{"g", "v"}, [][]Value{
		{70000, 1}, {-5, 2}, {256, 3}, {2, 4}, {-1 << 40, 5}, {255, 6}, {2, 7}, {-5, 8},
	})
	agg := GroupBy("A", r, []string{"g"}, Sum, "v", "s")
	wantKeys := []Value{-1 << 40, -5, 2, 255, 256, 70000}
	if agg.Len() != len(wantKeys) {
		t.Fatalf("GroupBy returned %d groups, want %d", agg.Len(), len(wantKeys))
	}
	for i, k := range wantKeys {
		if agg.Row(i)[0] != k {
			t.Fatalf("group %d has key %d, want %d (output not in numeric key order: %v)",
				i, agg.Row(i)[0], k, agg)
		}
	}
	// Multi-attribute keys: the second column must break ties numerically.
	r2 := FromRows("R", []string{"a", "b", "v"}, [][]Value{
		{1, 300, 1}, {1, -2, 1}, {1, 4, 1}, {-7, 1000, 1}, {-7, -1000, 1},
	})
	agg2 := GroupBy("A", r2, []string{"a", "b"}, Count, "", "n")
	wantPairs := [][2]Value{{-7, -1000}, {-7, 1000}, {1, -2}, {1, 4}, {1, 300}}
	for i, p := range wantPairs {
		if agg2.Row(i)[0] != p[0] || agg2.Row(i)[1] != p[1] {
			t.Fatalf("group %d = (%d,%d), want (%d,%d)",
				i, agg2.Row(i)[0], agg2.Row(i)[1], p[0], p[1])
		}
	}
}

func TestDistinctFullRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		r := fullRangeRel(rng, "R", []string{"a"}, rng.Intn(500))
		got := Distinct(r, "a")
		seen := map[Value]bool{}
		for i := 0; i < r.Len(); i++ {
			seen[r.Row(i)[0]] = true
		}
		if len(got) != len(seen) {
			t.Fatalf("trial %d: %d distinct, want %d", trial, len(got), len(seen))
		}
		for i, v := range got {
			if !seen[v] {
				t.Fatalf("trial %d: value %d not in input", trial, v)
			}
			if i > 0 && got[i-1] >= v {
				t.Fatalf("trial %d: output not strictly ascending at %d: %v", trial, i, got)
			}
		}
	}
}

// TestValueGroupsOracle validates the GenericJoin grouping kernel
// directly against a map oracle, including subset rowsets.
func TestValueGroupsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := getArena()
	defer putArena(a)
	for trial := 0; trial < 30; trial++ {
		r := fullRangeRel(rng, "R", []string{"x", "y"}, rng.Intn(300))
		rowset := make([]int32, 0, r.Len())
		for i := 0; i < r.Len(); i++ {
			if rng.Intn(3) > 0 {
				rowset = append(rowset, int32(i))
			}
		}
		col := trial % 2
		g := buildValueGroups(r, col, rowset, a)
		oracle := map[Value][]int32{}
		for _, row := range rowset {
			v := r.Row(int(row))[col]
			oracle[v] = append(oracle[v], row)
		}
		if len(g.vals) != len(oracle) {
			t.Fatalf("trial %d: %d groups, oracle %d", trial, len(g.vals), len(oracle))
		}
		for v, want := range oracle {
			gid := g.lookup(v)
			if gid < 0 {
				t.Fatalf("trial %d: value %d missing", trial, v)
			}
			if !sameRows(g.rowsOf(gid), want) {
				t.Fatalf("trial %d value %d: rows %v, oracle %v", trial, v, g.rowsOf(gid), want)
			}
		}
		if g.lookup(Value(math.MaxInt64-12345)) >= 0 && oracle[Value(math.MaxInt64-12345)] == nil {
			t.Fatalf("trial %d: phantom group", trial)
		}
	}
}

// TestCheckRowCountPanics pins the int32 row-id guard: relations past
// MaxInt32 rows must fail loudly, not truncate silently.
func TestCheckRowCountPanics(t *testing.T) {
	checkRowCount("BuildIndex", math.MaxInt32) // at the limit: fine
	defer func() {
		if recover() == nil {
			t.Fatal("checkRowCount did not panic past MaxInt32 rows")
		}
	}()
	checkRowCount("BuildIndex", math.MaxInt32+1)
}

// TestHashJoinOutputOrder pins the exact output order contract: probe
// rows in relation order, each key group's build rows ascending — the
// order the map-based implementation produced and the differential
// harnesses snapshot.
func TestHashJoinOutputOrder(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 10}, {2, 20}, {3, 10}})
	s := FromRows("S", []string{"y", "z"}, [][]Value{{10, 7}, {20, 8}, {10, 9}, {10, 7}})
	// r is smaller → build side. Probe s in order; groups ascending.
	got := HashJoin("J", r, s)
	want := [][]Value{
		{1, 10, 7}, {3, 10, 7}, // s row 0 (y=10) matches r rows 0 and 2, ascending
		{2, 20, 8},             // s row 1
		{1, 10, 9}, {3, 10, 9}, // s row 2
		{1, 10, 7}, {3, 10, 7}, // s row 3
	}
	if got.Len() != len(want) {
		t.Fatalf("join has %d rows, want %d: %v", got.Len(), len(want), got)
	}
	for i, w := range want {
		if !rowsEqual(got.Row(i), w) {
			t.Fatalf("row %d = %v, want %v", i, got.Row(i), w)
		}
	}
}
