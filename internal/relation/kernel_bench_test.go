package relation

import (
	"math/rand"
	"testing"
)

// Benchmarks for the local-operator hash kernels at E-series join sizes
// (E01 uses 20k-row inputs; the skew/crossover experiments push a few
// hundred thousand rows through every server-local join). These are the
// BENCH_BASELINE.json entries gated at max_ratio 0.5: the radix kernels
// must stay at least 2x faster than the EncodeKey map baseline the
// entries were recorded from.

// benchRel returns an n-row binary relation with attr values uniform in
// [0, dom), offset so keys exercise multi-byte and negative encodings.
func benchRel(seed int64, name string, attrs []string, n, dom int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := New(name, attrs...)
	r.Grow(n * len(attrs))
	row := make([]Value, len(attrs))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = Value(rng.Intn(dom)) - Value(dom/4)
		}
		r.AppendRow(row)
	}
	return r
}

func BenchmarkHashJoin(b *testing.B) {
	r := benchRel(1, "R", []string{"x", "y"}, 200000, 50000)
	s := benchRel(2, "S", []string{"y", "z"}, 200000, 50000)
	b.Run("n200k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			HashJoin("J", r, s)
		}
	})
}

func BenchmarkGroupBy(b *testing.B) {
	r := benchRel(3, "R", []string{"g1", "g2", "v"}, 300000, 200)
	b.Run("n300k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			GroupBy("A", r, []string{"g1", "g2"}, Sum, "v", "s")
		}
	})
}

func BenchmarkBuildIndex(b *testing.B) {
	r := benchRel(4, "R", []string{"x", "y"}, 300000, 100000)
	b.Run("n300k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BuildIndex(r, []string{"y"})
		}
	})
}
