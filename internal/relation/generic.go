package relation

import "sort"

// GenericJoin is a worst-case-optimal multiway join in the style of
// NPRR / Leapfrog Triejoin: it eliminates one variable at a time,
// intersecting the candidate values from every relation that contains
// the variable. On cyclic queries such as the triangle it avoids the
// intermediate-result blowup of binary join plans (slide 63), which is
// why the HyperCube local evaluation uses it by default.
//
// varOrder must list every attribute appearing in the inputs exactly
// once; the output schema is varOrder.
func GenericJoin(name string, varOrder []string, rels ...*Relation) *Relation {
	if len(rels) == 0 {
		panic("relation: GenericJoin of nothing")
	}
	// seen is a membership set over variable names; iteration order is
	// never relied upon (candidate values are sorted numerically below).
	seen := map[string]bool{}
	for _, v := range varOrder {
		if seen[v] {
			panic("relation: GenericJoin duplicate variable " + v)
		}
		seen[v] = true
	}
	for _, r := range rels {
		for _, a := range r.Attrs() {
			if !seen[a] {
				panic("relation: GenericJoin variable order misses " + a)
			}
		}
		checkRowCount("GenericJoin", r.Len())
	}
	out := New(name, varOrder...)
	st := &gjState{
		out:      out,
		varOrder: varOrder,
		rels:     rels,
		state:    make([][]int32, len(rels)),
		version:  make([]int, len(rels)),
		binding:  make([]Value, len(varOrder)),
		cache:    map[gjCacheKey]*valueGroups{},
		arena:    getArena(),
	}
	defer putArena(st.arena)
	for i, r := range rels {
		rows := make([]int32, r.Len())
		for j := range rows {
			rows[j] = int32(j)
		}
		st.state[i] = rows
	}
	st.recurse(0)
	return out
}

// gjState carries the recursion state. The groups cache is the key
// performance device: a relation not containing the variable bound at
// depth d keeps the same surviving-row set across all of d's candidate
// values, so its grouping at depth d+1 is computed once, not once per
// candidate. Cache keys combine (relation, depth, state version), where
// the version counter ticks on every state replacement. Groupings are
// valueGroups — the open-addressing radix kernel with full value
// verification — rather than Go maps; cached entries own their storage
// and live until the join returns, while the arena provides transient
// per-build scratch.
type gjState struct {
	out      *Relation
	varOrder []string
	rels     []*Relation
	state    [][]int32
	version  []int
	nextVer  int
	binding  []Value
	cache    map[gjCacheKey]*valueGroups
	arena    *kernelArena
}

type gjCacheKey struct {
	ri, depth, version int
}

func (s *gjState) recurse(depth int) {
	if depth == len(s.varOrder) {
		s.out.data = append(s.out.data, s.binding...)
		return
	}
	v := s.varOrder[depth]
	// Relations containing v, each with its grouping of surviving rows
	// by v's value.
	type part struct {
		ri     int
		groups *valueGroups
	}
	var parts []part
	for i, r := range s.rels {
		c := r.Col(v)
		if c < 0 {
			continue
		}
		key := gjCacheKey{ri: i, depth: depth, version: s.version[i]}
		g, ok := s.cache[key]
		if !ok {
			g = buildValueGroups(r, c, s.state[i], s.arena)
			s.cache[key] = g
		}
		parts = append(parts, part{ri: i, groups: g})
	}
	if len(parts) == 0 {
		// Variable not constrained by any remaining relation; this can
		// only happen if the query is disconnected from the inputs —
		// treat as no bindings (full CQs over the inputs never hit this).
		return
	}
	// Intersect candidate values, iterating over the smallest group set.
	// Candidates are sorted numerically, so the output order is
	// independent of grouping structure and hash-iteration order.
	small := 0
	for i := range parts {
		if len(parts[i].groups.vals) < len(parts[small].groups.vals) {
			small = i
		}
	}
	cands := make([]Value, 0, len(parts[small].groups.vals))
	for _, val := range parts[small].groups.vals {
		ok := true
		for i := range parts {
			if i == small {
				continue
			}
			if parts[i].groups.lookup(val) < 0 {
				ok = false
				break
			}
		}
		if ok {
			cands = append(cands, val)
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	savedState := make([][]int32, len(parts))
	savedVer := make([]int, len(parts))
	for _, val := range cands {
		s.binding[depth] = val
		for i, p := range parts {
			savedState[i] = s.state[p.ri]
			savedVer[i] = s.version[p.ri]
			s.state[p.ri] = p.groups.rowsOf(p.groups.lookup(val))
			s.nextVer++
			s.version[p.ri] = s.nextVer
		}
		s.recurse(depth + 1)
		for i, p := range parts {
			s.state[p.ri] = savedState[i]
			s.version[p.ri] = savedVer[i]
		}
	}
}
