package relation

// Key encoding and seeded hashing for tuples. All MPC algorithms in this
// repository route tuples by hashing attribute values; the hash must be
// deterministic across runs (for reproducible experiments) yet
// independently re-seedable per attribute (the HyperCube algorithm
// requires k independent hash functions, one per variable).

// EncodeKey packs the selected columns of row into a string usable as a
// map key. The encoding is injective: 8 bytes per value, little endian.
func EncodeKey(row []Value, cols []int) string {
	b := make([]byte, 0, 8*len(cols))
	for _, c := range cols {
		v := uint64(row[c])
		b = append(b,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// Hash64 mixes a single value with a seed using an FNV-1a style round
// followed by a 64-bit finalizer (splitmix64). The finalizer matters:
// plain FNV on small integers leaves low bits highly structured, which
// skews modulo-p partitioning.
func Hash64(v Value, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HashRow hashes the selected columns of row under one seed.
func HashRow(row []Value, cols []int, seed uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, c := range cols {
		h = Hash64(row[c], h)
	}
	return h
}

// Bucket maps a hash to one of p buckets.
func Bucket(h uint64, p int) int {
	return int(h % uint64(p))
}

// Index is a hash index from a key (a subset of columns) to the row
// indices holding that key. It is the workhorse of local hash joins.
type Index struct {
	rel  *Relation
	cols []int
	m    map[string][]int32
}

// BuildIndex indexes rel on the given attributes.
func BuildIndex(rel *Relation, attrs []string) *Index {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = rel.MustCol(a)
	}
	m := make(map[string][]int32, rel.Len())
	n := rel.Len()
	for i := 0; i < n; i++ {
		k := EncodeKey(rel.Row(i), cols)
		m[k] = append(m[k], int32(i))
	}
	return &Index{rel: rel, cols: cols, m: m}
}

// Lookup returns the indices of rows whose key columns equal the key
// columns of probe (interpreted under probeCols).
func (ix *Index) Lookup(probe []Value, probeCols []int) []int32 {
	return ix.m[EncodeKey(probe, probeCols)]
}

// LookupKey returns rows matching an explicit key tuple.
func (ix *Index) LookupKey(key []Value) []int32 {
	cols := make([]int, len(key))
	for i := range key {
		cols[i] = i
	}
	return ix.m[EncodeKey(key, cols)]
}

// DistinctKeys returns the number of distinct keys in the index.
func (ix *Index) DistinctKeys() int { return len(ix.m) }
