package relation

// Key encoding and seeded hashing for tuples. All MPC algorithms in this
// repository route tuples by hashing attribute values; the hash must be
// deterministic across runs (for reproducible experiments) yet
// independently re-seedable per attribute (the HyperCube algorithm
// requires k independent hash functions, one per variable).

// EncodeKey packs the selected columns of row into a string usable as a
// map key. The encoding is injective: 8 bytes per value, little endian.
// Because the bytes are little endian (and negative values carry a high
// sign byte), lexicographic order of encoded strings does NOT agree
// with numeric order for any value ≥ 256 or < 0 — encoded keys are
// identity keys only and must never be used as sort keys. The local
// operators themselves hash rows directly (radix.go); EncodeKey remains
// for map-keyed oracles and tests.
func EncodeKey(row []Value, cols []int) string {
	b := make([]byte, 0, 8*len(cols))
	for _, c := range cols {
		v := uint64(row[c])
		b = append(b,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// Hash64 mixes a single value with a seed using an FNV-1a style round
// followed by a 64-bit finalizer (splitmix64). The finalizer matters:
// plain FNV on small integers leaves low bits highly structured, which
// skews modulo-p partitioning.
func Hash64(v Value, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	x := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HashRow hashes the selected columns of row under one seed.
func HashRow(row []Value, cols []int, seed uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, c := range cols {
		h = Hash64(row[c], h)
	}
	return h
}

// Bucket maps a hash to one of p buckets.
func Bucket(h uint64, p int) int {
	return int(h % uint64(p))
}

// Index is a hash index from a key (a subset of columns) to the row
// indices holding that key. It is the workhorse of local hash joins,
// backed by the radix-partitioned open-addressing kernel in radix.go.
//
// Row ids are int32 (halving index memory); BuildIndex panics on
// relations past math.MaxInt32 rows rather than truncating silently.
type Index struct {
	ri    rowIndex
	arena *kernelArena
}

// BuildIndex indexes rel on the given attributes. The returned Index
// owns its storage for as long as the caller retains it; the pooled
// kernels inside HashJoin/Semijoin/Antijoin recycle their build-side
// arenas instead, so prefer those operators over manual indexing when
// the index is join-transient.
func BuildIndex(rel *Relation, attrs []string) *Index {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = rel.MustCol(a)
	}
	ix := &Index{arena: new(kernelArena)}
	buildRowIndex(&ix.ri, rel, cols, ix.arena)
	return ix
}

// Lookup returns the indices of rows whose key columns equal the key
// columns of probe (interpreted under probeCols), in ascending order.
func (ix *Index) Lookup(probe []Value, probeCols []int) []int32 {
	g := ix.ri.lookupRef(probe, probeCols)
	if g.count == 0 {
		return nil
	}
	return ix.ri.group(g)
}

// LookupKey returns rows matching an explicit key tuple.
func (ix *Index) LookupKey(key []Value) []int32 {
	cols := make([]int, len(key))
	for i := range key {
		cols[i] = i
	}
	return ix.Lookup(key, cols)
}

// DistinctKeys returns the number of distinct keys in the index.
func (ix *Index) DistinctKeys() int { return ix.ri.distinct }
