package relation

import (
	"math/rand"
	"testing"
)

func TestGenericJoinTriangle(t *testing.T) {
	// Triangle 1-2-3 plus a dangling edge.
	edges := [][]Value{{1, 2}, {2, 3}, {3, 1}, {1, 4}}
	r := FromRows("R", []string{"x", "y"}, edges)
	s := FromRows("S", []string{"y", "z"}, edges)
	u := FromRows("T", []string{"z", "x"}, edges)
	got := GenericJoin("Tri", []string{"x", "y", "z"}, r, s, u)
	want := MultiJoin("Tri", r, s, u).Project("Tri", "x", "y", "z")
	if !got.EqualAsSets(want) {
		t.Fatalf("generic join = %v, want %v", got, want)
	}
	if got.Len() != 3 {
		t.Fatalf("triangle count = %d, want 3 rotations", got.Len())
	}
}

func TestGenericJoinMatchesBinaryPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		dom := 2 + rng.Intn(6)
		r := randRel(rng, "R", []string{"x", "y"}, rng.Intn(30), dom)
		s := randRel(rng, "S", []string{"y", "z"}, rng.Intn(30), dom)
		u := randRel(rng, "T", []string{"z", "x"}, rng.Intn(30), dom)
		r.Dedup()
		s.Dedup()
		u.Dedup()
		got := GenericJoin("J", []string{"x", "y", "z"}, r, s, u)
		want := MultiJoin("J", r, s, u).Project("J", "x", "y", "z")
		want.Dedup()
		if !got.EqualAsSets(want) {
			t.Fatalf("trial %d: generic join disagrees with binary plan", trial)
		}
	}
}

func TestGenericJoinAcyclicChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := randRel(rng, "R", []string{"a", "b"}, 40, 6)
	s := randRel(rng, "S", []string{"b", "c"}, 40, 6)
	u := randRel(rng, "U", []string{"c", "d"}, 40, 6)
	r.Dedup()
	s.Dedup()
	u.Dedup()
	got := GenericJoin("J", []string{"a", "b", "c", "d"}, r, s, u)
	want := MultiJoin("J", r, s, u).Project("J", "a", "b", "c", "d")
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatalf("generic join disagrees on chain query")
	}
}

func TestGenericJoinSingleRelation(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 2}, {3, 4}})
	got := GenericJoin("J", []string{"y", "x"}, r)
	if got.Len() != 2 || got.Col("y") != 0 {
		t.Fatalf("single-relation generic join wrong: %v", got)
	}
	// Output must contain (2,1) and (4,3) under schema (y,x).
	want := FromRows("W", []string{"y", "x"}, [][]Value{{2, 1}, {4, 3}})
	if !got.EqualAsSets(want) {
		t.Fatalf("values wrong: %v", got)
	}
}

func TestGenericJoinPanics(t *testing.T) {
	r := FromRows("R", []string{"x", "y"}, [][]Value{{1, 2}})
	mustPanic(t, "dup var", func() { GenericJoin("J", []string{"x", "x"}, r) })
	mustPanic(t, "missing var", func() { GenericJoin("J", []string{"x"}, r) })
	mustPanic(t, "no rels", func() { GenericJoin("J", []string{"x"}) })
}

func TestGenericJoinEmptyInput(t *testing.T) {
	r := New("R", "x", "y")
	s := FromRows("S", []string{"y", "z"}, [][]Value{{1, 2}})
	got := GenericJoin("J", []string{"x", "y", "z"}, r, s)
	if got.Len() != 0 {
		t.Fatalf("join with empty input should be empty, got %d", got.Len())
	}
}
