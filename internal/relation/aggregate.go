package relation

import "sort"

// Aggregation operators. Grouping is all the tutorial needs: the SQL
// formulation of matrix multiplication (slide 108) and the grouped-join
// example (slide 52) are GROUP BY ... SUM queries.

// AggFunc identifies an aggregate.
type AggFunc int

// Supported aggregates.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
)

// GroupBy groups r by the groupAttrs and aggregates aggAttr with fn.
// The output schema is groupAttrs followed by outAttr. For Count,
// aggAttr may be empty. Output rows are sorted by group key.
func GroupBy(name string, r *Relation, groupAttrs []string, fn AggFunc, aggAttr, outAttr string) *Relation {
	gcols := make([]int, len(groupAttrs))
	for i, a := range groupAttrs {
		gcols[i] = r.MustCol(a)
	}
	acol := -1
	if fn != Count {
		acol = r.MustCol(aggAttr)
	}
	type accum struct {
		key []Value
		agg Value
		n   int
	}
	groups := make(map[string]*accum)
	n := r.Len()
	for i := 0; i < n; i++ {
		row := r.Row(i)
		k := EncodeKey(row, gcols)
		g, ok := groups[k]
		if !ok {
			key := make([]Value, len(gcols))
			for j, c := range gcols {
				key[j] = row[c]
			}
			g = &accum{key: key}
			switch fn {
			case Min:
				g.agg = row[acol]
			case Max:
				g.agg = row[acol]
			}
			groups[k] = g
		}
		g.n++
		switch fn {
		case Sum:
			g.agg += row[acol]
		case Min:
			if row[acol] < g.agg {
				g.agg = row[acol]
			}
		case Max:
			if row[acol] > g.agg {
				g.agg = row[acol]
			}
		}
	}
	out := New(name, append(append([]string(nil), groupAttrs...), outAttr)...)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		val := g.agg
		if fn == Count {
			val = Value(g.n)
		}
		out.data = append(out.data, g.key...)
		out.data = append(out.data, val)
	}
	return out
}

// Distinct returns the distinct values of attr, sorted ascending.
func Distinct(r *Relation, attr string) []Value {
	c := r.MustCol(attr)
	seen := make(map[Value]bool)
	n := r.Len()
	for i := 0; i < n; i++ {
		seen[r.Row(i)[c]] = true
	}
	vals := make([]Value, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals
}
