package relation

import (
	"math/bits"
	"sort"
)

// Aggregation operators. Grouping is all the tutorial needs: the SQL
// formulation of matrix multiplication (slide 108) and the grouped-join
// example (slide 52) are GROUP BY ... SUM queries.

// AggFunc identifies an aggregate.
type AggFunc int

// Supported aggregates.
const (
	Sum AggFunc = iota
	Count
	Min
	Max
)

// GroupBy groups r by the groupAttrs and aggregates aggAttr with fn.
// The output schema is groupAttrs followed by outAttr. For Count,
// aggAttr may be empty. Output rows are sorted ascending by group key,
// compared numerically as tuples (a historical version sorted by the
// little-endian EncodeKey bytes instead, which disagrees with numeric
// order for values ≥ 256 or < 0).
//
// The grouping runs on the radix hash kernel: rows are hashed on the
// group columns, partitioned by the high hash bits, and accumulated in
// per-partition open-addressing tables with full key verification on
// every hash hit. Accumulators live in flat arena arrays recycled
// across calls.
func GroupBy(name string, r *Relation, groupAttrs []string, fn AggFunc, aggAttr, outAttr string) *Relation {
	gcols := make([]int, len(groupAttrs))
	for i, a := range groupAttrs {
		gcols[i] = r.MustCol(a)
	}
	acol := -1
	if fn != Count {
		acol = r.MustCol(aggAttr)
	}
	n := r.Len()
	checkRowCount("GroupBy", n)
	k := len(gcols)

	a := getArena()
	defer putArena(a)
	hashes := arenaU64(&a.hashes, n)
	for i := 0; i < n; i++ {
		hashes[i] = kernelRowHash(r.Row(i), gcols, kernelSeed)
	}
	nparts := radixParts(n)
	shift := uint(64 - bits.TrailingZeros(uint(nparts)))
	ordRows, ordHash, pcnt := partitionScatter(a, hashes, nparts, shift)

	pOff, pMask, total := sizeRegions(a, pcnt)
	slots := arenaGSlots(&a.gslots, total)
	keys := a.keys[:0]
	aggs := a.aggs[:0]
	cnts := a.cnts[:0]

	update := func(row []Value, h uint64) {
		p := h >> shift
		base, mask := pOff[p], pMask[p]
		j := h & mask
		g := -1
		for {
			s := &slots[base+int(j)]
			if s.gid == 0 {
				g = len(cnts)
				s.hash, s.gid = h, int32(g)+1
				for _, c := range gcols {
					keys = append(keys, row[c])
				}
				switch fn {
				case Min, Max:
					aggs = append(aggs, row[acol])
				default:
					aggs = append(aggs, 0)
				}
				cnts = append(cnts, 0)
				break
			}
			if s.hash == h {
				// Verify the full key against the stored group: equal
				// hashes never merge distinct keys.
				cand := int(s.gid) - 1
				eq := true
				for ci, c := range gcols {
					if keys[cand*k+ci] != row[c] {
						eq = false
						break
					}
				}
				if eq {
					g = cand
					break
				}
			}
			j = (j + 1) & mask
		}
		cnts[g]++
		switch fn {
		case Sum:
			aggs[g] += row[acol]
		case Min:
			if row[acol] < aggs[g] {
				aggs[g] = row[acol]
			}
		case Max:
			if row[acol] > aggs[g] {
				aggs[g] = row[acol]
			}
		}
	}
	if ordRows == nil {
		for i := 0; i < n; i++ {
			update(r.Row(i), hashes[i])
		}
	} else {
		for i, row := range ordRows {
			update(r.Row(int(row)), ordHash[i])
		}
	}
	a.keys, a.aggs, a.cnts = keys, aggs, cnts

	// Sort groups by key tuple — numeric comparison, not encoded bytes.
	ng := len(cnts)
	order := arenaI32(&a.order, ng)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(x, y int) bool {
		ka := keys[int(order[x])*k : int(order[x])*k+k]
		kb := keys[int(order[y])*k : int(order[y])*k+k]
		for i := 0; i < k; i++ {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})

	// Bulk emit into exactly presized storage.
	out := New(name, append(append([]string(nil), groupAttrs...), outAttr)...)
	out.data = make([]Value, ng*(k+1))
	w := 0
	for _, gi := range order {
		g := int(gi)
		w += copy(out.data[w:], keys[g*k:g*k+k])
		if fn == Count {
			out.data[w] = Value(cnts[g])
		} else {
			out.data[w] = aggs[g]
		}
		w++
	}
	return out
}

// Distinct returns the distinct values of attr, sorted ascending. The
// dedup runs on an open-addressing value set (hash + full value
// verification) instead of a Go map; only the result slice is
// allocated.
func Distinct(r *Relation, attr string) []Value {
	c := r.MustCol(attr)
	n := r.Len()
	checkRowCount("Distinct", n)
	a := getArena()
	defer putArena(a)
	size := nextPow2(2 * n)
	if size < 4 {
		size = 4
	}
	slots := arenaGSlots(&a.gslots, size)
	mask := uint64(size - 1)
	vals := make([]Value, 0, 16)
	for i := 0; i < n; i++ {
		v := r.Row(i)[c]
		h := kernelValHash(v, kernelSeed)
		j := h & mask
		for {
			s := &slots[j]
			if s.gid == 0 {
				s.hash, s.gid = h, int32(len(vals))+1
				vals = append(vals, v)
				break
			}
			if s.hash == h && vals[s.gid-1] == v {
				break
			}
			j = (j + 1) & mask
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals
}
