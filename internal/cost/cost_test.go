package cost

import (
	"math"
	"testing"

	"mpcquery/internal/hypergraph"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestHashLoadTailBound(t *testing.T) {
	// Larger degree d weakens the bound (slide 25: exponent gains a 1/d).
	b1 := HashLoadTailBound(1e6, 100, 1, 0.3)
	b2 := HashLoadTailBound(1e6, 100, 100, 0.3)
	if b1 >= b2 {
		t.Fatalf("bound should grow with d: d=1 %g, d=100 %g", b1, b2)
	}
	// No-skew bound at practical scale is tiny.
	if b1 > 1e-10 {
		t.Fatalf("no-skew bound = %g, expected tiny", b1)
	}
}

func TestSkewThresholdDegreeSlide26(t *testing.T) {
	// Slide 26 annotations: IN = 100 billion, ≤30% over expected load
	// with 95% probability. p = 100 → d ≈ 4,000,000; p = 1000 → d ≈ 10,000.
	in := 100e9
	d50 := SkewThresholdDegree(in, 50, 0.3, 0.05)
	d100 := SkewThresholdDegree(in, 100, 0.3, 0.05)
	d1000 := SkewThresholdDegree(in, 1000, 0.3, 0.05)
	// The figure's curve starts near 10 million at p = 50.
	if d50 < 7e6 || d50 > 11e6 {
		t.Fatalf("d(p=50) = %g, figure starts near 10 million", d50)
	}
	if d100 < 3.5e6 || d100 > 4.5e6 {
		t.Fatalf("d(p=100) = %g, slide says ≈ 4,000,000", d100)
	}
	// Note: the slide also annotates p=1000 with d = 10,000, which is
	// inconsistent with the slide's own printed bound (which gives
	// ≈ 3·10⁵); we reproduce the formula, not the stray annotation.
	// Threshold decreases with p: more servers expose skew sooner.
	if d1000 >= d100 {
		t.Fatal("threshold should fall as p grows")
	}
	// Inversion consistency: at the threshold degree the tail bound
	// equals failProb.
	b := HashLoadTailBound(in, 100, d100, 0.3)
	approx(t, b, 0.05, 1e-9, "bound at threshold")
}

func TestCartesianLoad(t *testing.T) {
	// Slide 28: L = 2·sqrt(|R||S|/p).
	approx(t, CartesianLoad(1e4, 1e4, 4), 2*math.Sqrt(1e8/4), 1e-9, "cartesian load")
}

func TestSkewJoinLoad(t *testing.T) {
	got := SkewJoinLoad(1000, 1e6, 100)
	approx(t, got, math.Sqrt(1e4)+10, 1e-9, "skew join load")
}

func TestHyperCubeLoadEqualSizes(t *testing.T) {
	l, err := HyperCubeLoadEqualSizes(hypergraph.Triangle(), 1e6, 64)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, l, 1e6/16, 1e-6, "triangle load N/p^{2/3}")
	l2, err := HyperCubeLoadEqualSizes(hypergraph.TwoWayJoin(), 1e6, 64)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, l2, 1e6/64, 1e-6, "join2 load N/p")
}

func TestHyperCubeLoadGeneral(t *testing.T) {
	sizes := map[string]int64{"R": 1 << 20, "S": 100, "T": 100}
	l, err := HyperCubeLoad(hypergraph.Triangle(), sizes, 64)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, l, float64(sizes["R"])/64, 1, "dominated by |R|/p")
}

// Slide 51/53 summary table: ψ* values.
func TestPsiStarTable(t *testing.T) {
	cases := []struct {
		q   hypergraph.Query
		psi float64
	}{
		{hypergraph.Triangle(), 2},   // slide 51
		{hypergraph.TwoWayJoin(), 2}, // slide 51
		{hypergraph.RST(), 2},        // slide 53
		{hypergraph.Difficult(), 3},  // slide 61
		{hypergraph.CartesianProduct(), 2},
	}
	for _, tc := range cases {
		psi, err := PsiStar(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q.Name, err)
		}
		approx(t, psi, tc.psi, 1e-6, tc.q.Name+" ψ*")
	}
}

// ψ* ≥ τ* always (the empty subset is included in the max).
func TestPsiStarAtLeastTau(t *testing.T) {
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(), hypergraph.RST(), hypergraph.Path(5),
		hypergraph.Star(4), hypergraph.Cycle(5), hypergraph.Difficult(),
	} {
		psi, err := PsiStar(q)
		if err != nil {
			t.Fatal(err)
		}
		tau, err := SpeedupExponent(q) // 1/τ*
		if err != nil {
			t.Fatal(err)
		}
		if psi < 1/tau-1e-9 {
			t.Errorf("%s: ψ* = %g < τ* = %g", q.Name, psi, 1/tau)
		}
	}
}

func TestSkewedOneRoundLoad(t *testing.T) {
	// Triangle with skew: IN/p^{1/2} (slide 51).
	l, err := SkewedOneRoundLoad(hypergraph.Triangle(), 1e6, 64)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, l, 1e6/8, 1e-6, "skewed triangle load")
}

func TestTriangleOneRoundLB(t *testing.T) {
	approx(t, TriangleOneRoundLB(1e6, 64), 1e6/16, 1e-9, "1-round LB")
}

func TestMultiRoundLoadLB(t *testing.T) {
	// Triangle ρ* = 3/2; more rounds weaken the per-round bound.
	l1, err := MultiRoundLoadLB(hypergraph.Triangle(), 1e6, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	l3, err := MultiRoundLoadLB(hypergraph.Triangle(), 1e6, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l3 >= l1 {
		t.Fatal("more rounds should lower the per-round LB")
	}
	approx(t, l1, 1e6/math.Pow(64, 2.0/3.0), 1e-6, "r=1 LB")
}

func TestSortBounds(t *testing.T) {
	// log_L N rounds.
	approx(t, SortRoundsLB(1e6, 100), 3, 1e-9, "sort rounds LB")
	approx(t, SortCommLB(1e6, 100), 3e6, 1e-6, "sort comm LB")
	// Degenerate load clamps to base 2.
	if SortRoundsLB(1024, 1) != 10 {
		t.Fatalf("clamped base wrong: %g", SortRoundsLB(1024, 1))
	}
}

func TestMatMulFormulas(t *testing.T) {
	n, L := 256.0, 4096.0
	approx(t, MatMulRectComm(n, L), 4*n*n*n*n/L, 1e-6, "rect comm")
	approx(t, MatMulSquareComm(n, L), n*n*n/64, 1e-6, "square comm")
	approx(t, MatMulCommLB(n, L), n*n*n/64, 1e-6, "comm LB")
	// Square-block beats rectangle-block when L << n²·(L/n²)... compare:
	if MatMulSquareComm(n, L) >= MatMulRectComm(n, L) {
		t.Fatal("square-block should communicate less at small L")
	}
	// Rounds LB: join term dominates for small p.
	r := MatMulRoundsLB(n, L, 4)
	if r < MatMulRoundsLB(n, L, 1024) {
		t.Fatal("rounds LB should shrink with p")
	}
}

func TestGYMCrossoverOut(t *testing.T) {
	// Triangle τ* = 3/2: crossover at OUT = p^{1/3}·IN.
	approx(t, GYMCrossoverOut(1e6, 64, 1.5), 4e6, 1e-3, "crossover")
}

func TestGHDRoundsLoad(t *testing.T) {
	r, l := GHDRoundsLoad(1000, 500, 2, 3, 10)
	approx(t, r, 3, 0, "rounds")
	approx(t, l, (1e6+500)/10, 1e-6, "load")
}

func TestSpeedupExponent(t *testing.T) {
	// Path-20: τ* = 10 ⇒ exponent 1/10 (slide 62).
	e, err := SpeedupExponent(hypergraph.Path(20))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, e, 0.1, 1e-9, "path-20 speedup exponent")
}

func TestExpectedHashLoad(t *testing.T) {
	approx(t, ExpectedHashLoad(1000, 8), 125, 0, "IN/p")
}

func TestProfileTriangle(t *testing.T) {
	pr, err := NewProfile(hypergraph.Triangle(),
		map[string]int64{"R": 10000, "S": 10000, "T": 10000}, 64)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, pr.Tau, 1.5, 1e-6, "τ*")
	approx(t, pr.Psi, 2, 1e-6, "ψ*")
	approx(t, pr.Rho, 1.5, 1e-6, "ρ*")
	if pr.Acyclic {
		t.Fatal("triangle marked acyclic")
	}
	if pr.IN != 30000 {
		t.Fatalf("IN = %d", pr.IN)
	}
	approx(t, pr.OneRoundNoSkew, 30000/16.0, 1e-6, "no-skew load")
	approx(t, pr.OneRoundSkew, 30000/8.0, 1e-6, "skew load")
	if pr.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestProfileAcyclicFlag(t *testing.T) {
	pr, err := NewProfile(hypergraph.Path(3),
		map[string]int64{"R1": 100, "R2": 100, "R3": 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Acyclic {
		t.Fatal("path marked cyclic")
	}
}
