package cost

import (
	"fmt"
	"math"

	"mpcquery/internal/fractional"
	"mpcquery/internal/hypergraph"
)

// HashLoadTailBound returns the slide-24/25 upper bound on
// Pr[L ≥ (1+δ)·IN/p] for hash-partitioning IN tuples over p servers
// when every join value has degree exactly d:
//
//	p · exp(−δ²·IN / (3·p·d))
//
// With d = 1 this is the no-skew bound of slide 24. The bound can
// exceed 1, in which case it is vacuous.
func HashLoadTailBound(in float64, p int, d float64, delta float64) float64 {
	return float64(p) * math.Exp(-delta*delta*in/(3*float64(p)*d))
}

// SkewThresholdDegree inverts HashLoadTailBound: the largest degree d
// such that the probability of exceeding (1+δ)·IN/p stays ≤ failProb.
// This regenerates the slide-26 curve (IN = 100 billion, δ = 0.3,
// failProb = 0.05, p on the x axis).
func SkewThresholdDegree(in float64, p int, delta, failProb float64) float64 {
	// failProb = p·exp(−δ²·IN/(3pd))  ⇒  d = δ²·IN / (3p·ln(p/failProb)).
	return delta * delta * in / (3 * float64(p) * math.Log(float64(p)/failProb))
}

// ExpectedHashLoad is the ideal per-server load IN/p.
func ExpectedHashLoad(in float64, p int) float64 { return in / float64(p) }

// CartesianLoad is the optimal one-round load of the grid Cartesian
// product algorithm (slide 28): 2·sqrt(|R|·|S|/p).
func CartesianLoad(r, s float64, p int) float64 {
	return 2 * math.Sqrt(r*s/float64(p))
}

// SkewJoinLoad is the slide-30 skew-aware two-way join bound:
// O(sqrt(OUT/p) + IN/p); the constant returned is the bare expression.
func SkewJoinLoad(in, out float64, p int) float64 {
	return math.Sqrt(out/float64(p)) + in/float64(p)
}

// HyperCubeLoadEqualSizes is the skew-free one-round load N/p^{1/τ*}
// for a query whose relations all have N tuples (slide 40).
func HyperCubeLoadEqualSizes(q hypergraph.Query, n float64, p int) (float64, error) {
	ep, err := fractional.MaxEdgePacking(q)
	if err != nil {
		return 0, err
	}
	return n / math.Pow(float64(p), 1/ep.Tau), nil
}

// HyperCubeLoad is the general skew-free one-round optimum
// max over edge packings u of (Π_j |S_j|^{u_j} / p)^{1/Σu} (slide 40),
// computed via the share LP (equal by duality).
func HyperCubeLoad(q hypergraph.Query, sizes map[string]int64, p int) (float64, error) {
	sh, err := fractional.OptimalShares(q, sizes, p)
	if err != nil {
		return 0, err
	}
	return sh.FractionalLoad, nil
}

// TriangleOneRoundLB is the slide-36 lower bound for any one-round
// triangle algorithm on skew-free inputs: Ω(N/p^{2/3}).
func TriangleOneRoundLB(n float64, p int) float64 {
	return n / math.Pow(float64(p), 2.0/3.0)
}

// PsiStar computes the skew exponent ψ* of slide 47: the maximum of
// τ*(Q_x) over all subsets x of variables (taking the residual query
// that deletes x), including x = ∅. The skewed one-round optimal load
// is IN/p^{1/ψ*}.
func PsiStar(q hypergraph.Query) (float64, error) {
	best := 0.0
	for _, heavy := range q.VarSubsets() {
		res, _ := q.Residual(heavy)
		if len(res.Atoms) == 0 {
			continue
		}
		ep, err := fractional.MaxEdgePacking(res)
		if err != nil {
			return 0, fmt.Errorf("ψ* of %s: %w", q.Name, err)
		}
		if ep.Tau > best {
			best = ep.Tau
		}
	}
	return best, nil
}

// SkewedOneRoundLoad is IN/p^{1/ψ*} (slide 51).
func SkewedOneRoundLoad(q hypergraph.Query, in float64, p int) (float64, error) {
	psi, err := PsiStar(q)
	if err != nil {
		return 0, err
	}
	return in / math.Pow(float64(p), 1/psi), nil
}

// MultiRoundLoadLB is the slide-56 counting lower bound: a server that
// receives r·L tuples can report at most (r·L)^{ρ*} outputs, and the p
// servers must jointly report OUT = IN^{ρ*} outputs in the worst case,
// so L ≥ IN/(r^{1/ρ*}·p^{1/ρ*}) — for constant r, L = Ω(IN/p^{1/ρ*}).
func MultiRoundLoadLB(q hypergraph.Query, in float64, p, rounds int) (float64, error) {
	ec, err := fractional.MinEdgeCover(q)
	if err != nil {
		return 0, err
	}
	return in / math.Pow(float64(rounds)*float64(p), 1/ec.Rho), nil
}

// SortRoundsLB is the slide-105 bound: any MPC sort of N items with
// per-round load L needs Ω(log_L N) rounds.
func SortRoundsLB(n, load float64) float64 {
	if load < 2 {
		load = 2
	}
	return math.Log(n) / math.Log(load)
}

// SortCommLB is the slide-105 bound on total communication:
// Ω(N·log_L N).
func SortCommLB(n, load float64) float64 {
	return n * SortRoundsLB(n, load)
}

// MatMulRectComm is the one-round rectangle-block communication
// C = Θ(n⁴/L) (slides 110/122): with load L = 2tn each of the
// K² = (n/t)² processors receives L words, so C = K²·L = 4n⁴/L.
func MatMulRectComm(n, load float64) float64 {
	return 4 * n * n * n * n / load
}

// MatMulSquareComm is the multi-round square-block communication
// C = Θ(n³/√L) (slide 122).
func MatMulSquareComm(n, load float64) float64 {
	return n * n * n / math.Sqrt(load)
}

// MatMulCommLB is the round-independent communication lower bound
// C = Ω(n³/√L) (slides 123–124): a processor receiving L words performs
// at most O(L^{3/2}) elementary products (by the AGM bound with
// ρ* = 3/2), and n³ products are required.
func MatMulCommLB(n, load float64) float64 {
	return n * n * n / math.Sqrt(load)
}

// MatMulRoundsLB is the slide-125 round bound:
// r = Ω(max(n³/(p·L^{3/2}), log_L n)).
func MatMulRoundsLB(n, load float64, p int) float64 {
	join := n * n * n / (float64(p) * math.Pow(load, 1.5))
	agg := math.Log(n) / math.Log(math.Max(load, 2))
	return math.Max(join, agg)
}

// GYMCrossoverOut is the slide-78 threshold: GYM's load
// (IN+OUT)/p beats HyperCube's IN/p^{1/τ*} exactly when
// OUT < p^{1−1/τ*}·IN (up to constants).
func GYMCrossoverOut(in float64, p int, tau float64) float64 {
	return math.Pow(float64(p), 1-1/tau) * in
}

// GHDRoundsLoad is the slide-95 trade-off for a width-w, depth-d GHD:
// r = O(d) rounds and L = O((IN^w + OUT)/p).
func GHDRoundsLoad(in, out float64, w, d, p int) (rounds float64, load float64) {
	return float64(d), (math.Pow(in, float64(w)) + out) / float64(p)
}

// SpeedupExponent returns the HyperCube speedup exponent 1/τ* (slide
// 62): doubling throughput requires 2^{τ*} times more servers.
func SpeedupExponent(q hypergraph.Query) (float64, error) {
	ep, err := fractional.MaxEdgePacking(q)
	if err != nil {
		return 0, err
	}
	return 1 / ep.Tau, nil
}

// Profile summarizes every analytic quantity the tutorial attaches to
// one query at one scale: the three exponents and the loads they imply.
type Profile struct {
	Query   string
	Acyclic bool
	Tau     float64 // fractional edge packing number τ*
	Psi     float64 // skew exponent ψ*
	Rho     float64 // fractional edge cover number ρ*
	AGM     float64 // AGM output bound for the given sizes
	IN      int64
	P       int
	// Implied loads for this IN and p.
	OneRoundNoSkew float64 // IN/p^{1/τ*}
	OneRoundSkew   float64 // IN/p^{1/ψ*}
	MultiRoundLB   float64 // IN/(r·p)^{1/ρ*} at r = 1
}

// NewProfile computes the profile of q for the given relation sizes and
// cluster size.
func NewProfile(q hypergraph.Query, sizes map[string]int64, p int) (*Profile, error) {
	ep, err := fractional.MaxEdgePacking(q)
	if err != nil {
		return nil, err
	}
	psi, err := PsiStar(q)
	if err != nil {
		return nil, err
	}
	ec, err := fractional.MinEdgeCover(q)
	if err != nil {
		return nil, err
	}
	agm, err := fractional.AGMBound(q, sizes)
	if err != nil {
		return nil, err
	}
	var in int64
	for _, n := range sizes {
		in += n
	}
	acyclic, _ := hypergraph.IsAcyclic(q)
	pf := float64(p)
	return &Profile{
		Query:          q.String(),
		Acyclic:        acyclic,
		Tau:            ep.Tau,
		Psi:            psi,
		Rho:            ec.Rho,
		AGM:            agm,
		IN:             in,
		P:              p,
		OneRoundNoSkew: float64(in) / math.Pow(pf, 1/ep.Tau),
		OneRoundSkew:   float64(in) / math.Pow(pf, 1/psi),
		MultiRoundLB:   float64(in) / math.Pow(pf, 1/ec.Rho),
	}, nil
}

// String renders the profile as the tutorial's per-query summary row.
func (pr *Profile) String() string {
	shape := "cyclic"
	if pr.Acyclic {
		shape = "acyclic"
	}
	return fmt.Sprintf(
		"%s [%s]\n  τ* = %.3g  ψ* = %.3g  ρ* = %.3g  AGM ≤ %.3g\n"+
			"  1-round loads: no-skew IN/p^{1/τ*} = %.0f, skew IN/p^{1/ψ*} = %.0f; multi-round LB IN/p^{1/ρ*} = %.0f  (IN=%d, p=%d)",
		pr.Query, shape, pr.Tau, pr.Psi, pr.Rho, pr.AGM,
		pr.OneRoundNoSkew, pr.OneRoundSkew, pr.MultiRoundLB, pr.IN, pr.P)
}
