package cost

import (
	"math"
	"testing"
)

func TestEffectiveParallelism(t *testing.T) {
	tests := []struct {
		name string
		caps []float64
		want float64
	}{
		{"empty", nil, 0},
		{"uniform 4", []float64{1, 1, 1, 1}, 4},
		{"uniform scaled", []float64{3, 3, 3, 3}, 4},
		{"one fast", []float64{2, 1, 1, 1}, 2.5},
		{"one machine", []float64{7}, 1},
		{"non-positive entry", []float64{1, 0, 1}, 0},
	}
	for _, tc := range tests {
		if got := EffectiveParallelism(tc.caps); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: EffectiveParallelism(%v) = %v, want %v", tc.name, tc.caps, got, tc.want)
		}
	}
}

func TestApportionCells(t *testing.T) {
	tests := []struct {
		name string
		g    int
		caps []float64
		want []int
	}{
		{"uniform divides evenly", 8, []float64{1, 1, 1, 1}, []int{2, 2, 2, 2}},
		{"uniform remainder to low ids", 10, []float64{1, 1, 1, 1}, []int{3, 3, 2, 2}},
		{"2:1:1 split", 16, []float64{2, 1, 1}, []int{8, 4, 4}},
		{"proportional with remainders", 10, []float64{5, 3, 2}, []int{5, 3, 2}},
		{"tiny grid big cluster", 2, []float64{1, 1, 1, 1}, []int{1, 1, 0, 0}},
		{"zero cells", 0, []float64{1, 2}, []int{0, 0}},
		{"degenerate profile uniform fallback", 5, []float64{0, 0}, []int{3, 2}},
	}
	for _, tc := range tests {
		got := ApportionCells(tc.g, tc.caps)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: len = %d, want %d", tc.name, len(got), len(tc.want))
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != tc.want[i] {
				t.Errorf("%s: ApportionCells(%d, %v) = %v, want %v", tc.name, tc.g, tc.caps, got, tc.want)
				break
			}
		}
		if tc.g > 0 && sum != tc.g {
			t.Errorf("%s: counts %v sum to %d, want %d", tc.name, got, sum, tc.g)
		}
	}
}

// TestApportionCellsConservation fuzzes the invariant that counts
// always sum to g and no server with positive capacity loses its
// floor share.
func TestApportionCellsConservation(t *testing.T) {
	profiles := [][]float64{
		{1, 2, 3, 4}, {0.1, 0.1, 10}, {1, 1, 1, 1, 1, 1, 1, 1},
		{7, 0.5, 0.5}, {1.5, 2.5},
	}
	for _, caps := range profiles {
		var sumCap float64
		for _, c := range caps {
			sumCap += c
		}
		for g := 1; g <= 64; g++ {
			got := ApportionCells(g, caps)
			sum := 0
			for i, n := range got {
				sum += n
				floor := int(math.Floor(float64(g) * caps[i] / sumCap))
				if n < floor {
					t.Fatalf("ApportionCells(%d, %v)[%d] = %d below floor %d", g, caps, i, n, floor)
				}
			}
			if sum != g {
				t.Fatalf("ApportionCells(%d, %v) = %v sums to %d", g, caps, got, sum)
			}
		}
	}
}

func TestNormalizedMakespan(t *testing.T) {
	loads := []int64{100, 100, 100, 100}
	if got := NormalizedMakespan(loads, nil); got != 100 {
		t.Errorf("nil caps: %v, want 100", got)
	}
	// A slow server at equal load dominates: 100/0.5 = 200.
	if got := NormalizedMakespan(loads, []float64{1, 1, 1, 0.5}); got != 200 {
		t.Errorf("slow server: %v, want 200", got)
	}
	// Giving the slow server proportionally less load restores balance.
	if got := NormalizedMakespan([]int64{120, 120, 120, 40}, []float64{1, 1, 1, 0.5}); got != 120 {
		t.Errorf("proportional: %v, want 120", got)
	}
}

func TestParseCapacities(t *testing.T) {
	good := []struct {
		in   string
		want []float64
	}{
		{"", nil},
		{"  ", nil},
		{"1,2,3", []float64{1, 2, 3}},
		{" 1.5 , 0.5 ", []float64{1.5, 0.5}},
	}
	for _, tc := range good {
		got, err := ParseCapacities(tc.in)
		if err != nil {
			t.Errorf("ParseCapacities(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseCapacities(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseCapacities(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
	for _, bad := range []string{"1,x", "1,,2", "0,1", "-1", "1,inf", "nan"} {
		if _, err := ParseCapacities(bad); err == nil {
			t.Errorf("ParseCapacities(%q): want error", bad)
		}
	}
}
