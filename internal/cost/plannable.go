package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpcquery/internal/fractional"
	"mpcquery/internal/hypergraph"
)

// QueryStats carries everything the cost-based planner knows about one
// query instance: the query itself, per-atom cardinalities, per-column
// distinct counts and maximum value degrees (the skew evidence), and
// derived output estimates. internal/plan collects it from the actual
// relations; the Predict functions of every Plannable consume it.
//
// All estimates are in tuples, matching the simulator's metered unit.
type QueryStats struct {
	// Query is the conjunctive query being planned.
	Query hypergraph.Query
	// P is the cluster size the plan targets.
	P int
	// Sizes maps atom name to relation cardinality, clamped to ≥ 1 so
	// the LPs stay well-defined.
	Sizes map[string]int64
	// IN is the total input size Σ|S_j|.
	IN int64
	// Distinct maps atom → variable → number of distinct values in that
	// column (≥ 1).
	Distinct map[string]map[string]int
	// MaxDeg maps atom → variable → the maximum frequency of any single
	// value in that column — the planner's skew evidence.
	MaxDeg map[string]map[string]int
	// HeavyThreshold is the degree above which a value counts as heavy:
	// max atom cardinality / p, at least 1 (slide 29 / slide 47).
	HeavyThreshold int
	// HeavyVars maps variable → the number of heavy values observed on
	// it in any atom (0 = skew-free on that variable).
	HeavyVars map[string]int
	// OutAGM is the AGM worst-case output bound for Sizes.
	OutAGM float64
	// OutEst is the System-R-style expected output estimate (capped by
	// OutAGM); the formulas use it wherever the theory says "OUT".
	OutEst float64
}

// MaxDegOf returns the maximum degree of variable v across every atom
// that mentions it (0 if no atom does).
func (st *QueryStats) MaxDegOf(v string) int {
	m := 0
	for _, a := range st.Query.Atoms {
		if a.HasVar(v) {
			if d := st.MaxDeg[a.Name][v]; d > m {
				m = d
			}
		}
	}
	return m
}

// Skewed reports whether any variable carries a heavy hitter.
func (st *QueryStats) Skewed() bool {
	for _, n := range st.HeavyVars {
		if n > 0 {
			return true
		}
	}
	return false
}

// String renders the statistics deterministically (sorted by atom and
// variable name) — part of the byte-stable EXPLAIN contract.
func (st *QueryStats) String() string {
	var b strings.Builder
	atoms := make([]string, 0, len(st.Sizes))
	for _, a := range st.Query.Atoms {
		atoms = append(atoms, a.Name)
	}
	for _, name := range atoms {
		a := st.Query.Atom(name)
		fmt.Fprintf(&b, "%s: %d tuples", name, st.Sizes[name])
		for _, v := range a.Vars {
			fmt.Fprintf(&b, "  %s(V=%d,dmax=%d)", v, st.Distinct[name][v], st.MaxDeg[name][v])
		}
		b.WriteByte('\n')
	}
	heavy := make([]string, 0, len(st.HeavyVars))
	for v, n := range st.HeavyVars {
		if n > 0 {
			heavy = append(heavy, fmt.Sprintf("%s:%d", v, n))
		}
	}
	sort.Strings(heavy)
	if len(heavy) == 0 {
		fmt.Fprintf(&b, "heavy hitters: none (threshold %d)\n", st.HeavyThreshold)
	} else {
		fmt.Fprintf(&b, "heavy hitters (threshold %d): %s\n", st.HeavyThreshold, strings.Join(heavy, " "))
	}
	fmt.Fprintf(&b, "IN=%d  OUT≈%.4g  (AGM ≤ %.4g)\n", st.IN, st.OutEst, st.OutAGM)
	return b.String()
}

// Estimate is a predicted MPC cost: the three numbers of the model.
type Estimate struct {
	// L is the predicted max per-server per-round load in tuples.
	L float64
	// R is the predicted number of communication rounds.
	R int
	// C is the predicted total communication in tuples.
	C float64
	// Detail optionally explains the prediction (e.g. chosen shares).
	Detail string
}

func (e Estimate) String() string {
	s := fmt.Sprintf("L≈%.4g  r=%d  C≈%.4g", e.L, e.R, e.C)
	if e.Detail != "" {
		s += "  (" + e.Detail + ")"
	}
	return s
}

// Plannable describes one executable algorithm to the query planner:
// its core.Algorithm name, a one-line description, an applicability
// test (a nil error means the algorithm can run the query; the error
// text otherwise becomes the EXPLAIN rejection reason), and the cost
// prediction. Each algorithm package exports its own descriptors via a
// Plannables() function; internal/plan assembles the registry.
type Plannable struct {
	// Alg matches the core.Algorithm string used to force execution.
	Alg string
	// Doc is a one-line description shown by EXPLAIN -verbose.
	Doc string
	// Executable marks strategies the planner can actually run through
	// core.Engine on a conjunctive query. Non-executable descriptors
	// (sorting and matrix-multiplication primitives) still appear in
	// EXPLAIN with their rejection reason.
	Executable bool
	// Applies returns nil when the algorithm can run this query, or an
	// error explaining why not.
	Applies func(st *QueryStats) error
	// Predict returns the (L, r, C) estimate; called only when Applies
	// returned nil.
	Predict func(st *QueryStats) (Estimate, error)
}

// ---- Shared estimation helpers ----

// EstimateOut is the System-R-style expected output size of q: the
// product of relation sizes divided, for every variable shared by k ≥ 2
// atoms, by each of the k−1 largest distinct counts of that variable
// (for two relations this is the classic |R|·|S| / max(V(R,y), V(S,y))).
// distinct maps atom → variable → distinct count. The result is capped
// at the AGM bound when agm > 0.
func EstimateOut(q hypergraph.Query, sizes map[string]int64, distinct map[string]map[string]int, agm float64) float64 {
	logEst := 0.0
	for _, a := range q.Atoms {
		logEst += math.Log(float64(sizes[a.Name]))
	}
	for _, v := range q.Vars() {
		var ds []int
		for _, a := range q.Atoms {
			if a.HasVar(v) {
				d := distinct[a.Name][v]
				if d < 1 {
					d = 1
				}
				ds = append(ds, d)
			}
		}
		if len(ds) < 2 {
			continue
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ds)))
		for _, d := range ds[:len(ds)-1] {
			logEst -= math.Log(float64(d))
		}
	}
	est := math.Exp(logEst)
	if agm > 0 && est > agm {
		est = agm
	}
	return est
}

// SubqueryStats restricts st to the given atoms (by name), recomputing
// IN and the output estimates for the sub-hypergraph. Atom order
// follows the original query. Used for prefix estimates of iterative
// plans.
func SubqueryStats(st *QueryStats, atomNames []string) (*QueryStats, error) {
	keep := map[string]bool{}
	for _, n := range atomNames {
		keep[n] = true
	}
	var atoms []hypergraph.Atom
	var in int64
	sizes := map[string]int64{}
	for _, a := range st.Query.Atoms {
		if !keep[a.Name] {
			continue
		}
		atoms = append(atoms, a)
		sizes[a.Name] = st.Sizes[a.Name]
		in += st.Sizes[a.Name]
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("cost: empty subquery")
	}
	sub := hypergraph.Query{Name: st.Query.Name + "_sub", Atoms: atoms}
	agm, err := fractional.AGMBound(sub, sizes)
	if err != nil {
		return nil, err
	}
	return &QueryStats{
		Query:          sub,
		P:              st.P,
		Sizes:          sizes,
		IN:             in,
		Distinct:       st.Distinct,
		MaxDeg:         st.MaxDeg,
		HeavyThreshold: st.HeavyThreshold,
		HeavyVars:      st.HeavyVars,
		OutAGM:         agm,
		OutEst:         EstimateOut(sub, sizes, st.Distinct, agm),
	}, nil
}

// ChainSizes estimates the size of every left-deep prefix join of the
// given atom order. Unlike the pure System-R estimate it tracks the
// maximum per-variable degree of the running intermediate, so values
// that are heavy in several relations compound multiplicatively — the
// regime where the independence assumption collapses (a Zipf hub
// variable shared by every atom of a star query joins dmax_R·dmax_S
// tuples from the top value alone, orders of magnitude above the
// independence estimate). out[i] is the estimated size after joining
// atoms[0..i]; out[0] = |atoms[0]|. Estimates only grow vs System-R,
// and skew-free inputs reduce to the System-R value exactly.
func ChainSizes(st *QueryStats, atomNames []string) []float64 {
	thr := float64(st.HeavyThreshold)
	type colStat struct{ deg, v float64 }
	a0 := st.Query.Atom(atomNames[0])
	inter := map[string]colStat{}
	size := float64(st.Sizes[a0.Name])
	for _, v := range a0.Vars {
		inter[v] = colStat{deg: float64(st.MaxDeg[a0.Name][v]), v: float64(st.Distinct[a0.Name][v])}
	}
	out := []float64{size}
	for _, name := range atomNames[1:] {
		a := st.Query.Atom(name)
		an := float64(st.Sizes[a.Name])
		sharedSet := map[string]bool{}
		var shared []string
		for _, v := range a.Vars {
			if _, ok := inter[v]; ok && !sharedSet[v] {
				shared = append(shared, v)
				sharedSet[v] = true
			}
		}
		newsize := size * an // Cartesian when no shared variable
		if len(shared) > 0 {
			light := size * an
			for _, s := range shared {
				v := inter[s].v
				if av := float64(st.Distinct[a.Name][s]); av > v {
					v = av
				}
				light /= v
			}
			// Heavy alignment: if either side concentrates a value of s
			// beyond the heavy threshold, assume the top values coincide
			// (the adversarial case) and charge their degree product.
			heavy := 0.0
			for _, s := range shared {
				di, da := inter[s].deg, float64(st.MaxDeg[a.Name][s])
				if (di > thr || da > thr) && di*da > heavy {
					heavy = di * da
				}
			}
			newsize = light + heavy
			if lim := size * an; newsize > lim {
				newsize = lim
			}
		}
		if newsize < 1 {
			newsize = 1
		}
		// Degree propagation into the new intermediate.
		fI, fA := newsize/size, newsize/an
		next := map[string]colStat{}
		for v, cs := range inter {
			d := cs.deg
			if sharedSet[v] {
				d *= float64(st.MaxDeg[a.Name][v])
			} else if fI > 1 {
				d *= fI
			}
			if d > newsize {
				d = newsize
			}
			next[v] = colStat{deg: d, v: cs.v}
		}
		for _, v := range a.Vars {
			if cs, ok := next[v]; ok {
				if av := float64(st.Distinct[a.Name][v]); av < cs.v {
					cs.v = av
					next[v] = cs
				}
				continue
			}
			d := float64(st.MaxDeg[a.Name][v])
			if fA > 1 {
				d *= fA
			}
			if d > newsize {
				d = newsize
			}
			next[v] = colStat{deg: d, v: float64(st.Distinct[a.Name][v])}
		}
		inter = next
		size = newsize
		out = append(out, size)
	}
	return out
}

// ChainOut is the heavy-aware whole-query output estimate: the last
// ChainSizes prefix over the query's atom order, capped at the AGM
// bound.
func ChainOut(st *QueryStats) float64 {
	names := make([]string, len(st.Query.Atoms))
	for i, a := range st.Query.Atoms {
		names[i] = a.Name
	}
	sizes := ChainSizes(st, names)
	est := sizes[len(sizes)-1]
	if st.OutAGM > 0 && est > st.OutAGM {
		est = st.OutAGM
	}
	return est
}

// HyperCubeReplication is the total communication of one HyperCube
// shuffle: Σ_j |S_j| · Π_{v ∉ vars(S_j)} p_v — every tuple of atom j is
// replicated once per grid cell it cannot address (slide 37). shares is
// indexed like vars.
func HyperCubeReplication(q hypergraph.Query, sizes map[string]int64, vars []string, shares []int) float64 {
	total := 0.0
	for _, a := range q.Atoms {
		repl := 1.0
		for i, v := range vars {
			if !a.HasVar(v) {
				repl *= float64(shares[i])
			}
		}
		total += float64(sizes[a.Name]) * repl
	}
	return total
}

// HyperCubeSkewedLoad predicts the metered per-server load of one
// HyperCube shuffle: the simulator counts every tuple a server
// receives in the round, so the expected load is the SUM over atoms of
// |S_j| / Π_{v ∈ vars(j)} p_v. Each atom's term is floored by its
// heavy-hitter bound — a value of degree d on variable x lands all d
// tuples in the same x-slice of the grid, spread only over the shares
// of the atom's other variables, i.e. at least d·p_x / Π_{v∈vars(j)}
// p_v tuples on one server (slide 46). shares is indexed like vars.
func HyperCubeSkewedLoad(st *QueryStats, vars []string, shares []int) float64 {
	share := map[string]float64{}
	for i, v := range vars {
		share[v] = float64(shares[i])
	}
	load := 0.0
	for _, a := range st.Query.Atoms {
		denom := 1.0
		for _, v := range a.Vars {
			denom *= share[v]
		}
		atomLoad := float64(st.Sizes[a.Name]) / denom
		for _, x := range a.Vars {
			d := float64(st.MaxDeg[a.Name][x])
			if l := d * share[x] / denom; l > atomLoad {
				atomLoad = l
			}
		}
		load += atomLoad
	}
	return load
}
