package cost

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// EffectiveParallelism maps a per-machine capacity vector to the
// number of capacity-max-normalized uniform servers the cluster is
// worth: Σ c_i / max c_i. A uniform cluster of p machines yields p; a
// cluster where one machine is twice as fast as the other three
// yields 1 + 3·(1/2) = 2.5. Heterogeneity-aware planning uses it as
// the p that load formulas should see: the fastest machine sets the
// pace, and slower machines contribute fractions of it (arXiv
// 2501.08896's normalized-speed model). Returns 0 for an empty or
// non-positive profile.
func EffectiveParallelism(caps []float64) float64 {
	var max, sum float64
	for _, c := range caps {
		if c <= 0 {
			return 0
		}
		if c > max {
			max = c
		}
		sum += c
	}
	if max == 0 {
		return 0
	}
	return sum / max
}

// ApportionCells splits g grid cells across len(caps) servers
// proportionally to capacity using largest-remainder apportionment:
// server i gets round(g·c_i/Σc) cells, with remainders resolved
// largest-first (ties to the lower server id, so the split is
// deterministic). Every server with positive capacity gets at least
// its floor; the counts always sum to exactly g. With uniform
// capacities this degrades to the balanced g/p ± 1 split.
func ApportionCells(g int, caps []float64) []int {
	p := len(caps)
	counts := make([]int, p)
	if g <= 0 || p == 0 {
		return counts
	}
	var sum float64
	for _, c := range caps {
		sum += c
	}
	if sum <= 0 {
		// Degenerate profile: fall back to the uniform split.
		for i := range counts {
			counts[i] = g / p
			if i < g%p {
				counts[i]++
			}
		}
		return counts
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, p)
	assigned := 0
	for i, c := range caps {
		exact := float64(g) * c / sum
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		rems[i] = rem{i, exact - math.Floor(exact)}
	}
	sort.SliceStable(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].i < rems[b].i
	})
	for k := 0; assigned < g; k++ {
		counts[rems[k%p].i]++
		assigned++
	}
	return counts
}

// NormalizedMakespan is the heterogeneous objective: the maximum over
// servers of load_i/c_i. Minimizing it is the capacity-aware analogue
// of minimizing L — the slowest-relative-to-its-load server determines
// when the round finishes. loads and caps must have equal length.
func NormalizedMakespan(loads []int64, caps []float64) float64 {
	var worst float64
	for i, l := range loads {
		c := 1.0
		if caps != nil {
			c = caps[i]
		}
		if v := float64(l) / c; v > worst {
			worst = v
		}
	}
	return worst
}

// ParseCapacities parses a comma-separated capacity vector such as
// "1,1,2,4" (whitespace around entries is ignored). Every entry must
// be a positive float. Both mpcrun -capacities and mpcserve
// -capacities go through this parser, so the two frontends accept the
// same syntax.
func ParseCapacities(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	caps := make([]float64, 0, len(parts))
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("capacity %d: %q is not a number", i, strings.TrimSpace(part))
		}
		if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return nil, fmt.Errorf("capacity %d: %v must be a positive finite number", i, v)
		}
		caps = append(caps, v)
	}
	return caps, nil
}
