// Package cost collects the tutorial's analytic cost formulas and the
// planner-facing cost descriptors built on them.
//
// The formula half (cost.go): Chernoff tail bounds for hash-partition
// load with and without skew (slides 24–25), the skew-threshold curve
// of slide 26, the HyperCube load formulas and the skew exponent ψ*
// (slides 40 and 47), the communication/round lower bounds for joins,
// sorting, and matrix multiplication (slides 56, 105, 123–125), and
// the GYM-vs-HyperCube crossover (slide 78). Benchmarks compare these
// predictions against loads measured on the simulator.
//
// The planner half (plannable.go): QueryStats carries the statistics
// the cost-based planner collects once per query, and each algorithm
// package registers a Plannable descriptor predicting its (L, r, C)
// from those stats; internal/plan ranks the descriptors.
//
// The heterogeneity half (het.go) extends shares optimization to
// machines with unequal capacity ("Parallel Query Processing with
// Heterogeneous Machines", arXiv 2501.08896): EffectiveParallelism
// maps a capacity vector to the uniform-server count a heterogeneous
// cluster is worth, ApportionCells splits a share grid across servers
// proportionally to capacity, and NormalizedMakespan is the objective
// (max load over capacity) those splits minimize.
package cost
