// Package testkit is the differential correctness harness for every MPC
// algorithm in this repository. It provides three layers:
//
//   - a sequential reference oracle (this file): brute-force nested-loop
//     join, naive map-based aggregation, and a stdlib sort — small and
//     obviously correct, deliberately sharing no code with the parallel
//     algorithms or with relation.GenericJoin;
//   - a seeded random workload generator (generate.go): databases with
//     controllable size, domain and skew (uniform, Zipf, heavy-hitter)
//     plus random conjunctive queries (chains, stars, cycles, triangles);
//   - a differential runner (differential.go) with theory assertions
//     (theory.go): every parallel algorithm is executed across a sweep
//     of (p, seed, skew) and its gathered result compared tuple-for-
//     tuple against the oracle, while the metered round count r is
//     asserted exactly and the metered load L is checked against the
//     IN/p^{1/τ*} bound of Beame–Koutris–Suciu on skew-free inputs.
//
// Each algorithm package wires itself in via a <pkg>_diff_test.go file;
// see README.md in this directory for how to add a new algorithm.
package testkit

import (
	"fmt"
	"sort"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// OracleJoin evaluates the conjunctive query q by brute-force nested
// loops: partial variable bindings are extended atom by atom, scanning
// every tuple of every relation. Relations are keyed by atom name with
// columns matched positionally to the atom's variables. The result has
// schema q.Vars() and set semantics (duplicate input tuples do not
// multiply output bindings), matching the repository-wide convention.
//
// The implementation is intentionally the dumbest correct one — its
// value as an oracle comes from having nothing in common with the
// algorithms under test.
func OracleJoin(q hypergraph.Query, rels map[string]*relation.Relation) *relation.Relation {
	for _, a := range q.Atoms {
		r, ok := rels[a.Name]
		if !ok {
			panic(fmt.Sprintf("testkit: no relation for atom %s", a.Name))
		}
		if r.Arity() != len(a.Vars) {
			panic(fmt.Sprintf("testkit: relation %s arity %d, atom wants %d", a.Name, r.Arity(), len(a.Vars)))
		}
	}
	bindings := []map[string]relation.Value{{}}
	for _, a := range q.Atoms {
		r := rels[a.Name]
		var next []map[string]relation.Value
		for _, b := range bindings {
			for i := 0; i < r.Len(); i++ {
				row := r.Row(i)
				consistent := true
				for j, v := range a.Vars {
					if bound, has := b[v]; has && bound != row[j] {
						consistent = false
						break
					}
				}
				if !consistent {
					continue
				}
				nb := make(map[string]relation.Value, len(b)+len(a.Vars))
				for k, val := range b {
					nb[k] = val
				}
				for j, v := range a.Vars {
					nb[v] = row[j]
				}
				next = append(next, nb)
			}
		}
		bindings = next
	}
	vars := q.Vars()
	out := relation.New(q.Name, vars...)
	row := make([]relation.Value, len(vars))
	for _, b := range bindings {
		for i, v := range vars {
			row[i] = b[v]
		}
		out.AppendRow(row)
	}
	out.Dedup()
	return out
}

// OracleGroupBy groups r by the groupBy attributes and aggregates
// aggAttr with fn, using a plain map of collected values — independent
// of relation.GroupBy and of the distributed combiner pattern. For
// Count, aggAttr may be empty. The output (schema groupBy + outAttr) is
// sorted by group key.
func OracleGroupBy(name string, r *relation.Relation, groupBy []string, fn relation.AggFunc, aggAttr, outAttr string) *relation.Relation {
	gcols := make([]int, len(groupBy))
	for i, a := range groupBy {
		gcols[i] = r.MustCol(a)
	}
	acol := -1
	if fn != relation.Count {
		acol = r.MustCol(aggAttr)
	}
	type group struct {
		key  []relation.Value
		vals []relation.Value
	}
	// EncodeKey strings are identity keys only here: groups are visited
	// through the insertion-order slice, never by (lexicographic) key
	// order, and the final out.Sort() orders rows numerically by tuple.
	groups := map[string]*group{}
	var order []string
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		k := relation.EncodeKey(row, gcols)
		g, ok := groups[k]
		if !ok {
			key := make([]relation.Value, len(gcols))
			for j, c := range gcols {
				key[j] = row[c]
			}
			g = &group{key: key}
			groups[k] = g
			order = append(order, k)
		}
		if acol >= 0 {
			g.vals = append(g.vals, row[acol])
		} else {
			g.vals = append(g.vals, 1)
		}
	}
	out := relation.New(name, append(append([]string(nil), groupBy...), outAttr)...)
	for _, k := range order {
		g := groups[k]
		var agg relation.Value
		switch fn {
		case relation.Sum:
			for _, v := range g.vals {
				agg += v
			}
		case relation.Count:
			agg = relation.Value(len(g.vals))
		case relation.Min:
			agg = g.vals[0]
			for _, v := range g.vals {
				if v < agg {
					agg = v
				}
			}
		case relation.Max:
			agg = g.vals[0]
			for _, v := range g.vals {
				if v > agg {
					agg = v
				}
			}
		default:
			panic(fmt.Sprintf("testkit: unknown aggregate %d", fn))
		}
		out.AppendRow(append(append([]relation.Value(nil), g.key...), agg))
	}
	out.Sort()
	return out
}

// OracleSort returns a copy of r sorted lexicographically by keyAttrs
// (ties broken by the full tuple), using the stdlib sort directly on a
// row-index permutation. Bag semantics: duplicates are retained.
func OracleSort(r *relation.Relation, keyAttrs ...string) *relation.Relation {
	cols := make([]int, len(keyAttrs))
	for i, a := range keyAttrs {
		cols[i] = r.MustCol(a)
	}
	n := r.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := r.Row(idx[a]), r.Row(idx[b])
		for _, c := range cols {
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		for c := range ra {
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		return false
	})
	out := relation.New(r.Name(), r.Attrs()...)
	for _, i := range idx {
		out.AppendRow(r.Row(i))
	}
	return out
}

// BagEqual reports whether a and b hold exactly the same multiset of
// tuples. The schemas must contain the same attributes, possibly in a
// different order; b is projected to a's attribute order first.
func BagEqual(a, b *relation.Relation) bool {
	if a.Arity() != b.Arity() || a.Len() != b.Len() {
		return false
	}
	for _, attr := range a.Attrs() {
		if b.Col(attr) < 0 {
			return false
		}
	}
	as := a.Clone()
	bs := b.Project(a.Name(), a.Attrs()...)
	as.Sort()
	bs.Sort()
	for i := 0; i < as.Len(); i++ {
		ra, rb := as.Row(i), bs.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}

// DiffSample renders a short human-readable account of how got differs
// from want (missing and unexpected tuples, a few of each) for test
// failure messages.
func DiffSample(got, want *relation.Relation) string {
	// EncodeKey is a multiset identity key here; tuple order never
	// depends on the (lexicographic) string order of encoded keys.
	count := func(r *relation.Relation, cols []int) map[string]int {
		m := map[string]int{}
		for i := 0; i < r.Len(); i++ {
			m[relation.EncodeKey(r.Row(i), cols)]++
		}
		return m
	}
	allCols := func(r *relation.Relation) []int {
		cols := make([]int, r.Arity())
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	if got.Arity() != want.Arity() {
		return fmt.Sprintf("arity mismatch: got %v, want %v", got.Attrs(), want.Attrs())
	}
	for _, attr := range want.Attrs() {
		if got.Col(attr) < 0 {
			return fmt.Sprintf("schema mismatch: got %v, want %v", got.Attrs(), want.Attrs())
		}
	}
	g := count(got.Project("g", want.Attrs()...), allCols(want))
	w := count(want, allCols(want))
	var missing, extra []string
	for k, n := range w {
		if g[k] < n {
			missing = append(missing, fmt.Sprintf("%q×%d", k, n-g[k]))
		}
	}
	for k, n := range g {
		if w[k] < n {
			extra = append(extra, fmt.Sprintf("%q×%d", k, n-w[k]))
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	const maxShow = 5
	if len(missing) > maxShow {
		missing = append(missing[:maxShow], "...")
	}
	if len(extra) > maxShow {
		extra = append(extra[:maxShow], "...")
	}
	return fmt.Sprintf("got %d tuples, want %d; missing %v, unexpected %v",
		got.Len(), want.Len(), missing, extra)
}
