package testkit

import (
	"testing"

	"mpcquery/internal/relation"
)

// TestGenRelationDeterministic: identical (skew, cfg, seed) must yield
// bit-identical relations; different seeds must differ.
func TestGenRelationDeterministic(t *testing.T) {
	for _, skew := range AllSkews {
		a := GenRelation("R", []string{"x", "y"}, skew, GenConfig{}, 42)
		b := GenRelation("R", []string{"x", "y"}, skew, GenConfig{}, 42)
		if !a.EqualAsSets(b) || a.Len() != b.Len() {
			t.Fatalf("%s: same seed produced different relations", skew)
		}
		if skew != SkewNone { // SkewNone ignores the seed by design
			c := GenRelation("R", []string{"x", "y"}, skew, GenConfig{}, 43)
			same := a.Len() == c.Len() && a.EqualAsSets(c)
			if same {
				t.Fatalf("%s: different seeds produced identical relations", skew)
			}
		}
	}
}

// TestGenRelationShape checks cardinality, arity, and per-skew value
// invariants (domain ranges, degree structure).
func TestGenRelationShape(t *testing.T) {
	cfg := GenConfig{Tuples: 500, Domain: 50}
	for _, skew := range AllSkews {
		r := GenRelation("R", []string{"a", "b", "c"}, skew, cfg, 9)
		if r.Len() != 500 || r.Arity() != 3 {
			t.Fatalf("%s: got %d×%d, want 500×3", skew, r.Len(), r.Arity())
		}
		deg := map[relation.Value]int{}
		for i := 0; i < r.Len(); i++ {
			deg[r.Row(i)[0]]++
		}
		switch skew {
		case SkewNone:
			for v, d := range deg {
				if d != 1 {
					t.Fatalf("none: value %d has degree %d, want 1", v, d)
				}
			}
		case SkewUniform, SkewZipf:
			for i := 0; i < r.Len(); i++ {
				if v := r.Row(i)[0]; v < 0 || v >= relation.Value(cfg.Domain) {
					t.Fatalf("%s: value %d outside [0, %d)", skew, v, cfg.Domain)
				}
			}
		case SkewHeavy:
			if deg[0] != 150 { // 0.3 · 500 planted copies of the heavy value
				t.Fatalf("heavy: heavy value degree %d, want 150", deg[0])
			}
			for v, d := range deg {
				if v != 0 && d != 1 {
					t.Fatalf("heavy: light value %d has degree %d, want 1", v, d)
				}
			}
		}
	}
}

// TestSkewedDistributionsAreSkewed: the two skewed generators must
// produce a max degree well above the skew-free ones, otherwise the
// "at least one skewed distribution" sweep requirement is vacuous.
func TestSkewedDistributionsAreSkewed(t *testing.T) {
	cfg := GenConfig{Tuples: 1000, Domain: 100}
	maxDeg := func(skew Skew) int {
		r := GenRelation("R", []string{"x", "y"}, skew, cfg, 3)
		deg := map[relation.Value]int{}
		for i := 0; i < r.Len(); i++ {
			deg[r.Row(i)[0]]++
		}
		m := 0
		for _, d := range deg {
			if d > m {
				m = d
			}
		}
		return m
	}
	uniform := maxDeg(SkewUniform)
	if z := maxDeg(SkewZipf); z < 4*uniform {
		t.Errorf("zipf max degree %d not ≫ uniform %d", z, uniform)
	}
	if h := maxDeg(SkewHeavy); h != 300 {
		t.Errorf("heavy max degree %d, want exactly 300", h)
	}
}

// TestZipfSamplerRangeAndDeterminism pins the sampler invariants the
// fuzz target also enforces.
func TestZipfSamplerRangeAndDeterminism(t *testing.T) {
	a := NewZipfSampler(1.2, 64, 11)
	b := NewZipfSampler(1.2, 64, 11)
	for i := 0; i < 10_000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("sample %d: %d != %d with identical seeds", i, va, vb)
		}
		if va < 0 || va >= 64 {
			t.Fatalf("sample %d = %d outside [0, 64)", i, va)
		}
	}
	// Exponents ≤ 1 are clamped, not rejected.
	if v := NewZipfSampler(0.5, 8, 1).Next(); v < 0 || v >= 8 {
		t.Fatalf("clamped sampler out of range: %d", v)
	}
}

// TestRandomQueryCoverage: the query generator must hit all four
// families across a modest seed range.
func TestRandomQueryCoverage(t *testing.T) {
	families := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		q := RandomQuery(seed)
		switch {
		case q.Name == "triangle":
			families["triangle"] = true
		case len(q.Name) >= 4 && q.Name[:4] == "path":
			families["path"] = true
		case len(q.Name) >= 4 && q.Name[:4] == "star":
			families["star"] = true
		case len(q.Name) >= 5 && q.Name[:5] == "cycle":
			families["cycle"] = true
		default:
			t.Fatalf("unexpected query family: %s", q.Name)
		}
	}
	for _, f := range []string{"triangle", "path", "star", "cycle"} {
		if !families[f] {
			t.Errorf("family %s never generated", f)
		}
	}
}
