package testkit

import (
	"fmt"
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/mpcnet"
	"mpcquery/internal/trace"
)

// This file is the cross-backend differential harness: every algorithm
// runs identically-seeded on the built-in in-process engine and on the
// TCP transport (loopback mpcnet workers), and the two runs must be
// indistinguishable — bit-identical fragments on every server,
// identical (L, r, C) ledgers, and float-exact trace events (hence
// identical P99Recv/Gini skew summaries). The transport contract in
// internal/mpc promises this; these sweeps enforce it per algorithm.

// backendMatrix reduces the sweep for cross-backend runs: each cell
// executes the algorithm twice, and the TCP leg pays real socket I/O,
// so the matrix trades seed count for backend coverage. Short mode
// shrinks it further to keep `go test -short` fast.
func (cfg Config) withBackendDefaults() Config {
	if len(cfg.Ps) == 0 {
		cfg.Ps = []int{2, 4, 8}
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2}
	}
	cfg = cfg.WithDefaults()
	if testing.Short() {
		cfg.Ps = cfg.Ps[:1+len(cfg.Ps)/2]
		cfg.Seeds = cfg.Seeds[:1]
		cfg.Skews = []Skew{SkewNone, SkewZipf}
	}
	return cfg
}

// newTCPCluster builds a cluster of size p backed by a fresh loopback
// TCP transport. Callers own the returned closer (usually via
// t.Cleanup); the worker count is chosen to not divide p evenly so
// shard ownership is exercised off the trivial 1:1 mapping.
func newTCPCluster(t *testing.T, p int, seed int64) *mpc.Cluster {
	t.Helper()
	workers := 3
	if p < 3 {
		workers = p
	}
	tr, err := mpcnet.NewLoopback(p, mpcnet.Options{Workers: workers})
	if err != nil {
		t.Fatalf("loopback transport: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	c := mpc.NewCluster(p, seed)
	c.SetTransport(tr)
	return c
}

// AssertSameFragments asserts every server holds bit-identical
// fragments of every relation in both clusters — same relation names,
// same tuple order, same values. This is stronger than result
// equality: it pins the delivery order the transport contract promises.
func AssertSameFragments(t *testing.T, want, got *mpc.Cluster) {
	t.Helper()
	if want.P() != got.P() {
		t.Fatalf("cluster sizes %d vs %d", want.P(), got.P())
	}
	for i := 0; i < want.P(); i++ {
		wNames, gNames := want.Server(i).RelNames(), got.Server(i).RelNames()
		if len(wNames) != len(gNames) {
			t.Fatalf("server %d: %d relations vs %d (%v vs %v)", i, len(wNames), len(gNames), wNames, gNames)
		}
		for _, name := range wNames {
			fw, fg := want.Server(i).Rel(name), got.Server(i).Rel(name)
			if fg == nil {
				t.Fatalf("server %d: relation %s missing on second backend", i, name)
			}
			if fw.Len() != fg.Len() {
				t.Fatalf("%s server %d: %d vs %d tuples", name, i, fw.Len(), fg.Len())
			}
			for r := 0; r < fw.Len(); r++ {
				rw, rg := fw.Row(r), fg.Row(r)
				for j := range rw {
					if rw[j] != rg[j] {
						t.Fatalf("%s server %d row %d: %v vs %v", name, i, r, rw, rg)
					}
				}
			}
		}
	}
}

// AssertSameTrace asserts two recorders captured element-wise identical
// event streams. trace.Event is scalar-only and comparable, so this is
// float-exact — equal P99Recv, Gini, and every other derived skew
// summary fall out of it.
func AssertSameTrace(t *testing.T, want, got *trace.Recorder) {
	t.Helper()
	we, ge := want.Events(), got.Events()
	if len(we) != len(ge) {
		t.Fatalf("trace: %d vs %d events", len(we), len(ge))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("trace event %d differs:\n  local: %+v\n  tcp:   %+v", i, we[i], ge[i])
		}
	}
}

// RunBackendDiff executes the cross-backend differential sweep for one
// algorithm on one query: for every (skew, p, seed) it runs the
// algorithm on the in-process engine and on the TCP backend with
// identical seeding and asserts the runs are indistinguishable —
// fragments, (L, r, C), traces — and that the TCP run's trace is
// self-consistent. Correctness against the oracle is RunDiff's job;
// this sweep pins backend equivalence.
func RunBackendDiff(t *testing.T, q hypergraph.Query, cfg Config, alg Algo) {
	t.Helper()
	cfg = cfg.withBackendDefaults()
	for _, skew := range cfg.Skews {
		for _, p := range cfg.Ps {
			for _, seed := range cfg.Seeds {
				skew, p, seed := skew, p, seed
				t.Run(fmt.Sprintf("%s/%s/p%d/seed%d", q.Name, skew, p, seed), func(t *testing.T) {
					rels := GenInstance(q, skew, cfg.Gen, seed)
					algSeed := uint64(seed)*0x9e3779b9 + uint64(p)

					local := mpc.NewCluster(p, seed)
					localRec := trace.NewRecorder()
					local.SetTracer(localRec)
					if err := alg(local, q, rels, "out", algSeed); err != nil {
						t.Fatalf("local run failed: %v", err)
					}

					tcp := newTCPCluster(t, p, seed)
					tcpRec := trace.NewRecorder()
					tcp.SetTracer(tcpRec)
					if err := alg(tcp, q, rels, "out", algSeed); err != nil {
						t.Fatalf("tcp run failed: %v", err)
					}

					AssertSameFragments(t, local, tcp)
					AssertSameLRC(t, local, tcp)
					AssertSameTrace(t, localRec, tcpRec)
					AssertTraceConsistent(t, tcp, tcpRec)
				})
			}
		}
	}
}

// SweepBackends is RunBackendDiff's free-form sibling for algorithms
// outside the conjunctive-query harness (sorting, aggregation, matrix
// multiplication): for every (skew, p, seed) the callback runs its
// workload on a provided cluster — once per backend, identically
// seeded — and the harness asserts the two runs indistinguishable.
// The callback must be deterministic given (cluster, p, seed, skew).
func SweepBackends(t *testing.T, cfg Config, run func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew Skew)) {
	t.Helper()
	cfg = cfg.withBackendDefaults()
	for _, skew := range cfg.Skews {
		for _, p := range cfg.Ps {
			for _, seed := range cfg.Seeds {
				skew, p, seed := skew, p, seed
				t.Run(fmt.Sprintf("%s/p%d/seed%d", skew, p, seed), func(t *testing.T) {
					local := mpc.NewCluster(p, seed)
					localRec := trace.NewRecorder()
					local.SetTracer(localRec)
					run(t, local, p, seed, skew)

					tcp := newTCPCluster(t, p, seed)
					tcpRec := trace.NewRecorder()
					tcp.SetTracer(tcpRec)
					run(t, tcp, p, seed, skew)

					AssertSameFragments(t, local, tcp)
					AssertSameLRC(t, local, tcp)
					AssertSameTrace(t, localRec, tcpRec)
					AssertTraceConsistent(t, tcp, tcpRec)
				})
			}
		}
	}
}

// RunChaosDiffTCP is the fault-injected cross-backend sweep: the chaos
// schedule runs on a TCP-backed cluster, so recovery replays commit
// over real sockets, and the run must still recover, match the
// sequential oracle, and meter the exact (L, r, C) of a fault-free
// local run. The matrix is reduced harder than RunChaosDiff's — two
// packages carrying it is enough to pin transport×chaos composition.
func RunChaosDiffTCP(t *testing.T, q hypergraph.Query, cfg Config, alg Algo) {
	t.Helper()
	cfg = cfg.withChaosDefaults()
	cfg.Ps = []int{2, 5}
	cfg.Seeds = cfg.Seeds[:1]
	if testing.Short() {
		cfg.ChaosSpecs = cfg.ChaosSpecs[:1]
		cfg.Skews = cfg.Skews[:1]
	}
	for _, spec := range cfg.ChaosSpecs {
		for _, skew := range cfg.Skews {
			for _, p := range cfg.Ps {
				for _, seed := range cfg.Seeds {
					spec, skew, p, seed := spec, skew, p, seed
					t.Run(fmt.Sprintf("%s/%s/%s/p%d/seed%d", spec, q.Name, skew, p, seed), func(t *testing.T) {
						rels := GenInstance(q, skew, cfg.Gen, seed)
						want := OracleJoin(q, rels)
						algSeed := uint64(seed)*0x9e3779b9 + uint64(p)

						clean := mpc.NewCluster(p, seed)
						if err := alg(clean, q, rels, "out", algSeed); err != nil {
							t.Fatalf("fault-free run failed: %v", err)
						}

						chaotic := newTCPCluster(t, p, seed)
						chaotic.SetFaultInjector(chaos.MustParseSchedule(spec))
						rec := trace.NewRecorder()
						chaotic.SetTracer(rec)
						if err := alg(chaotic, q, rels, "out", algSeed); err != nil {
							t.Fatalf("chaos-over-tcp run failed: %v", err)
						}
						AssertRecovered(t, chaotic)
						AssertSameLRC(t, clean, chaotic)
						AssertTraceConsistent(t, chaotic, rec)
						got := GatherResult(chaotic, "out", q.Vars())
						got.Dedup()
						if !BagEqual(got, want) {
							t.Errorf("chaos-over-tcp run differs from oracle: %s", DiffSample(got, want))
						}
					})
				}
			}
		}
	}
}
