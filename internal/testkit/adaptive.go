package testkit

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// AdaptiveAlgo runs a skew-reactive algorithm on the cluster and
// reports whether it abandoned its initial plan mid-query. The harness
// takes the algorithm as a closure (rather than importing
// internal/hypercube) so algorithm packages can wire their own
// adaptive drivers into it without an import cycle.
type AdaptiveAlgo func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) (switched bool, err error)

// SwitchChaosSpecs is the fault-schedule axis for adaptive runs: the
// flat schedules land faults on the probe round itself, and the
// after=N schedules land them on the post-switch rounds, so recovery
// is exercised both before and during the mid-query re-plan.
var SwitchChaosSpecs = []string{
	"101:drop=0.15,dup=0.08",
	"202:crash=0.2,straggle=0.3,delay=6",
	"404:crash=0.3,after=1",
	"505:drop=0.15,dup=0.08,after=2",
}

// GenMispredicted generates the slide-46 HyperCube skew pathology with
// an *interleaved* planted heavy hitter: in every atom containing the
// query's first variable, every ⌈1/HeavyFrac⌉-th row binds that
// variable to the heavy value 0; light rows get distinct values and
// uniform fill elsewhere. A heavy value of one variable confines every
// relation containing it to one slab of the HyperCube grid — the
// uniform plan's worst case, and exactly the case SkewHC's share-1
// residual plans fix. Where SkewHeavy front-loads its heavy rows, the
// interleaving spreads them evenly through the file, so any prefix
// fraction f of a fragment carries ≈ f of the heavy degree. This is
// the "emerging heavy hitter" shape: a static planner with optimistic
// stats picks the uniform plan, while an adaptive probe over a prefix
// sees the skew developing at exactly the sample-scaled rate.
func GenMispredicted(q hypergraph.Query, cfg GenConfig, seed int64) map[string]*relation.Relation {
	cfg = cfg.withDefaults()
	every := int(1 / cfg.HeavyFrac)
	if every < 1 {
		every = 1
	}
	hv := q.Vars()[0]
	rels := make(map[string]*relation.Relation, len(q.Atoms))
	for ai, a := range q.Atoms {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(ai)*7919))
		r := relation.New(a.Name, a.Vars...)
		row := make([]relation.Value, len(a.Vars))
		for i := 0; i < cfg.Tuples; i++ {
			for j, v := range a.Vars {
				switch {
				case v == hv && i%every == 0:
					row[j] = 0
				case j == 0:
					row[j] = relation.Value(i + 1) // distinct, disjoint from heavy
				default:
					row[j] = relation.Value(rng.Intn(cfg.Domain))
				}
			}
			r.AppendRow(row)
		}
		rels[a.Name] = r
	}
	return rels
}

// AssertTailRoundStats asserts that the adaptive cluster's metered
// rounds from index skip onward are identical — name, per-server Recv
// and RecvWords — to the static cluster's rounds from index 0. This is
// the switched-run determinism contract: once the adaptive driver
// discards its probe and re-plans, every remaining round must meter
// exactly what a run that chose that path up front metered.
func AssertTailRoundStats(t *testing.T, static, adaptive *mpc.Cluster, skip int) {
	t.Helper()
	ss, as := static.Metrics().RoundStats(), adaptive.Metrics().RoundStats()
	if len(as)-skip != len(ss) {
		t.Fatalf("adaptive has %d rounds after skipping %d, static has %d", len(as)-skip, skip, len(ss))
	}
	for i := range ss {
		a, s := as[i+skip], ss[i]
		if a.Name != s.Name {
			t.Fatalf("round %d: adaptive %q vs static %q", i, a.Name, s.Name)
		}
		for d := range s.Recv {
			if a.Recv[d] != s.Recv[d] || a.RecvWords[d] != s.RecvWords[d] {
				t.Fatalf("round %q server %d: adaptive (%d,%d), static (%d,%d)",
					s.Name, d, a.Recv[d], a.RecvWords[d], s.Recv[d], s.RecvWords[d])
			}
		}
	}
}

// RunAdaptiveDiff pins the adaptive executor's two contracts on the
// (p, seed) matrix of cfg:
//
// On mispredicted-skew instances (GenMispredicted) the run must
// switch, match the sequential oracle, and — after its single probe
// round — be *bit-identical* to the static skew-path run on an
// identically seeded cluster: same fragments on every server, same
// per-round (Recv, RecvWords) tail. AssertSameFragments compares every
// relation on every server, so this also proves the probe leaves no
// residue behind.
//
// On skew-free (SkewNone) instances the run must NOT switch, must
// finish in exactly probe+remainder+local = 2 metered rounds, and must
// still match the oracle.
//
// static must execute the same skew path the adaptive driver switches
// to (same seed and threshold discipline).
func RunAdaptiveDiff(t *testing.T, q hypergraph.Query, cfg Config, adaptive AdaptiveAlgo, static Algo) {
	t.Helper()
	cfg = cfg.WithDefaults()
	for _, p := range cfg.Ps {
		for _, seed := range cfg.Seeds {
			p, seed := p, seed
			algSeed := uint64(seed)*0x9e3779b9 + uint64(p)
			t.Run(fmt.Sprintf("%s/mispredicted/p%d/seed%d", q.Name, p, seed), func(t *testing.T) {
				rels := GenMispredicted(q, cfg.Gen, seed)
				want := OracleJoin(q, rels)

				ca := mpc.NewCluster(p, seed)
				rec := trace.NewRecorder()
				ca.SetTracer(rec)
				switched, err := adaptive(ca, q, rels, "out", algSeed)
				if err != nil {
					t.Fatalf("adaptive run failed: %v", err)
				}
				if !switched {
					t.Fatalf("adaptive run did not switch on a mispredicted-skew instance")
				}

				cs := mpc.NewCluster(p, seed)
				if err := static(cs, q, rels, "out", algSeed); err != nil {
					t.Fatalf("static run failed: %v", err)
				}

				got := GatherResult(ca, "out", q.Vars())
				got.Dedup()
				if !BagEqual(got, want) {
					t.Errorf("adaptive result mismatch vs oracle: %s", DiffSample(got, want))
				}
				AssertSameFragments(t, cs, ca)
				AssertTailRoundStats(t, cs, ca, 1)
				AssertTraceConsistent(t, ca, rec)
				// The switch decision must be visible in the trace.
				found := false
				for _, ev := range rec.Events() {
					if ev.Kind == trace.KindAdapt {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("switched run recorded no %q trace event", trace.KindAdapt)
				}
			})
			t.Run(fmt.Sprintf("%s/uniform/p%d/seed%d", q.Name, p, seed), func(t *testing.T) {
				rels := GenInstance(q, SkewNone, cfg.Gen, seed)
				want := OracleJoin(q, rels)
				c := mpc.NewCluster(p, seed)
				rec := trace.NewRecorder()
				c.SetTracer(rec)
				switched, err := adaptive(c, q, rels, "out", algSeed)
				if err != nil {
					t.Fatalf("adaptive run failed: %v", err)
				}
				if switched {
					t.Fatalf("adaptive run switched on a skew-free instance")
				}
				AssertRounds(t, c, 2)
				got := GatherResult(c, "out", q.Vars())
				got.Dedup()
				if !BagEqual(got, want) {
					t.Errorf("adaptive result mismatch vs oracle: %s", DiffSample(got, want))
				}
				AssertTraceConsistent(t, c, rec)
			})
		}
	}
}

// RunAdaptiveChaos exercises the switch under fault injection: for
// every schedule in SwitchChaosSpecs (probe-round faults and
// after-the-switch faults) it runs the adaptive algorithm on a
// mispredicted-skew instance twice — fault-free and injected — and
// asserts the injected run recovers, makes the same switch decision,
// meters identical (L, r, C), holds bit-identical fragments, and still
// matches the oracle. Recovery committing the same receive vectors is
// exactly what makes the mid-query decision replay-safe.
func RunAdaptiveChaos(t *testing.T, q hypergraph.Query, cfg Config, adaptive AdaptiveAlgo) {
	t.Helper()
	cfg = cfg.WithDefaults()
	specs := cfg.ChaosSpecs
	if len(specs) == 0 {
		specs = SwitchChaosSpecs
	}
	for _, spec := range specs {
		for _, p := range cfg.Ps {
			for _, seed := range cfg.Seeds {
				spec, p, seed := spec, p, seed
				algSeed := uint64(seed)*0x9e3779b9 + uint64(p)
				t.Run(fmt.Sprintf("%s/%s/p%d/seed%d", q.Name, spec, p, seed), func(t *testing.T) {
					rels := GenMispredicted(q, cfg.Gen, seed)
					want := OracleJoin(q, rels)

					clean := mpc.NewCluster(p, seed)
					cleanSwitched, err := adaptive(clean, q, rels, "out", algSeed)
					if err != nil {
						t.Fatalf("fault-free run failed: %v", err)
					}

					chaotic := NewChaosCluster(p, seed, spec)
					chaosSwitched, err := adaptive(chaotic, q, rels, "out", algSeed)
					if err != nil {
						t.Fatalf("chaos run failed: %v", err)
					}
					AssertRecovered(t, chaotic)
					if cleanSwitched != chaosSwitched {
						t.Fatalf("switch decision diverged under chaos: fault-free %v, chaos %v", cleanSwitched, chaosSwitched)
					}
					AssertSameLRC(t, clean, chaotic)
					AssertSameFragments(t, clean, chaotic)
					got := GatherResult(chaotic, "out", q.Vars())
					got.Dedup()
					if !BagEqual(got, want) {
						t.Errorf("chaos adaptive result mismatch vs oracle: %s", DiffSample(got, want))
					}
				})
			}
		}
	}
}
