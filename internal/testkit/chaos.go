package testkit

import (
	"fmt"
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/trace"
)

// DefaultChaosSpecs are the fault schedules of the standard chaos
// sweep: a drop/duplicate schedule, a crash/straggler schedule, and a
// mixed one. All use the default bounded persistence, so every round
// is guaranteed to recover within the default replay budget.
var DefaultChaosSpecs = []string{
	"101:drop=0.15,dup=0.08",
	"202:crash=0.2,straggle=0.3,delay=6",
	"303:drop=0.1,dup=0.05,crash=0.1",
}

// FixpointChaosSpecs extends the standard sweep for iterative
// workloads with after= schedules: no fault fires before metered round
// index N, so recovery is exercised *between* fixpoint iterations (the
// kernel meters two rounds per iteration, so after=2 lands the first
// fault no earlier than iteration 2) rather than only at the initial
// scatter/seed rounds the flat specs tend to hit first.
var FixpointChaosSpecs = append(append([]string(nil), DefaultChaosSpecs...),
	"404:crash=0.35,after=3",
	"505:drop=0.12,dup=0.06,after=4",
	"606:crash=0.25,straggle=0.3,delay=5,after=2",
)

// ChaosSkews is the reduced input-distribution axis of the chaos
// sweeps: the extremes of the skew matrix. Fault injection multiplies
// the sweep by the schedule axis, so the chaos matrix trades skew
// coverage (owned by the fault-free differential sweep) for schedule
// coverage.
var ChaosSkews = []Skew{SkewNone, SkewZipf}

// withChaosDefaults reduces the sweep matrix for fault-injected runs
// and fills the schedule axis.
func (cfg Config) withChaosDefaults() Config {
	if len(cfg.ChaosSpecs) == 0 {
		cfg.ChaosSpecs = DefaultChaosSpecs
	}
	if len(cfg.Skews) == 0 {
		cfg.Skews = ChaosSkews
	}
	if len(cfg.Ps) == 0 {
		cfg.Ps = []int{2, 5}
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2}
	}
	return cfg.WithDefaults()
}

// NewChaosCluster builds a cluster with the fault schedule parsed from
// spec attached. Spec syntax is chaos.Parse's compact form.
func NewChaosCluster(p int, seed int64, spec string) *mpc.Cluster {
	c := mpc.NewCluster(p, seed)
	c.SetFaultInjector(chaos.MustParseSchedule(spec))
	return c
}

// AssertRecovered fails the test unless every round of the
// fault-injected cluster committed: no poisoning failure, and a
// recovery ledger present on each round.
func AssertRecovered(t *testing.T, c *mpc.Cluster) {
	t.Helper()
	if f := c.Failed(); f != nil {
		t.Fatalf("cluster failed recovery: %v", f)
	}
	for i, st := range c.Metrics().RoundStats() {
		if st.Chaos == nil {
			t.Fatalf("round %d (%s) has no recovery ledger despite fault injection", i, st.Name)
		}
	}
}

// AssertSameLRC asserts that two clusters metered identical cost
// observables — per-round, per-server Recv and RecvWords, hence equal
// (L, r, C). This is the recovery guarantee: a fault-injected run that
// recovers is indistinguishable from the fault-free run in the model's
// cost metrics.
func AssertSameLRC(t *testing.T, clean, chaotic *mpc.Cluster) {
	t.Helper()
	cs, xs := clean.Metrics().RoundStats(), chaotic.Metrics().RoundStats()
	if len(cs) != len(xs) {
		t.Fatalf("round counts differ: fault-free %d, chaos %d", len(cs), len(xs))
	}
	for i := range cs {
		if cs[i].Name != xs[i].Name {
			t.Fatalf("round %d name differs: %q vs %q", i, cs[i].Name, xs[i].Name)
		}
		for d := range cs[i].Recv {
			if cs[i].Recv[d] != xs[i].Recv[d] || cs[i].RecvWords[d] != xs[i].RecvWords[d] {
				t.Fatalf("round %q server %d: fault-free (%d,%d), chaos (%d,%d)",
					cs[i].Name, d, cs[i].Recv[d], cs[i].RecvWords[d], xs[i].Recv[d], xs[i].RecvWords[d])
			}
		}
	}
}

// RunChaosDiff is RunDiff's fault-injected sibling: for every chaos
// schedule and every (skew, p, seed) in the (reduced) matrix it runs
// the algorithm twice on identically seeded clusters — once fault-free,
// once under the schedule — and asserts that the chaos run recovers,
// matches the sequential oracle, and meters the exact (L, r, C) of the
// fault-free run.
func RunChaosDiff(t *testing.T, q hypergraph.Query, cfg Config, alg Algo) {
	t.Helper()
	cfg = cfg.withChaosDefaults()
	for _, spec := range cfg.ChaosSpecs {
		for _, skew := range cfg.Skews {
			for _, p := range cfg.Ps {
				for _, seed := range cfg.Seeds {
					spec, skew, p, seed := spec, skew, p, seed
					t.Run(fmt.Sprintf("%s/%s/%s/p%d/seed%d", spec, q.Name, skew, p, seed), func(t *testing.T) {
						rels := GenInstance(q, skew, cfg.Gen, seed)
						want := OracleJoin(q, rels)
						algSeed := uint64(seed)*0x9e3779b9 + uint64(p)

						clean := mpc.NewCluster(p, seed)
						if err := alg(clean, q, rels, "out", algSeed); err != nil {
							t.Fatalf("fault-free run failed: %v", err)
						}
						chaotic := NewChaosCluster(p, seed, spec)
						// Trace the chaos run: AssertTraceConsistent below
						// reconciles the crash/backoff/replay events against
						// the recovery ledger of every round.
						rec := trace.NewRecorder()
						chaotic.SetTracer(rec)
						if err := alg(chaotic, q, rels, "out", algSeed); err != nil {
							t.Fatalf("chaos run failed: %v", err)
						}
						AssertRecovered(t, chaotic)
						AssertSameLRC(t, clean, chaotic)
						AssertTraceConsistent(t, chaotic, rec)
						got := GatherResult(chaotic, "out", q.Vars())
						got.Dedup()
						if !BagEqual(got, want) {
							t.Errorf("chaos run differs from oracle: %s", DiffSample(got, want))
						}
					})
				}
			}
		}
	}
}

// SweepChaos iterates the fault-schedule × (skew, p, seed) matrix as
// named subtests — Sweep's fault-injected sibling, for algorithms whose
// correctness statement is not "equals OracleJoin". The callback
// receives the schedule spec and is expected to build its clusters via
// NewChaosCluster (or SetFaultInjector) and assert with AssertRecovered
// / AssertSameLRC.
func SweepChaos(t *testing.T, cfg Config, fn func(t *testing.T, p int, seed int64, skew Skew, spec string)) {
	t.Helper()
	cfg = cfg.withChaosDefaults()
	for _, spec := range cfg.ChaosSpecs {
		for _, skew := range cfg.Skews {
			for _, p := range cfg.Ps {
				for _, seed := range cfg.Seeds {
					spec, skew, p, seed := spec, skew, p, seed
					t.Run(fmt.Sprintf("%s/%s/p%d/seed%d", spec, skew, p, seed), func(t *testing.T) {
						fn(t, p, seed, skew, spec)
					})
				}
			}
		}
	}
}
