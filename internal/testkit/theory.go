package testkit

import (
	"math"
	"testing"

	"mpcquery/internal/fractional"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
)

// TauStar returns τ*, the maximum fractional edge packing value of q —
// the exponent in the one-round load lower bound L = Ω(IN/p^{1/τ*})
// (Beame–Koutris–Suciu; slides 38–45). For the triangle, τ* = 3/2.
func TauStar(q hypergraph.Query) float64 {
	ep, err := fractional.MaxEdgePacking(q)
	if err != nil {
		panic("testkit: " + err.Error())
	}
	return ep.Tau
}

// LoadBound returns the theoretical skew-free per-server load
// IN/p^{1/τ*} for query q on a p-server cluster with total input size
// in.
func LoadBound(q hypergraph.Query, in int64, p int) float64 {
	return float64(in) / math.Pow(float64(p), 1/TauStar(q))
}

// AssertRounds fails the test unless the cluster metered exactly want
// communication rounds. Exact — not bounded — round counts are part of
// every algorithm's contract in the MPC model, where r is a headline
// cost parameter.
func AssertRounds(t *testing.T, c *mpc.Cluster, want int) {
	t.Helper()
	if got := c.Metrics().Rounds(); got != want {
		t.Errorf("rounds r = %d, want exactly %d\n%s", got, want, c.Metrics())
	}
}

// AssertLoadBound fails the test unless the metered max load L is
// within factor·LoadBound(q, in, p) + slack tuples. factor is the
// documented constant absorbed by hashing variance and integer share
// rounding; slack absorbs small-input quantization (at least one tuple
// per stream per server). Call only on skew-free instances.
func AssertLoadBound(t *testing.T, c *mpc.Cluster, q hypergraph.Query, in int64, p int, factor float64, slack int64) {
	t.Helper()
	bound := factor*LoadBound(q, in, p) + float64(slack)
	if got := c.Metrics().MaxLoad(); float64(got) > bound {
		t.Errorf("load L = %d exceeds %.1f = %.2f·IN/p^{1/τ*} + %d (IN=%d, p=%d, τ*=%.3f)\n%s",
			got, bound, factor, slack, in, p, TauStar(q), c.Metrics())
	}
}
