package testkit

import (
	"fmt"
	"math/rand"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// Skew selects the value distribution of a generated relation's first
// attribute (remaining attributes are always uniform). The differential
// sweeps run every algorithm under every skew; the theory assertions
// (round counts, load bounds) apply the load bound only to SkewNone,
// where every value has degree 1 by construction.
type Skew int

// Supported distributions.
const (
	// SkewNone is the "no skew in the extreme" regime (slide 57):
	// tuple i is (i, i, ..., i), so every value has degree exactly 1.
	SkewNone Skew = iota
	// SkewUniform draws every attribute iid uniformly from [0, Domain).
	SkewUniform
	// SkewZipf draws the first attribute from Zipf(Zipf, v=1) over
	// [0, Domain) — a heavy-tailed degree distribution.
	SkewZipf
	// SkewHeavy plants a single heavy hitter: a HeavyFrac fraction of
	// tuples share the value 0 on the first attribute, the rest are
	// distinct light values.
	SkewHeavy
)

// AllSkews lists every distribution, skew-free first.
var AllSkews = []Skew{SkewNone, SkewUniform, SkewZipf, SkewHeavy}

func (s Skew) String() string {
	switch s {
	case SkewNone:
		return "none"
	case SkewUniform:
		return "uniform"
	case SkewZipf:
		return "zipf"
	case SkewHeavy:
		return "heavy"
	}
	return fmt.Sprintf("skew(%d)", int(s))
}

// Skewed reports whether the distribution can concentrate mass on few
// values. Load-bound assertions are skipped on skewed instances.
func (s Skew) Skewed() bool { return s == SkewZipf || s == SkewHeavy }

// GenConfig controls generated relation shape. The zero value picks
// usable defaults (see withDefaults).
type GenConfig struct {
	// Tuples is the cardinality of each generated relation (default 120).
	Tuples int
	// Domain is the attribute value domain [0, Domain) (default
	// Tuples/3, so joins produce non-trivial output).
	Domain int
	// Zipf is the Zipf exponent for SkewZipf, must be > 1 (default 1.5).
	Zipf float64
	// HeavyFrac is the fraction of tuples sharing the planted heavy
	// value under SkewHeavy (default 0.3).
	HeavyFrac float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Tuples == 0 {
		c.Tuples = 120
	}
	if c.Domain == 0 {
		c.Domain = c.Tuples/3 + 1
	}
	if c.Zipf == 0 {
		c.Zipf = 1.5
	}
	if c.HeavyFrac == 0 {
		c.HeavyFrac = 0.3
	}
	return c
}

// ZipfSampler is a seeded Zipf sampler over [0, domain), the skew
// source of the workload generator. Exponents ≤ 1 (unsupported by the
// stdlib) are clamped to 1.01.
type ZipfSampler struct {
	z      *rand.Zipf
	domain int64
}

// NewZipfSampler returns a deterministic sampler; identical arguments
// yield identical streams.
func NewZipfSampler(s float64, domain int, seed int64) *ZipfSampler {
	if domain < 1 {
		panic(fmt.Sprintf("testkit: Zipf domain %d < 1", domain))
	}
	if s <= 1 {
		s = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfSampler{z: rand.NewZipf(rng, s, 1, uint64(domain-1)), domain: int64(domain)}
}

// Next returns the next sample, always in [0, domain).
func (zs *ZipfSampler) Next() relation.Value {
	v := relation.Value(zs.z.Uint64())
	if v < 0 || v >= zs.domain {
		panic(fmt.Sprintf("testkit: Zipf sample %d outside [0, %d)", v, zs.domain))
	}
	return v
}

// GenRelation generates one relation of cfg.Tuples rows under the given
// skew, deterministically in seed. The first attribute carries the skew;
// all others are uniform (SkewNone makes every attribute the row index).
func GenRelation(name string, attrs []string, skew Skew, cfg GenConfig, seed int64) *relation.Relation {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var zipf *ZipfSampler
	if skew == SkewZipf {
		zipf = NewZipfSampler(cfg.Zipf, cfg.Domain, seed+1)
	}
	heavyCut := int(float64(cfg.Tuples) * cfg.HeavyFrac)
	r := relation.New(name, attrs...)
	row := make([]relation.Value, len(attrs))
	for i := 0; i < cfg.Tuples; i++ {
		switch skew {
		case SkewNone:
			for j := range row {
				row[j] = relation.Value(i)
			}
		case SkewUniform:
			for j := range row {
				row[j] = relation.Value(rng.Intn(cfg.Domain))
			}
		case SkewZipf:
			row[0] = zipf.Next()
			for j := 1; j < len(row); j++ {
				row[j] = relation.Value(rng.Intn(cfg.Domain))
			}
		case SkewHeavy:
			if i < heavyCut {
				row[0] = 0
			} else {
				// Distinct light values, disjoint from the heavy value.
				row[0] = relation.Value(i + 1)
			}
			for j := 1; j < len(row); j++ {
				row[j] = relation.Value(rng.Intn(cfg.Domain))
			}
		default:
			panic(fmt.Sprintf("testkit: unknown skew %d", skew))
		}
		r.AppendRow(row)
	}
	return r
}

// GenInstance generates one relation per atom of q, each with an
// independent seed derived from the instance seed. Relations are keyed
// by atom name with columns matched positionally to atom variables.
func GenInstance(q hypergraph.Query, skew Skew, cfg GenConfig, seed int64) map[string]*relation.Relation {
	rels := make(map[string]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		rels[a.Name] = GenRelation(a.Name, a.Vars, skew, cfg, seed*1_000_003+int64(i)*7919)
	}
	return rels
}

// RandomQuery returns a random conjunctive query drawn from the four
// structural families the tutorial's algorithms are parameterized by —
// chains, stars, cycles, and the triangle — with 3–5 atoms,
// deterministically in seed.
func RandomQuery(seed int64) hypergraph.Query {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(3)
	switch rng.Intn(4) {
	case 0:
		return hypergraph.Path(n)
	case 1:
		return hypergraph.Star(n)
	case 2:
		return hypergraph.Cycle(n)
	default:
		return hypergraph.Triangle()
	}
}

// Renamed returns rel with its columns renamed positionally to the
// atom's variables — the adapter between generated relations (schema =
// atom variables already) or caller-supplied ones and algorithms that
// want variable-named inputs (e.g. the join2 family).
func Renamed(a hypergraph.Atom, rel *relation.Relation) *relation.Relation {
	if rel.Arity() != len(a.Vars) {
		panic(fmt.Sprintf("testkit: relation %s arity %d, atom %s wants %d", rel.Name(), rel.Arity(), a.Name, len(a.Vars)))
	}
	out := relation.New(a.Name, a.Vars...)
	for i := 0; i < rel.Len(); i++ {
		out.AppendRow(rel.Row(i))
	}
	return out
}
