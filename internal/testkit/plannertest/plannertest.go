// Package plannertest is the competitive test harness for the query
// planner (internal/plan). It lives in its own package, rather than in
// testkit proper, because it must import internal/core to execute
// planned queries — and core imports every algorithm package, whose
// own tests import testkit.
package plannertest

import (
	"testing"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/plan"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// PlannerSkews is the planner-harness distribution axis: one benign and
// one adversarial input per sweep point.
var PlannerSkews = []testkit.Skew{testkit.SkewUniform, testkit.SkewZipf}

// RunPlannerDiff is the planner's competitive harness. For every
// (p, seed, skew) sweep point it:
//
//  1. plans q over a generated instance and executes the chosen plan,
//  2. checks the output against the sequential oracle,
//  3. executes every other applicable candidate with its algorithm
//     forced, and
//  4. asserts the chosen plan's *measured* load is at most
//     2 × the best measured load over all candidates (+ LoadSlack) —
//     the planner may mispredict, but never by enough to pick a plan
//     twice as bad as the best available.
//
// Skews defaults to PlannerSkews (uniform + Zipf) unless cfg overrides.
func RunPlannerDiff(t *testing.T, q hypergraph.Query, cfg testkit.Config) {
	t.Helper()
	if len(cfg.Skews) == 0 {
		cfg.Skews = PlannerSkews
	}
	cfg = cfg.WithDefaults()
	testkit.Sweep(t, cfg, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		rels := testkit.GenInstance(q, skew, cfg.Gen, seed)
		pl, err := plan.For(q, rels, p, plan.Options{})
		if err != nil {
			t.Fatalf("plan.For: %v", err)
		}
		eng := core.NewEngine(p, seed)
		res, err := pl.Execute(eng, rels)
		if err != nil {
			t.Fatalf("plan.Execute (%s): %v", pl.Best().Alg, err)
		}
		got := res.Exec.Output.Clone()
		got.Dedup() // set semantics, as in RunDiff
		want := testkit.OracleJoin(q, rels)
		if !testkit.BagEqual(got, want) {
			t.Fatalf("planned %s: wrong output\n%s", pl.Best().Alg, testkit.DiffSample(got, want))
		}
		best := bestMeasuredLoad(t, eng, q, rels, pl)
		// LoadSlack plus one average per-server share absorbs
		// hash-placement variance at these instance sizes (the same
		// variance the per-algorithm diff tests cover with LoadFactor).
		slack := cfg.LoadSlack + testkit.InputSize(q, rels)/int64(p)
		if limit := 2*best + slack; res.MeasuredL > limit {
			t.Errorf("planner chose %s with measured L=%d, best candidate measured L=%d (limit %d)\n%s",
				pl.Best().Alg, res.MeasuredL, best, limit, pl.Explain())
		}
	})
}

// bestMeasuredLoad force-runs every applicable executable candidate and
// returns the minimum metered load — the competitive baseline.
func bestMeasuredLoad(t *testing.T, eng *core.Engine, q hypergraph.Query, rels map[string]*relation.Relation, pl *plan.Plan) int64 {
	t.Helper()
	best := int64(-1)
	for _, c := range pl.Candidates {
		if !c.Applicable || !c.Executable {
			continue
		}
		exec, err := eng.Execute(core.Request{Query: q, Relations: rels, Algorithm: core.Algorithm(c.Alg)})
		if err != nil {
			t.Fatalf("candidate %s failed to execute after Applies accepted it: %v", c.Alg, err)
		}
		if best < 0 || exec.MaxLoad < best {
			best = exec.MaxLoad
		}
	}
	if best < 0 {
		t.Fatal("no executable candidate")
	}
	return best
}
