package plannertest

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// The planner's competitive guarantee — chosen plan never worse than
// 2× the best measured candidate — swept over uniform and Zipf inputs
// for the tutorial's standard query shapes.

func TestPlannerCompetitiveTwoWay(t *testing.T) {
	RunPlannerDiff(t, hypergraph.TwoWayJoin(), testkit.Config{})
}

func TestPlannerCompetitiveTriangle(t *testing.T) {
	RunPlannerDiff(t, hypergraph.Triangle(), testkit.Config{})
}

func TestPlannerCompetitivePath(t *testing.T) {
	RunPlannerDiff(t, hypergraph.Path(4), testkit.Config{})
}

func TestPlannerCompetitiveStar(t *testing.T) {
	RunPlannerDiff(t, hypergraph.Star(3), testkit.Config{})
}
