package testkit

import (
	"math/rand"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// TestOracleJoinHandChecked pins the oracle on a tiny instance small
// enough to verify by hand: R = {(1,2),(2,3)}, S = {(2,5),(3,7),(3,7)}.
// R(x,y) ⋈ S(y,z) = {(1,2,5),(2,3,7)} under set semantics.
func TestOracleJoinHandChecked(t *testing.T) {
	q := hypergraph.TwoWayJoin()
	rels := map[string]*relation.Relation{
		"R": relation.FromRows("R", []string{"x", "y"}, [][]relation.Value{{1, 2}, {2, 3}}),
		"S": relation.FromRows("S", []string{"y", "z"}, [][]relation.Value{{2, 5}, {3, 7}, {3, 7}}),
	}
	got := OracleJoin(q, rels)
	want := relation.FromRows("join2", []string{"x", "y", "z"}, [][]relation.Value{{1, 2, 5}, {2, 3, 7}})
	if !BagEqual(got, want) {
		t.Fatalf("oracle wrong: %s", DiffSample(got, want))
	}
}

// TestOracleJoinEmptyAtom pins that any empty input relation empties
// the whole join.
func TestOracleJoinEmptyAtom(t *testing.T) {
	q := hypergraph.Triangle()
	rels := map[string]*relation.Relation{
		"R": relation.FromRows("R", []string{"x", "y"}, [][]relation.Value{{1, 2}}),
		"S": relation.New("S", "y", "z"),
		"T": relation.FromRows("T", []string{"z", "x"}, [][]relation.Value{{3, 1}}),
	}
	if got := OracleJoin(q, rels); got.Len() != 0 {
		t.Fatalf("join with empty atom returned %d tuples", got.Len())
	}
}

// TestOracleJoinVsGenericJoin differentially checks the nested-loop
// oracle against the worst-case-optimal generic join — two independent
// implementations that must agree on every random instance and query
// shape (chains, stars, cycles, triangles).
func TestOracleJoinVsGenericJoin(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		q := RandomQuery(seed)
		skew := AllSkews[seed%int64(len(AllSkews))]
		rels := GenInstance(q, skew, GenConfig{Tuples: 60}, seed)
		got := OracleJoin(q, rels)
		inputs := make([]*relation.Relation, len(q.Atoms))
		for i, a := range q.Atoms {
			inputs[i] = Renamed(a, rels[a.Name])
		}
		want := relation.GenericJoin(q.Name, q.Vars(), inputs...)
		want.Dedup()
		if !BagEqual(got, want) {
			t.Fatalf("seed %d (%s, %s): oracle disagrees with generic join: %s",
				seed, q, skew, DiffSample(got, want))
		}
	}
}

// TestOracleGroupByVsRelationGroupBy cross-checks the naive aggregation
// oracle against relation.GroupBy for every aggregate function.
func TestOracleGroupByVsRelationGroupBy(t *testing.T) {
	for _, fn := range []relation.AggFunc{relation.Sum, relation.Count, relation.Min, relation.Max} {
		for seed := int64(1); seed <= 5; seed++ {
			r := GenRelation("R", []string{"g", "v"}, SkewZipf, GenConfig{Tuples: 200, Domain: 20}, seed)
			got := OracleGroupBy("agg", r, []string{"g"}, fn, "v", "out")
			want := relation.GroupBy("agg", r, []string{"g"}, fn, "v", "out")
			if !BagEqual(got, want) {
				t.Fatalf("fn %d seed %d: %s", fn, seed, DiffSample(got, want))
			}
		}
	}
}

// TestOracleGroupByHandChecked pins aggregation semantics by hand.
func TestOracleGroupByHandChecked(t *testing.T) {
	r := relation.FromRows("R", []string{"g", "v"}, [][]relation.Value{
		{1, 10}, {1, -2}, {2, 5}, {1, 10},
	})
	cases := []struct {
		fn   relation.AggFunc
		want [][]relation.Value
	}{
		{relation.Sum, [][]relation.Value{{1, 18}, {2, 5}}},
		{relation.Count, [][]relation.Value{{1, 3}, {2, 1}}},
		{relation.Min, [][]relation.Value{{1, -2}, {2, 5}}},
		{relation.Max, [][]relation.Value{{1, 10}, {2, 5}}},
	}
	for _, tc := range cases {
		got := OracleGroupBy("agg", r, []string{"g"}, tc.fn, "v", "out")
		want := relation.FromRows("agg", []string{"g", "out"}, tc.want)
		if !BagEqual(got, want) {
			t.Fatalf("fn %d: %s", tc.fn, DiffSample(got, want))
		}
	}
}

// TestOracleSort pins the sort oracle: output is a permutation of the
// input, ordered by the key attributes with full-tuple tie-breaking.
func TestOracleSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := relation.New("R", "k", "v")
	for i := 0; i < 300; i++ {
		r.Append(relation.Value(rng.Intn(10)), relation.Value(rng.Intn(50)))
	}
	s := OracleSort(r, "k")
	if !BagEqual(r, s) {
		t.Fatal("sort is not a permutation of its input")
	}
	for i := 1; i < s.Len(); i++ {
		prev, cur := s.Row(i-1), s.Row(i)
		if prev[0] > cur[0] {
			t.Fatalf("row %d out of key order: %v after %v", i, cur, prev)
		}
		if prev[0] == cur[0] && prev[1] > cur[1] {
			t.Fatalf("row %d tie not broken by full tuple: %v after %v", i, cur, prev)
		}
	}
}

// TestBagEqual pins the multiset comparison used by every differential
// assertion, including the cases set comparison would get wrong.
func TestBagEqual(t *testing.T) {
	a := relation.FromRows("A", []string{"x", "y"}, [][]relation.Value{{1, 2}, {1, 2}, {3, 4}})
	sameReordered := relation.FromRows("B", []string{"y", "x"}, [][]relation.Value{{4, 3}, {2, 1}, {2, 1}})
	differentMultiplicity := relation.FromRows("C", []string{"x", "y"}, [][]relation.Value{{1, 2}, {3, 4}, {3, 4}})
	if !BagEqual(a, sameReordered) {
		t.Fatal("same bag under column permutation reported unequal")
	}
	if BagEqual(a, differentMultiplicity) {
		t.Fatal("bags with equal support but different multiplicities reported equal")
	}
	if BagEqual(a, relation.FromRows("D", []string{"x", "z"}, [][]relation.Value{{1, 2}, {1, 2}, {3, 4}})) {
		t.Fatal("mismatched schemas reported equal")
	}
	empty1, empty2 := relation.New("E", "x"), relation.New("F", "x")
	if !BagEqual(empty1, empty2) {
		t.Fatal("two empty relations reported unequal")
	}
}
