package testkit

import (
	"testing"

	"mpcquery/internal/relation"
)

// FuzzZipfSampler fuzzes the workload generator's skew source: for any
// exponent, domain and seed, every sample must land in [0, domain) and
// two samplers built from identical arguments must produce identical
// streams (the reproducibility contract of the whole generator).
func FuzzZipfSampler(f *testing.F) {
	f.Add(1.5, 64, int64(1))
	f.Add(1.01, 1, int64(0))
	f.Add(0.2, 1000, int64(-7)) // exponent ≤ 1 exercises the clamp
	f.Add(5.0, 2, int64(1<<40))
	f.Fuzz(func(t *testing.T, s float64, domain int, seed int64) {
		if domain < 1 || domain > 1<<20 {
			t.Skip("domain outside supported range")
		}
		if s != s || s > 1e6 { // NaN or absurd exponents
			t.Skip("degenerate exponent")
		}
		a := NewZipfSampler(s, domain, seed)
		b := NewZipfSampler(s, domain, seed)
		for i := 0; i < 64; i++ {
			va, vb := a.Next(), b.Next()
			if va != vb {
				t.Fatalf("sample %d: %d != %d for identical seeds", i, va, vb)
			}
			if va < 0 || va >= relation.Value(domain) {
				t.Fatalf("sample %d = %d outside [0, %d)", i, va, domain)
			}
		}
	})
}

// FuzzGenRelation fuzzes the relation generator across all skews: the
// output must always have the requested cardinality and schema, be
// seed-deterministic, and keep domain-bounded attributes in range.
func FuzzGenRelation(f *testing.F) {
	f.Add(100, 10, int64(1), 0)
	f.Add(1, 1, int64(-1), 3)
	f.Add(0, 0, int64(99), 2)
	f.Fuzz(func(t *testing.T, tuples, domain int, seed int64, skewRaw int) {
		if tuples < 0 || tuples > 5000 || domain < 0 || domain > 1<<20 {
			t.Skip("size outside supported range")
		}
		skew := AllSkews[((skewRaw%len(AllSkews))+len(AllSkews))%len(AllSkews)]
		cfg := GenConfig{Tuples: tuples, Domain: domain}
		a := GenRelation("R", []string{"x", "y"}, skew, cfg, seed)
		b := GenRelation("R", []string{"x", "y"}, skew, cfg, seed)
		wantLen := cfg.withDefaults().Tuples
		if a.Len() != wantLen || a.Arity() != 2 {
			t.Fatalf("%s: got %d×%d, want %d×2", skew, a.Len(), a.Arity(), wantLen)
		}
		if !BagEqual(a, b) {
			t.Fatalf("%s: same seed produced different relations", skew)
		}
	})
}
