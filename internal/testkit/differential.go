package testkit

import (
	"fmt"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Algo adapts one parallel join algorithm to the differential runner:
// execute the query on the cluster and leave the result (schema ⊇
// q.Vars(), any column order) distributed under outName. Relations are
// keyed by atom name, columns positional to atom variables — the same
// contract as core.Request.
type Algo func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error

// Config is one differential sweep specification. The zero value of
// each field falls back to the DefaultConfig value.
type Config struct {
	// Ps are the cluster sizes to sweep (≥ 3 values in DefaultConfig).
	Ps []int
	// Seeds drive the workload generator (≥ 5 values in DefaultConfig).
	Seeds []int64
	// Skews are the input distributions to sweep; DefaultConfig includes
	// skew-free, uniform, Zipf and planted-heavy-hitter inputs.
	Skews []Skew
	// Gen shapes the generated relations.
	Gen GenConfig
	// Rounds, when non-nil, returns the exact number of communication
	// rounds the algorithm must use for q at cluster size p; asserted
	// against the metered r on every instance.
	Rounds func(q hypergraph.Query, p int) int
	// LoadFactor, when > 0, asserts on SkewNone instances that the
	// metered L ≤ LoadFactor·IN/p^{1/τ*} + LoadSlack. The factor is the
	// caller-documented constant covering hashing variance and integer
	// share rounding.
	LoadFactor float64
	// LoadSlack absorbs small-input quantization (default 16 tuples).
	LoadSlack int64
	// ChaosSpecs is the fault-schedule axis of the chaos sweeps
	// (RunChaosDiff, SweepChaos), in chaos.Parse's compact form;
	// DefaultChaosSpecs when empty. Ignored by the fault-free sweeps.
	ChaosSpecs []string
}

// DefaultConfig returns the standard sweep: cluster sizes {2, 4, 8},
// five seeds, and all four input distributions.
func DefaultConfig() Config {
	return Config{
		Ps:        []int{2, 4, 8},
		Seeds:     []int64{1, 2, 3, 4, 5},
		Skews:     AllSkews,
		LoadSlack: 16,
	}
}

func (cfg Config) WithDefaults() Config {
	def := DefaultConfig()
	if len(cfg.Ps) == 0 {
		cfg.Ps = def.Ps
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = def.Seeds
	}
	if len(cfg.Skews) == 0 {
		cfg.Skews = def.Skews
	}
	if cfg.LoadSlack == 0 {
		cfg.LoadSlack = def.LoadSlack
	}
	return cfg
}

// GatherResult collects the union of outName's fragments projected to
// attrs, tolerating servers that hold nothing (an algorithm may leave
// an empty cluster-wide result).
func GatherResult(c *mpc.Cluster, outName string, attrs []string) *relation.Relation {
	out := relation.New(outName, attrs...)
	for i := 0; i < c.P(); i++ {
		if f := c.Server(i).Rel(outName); f != nil {
			out.AppendAll(f.Project(outName, attrs...))
		}
	}
	return out
}

// InputSize sums the cardinalities of the query's input relations (IN).
func InputSize(q hypergraph.Query, rels map[string]*relation.Relation) int64 {
	var in int64
	for _, a := range q.Atoms {
		in += int64(rels[a.Name].Len())
	}
	return in
}

// RunDiff executes the full differential sweep for one algorithm on one
// query: for every (skew, p, seed) it generates an instance, runs the
// algorithm on a fresh cluster, and asserts
//
//  1. bag-equality of the deduplicated gathered result against the
//     sequential oracle (set semantics, the repository-wide convention);
//  2. the exact round count, when cfg.Rounds is set;
//  3. the L ≤ LoadFactor·IN/p^{1/τ*} + LoadSlack bound on skew-free
//     (SkewNone) instances, when cfg.LoadFactor is set.
func RunDiff(t *testing.T, q hypergraph.Query, cfg Config, alg Algo) {
	t.Helper()
	cfg = cfg.WithDefaults()
	for _, skew := range cfg.Skews {
		for _, p := range cfg.Ps {
			for _, seed := range cfg.Seeds {
				skew, p, seed := skew, p, seed
				t.Run(fmt.Sprintf("%s/%s/p%d/seed%d", q.Name, skew, p, seed), func(t *testing.T) {
					rels := GenInstance(q, skew, cfg.Gen, seed)
					want := OracleJoin(q, rels)
					c := mpc.NewCluster(p, seed)
					// Every differential run is traced: correctness of the
					// result AND of the observability ledger, on every
					// (skew, p, seed) instance.
					rec := trace.NewRecorder()
					c.SetTracer(rec)
					if err := alg(c, q, rels, "out", uint64(seed)*0x9e3779b9+uint64(p)); err != nil {
						t.Fatalf("algorithm failed: %v", err)
					}
					got := GatherResult(c, "out", q.Vars())
					got.Dedup()
					if !BagEqual(got, want) {
						t.Errorf("differential mismatch vs oracle: %s", DiffSample(got, want))
					}
					if cfg.Rounds != nil {
						AssertRounds(t, c, cfg.Rounds(q, p))
					}
					if cfg.LoadFactor > 0 && skew == SkewNone {
						AssertLoadBound(t, c, q, InputSize(q, rels), p, cfg.LoadFactor, cfg.LoadSlack)
					}
					AssertTraceConsistent(t, c, rec)
				})
			}
		}
	}
}

// Sweep iterates the (skew, p, seed) matrix of cfg as named subtests
// without imposing the conjunctive-query harness — the entry point for
// algorithms whose correctness statement is not "equals OracleJoin"
// (sorting, aggregation, matrix multiplication).
func Sweep(t *testing.T, cfg Config, fn func(t *testing.T, p int, seed int64, skew Skew)) {
	t.Helper()
	cfg = cfg.WithDefaults()
	for _, skew := range cfg.Skews {
		for _, p := range cfg.Ps {
			for _, seed := range cfg.Seeds {
				skew, p, seed := skew, p, seed
				t.Run(fmt.Sprintf("%s/p%d/seed%d", skew, p, seed), func(t *testing.T) {
					fn(t, p, seed, skew)
				})
			}
		}
	}
}
