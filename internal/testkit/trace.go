package testkit

import (
	"bytes"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/trace"
)

// AssertTraceConsistent cross-checks a trace against the cluster's
// metric window: the trace is only trustworthy as an observability
// artifact if it reconciles *exactly* with the (L, r, C) accounting the
// whole repository is built around. The recorder must have been
// attached before the cluster ran any rounds. Asserted, per round:
//
//   - exactly one round_start and one round_end, with matching labels;
//   - per-server recv totals (summed over streams) equal RoundStat.Recv
//     and RoundStat.RecvWords slot for slot;
//   - send totals equal recv totals (every tuple sent is received);
//   - the skew event equals MaxRecv/P99Recv/GiniRecv and counts the
//     active servers;
//   - the chaos summary event is present iff the round ran under fault
//     injection, and mirrors the RoundStat.Chaos ledger, with matching
//     crash-event and backoff-unit tallies;
//
// and, across rounds: round count r, max load L, and total
// communication C derived from the trace equal the Metrics values.
func AssertTraceConsistent(t *testing.T, c *mpc.Cluster, rec *trace.Recorder) {
	t.Helper()
	if rec == nil {
		t.Fatalf("trace: AssertTraceConsistent needs a recorder")
	}
	m := c.Metrics()
	rounds := m.RoundStats()
	events := rec.Events()

	type roundAgg struct {
		starts, ends   int
		startName      string
		endName        string
		sendTuples     int64
		recvTuples     map[int]int64
		recvWords      map[int]int64
		skew           *trace.Event
		chaos          *trace.Event
		crashes        int
		backoffUnits   int64
		backoffEvents  int
		recvEventCount int
	}
	aggs := map[int]*roundAgg{}
	get := func(r int) *roundAgg {
		a := aggs[r]
		if a == nil {
			a = &roundAgg{recvTuples: map[int]int64{}, recvWords: map[int]int64{}}
			aggs[r] = a
		}
		return a
	}
	for i := range events {
		ev := events[i]
		a := get(ev.Round)
		switch ev.Kind {
		case trace.KindRoundStart:
			a.starts++
			a.startName = ev.Name
		case trace.KindRoundEnd:
			a.ends++
			a.endName = ev.Name
		case trace.KindSend:
			a.sendTuples += ev.Tuples
		case trace.KindRecv:
			a.recvTuples[ev.Server] += ev.Tuples
			a.recvWords[ev.Server] += ev.Words
			a.recvEventCount++
		case trace.KindSkew:
			ev := ev
			a.skew = &ev
		case trace.KindChaos:
			ev := ev
			a.chaos = &ev
		case trace.KindCrash:
			a.crashes++
		case trace.KindBackoff:
			a.backoffUnits += ev.Units
			a.backoffEvents++
		}
	}

	totalStarts := 0
	for _, a := range aggs {
		totalStarts += a.starts
	}
	if totalStarts != len(rounds) {
		t.Errorf("trace: %d round_start events, metrics metered %d rounds", totalStarts, len(rounds))
	}

	var traceMaxLoad, traceTotalComm int64
	for r := range rounds {
		st := &rounds[r]
		a := aggs[r]
		if a == nil || a.starts != 1 || a.ends != 1 {
			t.Errorf("trace: round %d: want exactly one round_start and round_end, got %+v", r, a)
			continue
		}
		if a.startName != st.Name || a.endName != st.Name {
			t.Errorf("trace: round %d: labels start=%q end=%q, metrics say %q", r, a.startName, a.endName, st.Name)
		}
		var total int64
		var roundMax int64
		for srv, want := range st.Recv {
			got := a.recvTuples[srv]
			if got != want {
				t.Errorf("trace: round %d server %d: recv tuples %d, RoundStat.Recv %d", r, srv, got, want)
			}
			if gotW, wantW := a.recvWords[srv], st.RecvWords[srv]; gotW != wantW {
				t.Errorf("trace: round %d server %d: recv words %d, RoundStat.RecvWords %d", r, srv, gotW, wantW)
			}
			total += got
			if got > roundMax {
				roundMax = got
			}
		}
		for srv := range a.recvTuples {
			if srv < 0 || srv >= len(st.Recv) {
				t.Errorf("trace: round %d: recv event for out-of-range server %d", r, srv)
			}
		}
		if a.sendTuples != total {
			t.Errorf("trace: round %d: send total %d ≠ recv total %d", r, a.sendTuples, total)
		}
		if total != st.TotalRecv() {
			t.Errorf("trace: round %d: recv total %d, RoundStat total %d", r, total, st.TotalRecv())
		}
		if roundMax > traceMaxLoad {
			traceMaxLoad = roundMax
		}
		traceTotalComm += total
		if a.skew == nil {
			t.Errorf("trace: round %d: no skew event", r)
		} else {
			active := 0
			for _, v := range st.Recv {
				if v > 0 {
					active++
				}
			}
			if a.skew.MaxRecv != st.MaxRecv() || a.skew.P99Recv != st.P99Recv() ||
				a.skew.Gini != st.GiniRecv() || a.skew.Frags != active ||
				a.skew.Tuples != st.TotalRecv() {
				t.Errorf("trace: round %d: skew event %+v, RoundStat max=%d p99=%d gini=%v active=%d total=%d",
					r, a.skew, st.MaxRecv(), st.P99Recv(), st.GiniRecv(), active, st.TotalRecv())
			}
		}
		if cs := st.Chaos; cs == nil {
			if a.chaos != nil {
				t.Errorf("trace: round %d: chaos summary event on a fault-free round", r)
			}
		} else if a.chaos == nil {
			t.Errorf("trace: round %d: fault-injected round has no chaos summary event", r)
		} else {
			if a.chaos.Attempt != cs.Attempts || a.chaos.Dropped != cs.Dropped ||
				a.chaos.Duplicated != cs.Duplicated || a.chaos.Redelivered != cs.Redelivered ||
				a.chaos.Crashes != cs.Crashes || a.chaos.Units != cs.BackoffUnits {
				t.Errorf("trace: round %d: chaos summary %+v ≠ ledger %+v", r, a.chaos, cs)
			}
			if a.crashes != cs.Crashes {
				t.Errorf("trace: round %d: %d crash events, ledger says %d", r, a.crashes, cs.Crashes)
			}
			if a.backoffUnits != cs.BackoffUnits {
				t.Errorf("trace: round %d: backoff events sum to %d units, ledger says %d", r, a.backoffUnits, cs.BackoffUnits)
			}
			if a.backoffEvents != cs.Replays() {
				t.Errorf("trace: round %d: %d backoff events, ledger shows %d replays", r, a.backoffEvents, cs.Replays())
			}
		}
	}
	if traceMaxLoad != m.MaxLoad() {
		t.Errorf("trace: derived L = %d, Metrics.MaxLoad = %d", traceMaxLoad, m.MaxLoad())
	}
	if traceTotalComm != m.TotalComm() {
		t.Errorf("trace: derived C = %d, Metrics.TotalComm = %d", traceTotalComm, m.TotalComm())
	}

	// The export path must accept every trace the simulator records:
	// encode and parse back, asserting exactness event-for-event.
	parsed, err := trace.ReadJSONL(bytes.NewReader(trace.MarshalJSONL(events)))
	if err != nil {
		t.Errorf("trace: JSONL round-trip parse: %v", err)
	} else if len(parsed) != len(events) {
		t.Errorf("trace: JSONL round-trip: %d events back, wrote %d", len(parsed), len(events))
	} else {
		for i := range events {
			if parsed[i] != events[i] {
				t.Errorf("trace: JSONL round-trip: event %d = %+v, want %+v", i, parsed[i], events[i])
				break
			}
		}
	}
}
