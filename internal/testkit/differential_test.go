package testkit

import (
	"math"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// gatherJoin is the simplest possible "parallel" algorithm: ship every
// input tuple to server 0 in one round and join there with the generic
// join. It is deliberately naive (L = IN) but exactly correct — the
// plumbing probe for the differential runner.
func gatherJoin(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(Renamed(a, rels[a.Name]))
	}
	atoms := q.Atoms
	c.Round("gatherjoin:collect", func(srv *mpc.Server, out *mpc.Out) {
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			st := out.Open(outName+":"+a.Name, a.Vars...)
			for i := 0; i < frag.Len(); i++ {
				st.SendRow(0, frag.Row(i))
			}
		}
	})
	vars := q.Vars()
	c.LocalStep(func(srv *mpc.Server) {
		inputs := make([]*relation.Relation, len(atoms))
		for i, a := range atoms {
			inputs[i] = srv.RelOrEmpty(outName+":"+a.Name, a.Vars...)
		}
		srv.Put(relation.GenericJoin(outName, vars, inputs...))
	})
	return nil
}

// TestRunDiffPlumbing drives the full sweep with the gather-everything
// baseline: if the runner's generation, oracle comparison, or round
// assertion plumbing were wrong, the simplest correct algorithm would
// already fail it.
func TestRunDiffPlumbing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Gen = GenConfig{Tuples: 50}
	cfg.Rounds = func(q hypergraph.Query, p int) int { return 1 }
	RunDiff(t, hypergraph.Triangle(), cfg, gatherJoin)
	RunDiff(t, hypergraph.Path(3), cfg, gatherJoin)
}

// TestTheoryBounds pins τ* and the load bound on the canonical queries.
func TestTheoryBounds(t *testing.T) {
	if tau := TauStar(hypergraph.Triangle()); math.Abs(tau-1.5) > 1e-9 {
		t.Errorf("triangle τ* = %g, want 1.5", tau)
	}
	if tau := TauStar(hypergraph.TwoWayJoin()); math.Abs(tau-1.0) > 1e-9 {
		t.Errorf("two-way join τ* = %g, want 1", tau)
	}
	// Triangle: L = IN/p^{2/3}. IN = 3000, p = 8 → 3000/4 = 750.
	if b := LoadBound(hypergraph.Triangle(), 3000, 8); math.Abs(b-750) > 1e-6 {
		t.Errorf("triangle load bound = %g, want 750", b)
	}
	// Two-way join: L = IN/p. IN = 1000, p = 10 → 100.
	if b := LoadBound(hypergraph.TwoWayJoin(), 1000, 10); math.Abs(b-100) > 1e-6 {
		t.Errorf("join2 load bound = %g, want 100", b)
	}
}

// TestGatherResult pins the driver-side gather used by every diff test:
// it must tolerate servers holding nothing and reorder columns.
func TestGatherResult(t *testing.T) {
	c := mpc.NewCluster(3, 1)
	c.Server(1).Put(relation.FromRows("out", []string{"y", "x"}, [][]relation.Value{{2, 1}}))
	got := GatherResult(c, "out", []string{"x", "y"})
	want := relation.FromRows("out", []string{"x", "y"}, [][]relation.Value{{1, 2}})
	if !BagEqual(got, want) {
		t.Fatalf("gather: %s", DiffSample(got, want))
	}
	if empty := GatherResult(c, "absent", []string{"x"}); empty.Len() != 0 {
		t.Fatalf("gather of absent relation returned %d tuples", empty.Len())
	}
}

// TestInputSize sums atom cardinalities.
func TestInputSize(t *testing.T) {
	q := hypergraph.TwoWayJoin()
	rels := map[string]*relation.Relation{
		"R": GenRelation("R", []string{"x", "y"}, SkewUniform, GenConfig{Tuples: 30}, 1),
		"S": GenRelation("S", []string{"y", "z"}, SkewUniform, GenConfig{Tuples: 70}, 2),
	}
	if in := InputSize(q, rels); in != 100 {
		t.Fatalf("InputSize = %d, want 100", in)
	}
}
