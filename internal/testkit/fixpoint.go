package testkit

import (
	"fmt"
	"math/rand"

	"mpcquery/internal/relation"
)

// Fixpoint and incremental-maintenance oracles. Like the rest of the
// oracle layer these are the dumbest correct implementations — naive
// (not semi-naive) fixpoints over Go maps and recompute-from-scratch
// joins — sharing no code with internal/recursive, so a differential
// match is meaningful.

// OracleFixpoint computes the transitive closure of the binary edge
// relation by naive fixpoint: T := E; repeat T := T ∪ π(T ⋈ E) until
// nothing changes. Set semantics; the output carries edges' schema and
// is sorted.
func OracleFixpoint(name string, edges *relation.Relation) *relation.Relation {
	if edges.Arity() != 2 {
		panic(fmt.Sprintf("testkit: OracleFixpoint wants a binary relation, got arity %d", edges.Arity()))
	}
	type pair [2]relation.Value
	set := map[pair]bool{}
	for i := 0; i < edges.Len(); i++ {
		set[pair{edges.Row(i)[0], edges.Row(i)[1]}] = true
	}
	for {
		var added []pair
		for t := range set {
			for i := 0; i < edges.Len(); i++ {
				if e := edges.Row(i); t[1] == e[0] && !set[pair{t[0], e[1]}] {
					added = append(added, pair{t[0], e[1]})
				}
			}
		}
		if len(added) == 0 {
			break
		}
		for _, p := range added {
			set[p] = true
		}
	}
	out := relation.New(name, edges.Attrs()...)
	for p := range set {
		out.AppendRow(p[:])
	}
	out.Sort()
	return out
}

// OracleReachable computes the set of vertices reachable from sources
// (sources included) over the directed binary edge relation, again by
// naive fixpoint. The unary output carries edges' first attribute and
// is sorted.
func OracleReachable(name string, edges *relation.Relation, sources []relation.Value) *relation.Relation {
	if edges.Arity() != 2 {
		panic(fmt.Sprintf("testkit: OracleReachable wants a binary relation, got arity %d", edges.Arity()))
	}
	set := map[relation.Value]bool{}
	for _, s := range sources {
		set[s] = true
	}
	for {
		var added []relation.Value
		for v := range set {
			for i := 0; i < edges.Len(); i++ {
				if e := edges.Row(i); e[0] == v && !set[e[1]] {
					added = append(added, e[1])
				}
			}
		}
		if len(added) == 0 {
			break
		}
		for _, v := range added {
			set[v] = true
		}
	}
	out := relation.New(name, edges.Attrs()[0])
	for v := range set {
		out.AppendRow([]relation.Value{v})
	}
	out.Sort()
	return out
}

// OracleComponents labels every vertex of the undirected view of edges
// with the minimum vertex id of its connected component, by naive
// min-label propagation. Output schema is (v, comp), sorted.
func OracleComponents(name string, edges *relation.Relation) *relation.Relation {
	if edges.Arity() != 2 {
		panic(fmt.Sprintf("testkit: OracleComponents wants a binary relation, got arity %d", edges.Arity()))
	}
	label := map[relation.Value]relation.Value{}
	for i := 0; i < edges.Len(); i++ {
		e := edges.Row(i)
		for _, v := range e {
			if _, ok := label[v]; !ok {
				label[v] = v
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < edges.Len(); i++ {
			e := edges.Row(i)
			a, b := label[e[0]], label[e[1]]
			if a < b {
				label[e[1]] = a
				changed = true
			} else if b < a {
				label[e[0]] = b
				changed = true
			}
		}
	}
	out := relation.New(name, "v", "comp")
	for v, l := range label {
		out.AppendRow([]relation.Value{v, l})
	}
	out.Sort()
	return out
}

// OracleJoinView evaluates the standing two-way join R(x, y) ⋈ S(y, z)
// from scratch by nested loops with set semantics — the
// recompute-everything side of every IVM differential test. The output
// schema is (R.x, R.y, S.z), sorted.
func OracleJoinView(name string, r, s *relation.Relation) *relation.Relation {
	if r.Arity() != 2 || s.Arity() != 2 {
		panic("testkit: OracleJoinView wants binary relations")
	}
	out := relation.New(name, r.Attrs()[0], r.Attrs()[1], s.Attrs()[1])
	for i := 0; i < r.Len(); i++ {
		for j := 0; j < s.Len(); j++ {
			if r.Row(i)[1] == s.Row(j)[0] {
				out.AppendRow([]relation.Value{r.Row(i)[0], r.Row(i)[1], s.Row(j)[1]})
			}
		}
	}
	out.Dedup()
	return out
}

// SetOp is one tuple-level mutation of a named base relation, applied
// with set semantics: inserting a present tuple and deleting an absent
// one are both no-ops.
type SetOp struct {
	Rel    string
	Insert bool
	Row    []relation.Value
}

// ApplySetOps applies ops in order to copies of the bases and returns
// the updated relations (inputs are not mutated). Bases are deduped
// first — the repository-wide set-semantics convention — and the
// results are sorted. This is the oracle's view of a mutation batch.
func ApplySetOps(rels map[string]*relation.Relation, ops []SetOp) map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, len(rels))
	for name, r := range rels {
		next := r.Clone()
		next.Dedup()
		// EncodeKey strings are identity keys only: rows are re-emitted
		// from the relation scan below, never ordered by key string.
		present := make(map[string]bool, next.Len())
		cols := make([]int, next.Arity())
		for i := range cols {
			cols[i] = i
		}
		for i := 0; i < next.Len(); i++ {
			present[relation.EncodeKey(next.Row(i), cols)] = true
		}
		for _, op := range ops {
			if op.Rel != name {
				continue
			}
			if len(op.Row) != next.Arity() {
				panic(fmt.Sprintf("testkit: op row arity %d against relation %s arity %d", len(op.Row), name, next.Arity()))
			}
			k := relation.EncodeKey(op.Row, cols)
			if op.Insert && !present[k] {
				present[k] = true
				next.AppendRow(op.Row)
			} else if !op.Insert && present[k] {
				present[k] = false
			}
		}
		final := relation.New(next.Name(), next.Attrs()...)
		for i := 0; i < next.Len(); i++ {
			if k := relation.EncodeKey(next.Row(i), cols); present[k] {
				final.AppendRow(next.Row(i))
				present[k] = false // emit each surviving tuple once
			}
		}
		final.Sort()
		out[name] = final
	}
	return out
}

// GenSetOps builds a randomized batch of n mutations against the given
// bases, deterministically in seed: a mix of deletes of existing rows,
// inserts of fresh rows drawn from [0, domain), and — every few ops —
// an explicit delete-then-reinsert pair of the same existing tuple, the
// case that distinguishes a net-effect fold from naive per-op replay.
func GenSetOps(rels map[string]*relation.Relation, n int, domain int64, seed int64) []SetOp {
	rng := rand.New(rand.NewSource(seed))
	var names []string
	for name := range rels {
		names = append(names, name)
	}
	// Map iteration order is random; sort for determinism in seed.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var ops []SetOp
	for len(ops) < n {
		name := names[rng.Intn(len(names))]
		r := rels[name]
		switch {
		case len(ops)%5 == 4 && r.Len() > 0:
			// Delete-then-reinsert of one existing tuple.
			row := append([]relation.Value(nil), r.Row(rng.Intn(r.Len()))...)
			ops = append(ops,
				SetOp{Rel: name, Insert: false, Row: row},
				SetOp{Rel: name, Insert: true, Row: row})
		case rng.Intn(2) == 0 && r.Len() > 0:
			row := append([]relation.Value(nil), r.Row(rng.Intn(r.Len()))...)
			ops = append(ops, SetOp{Rel: name, Insert: false, Row: row})
		default:
			row := make([]relation.Value, r.Arity())
			for j := range row {
				row[j] = relation.Value(rng.Int63n(domain))
			}
			ops = append(ops, SetOp{Rel: name, Insert: true, Row: row})
		}
	}
	return ops[:n]
}
