package query

import (
	"fmt"
	"strings"
	"testing"
)

// Error-path tests pinning the exact message for every class of
// malformed input the frontend rejects. These strings are API: the
// service returns them to clients, so changing one is a visible
// behavior change and must be deliberate.

func testCatalog() *Catalog {
	c := NewCatalog()
	c.Add("R", 2)
	c.Add("S", 2)
	c.Add("T", 2)
	c.Add("E", 2)
	c.Add("V", 1)
	c.Add("O", 3)
	return c
}

func TestParseErrorMessages(t *testing.T) {
	for _, tc := range []struct {
		name, src, want string
	}{
		{"empty", "", "query: 1:1: empty program: expected at least one rule"},
		{"comment only", "% nothing", "query: 1:1: empty program: expected at least one rule"},
		{"missing implies", "q(x) R(x)", `query: 1:6: expected ':-', got "R"`},
		{"half implies", "q(x) : R(x)", "query: 1:6: expected ':-', got ':'"},
		{"constant in body", "q(x) :- R(x, 7)", "query: 1:14: constants are not supported: terms must be variables"},
		{"constant in head", "q(3) :- R(x, y)", "query: 1:3: constants are not supported: terms must be variables"},
		{"agg in body", "q(x) :- R(x, sum(y))", "query: 1:17: aggregation is only allowed in the rule head"},
		{"unclosed atom", "q(x) :- R(x", "query: 1:12: expected ')', got end of input"},
		{"empty atom", "q(x) :- R()", `query: 1:11: expected identifier, got ')'`},
		{"missing separator", "q(x) :- R(x) S(x)", `query: 1:14: expected ',' or '.' after atom, got "S"`},
		{"bad character", "q(x) :- R(x) & S(x)", `query: 1:14: unexpected character "&"`},
		{"headless", ":- R(x)", "query: 1:1: expected identifier, got ':-'"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q): expected error", tc.src)
			}
			if err.Error() != tc.want {
				t.Fatalf("Parse(%q):\n got %q\nwant %q", tc.src, err.Error(), tc.want)
			}
		})
	}
}

func TestCompileErrorMessages(t *testing.T) {
	for _, tc := range []struct {
		name, src, want string
	}{
		{
			"unknown relation",
			"q(x, y) :- R(x, y), Missing(y)",
			`query: 1:21: unknown relation "Missing"`,
		},
		{
			"arity mismatch",
			"q(x, y, z) :- R(x, y, z)",
			"query: 1:15: relation R has arity 2, atom R uses 3 variables",
		},
		{
			"unsafe head variable",
			"q(x, y, w) :- R(x, y)",
			`query: 1:9: unsafe head variable "w": not bound in the rule body`,
		},
		{
			"unsafe aggregated variable",
			"q(x, sum(w)) :- R(x, y)",
			`query: 1:6: unsafe aggregated variable "w": not bound in the rule body`,
		},
		{
			"repeated variable in atom",
			"q(x) :- R(x, x)",
			`query: 1:14: atom R repeats variable "x"`,
		},
		{
			"head repeats variable",
			"q(x, x) :- R(x, y)",
			`query: 1:6: head repeats variable "x"`,
		},
		{
			"projection without aggregation",
			"q(x) :- R(x, y)",
			`query: 1:1: head omits body variable "y": every body variable must appear in the head (projection is only available through aggregation)`,
		},
		{
			"aggregation not last",
			"q(sum(y), x) :- R(x, y)",
			"query: 1:11: the aggregation must be the last head term",
		},
		{
			"aggregation not last three terms",
			"q(x, sum(y), z) :- R(x, y), S(y, z)",
			"query: 1:14: the aggregation must be the last head term",
		},
		{
			"two aggregations",
			"q(x, sum(y), min(y)) :- R(x, y)",
			"query: 1:14: at most one aggregation per head",
		},
		{
			"aggregation without group-by",
			"q(sum(y)) :- R(x, y)",
			"query: 1:1: aggregation needs at least one plain group-by variable in the head",
		},
		{
			"head collides with catalog",
			"R(x, y) :- S(x, y)",
			`query: 1:1: head predicate "R" is also a catalog relation`,
		},
		{
			"self-recursive without base",
			"tc(x, z) :- tc(x, y), E(y, z)",
			`query: 1:13: rule references its own head "tc" but the program has no base rule`,
		},
		{
			"union of rules",
			"q(x, y) :- R(x, y).\nq(x, y) :- S(x, y).",
			"query: 2:1: multiple rules form a union, which is not supported without recursion",
		},
		{
			"two head predicates",
			"q(x, y) :- R(x, y).\nr(x, y) :- S(x, y).",
			`query: 2:1: all rules must define one predicate: got "q" and "r"`,
		},
		{
			"nonlinear recursion",
			"tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), tc(y, z).",
			"query: 1:1: unsupported recursive program: only linear transitive closure tc(x,z) :- tc(x,y), E(y,z) and reachability reach(y) :- reach(x), E(x,y) compile to fixpoints",
		},
		{
			"aggregation in recursive rules",
			"tc(x, y) :- E(x, y).\ntc(x, sum(z)) :- tc(x, y), E(y, z).",
			"query: 2:7: aggregation is not supported in recursive rules",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.src, err)
			}
			_, err = Compile(prog, testCatalog())
			if err == nil {
				t.Fatalf("Compile(%q): expected error", tc.src)
			}
			if err.Error() != tc.want {
				t.Fatalf("Compile(%q):\n got %q\nwant %q", tc.src, err.Error(), tc.want)
			}
		})
	}
}

func TestCompileLimits(t *testing.T) {
	// 17 atoms exceed maxAtoms.
	body := ""
	for i := 0; i < 17; i++ {
		if i > 0 {
			body += ", "
		}
		body += "V(x)"
	}
	prog := mustParse(t, "q(x) :- "+body)
	if _, err := Compile(prog, testCatalog()); err == nil || !strings.Contains(err.Error(), "too many atoms (limit 16)") {
		t.Fatalf("atoms limit: %v", err)
	}
	// 21 distinct variables (7 ternary atoms) exceed maxVars without
	// tripping the atom limit first.
	var headVars, atoms []string
	for i := 0; i < 7; i++ {
		vs := []string{fmt.Sprintf("x%d", 3*i), fmt.Sprintf("x%d", 3*i+1), fmt.Sprintf("x%d", 3*i+2)}
		headVars = append(headVars, vs...)
		atoms = append(atoms, "O("+strings.Join(vs, ", ")+")")
	}
	prog = mustParse(t, "q("+strings.Join(headVars, ", ")+") :- "+strings.Join(atoms, ", "))
	if _, err := Compile(prog, testCatalog()); err == nil || !strings.Contains(err.Error(), "too many variables (limit 20)") {
		t.Fatalf("vars limit: %v", err)
	}
}
