package query

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpcquery/internal/core"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/plan"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/workload"
)

// Differential wall between the Datalog frontend and the handwritten
// query constructors: for every canonical shape, parsing the Datalog
// form must yield the same hypergraph, the same chosen plan, byte-equal
// EXPLAIN output (pinned as golden files under testdata/), and
// bit-identical executed results with the same metered (L, r, C).

var update = flag.Bool("update", false, "rewrite golden EXPLAIN files under testdata/")

type diffCase struct {
	name string
	src  string
	want hypergraph.Query
	agg  *core.AggregateSpec
}

func diffCases() []diffCase {
	return []diffCase{
		{
			name: "triangle",
			src:  "triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).",
			want: hypergraph.Triangle(),
		},
		{
			name: "path4",
			src:  "path4(A0, A1, A2, A3, A4) :- R1(A0, A1), R2(A1, A2), R3(A2, A3), R4(A3, A4).",
			want: hypergraph.Path(4),
		},
		{
			name: "star3",
			src:  "star3(A0, A1, A2, A3) :- R1(A0, A1), R2(A0, A2), R3(A0, A3).",
			want: hypergraph.Star(3),
		},
		{
			name: "groupby",
			src:  "join2(x, sum(z)) :- R(x, y), S(y, z).",
			want: hypergraph.TwoWayJoin(),
			agg: &core.AggregateSpec{
				GroupBy: []string{"x"},
				Fn:      relation.Sum,
				AggVar:  "z",
				OutAttr: "sum_z",
			},
		},
	}
}

func catalogFor(q hypergraph.Query) *Catalog {
	cat := NewCatalog()
	for _, a := range q.Atoms {
		cat.Add(a.Name, len(a.Vars))
	}
	return cat
}

// diffInputs generates the same uniform instance mpcrun would: one
// relation per atom, seeded per atom index, so both sides of every
// comparison see identical bytes.
func diffInputs(q hypergraph.Query, n int, seed int64) map[string]*relation.Relation {
	rels := map[string]*relation.Relation{}
	dom := n / 2
	for i, a := range q.Atoms {
		rels[a.Name] = workload.Uniform(a.Name, append([]string{}, a.Vars...), n, dom, seed+int64(i))
	}
	return rels
}

func sameRelation(t *testing.T, label string, want, got *relation.Relation) {
	t.Helper()
	if !reflect.DeepEqual(want.Attrs(), got.Attrs()) {
		t.Fatalf("%s: attrs %v vs %v", label, want.Attrs(), got.Attrs())
	}
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d rows vs %d", label, want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if !reflect.DeepEqual(want.Row(i), got.Row(i)) {
			t.Fatalf("%s: row %d: %v vs %v", label, i, want.Row(i), got.Row(i))
		}
	}
}

func TestFrontendDifferential(t *testing.T) {
	const (
		p    = 8
		n    = 200
		seed = int64(1)
	)
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := mustCompile(t, tc.src, catalogFor(tc.want))
			if !reflect.DeepEqual(c.Query, tc.want) {
				t.Fatalf("compiled query:\n got %v\nwant %v", c.Query, tc.want)
			}
			if !reflect.DeepEqual(c.Aggregate, tc.agg) {
				t.Fatalf("aggregate spec:\n got %+v\nwant %+v", c.Aggregate, tc.agg)
			}

			rels := diffInputs(tc.want, n, seed)
			opts := plan.Options{Aggregate: tc.agg}
			plParsed, err := plan.For(c.Query, rels, p, opts)
			if err != nil {
				t.Fatalf("plan parsed: %v", err)
			}
			plHand, err := plan.For(tc.want, rels, p, opts)
			if err != nil {
				t.Fatalf("plan handwritten: %v", err)
			}
			if plParsed.Best().Alg != plHand.Best().Alg {
				t.Fatalf("chosen plan: %s vs %s", plParsed.Best().Alg, plHand.Best().Alg)
			}
			explain := plParsed.Explain()
			if handExplain := plHand.Explain(); explain != handExplain {
				t.Fatalf("EXPLAIN diverges:\nparsed:\n%s\nhandwritten:\n%s", explain, handExplain)
			}
			checkGolden(t, tc.name, explain)

			// Execution: same engine parameters must give bit-identical
			// output relations and identical metered cost.
			res, err := c.Run(core.NewEngine(p, seed), rels, core.AlgAuto)
			if err != nil {
				t.Fatalf("run parsed: %v", err)
			}
			req := core.Request{Query: tc.want, Relations: rels, Algorithm: core.AlgAuto}
			var handExec *core.Execution
			if tc.agg != nil {
				handExec, err = core.NewEngine(p, seed).ExecuteAggregate(req, *tc.agg)
			} else {
				handExec, err = core.NewEngine(p, seed).Execute(req)
			}
			if err != nil {
				t.Fatalf("run handwritten: %v", err)
			}
			if res.Algorithm != handExec.Algorithm {
				t.Fatalf("algorithm %s vs %s", res.Algorithm, handExec.Algorithm)
			}
			if res.Rounds != handExec.Rounds || res.MaxLoad != handExec.MaxLoad || res.TotalComm != handExec.TotalComm {
				t.Fatalf("cost (L=%d r=%d C=%d) vs (L=%d r=%d C=%d)",
					res.MaxLoad, res.Rounds, res.TotalComm,
					handExec.MaxLoad, handExec.Rounds, handExec.TotalComm)
			}
			// A plain join head in body order is the identity projection, so
			// the outputs must match byte for byte; the aggregate head is
			// group-by columns plus the aggregate, which is exactly the
			// ExecuteAggregate schema.
			sameRelation(t, "output", handExec.Output, res.Output)
		})
	}
}

// TestFrontendFragmentsIdentical runs the triangle on two raw clusters —
// one with the parsed query, one with the handwritten constructor — and
// asserts every server holds bit-identical fragments, the strongest
// equality the testkit offers.
func TestFrontendFragmentsIdentical(t *testing.T) {
	const (
		p    = 4
		n    = 120
		seed = int64(7)
	)
	want := hypergraph.Triangle()
	c := mustCompile(t, "triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).", catalogFor(want))
	rels := diffInputs(want, n, seed)

	handCluster := mpc.NewCluster(p, seed)
	if _, err := hypercube.Run(handCluster, want, rels, "out", uint64(seed), hypercube.LocalGeneric); err != nil {
		t.Fatalf("handwritten run: %v", err)
	}
	parsedCluster := mpc.NewCluster(p, seed)
	if _, err := hypercube.Run(parsedCluster, c.Query, rels, "out", uint64(seed), hypercube.LocalGeneric); err != nil {
		t.Fatalf("parsed run: %v", err)
	}
	testkit.AssertSameFragments(t, handCluster, parsedCluster)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".explain")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != got {
		t.Fatalf("EXPLAIN differs from golden %s (re-run with -update if intended):\n got:\n%s\nwant:\n%s", path, got, want)
	}
}
