package query

import (
	"reflect"
	"testing"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

func mustCompile(t *testing.T, src string, cat *Catalog) *Compiled {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	c, err := Compile(prog, cat)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c
}

func TestCompileJoin(t *testing.T) {
	c := mustCompile(t, "triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).", testCatalog())
	if c.Kind != KindJoin {
		t.Fatalf("kind %v", c.Kind)
	}
	if !reflect.DeepEqual(c.Query, hypergraph.Triangle()) {
		t.Fatalf("compiled query %v differs from handwritten %v", c.Query, hypergraph.Triangle())
	}
	if !reflect.DeepEqual(c.Head, []string{"x", "y", "z"}) {
		t.Fatalf("head %v", c.Head)
	}
	if c.RelFor["R"] != "R" || c.RelFor["T"] != "T" {
		t.Fatalf("relFor %v", c.RelFor)
	}
}

// The head may permute the body's first-occurrence variable order; the
// compiled hypergraph is unchanged and only the output projection
// differs.
func TestCompileHeadPermutation(t *testing.T) {
	c := mustCompile(t, "q(z, x, y) :- R(x, y), S(y, z).", testCatalog())
	want := hypergraph.NewQuery("q",
		hypergraph.Atom{Name: "R", Vars: []string{"x", "y"}},
		hypergraph.Atom{Name: "S", Vars: []string{"y", "z"}},
	)
	if !reflect.DeepEqual(c.Query, want) {
		t.Fatalf("query %v", c.Query)
	}
	if !reflect.DeepEqual(c.Head, []string{"z", "x", "y"}) {
		t.Fatalf("head %v", c.Head)
	}
}

// Self-joins alias later occurrences so hypergraph atom names stay
// unique, with RelFor mapping every alias back to the one relation.
func TestCompileSelfJoinAliases(t *testing.T) {
	c := mustCompile(t, "q(x, y, z) :- E(x, y), E(y, z).", testCatalog())
	if got := c.Query.Atoms[1].Name; got != "E#2" {
		t.Fatalf("alias %q", got)
	}
	if c.RelFor["E"] != "E" || c.RelFor["E#2"] != "E" {
		t.Fatalf("relFor %v", c.RelFor)
	}
	// And the aliased query executes: a 2-hop path count.
	e := relation.FromRows("E", []string{"a", "b"}, [][]relation.Value{{1, 2}, {2, 3}, {3, 4}})
	res, err := c.Run(core.NewEngine(4, 1), map[string]*relation.Relation{"E": e}, core.AlgAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Len() != 2 {
		t.Fatalf("%d rows, want 2 two-hop paths", res.Output.Len())
	}
}

func TestCompileAggregate(t *testing.T) {
	c := mustCompile(t, "spend(cust, month, sum(price)) :- O(cust, month, price).", testCatalog())
	if c.Kind != KindAggregate {
		t.Fatalf("kind %v", c.Kind)
	}
	want := &core.AggregateSpec{
		GroupBy: []string{"cust", "month"},
		Fn:      relation.Sum,
		AggVar:  "price",
		OutAttr: "sum_price",
	}
	if !reflect.DeepEqual(c.Aggregate, want) {
		t.Fatalf("spec %+v", c.Aggregate)
	}
	if !reflect.DeepEqual(c.Head, []string{"cust", "month", "sum_price"}) {
		t.Fatalf("head %v", c.Head)
	}
}

func TestCompileTransitiveClosure(t *testing.T) {
	for _, src := range []string{
		// Left-linear, body order as written.
		"tc(x, y) :- E(x, y).\ntc(x, z) :- tc(x, y), E(y, z).",
		// Right-linear.
		"tc(x, y) :- E(x, y).\ntc(x, z) :- E(x, y), tc(y, z).",
		// Rules in the other order, fresh variable names.
		"path(a, c) :- path(a, b), E(b, c).\npath(u, v) :- E(u, v).",
	} {
		c := mustCompile(t, src, testCatalog())
		if c.Kind != KindRecursive || c.Recursive.Kind != core.RecTransitiveClosure || c.Recursive.EdgeRel != "E" {
			t.Fatalf("%q: %+v", src, c.Recursive)
		}
	}
}

func TestCompileReachability(t *testing.T) {
	c := mustCompile(t, "reach(x) :- V(x).\nreach(y) :- reach(x), E(x, y).", testCatalog())
	if c.Kind != KindRecursive || c.Recursive.Kind != core.RecReachable {
		t.Fatalf("%+v", c.Recursive)
	}
	if c.Recursive.EdgeRel != "E" || c.Recursive.SourceRel != "V" {
		t.Fatalf("%+v", c.Recursive)
	}
}

// ShapeKey canonicalizes variable and head-predicate names, so
// alpha-equivalent queries share a plan-cache key while structurally
// different ones do not.
func TestShapeKey(t *testing.T) {
	cat := testCatalog()
	a := mustCompile(t, "q(x, y, z) :- R(x, y), S(y, z).", cat)
	b := mustCompile(t, "other(u, v, w) :- R(u, v), S(v, w).", cat)
	if a.ShapeKey() != b.ShapeKey() {
		t.Fatalf("alpha-equivalent queries got different keys:\n%q\n%q", a.ShapeKey(), b.ShapeKey())
	}
	c := mustCompile(t, "q(x, y, z) :- R(x, y), T(y, z).", cat)
	if a.ShapeKey() == c.ShapeKey() {
		t.Fatalf("different relations share key %q", a.ShapeKey())
	}
	d := mustCompile(t, "q(z, y, x) :- R(x, y), S(y, z).", cat)
	if a.ShapeKey() == d.ShapeKey() {
		t.Fatalf("different head order shares key %q", a.ShapeKey())
	}
	agg1 := mustCompile(t, "q(x, sum(y)) :- R(x, y).", cat)
	agg2 := mustCompile(t, "r(a, sum(b)) :- R(a, b).", cat)
	if agg1.ShapeKey() != agg2.ShapeKey() {
		t.Fatalf("alpha-equivalent aggregates differ:\n%q\n%q", agg1.ShapeKey(), agg2.ShapeKey())
	}
	agg3 := mustCompile(t, "q(x, min(y)) :- R(x, y).", cat)
	if agg1.ShapeKey() == agg3.ShapeKey() {
		t.Fatalf("sum and min share key %q", agg1.ShapeKey())
	}
}

func TestRunRecursiveRenamesHead(t *testing.T) {
	e := relation.FromRows("E", []string{"src", "dst"}, [][]relation.Value{{1, 2}, {2, 3}})
	c := mustCompile(t, "tc(a, b) :- E(a, b).\ntc(a, c) :- tc(a, b), E(b, c).", testCatalog())
	res, err := c.Run(core.NewEngine(4, 1), map[string]*relation.Relation{"E": e}, core.AlgAuto)
	if err != nil {
		t.Fatal(err)
	}
	// Output columns take the recursive rule's head variable names.
	if !reflect.DeepEqual(res.Output.Attrs(), []string{"a", "c"}) {
		t.Fatalf("attrs %v", res.Output.Attrs())
	}
	if res.Output.Len() != 3 || res.Iterations < 1 {
		t.Fatalf("len %d iters %d", res.Output.Len(), res.Iterations)
	}
}
