package query

import "strings"

// Agg identifies an aggregation function in a rule head.
type Agg int

// Head aggregations. AggNone marks a plain variable term.
const (
	AggNone Agg = iota
	AggSum
	AggCount
	AggMin
	AggMax
)

func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return ""
}

// aggByName maps the head keywords the parser recognizes. Aggregation
// names are only keywords directly before '(' in a head term; anywhere
// else they are ordinary identifiers.
var aggByName = map[string]Agg{
	"sum":   AggSum,
	"count": AggCount,
	"min":   AggMin,
	"max":   AggMax,
}

// Var is one variable occurrence with its source position.
type Var struct {
	Name string
	Pos  Pos
}

// HeadTerm is one term of a rule head: a plain variable (Agg ==
// AggNone) or an aggregation call sum(v)/count(v)/min(v)/max(v).
type HeadTerm struct {
	Var string
	Agg Agg
	Pos Pos
}

func (t HeadTerm) String() string {
	if t.Agg == AggNone {
		return t.Var
	}
	return t.Agg.String() + "(" + t.Var + ")"
}

// Head is the head atom of a rule.
type Head struct {
	Name  string
	Terms []HeadTerm
	Pos   Pos
}

func (h Head) String() string {
	parts := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		parts[i] = t.String()
	}
	return h.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Atom is one body atom R(x, y, ...). Terms are variables only; the
// language has no constants.
type Atom struct {
	Name string
	Vars []Var
	Pos  Pos
}

func (a Atom) String() string {
	parts := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		parts[i] = v.Name
	}
	return a.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Rule is one Datalog rule head :- body.
type Rule struct {
	Head Head
	Body []Atom
}

func (r *Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a parsed rule set: one rule for a plain or aggregating
// conjunctive query, several for a recursive fixpoint.
type Program struct {
	Rules []*Rule
}

// String renders the canonical source form: one rule per line, single
// spaces, every rule '.'-terminated. Parsing the rendering yields a
// program that renders identically (the round-trip property the fuzzer
// pins).
func (p *Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// EDB returns the extensional predicates of the program — every body
// predicate that is not the head of any rule — with the arity of its
// first occurrence. Callers generating synthetic inputs (mpcrun) use
// this to know which relations a program needs; arity conflicts
// surface later in Compile against the real catalog.
func (p *Program) EDB() map[string]int {
	heads := map[string]bool{}
	for _, r := range p.Rules {
		heads[r.Head.Name] = true
	}
	out := map[string]int{}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !heads[a.Name] {
				if _, ok := out[a.Name]; !ok {
					out[a.Name] = len(a.Vars)
				}
			}
		}
	}
	return out
}
