package query

import "fmt"

// Pos is a 1-based line:column source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned frontend error. Every parse, analysis, and
// compilation failure is one of these, so callers (and the error-path
// tests pinning exact messages) get a stable "query: line:col: msg"
// rendering.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("query: %s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokImplies // ":-"
	tokDot
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokImplies:
		return "':-'"
	case tokDot:
		return "'.'"
	}
	return "unknown token"
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer is a hand-written scanner over the rule source. It recognizes
// identifiers, integer literals (lexed so the parser can reject them
// with a precise message — the variable-only language has no
// constants), punctuation, the ':-' implication, and '%' line comments.
type lexer struct {
	src       string
	off       int
	line, col int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		switch c := l.src[l.off]; {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token. Unexpected bytes produce a positioned error.
func (l *lexer) next() (token, *Error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.src[l.off]
	switch {
	case c == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", pos: pos}, nil
	case c == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", pos: pos}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, text: ",", pos: pos}, nil
	case c == '.':
		l.advance()
		return token{kind: tokDot, text: ".", pos: pos}, nil
	case c == ':':
		l.advance()
		if l.off < len(l.src) && l.src[l.off] == '-' {
			l.advance()
			return token{kind: tokImplies, text: ":-", pos: pos}, nil
		}
		return token{}, errAt(pos, "expected ':-', got ':'")
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case isDigit(c) || c == '-' && l.off+1 < len(l.src) && isDigit(l.src[l.off+1]):
		start := l.off
		l.advance()
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.off], pos: pos}, nil
	}
	return token{}, errAt(pos, "unexpected character %q", string(rune(c)))
}
