package query

import (
	"fmt"

	"mpcquery/internal/core"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// RunResult is the unified outcome of executing a compiled query of
// any kind: the output relation (columns in head order), the strategy
// used, and the metered MPC cost.
type RunResult struct {
	Output *relation.Relation
	// Algorithm is the strategy core chose or was forced to use; for
	// recursive queries it is the fixpoint workload name.
	Algorithm core.Algorithm
	// Reason explains the planner's choice (empty for recursion).
	Reason string
	// Iterations is the semi-naive iteration count (recursive only).
	Iterations int
	Rounds     int
	MaxLoad    int64
	TotalComm  int64
	Metrics    *mpc.Metrics
}

// BindRelations resolves each query atom to its backing relation from
// rels (keyed by catalog name), validating existence and arity — the
// execution-time counterpart of the compile-time catalog checks, since
// a service's data set can change between compile and run.
func (c *Compiled) BindRelations(rels map[string]*relation.Relation) (map[string]*relation.Relation, error) {
	bound := map[string]*relation.Relation{}
	for _, a := range c.Query.Atoms {
		src := c.RelFor[a.Name]
		r := rels[src]
		if r == nil {
			return nil, fmt.Errorf("query: relation %q is no longer registered", src)
		}
		if r.Arity() != len(a.Vars) {
			return nil, fmt.Errorf("query: relation %q now has arity %d, atom %s uses %d variables", src, r.Arity(), a.Name, len(a.Vars))
		}
		bound[a.Name] = r
	}
	return bound, nil
}

// Run executes the compiled query on the engine against rels (keyed by
// catalog relation name). alg forces a strategy for join/aggregate
// queries; core.AlgAuto (or empty) lets the planner decide. The output
// columns follow the rule head: for joins a projection to head order,
// for aggregation the group-by columns plus the aggregate, for
// recursion the fixpoint output renamed to the head variables.
func (c *Compiled) Run(e *core.Engine, rels map[string]*relation.Relation, alg core.Algorithm) (*RunResult, error) {
	switch c.Kind {
	case KindJoin, KindAggregate:
		bound, err := c.BindRelations(rels)
		if err != nil {
			return nil, err
		}
		req := core.Request{Query: c.Query, Relations: bound, Algorithm: alg}
		var exec *core.Execution
		if c.Kind == KindAggregate {
			exec, err = e.ExecuteAggregate(req, *c.Aggregate)
		} else {
			exec, err = e.Execute(req)
		}
		if err != nil {
			return nil, err
		}
		out := exec.Output
		if c.Kind == KindJoin {
			out = out.Project(c.Query.Name, c.Head...)
		}
		return &RunResult{
			Output:    out,
			Algorithm: exec.Algorithm,
			Reason:    exec.Reason,
			Rounds:    exec.Rounds,
			MaxLoad:   exec.MaxLoad,
			TotalComm: exec.TotalComm,
			Metrics:   exec.Metrics,
		}, nil
	case KindRecursive:
		return c.runRecursive(e, rels)
	}
	return nil, fmt.Errorf("query: cannot run compiled kind %v", c.Kind)
}

func (c *Compiled) runRecursive(e *core.Engine, rels map[string]*relation.Relation) (*RunResult, error) {
	edges := rels[c.Recursive.EdgeRel]
	if edges == nil {
		return nil, fmt.Errorf("query: relation %q is no longer registered", c.Recursive.EdgeRel)
	}
	if edges.Arity() != 2 {
		return nil, fmt.Errorf("query: edge relation %q must be binary, has arity %d", c.Recursive.EdgeRel, edges.Arity())
	}
	req := core.RecursiveRequest{Kind: c.Recursive.Kind, Edges: edges}
	if c.Recursive.Kind == core.RecReachable {
		src := rels[c.Recursive.SourceRel]
		if src == nil {
			return nil, fmt.Errorf("query: relation %q is no longer registered", c.Recursive.SourceRel)
		}
		if src.Arity() != 1 {
			return nil, fmt.Errorf("query: source relation %q must be unary, has arity %d", c.Recursive.SourceRel, src.Arity())
		}
		if src.Len() == 0 {
			return nil, fmt.Errorf("query: source relation %q is empty: reachability needs at least one source vertex", c.Recursive.SourceRel)
		}
		for i := 0; i < src.Len(); i++ {
			req.Sources = append(req.Sources, src.Row(i)[0])
		}
	}
	exec, err := e.ExecuteRecursive(req)
	if err != nil {
		return nil, err
	}
	// Rename the fixpoint output columns to the rule's head variables.
	name := c.Program.Rules[0].Head.Name
	out := relation.New(name, c.Head...)
	out.Grow(exec.Output.Len() * len(c.Head))
	for i := 0; i < exec.Output.Len(); i++ {
		out.AppendRow(exec.Output.Row(i))
	}
	return &RunResult{
		Output:     out,
		Algorithm:  core.Algorithm("fixpoint-" + string(c.Recursive.Kind)),
		Iterations: exec.Iterations,
		Rounds:     exec.Rounds,
		MaxLoad:    exec.MaxLoad,
		TotalComm:  exec.TotalComm,
		Metrics:    exec.Metrics,
	}, nil
}
