package query

import (
	"fmt"
	"strings"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// Structural limits on compiled queries. maxVars matches the
// hypergraph package's VarSubsets bound, so no query admitted here can
// reach its too-many-variables panic through SkewHC; maxAtoms bounds
// planner and LP work on untrusted input.
const (
	maxAtoms = 16
	maxVars  = 20
)

// Kind classifies a compiled query.
type Kind int

// Compiled query kinds.
const (
	// KindJoin is a full conjunctive query: the head lists every body
	// variable (in any order).
	KindJoin Kind = iota
	// KindAggregate is a conjunctive query with an aggregation head:
	// group-by variables followed by one sum/count/min/max call.
	KindAggregate
	// KindRecursive is a recursive rule set compiled onto an
	// internal/recursive fixpoint workload.
	KindRecursive
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindAggregate:
		return "aggregate"
	case KindRecursive:
		return "recursive"
	}
	return "unknown"
}

// Recursive describes a rule set matched onto a fixpoint workload.
type Recursive struct {
	// Kind is the internal/recursive workload (transitive closure or
	// reachability).
	Kind core.RecursiveKind
	// EdgeRel is the catalog relation supplying the binary edges.
	EdgeRel string
	// SourceRel is the unary catalog relation whose values seed
	// reachability; empty for transitive closure.
	SourceRel string
}

// Compiled is a fully analyzed, executable query. For KindJoin and
// KindAggregate the Query field is the body's hypergraph — exactly
// what a handwritten hypergraph.Query construction would produce — so
// the compiled form flows unchanged through internal/plan, both
// transports, chaos recovery, and tracing.
type Compiled struct {
	// Program is the parsed source.
	Program *Program
	Kind    Kind
	// Query is the body conjunctive query (KindJoin, KindAggregate).
	Query hypergraph.Query
	// Head is the output column order: for KindJoin a permutation of
	// Query.Vars(); for KindAggregate the group-by variables followed by
	// the aggregate output attribute; for KindRecursive the head
	// variable names.
	Head []string
	// Aggregate is the group-by spec (KindAggregate only).
	Aggregate *core.AggregateSpec
	// Recursive is the fixpoint plan (KindRecursive only).
	Recursive *Recursive
	// RelFor maps each Query atom name to the catalog relation it
	// reads. Atom names equal relation names except for self-joins,
	// where later occurrences get "#2", "#3", ... suffixes.
	RelFor map[string]string
}

// Compile analyzes the program against the catalog and builds the
// executable form: safety (range restriction), arity and existence
// checks, the repeated-variable and size limits, then construction of
// the hypergraph query, aggregation spec, or fixpoint plan. All errors
// are positioned *Error values with stable messages.
func Compile(prog *Program, cat *Catalog) (*Compiled, error) {
	if len(prog.Rules) == 0 {
		return nil, errAt(Pos{1, 1}, "empty program: expected at least one rule")
	}
	headName := prog.Rules[0].Head.Name
	recursive := false
	for _, r := range prog.Rules {
		if r.Head.Name != headName {
			return nil, errAt(r.Head.Pos, "all rules must define one predicate: got %q and %q", headName, r.Head.Name)
		}
		if _, ok := cat.Arity(headName); ok {
			return nil, errAt(r.Head.Pos, "head predicate %q is also a catalog relation", headName)
		}
		for _, a := range r.Body {
			if a.Name == headName {
				recursive = true
				continue
			}
			arity, ok := cat.Arity(a.Name)
			if !ok {
				return nil, errAt(a.Pos, "unknown relation %q", a.Name)
			}
			if arity != len(a.Vars) {
				return nil, errAt(a.Pos, "relation %s has arity %d, atom %s uses %d variables", a.Name, arity, a.Name, len(a.Vars))
			}
		}
		for _, a := range r.Body {
			seen := map[string]Pos{}
			for _, v := range a.Vars {
				if _, dup := seen[v.Name]; dup {
					return nil, errAt(v.Pos, "atom %s repeats variable %q", a.Name, v.Name)
				}
				seen[v.Name] = v.Pos
			}
		}
	}
	if len(prog.Rules) == 1 && !recursive {
		return compileSingle(prog, cat)
	}
	if len(prog.Rules) == 1 && recursive {
		for _, a := range prog.Rules[0].Body {
			if a.Name == headName {
				return nil, errAt(a.Pos, "rule references its own head %q but the program has no base rule", headName)
			}
		}
	}
	return compileRecursive(prog, cat)
}

// compileSingle handles the one-rule, non-recursive case: a plain
// conjunctive query or an aggregation over one.
func compileSingle(prog *Program, cat *Catalog) (*Compiled, error) {
	rule := prog.Rules[0]
	if len(rule.Body) > maxAtoms {
		return nil, errAt(rule.Body[maxAtoms].Pos, "too many atoms (limit %d)", maxAtoms)
	}

	// Body variables in first-occurrence order.
	var bodyVars []string
	bodySeen := map[string]bool{}
	for _, a := range rule.Body {
		for _, v := range a.Vars {
			if !bodySeen[v.Name] {
				bodySeen[v.Name] = true
				bodyVars = append(bodyVars, v.Name)
			}
		}
	}
	if len(bodyVars) > maxVars {
		return nil, errAt(rule.Head.Pos, "too many variables (limit %d)", maxVars)
	}

	// Head terms: plain group/output variables, at most one aggregation,
	// which must come last.
	var plain []string
	plainSeen := map[string]bool{}
	var agg *HeadTerm
	for _, t := range rule.Head.Terms {
		if t.Agg == AggNone {
			if agg != nil {
				return nil, errAt(t.Pos, "the aggregation must be the last head term")
			}
			if plainSeen[t.Var] {
				return nil, errAt(t.Pos, "head repeats variable %q", t.Var)
			}
			plainSeen[t.Var] = true
			if !bodySeen[t.Var] {
				return nil, errAt(t.Pos, "unsafe head variable %q: not bound in the rule body", t.Var)
			}
			plain = append(plain, t.Var)
			continue
		}
		if agg != nil {
			return nil, errAt(t.Pos, "at most one aggregation per head")
		}
		if !bodySeen[t.Var] {
			return nil, errAt(t.Pos, "unsafe aggregated variable %q: not bound in the rule body", t.Var)
		}
		tc := t
		agg = &tc
	}

	q, relFor, err := bodyQuery(rule)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Program: prog, Query: q, RelFor: relFor}

	if agg == nil {
		// Full conjunctive query: the head must mention every body
		// variable (the MPC model has no projection outside aggregation).
		for _, v := range bodyVars {
			if !plainSeen[v] {
				return nil, errAt(rule.Head.Pos, "head omits body variable %q: every body variable must appear in the head (projection is only available through aggregation)", v)
			}
		}
		c.Kind = KindJoin
		c.Head = plain
		return c, nil
	}
	if len(plain) == 0 {
		return nil, errAt(rule.Head.Pos, "aggregation needs at least one plain group-by variable in the head")
	}
	outAttr := agg.Agg.String() + "_" + agg.Var
	c.Kind = KindAggregate
	c.Head = append(append([]string{}, plain...), outAttr)
	c.Aggregate = &core.AggregateSpec{
		GroupBy: plain,
		Fn:      aggFn(agg.Agg),
		AggVar:  agg.Var,
		OutAttr: outAttr,
	}
	return c, nil
}

func aggFn(a Agg) relation.AggFunc {
	switch a {
	case AggSum:
		return relation.Sum
	case AggCount:
		return relation.Count
	case AggMin:
		return relation.Min
	case AggMax:
		return relation.Max
	}
	panic(fmt.Sprintf("query: no aggregate function for %v", int(a)))
}

// bodyQuery builds the hypergraph query for a rule body, aliasing
// repeated relation names ("R", "R#2", ...) so atom names stay unique.
func bodyQuery(rule *Rule) (hypergraph.Query, map[string]string, error) {
	relFor := map[string]string{}
	count := map[string]int{}
	atoms := make([]hypergraph.Atom, len(rule.Body))
	for i, a := range rule.Body {
		count[a.Name]++
		alias := a.Name
		if count[a.Name] > 1 {
			alias = fmt.Sprintf("%s#%d", a.Name, count[a.Name])
		}
		relFor[alias] = a.Name
		vars := make([]string, len(a.Vars))
		for j, v := range a.Vars {
			vars[j] = v.Name
		}
		atoms[i] = hypergraph.Atom{Name: alias, Vars: vars}
	}
	q, err := hypergraph.TryNewQuery(rule.Head.Name, atoms...)
	if err != nil {
		// The per-atom checks in Compile catch these first; this is the
		// safety net for any validation the hypergraph layer adds later.
		return hypergraph.Query{}, nil, errAt(rule.Head.Pos, "%s", strings.TrimPrefix(err.Error(), "hypergraph: "))
	}
	return q, relFor, nil
}

// compileRecursive matches a multi-rule program onto the fixpoint
// workloads internal/recursive evaluates: linear transitive closure
// (binary head) and reachability (unary head).
func compileRecursive(prog *Program, cat *Catalog) (*Compiled, error) {
	headName := prog.Rules[0].Head.Name
	unsupported := errAt(prog.Rules[0].Head.Pos,
		"unsupported recursive program: only linear transitive closure tc(x,z) :- tc(x,y), E(y,z) and reachability reach(y) :- reach(x), E(x,y) compile to fixpoints")
	for _, r := range prog.Rules {
		for _, t := range r.Head.Terms {
			if t.Agg != AggNone {
				return nil, errAt(t.Pos, "aggregation is not supported in recursive rules")
			}
		}
	}
	if len(prog.Rules) != 2 {
		return nil, unsupported
	}
	// Identify the base (no self-reference) and recursive rules.
	var base, rec *Rule
	for _, r := range prog.Rules {
		self := false
		for _, a := range r.Body {
			if a.Name == headName {
				self = true
			}
		}
		if self {
			if rec != nil {
				return nil, unsupported
			}
			rec = r
		} else {
			if base != nil {
				return nil, errAt(r.Head.Pos, "multiple rules form a union, which is not supported without recursion")
			}
			base = r
		}
	}
	if base == nil {
		return nil, errAt(prog.Rules[0].Head.Pos, "rule references its own head %q but the program has no base rule", headName)
	}
	if rec == nil {
		return nil, errAt(prog.Rules[1].Head.Pos, "multiple rules form a union, which is not supported without recursion")
	}

	headVars := func(r *Rule) []string {
		out := make([]string, len(r.Head.Terms))
		for i, t := range r.Head.Terms {
			out[i] = t.Var
		}
		return out
	}
	// Safety for both rules: every head variable bound in its body.
	for _, r := range []*Rule{base, rec} {
		bound := map[string]bool{}
		for _, a := range r.Body {
			for _, v := range a.Vars {
				bound[v.Name] = true
			}
		}
		for _, t := range r.Head.Terms {
			if !bound[t.Var] {
				return nil, errAt(t.Pos, "unsafe head variable %q: not bound in the rule body", t.Var)
			}
		}
	}

	arity := len(base.Head.Terms)
	if len(rec.Head.Terms) != arity {
		return nil, errAt(rec.Head.Pos, "rules for %q disagree on arity: %d vs %d", headName, arity, len(rec.Head.Terms))
	}
	switch arity {
	case 2:
		return matchTransitiveClosure(prog, headName, base, rec, headVars, unsupported)
	case 1:
		return matchReachability(prog, headName, base, rec, headVars, unsupported)
	}
	return nil, unsupported
}

// matchTransitiveClosure recognizes, modulo variable renaming and body
// atom order:
//
//	P(a, b) :- E(a, b).
//	P(x, z) :- P(x, y), E(y, z).    (or the right-linear mirror)
func matchTransitiveClosure(prog *Program, headName string, base, rec *Rule, headVars func(*Rule) []string, unsupported *Error) (*Compiled, error) {
	if len(base.Body) != 1 || len(rec.Body) != 2 {
		return nil, unsupported
	}
	edge := base.Body[0]
	if edge.Name == headName || len(edge.Vars) != 2 {
		return nil, unsupported
	}
	hv := headVars(base)
	if hv[0] != edge.Vars[0].Name || hv[1] != edge.Vars[1].Name || hv[0] == hv[1] {
		return nil, unsupported
	}
	// Recursive rule: one self atom, one edge atom over the same
	// relation as the base rule.
	var self, step *Atom
	for i := range rec.Body {
		a := &rec.Body[i]
		if a.Name == headName {
			self = a
		} else {
			step = a
		}
	}
	if self == nil || step == nil || step.Name != edge.Name || len(self.Vars) != 2 || len(step.Vars) != 2 {
		return nil, unsupported
	}
	rh := headVars(rec)
	ok := false
	// Left-linear: head (x,z), self (x,y), step (y,z).
	if rh[0] == self.Vars[0].Name && self.Vars[1].Name == step.Vars[0].Name && step.Vars[1].Name == rh[1] {
		ok = distinct(rh[0], self.Vars[1].Name, rh[1])
	}
	// Right-linear: head (x,z), step (x,y), self (y,z).
	if !ok && rh[0] == step.Vars[0].Name && step.Vars[1].Name == self.Vars[0].Name && self.Vars[1].Name == rh[1] {
		ok = distinct(rh[0], step.Vars[1].Name, rh[1])
	}
	if !ok {
		return nil, unsupported
	}
	return &Compiled{
		Program:   prog,
		Kind:      KindRecursive,
		Head:      headVars(rec),
		Recursive: &Recursive{Kind: core.RecTransitiveClosure, EdgeRel: edge.Name},
	}, nil
}

// matchReachability recognizes, modulo variable renaming and body atom
// order:
//
//	P(x) :- S(x).
//	P(y) :- P(x), E(x, y).
func matchReachability(prog *Program, headName string, base, rec *Rule, headVars func(*Rule) []string, unsupported *Error) (*Compiled, error) {
	if len(base.Body) != 1 || len(rec.Body) != 2 {
		return nil, unsupported
	}
	src := base.Body[0]
	if src.Name == headName || len(src.Vars) != 1 || headVars(base)[0] != src.Vars[0].Name {
		return nil, unsupported
	}
	var self, step *Atom
	for i := range rec.Body {
		a := &rec.Body[i]
		if a.Name == headName {
			self = a
		} else {
			step = a
		}
	}
	if self == nil || step == nil || len(self.Vars) != 1 || len(step.Vars) != 2 {
		return nil, unsupported
	}
	rh := headVars(rec)
	if self.Vars[0].Name != step.Vars[0].Name || step.Vars[1].Name != rh[0] || !distinct(self.Vars[0].Name, rh[0]) {
		return nil, unsupported
	}
	return &Compiled{
		Program:   prog,
		Kind:      KindRecursive,
		Head:      rh,
		Recursive: &Recursive{Kind: core.RecReachable, EdgeRel: step.Name, SourceRel: src.Name},
	}, nil
}

func distinct(vs ...string) bool {
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ShapeKey returns the canonical shape of the compiled query: catalog
// relation names with variables renamed in first-occurrence order, the
// head and aggregation shape, but no variable or head-predicate names.
// Two queries share a key exactly when the planner would treat them
// identically, which is what the service's plan cache keys on
// (together with the stats fingerprint and p).
func (c *Compiled) ShapeKey() string {
	var b strings.Builder
	b.WriteString(c.Kind.String())
	switch c.Kind {
	case KindRecursive:
		b.WriteByte(' ')
		b.WriteString(string(c.Recursive.Kind))
		b.WriteByte(' ')
		b.WriteString(c.Recursive.EdgeRel)
		if c.Recursive.SourceRel != "" {
			b.WriteByte(' ')
			b.WriteString(c.Recursive.SourceRel)
		}
	default:
		canon := map[string]string{}
		name := func(v string) string {
			if n, ok := canon[v]; ok {
				return n
			}
			n := fmt.Sprintf("v%d", len(canon))
			canon[v] = n
			return n
		}
		b.WriteByte(' ')
		for i, a := range c.Query.Atoms {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.RelFor[a.Name])
			b.WriteByte('(')
			for j, v := range a.Vars {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(name(v))
			}
			b.WriteByte(')')
		}
		b.WriteString("->")
		if c.Kind == KindAggregate {
			for i, g := range c.Aggregate.GroupBy {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(name(g))
			}
			fmt.Fprintf(&b, "|%s(%s)", c.Program.Rules[0].Head.Terms[len(c.Program.Rules[0].Head.Terms)-1].Agg, name(c.Aggregate.AggVar))
		} else {
			for i, h := range c.Head {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(name(h))
			}
		}
	}
	return b.String()
}
