package query

import (
	"sort"

	"mpcquery/internal/relation"
)

// Catalog is the schema the frontend compiles against: relation name →
// arity. The compiler only needs arities; binding actual relation data
// happens at execution time (Compiled.Run), so a service can compile
// and cache plans without holding the data lock.
type Catalog struct {
	arity map[string]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{arity: map[string]int{}}
}

// Add registers (or replaces) a relation's arity.
func (c *Catalog) Add(name string, arity int) {
	c.arity[name] = arity
}

// Arity looks up a relation's arity.
func (c *Catalog) Arity(name string) (int, bool) {
	a, ok := c.arity[name]
	return a, ok
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.arity))
	for n := range c.arity {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CatalogOf builds a catalog from a set of named relations.
func CatalogOf(rels map[string]*relation.Relation) *Catalog {
	c := NewCatalog()
	for name, r := range rels {
		c.Add(name, r.Arity())
	}
	return c
}
