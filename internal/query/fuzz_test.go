package query

import (
	"strings"
	"testing"
)

// FuzzParseQuery asserts the two frontend invariants on arbitrary
// input: Parse never panics, and any accepted program's canonical
// String() form reparses to the same canonical form (round-trip
// stability — the property that makes String() usable as a cache key
// component and in error reporting).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).",
		"q(x,y) :- R(x,y)",
		"sales(c, sum(p)) :- O(c, i, p).",
		"tc(x,y) :- E(x,y).\ntc(x,z) :- tc(x,y), E(y,z).",
		"reach(x) :- V(x).\nreach(y) :- reach(x), E(x,y).",
		"q(sum, count) :- R(sum, count). % comment",
		"q(x) :- R(x,\n  1)",
		":- R(x)",
		"q(x) :- R(x) & S(x)",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			if prog != nil {
				t.Fatalf("Parse(%q) returned both a program and error %v", src, err)
			}
			return
		}
		s1 := prog.String()
		prog2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %q from %q: %v", s1, src, err)
		}
		if s2 := prog2.String(); s2 != s1 {
			t.Fatalf("round trip unstable:\n src %q\n  s1 %q\n  s2 %q", src, s1, s2)
		}
	})
}

// FuzzCompileQuery drives the whole frontend: parse, build a catalog
// from the program's own EDB (so atoms resolve and arities match where
// possible), and compile. Compile must return an error or a Compiled —
// never panic — even though the inputs reach hypergraph construction
// and the recursion pattern matcher.
func FuzzCompileQuery(f *testing.F) {
	for _, seed := range []string{
		"triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).",
		"q(x, y, z) :- E(x, y), E(y, z).",
		"tc(x,y) :- E(x,y).\ntc(x,z) :- tc(x,y), E(y,z).",
		"reach(x) :- V(x).\nreach(y) :- reach(x), E(x,y).",
		"spend(c, sum(p)) :- O(c, i, p).",
		"q(x, x) :- R(x, x)",
		"q(x) :- q(x)",
		"a(x) :- b(x).\nb(x) :- a(x).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		cat := NewCatalog()
		for name, arity := range prog.EDB() {
			cat.Add(name, arity)
		}
		c, err := Compile(prog, cat)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "query: ") {
				t.Fatalf("compile error missing position prefix: %q", err)
			}
			return
		}
		// Whatever compiled must have a coherent shape key and a head.
		if c.ShapeKey() == "" || len(c.Head) == 0 {
			t.Fatalf("compiled %q has empty shape key or head", src)
		}
	})
}
