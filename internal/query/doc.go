// Package query is the parsed frontend of the engine: a Datalog-style
// conjunctive-query language with a hand-written lexer and parser,
// semantic analysis (safety/range restriction, arity checks against a
// catalog, structural limits for untrusted input), and compilation
// onto the existing execution stack.
//
//	triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).
//	sales(cust, sum(price)) :- O(cust, item, price).
//	tc(x, y) :- E(x, y).
//	tc(x, z) :- tc(x, y), E(y, z).
//
// A single rule compiles to exactly the hypergraph.Query a handwritten
// construction would produce — bit-identical plans, EXPLAIN output,
// and results, pinned by the frontend differential suite — so parsed
// queries flow unchanged through internal/plan, both transports, chaos
// recovery, and tracing. Aggregation heads compile to
// core.AggregateSpec; recursive rule sets pattern-match onto the
// internal/recursive fixpoint workloads (linear transitive closure and
// reachability). Both cmd/mpcrun and the mpcserve service share this
// one frontend.
package query
