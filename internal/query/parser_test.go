package query

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseSingleRule(t *testing.T) {
	p := mustParse(t, "triangle(x,y,z) :- R(x,y), S(y,z), T(z,x).")
	if len(p.Rules) != 1 {
		t.Fatalf("%d rules", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Head.Name != "triangle" || len(r.Head.Terms) != 3 {
		t.Fatalf("head %v", r.Head)
	}
	if len(r.Body) != 3 || r.Body[2].Name != "T" || r.Body[2].Vars[0].Name != "z" {
		t.Fatalf("body %v", r.Body)
	}
}

func TestParseTrailingDotOptional(t *testing.T) {
	a := mustParse(t, "q(x,y) :- R(x,y).")
	b := mustParse(t, "q(x,y) :- R(x,y)")
	if a.String() != b.String() {
		t.Fatalf("%q vs %q", a.String(), b.String())
	}
}

func TestParseAggregationHead(t *testing.T) {
	p := mustParse(t, "sales(cust, month, sum(price)) :- O(cust, month, price).")
	terms := p.Rules[0].Head.Terms
	if terms[0].Agg != AggNone || terms[2].Agg != AggSum || terms[2].Var != "price" {
		t.Fatalf("terms %v", terms)
	}
	for name, agg := range map[string]Agg{"sum": AggSum, "count": AggCount, "min": AggMin, "max": AggMax} {
		p := mustParse(t, "q(x, "+name+"(v)) :- R(x,v).")
		if got := p.Rules[0].Head.Terms[1].Agg; got != agg {
			t.Errorf("%s: agg %v", name, got)
		}
	}
}

// Aggregation names are keywords only in call position: a variable (or
// relation) named "sum" stays an ordinary identifier.
func TestAggNamesAreNotReserved(t *testing.T) {
	p := mustParse(t, "q(sum, x) :- R(sum, x), sum(x, sum).")
	if p.Rules[0].Head.Terms[0].Agg != AggNone {
		t.Fatal("head var 'sum' misparsed as aggregation")
	}
	if p.Rules[0].Body[1].Name != "sum" {
		t.Fatalf("body %v", p.Rules[0].Body)
	}
}

func TestParseMultiRule(t *testing.T) {
	p := mustParse(t, `
		% transitive closure
		tc(x, y) :- E(x, y).
		tc(x, z) :- tc(x, y), E(y, z).
	`)
	if len(p.Rules) != 2 {
		t.Fatalf("%d rules", len(p.Rules))
	}
	if p.Rules[1].Body[0].Name != "tc" {
		t.Fatalf("body %v", p.Rules[1].Body)
	}
}

func TestParseComments(t *testing.T) {
	p := mustParse(t, "q(x) :- R(x). % trailing comment\n% full-line comment")
	if len(p.Rules) != 1 {
		t.Fatalf("%d rules", len(p.Rules))
	}
}

// The canonical rendering reparses to itself — the property the fuzzer
// extends to arbitrary accepted inputs.
func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"triangle(x,y,z) :- R(x,y), S(y,z), T(z,x).",
		"q( x , y )   :-   R( x , y )",
		"sales(c, sum(p)) :- O(c, i, p).",
		"tc(x,y) :- E(x,y).\ntc(x,z) :- tc(x,y), E(y,z).",
		"q(count, min) :- R(count, min).",
	} {
		p1 := mustParse(t, src)
		s1 := p1.String()
		p2 := mustParse(t, s1)
		if s2 := p2.String(); s2 != s1 {
			t.Errorf("round trip: %q → %q", s1, s2)
		}
	}
}

func TestParseErrorsArePositioned(t *testing.T) {
	_, err := Parse("q(x) :-\n  R(x,\n  1)")
	if err == nil {
		t.Fatal("expected error")
	}
	qe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if qe.Pos.Line != 3 {
		t.Fatalf("pos %v, want line 3", qe.Pos)
	}
	if !strings.Contains(err.Error(), "constants are not supported") {
		t.Fatalf("message %q", err)
	}
}

func TestEDB(t *testing.T) {
	p := mustParse(t, "tc(x,y) :- E(x,y).\ntc(x,z) :- tc(x,y), E(y,z).")
	edb := p.EDB()
	if len(edb) != 1 || edb["E"] != 2 {
		t.Fatalf("EDB %v", edb)
	}
	p = mustParse(t, "q(x,y,z) :- R(x,y), S(y,z).")
	edb = p.EDB()
	if len(edb) != 2 || edb["R"] != 2 || edb["S"] != 2 {
		t.Fatalf("EDB %v", edb)
	}
}
