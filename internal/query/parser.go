package query

// Parse turns Datalog-style rule source into a Program:
//
//	triangle(x, y, z) :- R(x, y), S(y, z), T(z, x).
//	sales(cust, sum(price)) :- O(cust, item, price).
//	tc(x, y) :- E(x, y).
//	tc(x, z) :- tc(x, y), E(y, z).
//
// Heads may aggregate with sum/count/min/max; bodies are conjunctions
// of atoms over variables (no constants). Every rule ends with '.'
// (omittable on the last rule). '%' starts a line comment.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
		if len(prog.Rules) > maxRules {
			return nil, errAt(p.tok.pos, "too many rules (limit %d)", maxRules)
		}
	}
	if len(prog.Rules) == 0 {
		return nil, errAt(Pos{1, 1}, "empty program: expected at least one rule")
	}
	return prog, nil
}

// maxRules bounds the program size before any per-rule analysis runs,
// so untrusted input cannot make the frontend allocate unboundedly.
const maxRules = 64

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() *Error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokKind) (token, *Error) {
	if p.tok.kind != kind {
		return token{}, errAt(p.tok.pos, "expected %s, got %s", kind, p.describe())
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// describe renders the current token for error messages.
func (p *parser) describe() string {
	switch p.tok.kind {
	case tokEOF:
		return "end of input"
	case tokIdent, tokNumber:
		return "\"" + p.tok.text + "\""
	default:
		return "'" + p.tok.text + "'"
	}
}

func (p *parser) parseRule() (*Rule, error) {
	head, err := p.parseHead()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	var body []Atom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		body = append(body, *a)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	switch p.tok.kind {
	case tokDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tokEOF:
		// The final '.' may be omitted on the last rule.
	default:
		return nil, errAt(p.tok.pos, "expected ',' or '.' after atom, got %s", p.describe())
	}
	return &Rule{Head: *head, Body: body}, nil
}

func (p *parser) parseHead() (*Head, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	h := &Head{Name: name.text, Pos: name.pos}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		t, err := p.parseHeadTerm()
		if err != nil {
			return nil, err
		}
		h.Terms = append(h.Terms, *t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return h, nil
}

func (p *parser) parseHeadTerm() (*HeadTerm, error) {
	if p.tok.kind == tokNumber {
		return nil, errAt(p.tok.pos, "constants are not supported: terms must be variables")
	}
	id, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	agg, isAgg := aggByName[id.text]
	if isAgg && p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &HeadTerm{Var: v.text, Agg: agg, Pos: id.pos}, nil
	}
	return &HeadTerm{Var: id.text, Agg: AggNone, Pos: id.pos}, nil
}

func (p *parser) parseAtom() (*Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	a := &Atom{Name: name.text, Pos: name.pos}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	for {
		if p.tok.kind == tokNumber {
			return nil, errAt(p.tok.pos, "constants are not supported: terms must be variables")
		}
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			return nil, errAt(p.tok.pos, "aggregation is only allowed in the rule head")
		}
		a.Vars = append(a.Vars, Var{Name: v.text, Pos: v.pos})
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return a, nil
}
