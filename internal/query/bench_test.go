package query

import (
	"testing"
)

// BenchmarkParseCompile measures the full frontend path — lex, parse,
// semantic analysis, hypergraph construction — for the triangle query,
// the per-request cost a cache miss pays in mpcserve before planning.
func BenchmarkParseCompile(b *testing.B) {
	const src = "triangle(x, y, z) :- R(x, y), S(y, z), T(z, x)."
	cat := NewCatalog()
	cat.Add("R", 2)
	cat.Add("S", 2)
	cat.Add("T", 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Compile(prog, cat); err != nil {
			b.Fatal(err)
		}
	}
}
