package matmul_test

import (
	"fmt"

	"mpcquery/internal/matmul"
	"mpcquery/internal/mpc"
)

// ExampleSquareBlock multiplies two 8×8 matrices with the multi-round
// block-rotation algorithm (slides 111–121) on a 2×2 processor grid.
func ExampleSquareBlock() {
	a := matmul.Random(8, 5, 1)
	b := matmul.Random(8, 5, 2)
	c := mpc.NewCluster(4, 1)
	res, err := matmul.SquareBlock(c, a, b, 2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("correct:", res.C.Equal(matmul.Multiply(a, b)))
	// Output:
	// rounds: 2
	// correct: true
}

// ExampleSparseSQLMultiply multiplies a rectangular sparse pair via the
// SQL formulation of slide 108.
func ExampleSparseSQLMultiply() {
	a := matmul.RandomSparseRect(10, 20, 15, 9, 3)
	b := matmul.RandomSparseRect(20, 5, 15, 9, 4)
	c := mpc.NewCluster(4, 1)
	got, rounds, err := matmul.SparseSQLMultiply(c, a, b, 42)
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", rounds)
	fmt.Println("correct:", got.EqualRect(matmul.MultiplyRect(a, b)))
	// Output:
	// rounds: 2
	// correct: true
}
