package matmul

import (
	"fmt"
	"math"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// scatterMatrix distributes a matrix's elements round-robin as tuples
// (r, c, v) under the given relation name (free initial placement).
func scatterMatrix(c *mpc.Cluster, name string, m *Matrix) {
	rel := relation.New(name, "r", "c", "v")
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			rel.Append(int64(i), int64(j), m.At(i, j))
		}
	}
	c.ScatterRoundRobin(rel)
}

// gatherMatrix reassembles an n×n matrix from element tuples (r, c, v)
// distributed under name, summing duplicates (partial sums).
func gatherMatrix(c *mpc.Cluster, name string, n int) *Matrix {
	out := New(n)
	for i := 0; i < c.P(); i++ {
		frag := c.Server(i).Rel(name)
		if frag == nil {
			continue
		}
		for j := 0; j < frag.Len(); j++ {
			row := frag.Row(j)
			out.data[row[0]*int64(n)+row[1]] += row[2]
		}
	}
	return out
}

// MatMulResult reports a distributed multiplication.
type MatMulResult struct {
	C      *Matrix
	Rounds int
}

// RectangleBlock runs the one-round algorithm of slides 109–110. The
// cluster size must be a perfect square K² with K dividing n. Processor
// (i, j) receives rows [i·t, (i+1)·t) of A and columns [j·t, (j+1)·t)
// of B (t = n/K), multiplies them into the t×t output block C_{ij}, and
// keeps it local. Load L = 2tn elements, C = K²·L = Θ(n⁴/L).
func RectangleBlock(c *mpc.Cluster, a, b *Matrix) (*MatMulResult, error) {
	n := a.N
	if b.N != n {
		return nil, fmt.Errorf("matmul: size mismatch %d vs %d", n, b.N)
	}
	k := int(math.Round(math.Sqrt(float64(c.P()))))
	if k*k != c.P() {
		return nil, fmt.Errorf("matmul: RectangleBlock needs a square processor count, got p=%d", c.P())
	}
	if n%k != 0 {
		return nil, fmt.Errorf("matmul: K=%d must divide n=%d", k, n)
	}
	t := n / k
	scatterMatrix(c, "A", a)
	scatterMatrix(c, "B", b)
	trace.Annotatef(c, "matmul.RectangleBlock n=%d grid %dx%d", n, k, k)
	start := c.Metrics().Rounds()
	c.Round("rectblock:distribute", func(srv *mpc.Server, out *mpc.Out) {
		if frag := srv.Rel("A"); frag != nil {
			st := out.Open("Arows", "r", "c", "v")
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				rg := int(row[0]) / t
				for gc := 0; gc < k; gc++ {
					st.SendRow(rg*k+gc, row)
				}
			}
		}
		if frag := srv.Rel("B"); frag != nil {
			st := out.Open("Bcols", "r", "c", "v")
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				cg := int(row[1]) / t
				for gr := 0; gr < k; gr++ {
					st.SendRow(gr*k+cg, row)
				}
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		ri, ci := srv.ID()/k, srv.ID()%k
		arows := srv.RelOrEmpty("Arows", "r", "c", "v")
		bcols := srv.RelOrEmpty("Bcols", "r", "c", "v")
		// Local dense block multiply: A[t×n] × B[n×t].
		ablk := make([]int64, t*n)
		for i := 0; i < arows.Len(); i++ {
			row := arows.Row(i)
			ablk[(int(row[0])-ri*t)*n+int(row[1])] = row[2]
		}
		bblk := make([]int64, n*t)
		for i := 0; i < bcols.Len(); i++ {
			row := bcols.Row(i)
			bblk[int(row[0])*t+(int(row[1])-ci*t)] = row[2]
		}
		cRel := relation.New("C", "r", "c", "v")
		for i := 0; i < t; i++ {
			for j := 0; j < t; j++ {
				var sum int64
				for x := 0; x < n; x++ {
					sum += ablk[i*n+x] * bblk[x*t+j]
				}
				cRel.Append(int64(ri*t+i), int64(ci*t+j), sum)
			}
		}
		srv.Put(cRel)
		srv.Delete("Arows")
		srv.Delete("Bcols")
	})
	res := &MatMulResult{C: gatherMatrix(c, "C", n), Rounds: c.Metrics().Rounds() - start}
	return res, nil
}

// SquareBlock runs the multi-round block algorithm of slides 111–121
// with H×H blocking and g processor groups (g must divide H; the
// cluster must have at least g·H² servers, and H must divide n).
// Processor (gi, i, k) handles block product A_{i,j}·B_{j,k} with
// j = (i + k + z) mod H in the round covering group z = round·g + gi,
// accumulating into its local partial block. With g = 1 the result
// blocks are complete after H rounds; with g > 1, one extra round
// combines the g partial sums per output block. Per-round load
// L = 2·(n/H)² elements, total C = Θ(n³/√L).
func SquareBlock(c *mpc.Cluster, a, b *Matrix, h, g int) (*MatMulResult, error) {
	n := a.N
	if b.N != n {
		return nil, fmt.Errorf("matmul: size mismatch")
	}
	if h < 1 || n%h != 0 {
		return nil, fmt.Errorf("matmul: H=%d must divide n=%d", h, n)
	}
	if g < 1 || h%g != 0 {
		return nil, fmt.Errorf("matmul: g=%d must divide H=%d", g, h)
	}
	if c.P() < g*h*h {
		return nil, fmt.Errorf("matmul: need p ≥ g·H² = %d, have %d", g*h*h, c.P())
	}
	bsz := n / h
	scatterMatrix(c, "A", a)
	scatterMatrix(c, "B", b)
	trace.Annotatef(c, "matmul.SquareBlock n=%d H=%d g=%d", n, h, g)
	start := c.Metrics().Rounds()
	rounds := h / g
	// Server layout: server (gi, i, k) = gi·H² + i·H + k.
	for r := 0; r < rounds; r++ {
		round := r
		c.Round(fmt.Sprintf("squareblock:mult%d", r), func(srv *mpc.Server, out *mpc.Out) {
			// Route every local A/B element to the processors whose
			// block product needs it in this round.
			if frag := srv.Rel("A"); frag != nil {
				st := out.Open("Ablk", "r", "c", "v")
				for t := 0; t < frag.Len(); t++ {
					row := frag.Row(t)
					bi, bj := int(row[0])/bsz, int(row[1])/bsz
					// Needed by (gi, i=bi, k) where j = (i+k+z) mod H
					// equals bj, i.e. k = (bj - bi - z) mod H.
					for gi := 0; gi < g; gi++ {
						z := round*g + gi
						k := ((bj-bi-z)%h + h) % h
						st.SendRow(gi*h*h+bi*h+k, row)
					}
				}
			}
			if frag := srv.Rel("B"); frag != nil {
				st := out.Open("Bblk", "r", "c", "v")
				for t := 0; t < frag.Len(); t++ {
					row := frag.Row(t)
					bj, bk := int(row[0])/bsz, int(row[1])/bsz
					// Needed by (gi, i, k=bk) with i = (bj - bk - z) mod H.
					for gi := 0; gi < g; gi++ {
						z := round*g + gi
						i := ((bj-bk-z)%h + h) % h
						st.SendRow(gi*h*h+i*h+bk, row)
					}
				}
			}
		})
		c.LocalStep(func(srv *mpc.Server) {
			if srv.ID() >= g*h*h {
				return
			}
			id := srv.ID()
			i, k := (id/h)%h, id%h
			af := srv.RelOrEmpty("Ablk", "r", "c", "v")
			bf := srv.RelOrEmpty("Bblk", "r", "c", "v")
			ablk := New(bsz)
			for t := 0; t < af.Len(); t++ {
				row := af.Row(t)
				ablk.Set(int(row[0])%bsz, int(row[1])%bsz, row[2])
			}
			bblk := New(bsz)
			for t := 0; t < bf.Len(); t++ {
				row := bf.Row(t)
				bblk.Set(int(row[0])%bsz, int(row[1])%bsz, row[2])
			}
			prod := Multiply(ablk, bblk)
			psum := srv.Rel("Psum")
			if psum == nil {
				p := relation.New("Psum", "r", "c", "v")
				srv.Put(p)
				psum = p
			}
			for x := 0; x < bsz; x++ {
				for y := 0; y < bsz; y++ {
					if v := prod.At(x, y); v != 0 {
						psum.Append(int64(i*bsz+x), int64(k*bsz+y), v)
					}
				}
			}
			srv.Delete("Ablk")
			srv.Delete("Bblk")
		})
	}
	if g > 1 {
		// Combine the g partial sums per output block at group 0.
		c.Round("squareblock:combine", func(srv *mpc.Server, out *mpc.Out) {
			if srv.ID() < h*h || srv.ID() >= g*h*h {
				return
			}
			frag := srv.Rel("Psum")
			if frag == nil {
				return
			}
			st := out.Open("Psum", "r", "c", "v")
			dst := srv.ID() % (h * h)
			for t := 0; t < frag.Len(); t++ {
				st.SendRow(dst, frag.Row(t))
			}
			srv.Delete("Psum")
		})
	}
	res := &MatMulResult{C: gatherMatrix(c, "Psum", n), Rounds: c.Metrics().Rounds() - start}
	c.DeleteAll("Psum")
	return res, nil
}

// SQLJoinAggregate multiplies matrices as the relational query of
// slide 108:
//
//	SELECT A.i, B.k, SUM(A.v * B.v)
//	FROM A, B WHERE A.j = B.j GROUP BY A.i, B.k
//
// Round 1 hash-partitions A and B on j and forms local products; round
// 2 hash-partitions the products on (i, k) and sums. Zero entries are
// dropped (they contribute nothing), matching the sparse-relational
// view of the matrix.
func SQLJoinAggregate(c *mpc.Cluster, a, b *Matrix, seed uint64) (*MatMulResult, error) {
	n := a.N
	if b.N != n {
		return nil, fmt.Errorf("matmul: size mismatch")
	}
	aRel := relation.New("A", "i", "j", "v")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := a.At(i, j); v != 0 {
				aRel.Append(int64(i), int64(j), v)
			}
		}
	}
	bRel := relation.New("B", "j", "k", "v")
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := b.At(i, j); v != 0 {
				bRel.Append(int64(i), int64(j), v)
			}
		}
	}
	c.ScatterRoundRobin(aRel)
	c.ScatterRoundRobin(bRel)
	trace.Annotatef(c, "matmul.SQLJoinAggregate n=%d (nnz %d+%d)", n, aRel.Len(), bRel.Len())
	start := c.Metrics().Rounds()
	p := c.P()
	// Round 1: co-partition on j.
	c.Round("sqlmm:join", func(srv *mpc.Server, out *mpc.Out) {
		if frag := srv.Rel("A"); frag != nil {
			st := out.Open("Aj", "i", "j", "v")
			for t := 0; t < frag.Len(); t++ {
				row := frag.Row(t)
				st.SendRow(relation.Bucket(relation.Hash64(row[1], seed), p), row)
			}
		}
		if frag := srv.Rel("B"); frag != nil {
			st := out.Open("Bj", "j", "k", "v")
			for t := 0; t < frag.Len(); t++ {
				row := frag.Row(t)
				st.SendRow(relation.Bucket(relation.Hash64(row[0], seed), p), row)
			}
		}
	})
	// Local join + multiply, then round 2: partition products on (i,k).
	c.LocalStep(func(srv *mpc.Server) {
		af := srv.RelOrEmpty("Aj", "i", "j", "v")
		bf := srv.RelOrEmpty("Bj", "j", "k", "v")
		prod := relation.New("prod", "i", "k", "v")
		ix := relation.BuildIndex(bf, []string{"j"})
		for t := 0; t < af.Len(); t++ {
			arow := af.Row(t)
			for _, bi := range ix.LookupKey([]relation.Value{arow[1]}) {
				brow := bf.Row(int(bi))
				prod.Append(arow[0], brow[1], arow[2]*brow[2])
			}
		}
		srv.Put(prod)
		srv.Delete("Aj")
		srv.Delete("Bj")
	})
	c.Round("sqlmm:aggregate", func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel("prod")
		if frag == nil {
			return
		}
		st := out.Open("Cagg", "i", "k", "v")
		// Pre-aggregate locally (combiner) before shuffling.
		partial := relation.GroupBy("pagg", frag, []string{"i", "k"}, relation.Sum, "v", "v")
		for t := 0; t < partial.Len(); t++ {
			row := partial.Row(t)
			st.SendRow(relation.Bucket(relation.HashRow(row, []int{0, 1}, seed^0x77), p), row)
		}
		srv.Delete("prod")
	})
	c.LocalStep(func(srv *mpc.Server) {
		frag := srv.RelOrEmpty("Cagg", "i", "k", "v")
		srv.Put(relation.GroupBy("C", frag, []string{"i", "k"}, relation.Sum, "v", "v"))
		srv.Delete("Cagg")
	})
	res := &MatMulResult{C: gatherMatrix(c, "C", n), Rounds: c.Metrics().Rounds() - start}
	c.DeleteAll("C")
	return res, nil
}
