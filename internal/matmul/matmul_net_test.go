package matmul

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: the SQL-on-MPC matrix multiply
// (join round + aggregation round over (i,j,k) streams) must be
// indistinguishable between the in-process engine and the TCP
// transport. The dense block algorithms pick their own grid from p, so
// the sweep pins p to sizes every variant accepts.

func TestSQLJoinAggregateBackendDiff(t *testing.T) {
	cfg := testkit.Config{Ps: []int{2, 4, 7}}
	testkit.SweepBackends(t, cfg, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		const n = 10
		a, b := Random(n, 7, seed), Random(n, 7, seed+100)
		if _, err := SQLJoinAggregate(c, a, b, uint64(seed)); err != nil {
			t.Fatalf("SQLJoinAggregate: %v", err)
		}
	})
}

func TestRectangleBlockBackendDiff(t *testing.T) {
	cfg := testkit.Config{Ps: []int{1, 4}, Seeds: []int64{1, 2}}
	testkit.SweepBackends(t, cfg, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		const n = 12
		a, b := Random(n, 9, seed), Random(n, 9, seed+100)
		if _, err := RectangleBlock(c, a, b); err != nil {
			t.Fatalf("RectangleBlock: %v", err)
		}
	})
}
