package matmul

import (
	"testing"

	"mpcquery/internal/mpc"
)

func TestMatrixBasics(t *testing.T) {
	m := New(3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	o := New(3)
	o.Set(1, 2, 3)
	m.Add(o)
	if m.At(1, 2) != 10 {
		t.Fatal("Add broken")
	}
	if m.Equal(New(3)) {
		t.Fatal("Equal false positive")
	}
	if !m.Equal(m) {
		t.Fatal("Equal false negative")
	}
	mustPanic(t, "bad size", func() { New(0) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestMultiplyReference(t *testing.T) {
	// 2×2 hand-checked case.
	a := New(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := New(2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := Multiply(a, b)
	want := [][]int64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMultiplyIdentity(t *testing.T) {
	n := 8
	a := Random(n, 10, 1)
	id := New(n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	if !Multiply(a, id).Equal(a) || !Multiply(id, a).Equal(a) {
		t.Fatal("identity multiply broken")
	}
}

func TestBlockExtractSet(t *testing.T) {
	m := Random(8, 100, 2)
	blk := m.Block(1, 0, 4)
	if blk.At(0, 0) != m.At(4, 0) || blk.At(3, 3) != m.At(7, 3) {
		t.Fatal("Block extraction wrong")
	}
	o := New(8)
	o.SetBlock(1, 0, blk)
	if o.At(5, 2) != m.At(5, 2) {
		t.Fatal("SetBlock wrong")
	}
}

func TestRectangleBlockCorrect(t *testing.T) {
	const n = 16
	a, b := Random(n, 10, 3), Random(n, 10, 4)
	want := Multiply(a, b)
	c := mpc.NewCluster(16, 1) // K = 4
	res, err := RectangleBlock(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if !res.C.Equal(want) {
		t.Fatal("rectangle-block result wrong")
	}
	// Load = 2tn = 2·(n/K)·n = 2·4·16 = 128 elements.
	if load := c.Metrics().MaxLoad(); load != 128 {
		t.Fatalf("load = %d, want 2tn = 128", load)
	}
}

func TestRectangleBlockValidation(t *testing.T) {
	a, b := Random(8, 10, 1), Random(8, 10, 2)
	if _, err := RectangleBlock(mpc.NewCluster(3, 1), a, b); err == nil {
		t.Fatal("non-square p should error")
	}
	if _, err := RectangleBlock(mpc.NewCluster(9, 1), a, b); err == nil {
		t.Fatal("K not dividing n should error")
	}
	if _, err := RectangleBlock(mpc.NewCluster(4, 1), a, Random(4, 10, 1)); err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestSquareBlockCorrectG1(t *testing.T) {
	const n, h = 16, 4
	a, b := Random(n, 10, 5), Random(n, 10, 6)
	want := Multiply(a, b)
	c := mpc.NewCluster(h*h, 1)
	res, err := SquareBlock(c, a, b, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != h {
		t.Fatalf("rounds = %d, want H = %d", res.Rounds, h)
	}
	if !res.C.Equal(want) {
		t.Fatal("square-block result wrong")
	}
	// Per-round load = 2·(n/H)² = 32 elements.
	for _, rs := range c.Metrics().RoundStats() {
		if rs.MaxRecv() > 32 {
			t.Fatalf("round %s load %d > 2b² = 32", rs.Name, rs.MaxRecv())
		}
	}
}

func TestSquareBlockCorrectG2(t *testing.T) {
	// Slide 119: p = 2H² halves the multiply rounds and adds one combine
	// round.
	const n, h, g = 16, 4, 2
	a, b := Random(n, 10, 7), Random(n, 10, 8)
	want := Multiply(a, b)
	c := mpc.NewCluster(g*h*h, 1)
	res, err := SquareBlock(c, a, b, h, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != h/g+1 {
		t.Fatalf("rounds = %d, want H/g+1 = %d", res.Rounds, h/g+1)
	}
	if !res.C.Equal(want) {
		t.Fatal("g=2 square-block result wrong")
	}
}

func TestSquareBlockFullParallel(t *testing.T) {
	// g = H: every group in one round, one combine round — the 2-round
	// algorithm of slide 111.
	const n, h = 8, 4
	a, b := Random(n, 10, 9), Random(n, 10, 10)
	want := Multiply(a, b)
	c := mpc.NewCluster(h*h*h, 1)
	res, err := SquareBlock(c, a, b, h, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	if !res.C.Equal(want) {
		t.Fatal("fully parallel square-block wrong")
	}
}

func TestSquareBlockValidation(t *testing.T) {
	a, b := Random(8, 10, 1), Random(8, 10, 2)
	if _, err := SquareBlock(mpc.NewCluster(4, 1), a, b, 3, 1); err == nil {
		t.Fatal("H not dividing n should error")
	}
	if _, err := SquareBlock(mpc.NewCluster(4, 1), a, b, 4, 3); err == nil {
		t.Fatal("g not dividing H should error")
	}
	if _, err := SquareBlock(mpc.NewCluster(4, 1), a, b, 4, 1); err == nil {
		t.Fatal("too few servers should error")
	}
}

func TestSQLJoinAggregateCorrect(t *testing.T) {
	const n = 12
	a, b := Random(n, 5, 11), Random(n, 5, 12)
	want := Multiply(a, b)
	c := mpc.NewCluster(8, 1)
	res, err := SQLJoinAggregate(c, a, b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2 (join + aggregate)", res.Rounds)
	}
	if !res.C.Equal(want) {
		t.Fatal("SQL matmul wrong")
	}
}

func TestSQLJoinAggregateSparse(t *testing.T) {
	// Mostly-zero matrices exercise the sparse relational encoding.
	n := 10
	a, b := New(n), New(n)
	a.Set(0, 3, 2)
	a.Set(5, 7, 4)
	b.Set(3, 9, 5)
	b.Set(7, 1, 6)
	want := Multiply(a, b)
	c := mpc.NewCluster(4, 1)
	res, err := SQLJoinAggregate(c, a, b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.Equal(want) {
		t.Fatal("sparse SQL matmul wrong")
	}
}

// TestAllMatMulAlgorithmsAgree cross-validates the three distributed
// algorithms on one input.
func TestAllMatMulAlgorithmsAgree(t *testing.T) {
	const n = 16
	a, b := Random(n, 8, 13), Random(n, 8, 14)
	want := Multiply(a, b)

	c1 := mpc.NewCluster(16, 1)
	r1, err := RectangleBlock(c1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mpc.NewCluster(16, 1)
	r2, err := SquareBlock(c2, a, b, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	c3 := mpc.NewCluster(16, 1)
	r3, err := SQLJoinAggregate(c3, a, b, 42)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*Matrix{"rect": r1.C, "square": r2.C, "sql": r3.C} {
		if !m.Equal(want) {
			t.Errorf("%s disagrees with reference", name)
		}
	}
}

// TestCommunicationTradeoff verifies the slide-122/126 table's shape at
// EQUAL per-round load L: the multi-round square-block algorithm
// communicates less in total than the one-round rectangle-block
// algorithm (C = n³/√L vs 4n⁴/L), at the price of more rounds. Here
// n = 32 and L = 512 elements: rectangle-block needs K = 4 (p = 16,
// L = 2tn = 512); square-block matches that load with H = 2 blocks
// (L = 2b² = 512) on p = 4 servers.
func TestCommunicationTradeoff(t *testing.T) {
	const n = 32
	a, b := Random(n, 8, 15), Random(n, 8, 16)

	cr := mpc.NewCluster(16, 1)
	if _, err := RectangleBlock(cr, a, b); err != nil {
		t.Fatal(err)
	}
	cs := mpc.NewCluster(4, 1)
	rs, err := SquareBlock(cs, a, b, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lr, ls := cr.Metrics().MaxLoad(), cs.Metrics().MaxLoad(); lr != ls {
		t.Fatalf("loads must match for a fair comparison: rect %d, square %d", lr, ls)
	}
	rectComm := cr.Metrics().TotalComm()
	sqComm := cs.Metrics().TotalComm()
	if sqComm >= rectComm {
		t.Fatalf("square-block comm %d should beat rectangle-block %d", sqComm, rectComm)
	}
	if rs.Rounds <= 1 {
		t.Fatal("square-block should need multiple rounds")
	}
}
