package matmul

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: the relational matrix multiply under seeded
// fault schedules. The two-round join-then-aggregate pipeline is
// value-sensitive end to end: a duplicated join fragment would inflate
// a dot product, a lost one would zero it.

func TestSQLJoinAggregateChaos(t *testing.T) {
	const n = 10
	testkit.SweepChaos(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
		a, b := Random(n, 9, seed), Random(n, 9, seed+100)
		want := productOracle(denseToRel("A", a, "i", "j"), denseToRel("B", b, "j", "k"))

		clean := mpc.NewCluster(p, seed)
		if _, err := SQLJoinAggregate(clean, a, b, uint64(seed)); err != nil {
			t.Fatalf("fault-free SQLJoinAggregate: %v", err)
		}

		c := testkit.NewChaosCluster(p, seed, spec)
		res, err := SQLJoinAggregate(c, a, b, uint64(seed))
		if err != nil {
			t.Fatalf("chaos SQLJoinAggregate: %v", err)
		}
		testkit.AssertRecovered(t, c)
		testkit.AssertSameLRC(t, clean, c)
		assertMatrixMatchesOracle(t, res.C, want)
	})
}

// TestSparseSQLMultiplyChaos sweeps the sparse variant, whose fragment
// population tracks the non-zero structure of the inputs (skewed rows ⇒
// skewed fragment sizes under fault injection).
func TestSparseSQLMultiplyChaos(t *testing.T) {
	testkit.SweepChaos(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
		a := genSparseRect(skew, 12, 9, 40, seed)
		b := genSparseRect(skew, 9, 11, 40, seed+1000)
		c := testkit.NewChaosCluster(p, seed, spec)
		got, _, err := SparseSQLMultiply(c, a, b, uint64(seed))
		if err != nil {
			t.Fatalf("chaos SparseSQLMultiply: %v", err)
		}
		testkit.AssertRecovered(t, c)
		if !got.EqualRect(MultiplyRect(a, b)) {
			t.Error("chaos sparse product differs from dense reference multiply")
		}
	})
}
