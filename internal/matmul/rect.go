package matmul

import (
	"fmt"
	"math/rand"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// The slide-127 extensions: non-square and sparse matrix
// multiplication. Both fall out of the relational formulation of slide
// 108 — a rectangular product A(n1×n2)·B(n2×n3) is the same
// join-and-aggregate with rectangular index domains, and sparsity makes
// the relation sizes (and hence all communication) proportional to the
// number of non-zeros instead of the dense dimensions.

// Rect is a dense rectangular int64 matrix in row-major order.
type Rect struct {
	Rows, Cols int
	data       []int64
}

// NewRect returns a zero rows×cols matrix.
func NewRect(rows, cols int) *Rect {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("matmul: rect size %d×%d", rows, cols))
	}
	return &Rect{Rows: rows, Cols: cols, data: make([]int64, rows*cols)}
}

// RandomRect fills a rows×cols matrix with entries in [0, max).
func RandomRect(rows, cols int, max int64, seed int64) *Rect {
	rng := rand.New(rand.NewSource(seed))
	m := NewRect(rows, cols)
	for i := range m.data {
		m.data[i] = rng.Int63n(max)
	}
	return m
}

// RandomSparseRect fills a rows×cols matrix with nnz non-zero entries
// in [1, max) at distinct random positions.
func RandomSparseRect(rows, cols, nnz int, max int64, seed int64) *Rect {
	if nnz > rows*cols {
		panic("matmul: nnz exceeds capacity")
	}
	rng := rand.New(rand.NewSource(seed))
	m := NewRect(rows, cols)
	filled := 0
	for filled < nnz {
		pos := rng.Intn(rows * cols)
		if m.data[pos] == 0 {
			m.data[pos] = 1 + rng.Int63n(max-1)
			filled++
		}
	}
	return m
}

// At returns element (i, j).
func (m *Rect) At(i, j int) int64 { return m.data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Rect) Set(i, j int, v int64) { m.data[i*m.Cols+j] = v }

// NNZ counts non-zero entries.
func (m *Rect) NNZ() int {
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// EqualRect reports exact equality.
func (m *Rect) EqualRect(o *Rect) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// MultiplyRect is the local reference product; a.Cols must equal b.Rows.
func MultiplyRect(a, b *Rect) *Rect {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matmul: inner dims %d vs %d", a.Cols, b.Rows))
	}
	c := NewRect(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.data[i*a.Cols+k]
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.Cols:]
			crow := c.data[i*c.Cols:]
			for j := 0; j < b.Cols; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// toRelation encodes non-zero entries as (rowIdx, colIdx, value).
func (m *Rect) toRelation(name, rAttr, cAttr string) *relation.Relation {
	rel := relation.New(name, rAttr, cAttr, "v")
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				rel.Append(int64(i), int64(j), v)
			}
		}
	}
	return rel
}

// SparseSQLMultiply multiplies rectangular (possibly sparse) matrices
// with the slide-108 relational query: join on the inner index, then
// group-and-sum on (i, k). Two rounds; every communicated tuple is a
// non-zero, so the cost scales with nnz(A) + nnz(B) + nnz(partial
// products) rather than the dense sizes — the sparse-MM extension of
// slide 127.
func SparseSQLMultiply(c *mpc.Cluster, a, b *Rect, seed uint64) (*Rect, int, error) {
	if a.Cols != b.Rows {
		return nil, 0, fmt.Errorf("matmul: inner dims %d vs %d", a.Cols, b.Rows)
	}
	aRel := a.toRelation("A", "i", "j")
	bRel := b.toRelation("B", "j", "k")
	c.ScatterRoundRobin(aRel)
	c.ScatterRoundRobin(bRel)
	start := c.Metrics().Rounds()
	p := c.P()
	c.Round("sparsemm:join", func(srv *mpc.Server, out *mpc.Out) {
		if frag := srv.Rel("A"); frag != nil {
			st := out.Open("Aj", "i", "j", "v")
			for t := 0; t < frag.Len(); t++ {
				row := frag.Row(t)
				st.SendRow(relation.Bucket(relation.Hash64(row[1], seed), p), row)
			}
		}
		if frag := srv.Rel("B"); frag != nil {
			st := out.Open("Bj", "j", "k", "v")
			for t := 0; t < frag.Len(); t++ {
				row := frag.Row(t)
				st.SendRow(relation.Bucket(relation.Hash64(row[0], seed), p), row)
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		af := srv.RelOrEmpty("Aj", "i", "j", "v")
		bf := srv.RelOrEmpty("Bj", "j", "k", "v")
		prod := relation.New("prod", "i", "k", "v")
		ix := relation.BuildIndex(bf, []string{"j"})
		for t := 0; t < af.Len(); t++ {
			arow := af.Row(t)
			for _, bi := range ix.LookupKey([]relation.Value{arow[1]}) {
				brow := bf.Row(int(bi))
				prod.Append(arow[0], brow[1], arow[2]*brow[2])
			}
		}
		// Combiner: collapse local partial sums before the shuffle.
		srv.Put(relation.GroupBy("prod", prod, []string{"i", "k"}, relation.Sum, "v", "v"))
		srv.Delete("Aj")
		srv.Delete("Bj")
	})
	c.Round("sparsemm:aggregate", func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel("prod")
		if frag == nil {
			return
		}
		st := out.Open("Cagg", "i", "k", "v")
		for t := 0; t < frag.Len(); t++ {
			row := frag.Row(t)
			st.SendRow(relation.Bucket(relation.HashRow(row, []int{0, 1}, seed^0x99), p), row)
		}
		srv.Delete("prod")
	})
	out := NewRect(a.Rows, b.Cols)
	for i := 0; i < c.P(); i++ {
		frag := c.Server(i).Rel("Cagg")
		if frag == nil {
			continue
		}
		for j := 0; j < frag.Len(); j++ {
			row := frag.Row(j)
			out.data[row[0]*int64(b.Cols)+row[1]] += row[2]
		}
	}
	c.DeleteAll("Cagg")
	rounds := c.Metrics().Rounds() - start
	return out, rounds, nil
}
