// Package matmul implements conventional (all-n³-products) matrix
// multiplication in the MPC model (slides 107–126):
//
//   - RectangleBlock — the one-round algorithm (slide 109–110, McKellar
//     & Coffman '69 / Afrati et al. '13): processor (i,j) of a K×K grid
//     receives t = n/K full rows of A and t full columns of B, load
//     L = 2tn, total communication C = Θ(n⁴/L).
//   - SquareBlock — the multi-round block-rotation algorithm
//     (slides 111–121, McColl & Tiskin '99): matrices are tiled into
//     H×H blocks; in each round the H² (or g·H²) processors each
//     multiply one pair of blocks from the group G_z = {(i,j,k) :
//     j = (i+k+z) mod H} and accumulate partial sums, for a total
//     communication C = Θ(n³/√L).
//   - SQLJoinAggregate — matrix multiplication as the SQL query of
//     slide 108: join A(i,j,v) ⋈ B(j,k,v) on j, then GROUP BY (i,k)
//     SUM — two MPC rounds on the relational machinery.
//
// Matrices hold int64 entries so every distributed result can be
// verified exactly against the local reference multiply; the
// communication structure (the object of study) is identical to the
// floating-point case.
package matmul

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense square matrix of int64 values in row-major order.
type Matrix struct {
	N    int
	data []int64
}

// New returns an n×n zero matrix.
func New(n int) *Matrix {
	if n < 1 {
		panic(fmt.Sprintf("matmul: matrix size %d", n))
	}
	return &Matrix{N: n, data: make([]int64, n*n)}
}

// Random returns an n×n matrix with entries uniform in [0, max).
func Random(n int, max int64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(n)
	for i := range m.data {
		m.data[i] = rng.Int63n(max)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) int64 { return m.data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v int64) { m.data[i*m.N+j] = v }

// Add accumulates o into m.
func (m *Matrix) Add(o *Matrix) {
	if o.N != m.N {
		panic("matmul: size mismatch in Add")
	}
	for i := range m.data {
		m.data[i] += o.data[i]
	}
}

// Equal reports exact element-wise equality.
func (m *Matrix) Equal(o *Matrix) bool {
	if o.N != m.N {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Multiply returns a×b with the conventional O(n³) algorithm (ikj loop
// order for locality); the local reference all distributed algorithms
// are verified against.
func Multiply(a, b *Matrix) *Matrix {
	if a.N != b.N {
		panic("matmul: size mismatch in Multiply")
	}
	n := a.N
	c := New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.data[i*n+k]
			if aik == 0 {
				continue
			}
			row := b.data[k*n:]
			out := c.data[i*n:]
			for j := 0; j < n; j++ {
				out[j] += aik * row[j]
			}
		}
	}
	return c
}

// Block extracts the (bi, bj) block of size b (the matrix size must be
// divisible by b).
func (m *Matrix) Block(bi, bj, b int) *Matrix {
	out := New(b)
	for i := 0; i < b; i++ {
		copy(out.data[i*b:(i+1)*b], m.data[(bi*b+i)*m.N+bj*b:(bi*b+i)*m.N+bj*b+b])
	}
	return out
}

// SetBlock writes a b×b block at block coordinates (bi, bj).
func (m *Matrix) SetBlock(bi, bj int, blk *Matrix) {
	b := blk.N
	for i := 0; i < b; i++ {
		copy(m.data[(bi*b+i)*m.N+bj*b:(bi*b+i)*m.N+bj*b+b], blk.data[i*b:(i+1)*b])
	}
}
