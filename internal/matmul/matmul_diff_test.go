package matmul

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Differential tests: the MPC matrix-multiplication algorithms vs an
// expected product built independently — a nested-loop product relation
// reduced by the testkit aggregation oracle — plus exact round counts.

// productOracle computes C = A·B through the relational route the
// algorithms implement, but sequentially and with the testkit oracle:
// enumerate all j-matching (i,j,v)·(j,k,w) pairs by nested loops, then
// group-and-sum with OracleGroupBy.
func productOracle(aRel, bRel *relation.Relation) *relation.Relation {
	prod := relation.New("prod", "i", "k", "v")
	for x := 0; x < aRel.Len(); x++ {
		ar := aRel.Row(x)
		for y := 0; y < bRel.Len(); y++ {
			br := bRel.Row(y)
			if ar[1] == br[0] {
				prod.Append(ar[0], br[1], ar[2]*br[2])
			}
		}
	}
	return testkit.OracleGroupBy("C", prod, []string{"i", "k"}, relation.Sum, "v", "v")
}

func denseToRel(name string, m *Matrix, rAttr, cAttr string) *relation.Relation {
	rel := relation.New(name, rAttr, cAttr, "v")
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if v := m.At(i, j); v != 0 {
				rel.Append(int64(i), int64(j), v)
			}
		}
	}
	return rel
}

// assertMatrixMatchesOracle checks every non-zero of the oracle product
// appears in C and that C has no extra non-zeros.
func assertMatrixMatchesOracle(t *testing.T, c *Matrix, want *relation.Relation) {
	t.Helper()
	exp := map[[2]int64]int64{}
	for i := 0; i < want.Len(); i++ {
		row := want.Row(i)
		exp[[2]int64{row[0], row[1]}] = row[2]
	}
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			if got, w := c.At(i, j), exp[[2]int64{int64(i), int64(j)}]; got != w {
				t.Fatalf("C[%d,%d] = %d, want %d", i, j, got, w)
			}
		}
	}
}

// TestRectangleBlockDiff: the one-round block algorithm on every valid
// square cluster size dividing n.
func TestRectangleBlockDiff(t *testing.T) {
	const n = 12
	for _, p := range []int{1, 4, 9} {
		for _, seed := range []int64{1, 2, 3, 4, 5} {
			p, seed := p, seed
			t.Run(fmt.Sprintf("p%d/seed%d", p, seed), func(t *testing.T) {
				a, b := Random(n, 9, seed), Random(n, 9, seed+100)
				want := productOracle(denseToRel("A", a, "i", "j"), denseToRel("B", b, "j", "k"))
				c := mpc.NewCluster(p, seed)
				res, err := RectangleBlock(c, a, b)
				if err != nil {
					t.Fatalf("RectangleBlock: %v", err)
				}
				testkit.AssertRounds(t, c, 1)
				if res.Rounds != 1 {
					t.Errorf("Result.Rounds = %d, want 1", res.Rounds)
				}
				assertMatrixMatchesOracle(t, res.C, want)
			})
		}
	}
}

// TestSquareBlockDiff: the multi-round variant — H/g multiply rounds
// plus one combine round when g > 1.
func TestSquareBlockDiff(t *testing.T) {
	const n = 8
	configs := []struct{ h, g, p, rounds int }{
		{2, 1, 4, 2},  // H rounds, no combine
		{2, 2, 8, 2},  // H/g = 1 multiply + 1 combine
		{4, 2, 32, 3}, // H/g = 2 multiply + 1 combine
	}
	for _, cc := range configs {
		for _, seed := range []int64{1, 2, 3, 4, 5} {
			cc, seed := cc, seed
			t.Run(fmt.Sprintf("h%d_g%d_p%d/seed%d", cc.h, cc.g, cc.p, seed), func(t *testing.T) {
				a, b := Random(n, 9, seed), Random(n, 9, seed+100)
				want := productOracle(denseToRel("A", a, "i", "j"), denseToRel("B", b, "j", "k"))
				c := mpc.NewCluster(cc.p, seed)
				res, err := SquareBlock(c, a, b, cc.h, cc.g)
				if err != nil {
					t.Fatalf("SquareBlock: %v", err)
				}
				testkit.AssertRounds(t, c, cc.rounds)
				assertMatrixMatchesOracle(t, res.C, want)
			})
		}
	}
}

// TestSQLJoinAggregateDiff: the two-round relational formulation on
// dense matrices.
func TestSQLJoinAggregateDiff(t *testing.T) {
	const n = 10
	for _, p := range []int{2, 4, 8} {
		for _, seed := range []int64{1, 2, 3, 4, 5} {
			p, seed := p, seed
			t.Run(fmt.Sprintf("p%d/seed%d", p, seed), func(t *testing.T) {
				a, b := Random(n, 9, seed), Random(n, 9, seed+100)
				want := productOracle(denseToRel("A", a, "i", "j"), denseToRel("B", b, "j", "k"))
				c := mpc.NewCluster(p, seed)
				res, err := SQLJoinAggregate(c, a, b, uint64(seed))
				if err != nil {
					t.Fatalf("SQLJoinAggregate: %v", err)
				}
				testkit.AssertRounds(t, c, 2)
				if res.Rounds != 2 {
					t.Errorf("Result.Rounds = %d, want 2", res.Rounds)
				}
				assertMatrixMatchesOracle(t, res.C, want)
			})
		}
	}
}

// genSparseRect builds a rows×cols sparse matrix whose non-zero
// positions follow the testkit skew on the row index — SkewHeavy plants
// a heavy row, the sparse analogue of a heavy join key.
func genSparseRect(skew testkit.Skew, rows, cols, nnz int, seed int64) *Rect {
	pos := testkit.GenRelation("pos", []string{"r", "c"}, skew, testkit.GenConfig{Tuples: nnz, Domain: rows}, seed)
	m := NewRect(rows, cols)
	for i := 0; i < pos.Len(); i++ {
		row := pos.Row(i)
		m.Set(int(row[0])%rows, int(row[1])%cols, int64(i%7)+1)
	}
	return m
}

// TestSparseSQLMultiplyDiff sweeps the sparse relational multiply over
// cluster sizes, seeds, and non-zero-position skews.
func TestSparseSQLMultiplyDiff(t *testing.T) {
	testkit.Sweep(t, testkit.DefaultConfig(), func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		a := genSparseRect(skew, 12, 9, 40, seed)
		b := genSparseRect(skew, 9, 11, 40, seed+1000)
		want := productOracle(a.toRelation("A", "i", "j"), b.toRelation("B", "j", "k"))
		c := mpc.NewCluster(p, seed)
		got, rounds, err := SparseSQLMultiply(c, a, b, uint64(seed))
		if err != nil {
			t.Fatalf("SparseSQLMultiply: %v", err)
		}
		testkit.AssertRounds(t, c, 2)
		if rounds != 2 {
			t.Errorf("reported rounds = %d, want 2", rounds)
		}
		if !got.EqualRect(MultiplyRect(a, b)) {
			t.Error("sparse product differs from dense reference multiply")
		}
		exp := map[[2]int64]int64{}
		for i := 0; i < want.Len(); i++ {
			row := want.Row(i)
			exp[[2]int64{row[0], row[1]}] = row[2]
		}
		for i := 0; i < got.Rows; i++ {
			for j := 0; j < got.Cols; j++ {
				if v, w := got.At(i, j), exp[[2]int64{int64(i), int64(j)}]; v != w {
					t.Fatalf("C[%d,%d] = %d, want %d", i, j, v, w)
				}
			}
		}
	})
}
