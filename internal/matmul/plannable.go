package matmul

import (
	"fmt"

	"mpcquery/internal/cost"
)

// Plannables describes dense matrix multiplication to the planner.
// Matmul is the slide-91+ case study of a join whose output is dense
// (every R(i,k) pairs with every S(k,j) block); it runs on matrices,
// not relations, so the descriptor never applies to a conjunctive
// query — it appears in verbose EXPLAIN output with that explanation.
func Plannables() []cost.Plannable {
	return []cost.Plannable{
		{
			Alg:        "matmul",
			Doc:        "rectangular-block dense matrix multiply in one shuffle (slides 91-99)",
			Executable: false,
			Applies: func(st *cost.QueryStats) error {
				return fmt.Errorf("dense-matrix primitive: operates on matrices, not relations")
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				p := float64(st.P)
				return cost.Estimate{L: float64(st.IN) / p, R: 1, C: float64(st.IN)}, nil
			},
		},
	}
}
