package matmul

import (
	"testing"

	"mpcquery/internal/mpc"
)

func TestRectBasics(t *testing.T) {
	m := NewRect(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	if m.NNZ() != 1 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if m.EqualRect(NewRect(2, 3)) || !m.EqualRect(m) {
		t.Fatal("EqualRect broken")
	}
	mustPanic(t, "bad size", func() { NewRect(0, 3) })
}

func TestMultiplyRectHandChecked(t *testing.T) {
	// (2×3)·(3×2).
	a := NewRect(2, 3)
	vals := [][]int64{{1, 2, 3}, {4, 5, 6}}
	for i := range vals {
		for j, v := range vals[i] {
			a.Set(i, j, v)
		}
	}
	b := NewRect(3, 2)
	bv := [][]int64{{7, 8}, {9, 10}, {11, 12}}
	for i := range bv {
		for j, v := range bv[i] {
			b.Set(i, j, v)
		}
	}
	c := MultiplyRect(a, b)
	want := [][]int64{{58, 64}, {139, 154}}
	for i := range want {
		for j, v := range want[i] {
			if c.At(i, j) != v {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, c.At(i, j), v)
			}
		}
	}
	mustPanic(t, "dim mismatch", func() { MultiplyRect(a, a) })
}

func TestSparseSQLMultiplyRectangular(t *testing.T) {
	a := RandomRect(20, 35, 6, 1)
	b := RandomRect(35, 12, 6, 2)
	want := MultiplyRect(a, b)
	c := mpc.NewCluster(8, 1)
	got, rounds, err := SparseSQLMultiply(c, a, b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rounds)
	}
	if !got.EqualRect(want) {
		t.Fatal("rectangular product wrong")
	}
}

func TestSparseSQLMultiplySparse(t *testing.T) {
	a := RandomSparseRect(60, 60, 90, 9, 3)
	b := RandomSparseRect(60, 60, 90, 9, 4)
	want := MultiplyRect(a, b)
	c := mpc.NewCluster(8, 1)
	got, _, err := SparseSQLMultiply(c, a, b, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualRect(want) {
		t.Fatal("sparse product wrong")
	}
}

func TestSparseCommScalesWithNNZ(t *testing.T) {
	// Communication proportional to non-zeros: a 10× denser matrix
	// should communicate roughly 10× more (input side; partial products
	// grow quadratically in density).
	const n = 80
	mkRun := func(nnz int) int64 {
		a := RandomSparseRect(n, n, nnz, 9, 5)
		b := RandomSparseRect(n, n, nnz, 9, 6)
		c := mpc.NewCluster(8, 1)
		if _, _, err := SparseSQLMultiply(c, a, b, 42); err != nil {
			t.Fatal(err)
		}
		return c.Metrics().TotalComm()
	}
	sparse := mkRun(64)
	dense := mkRun(640)
	if dense < 5*sparse {
		t.Fatalf("communication should grow with nnz: sparse %d, dense %d", sparse, dense)
	}
	// And both are far below the dense-matrix element count n² = 6400
	// per matrix when nnz is small.
	if sparse > 2*int64(64+64+64*64/10) {
		t.Fatalf("sparse comm %d unexpectedly large", sparse)
	}
}

func TestSparseSQLMultiplyDimMismatch(t *testing.T) {
	a := RandomRect(5, 6, 3, 1)
	b := RandomRect(5, 6, 3, 2)
	c := mpc.NewCluster(2, 1)
	if _, _, err := SparseSQLMultiply(c, a, b, 1); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestRandomSparseRectNNZ(t *testing.T) {
	m := RandomSparseRect(10, 10, 17, 5, 7)
	if m.NNZ() != 17 {
		t.Fatalf("nnz = %d, want 17", m.NNZ())
	}
	mustPanic(t, "too many nnz", func() { RandomSparseRect(2, 2, 5, 3, 1) })
}
