package mpc

// Test-only knobs, exported for the external (package mpc_test)
// equivalence suites.

// SetReferenceDelivery switches the cluster to the historical
// single-threaded, row-by-row delivery loop. It is the referee for the
// fast path: metering and delivered fragments must be bit-for-bit
// identical between the two implementations.
func (c *Cluster) SetReferenceDelivery(v bool) { c.refDeliver = v }

// SetDeliveryWorkers pins the delivery worker count (0 restores the
// GOMAXPROCS-based default), so tests can exercise genuinely concurrent
// delivery even on single-CPU machines.
func (c *Cluster) SetDeliveryWorkers(n int) { c.deliverWorkers = n }
