package mpc

import (
	"fmt"
	"testing"

	"mpcquery/internal/relation"
)

// TestZeroArityStreamDeliveredAndMetered is the regression test for the
// dropped-tuple bug: the old delivery loop derived tuple counts as
// len(flat)/arity and skipped empty fragments, so a Send on an arity-0
// stream (a boolean/decision-query result) was neither delivered nor
// metered. Counts are now tracked per send.
func TestZeroArityStreamDeliveredAndMetered(t *testing.T) {
	c := NewCluster(4, 1)
	c.Round("vote", func(s *Server, out *Out) {
		st := out.Open("hit")
		// Every server votes once to server 0, and server 3 votes twice
		// to server 1.
		st.Send(0)
		if s.ID() == 3 {
			st.Send(1)
			st.Send(1)
		}
	})
	if got := c.Server(0).Rel("hit"); got == nil || got.Len() != 4 || got.Arity() != 0 {
		t.Fatalf("server 0 votes = %v, want 4 empty tuples", got)
	}
	if got := c.Server(1).Rel("hit"); got == nil || got.Len() != 2 {
		t.Fatalf("server 1 votes = %v, want 2 empty tuples", got)
	}
	if c.Server(2).Rel("hit") != nil {
		t.Fatal("server 2 should hold no votes")
	}
	m := c.Metrics()
	if m.TotalComm() != 6 {
		t.Fatalf("C = %d, want 6 (every empty tuple is a message)", m.TotalComm())
	}
	if m.MaxLoad() != 4 {
		t.Fatalf("L = %d, want 4", m.MaxLoad())
	}
	if m.MaxLoadWords() != 0 {
		t.Fatalf("words = %d, want 0 (empty tuples carry no values)", m.MaxLoadWords())
	}
	if got := c.Gather("hit"); got.Len() != 6 || got.Arity() != 0 {
		t.Fatalf("gather = %v, want 6 empty tuples", got)
	}
}

// TestZeroArityMixedWithRegularStreams pins that nullary and regular
// streams coexist in one round with exact combined metering.
func TestZeroArityMixedWithRegularStreams(t *testing.T) {
	c := NewCluster(3, 1)
	c.Round("mixed", func(s *Server, out *Out) {
		out.Open("data", "x").Send(0, relation.Value(s.ID()))
		out.Open("flag").Send(0)
	})
	m := c.Metrics()
	if m.TotalComm() != 6 {
		t.Fatalf("C = %d, want 6 (3 data + 3 flags)", m.TotalComm())
	}
	if m.MaxLoad() != 6 || m.MaxLoadWords() != 3 {
		t.Fatalf("L = %d words = %d, want 6 tuples / 3 words", m.MaxLoad(), m.MaxLoadWords())
	}
	if c.Server(0).Rel("flag").Len() != 3 || c.Server(0).Rel("data").Len() != 3 {
		t.Fatal("mixed delivery lost tuples")
	}
}

// TestOpenReopenValidatesNames is the regression test for the schema
// merge bug: reopening a stream with the same arity but different
// attribute names used to silently merge two schemas into one relation.
func TestOpenReopenValidatesNames(t *testing.T) {
	c := NewCluster(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reopen with different attribute names")
		}
	}()
	c.Round("bad", func(s *Server, out *Out) {
		out.Open("A", "x", "y").Send(0, 1, 2)
		out.Open("A", "x", "z").Send(0, 3, 4)
	})
}

// TestOpenReopenSameSchemaAppends: a legitimate reopen with the
// identical schema keeps appending to the same stream.
func TestOpenReopenSameSchemaAppends(t *testing.T) {
	c := NewCluster(2, 1)
	c.Round("ok", func(s *Server, out *Out) {
		out.Open("A", "x", "y").Send(0, 1, 2)
		out.Open("A", "x", "y").Send(0, 3, 4)
	})
	if got := c.Server(0).Rel("A").Len(); got != 4 {
		t.Fatalf("A len = %d, want 4", got)
	}
}

// TestGatherValidatesFragmentSchemas is the regression test for the
// garbage-concatenation bug: Gather took the schema from the first
// non-nil fragment and appended the rest unchecked.
func TestGatherValidatesFragmentSchemas(t *testing.T) {
	c := NewCluster(2, 1)
	c.Server(0).Put(relation.FromRows("X", []string{"a", "b"}, [][]relation.Value{{1, 2}}))
	c.Server(1).Put(relation.FromRows("X", []string{"b", "a"}, [][]relation.Value{{3, 4}}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched fragment schemas")
		}
	}()
	c.Gather("X")
}

// TestDeliverValidatesAttrNames: delivering a stream into an existing
// relation of the same arity but different attribute names panics
// rather than merging schemas.
func TestDeliverValidatesAttrNames(t *testing.T) {
	c := NewCluster(2, 1)
	c.Round("r1", func(s *Server, out *Out) {
		out.Open("A", "x").Send(0, 1)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on attr-name mismatch at delivery")
		}
	}()
	c.Round("r2", func(s *Server, out *Out) {
		out.Open("A", "y").Send(0, 2)
	})
}

// TestBufferPoolReuseAcrossRounds pins the pooling contract: the same
// stream object (and its per-destination slabs) is recycled across
// consecutive rounds instead of being reallocated, and reuse is
// invisible to delivered results.
func TestBufferPoolReuseAcrossRounds(t *testing.T) {
	c := NewCluster(4, 1)
	send := func(s *Server, out *Out) {
		st := out.Open("A", "x")
		for i := 0; i < 100; i++ {
			st.Send(i%s.P(), relation.Value(i))
		}
	}
	c.Round("r1", send)
	st1 := c.outs[0].spare["A"]
	if st1 == nil {
		t.Fatal("stream not parked in spare pool after round")
	}
	cap1 := cap(st1.perDst[0])
	if cap1 == 0 {
		t.Fatal("parked stream lost its slab capacity")
	}
	if len(st1.perDst[0]) != 0 || st1.counts[0] != 0 {
		t.Fatal("parked stream not reset")
	}
	c.Round("r2", send)
	st2 := c.outs[0].spare["A"]
	if st1 != st2 {
		t.Fatal("stream was reallocated instead of reused")
	}
	if cap(st2.perDst[0]) < cap1 {
		t.Fatal("slab capacity shrank across rounds")
	}
	if got := c.TotalLen("A"); got != 800 {
		t.Fatalf("total after 2 rounds = %d, want 800", got)
	}
	// Reuse under a different schema for the same stream name.
	c.DeleteAll("A")
	c.Round("r3", func(s *Server, out *Out) {
		out.Open("A", "u", "v").Send(0, 1, 2)
	})
	got := c.Server(0).Rel("A")
	if got.Arity() != 2 || got.Len() != 4 {
		t.Fatalf("schema-changed reuse delivered %v", got)
	}
}

// TestConcurrentDeliveryMatchesReference drives the concurrent fast
// path (workers forced > 1 so it exercises real concurrency even on
// one CPU) against the row-by-row reference loop on a randomized
// multi-round program, asserting identical metering and bit-for-bit
// identical fragments. Under -race this is also the delivery race test.
func TestConcurrentDeliveryMatchesReference(t *testing.T) {
	program := func(c *Cluster) {
		for r := 0; r < 4; r++ {
			c.Round(fmt.Sprintf("r%d", r), func(s *Server, out *Out) {
				st := out.Open("A", "x", "src")
				for i := 0; i < 300; i++ {
					st.Send(s.Rng().Intn(s.P()), relation.Value(i), relation.Value(s.ID()))
				}
				if s.ID()%2 == 0 {
					out.Open("B", "w").Broadcast(relation.Value(s.ID()))
				}
				out.Open("tick").Send(r % s.P())
			})
		}
	}
	fast := NewCluster(24, 99)
	fast.SetDeliveryWorkers(8)
	program(fast)
	ref := NewCluster(24, 99)
	ref.SetReferenceDelivery(true)
	program(ref)
	assertClustersEqual(t, fast, ref)
}

// assertClustersEqual asserts identical round metrics and bit-for-bit
// identical per-server fragments between two clusters.
func assertClustersEqual(t *testing.T, a, b *Cluster) {
	t.Helper()
	as, bs := a.Metrics().RoundStats(), b.Metrics().RoundStats()
	if len(as) != len(bs) {
		t.Fatalf("round counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].Name != bs[i].Name {
			t.Fatalf("round %d name %q vs %q", i, as[i].Name, bs[i].Name)
		}
		for d := range as[i].Recv {
			if as[i].Recv[d] != bs[i].Recv[d] || as[i].RecvWords[d] != bs[i].RecvWords[d] {
				t.Fatalf("round %q server %d: recv %d/%d words %d/%d",
					as[i].Name, d, as[i].Recv[d], bs[i].Recv[d], as[i].RecvWords[d], bs[i].RecvWords[d])
			}
		}
	}
	for i := 0; i < a.P(); i++ {
		sa, sb := a.Server(i), b.Server(i)
		na, nb := sa.RelNames(), sb.RelNames()
		if len(na) != len(nb) {
			t.Fatalf("server %d holds %v vs %v", i, na, nb)
		}
		for j, name := range na {
			if name != nb[j] {
				t.Fatalf("server %d holds %v vs %v", i, na, nb)
			}
			ra, rb := sa.Rel(name), sb.Rel(name)
			if !attrsEqual(ra.Attrs(), rb.Attrs()) || ra.Len() != rb.Len() {
				t.Fatalf("server %d rel %s: %v/%d vs %v/%d", i, name, ra.Attrs(), ra.Len(), rb.Attrs(), rb.Len())
			}
			for k := 0; k < ra.Len(); k++ {
				wa, wb := ra.Row(k), rb.Row(k)
				for x := range wa {
					if wa[x] != wb[x] {
						t.Fatalf("server %d rel %s row %d differs: %v vs %v", i, name, k, wa, wb)
					}
				}
			}
		}
	}
}

// TestMixSeedDistinct pins the splitmix64 seeding fix: the old one-shift
// xor mix correlated RNG streams across nearby (seed, i) pairs; the full
// finalizer must give every (seed, server) pair a distinct seed.
func TestMixSeedDistinct(t *testing.T) {
	seen := make(map[int64][2]int, 64*64)
	for seed := 0; seed < 64; seed++ {
		for i := 0; i < 64; i++ {
			m := mixSeed(int64(seed), i)
			if prev, ok := seen[m]; ok {
				t.Fatalf("mixSeed collision: (seed=%d,i=%d) and (seed=%d,i=%d) -> %d",
					prev[0], prev[1], seed, i, m)
			}
			seen[m] = [2]int{seed, i}
		}
	}
	// The servers' first draws should also be (near-)distinct: with the
	// old mix, consecutive seeds produced identical low bits. Allow a
	// tiny number of birthday collisions over the 31-bit draw space.
	draws := make(map[int64]int)
	collisions := 0
	for seed := 0; seed < 32; seed++ {
		c := NewCluster(32, int64(seed))
		for i := 0; i < 32; i++ {
			v := c.Server(i).Rng().Int63()
			if _, ok := draws[v]; ok {
				collisions++
			}
			draws[v] = 1
		}
	}
	if collisions > 2 {
		t.Fatalf("%d identical first draws across 1024 (seed,server) pairs", collisions)
	}
}
