package mpc

import (
	"reflect"
	"testing"

	"mpcquery/internal/relation"
)

// TestQuantileNearestRank pins the nearest-rank quantile definition:
// Quantile(q) is the smallest per-server load with at least ⌈q·p⌉
// servers at or below it.
func TestQuantileNearestRank(t *testing.T) {
	tests := []struct {
		name string
		recv []int64
		q    float64
		want int64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []int64{7}, 0.99, 7},
		{"min", []int64{3, 1, 2}, 0, 1},
		{"max", []int64{3, 1, 2}, 1, 3},
		// 10 servers, loads 1..10: p50 = ⌈5⌉th = 5, p90 = ⌈9⌉th = 9,
		// p99 = ⌈9.9⌉th = 10th = 10. Rank truncation would give p99 = 9.
		{"p50 of 1..10", []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 0.5, 5},
		{"p90 of 1..10", []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 0.9, 9},
		{"p99 of 1..10", []int64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}, 0.99, 10},
		// 4 servers: p99 must be the max, not the second-largest.
		{"p99 of 4", []int64{4, 2, 3, 1}, 0.99, 4},
		// Odd count median: ⌈0.5·5⌉ = 3rd smallest.
		{"median of 5", []int64{50, 10, 30, 20, 40}, 0.5, 30},
		// q between ranks rounds up: ⌈0.25·4⌉ = 1st smallest.
		{"p25 of 4", []int64{4, 3, 2, 1}, 0.25, 1},
		{"p26 of 4", []int64{4, 3, 2, 1}, 0.26, 2},
	}
	for _, tc := range tests {
		rs := RoundStat{Name: tc.name, Recv: tc.recv}
		if got := rs.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%g) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestP99Recv pins the tail statistic used by the trace layer's skew
// events: on small clusters (including p = 1) nearest-rank p99 is the
// maximum, and an idle round reports 0.
func TestP99Recv(t *testing.T) {
	tests := []struct {
		name string
		recv []int64
		want int64
	}{
		{"p=1", []int64{42}, 42},
		{"p=1 idle", []int64{0}, 0},
		{"all-zero", []int64{0, 0, 0, 0}, 0},
		{"small cluster max", []int64{5, 9, 1}, 9},
		// 100 servers: 99 at load 1, one at 50 — ⌈0.99·100⌉ = 99th
		// smallest is still 1; the heavy server is beyond p99.
		{"tail beyond p99", append(make99(1), 50), 1},
	}
	for _, tc := range tests {
		rs := RoundStat{Name: tc.name, Recv: tc.recv}
		if got := rs.P99Recv(); got != tc.want {
			t.Errorf("%s: P99Recv = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func make99(v int64) []int64 {
	xs := make([]int64, 99)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

// TestGiniRecv pins the imbalance coefficient: 0 for balanced, empty,
// all-zero and single-server rounds; approaching 1 - 1/p when one
// server receives everything.
func TestGiniRecv(t *testing.T) {
	tests := []struct {
		name string
		recv []int64
		want float64
	}{
		{"empty", nil, 0},
		{"p=1", []int64{42}, 0},
		{"p=1 idle", []int64{0}, 0},
		{"all-zero", []int64{0, 0, 0}, 0},
		{"balanced", []int64{7, 7, 7, 7}, 0},
		// One of four servers receives everything: G = (p-1)/p = 0.75.
		{"one hot of 4", []int64{0, 0, 0, 100}, 0.75},
		// Loads 1,2,3,4: G = 2·(1·1+2·2+3·3+4·4)/(4·10) - 5/4 = 0.25.
		{"1..4", []int64{4, 1, 3, 2}, 0.25},
	}
	for _, tc := range tests {
		rs := RoundStat{Name: tc.name, Recv: tc.recv}
		if got := rs.GiniRecv(); got != tc.want {
			t.Errorf("%s: GiniRecv = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Monotonicity spot check: concentrating load increases Gini.
	lo := (&RoundStat{Recv: []int64{5, 5, 5, 5}}).GiniRecv()
	mid := (&RoundStat{Recv: []int64{2, 4, 6, 8}}).GiniRecv()
	hi := (&RoundStat{Recv: []int64{0, 0, 2, 18}}).GiniRecv()
	if !(lo < mid && mid < hi) {
		t.Errorf("Gini not ordered: balanced %v, mild %v, extreme %v", lo, mid, hi)
	}
}

// TestMetricsWindows exercises the per-algorithm windowing accessors:
// an algorithm that starts after `from = Rounds()` must see only its
// own rounds in RoundsSince/MaxLoadSince/StatsSince.
func TestMetricsWindows(t *testing.T) {
	c := NewCluster(3, 1)
	c.Round("setup", func(s *Server, out *Out) {
		if s.ID() == 0 {
			st := out.Open("A", "x")
			for i := 0; i < 9; i++ {
				st.Send(1, relation.Value(i))
			}
		}
	})
	from := c.Metrics().Rounds()
	c.Round("alg:one", func(s *Server, out *Out) {
		out.Open("B", "x").Send(s.ID(), 1)
	})
	c.Round("alg:two", func(s *Server, out *Out) {
		if s.ID() == 0 {
			st := out.Open("C", "x")
			st.Send(2, 1)
			st.Send(2, 2)
		}
	})
	m := c.Metrics()
	if got := m.RoundsSince(from); got != 2 {
		t.Fatalf("RoundsSince = %d, want 2", got)
	}
	// The setup round's load of 9 must not leak into the window.
	if got := m.MaxLoadSince(from); got != 2 {
		t.Fatalf("MaxLoadSince = %d, want 2", got)
	}
	if got := m.MaxLoad(); got != 9 {
		t.Fatalf("MaxLoad = %d, want 9", got)
	}
	wantNames := []string{"setup", "alg:one", "alg:two"}
	if got := m.RoundNames(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("RoundNames = %v, want %v", got, wantNames)
	}
	if got := len(m.StatsSince(from)); got != 2 {
		t.Fatalf("StatsSince length = %d, want 2", got)
	}
	// Out-of-range windows clamp instead of panicking.
	if got := m.RoundsSince(-1); got != 3 {
		t.Fatalf("RoundsSince(-1) = %d, want 3", got)
	}
	if got := m.RoundsSince(99); got != 0 {
		t.Fatalf("RoundsSince(99) = %d, want 0", got)
	}
}
