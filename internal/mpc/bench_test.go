package mpc

import (
	"fmt"
	"testing"

	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Delivery-path micro-benchmarks. The workload is a shuffle: a fixed
// cluster-wide tuple volume, split evenly across source servers, each
// source spraying its share round-robin over all destinations — the
// access pattern of every hash-partition round, and the regime where
// per-(src,dst) chunks shrink as p grows (4 tuples per chunk at p=256).
const (
	benchTuples = 1 << 17 // cluster-wide tuples per round
	benchArity  = 2
)

var benchPs = []int{8, 64, 256}

// benchFill opens one stream on out and sends src's share of the
// shuffle to all destinations.
func benchFill(s *Server, out *Out) {
	st := out.Open("M", "a", "b")
	per := benchTuples / s.P()
	for i := 0; i < per; i++ {
		st.Send((i+s.ID())%s.P(), relation.Value(i), relation.Value(s.ID()))
	}
}

// BenchmarkRound times a full communication round: parallel compute
// (the send loop) plus delivery and metering.
func BenchmarkRound(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			c := NewCluster(p, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Round("shuffle", benchFill)
				b.StopTimer()
				c.DeleteAll("M")
				c.ResetMetrics()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRoundTraced measures what tracing costs on the shuffle
// round. "off" is a cluster with no recorder attached — the default
// path every production run takes, which the benchcheck gate holds to
// within 5% of the committed BenchmarkRound baseline. "on" attaches a
// recorder (reset between iterations so event slices don't grow
// without bound) and shows the price of full event capture.
func BenchmarkRoundTraced(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		for _, p := range benchPs {
			b.Run(fmt.Sprintf("%s/p%d", mode, p), func(b *testing.B) {
				c := NewCluster(p, 1)
				var rec *trace.Recorder
				if mode == "on" {
					rec = trace.NewRecorder()
					c.SetTracer(rec)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Round("shuffle", benchFill)
					b.StopTimer()
					c.DeleteAll("M")
					c.ResetMetrics()
					if rec != nil {
						rec.Reset()
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkDeliver isolates the delivery path: outs are built once and
// reused (deliver only reads them), so the timed region is exactly
// "move every fragment into its destination server and meter it".
func BenchmarkDeliver(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			c := NewCluster(p, 1)
			outs := benchOuts(c)
			for i := 0; i < p; i++ {
				benchFill(c.servers[i], outs[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.deliver("shuffle", outs)
				b.StopTimer()
				c.DeleteAll("M")
				c.ResetMetrics()
				b.StartTimer()
			}
		})
	}
}

// benchOuts returns the cluster's pooled round buffers, exactly the
// ones Round would hand to compute.
func benchOuts(c *Cluster) []*Out {
	return c.roundOuts()
}
