// The transport layer: how a committed round's tuples physically move.
//
// Everything above this file — algorithms, the planner, the chaos
// recovery driver, the trace layer — speaks in rounds of fragments: one
// fragment is everything one source server sent one destination on one
// stream. The Transport interface is the seam between that model and
// the machinery that moves the bytes. The built-in engine (the default,
// LocalTransport) moves fragments between goroutines in one process;
// internal/mpcnet ships the same fragments over real TCP sockets. The
// cluster guarantees that everything observable — delivered fragment
// contents and order, the (L, r, C) metering, trace events — is a pure
// function of the round's outs, so any conforming transport produces
// bit-identical simulations.
//
// A conforming Transport must:
//
//  1. land every non-empty fragment exactly once (chunking one fragment
//     into several consecutive Land calls is allowed);
//  2. per destination, land fragments in canonical order — source
//     server ascending, then stream creation order, then send order —
//     and never call Land concurrently for the same destination;
//  3. not retain fragment slices after Deliver returns: the round
//     buffers they view are pooled and reused by the next round;
//  4. reject rounds whose sources disagree on a stream's schema
//     (ValidateStreams implements the exact check the local engine
//     runs).
//
// Delivered fragments are isolated: Land copies tuples into the
// destination relation, so no two servers ever share tuple storage and
// mutating a received fragment cannot affect another server, the source
// buffers, or a later round. The local engine provides the same
// guarantee (its bulk appends copy too); transport_test.go and
// aliasing_test.go pin both.

package mpc

import (
	"fmt"

	"mpcquery/internal/relation"
)

// Transport moves one round's fragments into the destination servers.
// Implementations are attached with (*Cluster).SetTransport and must
// satisfy the contract documented at the top of this file.
type Transport interface {
	// Deliver ships every fragment of the round described by v and
	// lands each exactly once via v.Land. A non-nil error aborts the
	// round: the cluster panics, since partial delivery would leave
	// server state inconsistent with the metering.
	Deliver(v *RoundView) error
	// Close releases transport resources (connections, workers). The
	// cluster never calls Close; the transport's creator owns it.
	Close() error
}

// SetTransport routes round delivery through t; nil restores the
// built-in in-process engine. Attach before running rounds. The cluster
// does not close the transport — its creator does, after the last
// cluster using it is done.
func (c *Cluster) SetTransport(t Transport) { c.transport = t }

// Transport returns the attached transport, or nil when the built-in
// engine delivers.
func (c *Cluster) Transport() Transport { return c.transport }

// localTransport adapts the built-in in-process delivery engine to the
// Transport interface. SetTransport(LocalTransport()) is observably
// identical to the default nil transport: both run the same fast path.
type localTransport struct{}

// LocalTransport returns the built-in in-process delivery engine as a
// Transport value — the explicit spelling of the default backend, used
// where a backend axis wants both ends named (testkit, mpcrun).
func LocalTransport() Transport { return localTransport{} }

func (localTransport) Deliver(v *RoundView) error {
	v.c.deliverLocal(v.name, v.outs, v.recv, v.recvWords)
	return nil
}

func (localTransport) Close() error { return nil }

// RoundView is the transport-facing view of one round: an enumeration
// of the round's fragments in canonical order, plus the Land sink that
// commits them into destination servers with exact metering. A view is
// only valid during the Deliver call it was created for.
type RoundView struct {
	c         *Cluster
	name      string
	outs      []*Out
	recv      []int64
	recvWords []int64
}

// P returns the cluster size; destinations and sources are in [0, P).
func (v *RoundView) P() int { return v.c.p }

// Name returns the round's label (metric/trace round name).
func (v *RoundView) Name() string { return v.name }

// Streams returns how many streams source src opened this round.
func (v *RoundView) Streams(src int) int { return len(v.outs[src].order) }

// Stream returns source src's i-th stream in creation order.
func (v *RoundView) Stream(src, i int) StreamView {
	return StreamView{st: v.outs[src].streams[v.outs[src].order[i]]}
}

// StreamView is a read-only view of one source's stream: its schema and
// its per-destination fragments.
type StreamView struct{ st *stream }

// Name returns the stream's relation name.
func (sv StreamView) Name() string { return sv.st.name }

// Attrs returns the stream's schema. Read-only; do not mutate.
func (sv StreamView) Attrs() []string { return sv.st.attrs }

// Fragment returns the flat row-major slab and tuple count this stream
// addressed to dst. Empty fragments return (nil-or-empty, 0) and must
// not be landed. The slab is read-only and only valid during Deliver.
func (sv StreamView) Fragment(dst int) ([]relation.Value, int64) {
	return sv.st.perDst[dst], sv.st.counts[dst]
}

// ValidateStreams performs the cross-source schema check of the local
// engine's prepass: every source that opens a stream of a given name
// must declare the identical schema, and a stream must not land into an
// existing destination relation of a different schema. Transports call
// it before shipping so a malformed round fails identically on every
// backend, before any tuple moves.
func (v *RoundView) ValidateStreams() error {
	attrsByName := map[string][]string{}
	for src := 0; src < v.c.p; src++ {
		out := v.outs[src]
		for _, stName := range out.order {
			st := out.streams[stName]
			if prev, ok := attrsByName[stName]; !ok {
				attrsByName[stName] = st.attrs
			} else if !attrsEqual(prev, st.attrs) {
				return fmt.Errorf("round %q stream %s declared with attrs %v by one server and %v by another",
					v.name, stName, prev, st.attrs)
			}
		}
	}
	for stName, attrs := range attrsByName {
		for dst := 0; dst < v.c.p; dst++ {
			if dstRel := v.c.servers[dst].rels[stName]; dstRel != nil && !attrsEqual(dstRel.Attrs(), attrs) {
				return fmt.Errorf("round %q delivers %s with attrs %v into existing attrs %v",
					v.name, stName, attrs, dstRel.Attrs())
			}
		}
	}
	return nil
}

// Land commits tuples tuples of the named stream into destination dst,
// creating the receiving relation on first delivery, validating its
// schema, copying the flat slab, and metering the received load. flat
// must hold exactly tuples×len(attrs) values (empty for arity 0).
// Chunked landings of one fragment are allowed; callers must keep
// chunks consecutive and must not call Land concurrently for one dst.
func (v *RoundView) Land(dst int, name string, attrs []string, flat []relation.Value, tuples int64) error {
	if dst < 0 || dst >= v.c.p {
		return fmt.Errorf("round %q: land into server %d of %d", v.name, dst, v.c.p)
	}
	if tuples <= 0 {
		return fmt.Errorf("round %q stream %s: land %d tuples", v.name, name, tuples)
	}
	if int64(len(flat)) != tuples*int64(len(attrs)) {
		return fmt.Errorf("round %q stream %s: %d words for %d tuples of arity %d",
			v.name, name, len(flat), tuples, len(attrs))
	}
	dstRel := v.c.servers[dst].rels[name]
	if dstRel == nil {
		seen := make(map[string]bool, len(attrs))
		for _, a := range attrs {
			if seen[a] {
				return fmt.Errorf("round %q stream %s: duplicate attribute %q", v.name, name, a)
			}
			seen[a] = true
		}
		dstRel = relation.New(name, attrs...)
		v.c.servers[dst].rels[name] = dstRel
	} else if !attrsEqual(dstRel.Attrs(), attrs) {
		return fmt.Errorf("round %q delivers %s with attrs %v into existing attrs %v",
			v.name, name, attrs, dstRel.Attrs())
	}
	dstRel.AppendFlat(flat, int(tuples))
	v.recv[dst] += tuples
	v.recvWords[dst] += int64(len(flat))
	return nil
}
