package mpc_test

import (
	"fmt"
	"strings"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/trace"
)

// portableTransport is a delivery backend written purely against the
// exported Transport contract — RoundView enumeration in canonical
// per-destination order, chunked Land calls — with no access to mpc
// internals. It exists to prove the interface is sufficient: any
// conforming transport must reproduce the local engine bit for bit,
// and this is the minimal conforming transport.
type portableTransport struct {
	// chunk is the maximum tuples per Land call (0 = whole fragments).
	chunk int64
}

func (pt portableTransport) Deliver(v *mpc.RoundView) error {
	if err := v.ValidateStreams(); err != nil {
		return err
	}
	for dst := 0; dst < v.P(); dst++ {
		for src := 0; src < v.P(); src++ {
			for i := 0; i < v.Streams(src); i++ {
				sv := v.Stream(src, i)
				flat, n := sv.Fragment(dst)
				if n == 0 {
					continue
				}
				arity := int64(len(sv.Attrs()))
				for off := int64(0); off < n; {
					k := pt.chunk
					if k <= 0 || k > n-off {
						k = n - off
					}
					var part []relation.Value
					if arity > 0 {
						part = flat[off*arity : (off+k)*arity]
					}
					if err := v.Land(dst, sv.Name(), sv.Attrs(), part, k); err != nil {
						return err
					}
					off += k
				}
			}
		}
	}
	return nil
}

func (portableTransport) Close() error { return nil }

// transportWorkload is the scripted multi-round program of the
// equivalence suites: hash partition, RNG re-route with an arity-0
// decision stream, and a sampled broadcast — covering bulk fragments,
// randomness, nullary streams, and fan-out.
func transportWorkload(c *mpc.Cluster, input *relation.Relation) {
	c.ScatterRoundRobin(input)
	c.Round("partition", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("R")
		st := out.Open("H", "x", "y", "z")
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			st.SendRow(relation.Bucket(relation.HashRow(row, []int{0}, 42), s.P()), row)
		}
	})
	c.Round("reroute", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("H")
		if frag == nil {
			return
		}
		st := out.Open("G", "x", "y", "z")
		done := out.Open("done")
		for i := 0; i < frag.Len(); i++ {
			st.SendRow(s.Rng().Intn(s.P()), frag.Row(i))
		}
		done.Send(0)
	})
	c.Round("sample", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("G")
		if frag == nil || frag.Len() == 0 {
			return
		}
		out.Open("S", "x", "y", "z").Broadcast(frag.Row(s.Rng().Intn(frag.Len()))...)
	})
}

// assertSameClusters asserts the full observable state of two runs is
// identical: per-round per-server metering, per-server fragments of
// every named relation (bit for bit, including row order), and the
// recorded trace events.
func assertSameClusters(t *testing.T, a, b *mpc.Cluster, ra, rb *trace.Recorder, names []string) {
	t.Helper()
	as, bs := a.Metrics().RoundStats(), b.Metrics().RoundStats()
	if len(as) != len(bs) {
		t.Fatalf("rounds %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].Name != bs[i].Name {
			t.Fatalf("round %d: %q vs %q", i, as[i].Name, bs[i].Name)
		}
		for d := range as[i].Recv {
			if as[i].Recv[d] != bs[i].Recv[d] || as[i].RecvWords[d] != bs[i].RecvWords[d] {
				t.Fatalf("round %q server %d: (%d,%d) vs (%d,%d)", as[i].Name, d,
					as[i].Recv[d], as[i].RecvWords[d], bs[i].Recv[d], bs[i].RecvWords[d])
			}
		}
	}
	for _, name := range names {
		for i := 0; i < a.P(); i++ {
			fa, fb := a.Server(i).Rel(name), b.Server(i).Rel(name)
			if (fa == nil) != (fb == nil) {
				t.Fatalf("%s server %d: fragment present %v vs %v", name, i, fa != nil, fb != nil)
			}
			if fa == nil {
				continue
			}
			if fa.Len() != fb.Len() {
				t.Fatalf("%s server %d: %d vs %d tuples", name, i, fa.Len(), fb.Len())
			}
			for r := 0; r < fa.Len(); r++ {
				ga, gb := fa.Row(r), fb.Row(r)
				for j := range ga {
					if ga[j] != gb[j] {
						t.Fatalf("%s server %d row %d: %v vs %v", name, i, r, ga, gb)
					}
				}
			}
		}
	}
	ea, eb := ra.Events(), rb.Events()
	if len(ea) != len(eb) {
		t.Fatalf("trace: %d vs %d events", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("trace event %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// TestTransportEquivalence proves the transport seam changes nothing
// observable: the default engine, the explicit LocalTransport, and the
// portable RoundView-only transport (whole-fragment and chunked) all
// produce identical fragments, metering, and traces on the full skew
// matrix.
func TestTransportEquivalence(t *testing.T) {
	backends := []struct {
		name string
		tr   mpc.Transport
	}{
		{"local-explicit", mpc.LocalTransport()},
		{"portable", portableTransport{}},
		{"portable-chunk3", portableTransport{chunk: 3}},
	}
	for _, skew := range testkit.AllSkews {
		for _, p := range []int{2, 7} {
			skew, p := skew, p
			t.Run(fmt.Sprintf("%s/p%d", skew, p), func(t *testing.T) {
				input := testkit.GenRelation("R", []string{"x", "y", "z"}, skew, testkit.GenConfig{Tuples: 300}, 11)
				base := mpc.NewCluster(p, 11)
				baseRec := trace.NewRecorder()
				base.SetTracer(baseRec)
				transportWorkload(base, input)
				for _, be := range backends {
					be := be
					t.Run(be.name, func(t *testing.T) {
						c := mpc.NewCluster(p, 11)
						rec := trace.NewRecorder()
						c.SetTracer(rec)
						c.SetTransport(be.tr)
						transportWorkload(c, input)
						assertSameClusters(t, base, c, baseRec, rec, []string{"H", "G", "S", "done"})
					})
				}
			})
		}
	}
}

// failingTransport errors on every delivery.
type failingTransport struct{}

func (failingTransport) Deliver(*mpc.RoundView) error { return fmt.Errorf("wire unplugged") }
func (failingTransport) Close() error                 { return nil }

// TestTransportFailurePanics: a transport error must abort the round
// loudly — committing partial state would desynchronize servers and
// metering.
func TestTransportFailurePanics(t *testing.T) {
	c := mpc.NewCluster(2, 1)
	c.SetTransport(failingTransport{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("round with failing transport did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "wire unplugged") {
			t.Fatalf("panic %v does not carry the transport error", r)
		}
	}()
	c.Round("r", func(s *mpc.Server, out *mpc.Out) {
		out.Open("X", "a").Send(0, 1)
	})
}

// TestValidateStreamsConflict: ValidateStreams must reject rounds whose
// sources disagree on a stream schema — the same malformed round the
// local prepass panics on — before any tuple ships.
func TestValidateStreamsConflict(t *testing.T) {
	c := mpc.NewCluster(2, 1)
	c.SetTransport(portableTransport{})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("schema-conflicting round did not panic through the transport")
		}
	}()
	c.Round("conflict", func(s *mpc.Server, out *mpc.Out) {
		if s.ID() == 0 {
			out.Open("X", "a").Send(1, 1)
		} else {
			out.Open("X", "b").Send(0, 2)
		}
	})
}

// TestLandValidation: Land must reject out-of-range destinations,
// word/tuple mismatches, and schema conflicts with existing relations.
func TestLandValidation(t *testing.T) {
	bad := []struct {
		name string
		tr   mpc.Transport
	}{
		{"bad-dst", transportFunc(func(v *mpc.RoundView) error {
			return v.Land(v.P(), "X", []string{"a"}, []relation.Value{1}, 1)
		})},
		{"word-mismatch", transportFunc(func(v *mpc.RoundView) error {
			return v.Land(0, "X", []string{"a"}, []relation.Value{1, 2}, 1)
		})},
		{"zero-tuples", transportFunc(func(v *mpc.RoundView) error {
			return v.Land(0, "X", []string{"a"}, nil, 0)
		})},
		{"dup-attrs", transportFunc(func(v *mpc.RoundView) error {
			return v.Land(0, "Y", []string{"a", "a"}, []relation.Value{1, 2}, 1)
		})},
	}
	for _, tc := range bad {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := mpc.NewCluster(2, 1)
			c.SetTransport(tc.tr)
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("invalid Land did not abort the round")
				}
			}()
			c.Round("r", func(s *mpc.Server, out *mpc.Out) {
				out.Open("X", "a").Send(0, 1)
			})
		})
	}
}

// transportFunc adapts a function to the Transport interface.
type transportFunc func(*mpc.RoundView) error

func (f transportFunc) Deliver(v *mpc.RoundView) error { return f(v) }
func (transportFunc) Close() error                     { return nil }
