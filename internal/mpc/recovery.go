// Fault injection and round recovery.
//
// The simulator models imperfect execution the way a deterministic
// simulator can: faults are drawn from a seeded schedule (a
// FaultInjector, typically a chaos.Schedule), injected at the delivery
// boundary of every round, and repaired by a bounded replay loop before
// the round commits. The protocol is the classic checkpoint/replay
// design of shared-nothing engines:
//
//   - checkpoint: the source-side round buffers (Out) are retained until
//     the round commits, so any fragment can be retransmitted;
//   - crash detection: a server that is down during a delivery attempt
//     receives nothing and loses its round inbox; it restarts from its
//     last round-boundary state before the next attempt;
//   - exactly-once: the driver tracks which fragments have landed.
//     Wire duplicates are detected and discarded; dropped and
//     crash-wiped fragments are retransmitted on the next attempt, with
//     exponential backoff metered (never slept) as simulated delay.
//
// A round either converges — every fragment accepted exactly once, then
// committed through the normal delivery engine, so the post-round
// server state and the (L, r, C) metering are bit-for-bit those of the
// fault-free run, with the recovery activity recorded separately in
// RoundStat.Chaos — or it exhausts the replay budget and fails loudly:
// Round panics with a *RecoveryFailure and the cluster is poisoned
// (Gather, TotalLen, MaxFragLen and further rounds refuse to serve
// possibly-partial state).

package mpc

import "fmt"

// FaultFate is the fate of one fragment transmission during one
// delivery attempt.
type FaultFate int

// Fragment fates.
const (
	// FateDeliver lands the fragment normally.
	FateDeliver FaultFate = iota
	// FateDrop loses the fragment in transit; it stays pending and is
	// retransmitted on the next attempt.
	FateDrop
	// FateDuplicate lands the fragment twice; the receiver-side
	// exactly-once filter discards the second copy.
	FateDuplicate
)

// FaultInjector supplies a deterministic per-round fault schedule. All
// methods must be pure functions of their arguments (plus the
// injector's own immutable configuration) and safe for concurrent use:
// equal inputs must yield equal faults, or simulations stop being
// reproducible. Rounds are identified by their zero-based index in the
// cluster's metrics (so ResetMetrics also restarts the schedule).
type FaultInjector interface {
	// StragglerUnits returns the simulated delay units server suffers
	// in round (0 = no straggling). Purely metered, never slept.
	StragglerUnits(round, server int) int64
	// CrashedAt reports whether server is down during delivery attempt
	// attempt of round: it receives nothing during the attempt and its
	// round inbox is wiped.
	CrashedAt(round, attempt, server int) bool
	// FragmentFate decides what happens to the fragment that source src
	// addressed to dst on its streamIdx-th stream (creation order)
	// during the given attempt.
	FragmentFate(round, attempt, src, dst, streamIdx int) FaultFate
	// MaxAttempts is the per-round replay budget (values < 1 are read
	// as 1). A round whose fragments have not all landed after
	// MaxAttempts delivery attempts fails recovery.
	MaxAttempts() int
	// BackoffUnits returns the simulated delay the driver waits before
	// replay attempt (≥ 1). Metered, never slept.
	BackoffUnits(attempt int) int64
}

// SetFaultInjector attaches a fault schedule to the cluster; nil
// disables injection. With an injector attached, every Round runs the
// recovery protocol documented at the top of this file; with none, the
// delivery path is exactly the fault-free engine.
func (c *Cluster) SetFaultInjector(f FaultInjector) { c.faults = f }

// Failed returns the recovery failure that poisoned the cluster, or
// nil if every round so far committed.
func (c *Cluster) Failed() *RecoveryFailure { return c.failed }

// RecoveryFailure reports a round whose fragments could not all be
// delivered within the replay budget. It is the panic value of the
// failing Round call and satisfies error.
type RecoveryFailure struct {
	// Round is the zero-based index of the failed round; Name its label.
	Round int
	Name  string
	// Attempts is the number of delivery attempts consumed (the full
	// replay budget), Lost the fragments still undelivered after them.
	Attempts int
	Lost     int
	// Crashed lists the servers that were down during the final attempt.
	Crashed []int
}

func (f *RecoveryFailure) Error() string {
	return fmt.Sprintf("mpc: round %d %q: recovery failed after %d attempts: %d fragments undelivered (servers down: %v)",
		f.Round, f.Name, f.Attempts, f.Lost, f.Crashed)
}

// checkHealthy panics if a failed recovery has poisoned the cluster.
// Serving reads (or running more rounds) after a round was lost would
// silently treat the missing fragments as empty.
func (c *Cluster) checkHealthy(op string) {
	if c.failed != nil {
		panic(fmt.Sprintf("mpc: %s on a cluster with an unrecovered fault: %v", op, c.failed))
	}
}

// deliverChaos is the recovery driver: it replays the round's fragment
// set against the fault schedule until every fragment has been accepted
// exactly once, then commits the round through the fault-free engine.
// Because commit happens only after the full fragment set has landed,
// the committed state and metering are bit-for-bit the fault-free ones
// regardless of the fault/replay interleaving, and delivery order never
// depends on which attempt a fragment landed in.
func (c *Cluster) deliverChaos(name string, outs []*Out) {
	inj := c.faults
	round := c.metrics.Rounds()
	// Enumerate the round's fragments in canonical order: source, then
	// stream creation order, then destination. Tuple counts (not word
	// counts) gate inclusion so arity-0 streams are recovered too.
	type frag struct{ src, si, dst int }
	var frags []frag
	for src := 0; src < c.p; src++ {
		for si, stName := range outs[src].order {
			st := outs[src].streams[stName]
			for dst := 0; dst < c.p; dst++ {
				if st.counts[dst] > 0 {
					frags = append(frags, frag{src, si, dst})
				}
			}
		}
	}
	cs := &ChaosStat{StraggleUnits: make([]int64, c.p)}
	for s := 0; s < c.p; s++ {
		cs.StraggleUnits[s] = inj.StragglerUnits(round, s)
	}
	maxAttempts := inj.MaxAttempts()
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	landed := make([]bool, len(frags))
	remaining := len(frags)
	for attempt := 0; ; attempt++ {
		cs.Attempts = attempt + 1
		// Crash detection at the attempt boundary.
		var crashed []bool
		var down []int
		for d := 0; d < c.p; d++ {
			if inj.CrashedAt(round, attempt, d) {
				if crashed == nil {
					crashed = make([]bool, c.p)
				}
				crashed[d] = true
				down = append(down, d)
				cs.Crashes++
			}
		}
		if c.tracer != nil {
			for _, d := range down {
				c.tracer.Crash(round, attempt, d)
			}
		}
		if len(down) > 0 {
			// A crashed server loses its round inbox: everything that
			// had landed on it must be delivered again.
			for i := range frags {
				if landed[i] && crashed[frags[i].dst] {
					landed[i] = false
					remaining++
					cs.Redelivered++
				}
			}
		}
		for i := range frags {
			if landed[i] {
				continue
			}
			f := frags[i]
			if crashed != nil && crashed[f.dst] {
				continue // messages to a down server are lost with it
			}
			switch inj.FragmentFate(round, attempt, f.src, f.dst, f.si) {
			case FateDrop:
				cs.Dropped++
			case FateDuplicate:
				// Landed twice on the wire; the exactly-once filter
				// keeps one copy.
				cs.Duplicated++
				landed[i] = true
				remaining--
			default:
				landed[i] = true
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		if attempt+1 >= maxAttempts {
			fail := &RecoveryFailure{Round: round, Name: name, Attempts: attempt + 1, Lost: remaining, Crashed: down}
			c.failed = fail
			panic(fail)
		}
		units := inj.BackoffUnits(attempt + 1)
		cs.BackoffUnits += units
		if c.tracer != nil {
			c.tracer.Backoff(round, attempt+1, units)
		}
	}
	c.deliverCommit(name, outs)
	c.metrics.stats[len(c.metrics.stats)-1].Chaos = cs
}
