// Package mpc implements the Massively Parallel Communication model of
// the tutorial (slides 5–20) as a deterministic in-process simulator: a
// shared-nothing cluster of p servers that computes in synchronous
// rounds, where each round every server runs local computation and then
// exchanges messages with any other server. The simulator's entire
// purpose is to *meter* the model's two cost parameters —
//
//	L: the maximum number of tuples received by any server in any round
//	r: the number of communication rounds
//
// plus the total communication C — because every claim in the tutorial
// is a statement about (L, r, C). Each server's per-round computation
// runs on its own goroutine, so the simulation is also genuinely
// parallel.
//
// The delivery path is the simulator's hot loop: every tuple an
// algorithm communicates passes through it exactly once. It is built
// around three invariants that hold regardless of how delivery is
// scheduled internally:
//
//  1. metering is exact — (L, r, C) are identical whatever the delivery
//     concurrency, because tuple counts are tracked per send;
//  2. delivery order is canonical — per destination, fragments land by
//     source server, then stream creation order, then send order, so
//     simulations are bit-for-bit reproducible;
//  3. round buffers are pooled — Out/stream slabs are reused across
//     rounds, so steady-state rounds allocate almost nothing.
package mpc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Cluster is a simulated shared-nothing cluster of p servers.
type Cluster struct {
	p       int
	seed    int64
	servers []*Server
	metrics *Metrics

	// outs holds the pooled per-server round buffers; they are created
	// on the first Round and reset (capacity retained) after each one.
	outs []*Out
	// refDeliver switches deliver to the row-by-row reference
	// implementation (test-only; see export_test.go). It exists so the
	// metering-equivalence suite can prove the fast path changes
	// nothing observable.
	refDeliver bool
	// deliverWorkers overrides the delivery worker count (test-only;
	// 0 means min(p, GOMAXPROCS)).
	deliverWorkers int
	// caps, when non-nil, is the per-server capacity profile
	// (capacity.go). It never affects delivery — only planners and
	// metrics consult it — so attaching capacities cannot change what
	// a run computes, only how its load is apportioned and judged.
	caps []float64
	// faults, when non-nil, routes every round through the recovery
	// driver (recovery.go); failed poisons the cluster after a round
	// whose recovery exhausted its replay budget.
	faults FaultInjector
	failed *RecoveryFailure
	// transport, when non-nil, commits rounds through an attached
	// delivery backend (see transport.go) instead of the built-in
	// in-process engine. Everything observable — fragments, metering,
	// traces — is identical across conforming transports.
	transport Transport
	// tracer, when non-nil, records structured round events (see
	// internal/trace). The entire cost on an untraced cluster is the
	// nil checks in Round.
	tracer *trace.Recorder
}

// NewCluster creates a cluster of p servers. The seed drives all
// server-local randomness, making every simulation reproducible.
func NewCluster(p int, seed int64) *Cluster {
	if p < 1 {
		panic(fmt.Sprintf("mpc: cluster needs p ≥ 1, got %d", p))
	}
	c := &Cluster{p: p, seed: seed, metrics: NewMetrics(p), tracer: defaultTracer.Load()}
	c.servers = make([]*Server, p)
	for i := range c.servers {
		c.servers[i] = &Server{
			id:   i,
			p:    p,
			rels: map[string]*relation.Relation{},
			rng:  rand.New(rand.NewSource(mixSeed(seed, i))),
		}
	}
	return c
}

// mixSeed derives server i's RNG seed from the cluster seed with a
// splitmix64 finalizer. The full finalizer matters: a single xor-shift
// of the golden-ratio multiple correlates the low bits of nearby
// (seed, i) pairs, which showed up as correlated routing decisions
// across servers.
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// P returns the number of servers.
func (c *Cluster) P() int { return c.p }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Metrics returns the cluster's accumulated cost metrics.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// ResetMetrics clears accumulated metrics (e.g. to exclude setup).
// Round indices restart at 0, so a trace spanning a reset should also
// swap in a fresh recorder via SetTracer.
func (c *Cluster) ResetMetrics() { c.metrics = NewMetrics(c.p) }

// defaultTracer, when set, is attached to every cluster NewCluster
// creates. It exists for the CLIs (mpcbench -trace), which need to
// trace clusters built deep inside experiment drivers; libraries and
// tests should attach recorders per cluster with SetTracer.
var defaultTracer atomic.Pointer[trace.Recorder]

// SetDefaultTracer installs (or, with nil, removes) the process-wide
// default recorder picked up by subsequently created clusters.
func SetDefaultTracer(r *trace.Recorder) { defaultTracer.Store(r) }

// SetTracer attaches a trace recorder to the cluster; nil disables
// tracing. Attach before running rounds: consistency checks
// (testkit.AssertTraceConsistent) expect the trace to cover every
// metered round.
func (c *Cluster) SetTracer(r *trace.Recorder) { c.tracer = r }

// Tracer returns the attached recorder, or nil when tracing is off.
func (c *Cluster) Tracer() *trace.Recorder { return c.tracer }

// TraceEnabled implements trace.Annotator.
func (c *Cluster) TraceEnabled() bool { return c.tracer != nil }

// TraceAnnotate implements trace.Annotator: it records a phase marker
// stamped with the metric index the next round will get. Call it from
// driver code between rounds (algorithms use trace.Annotate), not from
// compute functions.
func (c *Cluster) TraceAnnotate(msg string) {
	if c.tracer != nil {
		c.tracer.Annotate(c.metrics.Rounds(), msg)
	}
}

// Server is one node of the simulated cluster. A server owns a set of
// named local relation fragments; between rounds, algorithms read and
// replace them freely.
type Server struct {
	id   int
	p    int
	rels map[string]*relation.Relation
	rng  *rand.Rand
}

// ID returns the server's index in [0, p).
func (s *Server) ID() int { return s.id }

// P returns the cluster size.
func (s *Server) P() int { return s.p }

// Rng returns the server's deterministic random source. It must only be
// used from within this server's compute function.
func (s *Server) Rng() *rand.Rand { return s.rng }

// Rel returns the named local relation, or nil if the server holds none.
func (s *Server) Rel(name string) *relation.Relation { return s.rels[name] }

// RelOrEmpty returns the named local relation, or a fresh empty relation
// with the given schema if the server holds none.
func (s *Server) RelOrEmpty(name string, attrs ...string) *relation.Relation {
	if r := s.rels[name]; r != nil {
		return r
	}
	return relation.New(name, attrs...)
}

// Put stores rel under its name, replacing any previous fragment.
func (s *Server) Put(rel *relation.Relation) { s.rels[rel.Name()] = rel }

// Delete removes the named local relation.
func (s *Server) Delete(name string) { delete(s.rels, name) }

// RelNames returns the names of the server's local relations, sorted.
func (s *Server) RelNames() []string {
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// stream accumulates tuples sent to each destination under one relation
// name within a round. Tuple counts are tracked per send rather than
// derived as len(flat)/arity, so arity-0 streams (decision-query
// results) are delivered and metered like any other.
type stream struct {
	name   string
	attrs  []string
	perDst [][]relation.Value // perDst[dst] = flat rows
	counts []int64            // counts[dst] = tuples sent to dst
}

// Out buffers the messages one server emits during a round. It is not
// safe for concurrent use; each server gets its own. Outs are pooled by
// the cluster: after delivery each stream's slabs are truncated
// (capacity retained) and parked in spare for the next round.
type Out struct {
	p       int
	streams map[string]*stream
	order   []string           // stream creation order for deterministic delivery
	spare   map[string]*stream // reset streams from prior rounds, by name
}

// reset parks every open stream for reuse. Called by the cluster after
// delivery; the compute goroutine that wrote the Out has exited.
func (o *Out) reset() {
	for name, st := range o.streams {
		for d := range st.perDst {
			st.perDst[d] = st.perDst[d][:0]
			st.counts[d] = 0
		}
		if o.spare == nil {
			o.spare = map[string]*stream{}
		}
		o.spare[name] = st
		delete(o.streams, name)
	}
	o.order = o.order[:0]
}

// Stream is a typed channel for sending tuples of one relation to other
// servers within the current round.
type Stream struct {
	out *Out
	st  *stream
}

// Open declares (or reopens) an output relation with the given schema.
// All tuples sent on the stream are delivered into a relation of that
// name on each destination server when the round ends. Reopening a
// stream within a round requires the exact same schema — same arity and
// same attribute names — otherwise two different schemas would silently
// merge into one delivered relation.
func (o *Out) Open(name string, attrs ...string) *Stream {
	if st, ok := o.streams[name]; ok {
		if len(st.attrs) != len(attrs) {
			panic(fmt.Sprintf("mpc: stream %s reopened with arity %d, want %d", name, len(attrs), len(st.attrs)))
		}
		for i, a := range attrs {
			if st.attrs[i] != a {
				panic(fmt.Sprintf("mpc: stream %s reopened with attribute %q at position %d, want %q",
					name, a, i, st.attrs[i]))
			}
		}
		return &Stream{out: o, st: st}
	}
	if st, ok := o.spare[name]; ok {
		// Reuse the parked stream's slabs; the schema is whatever this
		// round declares.
		delete(o.spare, name)
		st.attrs = append(st.attrs[:0], attrs...)
		o.streams[name] = st
		o.order = append(o.order, name)
		return &Stream{out: o, st: st}
	}
	st := &stream{
		name:   name,
		attrs:  append([]string(nil), attrs...),
		perDst: make([][]relation.Value, o.p),
		counts: make([]int64, o.p),
	}
	o.streams[name] = st
	o.order = append(o.order, name)
	return &Stream{out: o, st: st}
}

// Send routes one tuple to server dst.
func (s *Stream) Send(dst int, vals ...relation.Value) {
	if dst < 0 || dst >= s.out.p {
		panic(fmt.Sprintf("mpc: send to server %d of %d", dst, s.out.p))
	}
	if len(vals) != len(s.st.attrs) {
		panic(fmt.Sprintf("mpc: stream %s send arity %d, want %d", s.st.name, len(vals), len(s.st.attrs)))
	}
	s.st.perDst[dst] = append(s.st.perDst[dst], vals...)
	s.st.counts[dst]++
}

// SendRow routes one tuple (as a slice) to server dst.
func (s *Stream) SendRow(dst int, row []relation.Value) { s.Send(dst, row...) }

// Broadcast routes one tuple to every server. Each copy is metered at
// its receiver: broadcasting is p times as expensive as a single send,
// exactly as in the model.
func (s *Stream) Broadcast(vals ...relation.Value) {
	for dst := 0; dst < s.out.p; dst++ {
		s.Send(dst, vals...)
	}
}

// roundOuts returns the cluster's pooled per-server round buffers,
// creating them on first use.
func (c *Cluster) roundOuts() []*Out {
	if c.outs == nil {
		c.outs = make([]*Out, c.p)
		for i := range c.outs {
			c.outs[i] = &Out{p: c.p, streams: map[string]*stream{}, spare: map[string]*stream{}}
		}
	}
	return c.outs
}

// Round executes one MPC round: every server runs compute on its own
// goroutine, then all emitted messages are delivered and metered. The
// name labels the round in metric reports. Messages are delivered in a
// canonical order (by source server, then stream creation order, then
// send order) so simulations are bit-for-bit reproducible.
func (c *Cluster) Round(name string, compute func(s *Server, out *Out)) {
	c.checkHealthy("Round")
	if c.tracer != nil {
		c.tracer.RoundStart(c.metrics.Rounds(), name)
	}
	outs := c.roundOuts()
	var wg sync.WaitGroup
	panics := make([]any, c.p)
	for i := 0; i < c.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			compute(c.servers[i], outs[i])
		}(i)
	}
	wg.Wait()
	// All compute goroutines have exited; recycle the round buffers on
	// every exit path (including panics) so the pool is never dirty.
	defer func() {
		for _, o := range outs {
			o.reset()
		}
	}()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpc: round %q: server %d panicked: %v", name, i, p))
		}
	}
	c.deliver(name, outs)
	if c.tracer != nil {
		c.traceRound(name, outs)
	}
}

// traceRound records the committed round's communication ledger: per
// (source, stream) send totals, per (stream, destination) recv totals
// with fan-in, the recovery summary when the round ran under fault
// injection, and the skew/round_end closing events. It runs on the
// driver after delivery, before the round buffers are recycled, and is
// engine-agnostic: it reads the outs (identical whichever delivery
// implementation ran) and the just-recorded RoundStat.
func (c *Cluster) traceRound(name string, outs []*Out) {
	tr := c.tracer
	round := c.metrics.Rounds() - 1
	st := &c.metrics.stats[len(c.metrics.stats)-1]
	// Send totals, in canonical (source, stream creation) order.
	for src := 0; src < c.p; src++ {
		for _, stName := range outs[src].order {
			s := outs[src].streams[stName]
			var tuples, words int64
			for dst := 0; dst < c.p; dst++ {
				tuples += s.counts[dst]
				words += int64(len(s.perDst[dst]))
			}
			if tuples > 0 {
				tr.Send(round, stName, src, tuples, words)
			}
		}
	}
	// Recv totals: aggregate fan-in per stream name across sources, in
	// first-appearance order (deterministic, like delivery itself).
	type fanIn struct {
		tuples, words []int64
		frags         []int
	}
	var order []string
	aggs := map[string]*fanIn{}
	for src := 0; src < c.p; src++ {
		for _, stName := range outs[src].order {
			a := aggs[stName]
			if a == nil {
				a = &fanIn{tuples: make([]int64, c.p), words: make([]int64, c.p), frags: make([]int, c.p)}
				aggs[stName] = a
				order = append(order, stName)
			}
			s := outs[src].streams[stName]
			for dst := 0; dst < c.p; dst++ {
				if s.counts[dst] > 0 {
					a.tuples[dst] += s.counts[dst]
					a.words[dst] += int64(len(s.perDst[dst]))
					a.frags[dst]++
				}
			}
		}
	}
	for _, stName := range order {
		a := aggs[stName]
		for dst := 0; dst < c.p; dst++ {
			if a.frags[dst] > 0 {
				tr.Recv(round, stName, dst, a.tuples[dst], a.words[dst], a.frags[dst])
			}
		}
	}
	if cs := st.Chaos; cs != nil {
		tr.ChaosSummary(round, cs.Attempts, cs.Dropped, cs.Duplicated, cs.Redelivered, cs.Crashes, cs.BackoffUnits)
	}
	tr.RoundEnd(round, name, st.Recv, st.RecvWords)
}

// deliver dispatches a round's delivery: through the recovery driver
// when a fault injector is attached, straight to the fault-free engine
// otherwise. The injector check is the entire cost of the chaos hooks
// on the fault-free path.
func (c *Cluster) deliver(name string, outs []*Out) {
	if c.faults != nil {
		c.deliverChaos(name, outs)
		return
	}
	c.deliverCommit(name, outs)
}

// deliverCommit commits a round: it routes the outs through the
// delivery backend — the test-only reference loop, an attached
// Transport, or the built-in local engine — and records the metered
// load. Whatever the backend, the committed state is a pure function of
// the outs, so backends are interchangeable without observable effect.
func (c *Cluster) deliverCommit(name string, outs []*Out) {
	recv := make([]int64, c.p)
	recvWords := make([]int64, c.p)
	switch {
	case c.refDeliver:
		c.deliverReference(name, outs, recv, recvWords)
	case c.transport != nil:
		v := &RoundView{c: c, name: name, outs: outs, recv: recv, recvWords: recvWords}
		if err := c.transport.Deliver(v); err != nil {
			panic(fmt.Sprintf("mpc: round %q: transport delivery failed: %v", name, err))
		}
	default:
		c.deliverLocal(name, outs, recv, recvWords)
	}
	c.metrics.record(name, recv, recvWords)
}

// deliverLocal is the built-in in-process delivery engine: it moves
// round outputs into destination servers with exact metering.
// Destinations are independent — server dst's inbox is the
// concatenation of fragments addressed to dst, in canonical order — so
// delivery fans out across worker goroutines, each owning a disjoint
// set of destinations.
func (c *Cluster) deliverLocal(name string, outs []*Out, recv, recvWords []int64) {
	workers := c.deliverWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.p {
		workers = c.p
	}
	// Plan the round before moving a single tuple. The prepass resolves
	// stream handles once per (source, stream) and, once per distinct
	// stream name, sums per-destination tuple/word totals, validates
	// schemas, creates every receiving relation, and presizes it with
	// one exact reservation. That leaves the per-fragment hot loop as
	// pure metering plus one bulk copy — no map lookups, no schema
	// checks, no append growth. At p=256 a shuffle round has 65536
	// fragments but typically a handful of names.
	plans := map[string]*deliverPlan{}
	resolved := make([][]deliverStream, c.p)
	for src := 0; src < c.p; src++ {
		out := outs[src]
		sts := make([]deliverStream, len(out.order))
		for i, stName := range out.order {
			st := out.streams[stName]
			plan, ok := plans[stName]
			if !ok {
				plan = &deliverPlan{
					attrs:  st.attrs,
					rels:   make([]*relation.Relation, c.p),
					tuples: make([]int64, c.p),
					words:  make([]int, c.p),
				}
				for dst := range plan.rels {
					plan.rels[dst] = c.servers[dst].rels[stName]
				}
				plans[stName] = plan
			} else if !attrsEqual(plan.attrs, st.attrs) {
				panic(fmt.Sprintf("mpc: round %q stream %s declared with attrs %v by one server and %v by another",
					name, stName, plan.attrs, st.attrs))
			}
			for dst := 0; dst < c.p; dst++ {
				plan.tuples[dst] += st.counts[dst]
				plan.words[dst] += len(st.perDst[dst])
			}
			sts[i] = deliverStream{st: st, dstRels: plan.rels}
		}
		resolved[src] = sts
	}
	for stName, plan := range plans {
		for dst := 0; dst < c.p; dst++ {
			if plan.tuples[dst] == 0 {
				continue
			}
			dstRel := plan.rels[dst]
			if dstRel == nil {
				dstRel = relation.New(stName, plan.attrs...)
				c.servers[dst].rels[stName] = dstRel
				plan.rels[dst] = dstRel
			} else if !attrsEqual(dstRel.Attrs(), plan.attrs) {
				panic(fmt.Sprintf("mpc: round %q delivers %s with attrs %v into existing attrs %v",
					name, stName, plan.attrs, dstRel.Attrs()))
			}
			dstRel.Grow(plan.words[dst])
		}
	}
	if workers <= 1 {
		for src := 0; src < c.p; src++ {
			// Source-major like the historical loop: cache-friendly slab
			// walks, and per destination the same canonical order as the
			// concurrent path.
			for i := range resolved[src] {
				ds := &resolved[src][i]
				for dst := 0; dst < c.p; dst++ {
					ds.deliverTo(dst, recv, recvWords)
				}
			}
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			for {
				dst := int(next.Add(1))
				if dst >= c.p {
					return
				}
				c.deliverDst(resolved, dst, recv, recvWords)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// deliverPlan is the driver-side prepass result for one stream name:
// the shared schema, per-destination totals, and the destination
// relations (created and presized before delivery starts).
type deliverPlan struct {
	attrs  []string
	rels   []*relation.Relation
	tuples []int64
	words  []int
}

// deliverStream pairs a source's stream with the shared per-destination
// relation array for its name. dstRels is shared across sources and
// workers; after the prepass it is read-only, and entry dst is only
// appended to by dst's deliverer.
type deliverStream struct {
	st      *stream
	dstRels []*relation.Relation
}

// deliverTo lands this stream's dst fragment: meter it and append the
// slab in one copy. The prepass guarantees dstRels[dst] exists and is
// schema-checked whenever the fragment is non-empty.
func (ds *deliverStream) deliverTo(dst int, recv, recvWords []int64) {
	st := ds.st
	n := st.counts[dst]
	if n == 0 {
		return
	}
	flat := st.perDst[dst]
	recv[dst] += n
	recvWords[dst] += int64(len(flat))
	ds.dstRels[dst].AppendFlat(flat, int(n))
}

// deliverDst delivers everything addressed to one destination: for each
// source in order, for each stream in creation order, append the flat
// fragment in one bulk copy. Only dst's inbox, relations, and metric
// slots are touched, so concurrent calls for distinct dst never race.
func (c *Cluster) deliverDst(resolved [][]deliverStream, dst int, recv, recvWords []int64) {
	for src := 0; src < c.p; src++ {
		for i := range resolved[src] {
			resolved[src][i].deliverTo(dst, recv, recvWords)
		}
	}
}

// deliverReference is the historical single-threaded, row-by-row
// delivery loop, kept as the referee for the fast path: the
// metering-equivalence tests assert that both implementations produce
// identical RoundStats and bit-for-bit identical fragments.
func (c *Cluster) deliverReference(name string, outs []*Out, recv, recvWords []int64) {
	for src := 0; src < c.p; src++ {
		out := outs[src]
		for _, stName := range out.order {
			st := out.streams[stName]
			arity := len(st.attrs)
			for dst := 0; dst < c.p; dst++ {
				n := st.counts[dst]
				if n == 0 {
					continue
				}
				flat := st.perDst[dst]
				recv[dst] += n
				recvWords[dst] += int64(len(flat))
				dstRel := c.servers[dst].rels[st.name]
				if dstRel == nil {
					dstRel = relation.New(st.name, st.attrs...)
					c.servers[dst].rels[st.name] = dstRel
				} else if !attrsEqual(dstRel.Attrs(), st.attrs) {
					panic(fmt.Sprintf("mpc: round %q delivers %s with attrs %v into existing attrs %v",
						name, st.name, st.attrs, dstRel.Attrs()))
				}
				if arity == 0 {
					dstRel.AppendFlat(nil, int(n))
					continue
				}
				for off := 0; off < len(flat); off += arity {
					dstRel.AppendRow(flat[off : off+arity])
				}
			}
		}
	}
}

func attrsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LocalStep runs compute on every server (in parallel) without any
// communication; it does not count as a round. Use it for purely local
// phases such as final local joins.
func (c *Cluster) LocalStep(compute func(s *Server)) {
	var wg sync.WaitGroup
	panics := make([]any, c.p)
	for i := 0; i < c.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			compute(c.servers[i])
		}(i)
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpc: local step: server %d panicked: %v", i, p))
		}
	}
}

// ScatterRoundRobin distributes rel's tuples across servers round-robin,
// modelling the model's arbitrary initial placement (O(IN/p) per
// server). Initial placement is free: it is not metered.
func (c *Cluster) ScatterRoundRobin(rel *relation.Relation) {
	frags := make([]*relation.Relation, c.p)
	for i := range frags {
		frags[i] = relation.New(rel.Name(), rel.Attrs()...)
	}
	n := rel.Len()
	for i := 0; i < n; i++ {
		frags[i%c.p].AppendRow(rel.Row(i))
	}
	for i, f := range frags {
		c.servers[i].Put(f)
	}
}

// ScatterByHash distributes rel's tuples by hashing the named attributes
// with the given seed. Like all scatters, it is free (initial placement).
func (c *Cluster) ScatterByHash(rel *relation.Relation, attrs []string, seed uint64) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = rel.MustCol(a)
	}
	frags := make([]*relation.Relation, c.p)
	for i := range frags {
		frags[i] = relation.New(rel.Name(), rel.Attrs()...)
	}
	n := rel.Len()
	for i := 0; i < n; i++ {
		row := rel.Row(i)
		dst := relation.Bucket(relation.HashRow(row, cols, seed), c.p)
		frags[dst].AppendRow(row)
	}
	for i, f := range frags {
		c.servers[i].Put(f)
	}
}

// Gather collects the union of the named relation's fragments from all
// servers into one relation. It is a driver-side verification helper
// and is not metered. Every fragment must carry the same schema; a
// mismatch means two different relations were stored under one name,
// and concatenating them would silently produce garbage. Gathering
// from a cluster poisoned by a failed recovery panics: a fragment lost
// to an unrecovered fault must not be read as empty.
func (c *Cluster) Gather(name string) *relation.Relation {
	c.checkHealthy("Gather")
	var out *relation.Relation
	for _, s := range c.servers {
		f := s.rels[name]
		if f == nil {
			continue
		}
		if out == nil {
			out = relation.New(name, f.Attrs()...)
		} else if !attrsEqual(out.Attrs(), f.Attrs()) {
			panic(fmt.Sprintf("mpc: gather %q: server %d fragment has attrs %v, earlier fragments have %v",
				name, s.id, f.Attrs(), out.Attrs()))
		}
		out.AppendAll(f)
	}
	if out == nil {
		panic(fmt.Sprintf("mpc: gather: no server holds relation %q", name))
	}
	return out
}

// DeleteAll removes the named relation from every server.
func (c *Cluster) DeleteAll(name string) {
	for _, s := range c.servers {
		s.Delete(name)
	}
}

// TotalLen sums the sizes of the named relation fragment across servers
// (0 if absent everywhere). Like Gather, it panics on a cluster
// poisoned by a failed recovery instead of counting lost fragments as
// empty.
func (c *Cluster) TotalLen(name string) int {
	c.checkHealthy("TotalLen")
	total := 0
	for _, s := range c.servers {
		if f := s.rels[name]; f != nil {
			total += f.Len()
		}
	}
	return total
}

// MaxFragLen returns the largest per-server fragment size of name. It
// panics on a cluster poisoned by a failed recovery.
func (c *Cluster) MaxFragLen(name string) int {
	c.checkHealthy("MaxFragLen")
	m := 0
	for _, s := range c.servers {
		if f := s.rels[name]; f != nil && f.Len() > m {
			m = f.Len()
		}
	}
	return m
}
