// Package mpc implements the Massively Parallel Communication model of
// the tutorial (slides 5–20) as a deterministic in-process simulator: a
// shared-nothing cluster of p servers that computes in synchronous
// rounds, where each round every server runs local computation and then
// exchanges messages with any other server. The simulator's entire
// purpose is to *meter* the model's two cost parameters —
//
//	L: the maximum number of tuples received by any server in any round
//	r: the number of communication rounds
//
// plus the total communication C — because every claim in the tutorial
// is a statement about (L, r, C). Each server's per-round computation
// runs on its own goroutine, so the simulation is also genuinely
// parallel.
package mpc

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mpcquery/internal/relation"
)

// Cluster is a simulated shared-nothing cluster of p servers.
type Cluster struct {
	p       int
	seed    int64
	servers []*Server
	metrics *Metrics
}

// NewCluster creates a cluster of p servers. The seed drives all
// server-local randomness, making every simulation reproducible.
func NewCluster(p int, seed int64) *Cluster {
	if p < 1 {
		panic(fmt.Sprintf("mpc: cluster needs p ≥ 1, got %d", p))
	}
	c := &Cluster{p: p, seed: seed, metrics: NewMetrics(p)}
	c.servers = make([]*Server, p)
	for i := range c.servers {
		c.servers[i] = &Server{
			id:   i,
			p:    p,
			rels: map[string]*relation.Relation{},
			rng:  rand.New(rand.NewSource(seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15>>1))),
		}
	}
	return c
}

// P returns the number of servers.
func (c *Cluster) P() int { return c.p }

// Server returns server i.
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// Metrics returns the cluster's accumulated cost metrics.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// ResetMetrics clears accumulated metrics (e.g. to exclude setup).
func (c *Cluster) ResetMetrics() { c.metrics = NewMetrics(c.p) }

// Server is one node of the simulated cluster. A server owns a set of
// named local relation fragments; between rounds, algorithms read and
// replace them freely.
type Server struct {
	id   int
	p    int
	rels map[string]*relation.Relation
	rng  *rand.Rand
}

// ID returns the server's index in [0, p).
func (s *Server) ID() int { return s.id }

// P returns the cluster size.
func (s *Server) P() int { return s.p }

// Rng returns the server's deterministic random source. It must only be
// used from within this server's compute function.
func (s *Server) Rng() *rand.Rand { return s.rng }

// Rel returns the named local relation, or nil if the server holds none.
func (s *Server) Rel(name string) *relation.Relation { return s.rels[name] }

// RelOrEmpty returns the named local relation, or a fresh empty relation
// with the given schema if the server holds none.
func (s *Server) RelOrEmpty(name string, attrs ...string) *relation.Relation {
	if r := s.rels[name]; r != nil {
		return r
	}
	return relation.New(name, attrs...)
}

// Put stores rel under its name, replacing any previous fragment.
func (s *Server) Put(rel *relation.Relation) { s.rels[rel.Name()] = rel }

// Delete removes the named local relation.
func (s *Server) Delete(name string) { delete(s.rels, name) }

// RelNames returns the names of the server's local relations, sorted.
func (s *Server) RelNames() []string {
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// stream accumulates tuples sent to each destination under one relation
// name within a round.
type stream struct {
	name   string
	attrs  []string
	perDst [][]relation.Value // perDst[dst] = flat rows
}

// Out buffers the messages one server emits during a round. It is not
// safe for concurrent use; each server gets its own.
type Out struct {
	p       int
	streams map[string]*stream
	order   []string // stream creation order for deterministic delivery
}

// Stream is a typed channel for sending tuples of one relation to other
// servers within the current round.
type Stream struct {
	out *Out
	st  *stream
}

// Open declares (or reopens) an output relation with the given schema.
// All tuples sent on the stream are delivered into a relation of that
// name on each destination server when the round ends.
func (o *Out) Open(name string, attrs ...string) *Stream {
	if st, ok := o.streams[name]; ok {
		if len(st.attrs) != len(attrs) {
			panic(fmt.Sprintf("mpc: stream %s reopened with different arity", name))
		}
		return &Stream{out: o, st: st}
	}
	st := &stream{name: name, attrs: append([]string(nil), attrs...), perDst: make([][]relation.Value, o.p)}
	o.streams[name] = st
	o.order = append(o.order, name)
	return &Stream{out: o, st: st}
}

// Send routes one tuple to server dst.
func (s *Stream) Send(dst int, vals ...relation.Value) {
	if dst < 0 || dst >= s.out.p {
		panic(fmt.Sprintf("mpc: send to server %d of %d", dst, s.out.p))
	}
	if len(vals) != len(s.st.attrs) {
		panic(fmt.Sprintf("mpc: stream %s send arity %d, want %d", s.st.name, len(vals), len(s.st.attrs)))
	}
	s.st.perDst[dst] = append(s.st.perDst[dst], vals...)
}

// SendRow routes one tuple (as a slice) to server dst.
func (s *Stream) SendRow(dst int, row []relation.Value) { s.Send(dst, row...) }

// Broadcast routes one tuple to every server. Each copy is metered at
// its receiver: broadcasting is p times as expensive as a single send,
// exactly as in the model.
func (s *Stream) Broadcast(vals ...relation.Value) {
	for dst := 0; dst < s.out.p; dst++ {
		s.Send(dst, vals...)
	}
}

// Round executes one MPC round: every server runs compute on its own
// goroutine, then all emitted messages are delivered and metered. The
// name labels the round in metric reports. Messages are delivered in a
// canonical order (by source server, then stream creation order, then
// send order) so simulations are bit-for-bit reproducible.
func (c *Cluster) Round(name string, compute func(s *Server, out *Out)) {
	outs := make([]*Out, c.p)
	var wg sync.WaitGroup
	panics := make([]any, c.p)
	for i := 0; i < c.p; i++ {
		outs[i] = &Out{p: c.p, streams: map[string]*stream{}}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			compute(c.servers[i], outs[i])
		}(i)
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpc: round %q: server %d panicked: %v", name, i, p))
		}
	}
	c.deliver(name, outs)
}

// deliver moves round outputs into destination servers and records
// load metrics.
func (c *Cluster) deliver(name string, outs []*Out) {
	recv := make([]int64, c.p)
	recvWords := make([]int64, c.p)
	for src := 0; src < c.p; src++ {
		out := outs[src]
		for _, stName := range out.order {
			st := out.streams[stName]
			arity := len(st.attrs)
			for dst := 0; dst < c.p; dst++ {
				flat := st.perDst[dst]
				if len(flat) == 0 {
					continue
				}
				tuples := int64(len(flat) / arity)
				recv[dst] += tuples
				recvWords[dst] += int64(len(flat))
				dstRel := c.servers[dst].rels[st.name]
				if dstRel == nil {
					dstRel = relation.New(st.name, st.attrs...)
					c.servers[dst].rels[st.name] = dstRel
				} else if dstRel.Arity() != arity {
					panic(fmt.Sprintf("mpc: round %q delivers %s with arity %d into existing arity %d",
						name, st.name, arity, dstRel.Arity()))
				}
				for off := 0; off < len(flat); off += arity {
					dstRel.AppendRow(flat[off : off+arity])
				}
			}
		}
	}
	c.metrics.record(name, recv, recvWords)
}

// LocalStep runs compute on every server (in parallel) without any
// communication; it does not count as a round. Use it for purely local
// phases such as final local joins.
func (c *Cluster) LocalStep(compute func(s *Server)) {
	var wg sync.WaitGroup
	panics := make([]any, c.p)
	for i := 0; i < c.p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			compute(c.servers[i])
		}(i)
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpc: local step: server %d panicked: %v", i, p))
		}
	}
}

// ScatterRoundRobin distributes rel's tuples across servers round-robin,
// modelling the model's arbitrary initial placement (O(IN/p) per
// server). Initial placement is free: it is not metered.
func (c *Cluster) ScatterRoundRobin(rel *relation.Relation) {
	frags := make([]*relation.Relation, c.p)
	for i := range frags {
		frags[i] = relation.New(rel.Name(), rel.Attrs()...)
	}
	n := rel.Len()
	for i := 0; i < n; i++ {
		frags[i%c.p].AppendRow(rel.Row(i))
	}
	for i, f := range frags {
		c.servers[i].Put(f)
	}
}

// ScatterByHash distributes rel's tuples by hashing the named attributes
// with the given seed. Like all scatters, it is free (initial placement).
func (c *Cluster) ScatterByHash(rel *relation.Relation, attrs []string, seed uint64) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = rel.MustCol(a)
	}
	frags := make([]*relation.Relation, c.p)
	for i := range frags {
		frags[i] = relation.New(rel.Name(), rel.Attrs()...)
	}
	n := rel.Len()
	for i := 0; i < n; i++ {
		row := rel.Row(i)
		dst := relation.Bucket(relation.HashRow(row, cols, seed), c.p)
		frags[dst].AppendRow(row)
	}
	for i, f := range frags {
		c.servers[i].Put(f)
	}
}

// Gather collects the union of the named relation's fragments from all
// servers into one relation. It is a driver-side verification helper
// and is not metered.
func (c *Cluster) Gather(name string) *relation.Relation {
	var out *relation.Relation
	for _, s := range c.servers {
		f := s.rels[name]
		if f == nil {
			continue
		}
		if out == nil {
			out = relation.New(name, f.Attrs()...)
		}
		out.AppendAll(f)
	}
	if out == nil {
		panic(fmt.Sprintf("mpc: gather: no server holds relation %q", name))
	}
	return out
}

// DeleteAll removes the named relation from every server.
func (c *Cluster) DeleteAll(name string) {
	for _, s := range c.servers {
		s.Delete(name)
	}
}

// TotalLen sums the sizes of the named relation fragment across servers
// (0 if absent everywhere).
func (c *Cluster) TotalLen(name string) int {
	total := 0
	for _, s := range c.servers {
		if f := s.rels[name]; f != nil {
			total += f.Len()
		}
	}
	return total
}

// MaxFragLen returns the largest per-server fragment size of name.
func (c *Cluster) MaxFragLen(name string) int {
	m := 0
	for _, s := range c.servers {
		if f := s.rels[name]; f != nil && f.Len() > m {
			m = f.Len()
		}
	}
	return m
}
