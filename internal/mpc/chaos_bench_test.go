package mpc_test

import (
	"fmt"
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// BenchmarkRoundChaos times the shuffle round of BenchmarkRound with a
// fault schedule attached (moderate drop/dup/crash/straggle rates), so
// the recovery driver's overhead — fragment enumeration, the attempt
// loop, and the ledger — is visible next to the fault-free baseline.
// The fault-free cost of the chaos hooks themselves is one nil check in
// deliver, which BenchmarkRound already measures.
//
// External package: the in-package bench file cannot import chaos
// (chaos imports mpc), so this one rebuilds the shuffle via public API.
func BenchmarkRoundChaos(b *testing.B) {
	const tuples = 1 << 17
	sched := chaos.MustParseSchedule("7:drop=0.05,dup=0.02,crash=0.02,straggle=0.1")
	for _, p := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			c := mpc.NewCluster(p, 1)
			c.SetFaultInjector(sched)
			fill := func(s *mpc.Server, out *mpc.Out) {
				st := out.Open("M", "a", "b")
				per := tuples / s.P()
				for i := 0; i < per; i++ {
					st.Send((i+s.ID())%s.P(), relation.Value(i), relation.Value(s.ID()))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Round("shuffle", fill)
				b.StopTimer()
				c.DeleteAll("M")
				c.ResetMetrics()
				b.StartTimer()
			}
		})
	}
}
