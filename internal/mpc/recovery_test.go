package mpc_test

import (
	"strings"
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// recoveryProgram is the multi-round communication program the recovery
// suite replays on every engine/schedule combination: hash partition,
// RNG re-route with an arity-0 control stream, and a sampled broadcast.
func recoveryProgram(c *mpc.Cluster, tuples int) {
	input := relation.New("R", "x", "y")
	for i := 0; i < tuples; i++ {
		input.Append(int64(i%17), int64(i))
	}
	c.ScatterRoundRobin(input)
	c.Round("partition", func(s *mpc.Server, out *mpc.Out) {
		frag := s.RelOrEmpty("R", "x", "y")
		st := out.Open("H", "x", "y")
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			st.SendRow(relation.Bucket(relation.HashRow(row, []int{0}, 42), s.P()), row)
		}
	})
	c.Round("reroute", func(s *mpc.Server, out *mpc.Out) {
		frag := s.RelOrEmpty("H", "x", "y")
		st := out.Open("G", "x", "y")
		done := out.Open("done")
		for i := 0; i < frag.Len(); i++ {
			st.SendRow(s.Rng().Intn(s.P()), frag.Row(i))
		}
		done.Send(0)
	})
	c.Round("sample", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("G")
		if frag == nil || frag.Len() == 0 {
			return
		}
		out.Open("S", "x", "y").Broadcast(frag.Row(s.Rng().Intn(frag.Len()))...)
	})
}

// assertSameRun asserts two clusters metered identical Recv/RecvWords
// per round and hold bit-for-bit identical fragments for the program's
// relations.
func assertSameRun(t *testing.T, a, b *mpc.Cluster, compareChaos bool) {
	t.Helper()
	as, bs := a.Metrics().RoundStats(), b.Metrics().RoundStats()
	if len(as) != len(bs) {
		t.Fatalf("rounds %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].Name != bs[i].Name {
			t.Fatalf("round %d: %q vs %q", i, as[i].Name, bs[i].Name)
		}
		for d := 0; d < a.P(); d++ {
			if as[i].Recv[d] != bs[i].Recv[d] || as[i].RecvWords[d] != bs[i].RecvWords[d] {
				t.Fatalf("round %q server %d: (%d,%d) vs (%d,%d)", as[i].Name, d,
					as[i].Recv[d], as[i].RecvWords[d], bs[i].Recv[d], bs[i].RecvWords[d])
			}
		}
		if compareChaos && !as[i].Chaos.Equal(bs[i].Chaos) {
			t.Fatalf("round %q: chaos ledgers differ: %+v vs %+v", as[i].Name, as[i].Chaos, bs[i].Chaos)
		}
	}
	for _, name := range []string{"H", "G", "S", "done"} {
		ra, rb := a.Gather(name), b.Gather(name)
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: %d vs %d tuples", name, ra.Len(), rb.Len())
		}
		for i := 0; i < ra.Len(); i++ {
			xa, xb := ra.Row(i), rb.Row(i)
			for j := range xa {
				if xa[j] != xb[j] {
					t.Fatalf("%s row %d: %v vs %v", name, i, xa, xb)
				}
			}
		}
	}
}

// TestChaosCommitMatchesFaultFree is the tentpole guarantee: a run that
// recovers from drops, duplicates, crashes and stragglers commits the
// exact state and (L, r, C) metering of the fault-free run, with the
// recovery activity ledgered separately.
func TestChaosCommitMatchesFaultFree(t *testing.T) {
	for _, spec := range []string{
		"101:drop=0.2",
		"202:dup=0.15",
		"303:crash=0.25",
		"404:straggle=0.4,delay=6",
		"505:drop=0.15,dup=0.1,crash=0.15,straggle=0.2",
	} {
		t.Run(spec, func(t *testing.T) {
			clean := mpc.NewCluster(5, 7)
			recoveryProgram(clean, 300)

			chaosC := mpc.NewCluster(5, 7)
			chaosC.SetFaultInjector(chaos.MustParseSchedule(spec))
			recoveryProgram(chaosC, 300)
			if chaosC.Failed() != nil {
				t.Fatalf("bounded-persistence schedule failed recovery: %v", chaosC.Failed())
			}
			assertSameRun(t, clean, chaosC, false)
			for i, st := range chaosC.Metrics().RoundStats() {
				if st.Chaos == nil {
					t.Fatalf("round %d has no chaos ledger despite attached injector", i)
				}
			}
		})
	}
}

// TestChaosEngineEquivalence pins that the recovery driver composes
// with every delivery engine: under the same fault schedule, the
// concurrent fast path, the single-worker fast path, and the row-by-row
// reference engine commit identical fragments, metering, and recovery
// ledgers.
func TestChaosEngineEquivalence(t *testing.T) {
	sched := chaos.MustParseSchedule("606:drop=0.2,dup=0.1,crash=0.2,straggle=0.3")
	build := func(configure func(*mpc.Cluster)) *mpc.Cluster {
		c := mpc.NewCluster(6, 9)
		configure(c)
		c.SetFaultInjector(sched)
		recoveryProgram(c, 300)
		return c
	}
	fast := build(func(c *mpc.Cluster) { c.SetDeliveryWorkers(4) })
	single := build(func(c *mpc.Cluster) { c.SetDeliveryWorkers(1) })
	ref := build(func(c *mpc.Cluster) { c.SetReferenceDelivery(true) })
	assertSameRun(t, fast, single, true)
	assertSameRun(t, fast, ref, true)
}

// TestDeterministicReplay pins the repro contract printed by
// chaos.Report: re-running with the same spec reproduces the whole run
// — faults, replays, backoff, metering, and output — bit for bit.
func TestDeterministicReplay(t *testing.T) {
	run := func() *mpc.Cluster {
		c := mpc.NewCluster(5, 3)
		c.SetFaultInjector(chaos.MustParseSchedule("777:drop=0.25,dup=0.1,crash=0.2,straggle=0.3"))
		recoveryProgram(c, 250)
		return c
	}
	a, b := run(), run()
	assertSameRun(t, a, b, true)
	if a.Metrics().String() != b.Metrics().String() {
		t.Fatalf("metric reports differ between identical replays:\n%s\nvs\n%s", a.Metrics(), b.Metrics())
	}
	if a.Metrics().TotalReplays() == 0 {
		t.Fatal("schedule injected no replays; test exercises nothing")
	}
}

// scriptInjector is a precise, hand-scripted FaultInjector for driving
// the recovery driver through exact fault sequences.
type scriptInjector struct {
	drop     func(round, attempt, src, dst, si int) bool
	crash    func(round, attempt, server int) bool
	straggle func(round, server int) int64
	attempts int
}

func (s *scriptInjector) StragglerUnits(round, server int) int64 {
	if s.straggle == nil {
		return 0
	}
	return s.straggle(round, server)
}

func (s *scriptInjector) CrashedAt(round, attempt, server int) bool {
	return s.crash != nil && s.crash(round, attempt, server)
}

func (s *scriptInjector) FragmentFate(round, attempt, src, dst, si int) mpc.FaultFate {
	if s.drop != nil && s.drop(round, attempt, src, dst, si) {
		return mpc.FateDrop
	}
	return mpc.FateDeliver
}

func (s *scriptInjector) MaxAttempts() int { return s.attempts }

func (s *scriptInjector) BackoffUnits(attempt int) int64 { return 1 }

// allToAll runs one round in which every server sends one tuple to
// every server, producing p² fragments.
func allToAll(c *mpc.Cluster) {
	c.Round("all", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open("A", "v")
		for dst := 0; dst < s.P(); dst++ {
			st.Send(dst, int64(s.ID()))
		}
	})
}

// TestCrashRedelivery scripts the crash-recovery path exactly: a drop
// forces a second attempt, a crash on that attempt wipes one server's
// landed fragments, and the third attempt redelivers them.
func TestCrashRedelivery(t *testing.T) {
	c := mpc.NewCluster(3, 1)
	c.SetFaultInjector(&scriptInjector{
		attempts: 8,
		drop: func(round, attempt, src, dst, si int) bool {
			return attempt == 0 && src == 0 && dst == 0
		},
		crash: func(round, attempt, server int) bool {
			return attempt == 1 && server == 2
		},
	})
	allToAll(c)
	if c.Failed() != nil {
		t.Fatalf("recovery failed: %v", c.Failed())
	}
	cs := c.Metrics().RoundStats()[0].Chaos
	if cs.Attempts != 3 || cs.Dropped != 1 || cs.Crashes != 1 || cs.Redelivered != 3 {
		t.Fatalf("ledger %+v, want attempts=3 dropped=1 crashes=1 redelivered=3", cs)
	}
	if got := c.Gather("A").Len(); got != 9 {
		t.Fatalf("delivered %d tuples, want 9 (exactly once)", got)
	}
}

// TestStragglerMetering pins that stragglers are metered — not slept —
// and change nothing about delivery.
func TestStragglerMetering(t *testing.T) {
	c := mpc.NewCluster(4, 1)
	c.SetFaultInjector(&scriptInjector{
		attempts: 2,
		straggle: func(round, server int) int64 { return int64(server) * 5 },
	})
	allToAll(c)
	cs := c.Metrics().RoundStats()[0].Chaos
	if cs.Attempts != 1 || cs.Dropped != 0 || cs.Crashes != 0 {
		t.Fatalf("straggler-only run shows delivery faults: %+v", cs)
	}
	if cs.MaxStraggle() != 15 || c.Metrics().MaxStraggleUnits() != 15 {
		t.Fatalf("max straggle %d / %d, want 15", cs.MaxStraggle(), c.Metrics().MaxStraggleUnits())
	}
	if got := c.Gather("A").Len(); got != 16 {
		t.Fatalf("delivered %d tuples, want 16", got)
	}
}

// TestRecoveryFailurePoisonsCluster drives recovery past its replay
// budget and asserts the loud-failure contract: Round panics with a
// *RecoveryFailure, and every subsequent read of possibly-partial state
// panics too instead of treating lost fragments as empty (the silent
// Gather/TotalLen bug this PR fixes).
func TestRecoveryFailurePoisonsCluster(t *testing.T) {
	c := mpc.NewCluster(3, 1)
	c.SetFaultInjector(&scriptInjector{
		attempts: 4,
		drop: func(round, attempt, src, dst, si int) bool {
			return src == 1 && dst == 2 // permanent: fires on every attempt
		},
	})
	func() {
		defer func() {
			r := recover()
			fail, ok := r.(*mpc.RecoveryFailure)
			if !ok {
				t.Fatalf("Round panicked with %v, want *RecoveryFailure", r)
			}
			if fail.Round != 0 || fail.Name != "all" || fail.Attempts != 4 || fail.Lost != 1 {
				t.Fatalf("failure %+v, want round=0 name=all attempts=4 lost=1", fail)
			}
		}()
		allToAll(c)
		t.Fatal("Round with a permanent drop did not panic")
	}()
	if c.Failed() == nil {
		t.Fatal("Failed() nil after a failed recovery")
	}
	for _, op := range []struct {
		name string
		fn   func()
	}{
		{"Gather", func() { c.Gather("A") }},
		{"TotalLen", func() { c.TotalLen("A") }},
		{"MaxFragLen", func() { c.MaxFragLen("A") }},
		{"Round", func() { allToAll(c) }},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s on a poisoned cluster did not panic", op.name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "unrecovered fault") {
					t.Fatalf("%s panic %v does not name the unrecovered fault", op.name, r)
				}
			}()
			op.fn()
		}()
	}
}

// TestPermanentCrashFailure exercises the failure path through the
// crash rather than the drop mechanism and checks the downed server is
// named in the failure.
func TestPermanentCrashFailure(t *testing.T) {
	c := mpc.NewCluster(3, 1)
	c.SetFaultInjector(&scriptInjector{
		attempts: 3,
		crash:    func(round, attempt, server int) bool { return server == 1 },
	})
	defer func() {
		fail, ok := recover().(*mpc.RecoveryFailure)
		if !ok {
			t.Fatal("permanently crashed server did not fail the round")
		}
		if fail.Lost != 3 || len(fail.Crashed) != 1 || fail.Crashed[0] != 1 {
			t.Fatalf("failure %+v, want lost=3 crashed=[1]", fail)
		}
	}()
	allToAll(c)
}

// TestChaosZeroRateSchedulesAreTransparent pins that an attached
// schedule with all-zero rates behaves exactly like no injector: one
// attempt, empty ledger counters, identical commit.
func TestChaosZeroRateSchedulesAreTransparent(t *testing.T) {
	clean := mpc.NewCluster(4, 5)
	recoveryProgram(clean, 200)
	c := mpc.NewCluster(4, 5)
	c.SetFaultInjector(chaos.MustParseSchedule("12345"))
	recoveryProgram(c, 200)
	assertSameRun(t, clean, c, false)
	for i, st := range c.Metrics().RoundStats() {
		cs := st.Chaos
		if cs == nil || cs.Attempts != 1 || cs.Dropped != 0 || cs.Duplicated != 0 || cs.Crashes != 0 {
			t.Fatalf("round %d: zero-rate schedule left a non-trivial ledger: %+v", i, cs)
		}
	}
}
