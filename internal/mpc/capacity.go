package mpc

import "fmt"

// SetCapacities attaches a per-server capacity profile to the cluster:
// caps[i] is server i's relative processing rate (any positive scale;
// only ratios matter). Heterogeneity-aware planners apportion grid
// cells proportionally to capacity, and NormalizedMakespan judges a
// round by max recv_i/caps_i instead of max recv_i. A nil caps detaches
// the profile (uniform capacities). Capacities never influence message
// delivery, so attaching them is observationally free.
func (c *Cluster) SetCapacities(caps []float64) {
	if caps == nil {
		c.caps = nil
		return
	}
	if len(caps) != c.p {
		panic(fmt.Sprintf("mpc: SetCapacities: %d capacities for %d servers", len(caps), c.p))
	}
	for i, v := range caps {
		if v <= 0 {
			panic(fmt.Sprintf("mpc: SetCapacities: capacity[%d] = %v must be > 0", i, v))
		}
	}
	c.caps = append([]float64(nil), caps...)
}

// Capacities returns the attached capacity profile, or nil when the
// cluster is uniform. The slice is a copy; mutating it does not affect
// the cluster.
func (c *Cluster) Capacities() []float64 {
	if c.caps == nil {
		return nil
	}
	return append([]float64(nil), c.caps...)
}

// NormalizedMakespan returns the capacity-normalized makespan of the
// run so far: max over servers of (total tuples received)/(capacity).
// With nil or uniform capacities this degrades to MaxLoad (up to the
// uniform scale factor). It is the objective heterogeneity-aware
// shares minimize (arXiv 2501.08896): a slow server receiving the
// same load as a fast one dominates wall-clock time.
func (m *Metrics) NormalizedMakespan(caps []float64) float64 {
	totals := make([]int64, m.p)
	for _, st := range m.stats {
		for i, r := range st.Recv {
			totals[i] += r
		}
	}
	var worst float64
	for i, tot := range totals {
		c := 1.0
		if caps != nil {
			c = caps[i]
		}
		if v := float64(tot) / c; v > worst {
			worst = v
		}
	}
	return worst
}
