package mpc

import (
	"fmt"
	"strings"

	"mpcquery/internal/stats"
)

// RoundStat records the communication received by each server in one
// round.
type RoundStat struct {
	Name      string
	Recv      []int64 // tuples received per server
	RecvWords []int64 // values (words) received per server
	// Chaos records fault-injection and recovery activity for the
	// round; nil unless a FaultInjector was attached. Recv/RecvWords
	// always count accepted (exactly-once) deliveries, so they match
	// the fault-free run even when Chaos shows replays.
	Chaos *ChaosStat
}

// ChaosStat is the recovery ledger of one round executed under fault
// injection. Fragment counters are events, not tuples: one fragment is
// everything one source sent to one destination on one stream.
type ChaosStat struct {
	// Attempts is the number of delivery attempts the round needed
	// (1 = converged without replay).
	Attempts int
	// Dropped counts fragments lost in transit, Duplicated wire
	// duplicates discarded by the exactly-once filter, and Redelivered
	// landed fragments wiped by a crash and sent again.
	Dropped, Duplicated, Redelivered int64
	// Crashes counts (attempt, server) crash events.
	Crashes int
	// StraggleUnits is the simulated per-server delay injected this
	// round; BackoffUnits the driver's cumulative replay backoff.
	StraggleUnits []int64
	BackoffUnits  int64
}

// Replays returns the delivery attempts beyond the first.
func (cs *ChaosStat) Replays() int { return cs.Attempts - 1 }

// MaxStraggle returns the largest per-server injected delay.
func (cs *ChaosStat) MaxStraggle() int64 {
	var m int64
	for _, v := range cs.StraggleUnits {
		if v > m {
			m = v
		}
	}
	return m
}

// Equal reports whether two chaos ledgers are identical — the
// determinism check for replaying a fault schedule.
func (cs *ChaosStat) Equal(o *ChaosStat) bool {
	if cs == nil || o == nil {
		return cs == o
	}
	if cs.Attempts != o.Attempts || cs.Dropped != o.Dropped || cs.Duplicated != o.Duplicated ||
		cs.Redelivered != o.Redelivered || cs.Crashes != o.Crashes || cs.BackoffUnits != o.BackoffUnits ||
		len(cs.StraggleUnits) != len(o.StraggleUnits) {
		return false
	}
	for i := range cs.StraggleUnits {
		if cs.StraggleUnits[i] != o.StraggleUnits[i] {
			return false
		}
	}
	return true
}

// MaxRecv returns the maximum tuples received by any server this round.
func (r *RoundStat) MaxRecv() int64 {
	var m int64
	for _, v := range r.Recv {
		if v > m {
			m = v
		}
	}
	return m
}

// TotalRecv returns the total tuples received this round.
func (r *RoundStat) TotalRecv() int64 {
	var t int64
	for _, v := range r.Recv {
		t += v
	}
	return t
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of per-server received
// tuples this round, using the nearest-rank definition: the smallest
// value with at least ⌈q·p⌉ servers at or below it. Quantile(0) is the
// minimum and Quantile(1) the maximum; truncating instead of rounding
// the rank would bias high quantiles (p99) low on small clusters. The
// computation is shared with the trace layer (stats.QuantileInt64) so
// trace-derived and metric-derived quantiles agree exactly.
func (r *RoundStat) Quantile(q float64) int64 {
	return stats.QuantileInt64(r.Recv, q)
}

// P99Recv returns the 99th-percentile (nearest-rank) per-server
// received tuples this round — the skew summary's tail statistic. On
// small clusters (including p = 1) the nearest-rank definition makes
// this the maximum; an empty or all-zero round yields 0.
func (r *RoundStat) P99Recv() int64 { return r.Quantile(0.99) }

// GiniRecv returns the Gini coefficient of the round's per-server
// received tuples: 0 for a perfectly balanced (or empty, all-zero, or
// single-server) round, approaching 1 as one server receives
// everything. Unlike Imbalance (max/mean) it weighs the whole
// distribution, so a round where half the servers idle scores worse
// than one with a single hot outlier of the same max.
func (r *RoundStat) GiniRecv() float64 { return stats.Gini(r.Recv) }

// Imbalance returns max/mean of per-server received tuples — 1.0 is
// perfect balance; hash-partition skew shows up directly here. Returns
// 0 for an empty round.
func (r *RoundStat) Imbalance() float64 {
	total := r.TotalRecv()
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.Recv))
	return float64(r.MaxRecv()) / mean
}

// Metrics accumulates per-round communication statistics for a cluster.
// It realizes the tutorial's cost model: L = MaxLoad, r = Rounds,
// C = TotalComm (slide 12 and slide 107's C = p·r·L accounting).
type Metrics struct {
	p     int
	stats []RoundStat
}

// NewMetrics creates empty metrics for a p-server cluster.
func NewMetrics(p int) *Metrics { return &Metrics{p: p} }

func (m *Metrics) record(name string, recv, recvWords []int64) {
	m.stats = append(m.stats, RoundStat{Name: name, Recv: recv, RecvWords: recvWords})
}

// Rounds returns r, the number of communication rounds executed.
func (m *Metrics) Rounds() int { return len(m.stats) }

// MaxLoad returns L: the maximum number of tuples received by any
// server in any single round.
func (m *Metrics) MaxLoad() int64 {
	var l int64
	for i := range m.stats {
		if v := m.stats[i].MaxRecv(); v > l {
			l = v
		}
	}
	return l
}

// MaxLoadWords is MaxLoad measured in words (attribute values).
func (m *Metrics) MaxLoadWords() int64 {
	var l int64
	for i := range m.stats {
		for _, v := range m.stats[i].RecvWords {
			if v > l {
				l = v
			}
		}
	}
	return l
}

// TotalComm returns C: the total number of tuples communicated across
// all rounds and servers.
func (m *Metrics) TotalComm() int64 {
	var t int64
	for i := range m.stats {
		t += m.stats[i].TotalRecv()
	}
	return t
}

// RoundStats returns the per-round statistics (read-only).
func (m *Metrics) RoundStats() []RoundStat { return m.stats }

// TotalReplays returns the delivery attempts beyond the first summed
// over all rounds (0 when no fault injector was attached).
func (m *Metrics) TotalReplays() int {
	n := 0
	for i := range m.stats {
		if cs := m.stats[i].Chaos; cs != nil {
			n += cs.Replays()
		}
	}
	return n
}

// MaxStraggleUnits returns the largest injected per-server delay across
// all rounds.
func (m *Metrics) MaxStraggleUnits() int64 {
	var u int64
	for i := range m.stats {
		if cs := m.stats[i].Chaos; cs != nil {
			if v := cs.MaxStraggle(); v > u {
				u = v
			}
		}
	}
	return u
}

// StatsSince returns the statistics of rounds executed at or after
// round index `from` (as returned by Rounds() before an algorithm ran)
// — the windowing primitive for asserting one algorithm's cost on a
// cluster that has already run others.
func (m *Metrics) StatsSince(from int) []RoundStat {
	if from < 0 {
		from = 0
	}
	if from > len(m.stats) {
		from = len(m.stats)
	}
	return m.stats[from:]
}

// RoundsSince returns the number of rounds executed since round index
// `from`.
func (m *Metrics) RoundsSince(from int) int { return len(m.StatsSince(from)) }

// MaxLoadSince returns L restricted to rounds at or after index `from`.
func (m *Metrics) MaxLoadSince(from int) int64 {
	var l int64
	for _, st := range m.StatsSince(from) {
		if v := st.MaxRecv(); v > l {
			l = v
		}
	}
	return l
}

// RoundNames returns the labels of all executed rounds in order.
func (m *Metrics) RoundNames() []string {
	names := make([]string, len(m.stats))
	for i := range m.stats {
		names[i] = m.stats[i].Name
	}
	return names
}

// MaxLoadOfRound returns the max per-server load of the named round
// (the first round with that name), or -1 if no such round ran.
func (m *Metrics) MaxLoadOfRound(name string) int64 {
	for i := range m.stats {
		if m.stats[i].Name == name {
			return m.stats[i].MaxRecv()
		}
	}
	return -1
}

// String renders a compact per-round report including balance figures.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d L=%d C=%d\n", m.Rounds(), m.MaxLoad(), m.TotalComm())
	for i := range m.stats {
		st := &m.stats[i]
		fmt.Fprintf(&b, "  round %2d %-28s maxRecv=%-10d p50=%-10d total=%-10d imbalance=%.2f\n",
			i+1, st.Name, st.MaxRecv(), st.Quantile(0.5), st.TotalRecv(), st.Imbalance())
		if cs := st.Chaos; cs != nil {
			fmt.Fprintf(&b, "           chaos: attempts=%d dropped=%d duplicated=%d redelivered=%d crashes=%d backoff=%d maxStraggle=%d\n",
				cs.Attempts, cs.Dropped, cs.Duplicated, cs.Redelivered, cs.Crashes, cs.BackoffUnits, cs.MaxStraggle())
		}
	}
	return b.String()
}

// WorstImbalance returns the highest max/mean load ratio across rounds
// (0 if no round communicated) together with that round's name.
func (m *Metrics) WorstImbalance() (float64, string) {
	worst, name := 0.0, ""
	for i := range m.stats {
		if im := m.stats[i].Imbalance(); im > worst {
			worst, name = im, m.stats[i].Name
		}
	}
	return worst, name
}
