package mpc_test

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// TestFragmentIsolation is the regression test for a latent
// single-process assumption: delivered fragments must be copies, never
// views into shared storage. A server that mutates a tuple it received
// must not be able to change (a) another server's copy of the same
// logical fragment, (b) the source's own relations, or (c) what a later
// round delivers — the round buffers are pooled, so aliasing would make
// a mutation in round k reappear as corrupt data in round k+1. The test
// pins the guarantee on both the built-in engine and a RoundView-based
// transport, whose Land path is what real wire backends use.
func TestFragmentIsolation(t *testing.T) {
	backends := []struct {
		name string
		tr   mpc.Transport
	}{
		{"local-default", nil},
		{"portable", portableTransport{}},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			run := func(mutate bool) *mpc.Cluster {
				c := mpc.NewCluster(3, 7)
				if be.tr != nil {
					c.SetTransport(be.tr)
				}
				input := relation.New("R", "a", "b")
				for i := 0; i < 30; i++ {
					input.Append(relation.Value(i), relation.Value(i*i))
				}
				c.ScatterRoundRobin(input)
				broadcastR := func(into string) func(*mpc.Server, *mpc.Out) {
					return func(s *mpc.Server, out *mpc.Out) {
						frag := s.Rel("R")
						st := out.Open(into, "a", "b")
						for i := 0; i < frag.Len(); i++ {
							st.Broadcast(frag.Row(i)...)
						}
					}
				}
				c.Round("first", broadcastR("X"))
				if mutate {
					// Server 0 scribbles over every tuple it received.
					x := c.Server(0).Rel("X")
					for i := 0; i < x.Len(); i++ {
						row := x.Row(i)
						for j := range row {
							row[j] = -999
						}
					}
				}
				c.Round("second", broadcastR("Y"))
				return c
			}

			clean := run(false)
			dirty := run(true)

			// (a) Other servers' copies of X are untouched, (b) the
			// sources' R fragments are untouched, (c) round two delivered
			// pristine data everywhere despite buffer pooling.
			for i := 0; i < clean.P(); i++ {
				for _, name := range []string{"R", "Y"} {
					assertSameFragment(t, clean, dirty, i, name)
				}
				if i != 0 {
					assertSameFragment(t, clean, dirty, i, "X")
				}
			}
			// Sanity: the scribble itself is visible on server 0, so the
			// test is actually mutating live storage, not a copy.
			if got := dirty.Server(0).Rel("X").Row(0)[0]; got != -999 {
				t.Fatalf("mutation did not stick: got %d", got)
			}
		})
	}
}

// assertSameFragment asserts server i's fragment of name is bit-
// identical in both clusters.
func assertSameFragment(t *testing.T, a, b *mpc.Cluster, i int, name string) {
	t.Helper()
	fa, fb := a.Server(i).Rel(name), b.Server(i).Rel(name)
	if (fa == nil) != (fb == nil) {
		t.Fatalf("%s server %d: present %v vs %v", name, i, fa != nil, fb != nil)
	}
	if fa == nil {
		return
	}
	if fa.Len() != fb.Len() {
		t.Fatalf("%s server %d: %d vs %d tuples", name, i, fa.Len(), fb.Len())
	}
	for r := 0; r < fa.Len(); r++ {
		ra, rb := fa.Row(r), fb.Row(r)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("%s server %d row %d: %v vs %v", name, i, r, ra, rb)
			}
		}
	}
}
