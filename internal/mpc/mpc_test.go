package mpc

import (
	"sync/atomic"
	"testing"

	"mpcquery/internal/relation"
)

func TestClusterConstruction(t *testing.T) {
	c := NewCluster(4, 1)
	if c.P() != 4 {
		t.Fatalf("p = %d", c.P())
	}
	for i := 0; i < 4; i++ {
		if c.Server(i).ID() != i || c.Server(i).P() != 4 {
			t.Fatalf("server %d misconfigured", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	NewCluster(0, 1)
}

func TestScatterRoundRobin(t *testing.T) {
	c := NewCluster(3, 1)
	r := relation.New("R", "x")
	for i := int64(0); i < 10; i++ {
		r.Append(i)
	}
	c.ScatterRoundRobin(r)
	if got := c.TotalLen("R"); got != 10 {
		t.Fatalf("total = %d", got)
	}
	// Round-robin balance: sizes within 1.
	if c.MaxFragLen("R") > 4 {
		t.Fatalf("max frag = %d", c.MaxFragLen("R"))
	}
	// Scatter is free.
	if c.Metrics().Rounds() != 0 || c.Metrics().TotalComm() != 0 {
		t.Fatalf("scatter should not be metered: %v", c.Metrics())
	}
	got := c.Gather("R")
	if !got.EqualAsSets(r) {
		t.Fatalf("gather lost tuples")
	}
}

func TestScatterByHashColocation(t *testing.T) {
	c := NewCluster(5, 1)
	r := relation.New("R", "x", "y")
	for i := int64(0); i < 100; i++ {
		r.Append(i%7, i)
	}
	c.ScatterByHash(r, []string{"x"}, 99)
	// All tuples with equal x must live on one server.
	owner := map[int64]int{}
	for i := 0; i < c.P(); i++ {
		f := c.Server(i).Rel("R")
		if f == nil {
			continue
		}
		for j := 0; j < f.Len(); j++ {
			x := f.Row(j)[0]
			if prev, ok := owner[x]; ok && prev != i {
				t.Fatalf("x=%d on servers %d and %d", x, prev, i)
			}
			owner[x] = i
		}
	}
}

func TestRoundDeliveryAndMetering(t *testing.T) {
	c := NewCluster(4, 1)
	// Each server sends its id to server (id+1)%p, and server 0 also
	// broadcasts one tuple.
	c.Round("shift", func(s *Server, out *Out) {
		st := out.Open("M", "v")
		st.Send((s.ID()+1)%s.P(), relation.Value(s.ID()))
		if s.ID() == 0 {
			b := out.Open("B", "w")
			b.Broadcast(relation.Value(42))
		}
	})
	m := c.Metrics()
	if m.Rounds() != 1 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
	// Every server receives 1 shifted tuple + 1 broadcast tuple = 2.
	if m.MaxLoad() != 2 {
		t.Fatalf("L = %d, want 2", m.MaxLoad())
	}
	// C = 4 sends + 4 broadcast copies = 8.
	if m.TotalComm() != 8 {
		t.Fatalf("C = %d, want 8", m.TotalComm())
	}
	for i := 0; i < 4; i++ {
		mrel := c.Server(i).Rel("M")
		if mrel == nil || mrel.Len() != 1 {
			t.Fatalf("server %d M = %v", i, mrel)
		}
		want := relation.Value((i + 3) % 4)
		if mrel.Row(0)[0] != want {
			t.Fatalf("server %d got %d, want %d", i, mrel.Row(0)[0], want)
		}
		brel := c.Server(i).Rel("B")
		if brel == nil || brel.Len() != 1 || brel.Row(0)[0] != 42 {
			t.Fatalf("server %d broadcast missing", i)
		}
	}
}

func TestRoundAppendsToExisting(t *testing.T) {
	c := NewCluster(2, 1)
	c.Round("r1", func(s *Server, out *Out) {
		out.Open("A", "x").Send(0, 1)
	})
	c.Round("r2", func(s *Server, out *Out) {
		out.Open("A", "x").Send(0, 2)
	})
	if got := c.Server(0).Rel("A").Len(); got != 4 {
		t.Fatalf("A len = %d, want 4 (2 servers × 2 rounds)", got)
	}
}

func TestRoundArityMismatchPanics(t *testing.T) {
	c := NewCluster(2, 1)
	c.Round("r1", func(s *Server, out *Out) {
		out.Open("A", "x").Send(0, 1)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	c.Round("r2", func(s *Server, out *Out) {
		out.Open("A", "x", "y").Send(0, 1, 2)
	})
}

func TestSendArityPanics(t *testing.T) {
	c := NewCluster(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Round("bad", func(s *Server, out *Out) {
		out.Open("A", "x").Send(0, 1, 2)
	})
}

func TestSendOutOfRangePanics(t *testing.T) {
	c := NewCluster(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Round("bad", func(s *Server, out *Out) {
		out.Open("A", "x").Send(5, 1)
	})
}

func TestComputePanicPropagates(t *testing.T) {
	c := NewCluster(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected compute panic to propagate")
		}
	}()
	c.Round("boom", func(s *Server, out *Out) {
		if s.ID() == 1 {
			panic("bug")
		}
	})
}

func TestLocalStepParallelAndUnmetered(t *testing.T) {
	c := NewCluster(8, 1)
	var ran int64
	c.LocalStep(func(s *Server) {
		atomic.AddInt64(&ran, 1)
		s.Put(relation.FromRows("L", []string{"x"}, [][]relation.Value{{relation.Value(s.ID())}}))
	})
	if ran != 8 {
		t.Fatalf("ran on %d servers", ran)
	}
	if c.Metrics().Rounds() != 0 {
		t.Fatal("local step must not be a round")
	}
	if c.TotalLen("L") != 8 {
		t.Fatalf("L total = %d", c.TotalLen("L"))
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []relation.Value {
		c := NewCluster(4, 7)
		c.Round("all", func(s *Server, out *Out) {
			st := out.Open("A", "x", "src")
			for i := 0; i < 5; i++ {
				st.Send(0, relation.Value(i), relation.Value(s.ID()))
			}
		})
		r := c.Server(0).Rel("A")
		var flat []relation.Value
		for i := 0; i < r.Len(); i++ {
			flat = append(flat, r.Row(i)...)
		}
		return flat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order differs at %d", i)
		}
	}
}

func TestGatherMissingPanics(t *testing.T) {
	c := NewCluster(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Gather("nope")
}

func TestMetricsReport(t *testing.T) {
	c := NewCluster(2, 1)
	c.Round("a", func(s *Server, out *Out) {
		out.Open("X", "v").Send(0, 1)
	})
	c.Round("b", func(s *Server, out *Out) {})
	m := c.Metrics()
	if m.Rounds() != 2 {
		t.Fatalf("rounds = %d", m.Rounds())
	}
	if m.MaxLoadOfRound("a") != 2 {
		t.Fatalf("round a load = %d", m.MaxLoadOfRound("a"))
	}
	if m.MaxLoadOfRound("b") != 0 {
		t.Fatalf("round b load = %d", m.MaxLoadOfRound("b"))
	}
	if m.MaxLoadOfRound("zzz") != -1 {
		t.Fatal("missing round should be -1")
	}
	if m.String() == "" {
		t.Fatal("empty report")
	}
	if m.MaxLoadWords() != 2 {
		t.Fatalf("words = %d", m.MaxLoadWords())
	}
	c.ResetMetrics()
	if c.Metrics().Rounds() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRelHelpers(t *testing.T) {
	c := NewCluster(2, 1)
	s := c.Server(0)
	if s.Rel("A") != nil {
		t.Fatal("unexpected relation")
	}
	e := s.RelOrEmpty("A", "x")
	if e.Len() != 0 || e.Arity() != 1 {
		t.Fatal("RelOrEmpty wrong")
	}
	s.Put(relation.FromRows("A", []string{"x"}, [][]relation.Value{{1}}))
	if s.RelOrEmpty("A", "x").Len() != 1 {
		t.Fatal("RelOrEmpty should return stored rel")
	}
	names := s.RelNames()
	if len(names) != 1 || names[0] != "A" {
		t.Fatalf("names = %v", names)
	}
	s.Delete("A")
	if s.Rel("A") != nil {
		t.Fatal("delete failed")
	}
	c.DeleteAll("A")
}

// TestPropCommunicationConservation: whatever routing a round uses, the
// sum of per-server received tuples equals the total sent, and the
// union of delivered fragments equals the sent multiset.
func TestPropCommunicationConservation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := NewCluster(2+int(seed%7), seed)
		input := relation.New("in", "k", "v")
		n := 50 + int(seed*37)%200
		for i := 0; i < n; i++ {
			input.Append(relation.Value(i%13), relation.Value(i))
		}
		c.ScatterRoundRobin(input)
		c.Round("scatter", func(s *Server, out *Out) {
			frag := s.Rel("in")
			if frag == nil {
				return
			}
			st := out.Open("out", "k", "v")
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(s.Rng().Intn(s.P()), row)
			}
		})
		if got := c.Metrics().TotalComm(); got != int64(n) {
			t.Fatalf("seed %d: total comm %d, want %d", seed, got, n)
		}
		if !c.Gather("out").EqualAsSets(input) {
			t.Fatalf("seed %d: routing lost or duplicated tuples", seed)
		}
		var sum int64
		for _, rs := range c.Metrics().RoundStats() {
			sum += rs.TotalRecv()
		}
		if sum != int64(n) {
			t.Fatalf("seed %d: per-round sums %d != %d", seed, sum, n)
		}
	}
}

func TestRoundStatQuantilesAndImbalance(t *testing.T) {
	c := NewCluster(4, 1)
	// Server 0 receives 8 tuples, others 0: imbalance = 8 / 2 = 4.
	c.Round("skewed", func(s *Server, out *Out) {
		if s.ID() == 0 {
			st := out.Open("A", "x")
			for i := 0; i < 8; i++ {
				st.Send(0, relation.Value(i))
			}
		}
	})
	rs := c.Metrics().RoundStats()[0]
	if got := rs.Imbalance(); got != 4 {
		t.Fatalf("imbalance = %g, want 4", got)
	}
	if rs.Quantile(0) != 0 || rs.Quantile(1) != 8 {
		t.Fatalf("quantiles wrong: %d %d", rs.Quantile(0), rs.Quantile(1))
	}
	worst, name := c.Metrics().WorstImbalance()
	if worst != 4 || name != "skewed" {
		t.Fatalf("worst imbalance = %g %q", worst, name)
	}
	// Perfectly balanced round: imbalance 1.
	c2 := NewCluster(4, 1)
	c2.Round("flat", func(s *Server, out *Out) {
		out.Open("A", "x").Send(s.ID(), 1)
	})
	if got := c2.Metrics().RoundStats()[0].Imbalance(); got != 1 {
		t.Fatalf("balanced imbalance = %g", got)
	}
	// Empty round: 0.
	c3 := NewCluster(2, 1)
	c3.Round("empty", func(s *Server, out *Out) {})
	if got := c3.Metrics().RoundStats()[0].Imbalance(); got != 0 {
		t.Fatalf("empty imbalance = %g", got)
	}
}
