package mpc_test

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// TestMeteringEquivalenceOnGeneratedWorkloads runs the same multi-round
// communication program — hash partition, RNG re-route, sampled
// broadcast, and an arity-0 decision stream — over the testkit workload
// generator's full skew matrix, once on the concurrent fast-path engine
// and once on the row-by-row reference engine, and asserts that the
// metered RoundStats are identical and the gathered relations are
// bit-for-bit equal. This is the contract of the delivery overhaul:
// (L, r, C) and every delivered fragment are unchanged observables.
func TestMeteringEquivalenceOnGeneratedWorkloads(t *testing.T) {
	for _, skew := range testkit.AllSkews {
		for _, p := range []int{2, 7, 16} {
			for _, seed := range []int64{1, 2, 3} {
				skew, p, seed := skew, p, seed
				t.Run(fmt.Sprintf("%s/p%d/seed%d", skew, p, seed), func(t *testing.T) {
					input := testkit.GenRelation("R", []string{"x", "y", "z"}, skew, testkit.GenConfig{Tuples: 400}, seed)

					run := func(c *mpc.Cluster) {
						c.ScatterRoundRobin(input)
						c.Round("partition", func(s *mpc.Server, out *mpc.Out) {
							frag := s.Rel("R")
							st := out.Open("H", "x", "y", "z")
							for i := 0; i < frag.Len(); i++ {
								row := frag.Row(i)
								st.SendRow(relation.Bucket(relation.HashRow(row, []int{0}, 42), s.P()), row)
							}
						})
						c.Round("reroute", func(s *mpc.Server, out *mpc.Out) {
							frag := s.Rel("H")
							if frag == nil {
								return
							}
							st := out.Open("G", "x", "y", "z")
							done := out.Open("done")
							for i := 0; i < frag.Len(); i++ {
								st.SendRow(s.Rng().Intn(s.P()), frag.Row(i))
							}
							done.Send(0)
						})
						c.Round("sample", func(s *mpc.Server, out *mpc.Out) {
							frag := s.Rel("G")
							if frag == nil || frag.Len() == 0 {
								return
							}
							out.Open("S", "x", "y", "z").Broadcast(frag.Row(s.Rng().Intn(frag.Len()))...)
						})
					}

					fast := mpc.NewCluster(p, seed)
					fast.SetDeliveryWorkers(4)
					run(fast)
					ref := mpc.NewCluster(p, seed)
					ref.SetReferenceDelivery(true)
					run(ref)

					fs, rs := fast.Metrics().RoundStats(), ref.Metrics().RoundStats()
					if len(fs) != len(rs) {
						t.Fatalf("rounds %d vs %d", len(fs), len(rs))
					}
					for i := range fs {
						if fs[i].Name != rs[i].Name {
							t.Fatalf("round %d: %q vs %q", i, fs[i].Name, rs[i].Name)
						}
						for d := 0; d < p; d++ {
							if fs[i].Recv[d] != rs[i].Recv[d] || fs[i].RecvWords[d] != rs[i].RecvWords[d] {
								t.Fatalf("round %q server %d: (%d,%d) vs (%d,%d)", fs[i].Name, d,
									fs[i].Recv[d], fs[i].RecvWords[d], rs[i].Recv[d], rs[i].RecvWords[d])
							}
						}
					}
					for _, name := range []string{"H", "G", "S", "done"} {
						a, b := fast.Gather(name), ref.Gather(name)
						if a.Len() != b.Len() {
							t.Fatalf("%s: %d vs %d tuples", name, a.Len(), b.Len())
						}
						for i := 0; i < a.Len(); i++ {
							ra, rb := a.Row(i), b.Row(i)
							for j := range ra {
								if ra[j] != rb[j] {
									t.Fatalf("%s row %d: %v vs %v", name, i, ra, rb)
								}
							}
						}
					}
				})
			}
		}
	}
}
