package stats

import (
	"math"
	"strings"
	"testing"

	"mpcquery/internal/relation"
)

// TestFromRecvEdgeCases pins the feedback signal on the degenerate
// receive vectors the adaptive executor can actually see: an empty
// round, a silent round, one server, perfectly balanced delivery, and
// extreme one-hot skew.
func TestFromRecvEdgeCases(t *testing.T) {
	tests := []struct {
		name string
		recv []int64
		want RecvSignal
	}{
		{"empty", nil, RecvSignal{}},
		{"all-zero", []int64{0, 0, 0, 0}, RecvSignal{}},
		{"single", []int64{42}, RecvSignal{MaxRecv: 42, Mean: 42, Imbalance: 1, Gini: 0}},
		{"all-equal", []int64{5, 5, 5, 5}, RecvSignal{MaxRecv: 5, Mean: 5, Imbalance: 1, Gini: 0}},
		{"one-hot", []int64{0, 0, 0, 400}, RecvSignal{MaxRecv: 400, Mean: 100, Imbalance: 4, Gini: 0.75}},
	}
	for _, tc := range tests {
		got := FromRecv(tc.recv)
		if got != tc.want {
			t.Errorf("%s: FromRecv(%v) = %+v, want %+v", tc.name, tc.recv, got, tc.want)
		}
	}
}

// TestFromRecvExtremeSkew checks the asymptotics on a large one-hot
// vector: imbalance approaches p and Gini approaches 1-1/p.
func TestFromRecvExtremeSkew(t *testing.T) {
	const p = 64
	recv := make([]int64, p)
	recv[17] = 1 << 20
	s := FromRecv(recv)
	if s.MaxRecv != 1<<20 {
		t.Fatalf("MaxRecv = %d", s.MaxRecv)
	}
	if math.Abs(s.Imbalance-p) > 1e-9 {
		t.Errorf("Imbalance = %v, want %v", s.Imbalance, float64(p))
	}
	if math.Abs(s.Gini-(1-1.0/p)) > 1e-9 {
		t.Errorf("Gini = %v, want %v", s.Gini, 1-1.0/p)
	}
}

// TestSkewedThresholds exercises both triggers and the disable
// semantics of non-positive thresholds.
func TestSkewedThresholds(t *testing.T) {
	balanced := FromRecv([]int64{10, 10, 10, 10})
	skewed := FromRecv([]int64{1, 1, 1, 97})
	if balanced.Skewed(2.0, 0.4) {
		t.Errorf("balanced signal %+v flagged skewed", balanced)
	}
	if !skewed.Skewed(2.0, 0.4) {
		t.Errorf("skewed signal %+v not flagged", skewed)
	}
	// Each trigger alone suffices.
	if !skewed.Skewed(2.0, 0) {
		t.Errorf("imbalance trigger alone should fire on %+v", skewed)
	}
	if !skewed.Skewed(0, 0.4) {
		t.Errorf("gini trigger alone should fire on %+v", skewed)
	}
	// Both disabled: never skewed.
	if skewed.Skewed(0, 0) {
		t.Errorf("disabled thresholds must never fire")
	}
	// Thresholds are strict: a signal exactly at the threshold does
	// not fire, so imbalance 1.0 survives maxImbalance 1.0.
	if balanced.Skewed(1.0, 0) {
		t.Errorf("imbalance exactly at threshold must not fire")
	}
	if got := skewed.String(); !strings.Contains(got, "max=97") {
		t.Errorf("String() = %q, want it to carry max recv", got)
	}
}

// TestSampledThreshold pins the probe-side scaling of a full-input
// heavy-hitter threshold.
func TestSampledThreshold(t *testing.T) {
	tests := []struct {
		threshold int
		frac      float64
		want      int
	}{
		{0, 0.15, 1},     // degenerate full threshold floors at 1
		{-3, 0.5, 1},     // negative likewise
		{100, 0.15, 15},  // plain scaling
		{100, 0.151, 16}, // ceil, not round
		{3, 0.15, 1},     // small threshold floors at 1
		{100, 0, 100},    // non-positive frac: no scaling
		{100, 1, 100},    // frac >= 1: no scaling
		{100, 2, 100},
	}
	for _, tc := range tests {
		if got := SampledThreshold(tc.threshold, tc.frac); got != tc.want {
			t.Errorf("SampledThreshold(%d, %g) = %d, want %d", tc.threshold, tc.frac, got, tc.want)
		}
	}
}

// TestHeavyHitterThresholdBoundary pins the inclusive >= threshold
// semantics the adaptive probe relies on: a value whose sampled degree
// lands exactly on SampledThreshold must be detected.
func TestHeavyHitterThresholdBoundary(t *testing.T) {
	d := Degrees{1: 2, 2: 3, 3: 4}
	if got := d.HeavyHitters(3); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("HeavyHitters(3) = %v, want [2 3] (inclusive threshold)", got)
	}
	if got := d.HeavyHitters(5); len(got) != 0 {
		t.Fatalf("HeavyHitters(5) = %v, want empty", got)
	}
	// Threshold 1 declares everything heavy — the degenerate-probe
	// floor of SampledThreshold must therefore stay conservative, not
	// silent.
	if got := d.HeavyHitters(SampledThreshold(0, 0.15)); len(got) != 3 {
		t.Fatalf("HeavyHitters(1) = %v, want all 3 values", got)
	}
}

// TestGiniExtremeSkew extends the Gini pin to a large planted-heavy
// degree vector: one value holding half the mass among many singletons
// must push Gini well above the 0.4 adaptive trigger.
func TestGiniExtremeSkew(t *testing.T) {
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = 1
	}
	xs[0] = 999 // one value with half the total mass
	if g := Gini(xs); g < 0.45 || g >= 1 {
		t.Errorf("Gini(planted heavy) = %v, want in [0.45, 1)", g)
	}
}

// TestQuantileInt64ExtremeSkew pins nearest-rank quantiles on a
// one-hot vector: every quantile below the top rank sees the zeros.
func TestQuantileInt64ExtremeSkew(t *testing.T) {
	xs := make([]int64, 100)
	xs[99] = 12345
	if got := QuantileInt64(xs, 0.98); got != 0 {
		t.Errorf("q0.98 of one-hot = %d, want 0", got)
	}
	if got := QuantileInt64(xs, 1); got != 12345 {
		t.Errorf("q1 of one-hot = %d, want 12345", got)
	}
}

// TestDegreesOfFeedbackPath mirrors how the adaptive probe derives
// heavy hitters: count degrees over a prefix and threshold them with
// the sampled threshold.
func TestDegreesOfFeedbackPath(t *testing.T) {
	r := relation.New("R", "a", "b")
	// 40 rows, value 7 appears every 4th row (degree 10), others once.
	for i := 0; i < 40; i++ {
		v := relation.Value(100 + i)
		if i%4 == 0 {
			v = 7
		}
		r.Append(v, relation.Value(i))
	}
	d := DegreesOf(r, "a")
	// Full threshold 8 (say IN/p); the probe saw the full relation
	// here, so the unscaled threshold finds exactly the planted value.
	if got := d.HeavyHitters(8); len(got) != 1 || got[0] != 7 {
		t.Fatalf("HeavyHitters(8) = %v, want [7]", got)
	}
}
