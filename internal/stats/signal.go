package stats

import (
	"fmt"
	"math"
)

// RecvSignal summarizes one metered round's per-server receive vector
// into the skew measures the adaptive executor thresholds. It is a
// pure function of the receive counts, so two runs that deliver the
// same tuples produce bit-identical signals — a prerequisite for the
// adaptive switch staying deterministic.
type RecvSignal struct {
	// MaxRecv is the largest per-server receive count (the round's L).
	MaxRecv int64
	// Mean is the average receive count across servers.
	Mean float64
	// Imbalance is MaxRecv/Mean — 1.0 for a perfectly balanced round,
	// approaching p when one server receives everything. 0 when the
	// round delivered nothing.
	Imbalance float64
	// Gini is the Gini coefficient of the receive vector — 0 for
	// perfectly equal loads, approaching 1−1/p when one server
	// receives everything.
	Gini float64
}

// FromRecv computes the signal for one round's per-server receive
// counts (e.g. mpc.RoundStat.Recv).
func FromRecv(recv []int64) RecvSignal {
	var s RecvSignal
	if len(recv) == 0 {
		return s
	}
	var total int64
	for _, r := range recv {
		if r > s.MaxRecv {
			s.MaxRecv = r
		}
		total += r
	}
	if total == 0 {
		return s
	}
	s.Mean = float64(total) / float64(len(recv))
	s.Imbalance = float64(s.MaxRecv) / s.Mean
	s.Gini = Gini(recv)
	return s
}

// Skewed reports whether the signal crosses either re-plan trigger:
// an imbalance ratio above maxImbalance or a Gini coefficient above
// maxGini. Non-positive thresholds disable the corresponding trigger.
func (s RecvSignal) Skewed(maxImbalance, maxGini float64) bool {
	if maxImbalance > 0 && s.Imbalance > maxImbalance {
		return true
	}
	if maxGini > 0 && s.Gini > maxGini {
		return true
	}
	return false
}

// String renders the signal for traces and EXPLAIN-style reports.
func (s RecvSignal) String() string {
	return fmt.Sprintf("max=%d mean=%.1f imbalance=%.2f gini=%.3f",
		s.MaxRecv, s.Mean, s.Imbalance, s.Gini)
}

// SampledThreshold scales a full-input heavy-hitter threshold down to
// a probe that observed only a frac fraction of the input: a value
// with full-input degree d is expected to show degree frac·d in the
// probe, so the probe-side threshold is ceil(frac·threshold), floored
// at 1 so a degenerate probe never declares every value heavy-free.
func SampledThreshold(threshold int, frac float64) int {
	if threshold <= 0 {
		return 1
	}
	if frac <= 0 || frac >= 1 {
		return threshold
	}
	t := int(math.Ceil(frac * float64(threshold)))
	if t < 1 {
		t = 1
	}
	return t
}
