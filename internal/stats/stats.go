package stats

import (
	"math"
	"sort"

	"mpcquery/internal/relation"
)

// Degrees maps each distinct value of one attribute to its frequency.
type Degrees map[relation.Value]int

// DegreesOf counts the occurrences of each value of attr in rel.
func DegreesOf(rel *relation.Relation, attr string) Degrees {
	c := rel.MustCol(attr)
	d := make(Degrees)
	n := rel.Len()
	for i := 0; i < n; i++ {
		d[rel.Row(i)[c]]++
	}
	return d
}

// Merge adds other's counts into d.
func (d Degrees) Merge(other Degrees) {
	for v, n := range other {
		d[v] += n
	}
}

// Max returns the maximum degree (0 for empty).
func (d Degrees) Max() int {
	m := 0
	for _, n := range d {
		if n > m {
			m = n
		}
	}
	return m
}

// HeavyHitters returns the values with degree ≥ threshold, sorted
// ascending for determinism.
func (d Degrees) HeavyHitters(threshold int) []relation.Value {
	var out []relation.Value
	for v, n := range d {
		if n >= threshold {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// HeavySet returns HeavyHitters as a membership set.
func (d Degrees) HeavySet(threshold int) map[relation.Value]bool {
	set := map[relation.Value]bool{}
	for v, n := range d {
		if n >= threshold {
			set[v] = true
		}
	}
	return set
}

// Summary describes the degree distribution of one attribute.
type Summary struct {
	Distinct  int
	Total     int
	MaxDegree int
	// P99Degree is the degree at the 99th percentile of values.
	P99Degree int
}

// Summarize computes a Summary from degrees.
func Summarize(d Degrees) Summary {
	s := Summary{Distinct: len(d)}
	degs := make([]int, 0, len(d))
	for _, n := range d {
		s.Total += n
		if n > s.MaxDegree {
			s.MaxDegree = n
		}
		degs = append(degs, n)
	}
	if len(degs) > 0 {
		sort.Ints(degs)
		s.P99Degree = degs[len(degs)*99/100]
	}
	return s
}

// QuantileInt64 returns the q-quantile (0 ≤ q ≤ 1) of xs using the
// nearest-rank definition: the smallest value with at least ⌈q·n⌉
// elements at or below it. QuantileInt64(xs, 0) is the minimum and
// QuantileInt64(xs, 1) the maximum; an empty slice yields 0. This is
// the single shared definition used by both the metric window
// (mpc.RoundStat) and the trace layer, so their skew summaries agree
// exactly.
func QuantileInt64(xs []int64, q float64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Gini returns the Gini coefficient of xs — 0 for perfect balance
// (all equal, including all-zero and single-element slices), tending
// to 1 as one element holds everything. It is the scale-free skew
// summary recorded per round by the trace layer: unlike max/mean it
// reflects the whole received-load distribution, not just its top.
func Gini(xs []int64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var total, weighted float64
	for i, v := range sorted {
		total += float64(v)
		weighted += float64(i+1) * float64(v)
	}
	if total == 0 {
		return 0
	}
	nf := float64(n)
	return (2*weighted)/(nf*total) - (nf+1)/nf
}

// JoinHeavyHitters finds the heavy hitters of a join attribute across
// both sides of a two-way join: values whose degree in r or in s
// reaches threshold (slide 29: "occurs at least IN/p times in R or S").
func JoinHeavyHitters(r, s *relation.Relation, attr string, threshold int) []relation.Value {
	dr := DegreesOf(r, attr)
	ds := DegreesOf(s, attr)
	set := map[relation.Value]bool{}
	for v, n := range dr {
		if n >= threshold {
			set[v] = true
		}
	}
	for v, n := range ds {
		if n >= threshold {
			set[v] = true
		}
	}
	out := make([]relation.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
