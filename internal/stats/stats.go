// Package stats computes the data statistics that skew-aware MPC
// algorithms consume: per-value degrees (frequencies) of join
// attributes, heavy-hitter detection against the tutorial's thresholds
// (a value is heavy when its degree exceeds IN/p — slide 29 for two-way
// joins, N/p for SkewHC on slide 47), and summary skew measures.
package stats

import (
	"sort"

	"mpcquery/internal/relation"
)

// Degrees maps each distinct value of one attribute to its frequency.
type Degrees map[relation.Value]int

// DegreesOf counts the occurrences of each value of attr in rel.
func DegreesOf(rel *relation.Relation, attr string) Degrees {
	c := rel.MustCol(attr)
	d := make(Degrees)
	n := rel.Len()
	for i := 0; i < n; i++ {
		d[rel.Row(i)[c]]++
	}
	return d
}

// Merge adds other's counts into d.
func (d Degrees) Merge(other Degrees) {
	for v, n := range other {
		d[v] += n
	}
}

// Max returns the maximum degree (0 for empty).
func (d Degrees) Max() int {
	m := 0
	for _, n := range d {
		if n > m {
			m = n
		}
	}
	return m
}

// HeavyHitters returns the values with degree ≥ threshold, sorted
// ascending for determinism.
func (d Degrees) HeavyHitters(threshold int) []relation.Value {
	var out []relation.Value
	for v, n := range d {
		if n >= threshold {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// HeavySet returns HeavyHitters as a membership set.
func (d Degrees) HeavySet(threshold int) map[relation.Value]bool {
	set := map[relation.Value]bool{}
	for v, n := range d {
		if n >= threshold {
			set[v] = true
		}
	}
	return set
}

// Summary describes the degree distribution of one attribute.
type Summary struct {
	Distinct  int
	Total     int
	MaxDegree int
	// P99Degree is the degree at the 99th percentile of values.
	P99Degree int
}

// Summarize computes a Summary from degrees.
func Summarize(d Degrees) Summary {
	s := Summary{Distinct: len(d)}
	degs := make([]int, 0, len(d))
	for _, n := range d {
		s.Total += n
		if n > s.MaxDegree {
			s.MaxDegree = n
		}
		degs = append(degs, n)
	}
	if len(degs) > 0 {
		sort.Ints(degs)
		s.P99Degree = degs[len(degs)*99/100]
	}
	return s
}

// JoinHeavyHitters finds the heavy hitters of a join attribute across
// both sides of a two-way join: values whose degree in r or in s
// reaches threshold (slide 29: "occurs at least IN/p times in R or S").
func JoinHeavyHitters(r, s *relation.Relation, attr string, threshold int) []relation.Value {
	dr := DegreesOf(r, attr)
	ds := DegreesOf(s, attr)
	set := map[relation.Value]bool{}
	for v, n := range dr {
		if n >= threshold {
			set[v] = true
		}
	}
	for v, n := range ds {
		if n >= threshold {
			set[v] = true
		}
	}
	out := make([]relation.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
