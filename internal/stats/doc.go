// Package stats computes the data statistics that skew-aware MPC
// algorithms consume, and the per-round feedback signal the adaptive
// executor reacts to.
//
// The static half is per-value degree (frequency) counting of join
// attributes and heavy-hitter detection against the tutorial's
// thresholds: a value is heavy when its degree exceeds IN/p (slide 29
// for two-way joins; N/p for SkewHC on slide 47). Degrees merge across
// fragments, so drivers can aggregate per-server counts into a global
// view, and JoinHeavyHitters applies the threshold across every join
// attribute of a query at once.
//
// The dynamic half (signal.go) summarizes one metered round's
// per-server receive vector into a RecvSignal — max load, mean,
// imbalance ratio max/mean, and Gini coefficient — which the adaptive
// layer (internal/hypercube RunAdaptive) thresholds to decide whether
// to abandon the uniform HyperCube plan mid-query and re-plan onto the
// skew-aware path. SampledThreshold scales a full-input heavy-hitter
// threshold down to the probe prefix the adaptive layer actually
// observed.
package stats
