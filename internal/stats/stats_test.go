package stats

import (
	"testing"

	"mpcquery/internal/relation"
)

func rel(rows ...[]relation.Value) *relation.Relation {
	return relation.FromRows("R", []string{"y", "p"}, rows)
}

func TestDegreesOf(t *testing.T) {
	r := rel([]relation.Value{1, 0}, []relation.Value{1, 1}, []relation.Value{2, 2})
	d := DegreesOf(r, "y")
	if d[1] != 2 || d[2] != 1 || len(d) != 2 {
		t.Fatalf("degrees = %v", d)
	}
	if d.Max() != 2 {
		t.Fatalf("max = %d", d.Max())
	}
}

func TestDegreesEmpty(t *testing.T) {
	d := DegreesOf(relation.New("R", "y"), "y")
	if len(d) != 0 || d.Max() != 0 {
		t.Fatalf("empty degrees wrong: %v", d)
	}
}

func TestMerge(t *testing.T) {
	a := Degrees{1: 2, 2: 1}
	b := Degrees{2: 3, 5: 1}
	a.Merge(b)
	if a[1] != 2 || a[2] != 4 || a[5] != 1 {
		t.Fatalf("merged = %v", a)
	}
}

func TestHeavyHitters(t *testing.T) {
	d := Degrees{10: 5, 20: 3, 30: 5, 40: 1}
	hh := d.HeavyHitters(4)
	if len(hh) != 2 || hh[0] != 10 || hh[1] != 30 {
		t.Fatalf("heavy = %v", hh)
	}
	set := d.HeavySet(4)
	if !set[10] || !set[30] || set[20] {
		t.Fatalf("heavy set = %v", set)
	}
	if got := d.HeavyHitters(100); len(got) != 0 {
		t.Fatalf("threshold 100 should find none: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	d := Degrees{}
	for v := relation.Value(0); v < 100; v++ {
		d[v] = 1
	}
	d[999] = 50
	s := Summarize(d)
	if s.Distinct != 101 || s.Total != 150 || s.MaxDegree != 50 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P99Degree != 1 {
		t.Fatalf("p99 = %d, want 1 (heavy value is beyond p99)", s.P99Degree)
	}
	empty := Summarize(Degrees{})
	if empty.Distinct != 0 || empty.MaxDegree != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestJoinHeavyHitters(t *testing.T) {
	r := rel([]relation.Value{1, 0}, []relation.Value{1, 1}, []relation.Value{2, 2})
	s := relation.FromRows("S", []string{"y", "q"}, [][]relation.Value{{2, 0}, {2, 1}, {3, 2}})
	// threshold 2: 1 heavy in r, 2 heavy in s.
	hh := JoinHeavyHitters(r, s, "y", 2)
	if len(hh) != 2 || hh[0] != 1 || hh[1] != 2 {
		t.Fatalf("join heavy = %v", hh)
	}
}

// TestQuantileInt64 pins the shared nearest-rank quantile on raw
// slices — the primitive both RoundStat.Quantile and the trace skew
// events delegate to, so the two layers agree exactly.
func TestQuantileInt64(t *testing.T) {
	tests := []struct {
		name string
		xs   []int64
		q    float64
		want int64
	}{
		{"empty", nil, 0.99, 0},
		{"single", []int64{9}, 0.99, 9},
		{"min", []int64{4, 2, 8}, 0, 2},
		{"max", []int64{4, 2, 8}, 1, 8},
		{"median of 4", []int64{40, 10, 30, 20}, 0.5, 20},
		{"p99 small n is max", []int64{3, 1, 2}, 0.99, 3},
		{"input not mutated check", []int64{5, 1}, 0.5, 1},
	}
	for _, tc := range tests {
		xs := append([]int64(nil), tc.xs...)
		if got := QuantileInt64(xs, tc.q); got != tc.want {
			t.Errorf("%s: QuantileInt64(%v, %g) = %d, want %d", tc.name, tc.xs, tc.q, got, tc.want)
		}
		for i := range xs {
			if xs[i] != tc.xs[i] {
				t.Errorf("%s: QuantileInt64 mutated its input: %v", tc.name, xs)
				break
			}
		}
	}
}

// TestGini pins the Gini coefficient on raw slices.
func TestGini(t *testing.T) {
	tests := []struct {
		name string
		xs   []int64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []int64{7}, 0},
		{"all-zero", []int64{0, 0, 0}, 0},
		{"uniform", []int64{3, 3, 3}, 0},
		{"one-hot of 4", []int64{0, 100, 0, 0}, 0.75},
		{"1..4", []int64{2, 4, 1, 3}, 0.25},
	}
	for _, tc := range tests {
		xs := append([]int64(nil), tc.xs...)
		if got := Gini(xs); got != tc.want {
			t.Errorf("%s: Gini(%v) = %v, want %v", tc.name, tc.xs, got, tc.want)
		}
		for i := range xs {
			if xs[i] != tc.xs[i] {
				t.Errorf("%s: Gini mutated its input: %v", tc.name, xs)
				break
			}
		}
	}
}
