package recursive

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Op is one tuple-level mutation of a JoinView base relation, applied
// with set semantics.
type Op struct {
	Rel    string // base relation name as passed to NewJoinView
	Insert bool
	Row    []relation.Value
}

// JoinView is a standing two-way join R(x, y) |><| S(y, z) maintained
// incrementally: the bases are co-partitioned by the join value, and a
// mutation batch is folded to its net effect, turned into signed view
// deltas by the exact product rule
//
//	d(R |><| S) = dR |><| S_old  +  R_new |><| dS,
//
// and shipped to the view owners in ONE metered round — against the
// two rounds (plus full base reshuffle) of recomputation from
// scratch. Owners fold the signed deltas into per-tuple derivation
// counts; the testkit harness asserts the maintained view equal to
// recomputation on every generated workload.
type JoinView struct {
	c                   *mpc.Cluster
	name                string
	rName               string
	sName               string
	rAttrs              []string
	sAttrs              []string
	outAttrs            []string
	rFrag               string
	sFrag               string
	joinSeed, ownerSeed uint64

	// Driver-side per-server state (identity keys; safe under fault
	// injection — computes run exactly once, only delivery is replayed).
	rIdx, sIdx []map[string]struct{} // base membership at the co-partitions
	counts     []map[string]int      // derivation counts at the view owners

	batches int
}

var outCols = []int{0, 1, 2}

// NewJoinView evaluates the initial join of r and s into outName (one
// metered round) and returns the view handle plus the evaluation
// Result. r and s must be binary; the view schema (r.x, r.y, s.z)
// must have three distinct attribute names.
func NewJoinView(c *mpc.Cluster, r, s *relation.Relation, outName string, seed uint64) (*JoinView, *Result, error) {
	if r.Arity() != 2 || s.Arity() != 2 {
		return nil, nil, fmt.Errorf("recursive: JoinView wants binary bases, got arity %d and %d", r.Arity(), s.Arity())
	}
	outAttrs := []string{r.Attrs()[0], r.Attrs()[1], s.Attrs()[1]}
	if outAttrs[0] == outAttrs[2] || outAttrs[1] == outAttrs[2] {
		return nil, nil, fmt.Errorf("recursive: JoinView schema %v is not three distinct attributes", outAttrs)
	}
	p := c.P()
	v := &JoinView{
		c: c, name: outName,
		rName: r.Name(), sName: s.Name(),
		rAttrs:   append([]string(nil), r.Attrs()...),
		sAttrs:   append([]string(nil), s.Attrs()...),
		outAttrs: outAttrs,
		rFrag:    outName + ":R", sFrag: outName + ":S",
		joinSeed: mix(seed, 3), ownerSeed: mix(seed, 4),
		rIdx: make([]map[string]struct{}, p), sIdx: make([]map[string]struct{}, p),
		counts: make([]map[string]int, p),
	}
	start := c.Metrics().Rounds()

	rc := r.Project(v.rFrag, r.Attrs()...)
	rc.Dedup()
	c.ScatterByHash(rc, v.rAttrs[1:2], v.joinSeed)
	sc := s.Project(v.sFrag, s.Attrs()...)
	sc.Dedup()
	c.ScatterByHash(sc, v.sAttrs[0:1], v.joinSeed)

	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		v.rIdx[sid] = keySet(s.RelOrEmpty(v.rFrag, v.rAttrs...))
		v.sIdx[sid] = keySet(s.RelOrEmpty(v.sFrag, v.sAttrs...))
	})

	// Initial evaluation: one round shipping each joined tuple to its
	// owner. Deduped binary bases make every (x, y, z) derivation
	// unique, so no local distinct pass is needed.
	c.Round(outName+":init", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open(outName, outAttrs...)
		rf := s.RelOrEmpty(v.rFrag, v.rAttrs...)
		sf := s.RelOrEmpty(v.sFrag, v.sAttrs...)
		if rf.Len() == 0 || sf.Len() == 0 {
			return
		}
		ix := relation.BuildIndex(sf, v.sAttrs[0:1])
		row := make([]relation.Value, 3)
		for i := 0; i < rf.Len(); i++ {
			rr := rf.Row(i)
			for _, j := range ix.Lookup(rr, []int{1}) {
				row[0], row[1], row[2] = rr[0], rr[1], sf.Row(int(j))[1]
				st.SendRow(relation.Bucket(relation.HashRow(row, outCols, v.ownerSeed), p), row)
			}
		}
	})
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		view := s.RelOrEmpty(outName, outAttrs...)
		m := make(map[string]int, view.Len())
		for i := 0; i < view.Len(); i++ {
			m[relation.EncodeKey(view.Row(i), outCols)] = 1 // identity key only
		}
		v.counts[sid] = m
		s.Put(view)
	})
	res := &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start, OutSize: c.TotalLen(outName)}
	return v, res, nil
}

// ApplyBatch applies a batch of base mutations to the standing view in
// one metered round. The batch is folded per base tuple to its net
// effect first, so delete-then-reinsert of the same tuple ships
// nothing.
func (v *JoinView) ApplyBatch(ops []Op) (*BatchStats, error) {
	c := v.c
	v.batches++
	p := c.P()
	start := c.Metrics().Rounds()
	trace.Annotatef(c, "%s batch %d: %d ops", v.name, v.batches, len(ops))

	// Ops travel to the co-partition of their join value — column c1
	// for R (its y) and column c0 for S — preserving batch order.
	opsR := relation.New(v.name+":opsR", "o", "c0", "c1")
	opsS := relation.New(v.name+":opsS", "o", "c0", "c1")
	for _, op := range ops {
		if len(op.Row) != 2 {
			return nil, fmt.Errorf("recursive: op row arity %d, want 2", len(op.Row))
		}
		flag := relation.Value(0)
		if op.Insert {
			flag = 1
		}
		row := []relation.Value{flag, op.Row[0], op.Row[1]}
		switch op.Rel {
		case v.rName:
			opsR.AppendRow(row)
		case v.sName:
			opsS.AppendRow(row)
		default:
			return nil, fmt.Errorf("recursive: op against unknown base %q (view joins %q and %q)", op.Rel, v.rName, v.sName)
		}
	}
	c.ScatterByHash(opsR, []string{"c1"}, v.joinSeed)
	c.ScatterByHash(opsS, []string{"c0"}, v.joinSeed)

	candName := v.name + ":cand"
	candAttrs := []string{"o", "c0", "c1", "c2"}
	c.Round(v.name+":delta", func(s *mpc.Server, out *mpc.Out) {
		sid := s.ID()
		st := out.Open(candName, candAttrs...)
		send := func(sign, x, y, z relation.Value) {
			dst := relation.Bucket(relation.HashRow([]relation.Value{x, y, z}, outCols, v.ownerSeed), p)
			st.Send(dst, sign, x, y, z)
		}
		rf := s.RelOrEmpty(v.rFrag, v.rAttrs...)
		sf := s.RelOrEmpty(v.sFrag, v.sAttrs...)

		// dR against S_old, then apply dR; R_new against dS, then
		// apply dS — the exact product-rule order.
		dRm, dRp := netFold(s, v.name+":opsR", v.rIdx[sid])
		if len(dRm)+len(dRp) > 0 {
			ix := relation.BuildIndex(sf, v.sAttrs[0:1])
			for _, d := range dRm {
				for _, j := range ix.Lookup(d[:], []int{1}) {
					send(-1, d[0], d[1], sf.Row(int(j))[1])
				}
			}
			for _, d := range dRp {
				for _, j := range ix.Lookup(d[:], []int{1}) {
					send(1, d[0], d[1], sf.Row(int(j))[1])
				}
			}
			rf = applyNet(rf, dRm, dRp, v.rIdx[sid])
			s.Put(rf)
		}
		dSm, dSp := netFold(s, v.name+":opsS", v.sIdx[sid])
		if len(dSm)+len(dSp) > 0 {
			ix := relation.BuildIndex(rf, v.rAttrs[1:2])
			for _, d := range dSm {
				for _, j := range ix.Lookup(d[:], []int{0}) {
					send(-1, rf.Row(int(j))[0], d[0], d[1])
				}
			}
			for _, d := range dSp {
				for _, j := range ix.Lookup(d[:], []int{0}) {
					send(1, rf.Row(int(j))[0], d[0], d[1])
				}
			}
			sf = applyNet(sf, dSm, dSp, v.sIdx[sid])
			s.Put(sf)
		}
		s.Delete(v.name + ":opsR")
		s.Delete(v.name + ":opsS")
	})

	// Owners fold the signed deltas into derivation counts and patch
	// their view fragment: removed tuples are filtered out in place,
	// net-new tuples append in first-crossing delivery order.
	ins := make([]int, p)
	del := make([]int, p)
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		cands := s.RelOrEmpty(candName, candAttrs...)
		m := v.counts[sid]
		type touch struct {
			row  [3]relation.Value
			init int
		}
		touched := map[string]*touch{}
		var order []string
		for i := 0; i < cands.Len(); i++ {
			row := cands.Row(i)
			k := relation.EncodeKey(row, []int{1, 2, 3}) // identity key only
			if _, ok := touched[k]; !ok {
				touched[k] = &touch{row: [3]relation.Value{row[1], row[2], row[3]}, init: m[k]}
				order = append(order, k)
			}
			m[k] += int(row[0])
		}
		var removed map[string]struct{}
		var added [][3]relation.Value
		for _, k := range order {
			t := touched[k]
			final := m[k]
			if final < 0 || final > 1 {
				panic(fmt.Sprintf("recursive: view %s derivation count %d for a set-semantics join", v.name, final))
			}
			switch {
			case t.init > 0 && final == 0:
				if removed == nil {
					removed = map[string]struct{}{}
				}
				removed[k] = struct{}{}
				delete(m, k)
			case t.init == 0 && final > 0:
				added = append(added, t.row)
			default:
				if final == 0 {
					delete(m, k)
				}
			}
		}
		if len(removed) == 0 && len(added) == 0 {
			s.Delete(candName)
			return
		}
		view := s.RelOrEmpty(v.name, v.outAttrs...)
		next := relation.New(v.name, v.outAttrs...)
		for i := 0; i < view.Len(); i++ {
			if _, gone := removed[relation.EncodeKey(view.Row(i), outCols)]; !gone {
				next.AppendRow(view.Row(i))
			}
		}
		for _, row := range added {
			next.AppendRow(row[:])
		}
		s.Put(next)
		ins[sid] = len(added)
		del[sid] = len(removed)
		s.Delete(candName)
	})

	stats := &BatchStats{Rounds: c.Metrics().Rounds() - start}
	for i := 0; i < p; i++ {
		stats.Inserted += ins[i]
		stats.Deleted += del[i]
	}
	return stats, nil
}

// netFold reduces a scattered ops fragment to its net tuple-level
// effect against the base membership index: returns the net deletions
// and net insertions in first-touch batch order.
func netFold(s *mpc.Server, opsName string, idx map[string]struct{}) (dels, inss [][2]relation.Value) {
	o := s.RelOrEmpty(opsName, "o", "c0", "c1")
	type ent struct {
		row         [2]relation.Value
		init, final bool
	}
	m := map[string]*ent{}
	var order []string
	for i := 0; i < o.Len(); i++ {
		row := o.Row(i)
		k := relation.EncodeKey(row, []int{1, 2}) // identity key only
		e, ok := m[k]
		if !ok {
			_, present := idx[k]
			e = &ent{row: [2]relation.Value{row[1], row[2]}, init: present}
			m[k] = e
			order = append(order, k)
		}
		e.final = row[0] == 1
	}
	for _, k := range order {
		e := m[k]
		switch {
		case e.init && !e.final:
			dels = append(dels, e.row)
		case !e.init && e.final:
			inss = append(inss, e.row)
		}
	}
	return dels, inss
}

// applyNet rebuilds a base fragment under net deletions/insertions,
// preserving scan order, and updates the membership index.
func applyNet(frag *relation.Relation, dels, inss [][2]relation.Value, idx map[string]struct{}) *relation.Relation {
	for _, d := range dels {
		delete(idx, relation.EncodeKey(d[:], bothCols))
	}
	next := relation.New(frag.Name(), frag.Attrs()...)
	for i := 0; i < frag.Len(); i++ {
		if _, in := idx[relation.EncodeKey(frag.Row(i), bothCols)]; in {
			next.AppendRow(frag.Row(i))
		}
	}
	for _, a := range inss {
		idx[relation.EncodeKey(a[:], bothCols)] = struct{}{}
		next.AppendRow(a[:])
	}
	return next
}
