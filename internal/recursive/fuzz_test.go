package recursive

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// FuzzSemiNaiveTC decodes the input as an edge list — consecutive byte
// pairs, each value folded into a small vertex domain so paths actually
// compose — and checks the distributed semi-naive fixpoint against the
// single-machine naive oracle. Duplicate edges, self-loops, and empty
// inputs all fall out of the encoding for free; the round invariant
// (exactly two metered rounds per iteration) is asserted on every run.
func FuzzSemiNaiveTC(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{1, 2, 2, 3, 3, 1})          // 3-cycle
	f.Add([]byte{5, 5})                      // self-loop
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4})    // chain
	f.Add([]byte{7, 8, 7, 8, 8, 7, 9})       // duplicates + odd tail
	f.Add([]byte{0, 0, 0, 1, 1, 0, 2, 2, 3}) // loops into a 2-cycle
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("oversized edge list")
		}
		edges := relation.New("E", "src", "dst")
		for i := 0; i+1 < len(data); i += 2 {
			edges.Append(relation.Value(data[i]%16), relation.Value(data[i+1]%16))
		}
		p := 2 + int(uint(len(data))%3)
		c := mpc.NewCluster(p, int64(len(data)))
		res, err := TransitiveClosure(c, edges, "tc", uint64(len(data))+3)
		if err != nil {
			t.Fatalf("transitive closure: %v", err)
		}
		if res.Rounds != 2*res.Iterations {
			t.Fatalf("rounds = %d over %d iterations, want exactly 2 per iteration", res.Rounds, res.Iterations)
		}
		want := testkit.OracleFixpoint("tc", edges)
		got := gatherSorted(c, "tc", []string{"src", "dst"})
		if !testkit.BagEqual(got, want) {
			t.Fatalf("closure differs from naive fixpoint: %s", testkit.DiffSample(got, want))
		}
	})
}
