package recursive

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/testkit"
	"mpcquery/internal/trace"
)

// Chaos-differential tests for the fixpoint kernel. The schedule list
// is FixpointChaosSpecs, whose after= entries delay fault onset past
// the first iterations so crashes and drops land *between* fixpoint
// iterations — the regime where a recovery bug would corrupt the
// standing delta rather than a single shuffle. Recovery must be
// invisible: bit-for-bit identical fragments, identical (L, r, C),
// and a trace whose crash/replay events reconcile with the ledger.

func runFixpointChaos(t *testing.T, name string, run func(c *mpc.Cluster, p int, seed int64, skew testkit.Skew) error) {
	t.Helper()
	testkit.SweepChaos(t, testkit.Config{ChaosSpecs: testkit.FixpointChaosSpecs},
		func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
			clean := mpc.NewCluster(p, seed)
			if err := run(clean, p, seed, skew); err != nil {
				t.Fatalf("fault-free %s: %v", name, err)
			}
			chaotic := testkit.NewChaosCluster(p, seed, spec)
			rec := trace.NewRecorder()
			chaotic.SetTracer(rec)
			if err := run(chaotic, p, seed, skew); err != nil {
				t.Fatalf("chaos %s: %v", name, err)
			}
			testkit.AssertRecovered(t, chaotic)
			testkit.AssertSameLRC(t, clean, chaotic)
			testkit.AssertSameFragments(t, clean, chaotic)
			testkit.AssertTraceConsistent(t, chaotic, rec)
		})
}

func TestSemiNaiveTCChaos(t *testing.T) {
	runFixpointChaos(t, "transitive closure", func(c *mpc.Cluster, p int, seed int64, skew testkit.Skew) error {
		edges := genGraph(skew, seed)
		_, err := TransitiveClosure(c, edges, "tc", 0x5eed+uint64(p))
		return err
	})
}

func TestConnectedComponentsChaos(t *testing.T) {
	runFixpointChaos(t, "connected components", func(c *mpc.Cluster, p int, seed int64, skew testkit.Skew) error {
		edges := genGraph(skew, seed)
		_, err := ConnectedComponents(c, edges, "cc", 0xcc+uint64(p))
		return err
	})
}

// TestClosureViewChaos exercises the IVM pipeline — initial closure,
// a mixed insert/delete batch (delete phase incl. over-delete and
// rederivation), then an insert-only batch — under the same schedules.
func TestClosureViewChaos(t *testing.T) {
	runFixpointChaos(t, "closure view", func(c *mpc.Cluster, p int, seed int64, skew testkit.Skew) error {
		edges := genGraph(skew, seed)
		view, _, err := NewClosureView(c, edges, "tcv", 0x1f+uint64(p))
		if err != nil {
			return err
		}
		e0, e1 := edges.Row(0), edges.Row(1)
		if _, err := view.ApplyBatch([]EdgeOp{
			{Insert: false, From: e0[0], To: e0[1]},
			{Insert: true, From: e1[1], To: e0[0]},
		}); err != nil {
			return err
		}
		_, err = view.ApplyBatch([]EdgeOp{{Insert: true, From: 1, To: 2}})
		return err
	})
}
