package recursive

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

func edgeRel(t *testing.T, pairs ...[2]relation.Value) *relation.Relation {
	t.Helper()
	r := relation.New("E", "src", "dst")
	for _, p := range pairs {
		r.AppendRow(p[:])
	}
	return r
}

func gatherSorted(c *mpc.Cluster, name string, attrs []string) *relation.Relation {
	got := testkit.GatherResult(c, name, attrs)
	got.Sort()
	return got
}

func TestTransitiveClosureChain(t *testing.T) {
	edges := edgeRel(t, [2]relation.Value{1, 2}, [2]relation.Value{2, 3}, [2]relation.Value{3, 4})
	c := mpc.NewCluster(3, 7)
	res, err := TransitiveClosure(c, edges, "tc", 42)
	if err != nil {
		t.Fatal(err)
	}
	want := testkit.OracleFixpoint("tc", edges)
	got := gatherSorted(c, "tc", []string{"src", "dst"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("closure differs from oracle: %s", testkit.DiffSample(got, want))
	}
	// Chain of 3 edges: deltas are length-1, length-2, length-3 paths,
	// then one empty-delta-producing pass — 3 iterations, 2 rounds each.
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", res.Iterations)
	}
	if res.Rounds != 2*res.Iterations {
		t.Errorf("rounds = %d, want 2*%d", res.Rounds, res.Iterations)
	}
	if res.OutSize != want.Len() {
		t.Errorf("OutSize = %d, want %d", res.OutSize, want.Len())
	}
	testkit.AssertRounds(t, c, res.Rounds)
}

func TestEmptyGraphDegenerate(t *testing.T) {
	empty := relation.New("E", "src", "dst")
	c := mpc.NewCluster(4, 1)
	res, err := TransitiveClosure(c, empty, "tc", 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.Rounds != 0 || res.OutSize != 0 {
		t.Errorf("empty-graph closure: %+v, want 0 iterations/rounds/size", res)
	}
	if res, err = ConnectedComponents(c, empty, "cc", 9); err != nil {
		t.Fatal(err)
	} else if res.Iterations != 0 || res.OutSize != 0 {
		t.Errorf("empty-graph components: %+v, want 0 iterations/size", res)
	}
	if res, err = Reachable(c, empty, nil, "reach", 9); err != nil {
		t.Fatal(err)
	} else if res.Iterations != 0 || res.OutSize != 0 {
		t.Errorf("empty-source reachability: %+v, want 0 iterations/size", res)
	}
}

func TestSelfLoopDegenerate(t *testing.T) {
	edges := edgeRel(t, [2]relation.Value{5, 5}, [2]relation.Value{5, 6}, [2]relation.Value{6, 6})
	c := mpc.NewCluster(2, 3)
	if _, err := TransitiveClosure(c, edges, "tc", 11); err != nil {
		t.Fatal(err)
	}
	want := testkit.OracleFixpoint("tc", edges)
	got := gatherSorted(c, "tc", []string{"src", "dst"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("self-loop closure differs from oracle: %s", testkit.DiffSample(got, want))
	}
	if _, err := ConnectedComponents(c, edges, "cc", 11); err != nil {
		t.Fatal(err)
	}
	wantCC := testkit.OracleComponents("cc", edges)
	gotCC := gatherSorted(c, "cc", []string{"v", "comp"})
	if !testkit.BagEqual(gotCC, wantCC) {
		t.Fatalf("self-loop components differ from oracle: %s", testkit.DiffSample(gotCC, wantCC))
	}
}

func TestSingleComponentCycle(t *testing.T) {
	edges := edgeRel(t, [2]relation.Value{1, 2}, [2]relation.Value{2, 3}, [2]relation.Value{3, 1})
	c := mpc.NewCluster(3, 5)
	if _, err := TransitiveClosure(c, edges, "tc", 13); err != nil {
		t.Fatal(err)
	}
	got := gatherSorted(c, "tc", []string{"src", "dst"})
	if got.Len() != 9 { // complete closure of a 3-cycle
		t.Fatalf("cycle closure has %d tuples, want 9", got.Len())
	}
	res, err := ConnectedComponents(c, edges, "cc", 13)
	if err != nil {
		t.Fatal(err)
	}
	gotCC := gatherSorted(c, "cc", []string{"v", "comp"})
	for i := 0; i < gotCC.Len(); i++ {
		if gotCC.Row(i)[1] != 1 {
			t.Fatalf("vertex %d labelled %d, want component 1", gotCC.Row(i)[0], gotCC.Row(i)[1])
		}
	}
	if res.OutSize != 3 {
		t.Errorf("components OutSize = %d, want 3", res.OutSize)
	}
}

func TestReachableSources(t *testing.T) {
	edges := edgeRel(t,
		[2]relation.Value{1, 2}, [2]relation.Value{2, 3},
		[2]relation.Value{10, 11}, [2]relation.Value{20, 21})
	c := mpc.NewCluster(2, 2)
	res, err := Reachable(c, edges, []relation.Value{1, 10, 99}, "reach", 17)
	if err != nil {
		t.Fatal(err)
	}
	want := testkit.OracleReachable("reach", edges, []relation.Value{1, 10, 99})
	got := gatherSorted(c, "reach", []string{"src"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("reachability differs from oracle: %s", testkit.DiffSample(got, want))
	}
	// 1, 2, 3, 10, 11, and the edge-less source 99.
	if res.OutSize != 6 {
		t.Errorf("OutSize = %d, want 6", res.OutSize)
	}
}

func TestDuplicateInputEdges(t *testing.T) {
	edges := edgeRel(t, [2]relation.Value{1, 2}, [2]relation.Value{1, 2}, [2]relation.Value{2, 3})
	c := mpc.NewCluster(2, 4)
	if _, err := TransitiveClosure(c, edges, "tc", 21); err != nil {
		t.Fatal(err)
	}
	want := testkit.OracleFixpoint("tc", edges)
	got := gatherSorted(c, "tc", []string{"src", "dst"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("duplicate-edge closure differs from oracle: %s", testkit.DiffSample(got, want))
	}
}

func TestArityValidation(t *testing.T) {
	bad := relation.New("E", "a")
	c := mpc.NewCluster(2, 1)
	if _, err := TransitiveClosure(c, bad, "tc", 1); err == nil {
		t.Error("TransitiveClosure accepted a unary relation")
	}
	if _, err := ConnectedComponents(c, bad, "cc", 1); err == nil {
		t.Error("ConnectedComponents accepted a unary relation")
	}
	if _, err := Reachable(c, bad, nil, "r", 1); err == nil {
		t.Error("Reachable accepted a unary relation")
	}
	if _, _, err := NewClosureView(c, bad, "v", 1); err == nil {
		t.Error("NewClosureView accepted a unary relation")
	}
}

func TestJoinViewBasic(t *testing.T) {
	r := relation.New("R", "x", "y")
	r.AppendRow([]relation.Value{1, 10})
	r.AppendRow([]relation.Value{2, 10})
	s := relation.New("S", "y2", "z")
	s.AppendRow([]relation.Value{10, 100})
	c := mpc.NewCluster(3, 6)
	view, res, err := NewJoinView(c, r, s, "V", 23)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || res.OutSize != 2 {
		t.Fatalf("init: %+v, want 1 round, 2 tuples", res)
	}

	// Delete-then-reinsert folds to a no-op batch.
	stats, err := view.ApplyBatch([]Op{
		{Rel: "R", Insert: false, Row: []relation.Value{1, 10}},
		{Rel: "R", Insert: true, Row: []relation.Value{1, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 0 || stats.Deleted != 0 {
		t.Fatalf("no-op batch changed the view: %+v", stats)
	}

	// A real mixed batch, checked against recomputation from scratch.
	ops := []Op{
		{Rel: "S", Insert: false, Row: []relation.Value{10, 100}},
		{Rel: "S", Insert: true, Row: []relation.Value{10, 200}},
		{Rel: "R", Insert: true, Row: []relation.Value{3, 10}},
	}
	if stats, err = view.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 1 {
		t.Errorf("batch cost %d rounds, want 1", stats.Rounds)
	}
	bases := map[string]*relation.Relation{"R": r, "S": s}
	var setOps []testkit.SetOp
	for _, op := range ops {
		setOps = append(setOps, testkit.SetOp{Rel: op.Rel, Insert: op.Insert, Row: op.Row})
	}
	next := testkit.ApplySetOps(bases, setOps)
	want := testkit.OracleJoinView("V", next["R"], next["S"])
	got := gatherSorted(c, "V", []string{"x", "y", "z"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("maintained view differs from recomputation: %s", testkit.DiffSample(got, want))
	}
	if stats.Inserted != 3 || stats.Deleted != 2 {
		t.Errorf("stats = %+v, want 3 inserted, 2 deleted", stats)
	}
}

func TestJoinViewRejectsUnknownBase(t *testing.T) {
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y2", "z")
	c := mpc.NewCluster(2, 1)
	view, _, err := NewJoinView(c, r, s, "V", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.ApplyBatch([]Op{{Rel: "T", Insert: true, Row: []relation.Value{1, 2}}}); err == nil {
		t.Error("ApplyBatch accepted an op against an unknown base")
	}
}

func TestClosureViewBasic(t *testing.T) {
	edges := edgeRel(t, [2]relation.Value{1, 2}, [2]relation.Value{2, 3}, [2]relation.Value{1, 3})
	c := mpc.NewCluster(3, 8)
	view, res, err := NewClosureView(c, edges, "tcv", 31)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutSize != 3 { // {12, 23, 13}
		t.Fatalf("initial closure size %d, want 3", res.OutSize)
	}

	// Delete (2,3): (1,3) survives through the direct edge — the
	// rederivation case DRed exists for.
	stats, err := view.ApplyBatch([]EdgeOp{{Insert: false, From: 2, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	cur := edgeRel(t, [2]relation.Value{1, 2}, [2]relation.Value{1, 3})
	want := testkit.OracleFixpoint("tcv", cur)
	got := gatherSorted(c, "tcv", []string{"src", "dst"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("after delete: %s", testkit.DiffSample(got, want))
	}
	if stats.Deleted != 1 || stats.Inserted != 0 {
		t.Errorf("delete stats = %+v, want 1 deleted", stats)
	}

	// Insert a chain extension and a brand-new component.
	if _, err = view.ApplyBatch([]EdgeOp{
		{Insert: true, From: 3, To: 4},
		{Insert: true, From: 10, To: 11},
	}); err != nil {
		t.Fatal(err)
	}
	cur = edgeRel(t,
		[2]relation.Value{1, 2}, [2]relation.Value{1, 3},
		[2]relation.Value{3, 4}, [2]relation.Value{10, 11})
	want = testkit.OracleFixpoint("tcv", cur)
	got = gatherSorted(c, "tcv", []string{"src", "dst"})
	if !testkit.BagEqual(got, want) {
		t.Fatalf("after insert: %s", testkit.DiffSample(got, want))
	}

	// Delete-then-reinsert folds away: zero metered rounds.
	before := c.Metrics().Rounds()
	if stats, err = view.ApplyBatch([]EdgeOp{
		{Insert: false, From: 1, To: 2},
		{Insert: true, From: 1, To: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || c.Metrics().Rounds() != before {
		t.Errorf("no-op closure batch cost %d rounds, want 0", stats.Rounds)
	}
}
