package recursive

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// TransitiveClosure computes the transitive closure of the binary edge
// relation into the distributed relation outName (same schema as
// edges, set semantics): path(x, z) :- edge(x, z); path(x, z) :-
// path(x, y), edge(y, z). It is the one-shot form of NewClosureView.
func TransitiveClosure(c *mpc.Cluster, edges *relation.Relation, outName string, seed uint64) (*Result, error) {
	_, res, err := newClosure(c, edges, outName, seed)
	return res, err
}

// Reachable computes the set of vertices reachable from the source
// vertices (sources included) over the directed binary edge relation,
// into the unary distributed relation outName.
func Reachable(c *mpc.Cluster, edges *relation.Relation, sources []relation.Value, outName string, seed uint64) (*Result, error) {
	if edges.Arity() != 2 {
		return nil, fmt.Errorf("recursive: Reachable wants a binary edge relation, got arity %d", edges.Arity())
	}
	attrs := edges.Attrs()
	vAttr := attrs[0]
	edgeSeed, ownerSeed := mix(seed, 1), mix(seed, 2)
	start := c.Metrics().Rounds()
	edgeName, deltaName := outName+":edge", outName+":delta"

	e := edges.Project(edgeName, attrs...)
	e.Dedup()
	c.ScatterByHash(e, attrs[:1], edgeSeed)

	t0 := relation.New(outName, vAttr)
	for _, v := range sources {
		t0.AppendRow([]relation.Value{v})
	}
	t0.Dedup()
	c.ScatterByHash(t0, []string{vAttr}, ownerSeed)
	c.ScatterByHash(t0.Project(deltaName, vAttr), []string{vAttr}, ownerSeed)

	// Per-server membership index over the accumulator fragment.
	seen := make([]map[relation.Value]struct{}, c.P())
	c.LocalStep(func(s *mpc.Server) {
		t := s.RelOrEmpty(outName, vAttr)
		m := make(map[relation.Value]struct{}, t.Len())
		for i := 0; i < t.Len(); i++ {
			m[t.Row(i)[0]] = struct{}{}
		}
		seen[s.ID()] = m
	})

	f := &fixpoint{
		c: c, label: outName,
		delta: deltaName, deltaAttrs: []string{vAttr}, candAttrs: []string{vAttr},
		edge: edgeName, edgeAttrs: attrs, edgeSeed: edgeSeed,
		probeCol: 0, ownerCols: []int{0}, ownerSeed: ownerSeed,
		extend: func(probe, edge []relation.Value, emit func(vals ...relation.Value)) {
			emit(edge[1])
		},
		combine: dedupCombine,
		absorb: func(s *mpc.Server, cands *relation.Relation) *relation.Relation {
			m := seen[s.ID()]
			t := s.RelOrEmpty(outName, vAttr)
			next := relation.New(deltaName, vAttr)
			for i := 0; i < cands.Len(); i++ {
				v := cands.Row(i)[0]
				if _, ok := m[v]; ok {
					continue
				}
				m[v] = struct{}{}
				t.AppendRow([]relation.Value{v})
				next.AppendRow([]relation.Value{v})
			}
			s.Put(t)
			return next
		},
	}
	iters, err := f.run()
	if err != nil {
		return nil, err
	}
	return &Result{OutName: outName, Iterations: iters, Rounds: c.Metrics().Rounds() - start, OutSize: c.TotalLen(outName)}, nil
}

// ConnectedComponents labels every vertex of the undirected view of
// edges with the minimum vertex id of its connected component, into
// the distributed relation outName with schema (v, comp). Candidates
// are reduced by per-key min both before shipping and at the owner,
// which updates labels in place and re-emits only improved vertices as
// the next delta.
func ConnectedComponents(c *mpc.Cluster, edges *relation.Relation, outName string, seed uint64) (*Result, error) {
	if edges.Arity() != 2 {
		return nil, fmt.Errorf("recursive: ConnectedComponents wants a binary edge relation, got arity %d", edges.Arity())
	}
	attrs := edges.Attrs()
	outAttrs := []string{"v", "comp"}
	edgeSeed, ownerSeed := mix(seed, 1), mix(seed, 2)
	start := c.Metrics().Rounds()
	edgeName, deltaName := outName+":edge", outName+":delta"

	// Symmetrize: labels propagate along edges in both directions.
	sym := edges.Project(edgeName, attrs...)
	for i := 0; i < edges.Len(); i++ {
		e := edges.Row(i)
		sym.AppendRow([]relation.Value{e[1], e[0]})
	}
	sym.Dedup()
	c.ScatterByHash(sym, attrs[:1], edgeSeed)

	// Every vertex starts labelled with itself, in first-appearance
	// scan order.
	t0 := relation.New(outName, outAttrs...)
	vs := map[relation.Value]struct{}{}
	for i := 0; i < edges.Len(); i++ {
		for _, v := range edges.Row(i) {
			if _, ok := vs[v]; !ok {
				vs[v] = struct{}{}
				t0.AppendRow([]relation.Value{v, v})
			}
		}
	}
	c.ScatterByHash(t0, outAttrs[:1], ownerSeed)
	c.ScatterByHash(t0.Project(deltaName, outAttrs...), outAttrs[:1], ownerSeed)

	// Per-server position index: vertex -> row in the label fragment,
	// so absorb can update labels through the mutable Row view.
	pos := make([]map[relation.Value]int, c.P())
	c.LocalStep(func(s *mpc.Server) {
		t := s.RelOrEmpty(outName, outAttrs...)
		m := make(map[relation.Value]int, t.Len())
		for i := 0; i < t.Len(); i++ {
			m[t.Row(i)[0]] = i
		}
		pos[s.ID()] = m
	})

	f := &fixpoint{
		c: c, label: outName,
		delta: deltaName, deltaAttrs: outAttrs, candAttrs: outAttrs,
		edge: edgeName, edgeAttrs: attrs, edgeSeed: edgeSeed,
		probeCol: 0, ownerCols: []int{0}, ownerSeed: ownerSeed,
		extend: func(probe, edge []relation.Value, emit func(vals ...relation.Value)) {
			emit(edge[1], probe[1]) // neighbour inherits the candidate label
		},
		combine: func(cands *relation.Relation) *relation.Relation {
			// Per-vertex min label, emitted in first-appearance order.
			min := map[relation.Value]relation.Value{}
			var order []relation.Value
			for i := 0; i < cands.Len(); i++ {
				row := cands.Row(i)
				if cur, ok := min[row[0]]; !ok {
					min[row[0]] = row[1]
					order = append(order, row[0])
				} else if row[1] < cur {
					min[row[0]] = row[1]
				}
			}
			out := relation.New(cands.Name(), cands.Attrs()...)
			for _, v := range order {
				out.AppendRow([]relation.Value{v, min[v]})
			}
			return out
		},
		absorb: func(s *mpc.Server, cands *relation.Relation) *relation.Relation {
			m := pos[s.ID()]
			t := s.RelOrEmpty(outName, outAttrs...)
			improved := map[relation.Value]struct{}{}
			var order []relation.Value
			for i := 0; i < cands.Len(); i++ {
				row := cands.Row(i)
				ri, ok := m[row[0]]
				if !ok || row[1] >= t.Row(ri)[1] {
					continue
				}
				t.Row(ri)[1] = row[1]
				if _, dup := improved[row[0]]; !dup {
					improved[row[0]] = struct{}{}
					order = append(order, row[0])
				}
			}
			next := relation.New(deltaName, outAttrs...)
			for _, v := range order {
				next.AppendRow([]relation.Value{v, t.Row(m[v])[1]})
			}
			s.Put(t)
			return next
		},
	}
	iters, err := f.run()
	if err != nil {
		return nil, err
	}
	return &Result{OutName: outName, Iterations: iters, Rounds: c.Metrics().Rounds() - start, OutSize: c.TotalLen(outName)}, nil
}
