package recursive

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: SweepBackends runs each workload
// on the in-process transport and the TCP backend and asserts the two
// runs indistinguishable — same fragments, same (L, r, C), same trace.
// Fixpoint evaluation is the stress case for that guarantee: iteration
// count is data-dependent, so a backend that perturbed delivery order
// or dropped a delta row would diverge in round count, not just
// content.

func TestSemiNaiveTCBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		edges := genGraph(skew, seed)
		if _, err := TransitiveClosure(c, edges, "tc", uint64(seed)*29+uint64(p)); err != nil {
			t.Fatalf("transitive closure: %v", err)
		}
	})
}

func TestConnectedComponentsBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		edges := genGraph(skew, seed)
		if _, err := ConnectedComponents(c, edges, "cc", uint64(seed)*37+uint64(p)); err != nil {
			t.Fatalf("connected components: %v", err)
		}
	})
}

// TestIVMBackendDiff runs a standing join through its initial
// evaluation plus a deterministic mutation batch on both backends:
// the maintained view's fragments and metering must agree exactly.
func TestIVMBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		gen := testkit.GenConfig{Tuples: 60}
		r := testkit.GenRelation("R", []string{"x", "y"}, skew, gen, seed)
		s := testkit.GenRelation("S", []string{"y2", "z"}, skew, gen, seed+1)
		view, _, err := NewJoinView(c, r, s, "V", uint64(seed)*41+uint64(p))
		if err != nil {
			t.Fatalf("join view: %v", err)
		}
		setOps := testkit.GenSetOps(map[string]*relation.Relation{"R": r, "S": s}, 20, 30, seed*11)
		ops := make([]Op, len(setOps))
		for i, op := range setOps {
			ops[i] = Op{Rel: op.Rel, Insert: op.Insert, Row: op.Row}
		}
		if _, err := view.ApplyBatch(ops); err != nil {
			t.Fatalf("apply batch: %v", err)
		}
	})
}
