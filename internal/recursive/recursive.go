// Package recursive evaluates recursive queries as MPC rounds on the
// simulator: semi-naive fixpoint iteration with a delta relation per
// iteration and a distinct-based convergence test, metered into the
// same (L, r, C) accounting as the one-shot algorithms. Shipped
// workloads are transitive closure, reachability-from-sources, and
// connected components (workloads.go), plus delta-based incremental
// view maintenance for standing two-way joins (ivm.go) and standing
// closures (ivm_closure.go): a batch of tuple inserts/deletes
// recomputes only the affected deltas, with output equality against
// full recomputation pinned by the testkit differential harness.
//
// Every iteration of the kernel costs exactly two metered rounds:
//
//	probe:  ship each delta tuple to the server owning the matching
//	        edge partition (hash of the probe column);
//	extend: join the delivered delta against the local edge fragment,
//	        reduce the candidates locally (distinct, or per-key min),
//	        and ship them to the servers owning the output tuples.
//
// A free local step then absorbs delivered candidates into the
// accumulator fragment, emits the next delta (only genuinely new
// tuples — the distinct-based convergence test), and the driver loop
// stops once the delta is globally empty. Iteration boundaries are
// stamped into the trace as annotations.
//
// Determinism: every emission walks relations in scan order and maps
// are used for membership only, so fragments, deltas, and metered
// costs are bit-for-bit identical across runs, transports, and
// chaos-recovered executions. Driver-side per-server index maps are
// safe under fault injection because round computes run exactly once —
// only delivery is replayed.
package recursive

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Result summarizes one fixpoint evaluation.
type Result struct {
	// OutName is the distributed output relation (gather it to inspect).
	OutName string
	// Iterations is the number of semi-naive iterations until the delta
	// emptied; 0 means the seed was already empty.
	Iterations int
	// Rounds is the number of metered communication rounds attributable
	// to this evaluation (two per iteration, plus any seeding rounds).
	Rounds int
	// OutSize is the total output cardinality across all fragments.
	OutSize int
}

// BatchStats summarizes one incremental maintenance batch.
type BatchStats struct {
	// Rounds is the number of metered rounds the batch cost — the
	// quantity to compare against full recomputation.
	Rounds int
	// Iterations counts fixpoint iterations run by the batch (closure
	// views only; always 0 for join views).
	Iterations int
	// Inserted and Deleted are the net view-tuple changes.
	Inserted, Deleted int
}

// mix derives independent routing seeds from one user seed.
func mix(seed uint64, k int64) uint64 {
	return relation.Hash64(relation.Value(k), seed^0x9e3779b97f4a7c15)
}

// fixpoint is the semi-naive evaluation kernel. The caller places the
// edge relation (partitioned by hash of its first column under
// edgeSeed), the accumulator, and the initial delta (both partitioned
// by hash of ownerCols under ownerSeed, co-located), then run drives
// probe/extend rounds until the delta empties.
type fixpoint struct {
	c     *mpc.Cluster
	label string // round, stream, and trace-annotation prefix

	delta      string // delta relation, co-located with the accumulator
	deltaAttrs []string
	candAttrs  []string

	edge      string // edge relation, partitioned by h(col 0, edgeSeed)
	edgeAttrs []string
	edgeSeed  uint64

	probeCol  int // delta column matched against edge column 0
	ownerCols []int
	ownerSeed uint64

	// extend emits candidate tuples for one (delta row, edge row) match.
	extend func(probe, edge []relation.Value, emit func(vals ...relation.Value))
	// combine reduces the local candidate buffer before shipping —
	// distinct for set semantics, per-key min for label propagation.
	// Must be deterministic in the buffer's row order.
	combine func(cands *relation.Relation) *relation.Relation
	// absorb merges delivered candidates into the server's accumulator
	// and returns the next delta fragment (renamed by the kernel). It
	// runs in a free local step; closures may mutate driver-side
	// per-server state (membership indexes) — compute runs exactly once
	// even under fault injection, only delivery is replayed.
	absorb func(s *mpc.Server, cands *relation.Relation) *relation.Relation

	edgeIdx []*relation.Index // per-server edge index, built on first use
}

// dedupCombine is the set-semantics combine: sort + distinct.
func dedupCombine(cands *relation.Relation) *relation.Relation {
	cands.Dedup()
	return cands
}

// run iterates to convergence and returns the iteration count.
func (f *fixpoint) run() (int, error) {
	c := f.c
	f.edgeIdx = make([]*relation.Index, c.P())
	probeName, candName := f.label+":probe", f.label+":cand"
	// Defensive cap: each iteration either adds an output tuple or
	// improves a label, both bounded far below this. Hitting the cap
	// means a kernel bug, not a slow input.
	maxIter := 2*(c.TotalLen(f.edge)+c.TotalLen(f.delta)+c.P()) + 4
	iters := 0
	for c.TotalLen(f.delta) > 0 {
		if iters >= maxIter {
			return iters, fmt.Errorf("recursive: %s did not converge after %d iterations", f.label, iters)
		}
		iters++
		trace.Annotatef(c, "%s iteration %d: |delta|=%d", f.label, iters, c.TotalLen(f.delta))
		c.Round(probeName, func(s *mpc.Server, out *mpc.Out) {
			st := out.Open(probeName, f.deltaAttrs...)
			d := s.RelOrEmpty(f.delta, f.deltaAttrs...)
			for i := 0; i < d.Len(); i++ {
				row := d.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, []int{f.probeCol}, f.edgeSeed), s.P()), row)
			}
		})
		c.Round(f.label+":extend", func(s *mpc.Server, out *mpc.Out) {
			st := out.Open(candName, f.candAttrs...)
			probe := s.RelOrEmpty(probeName, f.deltaAttrs...)
			cands := relation.New(candName, f.candAttrs...)
			if probe.Len() > 0 {
				edge := s.RelOrEmpty(f.edge, f.edgeAttrs...)
				if f.edgeIdx[s.ID()] == nil {
					f.edgeIdx[s.ID()] = relation.BuildIndex(edge, f.edgeAttrs[:1])
				}
				emit := func(vals ...relation.Value) { cands.AppendRow(vals) }
				for i := 0; i < probe.Len(); i++ {
					pr := probe.Row(i)
					for _, j := range f.edgeIdx[s.ID()].Lookup(pr, []int{f.probeCol}) {
						f.extend(pr, edge.Row(int(j)), emit)
					}
				}
				cands = f.combine(cands)
			}
			for i := 0; i < cands.Len(); i++ {
				row := cands.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, f.ownerCols, f.ownerSeed), s.P()), row)
			}
			s.Delete(probeName)
		})
		c.LocalStep(func(s *mpc.Server) {
			cands := s.RelOrEmpty(candName, f.candAttrs...)
			next := f.absorb(s, cands)
			s.Put(next.Rename(f.delta))
			s.Delete(candName)
		})
	}
	trace.Annotatef(c, "%s converged after %d iterations", f.label, iters)
	return iters, nil
}
