package recursive

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// BenchmarkSemiNaiveTC times full transitive-closure evaluation —
// every metered iteration of the semi-naive loop — on a p=8 cluster
// over random graphs of growing size.
func BenchmarkSemiNaiveTC(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{50, 120}, {100, 300}} {
		edges := workload.RandomGraph("E", "src", "dst", sz.n, sz.m, 7)
		b.Run(fmt.Sprintf("n%d", sz.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := mpc.NewCluster(8, 1)
				if _, err := TransitiveClosure(c, edges, "tc", 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIVMDelta times one maintenance batch against a standing
// view: the single-round signed-delta path of the join view, and the
// insert fixpoint of the closure view. Setup (initial evaluation) is
// excluded; each iteration inserts a fresh tuple so the delta stays
// non-trivial and the state machine is never replaying a no-op.
func BenchmarkIVMDelta(b *testing.B) {
	b.Run("join", func(b *testing.B) {
		r := workload.RandomGraph("R", "x", "y", 80, 400, 3)
		s := workload.RandomGraph("S", "y2", "z", 80, 400, 4)
		c := mpc.NewCluster(8, 1)
		view, _, err := NewJoinView(c, r, s, "V", 19)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := view.ApplyBatch([]Op{
				{Rel: "R", Insert: true, Row: []relation.Value{relation.Value(10_000 + i), relation.Value(i % 80)}},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("closure", func(b *testing.B) {
		edges := workload.RandomGraph("E", "src", "dst", 60, 150, 5)
		c := mpc.NewCluster(8, 1)
		view, _, err := NewClosureView(c, edges, "tcv", 23)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := view.ApplyBatch([]EdgeOp{
				{Insert: true, From: relation.Value(10_000 + i), To: relation.Value(i % 60)},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
