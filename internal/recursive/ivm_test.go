package recursive

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/workload"
)

func toSetOps(ops []Op) []testkit.SetOp {
	out := make([]testkit.SetOp, len(ops))
	for i, op := range ops {
		out[i] = testkit.SetOp{Rel: op.Rel, Insert: op.Insert, Row: op.Row}
	}
	return out
}

// TestJoinViewIVMDiff drives the standing join through randomized
// insert/delete batches (including delete-then-reinsert pairs from
// GenSetOps) and asserts the maintained view equal to recomputation
// from scratch after EVERY batch — the IVM correctness statement.
func TestJoinViewIVMDiff(t *testing.T) {
	testkit.Sweep(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		gen := testkit.GenConfig{Tuples: 60}
		r := testkit.GenRelation("R", []string{"x", "y"}, skew, gen, seed)
		s := testkit.GenRelation("S", []string{"y2", "z"}, skew, gen, seed+1)
		c := mpc.NewCluster(p, seed)
		view, _, err := NewJoinView(c, r, s, "V", uint64(seed)*13+uint64(p))
		if err != nil {
			t.Fatal(err)
		}
		bases := map[string]*relation.Relation{"R": r, "S": s}
		for batch := 0; batch < 4; batch++ {
			setOps := testkit.GenSetOps(bases, 25, 40, seed*100+int64(batch))
			ops := make([]Op, len(setOps))
			for i, op := range setOps {
				ops[i] = Op{Rel: op.Rel, Insert: op.Insert, Row: op.Row}
			}
			stats, err := view.ApplyBatch(ops)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Rounds != 1 {
				t.Fatalf("batch %d cost %d rounds, want 1", batch, stats.Rounds)
			}
			bases = testkit.ApplySetOps(bases, setOps)
			want := testkit.OracleJoinView("V", bases["R"], bases["S"])
			got := gatherSorted(c, "V", []string{"x", "y", "z"})
			if !testkit.BagEqual(got, want) {
				t.Fatalf("batch %d: maintained view differs from recomputation: %s",
					batch, testkit.DiffSample(got, want))
			}
		}
	})
}

// TestClosureViewIVMDiff drives the standing closure through random
// edge mutation batches and asserts equality with a from-scratch
// fixpoint over the mutated edge set after every batch.
func TestClosureViewIVMDiff(t *testing.T) {
	testkit.Sweep(t, testkit.Config{Ps: []int{2, 4}, Seeds: []int64{1, 2, 3}}, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		var edges *relation.Relation
		if skew.Skewed() {
			edges = workload.PowerLawGraph("E", "src", "dst", 25, 50, seed)
		} else {
			edges = workload.RandomGraph("E", "src", "dst", 25, 50, seed)
		}
		c := mpc.NewCluster(p, seed)
		view, _, err := NewClosureView(c, edges, "tcv", uint64(seed)*17+uint64(p))
		if err != nil {
			t.Fatal(err)
		}
		bases := map[string]*relation.Relation{"E": edges}
		for batch := 0; batch < 3; batch++ {
			setOps := testkit.GenSetOps(bases, 12, 25, seed*1000+int64(batch)*7)
			ops := make([]EdgeOp, len(setOps))
			for i, op := range setOps {
				ops[i] = EdgeOp{Insert: op.Insert, From: op.Row[0], To: op.Row[1]}
			}
			if _, err := view.ApplyBatch(ops); err != nil {
				t.Fatal(err)
			}
			bases = testkit.ApplySetOps(bases, setOps)
			want := testkit.OracleFixpoint("tcv", bases["E"])
			got := gatherSorted(c, "tcv", []string{"src", "dst"})
			if !testkit.BagEqual(got, want) {
				t.Fatalf("batch %d: maintained closure differs from recomputation: %s",
					batch, testkit.DiffSample(got, want))
			}
		}
	})
}

// TestClosureViewDeleteReinsert pins the net-effect fold on the
// closure path explicitly: a batch whose ops cancel leaves the view,
// the metering, and the edge partitions untouched.
func TestClosureViewDeleteReinsert(t *testing.T) {
	edges := workload.RandomGraph("E", "src", "dst", 15, 30, 2)
	c := mpc.NewCluster(3, 4)
	view, res, err := NewClosureView(c, edges, "tcv", 55)
	if err != nil {
		t.Fatal(err)
	}
	before := gatherSorted(c, "tcv", []string{"src", "dst"})
	rounds := c.Metrics().Rounds()
	var ops []EdgeOp
	for i := 0; i < 5 && i < edges.Len(); i++ {
		e := edges.Row(i)
		ops = append(ops,
			EdgeOp{Insert: false, From: e[0], To: e[1]},
			EdgeOp{Insert: true, From: e[0], To: e[1]})
	}
	stats, err := view.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || c.Metrics().Rounds() != rounds {
		t.Errorf("cancelled batch cost %d rounds, want 0", stats.Rounds)
	}
	after := gatherSorted(c, "tcv", []string{"src", "dst"})
	if !testkit.BagEqual(before, after) {
		t.Fatalf("cancelled batch changed the view: %s", testkit.DiffSample(after, before))
	}
	if res.OutSize != after.Len() {
		t.Errorf("view size drifted: %d vs %d", res.OutSize, after.Len())
	}
}

// TestIVMDeltaCheaperThanRecompute pins the point of IVM: a small
// insert batch against a standing closure moves strictly less
// communication than evaluating the closure from scratch on the
// mutated edges, and a join-view batch moves less than its initial
// evaluation. (Deletes carry no such guarantee — DRed's over-delete
// can exceed recomputation on dense closures — so the bound is pinned
// on the insert path only.)
func TestIVMDeltaCheaperThanRecompute(t *testing.T) {
	edges := workload.RandomGraph("E", "src", "dst", 60, 150, 9)
	c := mpc.NewCluster(4, 11)
	view, _, err := NewClosureView(c, edges, "tcv", 91)
	if err != nil {
		t.Fatal(err)
	}
	preBatch := c.Metrics().TotalComm()
	ops := []EdgeOp{
		{Insert: true, From: 3, To: 57},
		{Insert: true, From: 57, To: 11},
	}
	if _, err := view.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	deltaComm := c.Metrics().TotalComm() - preBatch

	setOps := []testkit.SetOp{
		{Rel: "E", Insert: true, Row: []relation.Value{3, 57}},
		{Rel: "E", Insert: true, Row: []relation.Value{57, 11}},
	}
	next := testkit.ApplySetOps(map[string]*relation.Relation{"E": edges}, setOps)
	scratch := mpc.NewCluster(4, 11)
	if _, err := TransitiveClosure(scratch, next["E"], "tcv", 91); err != nil {
		t.Fatal(err)
	}
	fullComm := scratch.Metrics().TotalComm()
	if deltaComm >= fullComm {
		t.Errorf("insert batch moved %d words, full recomputation %d — IVM should be cheaper", deltaComm, fullComm)
	}

	r := testkit.GenRelation("R", []string{"x", "y"}, testkit.SkewUniform, testkit.GenConfig{Tuples: 200}, 5)
	s := testkit.GenRelation("S", []string{"y2", "z"}, testkit.SkewUniform, testkit.GenConfig{Tuples: 200}, 6)
	jc := mpc.NewCluster(4, 7)
	jview, jres, err := NewJoinView(jc, r, s, "V", 19)
	if err != nil {
		t.Fatal(err)
	}
	initComm := jc.Metrics().TotalComm()
	preBatch = initComm
	if _, err := jview.ApplyBatch([]Op{
		{Rel: "R", Insert: true, Row: []relation.Value{1000, 1}},
		{Rel: "S", Insert: false, Row: []relation.Value{s.Row(0)[0], s.Row(0)[1]}},
	}); err != nil {
		t.Fatal(err)
	}
	if batchComm := jc.Metrics().TotalComm() - preBatch; batchComm >= initComm || jres.OutSize == 0 {
		t.Errorf("join batch moved %d words, initial evaluation %d — the delta must be smaller", batchComm, initComm)
	}
}
