package recursive

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/workload"
)

// genGraph draws a seeded random graph: uniform-degree under SkewNone/
// SkewUniform, heavy-tailed (preferential attachment — the Zipf-degree
// regime) otherwise. Self-loops are planted explicitly since the
// generators exclude them.
func genGraph(skew testkit.Skew, seed int64) *relation.Relation {
	n, m := 40, 90
	var g *relation.Relation
	if skew.Skewed() {
		g = workload.PowerLawGraph("E", "src", "dst", n, m, seed)
	} else {
		g = workload.RandomGraph("E", "src", "dst", n, m, seed)
	}
	g.AppendRow([]relation.Value{relation.Value(seed % int64(n)), relation.Value(seed % int64(n))})
	return g
}

// TestSemiNaiveTCDiff sweeps transitive closure against the naive
// fixpoint oracle: (p, seed, skew) matrix, exact round accounting
// (two metered rounds per iteration), and trace consistency.
func TestSemiNaiveTCDiff(t *testing.T) {
	testkit.Sweep(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		edges := genGraph(skew, seed)
		c := mpc.NewCluster(p, seed)
		res, err := TransitiveClosure(c, edges, "tc", uint64(seed)*0x9e3779b9+uint64(p))
		if err != nil {
			t.Fatal(err)
		}
		want := testkit.OracleFixpoint("tc", edges)
		got := gatherSorted(c, "tc", []string{"src", "dst"})
		if !testkit.BagEqual(got, want) {
			t.Fatalf("closure differs from naive fixpoint: %s", testkit.DiffSample(got, want))
		}
		if res.Rounds != 2*res.Iterations {
			t.Errorf("rounds = %d over %d iterations, want exactly 2 per iteration", res.Rounds, res.Iterations)
		}
		testkit.AssertRounds(t, c, res.Rounds)
	})
}

// TestReachableDiff sweeps reachability-from-sources against its naive
// oracle, with source sets drawn from the graph plus one vertex with
// no outgoing edges.
func TestReachableDiff(t *testing.T) {
	testkit.Sweep(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		edges := genGraph(skew, seed)
		sources := []relation.Value{
			edges.Row(0)[0],
			edges.Row(edges.Len() / 2)[1],
			relation.Value(1_000_000 + seed), // not in the graph
		}
		c := mpc.NewCluster(p, seed)
		res, err := Reachable(c, edges, sources, "reach", uint64(seed)+uint64(p)<<16)
		if err != nil {
			t.Fatal(err)
		}
		want := testkit.OracleReachable("reach", edges, sources)
		got := gatherSorted(c, "reach", []string{"src"})
		if !testkit.BagEqual(got, want) {
			t.Fatalf("reachability differs from oracle: %s", testkit.DiffSample(got, want))
		}
		if res.Rounds != 2*res.Iterations {
			t.Errorf("rounds = %d over %d iterations, want exactly 2 per iteration", res.Rounds, res.Iterations)
		}
	})
}

// TestConnectedComponentsDiff sweeps min-label propagation against the
// naive component oracle.
func TestConnectedComponentsDiff(t *testing.T) {
	testkit.Sweep(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
		edges := genGraph(skew, seed)
		c := mpc.NewCluster(p, seed)
		res, err := ConnectedComponents(c, edges, "cc", uint64(seed)*31+uint64(p))
		if err != nil {
			t.Fatal(err)
		}
		want := testkit.OracleComponents("cc", edges)
		got := gatherSorted(c, "cc", []string{"v", "comp"})
		if !testkit.BagEqual(got, want) {
			t.Fatalf("components differ from oracle: %s", testkit.DiffSample(got, want))
		}
		if res.Rounds != 2*res.Iterations {
			t.Errorf("rounds = %d over %d iterations, want exactly 2 per iteration", res.Rounds, res.Iterations)
		}
	})
}

// TestFixpointDeterminism pins bit-for-bit reproducibility: two runs
// of the same evaluation produce identical fragments on every server,
// not merely the same gathered set.
func TestFixpointDeterminism(t *testing.T) {
	edges := genGraph(testkit.SkewZipf, 3)
	a, b := mpc.NewCluster(4, 9), mpc.NewCluster(4, 9)
	if _, err := TransitiveClosure(a, edges, "tc", 77); err != nil {
		t.Fatal(err)
	}
	if _, err := TransitiveClosure(b, edges, "tc", 77); err != nil {
		t.Fatal(err)
	}
	testkit.AssertSameFragments(t, a, b)
	testkit.AssertSameLRC(t, a, b)
}
