package recursive

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// EdgeOp is one edge-level mutation of a standing closure view,
// applied with set semantics (inserting a present edge or deleting an
// absent one is a no-op).
type EdgeOp struct {
	Insert   bool
	From, To relation.Value
}

// ClosureView is a standing transitive closure maintained
// incrementally under edge insert/delete batches by
// delete-and-rederive (DRed): deletions first over-delete every
// closure tuple with at least one derivation through a deleted edge
// (a fixpoint over the old edges), then rederive the subset with a
// surviving alternative derivation (a fixpoint restricted to the
// over-deleted set); insertions run a semi-naive fixpoint seeded from
// the new edges and their one-step joins with the surviving closure.
// Only the affected deltas are recomputed; the maintained view is
// asserted (by the testkit harness) equal to recomputation from
// scratch.
type ClosureView struct {
	c                   *mpc.Cluster
	name                string
	attrs               []string // binary edge/closure schema
	edgeName            string
	edgeSeed, ownerSeed uint64

	// Driver-side per-server membership indexes (identity keys from
	// relation.EncodeKey over both columns). Safe under fault
	// injection: computes run exactly once, only delivery is replayed.
	eIdx []map[string]struct{} // edges, at partition servers
	tIdx []map[string]struct{} // closure tuples, at owner servers

	batches int
}

// bothCols selects both columns of a binary tuple.
var bothCols = []int{0, 1}

// NewClosureView evaluates the initial closure of edges into outName
// and returns the view handle for incremental maintenance plus the
// evaluation Result.
func NewClosureView(c *mpc.Cluster, edges *relation.Relation, outName string, seed uint64) (*ClosureView, *Result, error) {
	return newClosure(c, edges, outName, seed)
}

func newClosure(c *mpc.Cluster, edges *relation.Relation, outName string, seed uint64) (*ClosureView, *Result, error) {
	if edges.Arity() != 2 {
		return nil, nil, fmt.Errorf("recursive: closure wants a binary edge relation, got arity %d", edges.Arity())
	}
	attrs := edges.Attrs()
	v := &ClosureView{
		c:        c,
		name:     outName,
		attrs:    append([]string(nil), attrs...),
		edgeName: outName + ":edge",
		edgeSeed: mix(seed, 1), ownerSeed: mix(seed, 2),
		eIdx: make([]map[string]struct{}, c.P()),
		tIdx: make([]map[string]struct{}, c.P()),
	}
	start := c.Metrics().Rounds()

	e := edges.Project(v.edgeName, attrs...)
	e.Dedup()
	c.ScatterByHash(e, attrs[:1], v.edgeSeed)

	t0 := edges.Project(outName, attrs...)
	t0.Dedup()
	c.ScatterByHash(t0, attrs, v.ownerSeed)
	c.ScatterByHash(t0.Project(outName+":delta", attrs...), attrs, v.ownerSeed)

	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		v.eIdx[sid] = keySet(s.RelOrEmpty(v.edgeName, attrs...))
		v.tIdx[sid] = keySet(s.RelOrEmpty(outName, attrs...))
	})

	iters, err := v.runFix(outName, outName+":delta", outName, v.tIdx, nil)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{OutName: outName, Iterations: iters, Rounds: c.Metrics().Rounds() - start, OutSize: c.TotalLen(outName)}
	return v, res, nil
}

// keySet indexes a binary fragment by identity key (membership only —
// keys are never used for ordering).
func keySet(r *relation.Relation) map[string]struct{} {
	m := make(map[string]struct{}, r.Len())
	for i := 0; i < r.Len(); i++ {
		m[relation.EncodeKey(r.Row(i), bothCols)] = struct{}{}
	}
	return m
}

// runFix drives one set-semantics closure fixpoint: candidates
// (x, y)+(y, z) -> (x, z) are absorbed into the target fragment when
// they pass the accept filter and are not yet in tgtIdx.
func (v *ClosureView) runFix(label, deltaName, target string, tgtIdx []map[string]struct{}, accept func(sid int, key string) bool) (int, error) {
	f := &fixpoint{
		c: v.c, label: label,
		delta: deltaName, deltaAttrs: v.attrs, candAttrs: v.attrs,
		edge: v.edgeName, edgeAttrs: v.attrs, edgeSeed: v.edgeSeed,
		probeCol: 1, ownerCols: bothCols, ownerSeed: v.ownerSeed,
		extend: func(probe, edge []relation.Value, emit func(vals ...relation.Value)) {
			emit(probe[0], edge[1])
		},
		combine: dedupCombine,
		absorb: func(s *mpc.Server, cands *relation.Relation) *relation.Relation {
			sid := s.ID()
			t := s.RelOrEmpty(target, v.attrs...)
			next := relation.New(deltaName, v.attrs...)
			for i := 0; i < cands.Len(); i++ {
				row := cands.Row(i)
				k := relation.EncodeKey(row, bothCols) // identity key only
				if accept != nil && !accept(sid, k) {
					continue
				}
				if _, in := tgtIdx[sid][k]; in {
					continue
				}
				tgtIdx[sid][k] = struct{}{}
				t.AppendRow(row)
				next.AppendRow(row)
			}
			s.Put(t)
			return next
		},
	}
	return f.run()
}

// owner routes a binary tuple to its owner server.
func (v *ClosureView) owner(row []relation.Value, p int) int {
	return relation.Bucket(relation.HashRow(row, bothCols, v.ownerSeed), p)
}

// ApplyBatch applies a batch of edge mutations to the standing view,
// recomputing only the affected deltas. The batch is folded to its net
// effect first (delete-then-reinsert of the same edge is a no-op), so
// an empty net batch costs zero metered rounds.
func (v *ClosureView) ApplyBatch(ops []EdgeOp) (*BatchStats, error) {
	c := v.c
	v.batches++
	attrs := v.attrs
	start := c.Metrics().Rounds()
	sizeBefore := c.TotalLen(v.name)

	// Net-effect fold, co-located with the edge partitions.
	opsName := v.name + ":ops"
	opsRel := relation.New(opsName, "o", "c0", "c1")
	for _, op := range ops {
		flag := relation.Value(0)
		if op.Insert {
			flag = 1
		}
		opsRel.AppendRow([]relation.Value{flag, op.From, op.To})
	}
	// Column c0 carries the edge's from-value: hashing it under
	// edgeSeed lands each op on the server partitioning that edge.
	c.ScatterByHash(opsRel, []string{"c0"}, v.edgeSeed)
	delName, insName := v.name+":edel", v.name+":eins"
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		o := s.RelOrEmpty(opsName, "o", "c0", "c1")
		type ent struct {
			row         [2]relation.Value
			init, final bool
		}
		m := map[string]*ent{}
		var order []string
		for i := 0; i < o.Len(); i++ {
			row := o.Row(i)
			k := relation.EncodeKey(row, []int{1, 2}) // identity key only
			e, ok := m[k]
			if !ok {
				_, present := v.eIdx[sid][k]
				e = &ent{row: [2]relation.Value{row[1], row[2]}, init: present}
				m[k] = e
				order = append(order, k)
			}
			e.final = row[0] == 1
		}
		dels := relation.New(delName, attrs...)
		inss := relation.New(insName, attrs...)
		for _, k := range order {
			e := m[k]
			switch {
			case e.init && !e.final:
				dels.AppendRow(e.row[:])
			case !e.init && e.final:
				inss.AppendRow(e.row[:])
			}
		}
		s.Put(dels)
		s.Put(inss)
		s.Delete(opsName)
	})

	stats := &BatchStats{}
	if c.TotalLen(delName) > 0 {
		if err := v.applyDeletes(delName, stats); err != nil {
			return nil, err
		}
	}
	sizeMid := c.TotalLen(v.name)
	if c.TotalLen(insName) > 0 {
		if err := v.applyInserts(insName, stats); err != nil {
			return nil, err
		}
	}
	c.LocalStep(func(s *mpc.Server) {
		s.Delete(delName)
		s.Delete(insName)
	})
	stats.Rounds = c.Metrics().Rounds() - start
	stats.Deleted = sizeBefore - sizeMid
	stats.Inserted = c.TotalLen(v.name) - sizeMid
	return stats, nil
}

// applyDeletes runs the DRed delete half: over-delete then rederive.
func (v *ClosureView) applyDeletes(delName string, stats *BatchStats) error {
	c := v.c
	attrs := v.attrs
	p := c.P()
	trace.Annotatef(c, "%s batch %d: over-delete |dE|=%d", v.name, v.batches, c.TotalLen(delName))

	// Over-delete seed: broadcast the deleted edges, then every owner
	// emits T ⋈ dE- one-step extensions while the partition servers
	// re-emit the deleted edges themselves (every deleted edge is a
	// deleted closure tuple).
	bcast, dseed := v.name+":dbcast", v.name+":dseed"
	c.Round(v.name+":delbcast", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open(bcast, attrs...)
		d := s.RelOrEmpty(delName, attrs...)
		for i := 0; i < d.Len(); i++ {
			st.Broadcast(d.Row(i)...)
		}
	})
	c.Round(v.name+":delseed", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open(dseed, attrs...)
		b := s.RelOrEmpty(bcast, attrs...)
		if b.Len() > 0 {
			bix := relation.BuildIndex(b, attrs[:1])
			t := s.RelOrEmpty(v.name, attrs...)
			for i := 0; i < t.Len(); i++ {
				tr := t.Row(i)
				for _, j := range bix.Lookup(tr, []int{1}) {
					st.Send(v.owner([]relation.Value{tr[0], b.Row(int(j))[1]}, p), tr[0], b.Row(int(j))[1])
				}
			}
		}
		d := s.RelOrEmpty(delName, attrs...)
		for i := 0; i < d.Len(); i++ {
			st.SendRow(v.owner(d.Row(i), p), d.Row(i))
		}
		s.Delete(bcast)
	})

	// Absorb the seed into the over-delete set D (closure tuples only).
	dName, dDelta := v.name+":D", v.name+":Ddelta"
	dIdx := make([]map[string]struct{}, p)
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		dIdx[sid] = map[string]struct{}{}
		cands := s.RelOrEmpty(dseed, attrs...)
		d := relation.New(dName, attrs...)
		delta := relation.New(dDelta, attrs...)
		for i := 0; i < cands.Len(); i++ {
			row := cands.Row(i)
			k := relation.EncodeKey(row, bothCols) // identity key only
			if _, in := v.tIdx[sid][k]; !in {
				continue
			}
			if _, in := dIdx[sid][k]; in {
				continue
			}
			dIdx[sid][k] = struct{}{}
			d.AppendRow(row)
			delta.AppendRow(row)
		}
		s.Put(d)
		s.Put(delta)
		s.Delete(dseed)
	})

	// Over-delete fixpoint over the OLD edges: anything derivable from
	// an over-deleted prefix is over-deleted too.
	iters, err := v.runFix(v.name+":del", dDelta, dName, dIdx, func(sid int, k string) bool {
		_, in := v.tIdx[sid][k]
		return in
	})
	if err != nil {
		return err
	}
	stats.Iterations += iters

	// Apply: E := E - dE- at the partitions, T := T - D at the owners.
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		if dels := s.RelOrEmpty(delName, attrs...); dels.Len() > 0 {
			for i := 0; i < dels.Len(); i++ {
				delete(v.eIdx[sid], relation.EncodeKey(dels.Row(i), bothCols))
			}
			e := s.RelOrEmpty(v.edgeName, attrs...)
			ne := relation.New(v.edgeName, attrs...)
			for i := 0; i < e.Len(); i++ {
				if _, in := v.eIdx[sid][relation.EncodeKey(e.Row(i), bothCols)]; in {
					ne.AppendRow(e.Row(i))
				}
			}
			s.Put(ne)
		}
		if len(dIdx[sid]) > 0 {
			t := s.RelOrEmpty(v.name, attrs...)
			nt := relation.New(v.name, attrs...)
			for i := 0; i < t.Len(); i++ {
				k := relation.EncodeKey(t.Row(i), bothCols)
				if _, in := dIdx[sid][k]; in {
					delete(v.tIdx[sid], k)
					continue
				}
				nt.AppendRow(t.Row(i))
			}
			s.Put(nt)
		}
	})

	if c.TotalLen(dName) > 0 {
		if err := v.rederive(dName, dIdx, stats); err != nil {
			return err
		}
	}
	c.LocalStep(func(s *mpc.Server) { s.Delete(dName) })
	return nil
}

// rederive restores over-deleted closure tuples that still have a
// derivation from the surviving closure and the updated edges.
func (v *ClosureView) rederive(dName string, dIdx []map[string]struct{}, stats *BatchStats) error {
	c := v.c
	attrs := v.attrs
	p := c.P()
	trace.Annotatef(c, "%s batch %d: rederive |D|=%d", v.name, v.batches, c.TotalLen(dName))

	// Seeds of the restricted fixpoint: (a) over-deleted tuples that
	// are still edges, and (b) one-step extensions T'(x, y) * E1(y, z)
	// of surviving closure tuples whose source x lost tuples. (a) needs
	// the D tuples at their edge partitions; (b) needs the distinct
	// sources pi_x(D) everywhere and one probe round against E1.
	dxB, dprobe := v.name+":dx", v.name+":dprobe"
	c.Round(v.name+":redprep", func(s *mpc.Server, out *mpc.Out) {
		stx := out.Open(dxB, attrs[:1]...)
		stp := out.Open(dprobe, attrs...)
		d := s.RelOrEmpty(dName, attrs...)
		seen := map[relation.Value]struct{}{}
		for i := 0; i < d.Len(); i++ {
			row := d.Row(i)
			if _, ok := seen[row[0]]; !ok {
				seen[row[0]] = struct{}{}
				stx.Broadcast(row[0])
			}
			stp.SendRow(relation.Bucket(relation.HashRow(row, []int{0}, v.edgeSeed), p), row)
		}
	})
	rseed, rprobe := v.name+":rseed", v.name+":rprobe"
	c.Round(v.name+":redprobe", func(s *mpc.Server, out *mpc.Out) {
		sid := s.ID()
		stc := out.Open(rseed, attrs...)
		stq := out.Open(rprobe, attrs...)
		dp := s.RelOrEmpty(dprobe, attrs...)
		for i := 0; i < dp.Len(); i++ {
			row := dp.Row(i)
			if _, in := v.eIdx[sid][relation.EncodeKey(row, bothCols)]; in {
				stc.SendRow(v.owner(row, p), row)
			}
		}
		s.Delete(dprobe)
		dx := s.RelOrEmpty(dxB, attrs[:1]...)
		xs := make(map[relation.Value]struct{}, dx.Len())
		for i := 0; i < dx.Len(); i++ {
			xs[dx.Row(i)[0]] = struct{}{}
		}
		t := s.RelOrEmpty(v.name, attrs...)
		for i := 0; i < t.Len(); i++ {
			tr := t.Row(i)
			if _, ok := xs[tr[0]]; ok {
				stq.SendRow(relation.Bucket(relation.HashRow(tr, []int{1}, v.edgeSeed), p), tr)
			}
		}
		s.Delete(dxB)
	})
	c.Round(v.name+":redjoin", func(s *mpc.Server, out *mpc.Out) {
		stc := out.Open(rseed, attrs...)
		q := s.RelOrEmpty(rprobe, attrs...)
		if q.Len() > 0 {
			e := s.RelOrEmpty(v.edgeName, attrs...)
			ix := relation.BuildIndex(e, attrs[:1])
			for i := 0; i < q.Len(); i++ {
				qr := q.Row(i)
				for _, j := range ix.Lookup(qr, []int{1}) {
					stc.Send(v.owner([]relation.Value{qr[0], e.Row(int(j))[1]}, p), qr[0], e.Row(int(j))[1])
				}
			}
		}
		s.Delete(rprobe)
	})

	// Absorb the seeds (restricted to D, not yet back in T), then run
	// the restricted fixpoint over the updated edges.
	rDelta := v.name + ":rdelta"
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		cands := s.RelOrEmpty(rseed, attrs...)
		t := s.RelOrEmpty(v.name, attrs...)
		delta := relation.New(rDelta, attrs...)
		for i := 0; i < cands.Len(); i++ {
			row := cands.Row(i)
			k := relation.EncodeKey(row, bothCols) // identity key only
			if _, in := dIdx[sid][k]; !in {
				continue
			}
			if _, in := v.tIdx[sid][k]; in {
				continue
			}
			v.tIdx[sid][k] = struct{}{}
			t.AppendRow(row)
			delta.AppendRow(row)
		}
		s.Put(t)
		s.Put(delta)
		s.Delete(rseed)
	})
	iters, err := v.runFix(v.name+":red", rDelta, v.name, v.tIdx, func(sid int, k string) bool {
		_, in := dIdx[sid][k]
		return in
	})
	if err != nil {
		return err
	}
	stats.Iterations += iters
	return nil
}

// applyInserts adds the net-new edges and runs a semi-naive fixpoint
// seeded from them and their one-step joins with the standing closure.
func (v *ClosureView) applyInserts(insName string, stats *BatchStats) error {
	c := v.c
	attrs := v.attrs
	p := c.P()
	trace.Annotatef(c, "%s batch %d: insert |dE|=%d", v.name, v.batches, c.TotalLen(insName))

	// Apply dE+ to the edge partitions first: propagation must run
	// over the updated edges so chains among new edges close.
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		ins := s.RelOrEmpty(insName, attrs...)
		if ins.Len() == 0 {
			return
		}
		e := s.RelOrEmpty(v.edgeName, attrs...)
		for i := 0; i < ins.Len(); i++ {
			row := ins.Row(i)
			k := relation.EncodeKey(row, bothCols) // identity key only
			if _, in := v.eIdx[sid][k]; !in {
				v.eIdx[sid][k] = struct{}{}
				e.AppendRow(row)
			}
		}
		s.Put(e)
	})

	ibcast, iseed := v.name+":ibcast", v.name+":iseed"
	c.Round(v.name+":insbcast", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open(ibcast, attrs...)
		ins := s.RelOrEmpty(insName, attrs...)
		for i := 0; i < ins.Len(); i++ {
			st.Broadcast(ins.Row(i)...)
		}
	})
	c.Round(v.name+":insseed", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open(iseed, attrs...)
		b := s.RelOrEmpty(ibcast, attrs...)
		if b.Len() > 0 {
			bix := relation.BuildIndex(b, attrs[:1])
			t := s.RelOrEmpty(v.name, attrs...)
			for i := 0; i < t.Len(); i++ {
				tr := t.Row(i)
				for _, j := range bix.Lookup(tr, []int{1}) {
					st.Send(v.owner([]relation.Value{tr[0], b.Row(int(j))[1]}, p), tr[0], b.Row(int(j))[1])
				}
			}
		}
		ins := s.RelOrEmpty(insName, attrs...)
		for i := 0; i < ins.Len(); i++ {
			st.SendRow(v.owner(ins.Row(i), p), ins.Row(i))
		}
		s.Delete(ibcast)
	})

	iDelta := v.name + ":idelta"
	c.LocalStep(func(s *mpc.Server) {
		sid := s.ID()
		cands := s.RelOrEmpty(iseed, attrs...)
		t := s.RelOrEmpty(v.name, attrs...)
		delta := relation.New(iDelta, attrs...)
		for i := 0; i < cands.Len(); i++ {
			row := cands.Row(i)
			k := relation.EncodeKey(row, bothCols) // identity key only
			if _, in := v.tIdx[sid][k]; in {
				continue
			}
			v.tIdx[sid][k] = struct{}{}
			t.AppendRow(row)
			delta.AppendRow(row)
		}
		s.Put(t)
		s.Put(delta)
		s.Delete(iseed)
	})
	iters, err := v.runFix(v.name+":ins", iDelta, v.name, v.tIdx, nil)
	if err != nil {
		return err
	}
	stats.Iterations += iters
	return nil
}
