// Wire format of the TCP transport.
//
// Every message on a driver↔worker connection is one frame: a uvarint
// byte length followed by that many payload bytes, of which the first
// is the frame kind. Multi-byte integers inside payloads are unsigned
// varints; attribute values use the repository value codec
// (relation.AppendValue — zig-zag varint). The format is
// self-contained per frame: a DATA frame carries a string table of the
// unique strings it references (stream name and attributes, in first-
// occurrence order) so the payload never repeats a string and a decoder
// never needs cross-frame state.
//
//	HELLO    kind=1  version, p, nworkers, workerIdx
//	HELLOACK kind=2  version
//	DATA     kind=3  dst, nstrings, strings..., nameIdx,
//	                 arity, attrIdx..., tuples, values...
//	FLUSH    kind=4  seq
//	END      kind=5  seq, frames
//	BYE      kind=6  (empty)
//
// Decoding is strict and allocation-safe on hostile input: every
// claimed count is validated against the bytes actually remaining
// before anything is allocated (each string and each value occupies at
// least one byte), truncated or trailing bytes are errors, and frames
// above maxFrameBytes are rejected at the length prefix. The fuzz
// targets in fuzz_test.go pin these properties.
package mpcnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mpcquery/internal/relation"
)

// protoVersion is bumped on any incompatible wire change; HELLO and
// HELLOACK must agree on it.
const protoVersion = 1

// maxFrameBytes bounds a single frame. The driver's chunking (Options.
// MaxFrameTuples) keeps real frames far below it; the decoder uses it
// to refuse hostile length prefixes before allocating.
const maxFrameBytes = 1 << 24

// Frame kinds.
const (
	kindHello    = 1
	kindHelloAck = 2
	kindData     = 3
	kindFlush    = 4
	kindEnd      = 5
	kindBye      = 6
)

// writeFrame writes one length-prefixed frame. The caller flushes.
func writeFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) == 0 || len(payload) > maxFrameBytes {
		return fmt.Errorf("mpcnet: frame of %d bytes", len(payload))
	}
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(len(payload)))
	if _, err := w.Write(lenbuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame, rejecting empty and
// oversized frames before allocating.
func readFrame(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("mpcnet: frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// appendUint appends a uvarint.
func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// cursor decodes a payload front to back with bounds checking.
type cursor struct{ b []byte }

func (c *cursor) uint() (uint64, error) {
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		return 0, fmt.Errorf("mpcnet: truncated varint")
	}
	c.b = c.b[n:]
	return v, nil
}

// count decodes a uvarint that claims howMany items of at least
// minBytes bytes each and rejects claims the remaining payload cannot
// hold — the guard that makes decoding allocation-safe.
func (c *cursor) count(minBytes int, what string) (int, error) {
	v, err := c.uint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(c.b))/uint64(minBytes) {
		return 0, fmt.Errorf("mpcnet: %s count %d exceeds %d remaining bytes", what, v, len(c.b))
	}
	return int(v), nil
}

func (c *cursor) str() (string, error) {
	n, err := c.count(1, "string byte")
	if err != nil {
		return "", err
	}
	if n > len(c.b) {
		return "", fmt.Errorf("mpcnet: string of %d bytes, %d remaining", n, len(c.b))
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s, nil
}

func (c *cursor) done() error {
	if len(c.b) != 0 {
		return fmt.Errorf("mpcnet: %d trailing bytes", len(c.b))
	}
	return nil
}

// hello is the handshake: the driver announces the protocol version,
// cluster size, worker count, and which shard this worker owns.
type hello struct {
	version, p, nworkers, workerIdx int
}

func appendHello(b []byte, h hello) []byte {
	b = append(b, kindHello)
	b = appendUint(b, uint64(h.version))
	b = appendUint(b, uint64(h.p))
	b = appendUint(b, uint64(h.nworkers))
	return appendUint(b, uint64(h.workerIdx))
}

func decodeHello(payload []byte) (hello, error) {
	var h hello
	if len(payload) == 0 || payload[0] != kindHello {
		return h, fmt.Errorf("mpcnet: not a HELLO frame")
	}
	c := cursor{payload[1:]}
	fields := []*int{&h.version, &h.p, &h.nworkers, &h.workerIdx}
	for _, f := range fields {
		v, err := c.uint()
		if err != nil {
			return h, err
		}
		if v > math.MaxInt32 {
			return h, fmt.Errorf("mpcnet: HELLO field %d out of range", v)
		}
		*f = int(v)
	}
	if h.p < 1 || h.nworkers < 1 || h.workerIdx < 0 || h.workerIdx >= h.nworkers {
		return h, fmt.Errorf("mpcnet: HELLO p=%d nworkers=%d idx=%d", h.p, h.nworkers, h.workerIdx)
	}
	return h, c.done()
}

func appendHelloAck(b []byte, version int) []byte {
	return appendUint(append(b, kindHelloAck), uint64(version))
}

func decodeHelloAck(payload []byte) (int, error) {
	if len(payload) == 0 || payload[0] != kindHelloAck {
		return 0, fmt.Errorf("mpcnet: not a HELLOACK frame")
	}
	c := cursor{payload[1:]}
	v, err := c.uint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("mpcnet: HELLOACK version %d", v)
	}
	if err := c.done(); err != nil {
		return 0, err
	}
	return int(v), nil
}

// dataFrame is one decoded DATA frame: a whole fragment or one chunk of
// one, addressed to a single destination server.
type dataFrame struct {
	dst    int
	name   string
	attrs  []string
	flat   []relation.Value
	tuples int64
}

// appendData encodes one fragment chunk. flat must hold exactly
// tuples×len(attrs) values.
func appendData(b []byte, dst int, name string, attrs []string, flat []relation.Value, tuples int64) []byte {
	b = append(b, kindData)
	b = appendUint(b, uint64(dst))
	// String table: unique strings in first-occurrence order over
	// (name, attrs...); then indices into it.
	table := make([]string, 0, 1+len(attrs))
	idx := make(map[string]int, 1+len(attrs))
	intern := func(s string) int {
		if i, ok := idx[s]; ok {
			return i
		}
		idx[s] = len(table)
		table = append(table, s)
		return len(table) - 1
	}
	nameIdx := intern(name)
	attrIdx := make([]int, len(attrs))
	for i, a := range attrs {
		attrIdx[i] = intern(a)
	}
	b = appendUint(b, uint64(len(table)))
	for _, s := range table {
		b = appendUint(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = appendUint(b, uint64(nameIdx))
	b = appendUint(b, uint64(len(attrs)))
	for _, i := range attrIdx {
		b = appendUint(b, uint64(i))
	}
	b = appendUint(b, uint64(tuples))
	return relation.AppendValues(b, flat)
}

func decodeData(payload []byte) (dataFrame, error) {
	var df dataFrame
	if len(payload) == 0 || payload[0] != kindData {
		return df, fmt.Errorf("mpcnet: not a DATA frame")
	}
	c := cursor{payload[1:]}
	dst, err := c.uint()
	if err != nil {
		return df, err
	}
	if dst > math.MaxInt32 {
		return df, fmt.Errorf("mpcnet: DATA dst %d", dst)
	}
	df.dst = int(dst)
	nstr, err := c.count(1, "string")
	if err != nil {
		return df, err
	}
	table := make([]string, nstr)
	for i := range table {
		if table[i], err = c.str(); err != nil {
			return df, err
		}
	}
	nameIdx, err := c.uint()
	if err != nil {
		return df, err
	}
	if nameIdx >= uint64(nstr) {
		return df, fmt.Errorf("mpcnet: DATA name index %d of %d strings", nameIdx, nstr)
	}
	df.name = table[nameIdx]
	arity, err := c.count(1, "attribute")
	if err != nil {
		return df, err
	}
	df.attrs = make([]string, arity)
	for i := range df.attrs {
		ai, err := c.uint()
		if err != nil {
			return df, err
		}
		if ai >= uint64(nstr) {
			return df, fmt.Errorf("mpcnet: DATA attr index %d of %d strings", ai, nstr)
		}
		df.attrs[i] = table[ai]
	}
	tuples, err := c.uint()
	if err != nil {
		return df, err
	}
	if tuples == 0 {
		return df, fmt.Errorf("mpcnet: DATA frame with 0 tuples")
	}
	if arity > 0 && tuples > uint64(len(c.b))/uint64(arity) {
		return df, fmt.Errorf("mpcnet: DATA claims %d×%d values, %d bytes remain", tuples, arity, len(c.b))
	}
	df.tuples = int64(tuples)
	if words := int(tuples) * arity; words > 0 {
		vals, n, ok := relation.ConsumeValues(make([]relation.Value, 0, words), c.b, words)
		if !ok {
			return df, fmt.Errorf("mpcnet: DATA values truncated")
		}
		df.flat, c.b = vals, c.b[n:]
	}
	return df, c.done()
}

func appendFlush(b []byte, seq uint64) []byte {
	return appendUint(append(b, kindFlush), seq)
}

func decodeFlush(payload []byte) (uint64, error) {
	if len(payload) == 0 || payload[0] != kindFlush {
		return 0, fmt.Errorf("mpcnet: not a FLUSH frame")
	}
	c := cursor{payload[1:]}
	seq, err := c.uint()
	if err != nil {
		return 0, err
	}
	return seq, c.done()
}

func appendEnd(b []byte, seq uint64, frames int) []byte {
	return appendUint(appendUint(append(b, kindEnd), seq), uint64(frames))
}

func decodeEnd(payload []byte) (seq uint64, frames int, err error) {
	if len(payload) == 0 || payload[0] != kindEnd {
		return 0, 0, fmt.Errorf("mpcnet: not an END frame")
	}
	c := cursor{payload[1:]}
	if seq, err = c.uint(); err != nil {
		return 0, 0, err
	}
	f, err := c.uint()
	if err != nil {
		return 0, 0, err
	}
	if f > math.MaxInt32 {
		return 0, 0, fmt.Errorf("mpcnet: END frame count %d", f)
	}
	return seq, int(f), c.done()
}

func appendBye(b []byte) []byte { return append(b, kindBye) }

// decodePayload dispatches on the kind byte — the single entry point
// the fuzzers drive so any byte string exercises every decoder.
func decodePayload(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("mpcnet: empty frame")
	}
	switch payload[0] {
	case kindHello:
		return decodeHello(payload)
	case kindHelloAck:
		return decodeHelloAck(payload)
	case kindData:
		return decodeData(payload)
	case kindFlush:
		return decodeFlush(payload)
	case kindEnd:
		seq, frames, err := decodeEnd(payload)
		return [2]uint64{seq, uint64(frames)}, err
	case kindBye:
		if len(payload) != 1 {
			return nil, fmt.Errorf("mpcnet: BYE with %d payload bytes", len(payload)-1)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("mpcnet: unknown frame kind %d", payload[0])
	}
}
