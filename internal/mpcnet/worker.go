// The worker side of the TCP transport.
//
// A worker owns the destination shard {dst : dst mod nworkers ==
// workerIdx}. Compute (the per-server round closures) stays in the
// driver process — closures do not serialize — so the worker's job is
// the data plane: it receives its shard's fragments over TCP, validates
// and holds them for the round, and at the FLUSH barrier streams them
// back in arrival order followed by END. The driver lands the echoed
// fragments, so every delivered byte has physically crossed the wire
// twice while delivery order and metering stay exactly canonical.
package mpcnet

import (
	"bufio"
	"fmt"
	"net"
)

// ServeConn speaks the worker protocol on one established driver
// connection until BYE or error. It returns nil on a clean BYE.
func ServeConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("mpcnet: worker handshake: %w", err)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.version != protoVersion {
		return fmt.Errorf("mpcnet: worker speaks version %d, driver %d", protoVersion, h.version)
	}
	if err := writeFrame(bw, appendHelloAck(nil, protoVersion)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	// Raw DATA payloads of the round in flight, in arrival order.
	var held [][]byte
	for {
		payload, err := readFrame(br)
		if err != nil {
			return fmt.Errorf("mpcnet: worker read: %w", err)
		}
		switch payload[0] {
		case kindData:
			// Validate on receipt so a corrupt frame is rejected at the
			// worker, not discovered by the driver on echo.
			df, err := decodeData(payload)
			if err != nil {
				return err
			}
			if df.dst >= h.p || df.dst%h.nworkers != h.workerIdx {
				return fmt.Errorf("mpcnet: worker %d/%d received fragment for server %d",
					h.workerIdx, h.nworkers, df.dst)
			}
			held = append(held, payload)
		case kindFlush:
			seq, err := decodeFlush(payload)
			if err != nil {
				return err
			}
			for _, p := range held {
				if err := writeFrame(bw, p); err != nil {
					return err
				}
			}
			if err := writeFrame(bw, appendEnd(nil, seq, len(held))); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			held = held[:0]
		case kindBye:
			return nil
		default:
			return fmt.Errorf("mpcnet: worker received frame kind %d", payload[0])
		}
	}
}

// ServeOne accepts exactly one driver connection on lis, serves it to
// completion, and closes both. One driver connection is a worker's
// whole life, so this is the worker main loop for both the loopback
// backend and mpcrun's worker subprocesses.
func ServeOne(lis net.Listener) error {
	defer lis.Close()
	conn, err := lis.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	return ServeConn(conn)
}
