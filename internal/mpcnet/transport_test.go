package mpcnet_test

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"mpcquery/internal/mpc"
	"mpcquery/internal/mpcnet"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/trace"
)

// workerEnv marks a re-exec of the test binary as a worker subprocess:
// it listens on loopback, prints the bound address, serves one driver
// connection, and exits.
const workerEnv = "MPCNET_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) != "" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

func workerMain() int {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(lis.Addr().String())
	if err := mpcnet.ServeOne(lis); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// workload is the scripted round program of the equivalence suites:
// hash partition, RNG re-route with an arity-0 decision stream, and a
// sampled broadcast.
func workload(c *mpc.Cluster, input *relation.Relation) {
	c.ScatterRoundRobin(input)
	c.Round("partition", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("R")
		st := out.Open("H", "x", "y", "z")
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			st.SendRow(relation.Bucket(relation.HashRow(row, []int{0}, 42), s.P()), row)
		}
	})
	c.Round("reroute", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("H")
		if frag == nil {
			return
		}
		st := out.Open("G", "x", "y", "z")
		done := out.Open("done")
		for i := 0; i < frag.Len(); i++ {
			st.SendRow(s.Rng().Intn(s.P()), frag.Row(i))
		}
		done.Send(0)
	})
	c.Round("sample", func(s *mpc.Server, out *mpc.Out) {
		frag := s.Rel("G")
		if frag == nil || frag.Len() == 0 {
			return
		}
		out.Open("S", "x", "y", "z").Broadcast(frag.Row(s.Rng().Intn(frag.Len()))...)
	})
}

// runWorkload runs the scripted program on a fresh cluster with the
// given transport (nil = built-in engine) and returns it plus its trace.
func runWorkload(p int, tr mpc.Transport, input *relation.Relation) (*mpc.Cluster, *trace.Recorder) {
	c := mpc.NewCluster(p, 11)
	rec := trace.NewRecorder()
	c.SetTracer(rec)
	if tr != nil {
		c.SetTransport(tr)
	}
	workload(c, input)
	return c, rec
}

// assertSameRun asserts metering, per-server fragments, and traces are
// identical between the reference and the TCP run.
func assertSameRun(t *testing.T, want, got *mpc.Cluster, wantRec, gotRec *trace.Recorder) {
	t.Helper()
	ws, gs := want.Metrics().RoundStats(), got.Metrics().RoundStats()
	if len(ws) != len(gs) {
		t.Fatalf("rounds %d vs %d", len(ws), len(gs))
	}
	for i := range ws {
		if ws[i].Name != gs[i].Name {
			t.Fatalf("round %d: %q vs %q", i, ws[i].Name, gs[i].Name)
		}
		for d := range ws[i].Recv {
			if ws[i].Recv[d] != gs[i].Recv[d] || ws[i].RecvWords[d] != gs[i].RecvWords[d] {
				t.Fatalf("round %q server %d: (%d,%d) vs (%d,%d)", ws[i].Name, d,
					ws[i].Recv[d], ws[i].RecvWords[d], gs[i].Recv[d], gs[i].RecvWords[d])
			}
		}
	}
	for _, name := range []string{"R", "H", "G", "S", "done"} {
		for i := 0; i < want.P(); i++ {
			fw, fg := want.Server(i).Rel(name), got.Server(i).Rel(name)
			if (fw == nil) != (fg == nil) {
				t.Fatalf("%s server %d: present %v vs %v", name, i, fw != nil, fg != nil)
			}
			if fw == nil {
				continue
			}
			if fw.Len() != fg.Len() {
				t.Fatalf("%s server %d: %d vs %d tuples", name, i, fw.Len(), fg.Len())
			}
			for r := 0; r < fw.Len(); r++ {
				rw, rg := fw.Row(r), fg.Row(r)
				for j := range rw {
					if rw[j] != rg[j] {
						t.Fatalf("%s server %d row %d: %v vs %v", name, i, r, rw, rg)
					}
				}
			}
		}
	}
	we, ge := wantRec.Events(), gotRec.Events()
	if len(we) != len(ge) {
		t.Fatalf("trace: %d vs %d events", len(we), len(ge))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("trace event %d: %+v vs %+v", i, we[i], ge[i])
		}
	}
}

// TestLoopbackEquivalence: the TCP backend over loopback workers must
// reproduce the built-in engine bit for bit — fragments, metering,
// traces — across skews, cluster sizes, and worker counts that divide
// the destinations unevenly.
func TestLoopbackEquivalence(t *testing.T) {
	for _, skew := range testkit.AllSkews {
		for _, cfg := range []struct{ p, workers int }{{2, 1}, {5, 2}, {8, 3}} {
			skew, cfg := skew, cfg
			t.Run(fmt.Sprintf("%s/p%d/w%d", skew, cfg.p, cfg.workers), func(t *testing.T) {
				input := testkit.GenRelation("R", []string{"x", "y", "z"}, skew, testkit.GenConfig{Tuples: 400}, 29)
				want, wantRec := runWorkload(cfg.p, nil, input)
				tr, err := mpcnet.NewLoopback(cfg.p, mpcnet.Options{Workers: cfg.workers})
				if err != nil {
					t.Fatal(err)
				}
				defer tr.Close()
				got, gotRec := runWorkload(cfg.p, tr, input)
				assertSameRun(t, want, got, wantRec, gotRec)
			})
		}
	}
}

// TestChunkedFramesEquivalence: MaxFrameTuples=1 forces every tuple
// into its own DATA frame; chunked landings must still be bit-identical.
func TestChunkedFramesEquivalence(t *testing.T) {
	input := testkit.GenRelation("R", []string{"x", "y", "z"}, testkit.SkewZipf, testkit.GenConfig{Tuples: 120}, 3)
	want, wantRec := runWorkload(4, nil, input)
	tr, err := mpcnet.NewLoopback(4, mpcnet.Options{Workers: 2, MaxFrameTuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	got, gotRec := runWorkload(4, tr, input)
	assertSameRun(t, want, got, wantRec, gotRec)
}

// TestTransportReuse: one transport serves several consecutive clusters
// of the same size (the sweep pattern testkit uses), with barriers
// keeping rounds separated.
func TestTransportReuse(t *testing.T) {
	tr, err := mpcnet.NewLoopback(3, mpcnet.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for run := 0; run < 3; run++ {
		input := testkit.GenRelation("R", []string{"x", "y", "z"}, testkit.SkewUniform, testkit.GenConfig{Tuples: 90}, int64(run))
		want, wantRec := runWorkload(3, nil, input)
		got, gotRec := runWorkload(3, tr, input)
		assertSameRun(t, want, got, wantRec, gotRec)
	}
}

// TestClusterSizeMismatch: a transport dialed for p servers must refuse
// rounds from a differently-sized cluster instead of shipping fragments
// to destinations no worker owns.
func TestClusterSizeMismatch(t *testing.T) {
	tr, err := mpcnet.NewLoopback(4, mpcnet.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := mpc.NewCluster(5, 1)
	c.SetTransport(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched round did not abort")
		}
	}()
	c.Round("r", func(s *mpc.Server, out *mpc.Out) {
		out.Open("X", "a").Send(0, 1)
	})
}

// TestSubprocessWorkers runs the same equivalence check with workers in
// real separate processes (the test binary re-executed in worker mode),
// so the bytes cross genuine OS socket boundaries between processes —
// the deployment shape `mpcrun -transport=tcp` uses.
func TestSubprocessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess workers in -short")
	}
	const nworkers = 2
	addrs := make([]string, nworkers)
	for i := range addrs {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), workerEnv+"=1")
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("worker %d printed no address: %v", i, sc.Err())
		}
		addrs[i] = sc.Text()
	}
	input := testkit.GenRelation("R", []string{"x", "y", "z"}, testkit.SkewHeavy, testkit.GenConfig{Tuples: 300}, 17)
	want, wantRec := runWorkload(4, nil, input)
	tr, err := mpcnet.Dial(4, addrs, mpcnet.Options{WriteTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	got, gotRec := runWorkload(4, tr, input)
	assertSameRun(t, want, got, wantRec, gotRec)
}
