// Package mpcnet is the TCP backend of the mpc transport seam: the
// same rounds, fragments, and (L, r, C) metering as the in-process
// engine, with delivery physically crossing real sockets. See codec.go
// for the wire format and worker.go for the data-plane protocol. The
// backend is deterministic by construction — per-connection FIFO order
// plus dst-major canonical write order reproduce the local engine's
// delivery order bit for bit, which the cross-backend differential
// matrix in internal/testkit pins.
package mpcnet

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// DefaultMaxFrameTuples caps the tuples per DATA frame: large fragments
// are chunked so one skewed destination cannot produce an oversized
// frame or starve the write buffer.
const DefaultMaxFrameTuples = 8192

// Options configures the driver side of the TCP transport.
type Options struct {
	// Workers is the number of worker endpoints NewLoopback spawns
	// (ignored by Dial, which gets one worker per address). 0 means
	// min(p, 4).
	Workers int
	// WriteTimeout, when positive, bounds each socket write so a stuck
	// worker fails the round instead of wedging the driver.
	WriteTimeout time.Duration
	// MaxFrameTuples caps tuples per DATA frame. 0 means
	// DefaultMaxFrameTuples.
	MaxFrameTuples int
}

func (o Options) maxTuples() int64 {
	if o.MaxFrameTuples <= 0 {
		return DefaultMaxFrameTuples
	}
	return int64(o.MaxFrameTuples)
}

// Transport ships rounds to mpcnet workers over TCP. It implements
// mpc.Transport; attach it with (*mpc.Cluster).SetTransport. A
// Transport serves one cluster at a time (Deliver is not reentrant).
type Transport struct {
	p     int
	opts  Options
	conns []*workerConn
	seq   uint64
}

// workerConn is the driver's end of one worker connection. The worker
// owns destinations {dst : dst mod len(conns) == idx}; connections have
// disjoint shards, so shard deliveries run concurrently without ever
// landing into one destination from two goroutines.
type workerConn struct {
	idx int
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
}

// Dial connects to one worker per address, handshakes, and returns a
// transport for clusters of size p. The worker at addrs[i] owns
// destination shard i mod len(addrs).
func Dial(p int, addrs []string, opts Options) (*Transport, error) {
	if p < 1 {
		return nil, fmt.Errorf("mpcnet: cluster size %d", p)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("mpcnet: no worker addresses")
	}
	t := &Transport{p: p, opts: opts}
	for i, addr := range addrs {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("mpcnet: worker %d: %w", i, err)
		}
		cn := &workerConn{
			idx: i,
			nc:  nc,
			br:  bufio.NewReaderSize(nc, 1<<16),
			bw:  bufio.NewWriterSize(nc, 1<<16),
		}
		t.conns = append(t.conns, cn)
		if err := handshake(cn, p, len(addrs)); err != nil {
			t.Close()
			return nil, fmt.Errorf("mpcnet: worker %d: %w", i, err)
		}
	}
	return t, nil
}

// NewLoopback spawns opts.Workers in-process workers on loopback
// listeners and dials them — same wire protocol and code path as
// separate worker processes, no subprocess management. This is the
// backend the differential test matrix runs against.
func NewLoopback(p int, opts Options) (*Transport, error) {
	n := opts.Workers
	if n <= 0 {
		n = p
		if n > 4 {
			n = 4
		}
	}
	addrs := make([]string, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("mpcnet: loopback worker %d: %w", i, err)
		}
		addrs[i] = lis.Addr().String()
		go ServeOne(lis) //nolint:errcheck // a worker error surfaces as a driver I/O error
	}
	return Dial(p, addrs, opts)
}

// handshake announces the topology to one worker and verifies the
// protocol version on its HELLOACK.
func handshake(cn *workerConn, p, nworkers int) error {
	h := hello{version: protoVersion, p: p, nworkers: nworkers, workerIdx: cn.idx}
	if err := writeFrame(cn.bw, appendHello(nil, h)); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	payload, err := readFrame(cn.br)
	if err != nil {
		return err
	}
	v, err := decodeHelloAck(payload)
	if err != nil {
		return err
	}
	if v != protoVersion {
		return fmt.Errorf("worker speaks version %d, driver %d", v, protoVersion)
	}
	return nil
}

// Deliver ships the round: each worker connection concurrently streams
// its shard's fragments in canonical dst-major order, posts the FLUSH
// barrier, then lands the echoed fragments. TCP's per-connection FIFO
// plus the worker's arrival-order echo make the landing order per
// destination exactly the local engine's.
func (t *Transport) Deliver(v *mpc.RoundView) error {
	if v.P() != t.p {
		return fmt.Errorf("mpcnet: cluster of %d servers on transport dialed for %d", v.P(), t.p)
	}
	if err := v.ValidateStreams(); err != nil {
		return err
	}
	seq := t.seq
	t.seq++
	errs := make(chan error, len(t.conns))
	for _, cn := range t.conns {
		go func(cn *workerConn) {
			errs <- cn.deliverShard(v, seq, len(t.conns), t.opts)
		}(cn)
	}
	var firstErr error
	for range t.conns {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// deliverShard runs one connection's half of a round barrier.
func (cn *workerConn) deliverShard(v *mpc.RoundView, seq uint64, nworkers int, opts Options) error {
	maxTuples := opts.maxTuples()
	var scratch []byte
	sent := 0
	for dst := cn.idx; dst < v.P(); dst += nworkers {
		for src := 0; src < v.P(); src++ {
			for i := 0; i < v.Streams(src); i++ {
				sv := v.Stream(src, i)
				flat, n := sv.Fragment(dst)
				if n == 0 {
					continue
				}
				arity := int64(len(sv.Attrs()))
				for off := int64(0); off < n; {
					k := maxTuples
					if k > n-off {
						k = n - off
					}
					var chunk []relation.Value
					if arity > 0 {
						chunk = flat[off*arity : (off+k)*arity]
					}
					scratch = appendData(scratch[:0], dst, sv.Name(), sv.Attrs(), chunk, k)
					if err := cn.write(scratch, opts); err != nil {
						return err
					}
					sent++
					off += k
				}
			}
		}
	}
	if err := cn.write(appendFlush(scratch[:0], seq), opts); err != nil {
		return err
	}
	if err := cn.flush(opts); err != nil {
		return err
	}

	landed := 0
	for {
		payload, err := readFrame(cn.br)
		if err != nil {
			return fmt.Errorf("mpcnet: worker %d echo: %w", cn.idx, err)
		}
		switch payload[0] {
		case kindData:
			df, err := decodeData(payload)
			if err != nil {
				return err
			}
			if df.dst%nworkers != cn.idx {
				return fmt.Errorf("mpcnet: worker %d echoed fragment for server %d", cn.idx, df.dst)
			}
			if err := v.Land(df.dst, df.name, df.attrs, df.flat, df.tuples); err != nil {
				return err
			}
			landed++
		case kindEnd:
			gotSeq, frames, err := decodeEnd(payload)
			if err != nil {
				return err
			}
			if gotSeq != seq {
				return fmt.Errorf("mpcnet: worker %d finished round %d during round %d", cn.idx, gotSeq, seq)
			}
			if frames != sent || landed != sent {
				return fmt.Errorf("mpcnet: worker %d: sent %d frames, echoed %d, landed %d",
					cn.idx, sent, frames, landed)
			}
			return nil
		default:
			return fmt.Errorf("mpcnet: worker %d echoed frame kind %d", cn.idx, payload[0])
		}
	}
}

func (cn *workerConn) write(payload []byte, opts Options) error {
	if opts.WriteTimeout > 0 {
		if err := cn.nc.SetWriteDeadline(time.Now().Add(opts.WriteTimeout)); err != nil {
			return err
		}
	}
	return writeFrame(cn.bw, payload)
}

func (cn *workerConn) flush(opts Options) error {
	if opts.WriteTimeout > 0 {
		if err := cn.nc.SetWriteDeadline(time.Now().Add(opts.WriteTimeout)); err != nil {
			return err
		}
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	return cn.nc.SetWriteDeadline(time.Time{})
}

// Close sends BYE to every worker and closes the connections. Workers
// exit cleanly on BYE; Close after a failed round just drops the
// sockets.
func (t *Transport) Close() error {
	var firstErr error
	for _, cn := range t.conns {
		if cn == nil || cn.nc == nil {
			continue
		}
		if err := writeFrame(cn.bw, appendBye(nil)); err == nil {
			_ = cn.bw.Flush()
		}
		if err := cn.nc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.conns = nil
	return firstErr
}
