package mpcnet

import (
	"bytes"
	"testing"

	"mpcquery/internal/relation"
)

// FuzzFrameRoundTrip: any frame the driver can encode decodes back to
// exactly the same fragment — destination, name, schema, tuples, and
// every value bit. The raw inputs are mapped into a valid fragment
// shape (arity from a byte, values carved from a byte string) so the
// fuzzer explores the encoder's whole domain, including arity 0,
// negative values, and empty/duplicate attribute names.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(0, "R", byte(2), []byte{1, 2, 3, 4}, uint16(1))
	f.Add(5, "", byte(0), []byte{}, uint16(3))
	f.Add(1000, "a very long stream name", byte(7), bytes.Repeat([]byte{0xff}, 64), uint16(9))
	f.Fuzz(func(t *testing.T, dst int, name string, arityB byte, valSeed []byte, tuplesSeed uint16) {
		if dst < 0 {
			dst = -dst
		}
		arity := int(arityB % 8)
		attrs := make([]string, arity)
		for i := range attrs {
			// Includes duplicates and empties on purpose: the codec is
			// schema-agnostic; Land does semantic validation.
			attrs[i] = name + string(rune('a'+i%3))
		}
		tuples := int64(tuplesSeed%32) + 1
		words := int(tuples) * arity
		flat := make([]relation.Value, words)
		for i := range flat {
			v := relation.Value(0)
			for j := 0; j < 8 && i*8+j < len(valSeed); j++ {
				v = v<<8 | relation.Value(valSeed[i*8+j])
			}
			if i%2 == 1 {
				v = -v
			}
			flat[i] = v
		}
		payload := appendData(nil, dst, name, attrs, flat, tuples)
		df, err := decodeData(payload)
		if err != nil {
			t.Fatalf("valid frame rejected: %v", err)
		}
		if df.dst != dst || df.name != name || df.tuples != tuples {
			t.Fatalf("header mismatch: got (%d,%q,%d), want (%d,%q,%d)",
				df.dst, df.name, df.tuples, dst, name, tuples)
		}
		if len(df.attrs) != arity {
			t.Fatalf("arity %d, want %d", len(df.attrs), arity)
		}
		for i := range attrs {
			if df.attrs[i] != attrs[i] {
				t.Fatalf("attr %d: %q, want %q", i, df.attrs[i], attrs[i])
			}
		}
		for i := range flat {
			if df.flat[i] != flat[i] {
				t.Fatalf("value %d: %d, want %d", i, df.flat[i], flat[i])
			}
		}
		// And the encoding is deterministic: re-encoding the decoded
		// frame reproduces the bytes.
		if again := appendData(nil, df.dst, df.name, df.attrs, df.flat, df.tuples); !bytes.Equal(again, payload) {
			t.Fatal("re-encoding is not byte-identical")
		}
	})
}

// FuzzDecodeFrame: arbitrary bytes must never panic any payload decoder
// and never allocate beyond the input's own size class — every claimed
// count is checked against remaining bytes before allocation. The
// dispatch covers all six frame kinds.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{kindData, 0, 1, 1, 'R', 0, 1, 1, 2})
	f.Add([]byte{kindHello, 1, 2, 2, 0})
	f.Add([]byte{kindFlush, 7})
	f.Add([]byte{kindEnd, 7, 3})
	f.Add([]byte{kindBye})
	f.Add([]byte{kindData, 0, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, payload []byte) {
		v, err := decodePayload(payload)
		if err != nil || payload[0] != kindData {
			return
		}
		// A DATA payload that decodes must re-decode identically —
		// decoding is a pure function of the bytes.
		df := v.(dataFrame)
		df2, err2 := decodeData(payload)
		if err2 != nil {
			t.Fatalf("second decode failed: %v", err2)
		}
		if df.dst != df2.dst || df.name != df2.name || df.tuples != df2.tuples ||
			len(df.attrs) != len(df2.attrs) || len(df.flat) != len(df2.flat) {
			t.Fatal("decode is not deterministic")
		}
	})
}
