package mpcnet_test

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/mpcnet"
	"mpcquery/internal/relation"
)

// BenchmarkDeliverTCP measures a full round trip through the TCP
// backend on loopback workers: encode, ship, barrier, echo, land. The
// local BenchmarkDeliver in internal/mpc is the apples-to-apples
// baseline for what the wire costs; BENCH_BASELINE.json tracks both.
func BenchmarkDeliverTCP(b *testing.B) {
	const tuples = 1 << 15 // cluster-wide tuples per round
	for _, p := range []int{4, 8} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			tr, err := mpcnet.NewLoopback(p, mpcnet.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer tr.Close()
			c := mpc.NewCluster(p, 1)
			c.SetTransport(tr)
			per := tuples / p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Round("shuffle", func(s *mpc.Server, out *mpc.Out) {
					st := out.Open("T", "a", "b")
					for j := 0; j < per; j++ {
						st.Send((s.ID()+j)%s.P(), relation.Value(j), relation.Value(s.ID()))
					}
				})
				b.StopTimer()
				c.DeleteAll("T")
				c.ResetMetrics()
				b.StartTimer()
			}
		})
	}
}
