package join2

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: every two-way-join strategy under seeded
// fault schedules, asserting recovery, oracle equality, and (L, r, C)
// identical to the fault-free run.

func TestHashJoinChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(HashJoin))
}

// TestSkewJoinChaosDiff exercises the three-round strategy: the degree
// exchange and heavy-hitter broadcast rounds give the injector three
// distinct fragment populations to fault.
func TestSkewJoinChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(SkewJoin))
}

// TestSortJoinChaosDiff covers the four-round sort-based join — the
// longest per-query round sequence in the package, so a mid-query crash
// has the most committed state to threaten.
func TestSortJoinChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(SortJoin))
}

func TestBroadcastJoinChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.TwoWayJoin(), testkit.Config{},
		func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
			r := testkit.Renamed(q.Atoms[0], rels[q.Atoms[0].Name])
			s := testkit.Renamed(q.Atoms[1], rels[q.Atoms[1].Name])
			BroadcastJoin(c, r, s, outName)
			return nil
		})
}
