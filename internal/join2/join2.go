// Package join2 implements the tutorial's two-way join algorithms on
// the MPC simulator (slides 22–32):
//
//   - HashJoin — the parallel hash join every system uses (slide 23):
//     one round, load Θ(IN/p) without skew, but degrades to Θ(IN) under
//     extreme skew.
//   - BroadcastJoin — replicate the small relation everywhere
//     (slide 32), one round, load |R| + IN/p.
//   - CartesianProduct — the p1×p2 grid algorithm (slide 28) with
//     optimal shares, load 2·sqrt(|R||S|/p).
//   - SkewJoin — the arbitrary-skew algorithm (slides 29–30): parallel
//     hash join for light values plus a dedicated grid Cartesian
//     product per heavy hitter, load O(sqrt(OUT/p) + IN/p).
//   - SortJoin — the parallel sort join (slide 31, Hu et al. '17):
//     sort the tagged union by (key, uid), join locally, and fix up
//     values crossing server boundaries with grid products; same load
//     bound as SkewJoin.
//
// Every algorithm takes two relations sharing exactly one attribute,
// distributes them (initial placement is free in the model), runs its
// rounds, and leaves the join result distributed under a caller-chosen
// name. Results and the metered (L, r, C) are read off the cluster.
package join2

import (
	"fmt"
	"math"
	"sort"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/sortmpc"
	"mpcquery/internal/stats"
	"mpcquery/internal/trace"
)

// Result describes one parallel join execution.
type Result struct {
	OutName string
	Rounds  int // communication rounds used by this join alone
}

// joinAttr returns the single shared attribute of r and s, panicking if
// there is not exactly one (the tutorial's two-way join model).
func joinAttr(r, s *relation.Relation) string {
	if r.Name() == s.Name() {
		panic("join2: inputs must have distinct names (rename one side for self-joins)")
	}
	shared := relation.SharedAttrs(r, s)
	if len(shared) != 1 {
		panic(fmt.Sprintf("join2: relations %s and %s share %d attributes, want exactly 1",
			r.Name(), s.Name(), len(shared)))
	}
	return shared[0]
}

// HashJoin runs the one-round parallel hash join of slide 23: every
// tuple of r and s is routed to server h(key) by its join-key value
// (the shared attributes — composite keys are supported), and each
// server joins its buckets locally.
func HashJoin(c *mpc.Cluster, r, s *relation.Relation, outName string, seed uint64) *Result {
	if r.Name() == s.Name() {
		panic("join2: inputs must have distinct names (rename one side for self-joins)")
	}
	shared := relation.SharedAttrs(r, s)
	if len(shared) == 0 {
		panic(fmt.Sprintf("join2: relations %s and %s share no attributes; use CartesianProduct", r.Name(), s.Name()))
	}
	c.ScatterRoundRobin(r)
	c.ScatterRoundRobin(s)
	trace.Annotatef(c, "join2.HashJoin %s ⋈ %s on %v", r.Name(), s.Name(), shared)
	start := c.Metrics().Rounds()
	rName, sName := r.Name(), s.Name()
	rAttrs, sAttrs := r.Attrs(), s.Attrs()
	c.Round("hashjoin:shuffle", func(srv *mpc.Server, out *mpc.Out) {
		for _, spec := range []struct {
			name  string
			attrs []string
		}{{rName, rAttrs}, {sName, sAttrs}} {
			frag := srv.Rel(spec.name)
			if frag == nil {
				continue
			}
			st := out.Open(outName+":"+spec.name, spec.attrs...)
			cols := make([]int, len(shared))
			for i, a := range shared {
				cols[i] = frag.MustCol(a)
			}
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				st.SendRow(relation.Bucket(relation.HashRow(row, cols, seed), c.P()), row)
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		rf := srv.RelOrEmpty(outName+":"+rName, rAttrs...)
		sf := srv.RelOrEmpty(outName+":"+sName, sAttrs...)
		srv.Put(relation.HashJoin(outName, rf.Rename(rName), sf.Rename(sName)))
		srv.Delete(outName + ":" + rName)
		srv.Delete(outName + ":" + sName)
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}

// BroadcastJoin replicates r (the designated small relation) to every
// server and joins it against the locally resident fragments of s
// (slide 32). One round; load |r| per server.
func BroadcastJoin(c *mpc.Cluster, r, s *relation.Relation, outName string) *Result {
	joinAttr(r, s) // validate schema compatibility
	c.ScatterRoundRobin(r)
	c.ScatterRoundRobin(s)
	trace.Annotatef(c, "join2.BroadcastJoin small=%s (%d tuples)", r.Name(), r.Len())
	start := c.Metrics().Rounds()
	rName, sName := r.Name(), s.Name()
	rAttrs, sAttrs := r.Attrs(), s.Attrs()
	c.Round("broadcastjoin:replicate", func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel(rName)
		if frag == nil {
			return
		}
		st := out.Open(outName+":"+rName, rAttrs...)
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			for dst := 0; dst < c.P(); dst++ {
				st.SendRow(dst, row)
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		rf := srv.RelOrEmpty(outName+":"+rName, rAttrs...)
		sf := srv.RelOrEmpty(sName, sAttrs...)
		srv.Put(relation.HashJoin(outName, rf.Rename(rName), sf))
		srv.Delete(outName + ":" + rName)
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}

// GridShares returns the optimal grid dimensions p1×p2 ≤ p for a
// Cartesian product of sizes nr×ns (slide 28): |R|/p1 = |S|/p2, i.e.
// p1 = sqrt(p·|R|/|S|), clamped to [1, p].
func GridShares(nr, ns, p int) (p1, p2 int) {
	if nr <= 0 || ns <= 0 {
		return 1, p
	}
	f := math.Sqrt(float64(p) * float64(nr) / float64(ns))
	p1 = int(math.Round(f))
	if p1 < 1 {
		p1 = 1
	}
	if p1 > p {
		p1 = p
	}
	p2 = p / p1
	if p2 < 1 {
		p2 = 1
		p1 = p
	}
	return p1, p2
}

// CartesianProduct computes r × s with the grid algorithm of slide 28:
// servers form a p1×p2 rectangle; each r tuple goes to one random row
// (all its servers) and each s tuple to one random column. One round,
// load |R|/p1 + |S|/p2 ≈ 2·sqrt(|R||S|/p). The relations must share no
// attributes.
func CartesianProduct(c *mpc.Cluster, r, s *relation.Relation, outName string) *Result {
	if len(relation.SharedAttrs(r, s)) != 0 {
		panic("join2: CartesianProduct inputs share attributes")
	}
	c.ScatterRoundRobin(r)
	c.ScatterRoundRobin(s)
	start := c.Metrics().Rounds()
	p1, p2 := GridShares(r.Len(), s.Len(), c.P())
	rName, sName := r.Name(), s.Name()
	rAttrs, sAttrs := r.Attrs(), s.Attrs()
	c.Round("cartesian:grid", func(srv *mpc.Server, out *mpc.Out) {
		if frag := srv.Rel(rName); frag != nil {
			st := out.Open(outName+":"+rName, rAttrs...)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				gr := srv.Rng().Intn(p1)
				for gc := 0; gc < p2; gc++ {
					st.SendRow(gr*p2+gc, row)
				}
			}
		}
		if frag := srv.Rel(sName); frag != nil {
			st := out.Open(outName+":"+sName, sAttrs...)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				gc := srv.Rng().Intn(p2)
				for gr := 0; gr < p1; gr++ {
					st.SendRow(gr*p2+gc, row)
				}
			}
		}
	})
	c.LocalStep(func(srv *mpc.Server) {
		rf := srv.RelOrEmpty(outName+":"+rName, rAttrs...)
		sf := srv.RelOrEmpty(outName+":"+sName, sAttrs...)
		srv.Put(relation.CrossProduct(outName, rf.Rename(rName), sf.Rename(sName)))
		srv.Delete(outName + ":" + rName)
		srv.Delete(outName + ":" + sName)
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}

// heavyPlan describes the exclusive server block assigned to one heavy
// hitter (slide 30): a p1×p2 grid of pTotal = p1·p2 servers starting at
// offset.
type heavyPlan struct {
	value  relation.Value
	dr, ds int // global degrees in r and s
	offset int
	p1, p2 int
}

// planHeavy allocates server blocks to heavy hitters proportionally to
// sqrt(dR·dS) (each heavy hitter's Cartesian output is dR·dS, so its
// optimal load sqrt(dR·dS/p_i) is equalized by this allocation).
func planHeavy(heavy []heavyPlan, p int) []heavyPlan {
	if len(heavy) == 0 {
		return heavy
	}
	total := 0.0
	for _, h := range heavy {
		total += math.Sqrt(float64(h.dr) * float64(h.ds))
	}
	offset := 0
	for i := range heavy {
		share := math.Sqrt(float64(heavy[i].dr)*float64(heavy[i].ds)) / total
		pi := int(math.Floor(share * float64(p)))
		if pi < 1 {
			pi = 1
		}
		if offset+pi > p {
			pi = p - offset
		}
		if pi < 1 {
			// Out of servers: stack remaining heavy hitters on the last
			// server; correctness is preserved, the load bound degrades.
			pi = 1
			offset = p - 1
		}
		heavy[i].offset = offset
		heavy[i].p1, heavy[i].p2 = GridShares(heavy[i].dr, heavy[i].ds, pi)
		offset += heavy[i].p1 * heavy[i].p2
		if offset >= p {
			offset = p - 1
		}
	}
	return heavy
}

// SkewJoin runs the arbitrary-skew two-way join of slides 29–30. Values
// with degree ≥ IN/p in r or s (heavy hitters) are joined with
// dedicated grid Cartesian products; all other values use the parallel
// hash join. Three rounds: a degree-exchange round, a heavy-hitter
// broadcast round, and the main shuffle.
func SkewJoin(c *mpc.Cluster, r, s *relation.Relation, outName string, seed uint64) *Result {
	y := joinAttr(r, s)
	c.ScatterRoundRobin(r)
	c.ScatterRoundRobin(s)
	start := c.Metrics().Rounds()
	p := c.P()
	in := r.Len() + s.Len()
	threshold := in / p
	if threshold < 1 {
		threshold = 1
	}
	trace.Annotatef(c, "join2.SkewJoin %s ⋈ %s on %s (heavy threshold %d)", r.Name(), s.Name(), y, threshold)
	rName, sName := r.Name(), s.Name()
	rAttrs, sAttrs := r.Attrs(), s.Attrs()

	// Round 1: exchange per-value degree summaries so that server h(v)
	// learns the global degree of v in both relations.
	c.Round("skewjoin:degrees", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":deg", "v", "dr", "ds")
		counts := map[relation.Value][2]int{}
		if frag := srv.Rel(rName); frag != nil {
			col := frag.MustCol(y)
			for i := 0; i < frag.Len(); i++ {
				v := frag.Row(i)[col]
				e := counts[v]
				e[0]++
				counts[v] = e
			}
		}
		if frag := srv.Rel(sName); frag != nil {
			col := frag.MustCol(y)
			for i := 0; i < frag.Len(); i++ {
				v := frag.Row(i)[col]
				e := counts[v]
				e[1]++
				counts[v] = e
			}
		}
		vals := make([]relation.Value, 0, len(counts))
		for v := range counts {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for _, v := range vals {
			e := counts[v]
			st.Send(relation.Bucket(relation.Hash64(v, seed), p), v, relation.Value(e[0]), relation.Value(e[1]))
		}
	})

	// Round 2: each server aggregates the degree reports it owns and
	// broadcasts the heavy hitters with their global degrees.
	c.Round("skewjoin:heavy", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":heavy", "v", "dr", "ds")
		deg := srv.Rel(outName + ":deg")
		if deg == nil {
			return
		}
		agg := map[relation.Value][2]int{}
		for i := 0; i < deg.Len(); i++ {
			row := deg.Row(i)
			e := agg[row[0]]
			e[0] += int(row[1])
			e[1] += int(row[2])
			agg[row[0]] = e
		}
		vals := make([]relation.Value, 0, len(agg))
		for v := range agg {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for _, v := range vals {
			e := agg[v]
			if e[0] >= threshold || e[1] >= threshold {
				st.Broadcast(v, relation.Value(e[0]), relation.Value(e[1]))
			}
		}
		srv.Delete(outName + ":deg")
	})

	// Derive the (identical everywhere) heavy-hitter plan from server
	// 0's copy of the broadcast.
	var heavy []heavyPlan
	if hrel := c.Server(0).Rel(outName + ":heavy"); hrel != nil {
		rows := make([][]relation.Value, 0, hrel.Len())
		for i := 0; i < hrel.Len(); i++ {
			rows = append(rows, append([]relation.Value(nil), hrel.Row(i)...))
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a][0] < rows[b][0] })
		for _, row := range rows {
			heavy = append(heavy, heavyPlan{value: row[0], dr: int(row[1]), ds: int(row[2])})
		}
	}
	heavy = planHeavy(heavy, p)
	planOf := map[relation.Value]heavyPlan{}
	for _, h := range heavy {
		planOf[h.value] = h
	}
	c.DeleteAll(outName + ":heavy")

	// Round 3: main shuffle. Light tuples hash; heavy tuples grid.
	c.Round("skewjoin:shuffle", func(srv *mpc.Server, out *mpc.Out) {
		route := func(name string, attrs []string, isR bool) {
			frag := srv.Rel(name)
			if frag == nil {
				return
			}
			st := out.Open(outName+":"+name, attrs...)
			col := frag.MustCol(y)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				v := row[col]
				h, isHeavy := planOf[v]
				if !isHeavy {
					st.SendRow(relation.Bucket(relation.Hash64(v, seed), p), row)
					continue
				}
				if isR {
					gr := srv.Rng().Intn(h.p1)
					for gc := 0; gc < h.p2; gc++ {
						st.SendRow(h.offset+gr*h.p2+gc, row)
					}
				} else {
					gc := srv.Rng().Intn(h.p2)
					for gr := 0; gr < h.p1; gr++ {
						st.SendRow(h.offset+gr*h.p2+gc, row)
					}
				}
			}
		}
		route(rName, rAttrs, true)
		route(sName, sAttrs, false)
	})
	c.LocalStep(func(srv *mpc.Server) {
		rf := srv.RelOrEmpty(outName+":"+rName, rAttrs...)
		sf := srv.RelOrEmpty(outName+":"+sName, sAttrs...)
		srv.Put(relation.HashJoin(outName, rf.Rename(rName), sf.Rename(sName)))
		srv.Delete(outName + ":" + rName)
		srv.Delete(outName + ":" + sName)
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}

// HeavyHittersOf is a convenience wrapper exposing the skew threshold
// the algorithms use: values with degree ≥ (|r|+|s|)/p in either input.
func HeavyHittersOf(r, s *relation.Relation, p int) []relation.Value {
	y := joinAttr(r, s)
	threshold := (r.Len() + s.Len()) / p
	if threshold < 1 {
		threshold = 1
	}
	return stats.JoinHeavyHitters(r, s, y, threshold)
}

// SortJoin runs the parallel sort join of slide 31 (Hu et al. '17):
//
//  1. the tagged union of r and s is sorted by (y, tag, uid) with PSRS,
//     so the partition is balanced even when one value dominates;
//  2. values wholly inside one server are joined locally by merge join;
//  3. values crossing server boundaries are fixed up with a grid
//     Cartesian product over the servers that hold them.
//
// Load O(sqrt(OUT/p) + IN/p); four rounds (two for PSRS, one boundary
// exchange, one fix-up shuffle).
func SortJoin(c *mpc.Cluster, r, s *relation.Relation, outName string, seed uint64) *Result {
	y := joinAttr(r, s)
	// Build the tagged union: (y, tag, uid, rest...) where rest has the
	// non-join attributes of both sides (padded for the other side).
	rRest := restAttrs(r, y)
	sRest := restAttrs(s, y)
	union := relation.New(outName+":u", append([]string{y, "_tag", "_uid"}, "_payload")...)
	// To keep the union schema rank-1 we pack each side's single rest
	// attribute; the tutorial's joins are binary relations. Guard:
	if len(rRest) != 1 || len(sRest) != 1 {
		panic("join2: SortJoin supports binary relations R(x,y) ⋈ S(y,z)")
	}
	uid := relation.Value(0)
	rc, ry := r.MustCol(rRest[0]), r.MustCol(y)
	for i := 0; i < r.Len(); i++ {
		union.Append(r.Row(i)[ry], 0, uid, r.Row(i)[rc])
		uid++
	}
	sc, sy := s.MustCol(sRest[0]), s.MustCol(y)
	for i := 0; i < s.Len(); i++ {
		union.Append(s.Row(i)[sy], 1, uid, s.Row(i)[sc])
		uid++
	}
	c.ScatterRoundRobin(union)
	trace.Annotatef(c, "join2.SortJoin %s ⋈ %s on %s (union %d tuples)", r.Name(), s.Name(), y, union.Len())
	start := c.Metrics().Rounds()

	// Phase 1: parallel sort by (y, tag, uid).
	sorted := outName + ":sorted"
	sortmpc.PSRS(c, outName+":u", []string{y, "_tag", "_uid"}, sorted)
	c.DeleteAll(outName + ":u")

	// Phase 2: boundary exchange — every server broadcasts its
	// fragment's first/last y value and its local R/S counts for them,
	// so everyone can identify crossing values and their global degrees.
	c.Round("sortjoin:bounds", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":bounds", "srv", "v", "dr", "ds")
		frag := srv.Rel(sorted)
		if frag == nil || frag.Len() == 0 {
			return
		}
		col := frag.MustCol(y)
		tcol := frag.MustCol("_tag")
		first, last := frag.Row(0)[col], frag.Row(frag.Len() - 1)[col]
		for _, v := range []relation.Value{first, last} {
			dr, ds := 0, 0
			for i := 0; i < frag.Len(); i++ {
				if frag.Row(i)[col] == v {
					if frag.Row(i)[tcol] == 0 {
						dr++
					} else {
						ds++
					}
				}
			}
			st.Broadcast(relation.Value(srv.ID()), v, relation.Value(dr), relation.Value(ds))
			if first == last {
				break
			}
		}
	})
	// Identify crossing values: y values reported by ≥ 2 servers.
	type crossInfo struct {
		value   relation.Value
		servers []int
		dr, ds  int
	}
	crossing := map[relation.Value]*crossInfo{}
	if brel := c.Server(0).Rel(outName + ":bounds"); brel != nil {
		perValue := map[relation.Value]map[int][2]int{}
		for i := 0; i < brel.Len(); i++ {
			row := brel.Row(i)
			v := row[1]
			if perValue[v] == nil {
				perValue[v] = map[int][2]int{}
			}
			e := perValue[v][int(row[0])]
			// A server may report the same value twice (first == last
			// guarded above); take the max counts.
			if int(row[2]) > e[0] {
				e[0] = int(row[2])
			}
			if int(row[3]) > e[1] {
				e[1] = int(row[3])
			}
			perValue[v][int(row[0])] = e
		}
		for v, servers := range perValue {
			if len(servers) < 2 {
				continue
			}
			ci := &crossInfo{value: v}
			for sid, e := range servers {
				ci.servers = append(ci.servers, sid)
				ci.dr += e[0]
				ci.ds += e[1]
			}
			sort.Ints(ci.servers)
			crossing[v] = ci
		}
	}
	c.DeleteAll(outName + ":bounds")

	// Build grid plans for crossing values over their own server ranges.
	type crossPlan struct {
		offset, p1, p2 int
	}
	plans := map[relation.Value]crossPlan{}
	var crossVals []relation.Value
	for v := range crossing {
		crossVals = append(crossVals, v)
	}
	sort.Slice(crossVals, func(a, b int) bool { return crossVals[a] < crossVals[b] })
	for _, v := range crossVals {
		ci := crossing[v]
		nServers := ci.servers[len(ci.servers)-1] - ci.servers[0] + 1
		p1, p2 := GridShares(ci.dr, ci.ds, nServers)
		plans[v] = crossPlan{offset: ci.servers[0], p1: p1, p2: p2}
	}

	// Phase 3: fix-up shuffle. Crossing tuples move into their value's
	// grid; everything else stays put.
	c.Round("sortjoin:cross", func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel(sorted)
		if frag == nil || frag.Len() == 0 {
			return
		}
		stR := out.Open(outName+":xr", y, rRest[0])
		stS := out.Open(outName+":xs", y, sRest[0])
		col := frag.MustCol(y)
		tcol := frag.MustCol("_tag")
		pcol := frag.MustCol("_payload")
		kept := frag.Empty()
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i)
			pl, isCross := plans[row[col]]
			if !isCross {
				kept.AppendRow(row)
				continue
			}
			if row[tcol] == 0 {
				gr := srv.Rng().Intn(pl.p1)
				for gc := 0; gc < pl.p2; gc++ {
					stR.Send(pl.offset+gr*pl.p2+gc, row[col], row[pcol])
				}
			} else {
				gc := srv.Rng().Intn(pl.p2)
				for gr := 0; gr < pl.p1; gr++ {
					stS.Send(pl.offset+gr*pl.p2+gc, row[col], row[pcol])
				}
			}
		}
		srv.Put(kept.Rename(sorted))
	})

	// Local join: merge-join the non-crossing sorted runs plus hash-join
	// the crossing grids.
	rSchema := []string{rRest[0], y} // R(x, y)
	sSchema := []string{y, sRest[0]} // S(y, z)
	outSchema := []string{rRest[0], y, sRest[0]}
	c.LocalStep(func(srv *mpc.Server) {
		rf := relation.New(r.Name(), rSchema...)
		sf := relation.New(s.Name(), sSchema...)
		if frag := srv.Rel(sorted); frag != nil {
			col := frag.MustCol(y)
			tcol := frag.MustCol("_tag")
			pcol := frag.MustCol("_payload")
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				if row[tcol] == 0 {
					rf.Append(row[pcol], row[col])
				} else {
					sf.Append(row[col], row[pcol])
				}
			}
		}
		local := relation.SortMergeJoin(outName, rf, sf)
		if xr := srv.Rel(outName + ":xr"); xr != nil {
			xs := srv.RelOrEmpty(outName+":xs", y, sRest[0])
			xrR := relation.New(r.Name(), rSchema...)
			for i := 0; i < xr.Len(); i++ {
				xrR.Append(xr.Row(i)[1], xr.Row(i)[0])
			}
			cross := relation.HashJoin(outName, xrR, xs.Rename(s.Name()))
			local.AppendAll(cross.Project(outName, outSchema...))
		}
		srv.Put(local.Project(outName, outSchema...))
		srv.Delete(sorted)
		srv.Delete(outName + ":xr")
		srv.Delete(outName + ":xs")
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}
}

func restAttrs(r *relation.Relation, y string) []string {
	var rest []string
	for _, a := range r.Attrs() {
		if a != y {
			rest = append(rest, a)
		}
	}
	return rest
}
