package join2

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Differential tests: all four two-way-join strategies vs the
// sequential oracle on R(x,y) ⋈ S(y,z), across cluster sizes, seeds and
// input skews, with exact round counts per strategy.

// twoWay adapts a (cluster, R, S) join entry point to the testkit Algo
// contract by renaming the generated relations to the atom variables.
func twoWay(join func(c *mpc.Cluster, r, s *relation.Relation, outName string, seed uint64) *Result) testkit.Algo {
	return func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
		r := testkit.Renamed(q.Atoms[0], rels[q.Atoms[0].Name])
		s := testkit.Renamed(q.Atoms[1], rels[q.Atoms[1].Name])
		join(c, r, s, outName, seed)
		return nil
	}
}

func fixedRounds(n int) func(hypergraph.Query, int) int {
	return func(hypergraph.Query, int) int { return n }
}

// TestHashJoinDiff: the one-round hash repartition join. τ* = 1, so on
// skew-free inputs L ≤ 4·IN/p + slack (factor 4 covers hash-placement
// variance around the IN/p mean at these input sizes).
func TestHashJoinDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = fixedRounds(1)
	cfg.LoadFactor = 4.0
	testkit.RunDiff(t, hypergraph.TwoWayJoin(), cfg, twoWay(HashJoin))
}

// TestBroadcastJoinDiff: one round, R replicated everywhere. No load
// bound asserted — broadcast load is p·|R|/p + |S|/p by design, not
// IN/p.
func TestBroadcastJoinDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = fixedRounds(1)
	testkit.RunDiff(t, hypergraph.TwoWayJoin(), cfg,
		func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
			r := testkit.Renamed(q.Atoms[0], rels[q.Atoms[0].Name])
			s := testkit.Renamed(q.Atoms[1], rels[q.Atoms[1].Name])
			BroadcastJoin(c, r, s, outName)
			return nil
		})
}

// TestSkewJoinDiff: the three-round skew-resilient join (degree
// exchange, heavy-hitter broadcast, hybrid shuffle). The skewed
// distributions in the sweep put heavy hitters on the join attribute y.
func TestSkewJoinDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = fixedRounds(3)
	testkit.RunDiff(t, hypergraph.TwoWayJoin(), cfg, twoWay(SkewJoin))
}

// TestSortJoinDiff: the four-round sort-based join (2 PSRS rounds +
// boundary exchange + crossing-value fixup).
func TestSortJoinDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = fixedRounds(4)
	testkit.RunDiff(t, hypergraph.TwoWayJoin(), cfg, twoWay(SortJoin))
}
