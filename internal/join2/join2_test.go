package join2

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// expected computes the reference join result locally.
func expected(r, s *relation.Relation) *relation.Relation {
	return relation.HashJoin("want", r, s)
}

func checkJoin(t *testing.T, c *mpc.Cluster, outName string, r, s *relation.Relation) {
	t.Helper()
	got := c.Gather(outName)
	want := expected(r, s)
	if got.Len() != want.Len() {
		t.Fatalf("join size = %d, want %d", got.Len(), want.Len())
	}
	if !got.EqualAsSets(want) {
		t.Fatalf("join result differs from reference")
	}
}

func uniformInputs(n int, seed int64) (*relation.Relation, *relation.Relation) {
	r := workload.Uniform("R", []string{"x", "y"}, n, n/2, seed)
	s := workload.Uniform("S", []string{"y", "z"}, n, n/2, seed+1)
	return r, s
}

func TestHashJoinCorrect(t *testing.T) {
	r, s := uniformInputs(1000, 1)
	c := mpc.NewCluster(8, 1)
	res := HashJoin(c, r, s, "out", 42)
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	checkJoin(t, c, "out", r, s)
}

func TestHashJoinLoadNoSkew(t *testing.T) {
	// Skew-free data: load near IN/p (slide 24).
	const n, p = 4000, 8
	r := workload.Matching("R", []string{"x", "y"}, n)
	s := workload.Matching("S", []string{"y", "z"}, n)
	c := mpc.NewCluster(p, 1)
	HashJoin(c, r, s, "out", 42)
	load := c.Metrics().MaxLoad()
	ideal := int64(2 * n / p)
	if load > ideal*3/2 {
		t.Fatalf("no-skew hash join load %d > 1.5× ideal %d", load, ideal)
	}
	checkJoin(t, c, "out", r, s)
}

func TestHashJoinLoadUnderExtremeSkew(t *testing.T) {
	// All tuples share one join value: the hash join sends everything to
	// one server, L = IN (slide 27's pathology).
	const n, p = 500, 8
	r := workload.PlantHeavy("R", "y", "x", 0, 0, []relation.Value{7}, []int{n})
	s := workload.PlantHeavy("S", "y", "z", 0, 0, []relation.Value{7}, []int{n})
	c := mpc.NewCluster(p, 1)
	HashJoin(c, r.Project("R", "x", "y"), s, "out", 42)
	if load := c.Metrics().MaxLoad(); load < int64(2*n) {
		t.Fatalf("extreme-skew hash join load = %d, want IN = %d", load, 2*n)
	}
}

func TestBroadcastJoinCorrect(t *testing.T) {
	small := workload.Uniform("R", []string{"x", "y"}, 50, 40, 3)
	big := workload.Uniform("S", []string{"y", "z"}, 2000, 40, 4)
	c := mpc.NewCluster(8, 1)
	res := BroadcastJoin(c, small, big, "out")
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	checkJoin(t, c, "out", small, big)
	// Load = |R| per server (the big side never moves).
	if load := c.Metrics().MaxLoad(); load != int64(small.Len()) {
		t.Fatalf("broadcast load = %d, want |R| = %d", load, small.Len())
	}
}

func TestGridShares(t *testing.T) {
	for _, tc := range []struct {
		nr, ns, p      int
		wantP1, wantP2 int
	}{
		{100, 100, 16, 4, 4},
		{100, 100, 4, 2, 2},
		{1, 10000, 16, 1, 16},
		{10000, 1, 16, 16, 1},
		{0, 5, 8, 1, 8},
	} {
		p1, p2 := GridShares(tc.nr, tc.ns, tc.p)
		if p1 != tc.wantP1 || p2 != tc.wantP2 {
			t.Errorf("GridShares(%d,%d,%d) = %d×%d, want %d×%d",
				tc.nr, tc.ns, tc.p, p1, p2, tc.wantP1, tc.wantP2)
		}
		if p1*p2 > tc.p {
			t.Errorf("grid %d×%d exceeds p=%d", p1, p2, tc.p)
		}
	}
}

func TestCartesianProductCorrect(t *testing.T) {
	r := workload.Uniform("R", []string{"x"}, 60, 1000, 5)
	s := workload.Uniform("S", []string{"z"}, 40, 1000, 6)
	c := mpc.NewCluster(16, 1)
	res := CartesianProduct(c, r, s, "out")
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	got := c.Gather("out")
	if got.Len() != r.Len()*s.Len() {
		t.Fatalf("product size = %d, want %d", got.Len(), r.Len()*s.Len())
	}
	want := relation.CrossProduct("want", r, s)
	if !got.EqualAsSets(want) {
		t.Fatal("product contents wrong")
	}
}

func TestCartesianLoadNearOptimal(t *testing.T) {
	// Slide 28: L = 2·sqrt(|R||S|/p). Allow 2× for randomness.
	const nr, ns, p = 1600, 1600, 16
	r := workload.Uniform("R", []string{"x"}, nr, 1<<30, 7)
	s := workload.Uniform("S", []string{"z"}, ns, 1<<30, 8)
	c := mpc.NewCluster(p, 1)
	CartesianProduct(c, r, s, "out")
	load := float64(c.Metrics().MaxLoad())
	optimal := 800.0 // 2*sqrt(1600*1600/16)
	if load > 2*optimal {
		t.Fatalf("cartesian load %g > 2× optimal %g", load, optimal)
	}
}

func TestCartesianPanicsOnSharedAttrs(t *testing.T) {
	r := workload.Uniform("R", []string{"x"}, 5, 10, 1)
	c := mpc.NewCluster(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CartesianProduct(c, r, r.Rename("S"), "out")
}

func TestSkewJoinCorrectUniform(t *testing.T) {
	r, s := uniformInputs(800, 9)
	c := mpc.NewCluster(8, 1)
	res := SkewJoin(c, r, s, "out", 42)
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	checkJoin(t, c, "out", r, s)
}

func TestSkewJoinCorrectExtremeSkew(t *testing.T) {
	// One value holds everything: output is the full cross product.
	const n, p = 400, 8
	r := workload.PlantHeavy("R", "y", "x", 20, 1000, []relation.Value{7}, []int{n})
	rr := r.Project("R", "x", "y")
	s := workload.PlantHeavy("S", "y", "z", 20, 2000, []relation.Value{7}, []int{n})
	c := mpc.NewCluster(p, 1)
	SkewJoin(c, rr, s, "out", 42)
	checkJoin(t, c, "out", rr, s)
}

func TestSkewJoinBeatsHashJoinUnderSkew(t *testing.T) {
	// Extreme skew: hash join load = IN; skew join spreads the heavy
	// value's Cartesian product over the cluster.
	const n, p = 1024, 16
	r := workload.PlantHeavy("R", "y", "x", 0, 0, []relation.Value{7}, []int{n}).Project("R", "x", "y")
	s := workload.PlantHeavy("S", "y", "z", 0, 0, []relation.Value{7}, []int{n})

	ch := mpc.NewCluster(p, 1)
	HashJoin(ch, r, s, "out", 42)
	hashLoad := ch.Metrics().MaxLoad()

	cs := mpc.NewCluster(p, 1)
	SkewJoin(cs, r, s, "out", 42)
	skewLoad := cs.Metrics().MaxLoad()

	if skewLoad*2 >= hashLoad {
		t.Fatalf("skew join load %d should be well below hash join load %d", skewLoad, hashLoad)
	}
	checkJoin(t, cs, "out", r, s)
}

func TestSkewJoinMultipleHeavyHitters(t *testing.T) {
	const p = 8
	r := workload.PlantHeavy("R", "y", "x", 100, 5000, []relation.Value{1, 2, 3}, []int{200, 150, 100}).Project("R", "x", "y")
	s := workload.PlantHeavy("S", "y", "z", 100, 5000, []relation.Value{2, 3, 4}, []int{180, 90, 250})
	c := mpc.NewCluster(p, 1)
	SkewJoin(c, r, s, "out", 42)
	checkJoin(t, c, "out", r, s)
}

func TestHeavyHittersOf(t *testing.T) {
	r := workload.PlantHeavy("R", "y", "x", 10, 100, []relation.Value{5}, []int{50}).Project("R", "x", "y")
	s := workload.Uniform("S", []string{"y", "z"}, 20, 10, 3)
	hh := HeavyHittersOf(r, s, 4)
	found := false
	for _, v := range hh {
		if v == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("heavy hitter 5 not found in %v", hh)
	}
}

func TestSortJoinCorrectUniform(t *testing.T) {
	r, s := uniformInputs(600, 11)
	c := mpc.NewCluster(8, 1)
	res := SortJoin(c, r, s, "out", 42)
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
	checkJoin(t, c, "out", r, s)
}

func TestSortJoinCorrectSkewed(t *testing.T) {
	const n, p = 600, 8
	r := workload.PlantHeavy("R", "y", "x", 100, 9000, []relation.Value{7}, []int{n}).Project("R", "x", "y")
	s := workload.PlantHeavy("S", "y", "z", 100, 9000, []relation.Value{7}, []int{n})
	c := mpc.NewCluster(p, 1)
	SortJoin(c, r, s, "out", 42)
	checkJoin(t, c, "out", r, s)
}

func TestSortJoinEmptySide(t *testing.T) {
	r := relation.New("R", "x", "y")
	s := workload.Uniform("S", []string{"y", "z"}, 100, 50, 2)
	c := mpc.NewCluster(4, 1)
	SortJoin(c, r, s, "out", 42)
	if c.TotalLen("out") != 0 {
		t.Fatal("join with empty side should be empty")
	}
}

func TestSkewJoinEmptyInputs(t *testing.T) {
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	c := mpc.NewCluster(4, 1)
	SkewJoin(c, r, s, "out", 42)
	if c.TotalLen("out") != 0 {
		t.Fatal("empty join should be empty")
	}
}

func TestJoinAttrValidation(t *testing.T) {
	r := relation.New("R", "x", "y")
	bad := relation.New("S", "a", "b")
	c := mpc.NewCluster(2, 1)
	mustPanic(t, "no shared attr", func() { HashJoin(c, r, bad, "out", 1) })
	mustPanic(t, "same name", func() { HashJoin(c, r, relation.New("R", "y", "z"), "out", 1) })
	// The skew-aware algorithms still require exactly one join attribute
	// (the tutorial's model); HashJoin itself accepts composite keys.
	two := relation.New("S", "x", "y")
	mustPanic(t, "skew join two shared attrs", func() { SkewJoin(c, r, two, "out", 1) })
	mustPanic(t, "sort join two shared attrs", func() { SortJoin(c, r, two, "out", 1) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestAllJoinsAgree(t *testing.T) {
	// Property: all four algorithms produce the identical result set on
	// the same moderately skewed input.
	r := workload.Zipf("R", []string{"y", "x"}, 500, 100, 1.5, 21).Project("R", "x", "y")
	s := workload.Zipf("S", []string{"y", "z"}, 500, 100, 1.5, 22)
	want := expected(r, s)
	for name, run := range map[string]func(c *mpc.Cluster) string{
		"hash":      func(c *mpc.Cluster) string { HashJoin(c, r, s, "out", 9); return "out" },
		"broadcast": func(c *mpc.Cluster) string { BroadcastJoin(c, r, s, "out"); return "out" },
		"skew":      func(c *mpc.Cluster) string { SkewJoin(c, r, s, "out", 9); return "out" },
		"sort":      func(c *mpc.Cluster) string { SortJoin(c, r, s, "out", 9); return "out" },
	} {
		c := mpc.NewCluster(8, 1)
		out := run(c)
		got := c.Gather(out)
		if got.Len() != want.Len() || !got.EqualAsSets(want) {
			t.Errorf("%s join: got %d tuples, want %d (or contents differ)", name, got.Len(), want.Len())
		}
	}
}

// HashJoin supports composite (multi-attribute) join keys.
func TestHashJoinCompositeKey(t *testing.T) {
	r := workload.Uniform("R", []string{"x", "y1", "y2"}, 600, 12, 31)
	s := workload.Uniform("S", []string{"y1", "y2", "z"}, 600, 12, 32)
	c := mpc.NewCluster(8, 1)
	HashJoin(c, r, s, "out", 42)
	checkJoin(t, c, "out", r, s)
	// Co-location: tuples with equal (y1,y2) must meet; verified by the
	// result equality above, but also check no key is split.
	got := c.Gather("out")
	if got.Arity() != 4 {
		t.Fatalf("arity = %d, want x,y1,y2,z", got.Arity())
	}
}

func TestHashJoinNoSharedAttrsPanics(t *testing.T) {
	r := relation.New("R", "a")
	s := relation.New("S", "b")
	c := mpc.NewCluster(2, 1)
	mustPanic(t, "no shared", func() { HashJoin(c, r, s, "out", 1) })
}
