package join2

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: every two-way-join strategy must be
// indistinguishable — fragments, (L, r, C), traces — between the
// in-process delivery engine and the TCP transport. Correctness vs the
// oracle is the *_diff_test.go sweeps' job; these pin backend parity.

func TestHashJoinBackendDiff(t *testing.T) {
	testkit.RunBackendDiff(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(HashJoin))
}

func TestSkewJoinBackendDiff(t *testing.T) {
	testkit.RunBackendDiff(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(SkewJoin))
}

func TestSortJoinBackendDiff(t *testing.T) {
	testkit.RunBackendDiff(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(SortJoin))
}

// TestHashJoinChaosOverTCP: fault injection composes with the TCP
// backend — recovery replays are simulated on fragment metadata and the
// converged round commits over real sockets, so the chaos run must
// still recover, match the oracle, and meter fault-free (L, r, C).
func TestHashJoinChaosOverTCP(t *testing.T) {
	testkit.RunChaosDiffTCP(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(HashJoin))
}

func TestSkewJoinChaosOverTCP(t *testing.T) {
	testkit.RunChaosDiffTCP(t, hypergraph.TwoWayJoin(), testkit.Config{}, twoWay(SkewJoin))
}
