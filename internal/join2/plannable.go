package join2

import (
	"fmt"
	"math"

	"mpcquery/internal/cost"
)

// Plannables describes the four two-way join strategies to the query
// planner (internal/plan). Applicability is the join2 contract — two
// binary atoms sharing exactly one variable — and the predictions are
// the tutorial's analytic loads instantiated with the collected
// statistics:
//
//   - hashjoin:  L = IN/p + dmax(y), the hash-partition mean plus the
//     heaviest join value, which a hash join cannot split (slide 24).
//   - broadcast: L = |small|; only the replicated copies travel, the
//     large side stays put (slide 32).
//   - skewjoin:  L = IN/p + √(OUT/p), the slide-30 skew-resilient
//     bound; r = 3 (degree exchange, heavy broadcast, hybrid shuffle).
//   - sortjoin:  same load bound plus the Θ(p) splitter exchange of
//     PSRS; r = 4 (slide 31).
func Plannables() []cost.Plannable {
	applies := func(st *cost.QueryStats) error {
		if _, ok := st.Query.TwoWayJoinVar(); !ok {
			return fmt.Errorf("requires a two-way binary join R(x,y) ⋈ S(y,z)")
		}
		return nil
	}
	return []cost.Plannable{
		{
			Alg:        "hashjoin",
			Doc:        "one-round parallel hash join (slide 23)",
			Executable: true,
			Applies:    applies,
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				y, _ := st.Query.TwoWayJoinVar()
				dmax := 0
				for _, a := range st.Query.Atoms {
					dmax += st.MaxDeg[a.Name][y]
				}
				return cost.Estimate{
					L:      float64(st.IN)/float64(st.P) + float64(dmax),
					R:      1,
					C:      float64(st.IN),
					Detail: fmt.Sprintf("dmax(%s)=%d", y, dmax),
				}, nil
			},
		},
		{
			Alg:        "broadcast",
			Doc:        "replicate the small side everywhere (slide 32)",
			Executable: true,
			Applies:    applies,
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				small := st.Sizes[st.Query.Atoms[0].Name]
				if s := st.Sizes[st.Query.Atoms[1].Name]; s < small {
					small = s
				}
				return cost.Estimate{
					L:      float64(small),
					R:      1,
					C:      float64(small) * float64(st.P),
					Detail: fmt.Sprintf("small side %d tuples", small),
				}, nil
			},
		},
		{
			Alg:        "skewjoin",
			Doc:        "skew-resilient join: light hash + per-heavy-hitter grids (slides 29-30)",
			Executable: true,
			Applies:    applies,
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				p := float64(st.P)
				return cost.Estimate{
					L: float64(st.IN)/p + math.Sqrt(st.OutEst/p),
					R: 3,
					C: 2 * float64(st.IN),
				}, nil
			},
		},
		{
			Alg:        "sortjoin",
			Doc:        "parallel sort join: PSRS + boundary fixups (slide 31)",
			Executable: true,
			Applies:    applies,
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				p := float64(st.P)
				return cost.Estimate{
					L: float64(st.IN)/p + math.Sqrt(st.OutEst/p) + p,
					R: 4,
					C: 2*float64(st.IN) + p*p,
				}, nil
			},
		},
	}
}
