package join2

import (
	"fmt"
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// Micro-benchmarks for the two-way join operators across cluster sizes.

func benchJoin(b *testing.B, run func(c *mpc.Cluster, r, s *relation.Relation)) {
	const n = 20000
	for _, p := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			r := workload.Uniform("R", []string{"x", "y"}, n, n/2, 1)
			s := workload.Uniform("S", []string{"y", "z"}, n, n/2, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := mpc.NewCluster(p, 1)
				run(c, r, s)
			}
		})
	}
}

func BenchmarkHashJoin(b *testing.B) {
	benchJoin(b, func(c *mpc.Cluster, r, s *relation.Relation) {
		HashJoin(c, r, s, "out", 42)
	})
}

func BenchmarkBroadcastJoin(b *testing.B) {
	benchJoin(b, func(c *mpc.Cluster, r, s *relation.Relation) {
		BroadcastJoin(c, r, s, "out")
	})
}

func BenchmarkSkewJoin(b *testing.B) {
	benchJoin(b, func(c *mpc.Cluster, r, s *relation.Relation) {
		SkewJoin(c, r, s, "out", 42)
	})
}

func BenchmarkSortJoin(b *testing.B) {
	benchJoin(b, func(c *mpc.Cluster, r, s *relation.Relation) {
		SortJoin(c, r, s, "out", 42)
	})
}
