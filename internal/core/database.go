package core

import (
	"fmt"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// Database is a session-style front end: register relations once, then
// run any number of ad-hoc conjunctive queries against them. Query
// bodies use the Datalog-ish syntax of hypergraph.Parse, with atom
// names resolving to registered relations.
type Database struct {
	engine *Engine
	rels   map[string]*relation.Relation
}

// NewDatabase creates a database backed by a p-server simulated
// cluster.
func NewDatabase(p int, seed int64) *Database {
	return &Database{
		engine: NewEngine(p, seed),
		rels:   map[string]*relation.Relation{},
	}
}

// Register stores rel under its name, replacing any previous relation
// of that name.
func (db *Database) Register(rel *relation.Relation) {
	db.rels[rel.Name()] = rel
}

// Relation returns the registered relation, or nil.
func (db *Database) Relation(name string) *relation.Relation {
	return db.rels[name]
}

// Names lists registered relation names (unordered).
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	return out
}

// request compiles a query body against the registered relations.
func (db *Database) request(body string, alg Algorithm) (Request, error) {
	q, err := hypergraph.Parse("q", body)
	if err != nil {
		return Request{}, err
	}
	rels := map[string]*relation.Relation{}
	for _, a := range q.Atoms {
		r, ok := db.rels[a.Name]
		if !ok {
			return Request{}, fmt.Errorf("core: relation %q not registered (have %v)", a.Name, db.Names())
		}
		if r.Arity() != len(a.Vars) {
			return Request{}, fmt.Errorf("core: atom %s has %d variables but relation has arity %d",
				a.Name, len(a.Vars), r.Arity())
		}
		rels[a.Name] = r
	}
	return Request{Query: q, Relations: rels, Algorithm: alg}, nil
}

// Query plans and executes a conjunctive query body, e.g.
//
//	db.Query("R(x,y), S(y,z), T(z,x)")
func (db *Database) Query(body string) (*Execution, error) {
	req, err := db.request(body, AlgAuto)
	if err != nil {
		return nil, err
	}
	return db.engine.Execute(req)
}

// QueryWith executes the body with a forced algorithm.
func (db *Database) QueryWith(body string, alg Algorithm) (*Execution, error) {
	req, err := db.request(body, alg)
	if err != nil {
		return nil, err
	}
	return db.engine.Execute(req)
}

// QueryAggregate executes the body and then a distributed group-by over
// its output.
func (db *Database) QueryAggregate(body string, spec AggregateSpec) (*Execution, error) {
	req, err := db.request(body, AlgAuto)
	if err != nil {
		return nil, err
	}
	return db.engine.ExecuteAggregate(req, spec)
}
