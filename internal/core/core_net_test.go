package core

import (
	"testing"

	"mpcquery/internal/mpcnet"
	"mpcquery/internal/trace"
)

// TestEngineTransportParity: an Engine with a TCP transport attached
// must produce executions bit-identical to the default engine — same
// output relation (order included), same (L, r, C), same trace events —
// across planner-chosen algorithms.
func TestEngineTransportParity(t *testing.T) {
	reqs := map[string]Request{
		"join2":    twoWayRequest(400, 5),
		"triangle": triangleRequest(60, 400, 5),
	}
	for name, req := range reqs {
		name, req := name, req
		t.Run(name, func(t *testing.T) {
			local := NewEngine(8, 5)
			localRec := trace.NewRecorder()
			local.Trace = localRec
			want, err := local.Execute(req)
			if err != nil {
				t.Fatalf("local execute: %v", err)
			}

			tr, err := mpcnet.NewLoopback(8, mpcnet.Options{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			tcp := NewEngine(8, 5)
			tcpRec := trace.NewRecorder()
			tcp.Trace = tcpRec
			tcp.Transport = tr
			got, err := tcp.Execute(req)
			if err != nil {
				t.Fatalf("tcp execute: %v", err)
			}

			if got.Algorithm != want.Algorithm || got.Rounds != want.Rounds ||
				got.MaxLoad != want.MaxLoad || got.TotalComm != want.TotalComm {
				t.Fatalf("execution differs: tcp (%s, r=%d, L=%d, C=%d) vs local (%s, r=%d, L=%d, C=%d)",
					got.Algorithm, got.Rounds, got.MaxLoad, got.TotalComm,
					want.Algorithm, want.Rounds, want.MaxLoad, want.TotalComm)
			}
			if got.Output.Len() != want.Output.Len() {
				t.Fatalf("output %d vs %d tuples", got.Output.Len(), want.Output.Len())
			}
			for i := 0; i < want.Output.Len(); i++ {
				gr, wr := got.Output.Row(i), want.Output.Row(i)
				for j := range wr {
					if gr[j] != wr[j] {
						t.Fatalf("output row %d: %v vs %v", i, gr, wr)
					}
				}
			}
			we, ge := localRec.Events(), tcpRec.Events()
			if len(we) != len(ge) {
				t.Fatalf("trace: %d vs %d events", len(we), len(ge))
			}
			for i := range we {
				if we[i] != ge[i] {
					t.Fatalf("trace event %d: %+v vs %+v", i, we[i], ge[i])
				}
			}
		})
	}
}
