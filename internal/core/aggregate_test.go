package core

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// slide52Request builds the Orders ⋈ Customers workload of slide 52.
func slide52Request(n int, seed int64) Request {
	orders := relation.New("Orders", "oid", "cKey", "month", "price")
	base := workload.Uniform("tmp", []string{"c", "m", "p"}, n, 50, seed)
	for i := 0; i < n; i++ {
		row := base.Row(i)
		orders.Append(relation.Value(i), row[0], row[1]%12, 5+row[2]%200)
	}
	customers := workload.Matching("Customers", []string{"cKey", "region"}, 50)
	return Request{
		Query: hypergraph.NewQuery("sales",
			hypergraph.Atom{Name: "Orders", Vars: []string{"oid", "cKey", "month", "price"}},
			hypergraph.Atom{Name: "Customers", Vars: []string{"cKey", "region"}},
		),
		Relations: map[string]*relation.Relation{"Orders": orders, "Customers": customers},
	}
}

func TestExecuteAggregateSlide52(t *testing.T) {
	req := slide52Request(3000, 3)
	e := NewEngine(8, 1)
	exec, err := e.ExecuteAggregate(req, AggregateSpec{
		GroupBy: []string{"cKey", "month"},
		Fn:      relation.Sum,
		AggVar:  "price",
		OutAttr: "total",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: local join then local group-by.
	joined := Reference(req.Query, req.Relations)
	want := relation.GroupBy("want", joined, []string{"cKey", "month"}, relation.Sum, "price", "total")
	if !exec.Output.EqualAsSets(want) {
		t.Fatalf("aggregate differs: %d vs %d groups", exec.Output.Len(), want.Len())
	}
	if exec.Rounds < 2 {
		t.Fatalf("rounds = %d; join + aggregation expected", exec.Rounds)
	}
}

func TestExecuteAggregateCount(t *testing.T) {
	req := slide52Request(1000, 5)
	e := NewEngine(4, 1)
	exec, err := e.ExecuteAggregate(req, AggregateSpec{
		GroupBy: []string{"month"},
		Fn:      relation.Count,
		OutAttr: "n",
	})
	if err != nil {
		t.Fatal(err)
	}
	var total relation.Value
	for i := 0; i < exec.Output.Len(); i++ {
		total += exec.Output.Row(i)[1]
	}
	want := Reference(req.Query, req.Relations)
	if int(total) != want.Len() {
		t.Fatalf("counts sum to %d, want join size %d", total, want.Len())
	}
}

func TestExecuteAggregateValidation(t *testing.T) {
	req := slide52Request(100, 1)
	e := NewEngine(4, 1)
	if _, err := e.ExecuteAggregate(req, AggregateSpec{Fn: relation.Sum, AggVar: "price", OutAttr: "t"}); err == nil {
		t.Fatal("missing group-by should error")
	}
	if _, err := e.ExecuteAggregate(req, AggregateSpec{GroupBy: []string{"nope"}, Fn: relation.Sum, AggVar: "price", OutAttr: "t"}); err == nil {
		t.Fatal("unknown group-by var should error")
	}
	if _, err := e.ExecuteAggregate(req, AggregateSpec{GroupBy: []string{"month"}, Fn: relation.Sum, AggVar: "nope", OutAttr: "t"}); err == nil {
		t.Fatal("unknown agg var should error")
	}
}

// TestAllAlgorithmsOnEdgeInputs sweeps every forcible algorithm over
// degenerate inputs: empty relations, single tuples, and all-same-value
// relations. Nothing may panic, and results must match the reference.
func TestAllAlgorithmsOnEdgeInputs(t *testing.T) {
	mk2 := func(rRows, sRows [][]relation.Value) Request {
		return Request{
			Query: hypergraph.TwoWayJoin(),
			Relations: map[string]*relation.Relation{
				"R": relation.FromRows("R", []string{"x", "y"}, rRows),
				"S": relation.FromRows("S", []string{"y", "z"}, sRows),
			},
		}
	}
	inputs := map[string]Request{
		"both empty":  mk2(nil, nil),
		"left empty":  mk2(nil, [][]relation.Value{{1, 2}}),
		"right empty": mk2([][]relation.Value{{1, 2}}, nil),
		"singletons":  mk2([][]relation.Value{{1, 2}}, [][]relation.Value{{2, 3}}),
		"all same y": mk2(
			[][]relation.Value{{1, 7}, {2, 7}, {3, 7}},
			[][]relation.Value{{7, 4}, {7, 5}}),
	}
	algs := []Algorithm{AlgHashJoin, AlgBroadcast, AlgSkewJoin, AlgSortJoin,
		AlgHyperCube, AlgSkewHC, AlgGYM, AlgGYMOptimized, AlgBinaryPlan, AlgBigJoin}
	for name, req := range inputs {
		want := Reference(req.Query, req.Relations)
		want.Dedup()
		for _, alg := range algs {
			e := NewEngine(4, 1)
			r := req
			r.Algorithm = alg
			exec, err := e.Execute(r)
			if err != nil {
				t.Errorf("%s / %s: %v", name, alg, err)
				continue
			}
			got := exec.Output.Clone()
			got.Dedup()
			if !got.EqualAsSets(want) {
				t.Errorf("%s / %s: got %d tuples, want %d", name, alg, got.Len(), want.Len())
			}
		}
	}
}
