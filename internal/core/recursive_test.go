package core

import (
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/trace"
	"mpcquery/internal/workload"
)

// TestExecuteRecursive checks the engine wrapper over every workload
// kind against the testkit oracles, including the iteration metering.
func TestExecuteRecursive(t *testing.T) {
	edges := workload.RandomGraph("E", "src", "dst", 20, 40, 3)
	e := NewEngine(4, 7)

	for _, tc := range []struct {
		kind    RecursiveKind
		sources []relation.Value
		want    *relation.Relation
	}{
		{RecTransitiveClosure, nil, testkit.OracleFixpoint("out", edges)},
		{RecReachable, []relation.Value{edges.Row(0)[0]}, testkit.OracleReachable("out", edges, []relation.Value{edges.Row(0)[0]})},
		{RecConnectedComponents, nil, testkit.OracleComponents("out", edges)},
	} {
		exec, err := e.ExecuteRecursive(RecursiveRequest{Kind: tc.kind, Edges: edges, Sources: tc.sources})
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		got := exec.Output.Clone()
		got.Sort()
		if !testkit.BagEqual(got, tc.want) {
			t.Errorf("%s differs from oracle: %s", tc.kind, testkit.DiffSample(got, tc.want))
		}
		if exec.Rounds != 2*exec.Iterations {
			t.Errorf("%s: rounds = %d over %d iterations, want exactly 2 per iteration", tc.kind, exec.Rounds, exec.Iterations)
		}
	}

	if _, err := e.ExecuteRecursive(RecursiveRequest{Kind: RecReachable, Edges: edges}); err == nil {
		t.Error("reachability without sources should fail")
	}
	if _, err := e.ExecuteRecursive(RecursiveRequest{Kind: "nope", Edges: edges}); err == nil {
		t.Error("unknown kind should fail")
	}
}

// TestExecuteRecursiveComposesHooks runs transitive closure with a
// fault schedule and a trace recorder attached to the engine: the
// chaotic traced run must produce the same output and metering as the
// bare run, and the trace must reconcile with the recovery ledger.
func TestExecuteRecursiveComposesHooks(t *testing.T) {
	edges := workload.PowerLawGraph("E", "src", "dst", 25, 60, 5)
	req := RecursiveRequest{Kind: RecTransitiveClosure, Edges: edges}

	bare := NewEngine(4, 9)
	want, err := bare.ExecuteRecursive(req)
	if err != nil {
		t.Fatal(err)
	}

	sched, err := chaos.ParseSchedule("11:crash=0.3,drop=0.1,after=2")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	hooked := NewEngine(4, 9)
	hooked.Chaos = sched
	hooked.Trace = rec
	got, err := hooked.ExecuteRecursive(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.TotalComm != want.TotalComm || got.MaxLoad != want.MaxLoad {
		t.Errorf("chaos run metered (%d, %d, %d), fault-free (%d, %d, %d)",
			got.MaxLoad, got.Rounds, got.TotalComm, want.MaxLoad, want.Rounds, want.TotalComm)
	}
	a, b := got.Output.Clone(), want.Output.Clone()
	a.Sort()
	b.Sort()
	if !testkit.BagEqual(a, b) {
		t.Errorf("chaos run output differs: %s", testkit.DiffSample(a, b))
	}
	if len(rec.Events()) == 0 {
		t.Error("trace recorder captured no events")
	}
}
