package core

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/recursive"
	"mpcquery/internal/relation"
)

// RecursiveKind selects a recursive workload for ExecuteRecursive.
type RecursiveKind string

// Available recursive workloads.
const (
	RecTransitiveClosure   RecursiveKind = "tc"
	RecReachable           RecursiveKind = "reach"
	RecConnectedComponents RecursiveKind = "cc"
)

// RecursiveRequest is one recursive evaluation request: a binary edge
// relation plus, for RecReachable, the source vertex set.
type RecursiveRequest struct {
	Kind  RecursiveKind
	Edges *relation.Relation
	// Sources is required for RecReachable and ignored otherwise.
	Sources []relation.Value
}

// RecursiveExecution reports a recursive run: the gathered output plus
// the semi-naive iteration count next to the usual (L, r, C) metering.
type RecursiveExecution struct {
	Output     *relation.Relation
	Kind       RecursiveKind
	Iterations int
	Rounds     int
	MaxLoad    int64
	TotalComm  int64
	Metrics    *mpc.Metrics
}

// ExecuteRecursive runs a semi-naive fixpoint workload on the engine's
// cluster, composing with the Chaos, Trace, and Transport hooks exactly
// like Execute. Every iteration costs two metered rounds (probe +
// extend); the loop terminates when the delta relation is globally
// empty.
func (e *Engine) ExecuteRecursive(req RecursiveRequest) (*RecursiveExecution, error) {
	if req.Edges == nil {
		return nil, fmt.Errorf("core: recursive request needs an edge relation")
	}
	c := e.newCluster()
	seed := uint64(e.Seed)*2654435761 + 54321
	const outName = "out"
	var (
		res *recursive.Result
		err error
	)
	switch req.Kind {
	case RecTransitiveClosure:
		res, err = recursive.TransitiveClosure(c, req.Edges, outName, seed)
	case RecReachable:
		if len(req.Sources) == 0 {
			return nil, fmt.Errorf("core: reachability needs at least one source vertex")
		}
		res, err = recursive.Reachable(c, req.Edges, req.Sources, outName, seed)
	case RecConnectedComponents:
		res, err = recursive.ConnectedComponents(c, req.Edges, outName, seed)
	default:
		return nil, fmt.Errorf("core: unknown recursive kind %q", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	out := c.Gather(outName)
	m := c.Metrics()
	return &RecursiveExecution{
		Output:     out,
		Kind:       req.Kind,
		Iterations: res.Iterations,
		Rounds:     m.Rounds(),
		MaxLoad:    m.MaxLoad(),
		TotalComm:  m.TotalComm(),
		Metrics:    m,
	}, nil
}
