package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// randomCQ builds a random connected conjunctive query: binary atoms
// over a small variable pool, each new atom sharing at least one
// variable with the ones before it. Roughly half come out cyclic.
func randomCQ(rng *rand.Rand, nAtoms int) hypergraph.Query {
	pool := []string{"a", "b", "c", "d", "e"}
	atoms := make([]hypergraph.Atom, 0, nAtoms)
	used := []string{pool[rng.Intn(len(pool))]}
	for i := 0; i < nAtoms; i++ {
		v1 := used[rng.Intn(len(used))]
		v2 := pool[rng.Intn(len(pool))]
		for v2 == v1 {
			v2 = pool[rng.Intn(len(pool))]
		}
		atoms = append(atoms, hypergraph.Atom{
			Name: fmt.Sprintf("R%d", i+1),
			Vars: []string{v1, v2},
		})
		found := false
		for _, u := range used {
			if u == v2 {
				found = true
			}
		}
		if !found {
			used = append(used, v2)
		}
	}
	return hypergraph.NewQuery("fuzz", atoms...)
}

// TestEngineFuzzRandomQueries drives the auto planner over random
// conjunctive queries — cyclic and acyclic, with and without skew — and
// cross-checks every execution against the single-machine reference.
func TestEngineFuzzRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	acyclicSeen, cyclicSeen := 0, 0
	for trial := 0; trial < 25; trial++ {
		q := randomCQ(rng, 2+rng.Intn(3))
		if ok, _ := hypergraph.IsAcyclic(q); ok {
			acyclicSeen++
		} else {
			cyclicSeen++
		}
		rels := map[string]*relation.Relation{}
		dom := 4 + rng.Intn(10)
		for _, a := range q.Atoms {
			r := relation.New(a.Name, a.Vars...)
			n := rng.Intn(60)
			for i := 0; i < n; i++ {
				r.Append(relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
			}
			rels[a.Name] = r
		}
		e := NewEngine(1+rng.Intn(8), int64(trial))
		exec, err := e.Execute(Request{Query: q, Relations: rels})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		want := Reference(q, rels)
		got := exec.Output.Clone()
		got.Dedup()
		want.Dedup()
		if !got.EqualAsSets(want) {
			t.Fatalf("trial %d (%s via %s): got %d, want %d",
				trial, q, exec.Algorithm, got.Len(), want.Len())
		}
	}
	if acyclicSeen == 0 || cyclicSeen == 0 {
		t.Fatalf("fuzz should cover both shapes: %d acyclic, %d cyclic", acyclicSeen, cyclicSeen)
	}
}

// TestBigJoinFuzzRandomQueries forces BiGJoin over the same query
// distribution (it must handle every connected CQ).
func TestBigJoinFuzzRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		q := randomCQ(rng, 2+rng.Intn(3))
		rels := map[string]*relation.Relation{}
		for _, a := range q.Atoms {
			r := relation.New(a.Name, a.Vars...)
			for i := 0; i < rng.Intn(50); i++ {
				r.Append(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
			}
			rels[a.Name] = r
		}
		e := NewEngine(4, int64(trial))
		exec, err := e.Execute(Request{Query: q, Relations: rels, Algorithm: AlgBigJoin})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, q, err)
		}
		want := Reference(q, rels)
		got := exec.Output.Clone()
		got.Dedup()
		want.Dedup()
		if !got.EqualAsSets(want) {
			t.Fatalf("trial %d (%s): bigjoin got %d, want %d", trial, q, got.Len(), want.Len())
		}
	}
}
