package core

import (
	"testing"

	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase(8, 1)
	r, s, u := workload.TriangleInput(50, 300, 3)
	db.Register(r)
	db.Register(s)
	db.Register(u)
	// Sales carries a unique oid so the engine's set semantics match SQL
	// bag semantics for aggregation (see examples/analytics).
	base := workload.Uniform("tmp", []string{"cust", "month", "price"}, 2000, 40, 5)
	sales := relation.New("Sales", "oid", "cust", "month", "price")
	for i := 0; i < base.Len(); i++ {
		row := base.Row(i)
		sales.Append(relation.Value(i), row[0], row[1], row[2])
	}
	db.Register(sales)
	return db
}

func TestDatabaseQueryTriangle(t *testing.T) {
	db := testDB(t)
	exec, err := db.Query("R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	// Reference from the same registered relations.
	req, err := db.request("R(x,y), S(y,z), T(z,x)", AlgAuto)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(req.Query, req.Relations)
	got := exec.Output.Clone()
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("database query differs from reference")
	}
}

func TestDatabaseQueryWith(t *testing.T) {
	db := testDB(t)
	exec, err := db.QueryWith("R(x,y), S(y,z), T(z,x)", AlgBigJoin)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Algorithm != AlgBigJoin {
		t.Fatalf("ran %s", exec.Algorithm)
	}
}

func TestDatabaseQueryAggregate(t *testing.T) {
	db := testDB(t)
	exec, err := db.QueryAggregate("Sales(oid, cust, month, price)", AggregateSpec{
		GroupBy: []string{"month"},
		Fn:      relation.Sum,
		AggVar:  "price",
		OutAttr: "total",
	})
	if err != nil {
		t.Fatal(err)
	}
	sales := db.Relation("Sales")
	want := relation.GroupBy("want", sales,
		[]string{"month"}, relation.Sum, "price", "total")
	if !exec.Output.EqualAsSets(want) {
		t.Fatal("aggregate over database differs")
	}
}

func TestDatabaseErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query("Nope(x,y)"); err == nil {
		t.Fatal("unregistered relation should error")
	}
	if _, err := db.Query("R(x,y,z)"); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if _, err := db.Query("R(x,"); err == nil {
		t.Fatal("parse error should surface")
	}
}

func TestDatabaseRegisterReplaces(t *testing.T) {
	db := NewDatabase(2, 1)
	db.Register(relation.FromRows("R", []string{"x", "y"}, [][]relation.Value{{1, 2}}))
	db.Register(relation.FromRows("R", []string{"x", "y"}, [][]relation.Value{{3, 4}, {5, 6}}))
	if db.Relation("R").Len() != 2 {
		t.Fatal("register should replace")
	}
	if len(db.Names()) != 1 {
		t.Fatalf("names = %v", db.Names())
	}
}
