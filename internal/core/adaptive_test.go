package core

import (
	"strings"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// TestExecuteAdaptiveSwitches drives the skew-reactive path through
// the public engine API: a mispredicted-skew triangle must switch,
// report the decision, and still produce the reference answer.
func TestExecuteAdaptiveSwitches(t *testing.T) {
	q := hypergraph.Triangle()
	rels := testkit.GenMispredicted(q, testkit.GenConfig{Tuples: 480, HeavyFrac: 0.5}, 1)
	e := NewEngine(16, 1)
	exec, err := e.ExecuteAdaptive(Request{Query: q, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Switched {
		t.Fatalf("did not switch: %s", exec.SwitchReason)
	}
	if exec.Algorithm != AlgSkewHC {
		t.Errorf("algorithm = %s, want %s", exec.Algorithm, AlgSkewHC)
	}
	if exec.Signal.MaxRecv == 0 {
		t.Error("switched run reports a zero probe signal")
	}
	want := Reference(q, rels)
	if !testkit.BagEqual(exec.Output, want) {
		t.Errorf("adaptive output differs from reference: %s", testkit.DiffSample(exec.Output, want))
	}
}

// TestExecuteAdaptiveNoSwitch pins the balanced case end to end.
func TestExecuteAdaptiveNoSwitch(t *testing.T) {
	q := hypergraph.Triangle()
	rels := testkit.GenInstance(q, testkit.SkewNone, testkit.GenConfig{Tuples: 120}, 1)
	e := NewEngine(4, 1)
	exec, err := e.ExecuteAdaptive(Request{Query: q, Relations: rels})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Switched {
		t.Fatalf("switched on a skew-free instance: %s", exec.SwitchReason)
	}
	if exec.Algorithm != AlgHyperCube {
		t.Errorf("algorithm = %s, want %s", exec.Algorithm, AlgHyperCube)
	}
	want := Reference(q, rels)
	if !testkit.BagEqual(exec.Output, want) {
		t.Errorf("output differs from reference: %s", testkit.DiffSample(exec.Output, want))
	}
}

// TestEngineAdaptiveFlagReroutesHyperCube checks that Engine.Adaptive
// reroutes the ordinary Execute path when the request forces (or the
// planner picks) HyperCube.
func TestEngineAdaptiveFlagReroutesHyperCube(t *testing.T) {
	q := hypergraph.Triangle()
	rels := testkit.GenMispredicted(q, testkit.GenConfig{Tuples: 480, HeavyFrac: 0.5}, 2)
	e := NewEngine(16, 2)
	e.Adaptive = true
	exec, err := e.Execute(Request{Query: q, Relations: rels, Algorithm: AlgHyperCube})
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(q, rels)
	if !testkit.BagEqual(exec.Output, want) {
		t.Errorf("output differs from reference: %s", testkit.DiffSample(exec.Output, want))
	}
	// The switch decision must surface in the plan explanation.
	if got := exec.Reason; !strings.Contains(got, "adaptive:") {
		t.Errorf("reason %q does not mention the adaptive decision", got)
	}
}

// TestEngineCapacitiesRunHet checks that a capacity profile on the
// engine routes HyperCube plans through the heterogeneity-aware
// executor and that the answer is unchanged.
func TestEngineCapacitiesRunHet(t *testing.T) {
	q := hypergraph.Triangle()
	rels := testkit.GenInstance(q, testkit.SkewUniform, testkit.GenConfig{Tuples: 400}, 3)
	e := NewEngine(4, 3)
	e.Capacities = []float64{4, 2, 1, 1}
	exec, err := e.Execute(Request{Query: q, Relations: rels, Algorithm: AlgHyperCube})
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(q, rels)
	if !testkit.BagEqual(exec.Output, want) {
		t.Errorf("het output differs from reference: %s", testkit.DiffSample(exec.Output, want))
	}
	if exec.Metrics.NormalizedMakespan(e.Capacities) <= 0 {
		t.Error("normalized makespan not metered")
	}
}

// TestEngineCapacitiesValidation pins the error paths.
func TestEngineCapacitiesValidation(t *testing.T) {
	q := hypergraph.Triangle()
	rels := testkit.GenInstance(q, testkit.SkewNone, testkit.GenConfig{Tuples: 40}, 1)
	e := NewEngine(4, 1)
	e.Capacities = []float64{1, 2} // wrong length
	if _, err := e.Execute(Request{Query: q, Relations: rels}); err == nil {
		t.Error("short capacity profile accepted")
	}
	e.Capacities = []float64{1, 1, 0, 1} // non-positive entry
	if _, err := e.ExecuteAdaptive(Request{Query: q, Relations: rels}); err == nil {
		t.Error("non-positive capacity accepted")
	}
}
