package core

import (
	"mpcquery/internal/hypercube"
	"mpcquery/internal/stats"
	"mpcquery/internal/trace"
)

// AdaptiveExecution is an Execution plus the skew-reactive driver's
// decision record: whether the run abandoned the uniform plan, the
// probe signal the decision was made on, and the stated reason.
type AdaptiveExecution struct {
	*Execution
	// Switched reports whether the run re-planned to SkewHC mid-query.
	Switched bool
	// Signal is the probe round's receive summary.
	Signal stats.RecvSignal
	// SwitchReason is the driver's decision in words.
	SwitchReason string
}

// ExecuteAdaptive runs the request under the skew-reactive HyperCube
// driver regardless of the planner's static choice: a metered probe
// round routes a prefix of every fragment under the uniform LP-optimal
// plan, and the driver switches the remaining rounds to SkewHC if the
// probe's receive vector shows emerging skew. A switched run is
// bit-identical — fragments, round stats, output — to a run that chose
// the skew path up front; an unswitched run delivers the uniform
// answer over probe + remainder rounds.
//
// This is the explicit entry point; setting Engine.Adaptive instead
// reroutes plain Execute the same way whenever the planner (or the
// request) picks AlgHyperCube.
func (e *Engine) ExecuteAdaptive(req Request) (*AdaptiveExecution, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	if err := e.checkCapacities(); err != nil {
		return nil, err
	}
	q := req.Query
	c := e.newCluster()
	trace.Annotatef(c, "plan %s: adaptive hypercube (forced)", q.Name)
	seed := uint64(e.Seed)*2654435761 + 12345
	const outName = "out"
	res, err := hypercube.RunAdaptive(c, q, req.Relations, outName, seed, hypercube.AdaptiveConfig{})
	if err != nil {
		return nil, err
	}
	alg := AlgHyperCube
	if res.Switched {
		alg = AlgSkewHC
	}
	out := c.Gather(outName).Project(q.Name, q.Vars()...)
	m := c.Metrics()
	return &AdaptiveExecution{
		Execution: &Execution{
			Output:    out,
			Algorithm: alg,
			Reason:    "adaptive: " + res.Reason,
			Rounds:    m.Rounds(),
			MaxLoad:   m.MaxLoad(),
			TotalComm: m.TotalComm(),
			Metrics:   m,
		},
		Switched:     res.Switched,
		Signal:       res.Signal,
		SwitchReason: res.Reason,
	}, nil
}
