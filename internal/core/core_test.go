package core

import (
	"strings"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func twoWayRequest(n int, seed int64) Request {
	return Request{
		Query: hypergraph.TwoWayJoin(),
		Relations: map[string]*relation.Relation{
			"R": workload.Uniform("R", []string{"x", "y"}, n, n/2, seed),
			"S": workload.Uniform("S", []string{"y", "z"}, n, n/2, seed+1),
		},
	}
}

func triangleRequest(nv, ne int, seed int64) Request {
	r, s, t := workload.TriangleInput(nv, ne, seed)
	return Request{
		Query:     hypergraph.Triangle(),
		Relations: map[string]*relation.Relation{"R": r, "S": s, "T": t},
	}
}

func checkAgainstReference(t *testing.T, req Request, exec *Execution) {
	t.Helper()
	want := Reference(req.Query, req.Relations)
	got := exec.Output.Clone()
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatalf("%s via %s: result differs from reference (%d vs %d tuples)",
			req.Query.Name, exec.Algorithm, got.Len(), want.Len())
	}
}

func TestEngineValidation(t *testing.T) {
	e := NewEngine(4, 1)
	if _, err := e.Execute(Request{Query: hypergraph.Query{Name: "empty"}}); err == nil {
		t.Fatal("empty query should error")
	}
	req := twoWayRequest(100, 1)
	delete(req.Relations, "S")
	if _, err := e.Execute(req); err == nil {
		t.Fatal("missing relation should error")
	}
	req2 := twoWayRequest(100, 1)
	req2.Relations["S"] = relation.New("S", "y")
	if _, err := e.Execute(req2); err == nil {
		t.Fatal("arity mismatch should error")
	}
	mustPanic(t, "bad p", func() { NewEngine(0, 1) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestPlannerPicksHashJoinForUniform(t *testing.T) {
	e := NewEngine(8, 1)
	req := twoWayRequest(2000, 3)
	alg, reason, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgHashJoin {
		t.Fatalf("planner chose %s (%s), want hash join", alg, reason)
	}
}

func TestPlannerPicksBroadcastForSmallSide(t *testing.T) {
	e := NewEngine(8, 1)
	req := Request{
		Query: hypergraph.TwoWayJoin(),
		Relations: map[string]*relation.Relation{
			"R": workload.Uniform("R", []string{"x", "y"}, 20, 50, 1),
			"S": workload.Uniform("S", []string{"y", "z"}, 4000, 50, 2),
		},
	}
	alg, _, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgBroadcast {
		t.Fatalf("planner chose %s, want broadcast", alg)
	}
}

func TestPlannerPicksSkewJoinUnderSkew(t *testing.T) {
	e := NewEngine(8, 1)
	req := Request{
		Query: hypergraph.TwoWayJoin(),
		Relations: map[string]*relation.Relation{
			"R": workload.PlantHeavy("R", "y", "x", 500, 10000, []relation.Value{7}, []int{600}).Project("R", "x", "y"),
			"S": workload.PlantHeavy("S", "y", "z", 500, 10000, []relation.Value{7}, []int{600}),
		},
	}
	alg, _, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgSkewJoin {
		t.Fatalf("planner chose %s, want skew join", alg)
	}
}

func TestPlannerPicksHyperCubeForTriangle(t *testing.T) {
	e := NewEngine(8, 1)
	req := triangleRequest(200, 600, 1)
	alg, _, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgHyperCube {
		t.Fatalf("planner chose %s, want hypercube", alg)
	}
}

func TestPlannerPicksSkewHCForSkewedTriangle(t *testing.T) {
	e := NewEngine(8, 1)
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	for i := relation.Value(0); i < 200; i++ {
		r.Append(0, i) // hub x = 0
		s.Append(i, i)
		u.Append(i, 0)
	}
	req := Request{Query: hypergraph.Triangle(),
		Relations: map[string]*relation.Relation{"R": r, "S": s, "T": u}}
	alg, reason, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgSkewHC {
		t.Fatalf("planner chose %s (%s), want skewhc", alg, reason)
	}
}

func TestPlannerPicksGYMForAcyclicSmallOutput(t *testing.T) {
	// RST = R(x) ⋈ S(x,y) ⋈ T(y): its AGM bound is just |S| (S alone
	// covers both variables), far below the crossover — GYM territory.
	e := NewEngine(8, 1)
	req := Request{
		Query: hypergraph.RST(),
		Relations: map[string]*relation.Relation{
			"R": workload.Uniform("R", []string{"x"}, 1000, 500, 1),
			"S": workload.Uniform("S", []string{"x", "y"}, 50, 500, 2),
			"T": workload.Uniform("T", []string{"y"}, 1000, 500, 3),
		},
	}
	alg, reason, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgGYMOptimized {
		t.Fatalf("planner chose %s (%s), want gym-opt", alg, reason)
	}
}

func TestPlannerPicksHyperCubeWhenAGMHuge(t *testing.T) {
	// Path-4 over uniform data: the AGM bound is N^{ρ*} = N³, far above
	// the crossover, so the planner prefers the one-round HyperCube
	// over GYM's output-dependent load.
	e := NewEngine(8, 1)
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(4, 100) {
		rels[r.Name()] = r
	}
	req := Request{Query: hypergraph.Path(4), Relations: rels}
	alg, _, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if alg != AlgHyperCube {
		t.Fatalf("planner chose %s, want hypercube", alg)
	}
}

func TestExecuteAllAlgorithmsOnTwoWay(t *testing.T) {
	req := twoWayRequest(600, 5)
	for _, alg := range []Algorithm{AlgHashJoin, AlgBroadcast, AlgSkewJoin, AlgSortJoin, AlgHyperCube, AlgGYMOptimized, AlgGYM, AlgBinaryPlan} {
		e := NewEngine(8, 2)
		r := req
		r.Algorithm = alg
		exec, err := e.Execute(r)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if exec.Algorithm != alg {
			t.Fatalf("forced %s but ran %s", alg, exec.Algorithm)
		}
		checkAgainstReference(t, r, exec)
		if exec.Rounds < 1 || exec.MaxLoad < 1 {
			t.Fatalf("%s: metrics empty: %+v", alg, exec)
		}
	}
}

func TestExecuteAutoTriangle(t *testing.T) {
	req := triangleRequest(60, 400, 7)
	e := NewEngine(8, 3)
	exec, err := e.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Algorithm != AlgHyperCube {
		t.Fatalf("auto chose %s", exec.Algorithm)
	}
	if exec.Rounds != 1 {
		t.Fatalf("triangle rounds = %d, want 1", exec.Rounds)
	}
	checkAgainstReference(t, req, exec)
	if !strings.Contains(exec.Reason, "HyperCube") && !strings.Contains(exec.Reason, "no skew") {
		t.Fatalf("reason unhelpful: %q", exec.Reason)
	}
}

func TestExecuteAutoAcyclic(t *testing.T) {
	rels := workload.SlideTreeInput(60, 5)
	req := Request{Query: hypergraph.SlideTree(), Relations: rels}
	e := NewEngine(8, 4)
	exec, err := e.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, req, exec)
}

func TestExecuteGYMRejectsCyclic(t *testing.T) {
	req := triangleRequest(30, 100, 2)
	req.Algorithm = AlgGYM
	e := NewEngine(4, 1)
	if _, err := e.Execute(req); err == nil {
		t.Fatal("GYM on cyclic query should error")
	}
}

func TestExecuteRejectsJoin2OnMultiway(t *testing.T) {
	req := triangleRequest(30, 100, 2)
	req.Algorithm = AlgHashJoin
	e := NewEngine(4, 1)
	if _, err := e.Execute(req); err == nil {
		t.Fatal("hash join on a 3-atom query should error")
	}
}

func TestExecuteUnknownAlgorithm(t *testing.T) {
	req := twoWayRequest(50, 1)
	req.Algorithm = Algorithm("nonsense")
	e := NewEngine(4, 1)
	if _, err := e.Execute(req); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestDeterministicExecution(t *testing.T) {
	req := triangleRequest(50, 300, 9)
	run := func() *Execution {
		e := NewEngine(8, 77)
		exec, err := e.Execute(req)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	a, b := run(), run()
	if a.MaxLoad != b.MaxLoad || a.TotalComm != b.TotalComm || a.Rounds != b.Rounds {
		t.Fatalf("nondeterministic costs: %+v vs %+v", a, b)
	}
	if !a.Output.EqualAsSets(b.Output) {
		t.Fatal("nondeterministic output")
	}
}

func TestReferenceMatchesManual(t *testing.T) {
	q := hypergraph.TwoWayJoin()
	rels := map[string]*relation.Relation{
		"R": relation.FromRows("R", []string{"a", "b"}, [][]relation.Value{{1, 2}}),
		"S": relation.FromRows("S", []string{"c", "d"}, [][]relation.Value{{2, 3}}),
	}
	// Columns are positional: R's (a,b) maps to (x,y), S's (c,d) to (y,z).
	out := Reference(q, rels)
	if out.Len() != 1 {
		t.Fatalf("reference join = %d rows", out.Len())
	}
	row := out.Row(0)
	if row[0] != 1 || row[1] != 2 || row[2] != 3 {
		t.Fatalf("reference row = %v", row)
	}
}

func TestExecuteBigJoin(t *testing.T) {
	req := triangleRequest(50, 300, 4)
	req.Algorithm = AlgBigJoin
	e := NewEngine(8, 2)
	exec, err := e.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Rounds != 3 {
		t.Fatalf("bigjoin triangle rounds = %d, want 3", exec.Rounds)
	}
	checkAgainstReference(t, req, exec)
}
