// Package core is the top-level API of the library: an Engine that
// executes conjunctive queries on a simulated MPC cluster, choosing
// among the tutorial's algorithms the way the tutorial itself teaches:
//
//   - two-way joins: broadcast the small side when |R| ≤ IN/p
//     (slide 32); use the heavy-hitter-aware skew join when the join
//     attribute has heavy hitters (slides 29–30); plain parallel hash
//     join otherwise (slide 23);
//   - multiway acyclic queries: GYM (distributed Yannakakis) when the
//     AGM output bound is below the crossover OUT < p^{1−1/τ*}·IN
//     (slide 78), HyperCube otherwise;
//   - multiway cyclic queries: SkewHC when any variable has heavy
//     hitters, plain HyperCube otherwise (slides 34–51).
//
// Every execution reports the MPC cost actually metered — max per-round
// load L, rounds r, total communication C — next to the result.
//
// Semantics: queries are evaluated under set semantics, as everywhere
// in the MPC join theory — duplicate input tuples do not multiply
// output bindings. Workloads needing SQL bag semantics (e.g. SUM over a
// join with duplicate rows) should carry a unique key column, as the
// analytics example does.
package core

import (
	"fmt"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/bigjoin"
	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/join2"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
	"mpcquery/internal/trace"
	"mpcquery/internal/yannakakis"
)

// Algorithm identifies a parallel query-processing strategy.
type Algorithm string

// Available algorithms. AlgAuto lets the planner decide.
const (
	AlgAuto         Algorithm = "auto"
	AlgHashJoin     Algorithm = "hashjoin"
	AlgBroadcast    Algorithm = "broadcast"
	AlgSkewJoin     Algorithm = "skewjoin"
	AlgSortJoin     Algorithm = "sortjoin"
	AlgHyperCube    Algorithm = "hypercube"
	AlgSkewHC       Algorithm = "skewhc"
	AlgGYM          Algorithm = "gym"
	AlgGYMOptimized Algorithm = "gym-opt"
	AlgBinaryPlan   Algorithm = "binaryplan"
	// AlgHLTriangle is the multi-round Heavy-Light + Semijoins algorithm
	// (slides 58–60); it applies only to the triangle query.
	AlgHLTriangle Algorithm = "hl-triangle"
	// AlgBigJoin is the variable-at-a-time multi-round join (slide 97,
	// BiGJoin-style): one extend round per variable plus verify rounds.
	AlgBigJoin Algorithm = "bigjoin"
)

// Engine executes conjunctive queries on a fresh simulated cluster per
// request.
type Engine struct {
	// P is the number of servers.
	P int
	// Seed drives all hashing and data placement; equal seeds give
	// bit-identical executions.
	Seed int64
	// Chaos, when non-nil, attaches this fault schedule to every cluster
	// the engine builds (typically a *chaos.Schedule). Executions then
	// run the mpc recovery protocol: they either complete with output
	// and (L, r, C) identical to the fault-free run, or panic with a
	// *mpc.RecoveryFailure (recoverable via chaos.Capture).
	Chaos mpc.FaultInjector
	// Trace, when non-nil, attaches this event recorder to every cluster
	// the engine builds. Executions append their per-round send/recv/skew
	// events (and, under Chaos, the recovery events) to the recorder;
	// export with trace.WriteJSONL or trace.WriteChrome.
	Trace *trace.Recorder
	// Transport, when non-nil, routes every cluster's round delivery
	// through this backend (typically an *mpcnet.Transport dialed for P
	// servers) instead of the built-in in-process engine. Conforming
	// transports are observably identical — same output, (L, r, C), and
	// trace events — so this selects *where bytes move*, never *what the
	// simulation computes*. The engine does not close the transport.
	Transport mpc.Transport
	// Adaptive, when true, reroutes HyperCube executions through the
	// skew-reactive driver (hypercube.RunAdaptive): a metered probe
	// round feeds a receive-skew signal into a mid-query re-plan that
	// switches to SkewHC when the uniform plan's skew prediction turns
	// out wrong. Takes precedence over Capacities for HyperCube plans.
	Adaptive bool
	// Capacities, when non-nil, declares a heterogeneous per-server
	// capacity profile (len must equal P, entries > 0). Clusters carry
	// the profile, Metrics.NormalizedMakespan can normalize by it, and
	// HyperCube executions run the capacity-aware plan
	// (hypercube.RunHet) that apportions grid cells in proportion to
	// capacity.
	Capacities []float64
}

// NewEngine returns an engine for a p-server cluster.
func NewEngine(p int, seed int64) *Engine {
	if p < 1 {
		panic(fmt.Sprintf("core: engine needs p ≥ 1, got %d", p))
	}
	return &Engine{P: p, Seed: seed}
}

// Request is one query execution request. Relations are keyed by atom
// name; each relation's columns correspond positionally to the atom's
// variables.
type Request struct {
	Query     hypergraph.Query
	Relations map[string]*relation.Relation
	// Algorithm forces a strategy; AlgAuto (or empty) lets the planner
	// decide.
	Algorithm Algorithm
}

// Execution is the result of running a request.
type Execution struct {
	// Output is the gathered query answer with schema Query.Vars().
	Output *relation.Relation
	// Algorithm actually used.
	Algorithm Algorithm
	// Reason explains the planner's choice.
	Reason string
	// Cost metrics metered on the simulator.
	Rounds    int
	MaxLoad   int64
	TotalComm int64
	Metrics   *mpc.Metrics
}

// Plan decides which algorithm to use for the request and explains why.
func (e *Engine) Plan(req Request) (Algorithm, string, error) {
	if req.Algorithm != "" && req.Algorithm != AlgAuto {
		return req.Algorithm, "forced by request", nil
	}
	q := req.Query
	if err := validate(req); err != nil {
		return "", "", err
	}
	in := 0
	for _, a := range q.Atoms {
		in += req.Relations[a.Name].Len()
	}
	// Two-way binary join?
	if y, ok := q.TwoWayJoinVar(); ok {
		r := req.Relations[q.Atoms[0].Name]
		s := req.Relations[q.Atoms[1].Name]
		small := r.Len()
		if s.Len() < small {
			small = s.Len()
		}
		if small*e.P <= in {
			return AlgBroadcast, fmt.Sprintf("small side (%d tuples) ≤ IN/p = %d: broadcast it", small, in/e.P), nil
		}
		threshold := in / e.P
		if threshold < 1 {
			threshold = 1
		}
		hh := stats.JoinHeavyHitters(rename(q.Atoms[0], r), rename(q.Atoms[1], s), y, threshold)
		if len(hh) > 0 {
			return AlgSkewJoin, fmt.Sprintf("%d heavy hitters on %s (threshold %d): skew-aware join", len(hh), y, threshold), nil
		}
		return AlgHashJoin, "no skew detected: parallel hash join", nil
	}
	acyclic, _ := hypergraph.IsAcyclic(q)
	if acyclic {
		// GYM wins when OUT is small (slide 78); use the AGM bound as
		// the (worst-case) output estimate.
		sizes := sizesOf(req)
		agm, err := fractional.AGMBound(q, sizes)
		if err != nil {
			return "", "", err
		}
		ep, err := fractional.MaxEdgePacking(q)
		if err != nil {
			return "", "", err
		}
		crossover := cost.GYMCrossoverOut(float64(in), e.P, ep.Tau)
		if agm < crossover {
			return AlgGYMOptimized, fmt.Sprintf("acyclic, AGM bound %.0f < crossover %.0f: GYM", agm, crossover), nil
		}
		return AlgHyperCube, fmt.Sprintf("acyclic but AGM bound %.0f ≥ crossover %.0f: HyperCube", agm, crossover), nil
	}
	// Cyclic: HyperCube, skew-aware when needed.
	maxN := 0
	for _, a := range q.Atoms {
		if n := req.Relations[a.Name].Len(); n > maxN {
			maxN = n
		}
	}
	threshold := maxN / e.P
	if threshold < 1 {
		threshold = 1
	}
	heavy := hypercube.HeavyByVar(q, req.Relations, threshold)
	for v, set := range heavy {
		if len(set) > 0 {
			return AlgSkewHC, fmt.Sprintf("cyclic with heavy hitters on %s: SkewHC", v), nil
		}
	}
	return AlgHyperCube, "cyclic, no skew: one-round HyperCube", nil
}

// newCluster builds the engine's simulated cluster, attaching the
// fault schedule and trace recorder if configured.
func (e *Engine) newCluster() *mpc.Cluster {
	c := mpc.NewCluster(e.P, e.Seed)
	if e.Chaos != nil {
		c.SetFaultInjector(e.Chaos)
	}
	if e.Trace != nil {
		c.SetTracer(e.Trace)
	}
	if e.Transport != nil {
		c.SetTransport(e.Transport)
	}
	if e.Capacities != nil {
		c.SetCapacities(e.Capacities)
	}
	return c
}

// checkCapacities validates the engine's capacity profile before a
// cluster is built (SetCapacities would panic on the same conditions).
func (e *Engine) checkCapacities() error {
	if e.Capacities == nil {
		return nil
	}
	if len(e.Capacities) != e.P {
		return fmt.Errorf("core: %d capacities for %d servers", len(e.Capacities), e.P)
	}
	for i, cp := range e.Capacities {
		if cp <= 0 {
			return fmt.Errorf("core: capacity of server %d is %g, want > 0", i, cp)
		}
	}
	return nil
}

// Execute plans (unless forced) and runs the request, returning the
// gathered output and metered costs.
func (e *Engine) Execute(req Request) (*Execution, error) {
	alg, reason, err := e.Plan(req)
	if err != nil {
		return nil, err
	}
	if err := validate(req); err != nil {
		return nil, err
	}
	if err := e.checkCapacities(); err != nil {
		return nil, err
	}
	q := req.Query
	c := e.newCluster()
	trace.Annotatef(c, "plan %s: %s (%s)", q.Name, alg, reason)
	seed := uint64(e.Seed)*2654435761 + 12345
	const outName = "out"
	switch alg {
	case AlgHashJoin, AlgBroadcast, AlgSkewJoin, AlgSortJoin:
		if _, ok := q.TwoWayJoinVar(); !ok {
			return nil, fmt.Errorf("core: %s requires a two-way binary join, got %s", alg, q)
		}
		r := rename(q.Atoms[0], req.Relations[q.Atoms[0].Name])
		s := rename(q.Atoms[1], req.Relations[q.Atoms[1].Name])
		switch alg {
		case AlgHashJoin:
			join2.HashJoin(c, r, s, outName, seed)
		case AlgBroadcast:
			if s.Len() < r.Len() {
				r, s = s, r
			}
			join2.BroadcastJoin(c, r, s, outName)
		case AlgSkewJoin:
			join2.SkewJoin(c, r, s, outName, seed)
		case AlgSortJoin:
			join2.SortJoin(c, r, s, outName, seed)
		}
	case AlgHyperCube:
		switch {
		case e.Adaptive:
			res, err := hypercube.RunAdaptive(c, q, req.Relations, outName, seed, hypercube.AdaptiveConfig{})
			if err != nil {
				return nil, err
			}
			reason += "; adaptive: " + res.Reason
		case e.Capacities != nil:
			if _, err := hypercube.RunHet(c, q, req.Relations, outName, seed, hypercube.LocalGeneric); err != nil {
				return nil, err
			}
			reason += fmt.Sprintf("; capacity-aware shares (effective p %.1f)", cost.EffectiveParallelism(e.Capacities))
		default:
			if _, err := hypercube.Run(c, q, req.Relations, outName, seed, hypercube.LocalGeneric); err != nil {
				return nil, err
			}
		}
	case AlgSkewHC:
		if _, err := hypercube.RunSkewHC(c, q, req.Relations, outName, seed, 0, hypercube.LocalGeneric); err != nil {
			return nil, err
		}
	case AlgGYM, AlgGYMOptimized:
		ok, jt := hypergraph.IsAcyclic(q)
		if !ok {
			return nil, fmt.Errorf("core: %s requires an acyclic query, %s is cyclic", alg, q.Name)
		}
		if alg == AlgGYM {
			yannakakis.GYM(c, jt, req.Relations, outName, seed)
		} else {
			yannakakis.GYMOptimized(c, jt, req.Relations, outName, seed)
		}
	case AlgBinaryPlan:
		yannakakis.IterativeBinaryJoin(c, q, req.Relations, outName, seed)
	case AlgHLTriangle:
		if q.Name != "triangle" || len(q.Atoms) != 3 {
			return nil, fmt.Errorf("core: %s applies only to the triangle query", alg)
		}
		if _, err := hypercube.HeavyLightTriangle(c, req.Relations, outName, seed); err != nil {
			return nil, err
		}
	case AlgBigJoin:
		pl, err := bigjoin.NewPlan(q, nil)
		if err != nil {
			return nil, err
		}
		bigjoin.Run(c, pl, req.Relations, outName, seed)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	out := c.Gather(outName).Project(q.Name, q.Vars()...)
	m := c.Metrics()
	return &Execution{
		Output:    out,
		Algorithm: alg,
		Reason:    reason,
		Rounds:    m.Rounds(),
		MaxLoad:   m.MaxLoad(),
		TotalComm: m.TotalComm(),
		Metrics:   m,
	}, nil
}

// AggregateSpec describes a grouped aggregation over a query's output
// — the slide-52 workload (SELECT cKey, month, SUM(price) FROM ... GROUP
// BY cKey, month).
type AggregateSpec struct {
	GroupBy []string
	Fn      relation.AggFunc
	AggVar  string // aggregated variable (ignored for Count)
	OutAttr string // name of the aggregate output column
}

// ExecuteAggregate runs the request's join and then a distributed
// group-by round over its output, with local pre-aggregation. The
// returned Execution's Output has schema GroupBy + OutAttr, and the
// metrics include the aggregation round.
func (e *Engine) ExecuteAggregate(req Request, spec AggregateSpec) (*Execution, error) {
	if len(spec.GroupBy) == 0 {
		return nil, fmt.Errorf("core: aggregate needs group-by variables")
	}
	vars := map[string]bool{}
	for _, v := range req.Query.Vars() {
		vars[v] = true
	}
	for _, g := range spec.GroupBy {
		if !vars[g] {
			return nil, fmt.Errorf("core: group-by variable %s not in query", g)
		}
	}
	if spec.Fn != relation.Count && !vars[spec.AggVar] {
		return nil, fmt.Errorf("core: aggregated variable %s not in query", spec.AggVar)
	}
	alg, reason, err := e.Plan(req)
	if err != nil {
		return nil, err
	}
	forced := req
	forced.Algorithm = alg
	exec, err := e.Execute(forced)
	if err != nil {
		return nil, err
	}
	// Re-run on a fresh cluster so join output stays distributed, then
	// aggregate in place. (Execute gathers; for the aggregation we want
	// the distributed fragments, so we re-scatter the gathered output —
	// placement is free in the model.)
	c := e.newCluster()
	trace.Annotatef(c, "aggregate group-by %v", spec.GroupBy)
	c.ScatterRoundRobin(exec.Output.Rename("joined"))
	res, err := aggregate.Run(c, aggregate.Spec{
		Rel:     "joined",
		GroupBy: spec.GroupBy,
		Fn:      spec.Fn,
		AggAttr: spec.AggVar,
		OutAttr: spec.OutAttr,
		OutRel:  "agg",
		Seed:    uint64(e.Seed) ^ 0xa66,
	})
	if err != nil {
		return nil, err
	}
	out := c.Gather(res.OutRel)
	return &Execution{
		Output:    out,
		Algorithm: alg,
		Reason:    reason + "; + distributed group-by with combiners",
		Rounds:    exec.Rounds + res.Rounds,
		MaxLoad:   maxI64(exec.MaxLoad, c.Metrics().MaxLoad()),
		TotalComm: exec.TotalComm + c.Metrics().TotalComm(),
		Metrics:   c.Metrics(),
	}, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// sizesOf returns atom cardinalities (≥ 1, for the LPs).
func sizesOf(req Request) map[string]int64 {
	sizes := map[string]int64{}
	for _, a := range req.Query.Atoms {
		n := int64(req.Relations[a.Name].Len())
		if n < 1 {
			n = 1
		}
		sizes[a.Name] = n
	}
	return sizes
}

// validate checks that the request supplies a relation of the right
// arity for every atom.
func validate(req Request) error {
	if len(req.Query.Atoms) == 0 {
		return fmt.Errorf("core: query %q has no atoms", req.Query.Name)
	}
	for _, a := range req.Query.Atoms {
		r, ok := req.Relations[a.Name]
		if !ok {
			return fmt.Errorf("core: no relation for atom %s", a.Name)
		}
		if r.Arity() != len(a.Vars) {
			return fmt.Errorf("core: relation %s has arity %d, atom %s wants %d",
				r.Name(), r.Arity(), a.Name, len(a.Vars))
		}
	}
	return nil
}

// rename returns rel with its columns renamed to the atom's variables.
func rename(a hypergraph.Atom, rel *relation.Relation) *relation.Relation {
	out := relation.New(a.Name, a.Vars...)
	for i := 0; i < rel.Len(); i++ {
		out.AppendRow(rel.Row(i))
	}
	return out
}

// Reference evaluates the query on a single machine with the
// worst-case-optimal generic join — the ground truth for tests and
// examples.
func Reference(q hypergraph.Query, rels map[string]*relation.Relation) *relation.Relation {
	inputs := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		inputs[i] = rename(a, rels[a.Name])
	}
	return relation.GenericJoin(q.Name, q.Vars(), inputs...)
}
