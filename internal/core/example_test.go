package core_test

import (
	"fmt"

	"mpcquery/internal/core"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/relation"
)

// ExampleEngine_Execute runs the triangle query on a tiny graph with a
// simulated 8-server cluster and prints the planner's choice and the
// answer — the library's canonical entry point.
func ExampleEngine_Execute() {
	// One triangle 1-2-3 plus enough disjoint edges that no vertex is a
	// heavy hitter (the planner would otherwise escalate to SkewHC).
	edges := [][]relation.Value{{1, 2}, {2, 3}, {3, 1}}
	for i := relation.Value(0); i < 37; i++ {
		edges = append(edges, []relation.Value{100 + i, 1000 + i})
	}
	r := relation.FromRows("R", []string{"x", "y"}, edges)
	s := relation.FromRows("S", []string{"y", "z"}, edges)
	t := relation.FromRows("T", []string{"z", "x"}, edges)

	engine := core.NewEngine(8, 1)
	exec, err := engine.Execute(core.Request{
		Query:     hypergraph.Triangle(),
		Relations: map[string]*relation.Relation{"R": r, "S": s, "T": t},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("algorithm:", exec.Algorithm)
	fmt.Println("rounds:", exec.Rounds)
	fmt.Println("triangles:", exec.Output.Len())
	// Output:
	// algorithm: hypercube
	// rounds: 1
	// triangles: 3
}

// ExampleEngine_Plan shows the planner explaining its decision without
// executing anything.
func ExampleEngine_Plan() {
	small := relation.FromRows("R", []string{"x", "y"}, [][]relation.Value{{1, 2}})
	big := relation.New("S", "y", "z")
	for i := relation.Value(0); i < 1000; i++ {
		big.Append(i%50, i)
	}
	engine := core.NewEngine(8, 1)
	alg, reason, err := engine.Plan(core.Request{
		Query:     hypergraph.TwoWayJoin(),
		Relations: map[string]*relation.Relation{"R": small, "S": big},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(alg, "—", reason)
	// Output:
	// broadcast — small side (1 tuples) ≤ IN/p = 125: broadcast it
}
