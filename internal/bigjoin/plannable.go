package bigjoin

import (
	"fmt"

	"mpcquery/internal/cost"
)

// Plannables describes BiGJoin to the query planner (internal/plan).
// The prediction replays the compiled plan symbolically: the binding
// set after the seed and after each extension step is the heavy-aware
// chain estimate of the sub-query over the atoms applied so far, and the
// load charges the largest such binding set (the dataflow ships the
// whole frontier each extend round).
func Plannables() []cost.Plannable {
	return []cost.Plannable{
		{
			Alg:        "bigjoin",
			Doc:        "BiGJoin: one variable per round, worst-case optimal per step (slides 78-84)",
			Executable: true,
			Applies: func(st *cost.QueryStats) error {
				_, err := NewPlan(st.Query, nil)
				return err
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				pl, err := NewPlan(st.Query, nil)
				if err != nil {
					return cost.Estimate{}, err
				}
				applied := []string{st.Query.Atoms[pl.SeedAtom].Name}
				for _, i := range pl.SeedVerifiers {
					applied = append(applied, st.Query.Atoms[i].Name)
				}
				frontier := func() float64 {
					sizes := cost.ChainSizes(st, applied)
					return sizes[len(sizes)-1]
				}
				// The binding set after the final step is the output and
				// stays distributed; every earlier frontier is reshipped
				// by the next extend round, and a step with verifiers
				// ships its pre-verification frontier to them.
				maxB := frontier()
				sumB := maxB
				track := func() {
					b := frontier()
					if b > maxB {
						maxB = b
					}
					sumB += b
				}
				for si, s := range pl.Steps {
					applied = append(applied, st.Query.Atoms[s.proposer].Name)
					last := si == len(pl.Steps)-1
					if len(s.verifiers) > 0 {
						track() // pre-verify frontier ships to the verifiers
						for _, i := range s.verifiers {
							applied = append(applied, st.Query.Atoms[i].Name)
						}
					}
					if !last {
						track()
					}
				}
				var maxAtom int64
				for _, n := range st.Sizes {
					if n > maxAtom {
						maxAtom = n
					}
				}
				p := float64(st.P)
				return cost.Estimate{
					L:      (float64(maxAtom) + maxB) / p,
					R:      pl.Rounds(),
					C:      float64(st.IN) + sumB,
					Detail: fmt.Sprintf("max shipped bindings ≈ %.4g over %d steps", maxB, len(pl.Steps)),
				}, nil
			},
		},
	}
}
