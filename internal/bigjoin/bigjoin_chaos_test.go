package bigjoin

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: BiGJoin under seeded fault schedules. The
// variable-elimination plan runs a setup round plus one extend round
// per step, so recovery must keep a long chain of dependent rounds
// bit-for-bit on the fault-free trajectory.

func TestBiGJoinChaosDiff(t *testing.T) {
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(),
		hypergraph.Path(3),
	} {
		testkit.RunChaosDiff(t, q, testkit.Config{}, bigjoinAlgo())
	}
}
