package bigjoin

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Differential tests: BiGJoin (distributed generic join by variable
// elimination) vs the sequential oracle, with the plan-derived exact
// round count (1 setup + one extend per step + one per verifier).

func bigjoinAlgo() testkit.Algo {
	return func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
		pl, err := NewPlan(q, nil)
		if err != nil {
			return err
		}
		Run(c, pl, rels, outName, seed)
		return nil
	}
}

func planRounds(q hypergraph.Query, p int) int {
	pl, err := NewPlan(q, nil)
	if err != nil {
		panic(err)
	}
	return pl.Rounds()
}

// TestBiGJoinDiff sweeps BiGJoin over cyclic and acyclic shapes and all
// four input distributions. The round count is a function of the plan
// alone (never of p or the data), which the assertion pins per query.
func TestBiGJoinDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = planRounds
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(),
		hypergraph.Path(3),
		hypergraph.Star(3),
	} {
		testkit.RunDiff(t, q, cfg, bigjoinAlgo())
	}
}
