package bigjoin

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func reference(q hypergraph.Query, rels map[string]*relation.Relation) *relation.Relation {
	inputs := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r := rels[a.Name]
		renamed := relation.New(a.Name, a.Vars...)
		for j := 0; j < r.Len(); j++ {
			renamed.AppendRow(r.Row(j))
		}
		inputs[i] = renamed
	}
	return relation.GenericJoin("want", q.Vars(), inputs...)
}

func TestPlanTriangle(t *testing.T) {
	q := hypergraph.Triangle()
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.SeedAtom != q.AtomIndex("R") {
		t.Fatalf("seed atom = %d, want R", pl.SeedAtom)
	}
	if len(pl.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (only z to extend)", len(pl.Steps))
	}
	st := pl.Steps[0]
	if st.variable != "z" {
		t.Fatalf("step variable = %s", st.variable)
	}
	if len(st.verifiers) != 1 || q.Atoms[st.verifiers[0]].Name != "T" {
		t.Fatalf("verifiers = %v, want [T]", st.verifiers)
	}
	// setup + extend + verify = 3 rounds.
	if pl.Rounds() != 3 {
		t.Fatalf("planned rounds = %d, want 3", pl.Rounds())
	}
}

func TestPlanValidation(t *testing.T) {
	q := hypergraph.Triangle()
	if _, err := NewPlan(q, []string{"x", "y"}); err == nil {
		t.Fatal("short order should error")
	}
	if _, err := NewPlan(q, []string{"x", "x", "z"}); err == nil {
		t.Fatal("duplicate order should error")
	}
	if _, err := NewPlan(q, []string{"x", "y", "w"}); err == nil {
		t.Fatal("wrong variable should error")
	}
}

func TestRunTriangleCorrect(t *testing.T) {
	r, s, u := workload.TriangleInput(60, 400, 7)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	q := hypergraph.Triangle()
	want := reference(q, rels)
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.NewCluster(8, 1)
	res := Run(c, pl, rels, "out", 42)
	got := c.Gather("out")
	if got.Len() != want.Len() || !got.EqualAsSets(want) {
		t.Fatalf("bigjoin triangles: got %d, want %d", got.Len(), want.Len())
	}
	if res.Rounds != pl.Rounds() {
		t.Fatalf("executed %d rounds, plan said %d", res.Rounds, pl.Rounds())
	}
}

func TestRunCycle4Correct(t *testing.T) {
	g := workload.RandomGraph("E", "a", "b", 40, 300, 9)
	q := hypergraph.Cycle(4)
	rels := map[string]*relation.Relation{}
	for _, a := range q.Atoms {
		e := relation.New(a.Name, a.Vars...)
		for i := 0; i < g.Len(); i++ {
			e.AppendRow(g.Row(i))
		}
		rels[a.Name] = e
	}
	want := reference(q, rels)
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.NewCluster(8, 1)
	Run(c, pl, rels, "out", 42)
	got := c.Gather("out")
	if got.Len() != want.Len() || !got.EqualAsSets(want) {
		t.Fatalf("bigjoin 4-cycles: got %d, want %d", got.Len(), want.Len())
	}
}

func TestRunPathNoVerifiers(t *testing.T) {
	q := hypergraph.Path(4)
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(4, 80) {
		rels[r.Name()] = r
	}
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range pl.Steps {
		if len(st.verifiers) != 0 {
			t.Fatalf("path plan should have no verifiers: %+v", st)
		}
	}
	c := mpc.NewCluster(8, 1)
	res := Run(c, pl, rels, "out", 42)
	got := c.Gather("out")
	if got.Len() != 80 {
		t.Fatalf("path join = %d, want 80", got.Len())
	}
	// setup + 3 extends = 4 rounds.
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
}

func TestRunStarQuery(t *testing.T) {
	q := hypergraph.Star(4)
	rels := map[string]*relation.Relation{}
	for i, a := range q.Atoms {
		rels[a.Name] = workload.Uniform(a.Name, a.Vars, 100, 40, int64(i+1))
	}
	want := reference(q, rels)
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.NewCluster(8, 1)
	Run(c, pl, rels, "out", 42)
	got := c.Gather("out")
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("bigjoin star wrong")
	}
}

func TestRunRSTWithUnaryAtoms(t *testing.T) {
	q := hypergraph.RST()
	rels := map[string]*relation.Relation{
		"R": workload.Uniform("R", []string{"x"}, 50, 30, 1),
		"S": workload.Uniform("S", []string{"x", "y"}, 120, 30, 2),
		"T": workload.Uniform("T", []string{"y"}, 50, 30, 3),
	}
	want := reference(q, rels)
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.NewCluster(4, 1)
	Run(c, pl, rels, "out", 42)
	got := c.Gather("out")
	got.Dedup()
	want.Dedup()
	if !got.EqualAsSets(want) {
		t.Fatal("bigjoin RST wrong")
	}
}

// TestBindingsBoundedByJoinPrefix: the binding-set sizes are the
// algorithm's intermediate footprint; on matching (skew-free) data they
// never grow (the slide-57 regime).
func TestBindingsBoundedOnMatchings(t *testing.T) {
	q := hypergraph.Path(5)
	rels := map[string]*relation.Relation{}
	for _, r := range workload.PathInput(5, 100) {
		rels[r.Name()] = r
	}
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := mpc.NewCluster(8, 1)
	res := Run(c, pl, rels, "out", 42)
	if res.MaxBindings > 100 {
		t.Fatalf("bindings grew to %d on matching data", res.MaxBindings)
	}
}

func TestRunDeterministic(t *testing.T) {
	r, s, u := workload.TriangleInput(40, 250, 3)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	pl, _ := NewPlan(hypergraph.Triangle(), nil)
	run := func() (int64, int64) {
		c := mpc.NewCluster(8, 5)
		Run(c, pl, rels, "out", 42)
		return c.Metrics().MaxLoad(), c.Metrics().TotalComm()
	}
	l1, c1 := run()
	l2, c2 := run()
	if l1 != l2 || c1 != c2 {
		t.Fatal("nondeterministic execution")
	}
}

// Regression: atoms fully bound by the seed alone (parallel atoms over
// the same variable pair) must still filter the bindings — the query is
// the intersection of the three relations.
func TestSeedVerifiers(t *testing.T) {
	q := hypergraph.NewQuery("par",
		hypergraph.Atom{Name: "R1", Vars: []string{"d", "b"}},
		hypergraph.Atom{Name: "R2", Vars: []string{"d", "b"}},
		hypergraph.Atom{Name: "R3", Vars: []string{"d", "b"}},
	)
	rels := map[string]*relation.Relation{
		"R1": relation.FromRows("R1", []string{"d", "b"}, [][]relation.Value{{1, 1}, {2, 2}, {3, 3}}),
		"R2": relation.FromRows("R2", []string{"d", "b"}, [][]relation.Value{{2, 2}, {3, 3}, {4, 4}}),
		"R3": relation.FromRows("R3", []string{"d", "b"}, [][]relation.Value{{3, 3}, {4, 4}, {5, 5}}),
	}
	pl, err := NewPlan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.SeedVerifiers) != 2 {
		t.Fatalf("seed verifiers = %v, want 2", pl.SeedVerifiers)
	}
	c := mpc.NewCluster(4, 1)
	res := Run(c, pl, rels, "out", 42)
	got := c.Gather("out")
	if got.Len() != 1 || got.Row(0)[0] != 3 {
		t.Fatalf("intersection = %v, want {(3,3)}", got)
	}
	if res.Rounds != pl.Rounds() {
		t.Fatalf("rounds %d != planned %d", res.Rounds, pl.Rounds())
	}
}
