// Package bigjoin implements a variable-at-a-time distributed multiway
// join in the style of BiGJoin (Ammar, McSherry, Salihoglu, Joglekar,
// VLDB '18) — the "multi-round multiway joins in practice" family of
// slide 97. Where HyperCube answers a k-variable query in one round by
// replicating inputs, BiGJoin spends one or two rounds per variable and
// ships *partial bindings* instead:
//
//	seed:    the first atom's tuples become the initial bindings;
//	extend:  for each further variable, bindings are co-partitioned
//	         with a proposer atom (hashed on their shared bound
//	         variables) and extended by index lookup;
//	verify:  every atom that becomes fully bound is applied as a
//	         distributed semijoin filter.
//
// Rounds grow with the number of variables, but the per-round load is
// governed by the sizes of the partial binding sets — which, unlike a
// binary join plan's intermediates, never exceed what the already-bound
// atoms jointly allow. One setup round pre-partitions each atom for
// every role the plan assigns it.
package bigjoin

import (
	"fmt"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// step is one planned extension.
type step struct {
	variable string
	// proposer is the atom index supplying candidate values.
	proposer int
	// sharedBound lists the proposer's variables already bound before
	// this step (the co-partition key); empty means a Cartesian
	// extension (the proposer is broadcast).
	sharedBound []string
	// verifiers lists atom indices that become fully bound with this
	// step and must filter the bindings.
	verifiers []int
}

// Plan is a compiled BiGJoin execution plan.
type Plan struct {
	Query    hypergraph.Query
	VarOrder []string
	SeedAtom int
	// SeedVerifiers are atoms whose variables are already fully bound by
	// the seed atom alone (e.g. parallel atoms over the same variables);
	// they filter the seed bindings before any extension.
	SeedVerifiers []int
	Steps         []step
}

// NewPlan compiles a plan for the query under the given variable order
// (defaults to q.Vars() if nil). The first atom whose variables are a
// prefix-compatible set seeds the bindings; each later variable gets a
// proposer preferring atoms that share bound variables.
func NewPlan(q hypergraph.Query, varOrder []string) (*Plan, error) {
	if varOrder == nil {
		varOrder = q.Vars()
	}
	if len(varOrder) != len(q.Vars()) {
		return nil, fmt.Errorf("bigjoin: variable order has %d vars, query has %d", len(varOrder), len(q.Vars()))
	}
	// pos/bound/in (below) are membership and position maps over
	// variable names; no code depends on their iteration order — every
	// ordered walk goes through varOrder or q.Atoms, and all tuple
	// comparisons in the executed plan are numeric on Values.
	pos := map[string]int{}
	for i, v := range varOrder {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("bigjoin: duplicate variable %s", v)
		}
		pos[v] = i
	}
	for _, v := range q.Vars() {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("bigjoin: order misses variable %s", v)
		}
	}
	// Seed with the atom whose variables have the smallest maximum
	// position (so the seed binds a prefix-ish set).
	seed, best := -1, 1<<30
	for i, a := range q.Atoms {
		worst := 0
		for _, v := range a.Vars {
			if pos[v] > worst {
				worst = pos[v]
			}
		}
		if worst < best {
			best = worst
			seed = i
		}
	}
	bound := map[string]bool{}
	for _, v := range q.Atoms[seed].Vars {
		bound[v] = true
	}
	applied := make([]bool, len(q.Atoms))
	applied[seed] = true
	pl := &Plan{Query: q, VarOrder: varOrder, SeedAtom: seed}
	// Atoms fully bound by the seed itself must verify immediately.
	for i, a := range q.Atoms {
		if applied[i] {
			continue
		}
		all := true
		for _, av := range a.Vars {
			if !bound[av] {
				all = false
				break
			}
		}
		if all {
			pl.SeedVerifiers = append(pl.SeedVerifiers, i)
			applied[i] = true
		}
	}
	for _, v := range varOrder {
		if bound[v] {
			continue
		}
		// Proposer: an unapplied atom containing v, preferring the one
		// sharing the most bound variables.
		proposer, shared := -1, -1
		for i, a := range q.Atoms {
			if !a.HasVar(v) {
				continue
			}
			n := 0
			for _, av := range a.Vars {
				if bound[av] {
					n++
				}
			}
			if n > shared || (n == shared && proposer >= 0 && applied[proposer] && !applied[i]) {
				proposer, shared = i, n
			}
		}
		if proposer < 0 {
			return nil, fmt.Errorf("bigjoin: no atom contains variable %s", v)
		}
		st := step{variable: v, proposer: proposer}
		for _, av := range q.Atoms[proposer].Vars {
			if bound[av] {
				st.sharedBound = append(st.sharedBound, av)
			}
		}
		bound[v] = true
		applied[proposer] = true
		// Any unapplied atom that is now fully bound verifies.
		for i, a := range q.Atoms {
			if applied[i] {
				continue
			}
			all := true
			for _, av := range a.Vars {
				if !bound[av] {
					all = false
					break
				}
			}
			if all {
				st.verifiers = append(st.verifiers, i)
				applied[i] = true
			}
		}
		pl.Steps = append(pl.Steps, st)
	}
	for i, a := range q.Atoms {
		if !applied[i] {
			return nil, fmt.Errorf("bigjoin: atom %s never applied (disconnected query?)", a.Name)
		}
	}
	return pl, nil
}

// Rounds returns the number of communication rounds the plan needs:
// one setup round, one extend round per step, and one verify round per
// verifier (including seed verifiers).
func (pl *Plan) Rounds() int {
	r := 1 + len(pl.Steps) + len(pl.SeedVerifiers)
	for _, st := range pl.Steps {
		r += len(st.verifiers)
	}
	return r
}

// Result describes an execution.
type Result struct {
	OutName string
	Rounds  int
	// MaxBindings is the largest total binding-set size shipped by any
	// extend round (the quantity BiGJoin's batching bounds).
	MaxBindings int
}

// Run executes the plan. Relations are keyed by atom name, columns
// matched positionally to atom variables. The result (schema VarOrder)
// is left distributed under outName.
func Run(c *mpc.Cluster, pl *Plan, rels map[string]*relation.Relation, outName string, seed uint64) *Result {
	q := pl.Query
	// Rename inputs to variable schemas and scatter (placement is free).
	prepped := map[string]*relation.Relation{}
	for _, a := range q.Atoms {
		r, ok := rels[a.Name]
		if !ok {
			panic(fmt.Sprintf("bigjoin: no relation for atom %s", a.Name))
		}
		if r.Arity() != len(a.Vars) {
			panic(fmt.Sprintf("bigjoin: relation %s arity mismatch", a.Name))
		}
		renamed := relation.New(a.Name, a.Vars...)
		for i := 0; i < r.Len(); i++ {
			renamed.AppendRow(r.Row(i))
		}
		prepped[a.Name] = renamed
		c.ScatterRoundRobin(renamed)
	}
	trace.Annotatef(c, "bigjoin.Run %s var order %v", q.Name, pl.VarOrder)
	start := c.Metrics().Rounds()
	p := c.P()

	// Setup round: partition each proposer by its sharedBound key and
	// each verifier by its full variable set, under step-local names.
	steps := pl.Steps
	seedVerifiers := pl.SeedVerifiers
	c.Round("bigjoin:setup", func(srv *mpc.Server, out *mpc.Out) {
		for _, vi := range seedVerifiers {
			va := q.Atoms[vi]
			if frag := srv.Rel(va.Name); frag != nil {
				stream := out.Open(fmt.Sprintf("%s:sver%d", outName, vi), va.Vars...)
				cols := colsOf(frag, va.Vars)
				for i := 0; i < frag.Len(); i++ {
					row := frag.Row(i)
					stream.SendRow(relation.Bucket(relation.HashRow(row, cols, seed^uint64(9000+vi)), p), row)
				}
			}
		}
		for si, st := range steps {
			pa := q.Atoms[st.proposer]
			if frag := srv.Rel(pa.Name); frag != nil {
				stream := out.Open(fmt.Sprintf("%s:prop%d", outName, si), pa.Vars...)
				if len(st.sharedBound) == 0 {
					// Cartesian extension: broadcast the proposer.
					for i := 0; i < frag.Len(); i++ {
						row := frag.Row(i)
						for dst := 0; dst < p; dst++ {
							stream.SendRow(dst, row)
						}
					}
				} else {
					cols := colsOf(frag, st.sharedBound)
					for i := 0; i < frag.Len(); i++ {
						row := frag.Row(i)
						stream.SendRow(relation.Bucket(relation.HashRow(row, cols, seed+uint64(si)), p), row)
					}
				}
			}
			for _, vi := range st.verifiers {
				va := q.Atoms[vi]
				if frag := srv.Rel(va.Name); frag != nil {
					stream := out.Open(fmt.Sprintf("%s:ver%d_%d", outName, si, vi), va.Vars...)
					cols := colsOf(frag, va.Vars)
					// The seed must match the binding routing of this
					// verifier's round below.
					for i := 0; i < frag.Len(); i++ {
						row := frag.Row(i)
						stream.SendRow(relation.Bucket(relation.HashRow(row, cols, seed^uint64(7000+1000*si+vi)), p), row)
					}
				}
			}
		}
	})

	// Seed bindings: the seed atom's local fragments, projected to its
	// variable set in VarOrder-consistent order.
	boundVars := orderedSubset(pl.VarOrder, q.Atoms[pl.SeedAtom].Vars)
	bindName := outName + ":bind"
	seedAtom := q.Atoms[pl.SeedAtom]
	bv := boundVars
	c.LocalStep(func(srv *mpc.Server) {
		frag := srv.RelOrEmpty(seedAtom.Name, seedAtom.Vars...)
		srv.Put(frag.Project(bindName, bv...))
	})

	maxBind := c.TotalLen(bindName)
	// Seed-verifier rounds: filter the seed bindings through each atom
	// that the seed already fully binds.
	for _, vi := range seedVerifiers {
		vi := vi
		va := q.Atoms[vi]
		vseed := seed ^ uint64(9000+vi)
		bvNow := boundVars
		c.Round(fmt.Sprintf("bigjoin:sverify%d", vi), func(srv *mpc.Server, out *mpc.Out) {
			frag := srv.Rel(bindName)
			if frag == nil {
				return
			}
			stream := out.Open(bindName+":v", bvNow...)
			cols := colsOf(frag, va.Vars)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				stream.SendRow(relation.Bucket(relation.HashRow(row, cols, vseed), c.P()), row)
			}
			srv.Delete(bindName)
		})
		c.LocalStep(func(srv *mpc.Server) {
			bindings := srv.RelOrEmpty(bindName+":v", bvNow...)
			verRel := srv.RelOrEmpty(fmt.Sprintf("%s:sver%d", outName, vi), va.Vars...)
			srv.Put(relation.Semijoin(bindName, bindings, verRel.Rename("v")))
			srv.Delete(fmt.Sprintf("%s:sver%d", outName, vi))
			srv.Delete(bindName + ":v")
		})
	}
	for si, st := range steps {
		newBound := append(append([]string(nil), boundVars...), st.variable)
		newBound = orderedSubset(pl.VarOrder, newBound)
		// Extend round: ship bindings to the proposer's partition.
		shared := st.sharedBound
		prevBound := boundVars
		c.Round(fmt.Sprintf("bigjoin:extend%d", si), func(srv *mpc.Server, out *mpc.Out) {
			frag := srv.Rel(bindName)
			if frag == nil {
				return
			}
			stream := out.Open(bindName+":x", prevBound...)
			if len(shared) == 0 {
				// Proposer was broadcast: bindings stay put (send to self
				// keeps the metering honest at zero extra cost... ship to
				// self so the round structure is uniform).
				for i := 0; i < frag.Len(); i++ {
					stream.SendRow(srv.ID(), frag.Row(i))
				}
			} else {
				cols := colsOf(frag, shared)
				for i := 0; i < frag.Len(); i++ {
					row := frag.Row(i)
					stream.SendRow(relation.Bucket(relation.HashRow(row, cols, seed+uint64(si)), c.P()), row)
				}
			}
			srv.Delete(bindName)
		})
		propName := fmt.Sprintf("%s:prop%d", outName, si)
		propAtom := q.Atoms[st.proposer]
		nb := newBound
		c.LocalStep(func(srv *mpc.Server) {
			bindings := srv.RelOrEmpty(bindName+":x", prevBound...)
			prop := srv.RelOrEmpty(propName, propAtom.Vars...)
			joined := relation.HashJoin("j", bindings.Rename("b"), prop.Rename("p"))
			srv.Put(joined.Project(bindName, nb...))
			srv.Delete(bindName + ":x")
			srv.Delete(propName)
		})
		if n := c.TotalLen(bindName); n > maxBind {
			maxBind = n
		}
		// Verify rounds: filter the bindings through each newly-bound
		// atom, one co-partitioned semijoin round per verifier.
		for _, vi := range st.verifiers {
			vi := vi
			va := q.Atoms[vi]
			vseed := seed ^ uint64(7000+1000*si+vi)
			c.Round(fmt.Sprintf("bigjoin:verify%d_%d", si, vi), func(srv *mpc.Server, out *mpc.Out) {
				frag := srv.Rel(bindName)
				if frag == nil {
					return
				}
				stream := out.Open(bindName+":v", nb...)
				cols := colsOf(frag, va.Vars)
				for i := 0; i < frag.Len(); i++ {
					row := frag.Row(i)
					stream.SendRow(relation.Bucket(relation.HashRow(row, cols, vseed), c.P()), row)
				}
				srv.Delete(bindName)
			})
			c.LocalStep(func(srv *mpc.Server) {
				bindings := srv.RelOrEmpty(bindName+":v", nb...)
				verRel := srv.RelOrEmpty(fmt.Sprintf("%s:ver%d_%d", outName, si, vi), va.Vars...)
				srv.Put(relation.Semijoin(bindName, bindings, verRel.Rename("v")))
				srv.Delete(fmt.Sprintf("%s:ver%d_%d", outName, si, vi))
				srv.Delete(bindName + ":v")
			})
		}
		boundVars = newBound
	}
	c.LocalStep(func(srv *mpc.Server) {
		frag := srv.RelOrEmpty(bindName, pl.VarOrder...)
		srv.Put(frag.Rename(outName))
		srv.Delete(bindName)
	})
	return &Result{
		OutName:     outName,
		Rounds:      c.Metrics().Rounds() - start,
		MaxBindings: maxBind,
	}
}

func colsOf(r *relation.Relation, attrs []string) []int {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.MustCol(a)
	}
	return cols
}

// orderedSubset returns the members of set ordered as in order.
func orderedSubset(order []string, set []string) []string {
	in := map[string]bool{}
	for _, v := range set {
		in[v] = true
	}
	var out []string
	for _, v := range order {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}
