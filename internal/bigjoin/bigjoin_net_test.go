package bigjoin

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: BiGJoin's variable-elimination
// rounds (prefix extension streams plus verifier exchanges) must be
// indistinguishable between the in-process engine and the TCP
// transport.

func TestBiGJoinBackendDiff(t *testing.T) {
	for _, q := range []hypergraph.Query{hypergraph.Triangle(), hypergraph.Star(3)} {
		testkit.RunBackendDiff(t, q, testkit.Config{}, bigjoinAlgo())
	}
}
