package bigjoin_test

import (
	"fmt"

	"mpcquery/internal/bigjoin"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// ExampleRun evaluates the triangle query variable-at-a-time: R seeds
// the (x, y) bindings, S extends them with z, T verifies — three rounds
// including the setup round (slide 97's BiGJoin family).
func ExampleRun() {
	edges := [][]relation.Value{{1, 2}, {2, 3}, {3, 1}, {2, 4}}
	rels := map[string]*relation.Relation{
		"R": relation.FromRows("R", []string{"x", "y"}, edges),
		"S": relation.FromRows("S", []string{"y", "z"}, edges),
		"T": relation.FromRows("T", []string{"z", "x"}, edges),
	}
	pl, err := bigjoin.NewPlan(hypergraph.Triangle(), nil)
	if err != nil {
		panic(err)
	}
	c := mpc.NewCluster(4, 1)
	res := bigjoin.Run(c, pl, rels, "out", 42)
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("triangles:", c.Gather("out").Len())
	// Output:
	// rounds: 3
	// triangles: 3
}
