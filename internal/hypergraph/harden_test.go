package hypergraph

import (
	"strings"
	"testing"
)

// Regression tests for the untrusted-input hardening: every
// construction defect that used to panic inside NewQuery must surface
// as an error from TryNewQuery (and from Parse, which untrusted input
// reaches through the query frontend), while NewQuery keeps its
// panicking contract for handwritten queries.

func TestTryNewQueryErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		atoms []Atom
		want  string
	}{
		{
			"duplicate atom name",
			[]Atom{{Name: "R", Vars: []string{"x"}}, {Name: "R", Vars: []string{"y"}}},
			"hypergraph: duplicate atom name R",
		},
		{
			"repeated variable",
			[]Atom{{Name: "R", Vars: []string{"x", "x"}}},
			"hypergraph: atom R repeats variable x",
		},
		{
			"no variables",
			[]Atom{{Name: "R", Vars: nil}},
			"hypergraph: atom R has no variables",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := TryNewQuery("q", tc.atoms...)
			if err == nil {
				t.Fatalf("expected error %q, got nil", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

func TestTryNewQueryValid(t *testing.T) {
	q, err := TryNewQuery("tri",
		Atom{Name: "R", Vars: []string{"x", "y"}},
		Atom{Name: "S", Vars: []string{"y", "z"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "tri" || len(q.Atoms) != 2 {
		t.Fatalf("unexpected query %v", q)
	}
}

// NewQuery keeps panicking for handwritten construction so internal
// bugs stay loud; the panic message is the TryNewQuery error.
func TestNewQueryStillPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "duplicate atom name") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	NewQuery("q", Atom{Name: "R", Vars: []string{"x"}}, Atom{Name: "R", Vars: []string{"y"}})
}

// Parse is a construction entry point for untrusted bodies: malformed
// input of every shape that used to reach a NewQuery panic (via the
// old recover trampoline) or could confuse the scanner must return an
// error, never panic.
func TestParseMalformedReturnsErrors(t *testing.T) {
	for _, body := range []string{
		"",
		"R",
		"R(",
		"R()",
		"R)x(",
		"R(x,y)),",
		"R(x,y), R(x,y)", // duplicate atom name
		"R(x,x)",         // repeated variable
		"R(x,y), , S(y)", // empty atom slot
		"R(x,y) S(y,z)",  // missing comma
		"R(x,y),",        // trailing comma
		"1R(x)",          // bad atom name
		"R(1x)",          // bad variable
		"R((x)",          // stray paren inside vars
		strings.Repeat("R(x", 3),
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", body, r)
				}
			}()
			if _, err := Parse("q", body); err == nil {
				t.Errorf("Parse(%q): expected error", body)
			}
		}()
	}
}
