package hypergraph

import (
	"testing"
)

func TestQueryBasics(t *testing.T) {
	q := Triangle()
	vars := q.Vars()
	if len(vars) != 3 || vars[0] != "x" || vars[1] != "y" || vars[2] != "z" {
		t.Fatalf("triangle vars = %v", vars)
	}
	if got := q.Atom("S").Vars[0]; got != "y" {
		t.Fatalf("atom S first var = %s", got)
	}
	if q.AtomIndex("T") != 2 || q.AtomIndex("Z") != -1 {
		t.Fatalf("AtomIndex broken")
	}
	if got := q.AtomsWithVar("x"); len(got) != 2 {
		t.Fatalf("atoms with x = %v, want R and T", got)
	}
}

func TestQueryValidation(t *testing.T) {
	mustPanic(t, "dup atom", func() {
		NewQuery("q", Atom{Name: "R", Vars: []string{"x"}}, Atom{Name: "R", Vars: []string{"y"}})
	})
	mustPanic(t, "repeated var", func() {
		NewQuery("q", Atom{Name: "R", Vars: []string{"x", "x"}})
	})
	mustPanic(t, "empty atom", func() {
		NewQuery("q", Atom{Name: "R"})
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestResidual(t *testing.T) {
	q := Triangle()
	// z heavy: T(z,x) -> T(x), S(y,z) -> S(y)  (slide 49).
	res, dropped := q.Residual(map[string]bool{"z": true})
	if len(dropped) != 0 {
		t.Fatalf("dropped = %v, want none", dropped)
	}
	if len(res.Atoms) != 3 {
		t.Fatalf("residual atoms = %d", len(res.Atoms))
	}
	if s := res.Atom("S"); len(s.Vars) != 1 || s.Vars[0] != "y" {
		t.Fatalf("residual S = %v", s)
	}
	// y and z heavy: R(x), T(x); S dropped (slide 50).
	res2, dropped2 := q.Residual(map[string]bool{"y": true, "z": true})
	if len(dropped2) != 1 || dropped2[0] != "S" {
		t.Fatalf("dropped = %v, want [S]", dropped2)
	}
	if len(res2.Atoms) != 2 {
		t.Fatalf("residual atoms = %d, want 2", len(res2.Atoms))
	}
}

func TestVarSubsets(t *testing.T) {
	q := TwoWayJoin() // vars x, y, z
	subs := q.VarSubsets()
	if len(subs) != 8 {
		t.Fatalf("subsets = %d, want 8", len(subs))
	}
	if len(subs[0]) != 0 || len(subs[7]) != 3 {
		t.Fatalf("subset ordering wrong")
	}
}

func TestGYOAcyclic(t *testing.T) {
	for _, tc := range []struct {
		q    Query
		want bool
	}{
		{Triangle(), false},
		{TwoWayJoin(), true},
		{RST(), true},
		{Path(5), true},
		{Star(4), true},
		{SlideTree(), true},
		{Cycle(4), false},
		{Cycle(5), false},
		{Difficult(), true},
		{CartesianProduct(), true},
	} {
		got, jt := IsAcyclic(tc.q)
		if got != tc.want {
			t.Errorf("%s: acyclic = %v, want %v", tc.q.Name, got, tc.want)
		}
		if got && jt == nil {
			t.Errorf("%s: acyclic but no join tree", tc.q.Name)
		}
	}
}

func TestJoinTreeStructure(t *testing.T) {
	q := SlideTree()
	ok, jt := IsAcyclic(q)
	if !ok {
		t.Fatal("slide tree should be acyclic")
	}
	// The tree must span all atoms with exactly one root.
	roots := 0
	for _, p := range jt.Parent {
		if p < 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d", roots)
	}
	// Parent must share a variable with child (join-tree property for
	// connected queries).
	for i, p := range jt.Parent {
		if p < 0 {
			continue
		}
		shared := false
		for _, v := range q.Atoms[i].Vars {
			if q.Atoms[p].HasVar(v) {
				shared = true
			}
		}
		if !shared {
			t.Errorf("atom %s shares no var with parent %s", q.Atoms[i].Name, q.Atoms[p].Name)
		}
	}
	post := jt.PostOrder()
	if len(post) != 5 || post[len(post)-1] != jt.Root {
		t.Fatalf("postorder = %v, root %d", post, jt.Root)
	}
	pre := jt.PreOrder()
	if len(pre) != 5 || pre[0] != jt.Root {
		t.Fatalf("preorder = %v", pre)
	}
	levels := jt.Levels()
	total := 0
	for _, l := range levels {
		total += len(l)
	}
	if total != 5 {
		t.Fatalf("levels cover %d atoms", total)
	}
	if jt.Depth() < 1 || jt.Depth() > 3 {
		t.Fatalf("slide tree depth = %d", jt.Depth())
	}
}

// TestJoinTreeRunningIntersection: for every variable, atoms containing
// it must form a connected subtree of the join tree.
func TestJoinTreeRunningIntersection(t *testing.T) {
	for _, q := range []Query{TwoWayJoin(), RST(), Path(7), Star(5), SlideTree(), Difficult()} {
		ok, jt := IsAcyclic(q)
		if !ok {
			t.Fatalf("%s should be acyclic", q.Name)
		}
		g := FromJoinTree(jt)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: join tree violates GHD conditions: %v", q.Name, err)
		}
		if g.Width() != 1 {
			t.Errorf("%s: join-tree GHD width = %d, want 1", q.Name, g.Width())
		}
	}
}

func TestPathChainGHD(t *testing.T) {
	g := PathChainGHD(6)
	if g.Width() != 1 {
		t.Fatalf("chain width = %d, want 1", g.Width())
	}
	if g.Depth() != 5 {
		t.Fatalf("chain depth = %d, want 5", g.Depth())
	}
}

func TestPathFlatGHD(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 8, 9} {
		g := PathFlatGHD(n)
		if g.Depth() != 1 {
			t.Errorf("flat path-%d depth = %d, want 1", n, g.Depth())
		}
		w := g.Width()
		if w < (n+1)/2 || w > n/2+1 {
			t.Errorf("flat path-%d width = %d, want ≈ n/2", n, w)
		}
	}
}

func TestPathBalancedGHD(t *testing.T) {
	for _, n := range []int{3, 4, 6, 8, 12, 16, 20, 31} {
		g := PathBalancedGHD(n)
		if w := g.Width(); w > 3 {
			t.Errorf("balanced path-%d width = %d, want ≤ 3", n, w)
		}
		// Depth should be logarithmic: ≤ 2·log2(n)+2.
		maxD := 2
		for k := 1; k < n; k *= 2 {
			maxD += 2
		}
		if d := g.Depth(); d > maxD {
			t.Errorf("balanced path-%d depth = %d, want ≤ %d", n, d, maxD)
		}
	}
}

func TestGHDWidthDepthTradeoffMonotone(t *testing.T) {
	// The three path decompositions realize the slide-95 trade-off:
	// chain (w=1, d=n-1), balanced (w=3, d≈log n), flat (w≈n/2, d=1).
	n := 16
	chain, bal, flat := PathChainGHD(n), PathBalancedGHD(n), PathFlatGHD(n)
	if !(chain.Width() < bal.Width() || bal.Width() <= flat.Width()) {
		t.Fatalf("width ordering violated: %d %d %d", chain.Width(), bal.Width(), flat.Width())
	}
	if !(flat.Depth() < bal.Depth() && bal.Depth() < chain.Depth()) {
		t.Fatalf("depth ordering violated: %d %d %d", flat.Depth(), bal.Depth(), chain.Depth())
	}
}

func TestStandardQueryShapes(t *testing.T) {
	if got := len(Path(7).Atoms); got != 7 {
		t.Fatalf("path7 atoms = %d", got)
	}
	if got := len(Star(7).Atoms); got != 7 {
		t.Fatalf("star7 atoms = %d", got)
	}
	if got := len(Cycle(7).Atoms); got != 7 {
		t.Fatalf("cycle7 atoms = %d", got)
	}
	if got := len(Cycle(7).Vars()); got != 7 {
		t.Fatalf("cycle7 vars = %d", got)
	}
	mustPanic(t, "path 0", func() { Path(0) })
	mustPanic(t, "cycle 2", func() { Cycle(2) })
}

func TestInvalidGHDPanics(t *testing.T) {
	q := TwoWayJoin()
	// A GHD missing atom S entirely must be rejected.
	mustPanic(t, "missing atom", func() {
		NewGHD(q, []Bag{{Vars: []string{"x", "y"}, Atoms: []int{0}}}, []int{-1})
	})
	// Running-intersection violation: y appears in bags 0 and 2 but not
	// in the middle bag 1 on the path between them.
	q3 := Path(3) // R1(A0,A1) R2(A1,A2) R3(A2,A3)
	mustPanic(t, "running intersection", func() {
		NewGHD(q3, []Bag{
			{Vars: []string{"A0", "A1"}, Atoms: []int{0}},
			{Vars: []string{"A2", "A3"}, Atoms: []int{2}},
			{Vars: []string{"A1", "A2"}, Atoms: []int{1}},
		}, []int{-1, 0, 1})
	})
}

func TestRandomAcyclicAlwaysAcyclic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		q := RandomAcyclic(1+int(seed%7), 2+int(seed%3), seed)
		ok, jt := IsAcyclic(q)
		if !ok {
			t.Fatalf("seed %d: %s is cyclic", seed, q)
		}
		if jt == nil && len(q.Atoms) > 1 {
			t.Fatalf("seed %d: no join tree", seed)
		}
		// Deterministic per seed.
		q2 := RandomAcyclic(1+int(seed%7), 2+int(seed%3), seed)
		if q.String() != q2.String() {
			t.Fatalf("seed %d: not deterministic", seed)
		}
	}
	mustPanic(t, "bad params", func() { RandomAcyclic(0, 2, 1) })
}
