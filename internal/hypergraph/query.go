// Package hypergraph represents conjunctive queries as hypergraphs —
// atoms are hyperedges over variables — and provides the structural
// machinery the tutorial's algorithms need: GYO acyclicity testing and
// join-tree extraction (for Yannakakis/GYM), generalized hypertree
// decompositions with width/depth trade-offs (slides 79, 95), and
// residual queries under heavy-hitter variable bindings (slide 47, the
// SkewHC algorithm).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is one relational atom S(x1, ..., xk) of a conjunctive query.
// Repeated variables within an atom are not supported (the tutorial
// never uses them).
type Atom struct {
	Name string
	Vars []string
}

// HasVar reports whether the atom mentions v.
func (a Atom) HasVar(v string) bool {
	for _, x := range a.Vars {
		if x == v {
			return true
		}
	}
	return false
}

func (a Atom) String() string {
	return a.Name + "(" + strings.Join(a.Vars, ",") + ")"
}

// Query is a full conjunctive query (all variables are output
// variables, as everywhere in the tutorial).
type Query struct {
	Name  string
	Atoms []Atom
}

// NewQuery builds a query, validating that atom names are unique and no
// atom repeats a variable. It panics on invalid input; code handling
// untrusted query shapes (the parsed frontend, anything network-facing)
// should use TryNewQuery instead.
func NewQuery(name string, atoms ...Atom) Query {
	q, err := TryNewQuery(name, atoms...)
	if err != nil {
		panic(err.Error())
	}
	return q
}

// TryNewQuery is NewQuery with errors instead of panics: the
// construction entry point for untrusted input. It rejects duplicate
// atom names, atoms with no variables, and atoms repeating a variable.
func TryNewQuery(name string, atoms ...Atom) (Query, error) {
	seen := map[string]bool{}
	for _, a := range atoms {
		if seen[a.Name] {
			return Query{}, fmt.Errorf("hypergraph: duplicate atom name %s", a.Name)
		}
		seen[a.Name] = true
		vs := map[string]bool{}
		for _, v := range a.Vars {
			if vs[v] {
				return Query{}, fmt.Errorf("hypergraph: atom %s repeats variable %s", a.Name, v)
			}
			vs[v] = true
		}
		if len(a.Vars) == 0 {
			return Query{}, fmt.Errorf("hypergraph: atom %s has no variables", a.Name)
		}
	}
	return Query{Name: name, Atoms: atoms}, nil
}

// Vars returns every variable in order of first occurrence.
func (q Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Atom returns the atom with the given name, or panics.
func (q Query) Atom(name string) Atom {
	for _, a := range q.Atoms {
		if a.Name == name {
			return a
		}
	}
	panic("hypergraph: no atom " + name + " in " + q.Name)
}

// AtomIndex returns the position of the named atom, or -1.
func (q Query) AtomIndex(name string) int {
	for i, a := range q.Atoms {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// AtomsWithVar returns the indices of atoms mentioning v.
func (q Query) AtomsWithVar(v string) []int {
	var out []int
	for i, a := range q.Atoms {
		if a.HasVar(v) {
			out = append(out, i)
		}
	}
	return out
}

// TwoWayJoinVar reports whether q is a two-way binary join
// R(x,y) ⋈ S(y,z) — two binary atoms sharing exactly one variable, the
// shape the join2 algorithms handle — and returns the shared variable.
func (q Query) TwoWayJoinVar() (string, bool) {
	if len(q.Atoms) != 2 || len(q.Atoms[0].Vars) != 2 || len(q.Atoms[1].Vars) != 2 {
		return "", false
	}
	shared := ""
	n := 0
	for _, v := range q.Atoms[0].Vars {
		if q.Atoms[1].HasVar(v) {
			shared = v
			n++
		}
	}
	if n != 1 {
		return "", false
	}
	return shared, true
}

func (q Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return q.Name + " = " + strings.Join(parts, " ⋈ ")
}

// Residual returns the residual query obtained by deleting the given
// (heavy) variables from every atom and dropping atoms left with no
// variables (slide 47). The returned query keeps original atom names so
// callers can map residual atoms back to input relations; droppedAtoms
// lists the names of atoms removed entirely.
func (q Query) Residual(heavy map[string]bool) (res Query, droppedAtoms []string) {
	res.Name = q.Name + "_res"
	for _, a := range q.Atoms {
		var keep []string
		for _, v := range a.Vars {
			if !heavy[v] {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			droppedAtoms = append(droppedAtoms, a.Name)
			continue
		}
		res.Atoms = append(res.Atoms, Atom{Name: a.Name, Vars: keep})
	}
	return res, droppedAtoms
}

// VarSubsets enumerates all subsets of the query's variables, each as a
// set, in a deterministic order (by subset size, then lexicographically).
// Used by SkewHC to enumerate heavy/light patterns.
func (q Query) VarSubsets() []map[string]bool {
	vars := q.Vars()
	n := len(vars)
	if n > 20 {
		panic("hypergraph: too many variables to enumerate subsets")
	}
	subsets := make([]map[string]bool, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		s := map[string]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s[vars[i]] = true
			}
		}
		subsets = append(subsets, s)
	}
	sort.SliceStable(subsets, func(a, b int) bool {
		if len(subsets[a]) != len(subsets[b]) {
			return len(subsets[a]) < len(subsets[b])
		}
		return setKey(subsets[a], vars) < setKey(subsets[b], vars)
	})
	return subsets
}

func setKey(s map[string]bool, order []string) string {
	var b strings.Builder
	for _, v := range order {
		if s[v] {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ---- Standard queries from the tutorial ----

// Triangle is Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x) (slide 34).
func Triangle() Query {
	return NewQuery("triangle",
		Atom{Name: "R", Vars: []string{"x", "y"}},
		Atom{Name: "S", Vars: []string{"y", "z"}},
		Atom{Name: "T", Vars: []string{"z", "x"}},
	)
}

// TwoWayJoin is Join(x,y,z) = R(x,y) ⋈ S(y,z) (slide 22).
func TwoWayJoin() Query {
	return NewQuery("join2",
		Atom{Name: "R", Vars: []string{"x", "y"}},
		Atom{Name: "S", Vars: []string{"y", "z"}},
	)
}

// RST is R(x) ⋈ S(x,y) ⋈ T(y), the "easy under skew with semijoins"
// query of slides 53 and 58.
func RST() Query {
	return NewQuery("rst",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "S", Vars: []string{"x", "y"}},
		Atom{Name: "T", Vars: []string{"y"}},
	)
}

// CartesianProduct is Product(x,z) = R(x) ⋈ S(z) (slide 27).
func CartesianProduct() Query {
	return NewQuery("product",
		Atom{Name: "R", Vars: []string{"x"}},
		Atom{Name: "S", Vars: []string{"z"}},
	)
}

// Path returns the chain query R1(A0,A1) ⋈ ... ⋈ Rn(A[n-1],An)
// (slides 62, 79).
func Path(n int) Query {
	if n < 1 {
		panic("hypergraph: Path needs n ≥ 1")
	}
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = Atom{
			Name: fmt.Sprintf("R%d", i+1),
			Vars: []string{fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1)},
		}
	}
	return NewQuery(fmt.Sprintf("path%d", n), atoms...)
}

// Star returns the star query R1(A0,A1) ⋈ R2(A0,A2) ⋈ ... ⋈ Rn(A0,An)
// (slide 79).
func Star(n int) Query {
	if n < 1 {
		panic("hypergraph: Star needs n ≥ 1")
	}
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = Atom{
			Name: fmt.Sprintf("R%d", i+1),
			Vars: []string{"A0", fmt.Sprintf("A%d", i+1)},
		}
	}
	return NewQuery(fmt.Sprintf("star%d", n), atoms...)
}

// SlideTree is the 5-atom acyclic query used in the Yannakakis walkthrough
// (slides 64–77): R1(A0,A1), R2(A0,A2), R3(A1,A3), R4(A2,A4), R5(A2,A5).
func SlideTree() Query {
	return NewQuery("slidetree",
		Atom{Name: "R1", Vars: []string{"A0", "A1"}},
		Atom{Name: "R2", Vars: []string{"A0", "A2"}},
		Atom{Name: "R3", Vars: []string{"A1", "A3"}},
		Atom{Name: "R4", Vars: []string{"A2", "A4"}},
		Atom{Name: "R5", Vars: []string{"A2", "A5"}},
	)
}

// Difficult is the open-problem query of slide 61: a path x1–x2–x3 with
// pendant edges hanging off its endpoints. The slide's figure is
// transcribed too lossily to pin every atom, but it states τ* = 2 and
// ψ* = 3, which this query realizes exactly: the base packing can use
// only the two pendant atoms (τ* = 2), while the residual query with
// {x1, x3} heavy packs S1(y1), S2(y3) and R1(x2)/R2(x2) for ψ* = 3.
func Difficult() Query {
	return NewQuery("difficult",
		Atom{Name: "R1", Vars: []string{"x1", "x2"}},
		Atom{Name: "R2", Vars: []string{"x2", "x3"}},
		Atom{Name: "S1", Vars: []string{"x1", "y1"}},
		Atom{Name: "S2", Vars: []string{"x3", "y3"}},
	)
}

// RandomAcyclic generates a random α-acyclic query with nAtoms atoms of
// arity 2..maxArity: atoms form a random tree, each child sharing one
// connector variable with its parent and introducing fresh variables
// for the rest. Useful for property sweeps over the acyclic algorithms.
func RandomAcyclic(nAtoms, maxArity int, seed int64) Query {
	if nAtoms < 1 || maxArity < 2 {
		panic("hypergraph: RandomAcyclic needs nAtoms ≥ 1, maxArity ≥ 2")
	}
	rng := newSplitMix(uint64(seed))
	fresh := 0
	newVar := func() string {
		fresh++
		return fmt.Sprintf("v%d", fresh)
	}
	atoms := make([]Atom, nAtoms)
	arity := 2 + int(rng()%(uint64(maxArity)-1))
	vars := make([]string, arity)
	for i := range vars {
		vars[i] = newVar()
	}
	atoms[0] = Atom{Name: "R1", Vars: vars}
	for i := 1; i < nAtoms; i++ {
		parent := atoms[rng()%uint64(i)]
		connector := parent.Vars[rng()%uint64(len(parent.Vars))]
		arity := 2 + int(rng()%(uint64(maxArity)-1))
		vars := make([]string, arity)
		vars[0] = connector
		for j := 1; j < arity; j++ {
			vars[j] = newVar()
		}
		atoms[i] = Atom{Name: fmt.Sprintf("R%d", i+1), Vars: vars}
	}
	return NewQuery(fmt.Sprintf("rand%d", seed), atoms...)
}

// newSplitMix returns a tiny deterministic generator (avoiding a
// math/rand dependency in this package).
func newSplitMix(seed uint64) func() uint64 {
	state := seed*0x9e3779b97f4a7c15 + 0x1234567
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// Cycle returns the length-n cycle query R1(A1,A2), ..., Rn(An,A1).
func Cycle(n int) Query {
	if n < 3 {
		panic("hypergraph: Cycle needs n ≥ 3")
	}
	atoms := make([]Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = Atom{
			Name: fmt.Sprintf("R%d", i+1),
			Vars: []string{fmt.Sprintf("A%d", i+1), fmt.Sprintf("A%d", (i+1)%n+1)},
		}
	}
	return NewQuery(fmt.Sprintf("cycle%d", n), atoms...)
}
