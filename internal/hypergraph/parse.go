package hypergraph

import (
	"fmt"
	"strings"
)

// Parse builds a query from a Datalog-style body such as
//
//	R(x,y), S(y,z), T(z,x)
//
// Atom names and variables are identifiers (letters, digits, '_', must
// start with a letter). Whitespace is ignored. The query name is the
// caller's choice.
func Parse(name, body string) (Query, error) {
	var atoms []Atom
	s := strings.TrimSpace(body)
	for len(s) > 0 {
		// Atom name up to '('.
		open := strings.IndexByte(s, '(')
		if open < 0 {
			return Query{}, fmt.Errorf("hypergraph: expected '(' in %q", s)
		}
		atomName := strings.TrimSpace(s[:open])
		if !isIdent(atomName) {
			return Query{}, fmt.Errorf("hypergraph: bad atom name %q", atomName)
		}
		closeIdx := strings.IndexByte(s, ')')
		if closeIdx < open {
			return Query{}, fmt.Errorf("hypergraph: unclosed atom %q", atomName)
		}
		var vars []string
		for _, v := range strings.Split(s[open+1:closeIdx], ",") {
			v = strings.TrimSpace(v)
			if !isIdent(v) {
				return Query{}, fmt.Errorf("hypergraph: bad variable %q in atom %s", v, atomName)
			}
			vars = append(vars, v)
		}
		if len(vars) == 0 {
			return Query{}, fmt.Errorf("hypergraph: atom %s has no variables", atomName)
		}
		atoms = append(atoms, Atom{Name: atomName, Vars: vars})
		s = strings.TrimSpace(s[closeIdx+1:])
		if len(s) > 0 {
			if s[0] != ',' {
				return Query{}, fmt.Errorf("hypergraph: expected ',' between atoms at %q", s)
			}
			s = strings.TrimSpace(s[1:])
			if len(s) == 0 {
				return Query{}, fmt.Errorf("hypergraph: trailing comma")
			}
		}
	}
	if len(atoms) == 0 {
		return Query{}, fmt.Errorf("hypergraph: empty query body")
	}
	return TryNewQuery(name, atoms...)
}

// MustParse is Parse but panics on malformed input; for tests and
// examples with literal query strings.
func MustParse(name, body string) Query {
	q, err := Parse(name, body)
	if err != nil {
		panic(err)
	}
	return q
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
