package hypergraph

import "testing"

func TestParseTriangle(t *testing.T) {
	q, err := Parse("tri", "R(x,y), S(y,z), T(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	want := Triangle()
	if len(q.Atoms) != 3 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
	for i, a := range q.Atoms {
		wa := want.Atoms[i]
		if a.Name != wa.Name || len(a.Vars) != len(wa.Vars) {
			t.Fatalf("atom %d = %v, want %v", i, a, wa)
		}
		for j := range a.Vars {
			if a.Vars[j] != wa.Vars[j] {
				t.Fatalf("atom %d vars = %v, want %v", i, a.Vars, wa.Vars)
			}
		}
	}
}

func TestParseWhitespaceAndUnary(t *testing.T) {
	q, err := Parse("rst", "  R( x ) ,S(x , y),  T(y)  ")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 || len(q.Atom("R").Vars) != 1 || len(q.Atom("S").Vars) != 2 {
		t.Fatalf("parsed wrong: %v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"R",
		"R(",
		"R()",
		"R(x,)",
		"R(x) S(y)",  // missing comma
		"R(x),",      // trailing comma
		"R(x), R(y)", // duplicate atom name
		"R(x,x)",     // repeated variable
		"1R(x)",      // bad atom name
		"R(9x)",      // bad variable
		"R(x-y)",     // bad character
	}
	for _, body := range cases {
		if _, err := Parse("q", body); err == nil {
			t.Errorf("Parse(%q) should fail", body)
		}
	}
}

func TestParseRoundTripsNamedQueries(t *testing.T) {
	for _, q := range []Query{Triangle(), TwoWayJoin(), RST(), Path(4), Star(3), Cycle(5)} {
		body := ""
		for i, a := range q.Atoms {
			if i > 0 {
				body += ", "
			}
			body += a.String()
		}
		got, err := Parse(q.Name, body)
		if err != nil {
			t.Fatalf("%s: %v (body %q)", q.Name, err, body)
		}
		if got.String() != q.String() {
			t.Fatalf("round trip: %s != %s", got, q)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("q", "garbage(")
}
