package hypergraph

import (
	"fmt"
	"sort"
)

// Generalized hypertree decompositions (GHDs). A GHD organizes the
// atoms of a query into bags arranged in a tree; its width w is the
// maximum number of atoms covering a bag and its depth d the height of
// the tree. The tutorial's round/load trade-off (slide 95) is:
// any query with a width-w, depth-d GHD runs in r = O(d) rounds with
// load L = O((IN^w + OUT)/p).

// Bag is a node of a GHD: a set of variables covered by a set of atoms
// (the λ labelling).
type Bag struct {
	Vars  []string
	Atoms []int // indices into the query's atom list (the cover λ)
}

// GHD is a rooted generalized hypertree decomposition of a query.
type GHD struct {
	Query    Query
	Bags     []Bag
	Parent   []int   // Parent[i] = parent bag index, -1 for root
	Children [][]int // derived from Parent
	Root     int
}

// NewGHD assembles a GHD from bags and parent pointers, derives child
// lists, and validates the decomposition (panicking on an invalid one,
// since constructing an invalid GHD is always a programming error).
func NewGHD(q Query, bags []Bag, parent []int) *GHD {
	if len(bags) != len(parent) {
		panic("hypergraph: bags/parent length mismatch")
	}
	g := &GHD{Query: q, Bags: bags, Parent: parent, Root: -1}
	g.Children = make([][]int, len(bags))
	for i, p := range parent {
		if p < 0 {
			if g.Root >= 0 {
				panic("hypergraph: GHD has two roots")
			}
			g.Root = i
		} else {
			g.Children[p] = append(g.Children[p], i)
		}
	}
	if g.Root < 0 {
		panic("hypergraph: GHD has no root")
	}
	if err := g.Validate(); err != nil {
		panic("hypergraph: invalid GHD: " + err.Error())
	}
	return g
}

// Width returns max bag cover size.
func (g *GHD) Width() int {
	w := 0
	for _, b := range g.Bags {
		if len(b.Atoms) > w {
			w = len(b.Atoms)
		}
	}
	return w
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (g *GHD) Depth() int {
	var depth func(i int) int
	depth = func(i int) int {
		d := 0
		for _, c := range g.Children[i] {
			if cd := depth(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return depth(g.Root)
}

// Validate checks the three GHD conditions:
//  1. every atom's variables are contained in some bag whose λ includes
//     the atom;
//  2. each bag's variables are covered by the union of its λ atoms;
//  3. running intersection: for every variable, the bags containing it
//     form a connected subtree.
func (g *GHD) Validate() error {
	q := g.Query
	covered := make([]bool, len(q.Atoms))
	for _, b := range g.Bags {
		vs := map[string]bool{}
		for _, v := range b.Vars {
			vs[v] = true
		}
		// Condition 2.
		av := map[string]bool{}
		for _, ai := range b.Atoms {
			if ai < 0 || ai >= len(q.Atoms) {
				return fmt.Errorf("bag references atom %d out of range", ai)
			}
			for _, v := range q.Atoms[ai].Vars {
				av[v] = true
			}
		}
		for _, v := range b.Vars {
			if !av[v] {
				return fmt.Errorf("bag var %s not covered by its λ atoms", v)
			}
		}
		// Condition 1 (atom fully inside bag).
		for _, ai := range b.Atoms {
			all := true
			for _, v := range q.Atoms[ai].Vars {
				if !vs[v] {
					all = false
					break
				}
			}
			if all {
				covered[ai] = true
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("atom %s not contained in any bag", q.Atoms[i].Name)
		}
	}
	// Condition 3.
	for _, v := range q.Vars() {
		var with []int
		for i, b := range g.Bags {
			for _, bv := range b.Vars {
				if bv == v {
					with = append(with, i)
					break
				}
			}
		}
		if len(with) <= 1 {
			continue
		}
		inSet := map[int]bool{}
		for _, i := range with {
			inSet[i] = true
		}
		// The induced subgraph on `with` must be connected under tree
		// edges. BFS from with[0].
		seen := map[int]bool{with[0]: true}
		queue := []int{with[0]}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			var adj []int
			if p := g.Parent[cur]; p >= 0 && inSet[p] {
				adj = append(adj, p)
			}
			for _, c := range g.Children[cur] {
				if inSet[c] {
					adj = append(adj, c)
				}
			}
			for _, nb := range adj {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(seen) != len(with) {
			return fmt.Errorf("variable %s violates running intersection", v)
		}
	}
	return nil
}

// FromJoinTree converts a width-1 join tree (from GYO) into a GHD: one
// bag per atom, λ = that atom.
func FromJoinTree(jt *JoinTree) *GHD {
	q := jt.Query
	bags := make([]Bag, len(q.Atoms))
	for i, a := range q.Atoms {
		bags[i] = Bag{Vars: append([]string(nil), a.Vars...), Atoms: []int{i}}
	}
	return NewGHD(q, bags, append([]int(nil), jt.Parent...))
}

// PathChainGHD returns the width-1, depth-(n-1) chain decomposition of
// the path-n query (slide 79, left).
func PathChainGHD(n int) *GHD {
	q := Path(n)
	bags := make([]Bag, n)
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		bags[i] = Bag{Vars: q.Atoms[i].Vars, Atoms: []int{i}}
		parent[i] = i - 1
	}
	return NewGHD(q, bags, parent)
}

// PathFlatGHD returns the width-⌈n/2⌉, depth-1 decomposition of the
// path-n query: the root bag is covered by the odd atoms (which jointly
// contain every variable), and each even atom hangs off the root as a
// width-1 leaf (slide 95, middle).
func PathFlatGHD(n int) *GHD {
	q := Path(n)
	var rootAtoms []int
	rootVars := map[string]bool{}
	for i := 0; i < n; i += 2 {
		rootAtoms = append(rootAtoms, i)
		for _, v := range q.Atoms[i].Vars {
			rootVars[v] = true
		}
	}
	// If n is even the last atom R_n has an endpoint A_n not covered by
	// odd atoms; include it in the root cover.
	if n%2 == 0 {
		rootAtoms = append(rootAtoms, n-1)
		for _, v := range q.Atoms[n-1].Vars {
			rootVars[v] = true
		}
	}
	var rv []string
	for _, v := range q.Vars() {
		if rootVars[v] {
			rv = append(rv, v)
		}
	}
	bags := []Bag{{Vars: rv, Atoms: rootAtoms}}
	parent := []int{-1}
	for i := 1; i < n; i += 2 {
		if n%2 == 0 && i == n-1 {
			break
		}
		bags = append(bags, Bag{Vars: q.Atoms[i].Vars, Atoms: []int{i}})
		parent = append(parent, 0)
	}
	return NewGHD(q, bags, parent)
}

// PathBalancedGHD returns a width-≤3, depth-O(log n) decomposition of
// the path-n query (slide 95, right): the bag for the atom interval
// [lo,hi] is covered by {R_lo, R_mid, R_hi} and recurses on the two
// halves.
func PathBalancedGHD(n int) *GHD {
	q := Path(n)
	var bags []Bag
	var parent []int
	var build func(lo, hi, par int) int
	build = func(lo, hi, par int) int {
		idx := len(bags)
		bags = append(bags, Bag{})
		parent = append(parent, par)
		if hi-lo <= 2 {
			atoms := []int{}
			vars := map[string]bool{}
			for i := lo; i <= hi; i++ {
				atoms = append(atoms, i)
				for _, v := range q.Atoms[i].Vars {
					vars[v] = true
				}
			}
			bags[idx] = Bag{Vars: sortedVars(q, vars), Atoms: atoms}
			return idx
		}
		mid := (lo + hi) / 2
		atoms := []int{lo, mid, hi}
		vars := map[string]bool{}
		for _, ai := range atoms {
			for _, v := range q.Atoms[ai].Vars {
				vars[v] = true
			}
		}
		bags[idx] = Bag{Vars: sortedVars(q, vars), Atoms: atoms}
		if mid > lo {
			build(lo, mid, idx)
		}
		if hi > mid {
			build(mid, hi, idx)
		}
		return idx
	}
	build(0, n-1, -1)
	return NewGHD(q, bags, parent)
}

func sortedVars(q Query, set map[string]bool) []string {
	var out []string
	for _, v := range q.Vars() {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}
