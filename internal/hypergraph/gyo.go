package hypergraph

// GYO (Graham / Yu–Ozsoyoglu) ear removal: a query is α-acyclic iff
// repeatedly removing "ears" empties it. An atom A is an ear with
// witness B ≠ A if every variable of A shared with any *other* atom also
// occurs in B. The removal order yields a join tree with each ear's
// witness as its parent — exactly the structure Yannakakis consumes.

// JoinTree is a rooted tree over the atoms of an acyclic query.
type JoinTree struct {
	Query Query
	// Parent[i] is the parent atom index of atom i, or -1 for the root.
	Parent []int
	// Children[i] lists the child atom indices of atom i.
	Children [][]int
	// Root is the root atom index.
	Root int
}

// IsAcyclic runs GYO reduction. If the query is α-acyclic it returns
// (true, join tree); otherwise (false, nil).
func IsAcyclic(q Query) (bool, *JoinTree) {
	n := len(q.Atoms)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	removed := 0
	for removed < n-1 {
		earFound := false
		for i := 0; i < n && !earFound; i++ {
			if !alive[i] {
				continue
			}
			// Collect variables of i shared with another alive atom.
			shared := map[string]bool{}
			for _, v := range q.Atoms[i].Vars {
				for j := 0; j < n; j++ {
					if j != i && alive[j] && q.Atoms[j].HasVar(v) {
						shared[v] = true
						break
					}
				}
			}
			// Find a witness containing all shared vars.
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				ok := true
				for v := range shared {
					if !q.Atoms[j].HasVar(v) {
						ok = false
						break
					}
				}
				if ok {
					parent[i] = j
					alive[i] = false
					removed++
					earFound = true
					break
				}
			}
		}
		if !earFound {
			return false, nil
		}
	}
	root := -1
	for i := range alive {
		if alive[i] {
			root = i
			break
		}
	}
	root, parent = rerootMinHeight(n, parent, root)
	parent = hoistShallow(q, parent, root)
	root, parent = rerootMinHeight(n, parent, root)
	children := make([][]int, n)
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	return true, &JoinTree{Query: q, Parent: parent, Children: children, Root: root}
}

// hoistShallow flattens the join tree: node i with parent p can be
// re-parented to its grandparent g whenever every variable i shares
// with p also occurs in g. The connector vars(i) ∩ vars(p) are exactly
// the variables i shares with anything outside its subtree (by the
// running intersection property), so the move preserves join-tree
// validity. Iterating to fixpoint turns, e.g., the chain GYO produces
// for a star query into the natural depth-1 star.
func hoistShallow(q Query, parent []int, root int) []int {
	n := len(parent)
	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			p := parent[i]
			if p < 0 || parent[p] < 0 {
				continue
			}
			g := parent[p]
			ok := true
			for _, v := range q.Atoms[i].Vars {
				if q.Atoms[p].HasVar(v) && !q.Atoms[g].HasVar(v) {
					ok = false
					break
				}
			}
			if ok {
				parent[i] = g
				changed = true
			}
		}
	}
	_ = root
	return parent
}

// rerootMinHeight re-roots the tree at a center vertex, minimizing its
// height. A join tree remains a join tree under re-rooting (the running
// intersection property is undirected), and a shallower tree means fewer
// rounds for the level-parallel GYM phases.
func rerootMinHeight(n int, parent []int, root int) (newRoot int, newParent []int) {
	if n == 1 {
		return root, parent
	}
	adj := make([][]int, n)
	for i, p := range parent {
		if p >= 0 {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	height := func(r int) int {
		depth := make([]int, n)
		for i := range depth {
			depth[i] = -1
		}
		depth[r] = 0
		queue := []int{r}
		h := 0
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if depth[cur] > h {
				h = depth[cur]
			}
			for _, nb := range adj[cur] {
				if depth[nb] < 0 {
					depth[nb] = depth[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		return h
	}
	best, bestH := root, height(root)
	for r := 0; r < n; r++ {
		if h := height(r); h < bestH {
			best, bestH = r, h
		}
	}
	// Rebuild parent pointers from the new root.
	newParent = make([]int, n)
	for i := range newParent {
		newParent[i] = -2
	}
	newParent[best] = -1
	queue := []int{best}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if newParent[nb] == -2 {
				newParent[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	return best, newParent
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (jt *JoinTree) Depth() int {
	var depth func(i int) int
	depth = func(i int) int {
		d := 0
		for _, c := range jt.Children[i] {
			if cd := depth(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return depth(jt.Root)
}

// Levels returns atom indices grouped by depth, root first. Used by the
// optimized GYM to run all semijoins of one level in a single round.
func (jt *JoinTree) Levels() [][]int {
	var levels [][]int
	var walk func(i, d int)
	walk = func(i, d int) {
		for len(levels) <= d {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], i)
		for _, c := range jt.Children[i] {
			walk(c, d+1)
		}
	}
	walk(jt.Root, 0)
	return levels
}

// PostOrder returns atom indices in post-order (children before
// parents); the upward semijoin phase visits atoms in this order.
func (jt *JoinTree) PostOrder() []int {
	var out []int
	var walk func(i int)
	walk = func(i int) {
		for _, c := range jt.Children[i] {
			walk(c)
		}
		out = append(out, i)
	}
	walk(jt.Root)
	return out
}

// PreOrder returns atom indices in pre-order (parents before children).
func (jt *JoinTree) PreOrder() []int {
	var out []int
	var walk func(i int)
	walk = func(i int) {
		out = append(out, i)
		for _, c := range jt.Children[i] {
			walk(c)
		}
	}
	walk(jt.Root)
	return out
}
