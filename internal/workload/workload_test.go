package workload

import (
	"testing"

	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
)

func TestMatching(t *testing.T) {
	r := Matching("R", []string{"x", "y"}, 5)
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		row := r.Row(i)
		if row[0] != relation.Value(i) || row[1] != relation.Value(i) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
	// Every value has degree exactly 1.
	if stats.DegreesOf(r, "x").Max() != 1 {
		t.Fatal("matching relation has skew")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform("R", []string{"x", "y"}, 100, 50, 7)
	b := Uniform("R", []string{"x", "y"}, 100, 50, 7)
	if !a.EqualAsSets(b) || a.Len() != 100 {
		t.Fatal("uniform not deterministic")
	}
	c := Uniform("R", []string{"x", "y"}, 100, 50, 8)
	if c.EqualAsSets(a) {
		t.Fatal("different seeds gave identical data")
	}
}

func TestUniformDegree(t *testing.T) {
	r := UniformDegree("R", "y", "p", 100, 5)
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	d := stats.DegreesOf(r, "y")
	if len(d) != 20 {
		t.Fatalf("distinct keys = %d, want 20", len(d))
	}
	for v, n := range d {
		if n != 5 {
			t.Fatalf("key %d degree = %d, want 5", v, n)
		}
	}
	// Payloads unique.
	if stats.DegreesOf(r, "p").Max() != 1 {
		t.Fatal("payloads not unique")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible n")
		}
	}()
	UniformDegree("R", "y", "p", 10, 3)
}

func TestZipfSkewed(t *testing.T) {
	r := Zipf("R", []string{"y", "p"}, 10000, 1000, 1.5, 3)
	if r.Len() != 10000 {
		t.Fatalf("len = %d", r.Len())
	}
	d := stats.DegreesOf(r, "y")
	// Zipf concentrates mass: max degree far above uniform expectation.
	if d.Max() < 1000 {
		t.Fatalf("zipf max degree = %d; expected strong skew", d.Max())
	}
}

func TestPlantHeavy(t *testing.T) {
	r := PlantHeavy("R", "y", "p", 10, 1000, []relation.Value{7, 8}, []int{20, 5})
	if r.Len() != 35 {
		t.Fatalf("len = %d", r.Len())
	}
	d := stats.DegreesOf(r, "y")
	if d[7] != 20 || d[8] != 5 {
		t.Fatalf("heavy degrees = %v", d)
	}
	if stats.DegreesOf(r, "p").Max() != 1 {
		t.Fatal("payloads not unique")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched heavy spec")
		}
	}()
	PlantHeavy("R", "y", "p", 1, 0, []relation.Value{1}, []int{1, 2})
}

func TestRandomGraph(t *testing.T) {
	g := RandomGraph("E", "a", "b", 50, 200, 11)
	if g.Len() != 200 {
		t.Fatalf("edges = %d", g.Len())
	}
	// Distinct, no self-loops.
	seen := map[[2]relation.Value]bool{}
	for i := 0; i < g.Len(); i++ {
		row := g.Row(i)
		if row[0] == row[1] {
			t.Fatal("self loop")
		}
		e := [2]relation.Value{row[0], row[1]}
		if seen[e] {
			t.Fatal("duplicate edge")
		}
		seen[e] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for impossible m")
		}
	}()
	RandomGraph("E", "a", "b", 3, 100, 1)
}

func TestTriangleInputConsistent(t *testing.T) {
	r, s, u := TriangleInput(30, 100, 5)
	if r.Len() != 100 || s.Len() != 100 || u.Len() != 100 {
		t.Fatal("sizes differ")
	}
	// R and S hold the same pairs under different schemas.
	if !r.Project("p", "x", "y").EqualAsSets(s.Project("p", "y", "z").Rename("p")) {
		// Projections rename attrs; compare raw pair sets instead.
		pairsR := map[[2]relation.Value]bool{}
		for i := 0; i < r.Len(); i++ {
			pairsR[[2]relation.Value{r.Row(i)[0], r.Row(i)[1]}] = true
		}
		for i := 0; i < s.Len(); i++ {
			if !pairsR[[2]relation.Value{s.Row(i)[0], s.Row(i)[1]}] {
				t.Fatal("R and S differ as edge sets")
			}
		}
	}
}

func TestTriangleWithPlantedTriangles(t *testing.T) {
	r, s, u := TriangleWithPlantedTriangles(20, 50, 4, 9)
	out := relation.GenericJoin("Tri", []string{"x", "y", "z"}, r, s, u)
	if out.Len() < 4 {
		t.Fatalf("only %d triangles; planted 4", out.Len())
	}
}

func TestPathInput(t *testing.T) {
	rels := PathInput(4, 10)
	if len(rels) != 4 {
		t.Fatal("wrong count")
	}
	out := relation.MultiJoin("J", rels[0], rels[1], rels[2], rels[3])
	if out.Len() != 10 {
		t.Fatalf("path join out = %d, want 10 (matchings never grow)", out.Len())
	}
}

func TestStarInput(t *testing.T) {
	rels := StarInput(3, 60, 4, 2)
	if len(rels) != 3 {
		t.Fatal("wrong count")
	}
	for i, r := range rels {
		if r.Len() != 60 {
			t.Fatalf("rel %d size %d", i, r.Len())
		}
		if r.Col("A0") < 0 {
			t.Fatalf("rel %d missing hub", i)
		}
	}
	out := relation.MultiJoin("J", rels[0], rels[1], rels[2])
	if out.Len() == 0 {
		t.Fatal("star join empty; hubs should collide")
	}
}

func TestSlideTreeInput(t *testing.T) {
	rels := SlideTreeInput(50, 3)
	if len(rels) != 5 {
		t.Fatal("want 5 relations")
	}
	for name, r := range rels {
		if r.Len() != 50 {
			t.Fatalf("%s size %d", name, r.Len())
		}
	}
	if rels["R3"].Col("A1") < 0 || rels["R3"].Col("A3") < 0 {
		t.Fatal("R3 schema wrong")
	}
}

func TestPowerLawGraph(t *testing.T) {
	g := PowerLawGraph("E", "a", "b", 2000, 20000, 7)
	if g.Len() != 20000 {
		t.Fatalf("edges = %d", g.Len())
	}
	// Degree distribution must be heavy-tailed: the max degree should
	// far exceed the uniform expectation 2m/n = 20.
	d := stats.DegreesOf(g, "a")
	d.Merge(stats.DegreesOf(g, "b"))
	if d.Max() < 200 {
		t.Fatalf("max degree = %d; preferential attachment should produce hubs", d.Max())
	}
	// No self loops.
	for i := 0; i < g.Len(); i++ {
		if g.Row(i)[0] == g.Row(i)[1] {
			t.Fatal("self loop")
		}
	}
	// Deterministic.
	g2 := PowerLawGraph("E", "a", "b", 2000, 20000, 7)
	if !g.EqualAsSets(g2) {
		t.Fatal("not deterministic")
	}
}
