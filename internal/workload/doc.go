// Package workload generates the synthetic inputs every experiment in
// this repository runs on: skew-free (matching) relations, uniform and
// Zipf-distributed relations, relations with planted heavy hitters,
// random graphs for triangle queries, and path/star instances. All
// generators are deterministic given a seed; experiments cite their
// generator and parameters so results are reproducible.
//
// The adversarial shapes live next to the benign ones on purpose: the
// planted-heavy and power-law generators here feed the skew
// experiments, while internal/testkit's GenMispredicted builds the
// interleaved emerging-heavy-hitter instances the adaptive executor's
// differential tests run on.
package workload
