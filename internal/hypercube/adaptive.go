package hypercube

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
	"mpcquery/internal/trace"
)

// AdaptiveConfig tunes the skew-reactive executor. The zero value
// selects the defaults documented per field.
type AdaptiveConfig struct {
	// ProbeFraction is the fraction of each server's input fragment
	// routed in the metered probe round (default 0.15). The probe's
	// receive vector is the feedback signal; a mispredicted-skew run
	// pays only ProbeFraction of the bad plan's load before switching.
	ProbeFraction float64
	// MaxImbalance triggers a switch when the probe's max/mean receive
	// ratio exceeds it (default 2.0). Negative disables the trigger;
	// zero selects the default.
	MaxImbalance float64
	// MaxGini triggers a switch when the probe's receive Gini
	// coefficient exceeds it (default 0.4). Negative disables the
	// trigger; zero selects the default.
	MaxGini float64
	// Threshold is the full-input heavy-hitter degree threshold the
	// switch confirmation (and any SkewHC run it triggers) uses;
	// ≤ 0 means N_max/p, exactly as RunSkewHC defaults.
	Threshold int
	// Alg selects the local join algorithm (default LocalGeneric).
	Alg LocalAlg
}

func (cfg AdaptiveConfig) withDefaults() AdaptiveConfig {
	if cfg.ProbeFraction <= 0 || cfg.ProbeFraction >= 1 {
		cfg.ProbeFraction = 0.15
	}
	if cfg.MaxImbalance == 0 {
		cfg.MaxImbalance = 2.0
	}
	if cfg.MaxGini == 0 {
		cfg.MaxGini = 0.4
	}
	return cfg
}

// AdaptiveResult describes one adaptive execution.
type AdaptiveResult struct {
	OutName string
	Rounds  int
	// Switched reports whether the run abandoned the uniform plan.
	Switched bool
	// Signal is the probe round's receive summary — the evidence the
	// decision was made on.
	Signal stats.RecvSignal
	// Reason is the human-readable decision; when the run switched it
	// is also recorded as a trace "adapt" event.
	Reason string
	// Plan is the uniform HyperCube plan the probe routed under.
	Plan *Plan
	// SkewHC is the skew-path result when Switched, nil otherwise.
	SkewHC *Result
}

// probeCount returns how many of a fragment's n tuples the probe
// routes: ceil(frac·n), so every non-empty fragment contributes.
func probeCount(n int, frac float64) int {
	if n <= 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// probeHeavyVars counts per-variable value degrees over exactly the
// prefix of each fragment the probe routed and returns (sorted) the
// variables with at least one heavy hitter at the sample-scaled
// threshold. Driver-side and deterministic: it reads the same
// committed fragments every replay sees.
func probeHeavyVars(c *mpc.Cluster, q hypergraph.Query, frac float64, sampledThr int) []string {
	var heavy []string
	for _, v := range q.Vars() {
		agg := stats.Degrees{}
		for _, a := range q.Atoms {
			if !a.HasVar(v) {
				continue
			}
			for i := 0; i < c.P(); i++ {
				frag := c.Server(i).Rel(a.Name)
				if frag == nil {
					continue
				}
				col := frag.MustCol(v)
				for j := 0; j < probeCount(frag.Len(), frac); j++ {
					agg[frag.Row(j)[col]]++
				}
			}
		}
		if len(agg.HeavyHitters(sampledThr)) > 0 {
			heavy = append(heavy, v)
		}
	}
	sort.Strings(heavy)
	return heavy
}

// RunAdaptive executes the skew-reactive HyperCube driver:
//
//	round 1 (adaptive:probe): each server routes the first
//	    ProbeFraction of its fragment under the uniform LP-optimal
//	    plan. The round is fully metered, so its receive vector is
//	    exactly the load signal a static uniform run would have
//	    produced on that prefix.
//	decision: the driver summarizes the probe's receive vector
//	    (stats.FromRecv — max, imbalance, Gini) and, if it crosses the
//	    configured thresholds, confirms by counting heavy hitters on
//	    the probed prefix at the sample-scaled threshold
//	    (stats.SampledThreshold). Both inputs are deterministic
//	    functions of the committed round, so the decision — and hence
//	    the whole run — replays bit-identically, including under chaos
//	    recovery (recovery commits the same receive vector a
//	    fault-free round would).
//	switch: the probe's partial shuffle is discarded (DeleteAll on the
//	    probe streams), an "adapt" event is traced, and RunSkewHC runs
//	    on the same cluster with the same seed and threshold. SkewHC
//	    re-prepares and re-scatters its inputs itself; since
//	    ScatterRoundRobin is deterministic and replaces fragments by
//	    name, every fragment, round stat, and output row from this
//	    point on is bit-identical to a run that chose the skew path up
//	    front — the property the testkit adaptive differential pins.
//	no switch: round 2 (adaptive:remainder) routes the remaining
//	    tuples under the same uniform plan and the local join runs as
//	    usual; the output is the uniform HyperCube answer (as a bag —
//	    the two-round split changes only arrival order).
func RunAdaptive(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	cfg = cfg.withDefaults()
	p := c.P()

	sizes := map[string]int64{}
	maxN := 0
	for _, a := range q.Atoms {
		n := rels[a.Name].Len()
		if n > maxN {
			maxN = n
		}
		sizes[a.Name] = int64(n)
		if sizes[a.Name] == 0 {
			sizes[a.Name] = 1 // LP needs positive sizes
		}
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = maxN / p
		if threshold < 1 {
			threshold = 1
		}
	}

	pl, err := NewPlan(q, sizes, p, seed)
	if err != nil {
		return nil, err
	}
	prepped := prepare(q, rels)
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(prepped[a.Name])
	}
	trace.Annotatef(c, "hypercube.RunAdaptive %s probe %.0f%% shares %v", q.Name, cfg.ProbeFraction*100, pl.Shares)
	start := c.Metrics().Rounds()

	// Round 1: metered probe over each fragment's prefix.
	atoms := q.Atoms
	frac := cfg.ProbeFraction
	c.Round("adaptive:probe", func(srv *mpc.Server, out *mpc.Out) {
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			st := out.Open(outName+":"+a.Name, a.Vars...)
			for i := 0; i < probeCount(frag.Len(), frac); i++ {
				row := frag.Row(i)
				pl.RouteTuple(a, row, 0, func(server int) {
					st.SendRow(server, row)
				})
			}
		}
	})

	// Decision: probe receive skew, confirmed by emerging heavy hitters.
	probeRound := c.Metrics().Rounds() - 1
	st := c.Metrics().RoundStats()[probeRound]
	signal := stats.FromRecv(st.Recv)
	res := &AdaptiveResult{OutName: outName, Signal: signal, Plan: pl}

	switched := false
	if signal.Skewed(cfg.MaxImbalance, cfg.MaxGini) {
		sampledThr := stats.SampledThreshold(threshold, frac)
		if heavy := probeHeavyVars(c, q, frac, sampledThr); len(heavy) > 0 {
			switched = true
			res.Reason = fmt.Sprintf("probe skewed (%s), heavy vars [%s] at sampled threshold %d",
				signal, strings.Join(heavy, " "), sampledThr)
		} else {
			res.Reason = fmt.Sprintf("probe skewed (%s) but no heavy hitters at sampled threshold %d",
				signal, sampledThr)
		}
	} else {
		res.Reason = fmt.Sprintf("probe balanced (%s)", signal)
	}

	if switched {
		// Discard the probe's partial shuffle and hand the cluster to
		// the skew path. From here on the run is byte-for-byte a
		// static SkewHC execution.
		for _, a := range q.Atoms {
			c.DeleteAll(outName + ":" + a.Name)
		}
		if tr := c.Tracer(); tr != nil {
			tr.Adapt(probeRound, res.Reason, signal.MaxRecv, signal.Gini)
		}
		trace.Annotatef(c, "adaptive: switching to SkewHC after probe round %d", probeRound)
		sk, err := RunSkewHC(c, q, rels, outName, seed, threshold, cfg.Alg)
		if err != nil {
			return nil, fmt.Errorf("adaptive switch: %w", err)
		}
		res.Switched = true
		res.SkewHC = sk
		res.Rounds = c.Metrics().Rounds() - start
		return res, nil
	}

	// Round 2: route the remaining tuples under the same plan; the
	// streams accumulate onto the probe's deliveries.
	c.Round("adaptive:remainder", func(srv *mpc.Server, out *mpc.Out) {
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			st := out.Open(outName+":"+a.Name, a.Vars...)
			for i := probeCount(frag.Len(), frac); i < frag.Len(); i++ {
				row := frag.Row(i)
				pl.RouteTuple(a, row, 0, func(server int) {
					st.SendRow(server, row)
				})
			}
		}
	})
	localJoin(c, q, outName, "", cfg.Alg)
	res.Rounds = c.Metrics().Rounds() - start
	return res, nil
}
