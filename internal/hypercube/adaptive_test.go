package hypercube

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Adaptive-executor tests: the skew-reactive driver must switch on
// mispredicted-skew inputs and then be bit-identical to the static
// skew path, must not switch on skew-free inputs, and must keep both
// properties under fault injection.

func adaptiveAlgo(cfg AdaptiveConfig) testkit.AdaptiveAlgo {
	return func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) (bool, error) {
		res, err := RunAdaptive(c, q, rels, outName, seed, cfg)
		if err != nil {
			return false, err
		}
		return res.Switched, nil
	}
}

// adaptiveCfg shapes instances so the probe's evidence is decisive at
// the default thresholds: every second row carries the planted heavy
// value, so a 15% prefix of any fragment already shows the hitter at
// several times the sample-scaled threshold. p must be large enough
// that the heavy slab (p/share_v servers) is a small fraction of the
// cluster — max/mean is bounded by the slab ratio, so tiny clusters
// cannot show imbalance 2 on a single heavy variable by construction.
func adaptiveCfg(ps ...int) testkit.Config {
	return testkit.Config{
		Ps:    ps,
		Seeds: []int64{1, 2, 3},
		Gen:   testkit.GenConfig{Tuples: 480, HeavyFrac: 0.5},
	}
}

func TestAdaptiveDiffTriangle(t *testing.T) {
	testkit.RunAdaptiveDiff(t, hypergraph.Triangle(), adaptiveCfg(16),
		adaptiveAlgo(AdaptiveConfig{}), skewHCAlgo(LocalGeneric))
}

// TestAdaptiveDiffStar covers the sharpest mispredicted case: the
// star's center variable takes the whole share budget, so its heavy
// value confines every relation to a single server under the uniform
// plan. The heavy fraction is kept low (20%) because the star's heavy
// output is the cube of the heavy row count.
func TestAdaptiveDiffStar(t *testing.T) {
	cfg := adaptiveCfg(16)
	cfg.Gen = testkit.GenConfig{Tuples: 240, HeavyFrac: 0.2}
	testkit.RunAdaptiveDiff(t, hypergraph.Star(3), cfg,
		adaptiveAlgo(AdaptiveConfig{}), skewHCAlgo(LocalGeneric))
}

func TestAdaptiveChaosDiff(t *testing.T) {
	cfg := adaptiveCfg(16)
	cfg.Seeds = []int64{1, 2}
	testkit.RunAdaptiveChaos(t, hypergraph.Triangle(), cfg, adaptiveAlgo(AdaptiveConfig{}))
}

// TestAdaptiveBeatsStaticUniformOnMispredictedSkew is the E28 claim at
// test scale: on an input whose skew a static uniform plan would eat
// in full, the adaptive run's max load — probe round included — is
// strictly lower, because only the ProbeFraction prefix is routed
// under the bad plan before the switch.
func TestAdaptiveBeatsStaticUniformOnMispredictedSkew(t *testing.T) {
	q := hypergraph.Star(3)
	const p, seed = 16, 3
	rels := testkit.GenMispredicted(q, testkit.GenConfig{Tuples: 240, HeavyFrac: 0.2}, seed)

	cu := mpc.NewCluster(p, seed)
	if _, err := Run(cu, q, rels, "out", 42, LocalGeneric); err != nil {
		t.Fatalf("uniform run failed: %v", err)
	}
	uniformL := cu.Metrics().MaxLoad()

	ca := mpc.NewCluster(p, seed)
	res, err := RunAdaptive(ca, q, rels, "out", 42, AdaptiveConfig{})
	if err != nil {
		t.Fatalf("adaptive run failed: %v", err)
	}
	if !res.Switched {
		t.Fatalf("adaptive run did not switch: %s", res.Reason)
	}
	adaptiveL := ca.Metrics().MaxLoad()
	if adaptiveL >= uniformL {
		t.Errorf("adaptive L = %d not below static uniform L = %d (%s)", adaptiveL, uniformL, res.Reason)
	}
}

// TestAdaptiveNoSwitchMatchesUniformBag pins the no-switch contract
// beyond the harness: the probe+remainder split must deliver exactly
// the tuples the one-round uniform shuffle delivers (same total
// communication), only spread over two rounds.
func TestAdaptiveNoSwitchMatchesUniformBag(t *testing.T) {
	q := hypergraph.Triangle()
	const p, seed = 4, 1
	rels := testkit.GenInstance(q, testkit.SkewNone, testkit.GenConfig{Tuples: 120}, seed)

	cu := mpc.NewCluster(p, seed)
	if _, err := Run(cu, q, rels, "out", 7, LocalGeneric); err != nil {
		t.Fatalf("uniform run failed: %v", err)
	}
	ca := mpc.NewCluster(p, seed)
	res, err := RunAdaptive(ca, q, rels, "out", 7, AdaptiveConfig{})
	if err != nil {
		t.Fatalf("adaptive run failed: %v", err)
	}
	if res.Switched {
		t.Fatalf("switched on skew-free input: %s", res.Reason)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	if got, want := ca.Metrics().TotalComm(), cu.Metrics().TotalComm(); got != want {
		t.Errorf("total communication %d, uniform one-round run %d", got, want)
	}
	got := testkit.GatherResult(ca, "out", q.Vars())
	want := testkit.GatherResult(cu, "out", q.Vars())
	if !testkit.BagEqual(got, want) {
		t.Errorf("no-switch output differs from uniform run: %s", testkit.DiffSample(got, want))
	}
}

// TestProbeCount pins the probe sizing at its edges.
func TestProbeCount(t *testing.T) {
	tests := []struct {
		n    int
		frac float64
		want int
	}{
		{0, 0.15, 0},
		{1, 0.15, 1},  // non-empty fragments always contribute
		{10, 0.15, 2}, // ceil
		{100, 0.15, 15},
		{3, 0.9, 3},
		{5, 1, 5},
	}
	for _, tc := range tests {
		if got := probeCount(tc.n, tc.frac); got != tc.want {
			t.Errorf("probeCount(%d, %g) = %d, want %d", tc.n, tc.frac, got, tc.want)
		}
	}
}
