package hypercube

import (
	"fmt"

	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// HetPlan is a HyperCube share assignment for a cluster of machines
// with unequal capacity (arXiv 2501.08896). Instead of one grid cell
// per server, the shares are optimized for a finer virtual grid
// (several cells per unit of the fastest machine's capacity) and the
// cells are apportioned to physical servers proportionally to
// capacity — a fast machine owns more corners of the hypercube, so
// max load normalized by capacity drops below the uniform assignment.
type HetPlan struct {
	*Plan
	// Capacities is the per-server capacity profile the cells were
	// apportioned against.
	Capacities []float64
	// Owner maps each grid cell (the Plan addresses cells 0..G-1) to
	// the physical server that hosts it. Contiguous blocks, sized by
	// cost.ApportionCells, so the mapping is deterministic.
	Owner []int
}

// hetCellsPerServer is the virtual-grid refinement factor: the share
// LP plans for ~4 cells per physical server, giving the apportionment
// enough granularity to track fractional capacity ratios without
// exploding replication (each extra factor of cells costs at most one
// extra replica per unfixed dimension).
const hetCellsPerServer = 4

// NewHetPlan computes shares for the virtual grid and apportions its
// cells across the servers of the capacity profile.
func NewHetPlan(q hypergraph.Query, sizes map[string]int64, caps []float64, seed uint64) (*HetPlan, error) {
	p := len(caps)
	if p == 0 {
		return nil, fmt.Errorf("hypercube: het plan needs a capacity profile")
	}
	pv := hetCellsPerServer * p
	sh, err := fractional.OptimalShares(q, sizes, pv)
	if err != nil {
		return nil, fmt.Errorf("hypercube: het shares: %w", err)
	}
	pl := PlanWithShares(q, sh.Integer, seed)
	g := pl.GridSize()
	counts := cost.ApportionCells(g, caps)
	owner := make([]int, g)
	cell := 0
	for srv, n := range counts {
		for k := 0; k < n; k++ {
			owner[cell] = srv
			cell++
		}
	}
	return &HetPlan{Plan: pl, Capacities: append([]float64(nil), caps...), Owner: owner}, nil
}

// HetResult describes a heterogeneity-aware execution.
type HetResult struct {
	OutName string
	Rounds  int
	Plan    *HetPlan
}

// RunHet executes HyperCube with capacity-proportional cell ownership.
// The capacity profile comes from the cluster (mpc.SetCapacities);
// a cluster without one runs with uniform capacities, which degrades
// to plain HyperCube on a 4x-refined grid.
//
// Tuples are routed per virtual cell — stream "out:Atom#cell" to the
// cell's owner — and each server joins every cell it owns separately,
// unioning the results. Per-cell joins are required for correctness,
// not just bookkeeping: an atom's tuple fixes only its own variables'
// dimensions, so one server's fragments from two different cells can
// match on paper, but their true output cell belongs to a different
// server; joining cell-by-cell reproduces exactly the one-cell-per-
// server discipline of the uniform algorithm.
func RunHet(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64, alg LocalAlg) (*HetResult, error) {
	p := c.P()
	caps := c.Capacities()
	if caps == nil {
		caps = make([]float64, p)
		for i := range caps {
			caps[i] = 1
		}
	}
	sizes := map[string]int64{}
	for _, a := range q.Atoms {
		sizes[a.Name] = int64(rels[a.Name].Len())
		if sizes[a.Name] == 0 {
			sizes[a.Name] = 1 // LP needs positive sizes
		}
	}
	hp, err := NewHetPlan(q, sizes, caps, seed)
	if err != nil {
		return nil, err
	}
	prepped := prepare(q, rels)
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(prepped[a.Name])
	}
	trace.Annotatef(c, "hypercube.RunHet %s shares %v over %d cells (capacities %v)",
		q.Name, hp.Shares, hp.GridSize(), caps)
	start := c.Metrics().Rounds()

	atoms := q.Atoms
	owner := hp.Owner
	c.Round("het:shuffle", func(srv *mpc.Server, out *mpc.Out) {
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			streams := map[int]*mpc.Stream{}
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				hp.RouteTuple(a, row, 0, func(cell int) {
					st := streams[cell]
					if st == nil {
						st = out.Open(fmt.Sprintf("%s:%s#%d", outName, a.Name, cell), a.Vars...)
						streams[cell] = st
					}
					st.SendRow(owner[cell], row)
				})
			}
		}
	})

	// Per-cell local joins: each server joins each of its cells'
	// fragments independently and unions the results under outName.
	vars := q.Vars()
	c.LocalStep(func(srv *mpc.Server) {
		for cell, own := range owner {
			if own != srv.ID() {
				continue
			}
			inputs := make([]*relation.Relation, len(atoms))
			for i, a := range atoms {
				name := fmt.Sprintf("%s:%s#%d", outName, a.Name, cell)
				inputs[i] = srv.RelOrEmpty(name, a.Vars...)
				srv.Delete(name)
			}
			var joined *relation.Relation
			switch alg {
			case LocalGeneric:
				joined = relation.GenericJoin(outName, vars, inputs...)
			case LocalBinary:
				joined = relation.MultiJoin(outName, inputs...).Project(outName, vars...)
			case LocalLeapfrog:
				joined = relation.LeapfrogJoin(outName, vars, inputs...)
			default:
				panic("hypercube: unknown local algorithm")
			}
			if prev := srv.Rel(outName); prev != nil {
				prev.AppendAll(joined)
			} else {
				srv.Put(joined)
			}
		}
	})
	return &HetResult{OutName: outName, Rounds: c.Metrics().Rounds() - start, Plan: hp}, nil
}
