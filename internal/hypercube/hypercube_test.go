package hypercube

import (
	"math"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

// triangleRels builds triangle-query inputs from a random graph.
func triangleRels(n, m int, seed int64) map[string]*relation.Relation {
	r, s, t := workload.TriangleInput(n, m, seed)
	return map[string]*relation.Relation{"R": r, "S": s, "T": t}
}

// expectedTriangle computes the reference answer locally.
func expectedTriangle(rels map[string]*relation.Relation) *relation.Relation {
	r := rels["R"].Rename("R")
	s := rels["S"].Rename("S")
	t := rels["T"].Rename("T")
	return relation.GenericJoin("want", []string{"x", "y", "z"}, r, s, t)
}

func TestPlanWithSharesValidation(t *testing.T) {
	q := hypergraph.Triangle()
	mustPanic(t, "wrong share count", func() { PlanWithShares(q, []int{2, 2}, 1) })
	mustPanic(t, "zero share", func() { PlanWithShares(q, []int{0, 2, 2}, 1) })
	pl := PlanWithShares(q, []int{2, 3, 4}, 1)
	if pl.GridSize() != 24 {
		t.Fatalf("grid size = %d", pl.GridSize())
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic: %s", what)
		}
	}()
	f()
}

func TestRouteTupleReplication(t *testing.T) {
	// Triangle, shares (2,2,2): an R(x,y) tuple must reach exactly 2
	// servers (the free z dimension), and its coordinates must agree on
	// the hashed x and y dims.
	q := hypergraph.Triangle()
	pl := PlanWithShares(q, []int{2, 2, 2}, 7)
	var targets []int
	pl.RouteTuple(q.Atom("R"), []relation.Value{5, 9}, 0, func(s int) { targets = append(targets, s) })
	if len(targets) != 2 {
		t.Fatalf("R tuple delivered to %d servers, want 2", len(targets))
	}
	// Decode coordinates (strides: x=4, y=2, z=1).
	x0, y0 := targets[0]/4, (targets[0]/2)%2
	x1, y1 := targets[1]/4, (targets[1]/2)%2
	if x0 != x1 || y0 != y1 {
		t.Fatalf("fixed dims differ between copies: %v", targets)
	}
	z0, z1 := targets[0]%2, targets[1]%2
	if z0 == z1 {
		t.Fatalf("free dim not enumerated: %v", targets)
	}
	// A fully-bound output tuple addresses exactly one server.
	var one []int
	full := hypergraph.Atom{Name: "full", Vars: []string{"x", "y", "z"}}
	pl.RouteTuple(full, []relation.Value{5, 9, 1}, 0, func(s int) { one = append(one, s) })
	if len(one) != 1 {
		t.Fatalf("full tuple delivered to %d servers", len(one))
	}
}

func TestHyperCubeTriangleCorrect(t *testing.T) {
	rels := triangleRels(40, 300, 3)
	want := expectedTriangle(rels)
	c := mpc.NewCluster(8, 1)
	res, err := Run(c, hypergraph.Triangle(), rels, "out", 42, LocalGeneric)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (the headline claim)", res.Rounds)
	}
	got := c.Gather("out")
	if got.Len() != want.Len() || !got.EqualAsSets(want) {
		t.Fatalf("triangles: got %d, want %d", got.Len(), want.Len())
	}
}

func TestHyperCubeNoDuplicates(t *testing.T) {
	rels := triangleRels(30, 200, 9)
	c := mpc.NewCluster(27, 1)
	if _, err := Run(c, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	dedup := got.Clone()
	dedup.Dedup()
	if got.Len() != dedup.Len() {
		t.Fatalf("output has duplicates: %d vs %d distinct", got.Len(), dedup.Len())
	}
}

func TestHyperCubeLocalAlgsAgree(t *testing.T) {
	rels := triangleRels(40, 250, 5)
	want := expectedTriangle(rels)
	for _, alg := range []LocalAlg{LocalGeneric, LocalBinary, LocalLeapfrog} {
		c := mpc.NewCluster(8, 1)
		if _, err := Run(c, hypergraph.Triangle(), rels, "out", 42, alg); err != nil {
			t.Fatal(err)
		}
		got := c.Gather("out")
		if !got.EqualAsSets(want) {
			t.Fatalf("alg %d disagrees with reference", alg)
		}
	}
}

func TestHyperCubeSharesAreCubeRootForTriangle(t *testing.T) {
	q := hypergraph.Triangle()
	sizes := map[string]int64{"R": 1000, "S": 1000, "T": 1000}
	pl, err := NewPlan(q, sizes, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range pl.Shares {
		if s != 4 {
			t.Fatalf("share[%d] = %d, want p^{1/3} = 4 (all %v)", i, s, pl.Shares)
		}
	}
}

func TestHyperCubeLoadMatchesTheory(t *testing.T) {
	// Slide 36: load O(N/p^{2/3}) w.h.p. on skew-free input. Use a near-
	// regular graph and p = 8 (shares 2×2×2): expect ~3·N/4 words...
	// per-atom expectation: each server receives N/(share product over
	// atom vars) = N/4 tuples per atom, 3 atoms → 3N/4 total.
	const n, m, p = 2000, 4000, 8
	rels := triangleRels(n, m, 11)
	c := mpc.NewCluster(p, 1)
	if _, err := Run(c, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	load := float64(c.Metrics().MaxLoad())
	expect := 3.0 * m / 4.0
	if load > 1.6*expect {
		t.Fatalf("load %g far above expectation %g", load, expect)
	}
	if load < 0.5*expect {
		t.Fatalf("load %g suspiciously below expectation %g (metering broken?)", load, expect)
	}
}

func TestHyperCubePathQuery(t *testing.T) {
	// Acyclic multiway query through the same API.
	rels := map[string]*relation.Relation{}
	for i, r := range workload.PathInput(3, 50) {
		_ = i
		rels[r.Name()] = r
	}
	q := hypergraph.Path(3)
	c := mpc.NewCluster(8, 1)
	if _, err := Run(c, q, rels, "out", 42, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	if got.Len() != 50 {
		t.Fatalf("path join = %d, want 50", got.Len())
	}
}

func TestHyperCubeCartesianProduct(t *testing.T) {
	// Product(x,z) = R(x) ⋈ S(z): HyperCube's grid must reproduce the
	// slide-28 rectangle behaviour.
	q := hypergraph.CartesianProduct()
	rels := map[string]*relation.Relation{
		"R": workload.Uniform("R", []string{"x"}, 40, 1<<30, 1),
		"S": workload.Uniform("S", []string{"z"}, 60, 1<<30, 2),
	}
	c := mpc.NewCluster(16, 1)
	if _, err := Run(c, q, rels, "out", 42, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	if got.Len() != 40*60 {
		t.Fatalf("product = %d, want %d", got.Len(), 2400)
	}
}

func TestSkewHCCorrectOnSkewedTriangle(t *testing.T) {
	// Plant a heavy hub vertex: many edges share vertex 0.
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	addEdge := func(a, b relation.Value) { r.Append(a, b); s.Append(a, b); u.Append(a, b) }
	// Hub: vertex 0 connects to 1..80; plus a ring of triangles.
	for i := relation.Value(1); i <= 80; i++ {
		addEdge(0, i)
		addEdge(i, 0)
	}
	for i := relation.Value(100); i < 130; i += 3 {
		addEdge(i, i+1)
		addEdge(i+1, i+2)
		addEdge(i+2, i)
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	want := expectedTriangle(rels)
	c := mpc.NewCluster(8, 1)
	res, err := RunSkewHC(c, hypergraph.Triangle(), rels, "out", 42, 0, LocalGeneric)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	got := c.Gather("out")
	if got.Len() != want.Len() || !got.EqualAsSets(want) {
		t.Fatalf("skewHC triangles: got %d, want %d", got.Len(), want.Len())
	}
}

func TestSkewHCNoDuplicatesAcrossPatterns(t *testing.T) {
	// Duplicates across pattern sub-joins are the classic SkewHC bug;
	// build data where heavy and light values interact densely.
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	for i := relation.Value(0); i < 40; i++ {
		r.Append(0, i%5)
		s.Append(i%5, i%7)
		u.Append(i%7, 0)
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	want := expectedTriangle(rels)
	want.Dedup()
	c := mpc.NewCluster(8, 1)
	if _, err := RunSkewHC(c, hypergraph.Triangle(), rels, "out", 42, 4, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	gotD := got.Clone()
	gotD.Dedup()
	if got.Len() != gotD.Len() {
		t.Fatalf("SkewHC produced duplicates: %d vs %d distinct", got.Len(), gotD.Len())
	}
	// R,S,T here are bags with duplicates? No — values repeat but tuples
	// may repeat; compare sets.
	if !gotD.EqualAsSets(want) {
		t.Fatal("SkewHC result set differs from reference")
	}
}

func TestSkewHCMatchesPlainOnUniformData(t *testing.T) {
	rels := triangleRels(60, 400, 13)
	want := expectedTriangle(rels)
	c := mpc.NewCluster(8, 1)
	if _, err := RunSkewHC(c, hypergraph.Triangle(), rels, "out", 42, 0, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	if !got.EqualAsSets(want) {
		t.Fatal("SkewHC wrong on uniform data")
	}
}

func TestSkewHCBeatsPlainHCUnderSkew(t *testing.T) {
	// The HyperCube skew pathology (slide 46): a heavy value of x
	// confines all of R and T to the x = h(0) slab of the cube, whose
	// p^{2/3} servers absorb everything. SkewHC detects x = 0 as heavy,
	// gives x share 1 in that pattern, and re-spreads R by y and T by z.
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	const k = 2048
	for i := relation.Value(0); i < k; i++ {
		r.Append(0, i)         // x always the heavy 0
		u.Append(i, 0)         // same for T's x
		s.Append(i, (i*7+3)%k) // pseudo-random permutation pairs
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	want := expectedTriangle(rels)

	cPlain := mpc.NewCluster(64, 1)
	if _, err := Run(cPlain, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	plainLoad := cPlain.Metrics().MaxLoad()
	if !cPlain.Gather("out").EqualAsSets(want) {
		t.Fatal("plain HC wrong")
	}

	cSkew := mpc.NewCluster(64, 1)
	if _, err := RunSkewHC(cSkew, hypergraph.Triangle(), rels, "out", 42, 0, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	skewLoad := cSkew.Metrics().MaxLoadOfRound("skewhc:shuffle")
	if !cSkew.Gather("out").EqualAsSets(want) {
		t.Fatal("SkewHC wrong")
	}
	if skewLoad >= plainLoad {
		t.Fatalf("SkewHC shuffle load %d should beat plain HC load %d under skew", skewLoad, plainLoad)
	}
}

func TestSkewHCPatternShares(t *testing.T) {
	// The slide-48/49/50 table: pattern residual τ* values for the
	// triangle. Find the corresponding patterns in a SkewHC run.
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	for i := relation.Value(0); i < 30; i++ {
		r.Append(i, 0)
		s.Append(0, i)
		u.Append(i, i)
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	c := mpc.NewCluster(64, 1)
	res, err := RunSkewHC(c, hypergraph.Triangle(), rels, "out", 42, 0, LocalGeneric)
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range res.Patterns {
		nHeavy := 0
		for _, h := range pat.Heavy {
			if h {
				nHeavy++
			}
		}
		switch nHeavy {
		case 0:
			if math.Abs(pat.TauRes-1.5) > 1e-6 {
				t.Errorf("light pattern τ* = %g, want 3/2", pat.TauRes)
			}
		case 1:
			if math.Abs(pat.TauRes-2) > 1e-6 {
				t.Errorf("1-heavy pattern τ* = %g, want 2", pat.TauRes)
			}
		case 2:
			if math.Abs(pat.TauRes-1) > 1e-6 {
				t.Errorf("2-heavy pattern τ* = %g, want 1", pat.TauRes)
			}
		}
		// Product of shares within p.
		if pat.Plan.GridSize() > 64 {
			t.Errorf("pattern grid %v exceeds p", pat.Plan.Shares)
		}
	}
}

func TestPrepareValidation(t *testing.T) {
	q := hypergraph.Triangle()
	c := mpc.NewCluster(4, 1)
	mustPanic(t, "missing relation", func() {
		_, _ = Run(c, q, map[string]*relation.Relation{}, "out", 1, LocalGeneric)
	})
	mustPanic(t, "arity mismatch", func() {
		_, _ = Run(c, q, map[string]*relation.Relation{
			"R": relation.New("R", "a"),
			"S": relation.New("S", "a", "b"),
			"T": relation.New("T", "a", "b"),
		}, "out", 1, LocalGeneric)
	})
}
