package hypercube

import (
	"math"
	"sort"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// HeavyLightTriangle implements the multi-round Heavy-Light + Semijoins
// algorithm of slides 58–60 for the triangle query
// Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x):
//
//   - values of z with degree ≥ IN/p^{1/3} are heavy; there are at most
//     O(p^{1/3}) of them;
//   - the light residual (z light) runs as a one-round HyperCube with
//     cubic shares on all p servers — load O(IN/p^{2/3});
//   - each heavy value b gets its own block of p^{2/3} servers, where
//     the residual query q(z=b) = R(x,y) ⋈ S(y,b) ⋈ T(b,x) is computed
//     by two semijoin rounds (R ⋉ S_b by y, then (R ⋉ S_b) ⋉ T_b by x)
//     — also load O(IN/p^{2/3}), because semijoins ship only keys and
//     never grow intermediates.
//
// Total: 2 statistics rounds + 2 compute rounds, L = O(IN/p^{2/3}) even
// under arbitrary skew on z — the worst-case-optimal exponent that the
// one-round SkewHC only matches with its pattern machinery. (Skew on x
// or y is handled by the orthogonal symmetric decomposition; this
// implementation follows the slide's illustration, which designates z.)
func HeavyLightTriangle(c *mpc.Cluster, rels map[string]*relation.Relation, outName string, seed uint64) (*Result, error) {
	q := hypergraph.Triangle()
	prepped := prepare(q, rels)
	p := c.P()
	in := prepped["R"].Len() + prepped["S"].Len() + prepped["T"].Len()
	threshold := int(float64(in) / math.Cbrt(float64(p)))
	if threshold < 1 {
		threshold = 1
	}
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(prepped[a.Name])
	}
	trace.Annotatef(c, "hypercube.HeavyLightTriangle (z threshold %d)", threshold)
	start := c.Metrics().Rounds()

	// Round 1: z-degree summaries (z occurs in S(y,z) and T(z,x)).
	c.Round("hl:degrees", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":zdeg", "z", "d")
		counts := map[relation.Value]int{}
		if frag := srv.Rel("S"); frag != nil {
			col := frag.MustCol("z")
			for i := 0; i < frag.Len(); i++ {
				counts[frag.Row(i)[col]]++
			}
		}
		if frag := srv.Rel("T"); frag != nil {
			col := frag.MustCol("z")
			for i := 0; i < frag.Len(); i++ {
				counts[frag.Row(i)[col]]++
			}
		}
		vals := make([]relation.Value, 0, len(counts))
		for v := range counts {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for _, v := range vals {
			st.Send(relation.Bucket(relation.Hash64(v, seed^0x2f), p), v, relation.Value(counts[v]))
		}
	})
	// Round 2: owners broadcast heavy z values.
	thr := threshold
	c.Round("hl:heavy", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":zheavy", "z")
		deg := srv.Rel(outName + ":zdeg")
		if deg == nil {
			return
		}
		agg := map[relation.Value]int{}
		for i := 0; i < deg.Len(); i++ {
			agg[deg.Row(i)[0]] += int(deg.Row(i)[1])
		}
		vals := make([]relation.Value, 0, len(agg))
		for v := range agg {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for _, v := range vals {
			if agg[v] >= thr {
				st.Broadcast(v)
			}
		}
		srv.Delete(outName + ":zdeg")
	})
	var heavyZ []relation.Value
	if hrel := c.Server(0).Rel(outName + ":zheavy"); hrel != nil {
		for i := 0; i < hrel.Len(); i++ {
			heavyZ = append(heavyZ, hrel.Row(i)[0])
		}
		sort.Slice(heavyZ, func(a, b int) bool { return heavyZ[a] < heavyZ[b] })
	}
	c.DeleteAll(outName + ":zheavy")
	heavySet := map[relation.Value]bool{}
	blockOf := map[relation.Value]int{}
	pb := int(math.Pow(float64(p), 2.0/3.0))
	if pb < 1 {
		pb = 1
	}
	for i, b := range heavyZ {
		heavySet[b] = true
		blockOf[b] = (i * pb) % p // blocks wrap if heavy count exceeds p^{1/3}
	}

	// Light-part HyperCube plan: cubic shares over all p servers.
	share := int(math.Cbrt(float64(p)))
	if share < 1 {
		share = 1
	}
	lightPlan := PlanWithShares(q, []int{share, share, share}, seed)

	// Round 3: main shuffle. Light S/T tuples and all R tuples follow the
	// HyperCube routing; heavy-z tuples go to their value's block — S_b
	// key projections partitioned by h(y), T_b keys pre-placed by h(x)
	// for round 4, and R partitioned by h(y) into every heavy block.
	// R ships once per *block* (several heavy values may share a block
	// when the heavy count exceeds p^{1/3}), never per value, so the
	// block-local join cannot double-count.
	var blocks []int
	{
		seen := map[int]bool{}
		for _, b := range heavyZ {
			if !seen[blockOf[b]] {
				seen[blockOf[b]] = true
				blocks = append(blocks, blockOf[b])
			}
		}
		sort.Ints(blocks)
	}
	c.Round("hl:shuffle", func(srv *mpc.Server, out *mpc.Out) {
		stR := out.Open(outName+":R", "x", "y")
		stS := out.Open(outName+":S", "y", "z")
		stT := out.Open(outName+":T", "z", "x")
		stRb := out.Open(outName+":Rb", "blk", "x", "y")
		stSb := out.Open(outName+":Sb", "blk", "y", "z")
		stTb := out.Open(outName+":Tb", "blk", "x", "z")
		if frag := srv.Rel("R"); frag != nil {
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				lightPlan.RouteTuple(q.Atom("R"), row, 0, func(server int) {
					stR.SendRow(server, row)
				})
				// R participates in every heavy residual; partition by y.
				for _, blk := range blocks {
					dst := (blk + relation.Bucket(relation.Hash64(row[1], seed^0x51), pb)) % c.P()
					stRb.Send(dst, relation.Value(blk), row[0], row[1])
				}
			}
		}
		if frag := srv.Rel("S"); frag != nil {
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i) // (y, z)
				if heavySet[row[1]] {
					blk := blockOf[row[1]]
					dst := (blk + relation.Bucket(relation.Hash64(row[0], seed^0x51), pb)) % c.P()
					stSb.Send(dst, relation.Value(blk), row[0], row[1])
				} else {
					lightPlan.RouteTuple(q.Atom("S"), row, 0, func(server int) {
						stS.SendRow(server, row)
					})
				}
			}
		}
		if frag := srv.Rel("T"); frag != nil {
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i) // (z, x)
				if heavySet[row[0]] {
					blk := blockOf[row[0]]
					// Pre-place T_b keys where round 4 re-partitions R' by x.
					dst := (blk + relation.Bucket(relation.Hash64(row[1], seed^0x52), pb)) % c.P()
					stTb.Send(dst, relation.Value(blk), row[1], row[0])
				} else {
					lightPlan.RouteTuple(q.Atom("T"), row, 0, func(server int) {
						stT.SendRow(server, row)
					})
				}
			}
		}
	})
	// Local: light triangles via generic join; heavy blocks compute
	// R ⋉ S_b per (block, z).
	c.LocalStep(func(srv *mpc.Server) {
		rf := srv.RelOrEmpty(outName+":R", "x", "y").Rename("R")
		sf := srv.RelOrEmpty(outName+":S", "y", "z").Rename("S")
		tf := srv.RelOrEmpty(outName+":T", "z", "x").Rename("T")
		light := relation.GenericJoin(outName, []string{"x", "y", "z"}, rf, sf, tf)
		srv.Put(light)
		for _, n := range []string{":R", ":S", ":T"} {
			srv.Delete(outName + n)
		}
		// Heavy: semijoin R with S_b keys (same y, same block), keeping z.
		rb := srv.RelOrEmpty(outName+":Rb", "blk", "x", "y")
		sb := srv.RelOrEmpty(outName+":Sb", "blk", "y", "z")
		rsemi := relation.HashJoin(outName+":Rsemi", rb, sb) // joins on (blk, y) → (blk,x,y,z)
		srv.Put(rsemi)
		srv.Delete(outName + ":Rb")
		srv.Delete(outName + ":Sb")
	})
	// Round 4: re-partition the reduced R' by x within each block to
	// meet the pre-placed T_b keys; finish locally.
	c.Round("hl:semijoin2", func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel(outName + ":Rsemi")
		if frag == nil {
			return
		}
		st := out.Open(outName+":Rx", "blk", "x", "y", "z")
		for i := 0; i < frag.Len(); i++ {
			row := frag.Row(i) // (blk, x, y, z)
			blk := int(row[0])
			dst := (blk + relation.Bucket(relation.Hash64(row[1], seed^0x52), pb)) % c.P()
			st.SendRow(dst, row)
		}
		srv.Delete(outName + ":Rsemi")
	})
	c.LocalStep(func(srv *mpc.Server) {
		rx := srv.RelOrEmpty(outName+":Rx", "blk", "x", "y", "z")
		tb := srv.RelOrEmpty(outName+":Tb", "blk", "x", "z")
		heavyOut := relation.HashJoin("h", rx, tb) // joins on (blk, x, z)
		res := srv.Rel(outName)
		if res == nil {
			res = relation.New(outName, "x", "y", "z")
			srv.Put(res)
		}
		proj := heavyOut.Project(outName, "x", "y", "z")
		res.AppendAll(proj)
		srv.Delete(outName + ":Rx")
		srv.Delete(outName + ":Tb")
	})
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start}, nil
}

// HeavyZCount exposes how many heavy z values the threshold IN/p^{1/3}
// yields on the given inputs (verification helper).
func HeavyZCount(rels map[string]*relation.Relation, p int) int {
	q := hypergraph.Triangle()
	prepped := prepare(q, rels)
	in := prepped["R"].Len() + prepped["S"].Len() + prepped["T"].Len()
	threshold := int(float64(in) / math.Cbrt(float64(p)))
	if threshold < 1 {
		threshold = 1
	}
	counts := map[relation.Value]int{}
	for _, name := range []string{"S", "T"} {
		frag := prepped[name]
		col := frag.MustCol("z")
		for i := 0; i < frag.Len(); i++ {
			counts[frag.Row(i)[col]]++
		}
	}
	n := 0
	for _, d := range counts {
		if d >= threshold {
			n++
		}
	}
	return n
}
