package hypercube

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: HyperCube and SkewHC under seeded fault
// schedules. The recovery driver must converge on every schedule and
// commit output and (L, r, C) identical to the fault-free run — the
// one-round shuffle is the simplest victim (one big fragment set, no
// multi-round state to hide behind).

func TestHyperCubeChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.Triangle(), testkit.Config{}, hcAlgo(LocalGeneric))
}

// TestSkewHCChaosDiff covers the three-round skew-aware variant: its
// heavy-pattern broadcast round exercises recovery of broadcast-shaped
// fragment sets (p fragments per source).
func TestSkewHCChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.Triangle(), testkit.Config{}, skewHCAlgo(LocalGeneric))
}
