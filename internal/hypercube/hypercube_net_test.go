package hypercube

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: HyperCube's one-round shuffle and
// the three-round skew-aware variant must be indistinguishable between
// the in-process engine and the TCP transport on every (skew, p, seed)
// cell — bit-identical fragments, (L, r, C) ledgers, and trace events.

func TestHyperCubeBackendDiff(t *testing.T) {
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(),
		hypergraph.Path(3),
	} {
		testkit.RunBackendDiff(t, q, testkit.Config{}, hcAlgo(LocalGeneric))
	}
}

func TestSkewHCBackendDiff(t *testing.T) {
	testkit.RunBackendDiff(t, hypergraph.Triangle(), testkit.Config{}, skewHCAlgo(LocalGeneric))
}

// TestHyperCubeChaosOverTCP: the recovery driver's replayed commit must
// cross the wire and still be bit-identical to the fault-free run.
func TestHyperCubeChaosOverTCP(t *testing.T) {
	testkit.RunChaosDiffTCP(t, hypergraph.Triangle(), testkit.Config{}, hcAlgo(LocalGeneric))
}
