package hypercube

import (
	"fmt"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
	"mpcquery/internal/workload"
)

func BenchmarkHyperCubeTriangle(b *testing.B) {
	const nv, ne = 3000, 30000
	r, s, u := workload.TriangleInput(nv, ne, 7)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	for _, p := range []int{8, 27, 64} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := mpc.NewCluster(p, 1)
				if _, err := Run(c, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHypercube sweeps the hypercube triangle join over the
// delivery-bound cluster sizes (non-cube p exercises share rounding).
func BenchmarkHypercube(b *testing.B) {
	const nv, ne = 3000, 30000
	r, s, u := workload.TriangleInput(nv, ne, 7)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	for _, p := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := mpc.NewCluster(p, 1)
				if _, err := Run(c, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSkewHCTriangle(b *testing.B) {
	const k = 2048
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	for i := relation.Value(0); i < k; i++ {
		r.Append(0, i)
		u.Append(i, 0)
		s.Append(i, (i*7+3)%k)
	}
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(64, 1)
		if _, err := RunSkewHC(c, hypergraph.Triangle(), rels, "out", 42, 0, LocalGeneric); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeavyLightTriangle(b *testing.B) {
	rels := hubTriangle(2000)
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(64, 1)
		if _, err := HeavyLightTriangle(c, rels, "out", 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveSwitch measures the full skew-reactive path on a
// mispredicted-skew instance: probe round, decision, discarded probe
// shuffle, and the SkewHC rounds it switches to.
func BenchmarkAdaptiveSwitch(b *testing.B) {
	q := hypergraph.Triangle()
	rels := testkit.GenMispredicted(q, testkit.GenConfig{Tuples: 4096, HeavyFrac: 0.5}, 7)
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(16, 7)
		res, err := RunAdaptive(c, q, rels, "out", 42, AdaptiveConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Switched {
			b.Fatal("adaptive run did not switch")
		}
	}
}

// BenchmarkHetTriangle measures the capacity-aware shuffle and
// per-cell local joins on an unequal profile.
func BenchmarkHetTriangle(b *testing.B) {
	const nv, ne = 3000, 30000
	r, s, u := workload.TriangleInput(nv, ne, 7)
	rels := map[string]*relation.Relation{"R": r, "S": s, "T": u}
	caps := []float64{4, 4, 2, 2, 1, 1, 1, 1}
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(8, 1)
		c.SetCapacities(caps)
		if _, err := RunHet(c, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
			b.Fatal(err)
		}
	}
}
