package hypercube

import (
	"fmt"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Differential tests: HyperCube and SkewHC vs the sequential testkit
// oracle across cluster sizes, seeds and input skews, with exact round
// counts and the one-round load bound on skew-free inputs.

func hcAlgo(alg LocalAlg) testkit.Algo {
	return func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
		_, err := Run(c, q, rels, outName, seed, alg)
		return err
	}
}

func skewHCAlgo(alg LocalAlg) testkit.Algo {
	return func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
		_, err := RunSkewHC(c, q, rels, outName, seed, 0, alg)
		return err
	}
}

// TestHyperCubeDiff sweeps the one-round HyperCube over the canonical
// query shapes and all four input distributions. r must be exactly 1
// (the scatter is free initial placement).
func TestHyperCubeDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = func(q hypergraph.Query, p int) int { return 1 }
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(),
		hypergraph.Path(3),
		hypergraph.Star(3),
		hypergraph.Cycle(4),
	} {
		testkit.RunDiff(t, q, cfg, hcAlgo(LocalGeneric))
	}
}

// TestHyperCubeLocalAlgsDiff cross-checks the two other local
// evaluators on the triangle — same shuffle, different local join.
func TestHyperCubeLocalAlgsDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Seeds = []int64{1, 2, 3, 4, 5}
	cfg.Rounds = func(q hypergraph.Query, p int) int { return 1 }
	testkit.RunDiff(t, hypergraph.Triangle(), cfg, hcAlgo(LocalBinary))
	testkit.RunDiff(t, hypergraph.Triangle(), cfg, hcAlgo(LocalLeapfrog))
}

// TestSkewHCDiff sweeps the three-round skew-aware variant over skewed
// inputs — the regime it exists for — plus skew-free ones (where the
// heavy pattern set degenerates and it must still be correct).
func TestSkewHCDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Rounds = func(q hypergraph.Query, p int) int { return 3 }
	for _, q := range []hypergraph.Query{
		hypergraph.Triangle(),
		hypergraph.Path(3),
	} {
		testkit.RunDiff(t, q, cfg, skewHCAlgo(LocalGeneric))
	}
}

// TestTriangleLoadBound asserts the headline theory claim of the paper
// on skew-free inputs: HyperCube computes the triangle with per-server
// load L = O(IN/p^{2/3}) (τ* = 3/2) in one round. Cluster sizes are
// perfect cubes so the LP shares are exact integers (p^{1/3} each) and
// no rounding loss muddies the constant.
//
// Factor 3.0 is the documented constant: each server receives three
// relation fragments, each of expected size (IN/3)/p^{2/3}, so the mean
// load is exactly IN/p^{2/3}; the factor absorbs hash-placement
// variance around that mean on finite inputs (observed ≤ 2.1× at these
// sizes), and LoadSlack the ±1-per-stream quantization.
func TestTriangleLoadBound(t *testing.T) {
	q := hypergraph.Triangle()
	gen := testkit.GenConfig{Tuples: 400}
	const factor = 3.0
	const slack = 16
	for _, p := range []int{8, 27, 64} {
		for _, seed := range []int64{1, 2, 3, 4, 5} {
			p, seed := p, seed
			t.Run(fmt.Sprintf("p%d/seed%d", p, seed), func(t *testing.T) {
				rels := testkit.GenInstance(q, testkit.SkewNone, gen, seed)
				c := mpc.NewCluster(p, seed)
				if _, err := Run(c, q, rels, "out", uint64(seed), LocalGeneric); err != nil {
					t.Fatalf("hypercube: %v", err)
				}
				testkit.AssertRounds(t, c, 1)
				testkit.AssertLoadBound(t, c, q, testkit.InputSize(q, rels), p, factor, slack)
				got := testkit.GatherResult(c, "out", q.Vars())
				got.Dedup()
				if want := testkit.OracleJoin(q, rels); !testkit.BagEqual(got, want) {
					t.Errorf("differential mismatch: %s", testkit.DiffSample(got, want))
				}
			})
		}
	}
}
