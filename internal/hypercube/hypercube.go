// Package hypercube implements the HyperCube (Shares) algorithm for
// one-round multiway joins in the MPC model (slides 34–45; Afrati &
// Ullman '10, Beame, Koutris & Suciu '13/'14), and SkewHC, its
// skew-resilient extension via heavy/light residual queries (slides
// 47–51).
//
// HyperCube organizes the p servers into a k-dimensional grid with one
// dimension (share) per query variable, Π shares ≤ p. Each tuple of an
// atom is replicated to every grid cell that agrees with the hashes of
// the variables the atom contains; every server then joins its corner
// of the space locally. With shares chosen by the LP of slide 38, the
// skew-free load is the optimal IN/p^{1/τ*}.
//
// SkewHC first identifies, per variable, the values with degree above
// N/p (the heavy hitters — at most p per attribute), then runs one
// sub-HyperCube per heavy/light pattern, giving heavy variables a share
// of 1 and re-optimizing the light shares for the residual query. Every
// output tuple has exactly one true pattern, so the union of the
// pattern sub-joins is the join, without duplicates.
package hypercube

import (
	"fmt"
	"sort"

	"mpcquery/internal/fractional"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/stats"
	"mpcquery/internal/trace"
)

// Plan is a HyperCube share assignment for one query.
type Plan struct {
	Query  hypergraph.Query
	Vars   []string // q.Vars() order; dimension i belongs to Vars[i]
	Shares []int    // one per variable; product ≤ p
	Seeds  []uint64 // per-variable hash seeds (independent hash functions)

	stride []int // cached mixed-radix strides
}

// NewPlan computes LP-optimal integer shares for the query given the
// relation sizes (sizes maps atom name → cardinality).
func NewPlan(q hypergraph.Query, sizes map[string]int64, p int, seed uint64) (*Plan, error) {
	sh, err := fractional.OptimalShares(q, sizes, p)
	if err != nil {
		return nil, fmt.Errorf("hypercube: %w", err)
	}
	return PlanWithShares(q, sh.Integer, seed), nil
}

// PlanWithShares builds a plan from explicit shares (one per variable in
// q.Vars() order). Used directly for ablations and by SkewHC's residual
// sub-plans.
func PlanWithShares(q hypergraph.Query, shares []int, seed uint64) *Plan {
	vars := q.Vars()
	if len(shares) != len(vars) {
		panic(fmt.Sprintf("hypercube: %d shares for %d variables", len(shares), len(vars)))
	}
	prod := 1
	for _, s := range shares {
		if s < 1 {
			panic("hypercube: share < 1")
		}
		prod *= s
	}
	seeds := make([]uint64, len(vars))
	for i := range seeds {
		seeds[i] = seed*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
	}
	pl := &Plan{Query: q, Vars: vars, Shares: shares, Seeds: seeds}
	pl.stride = pl.strides()
	return pl
}

// GridSize returns the number of servers the plan actually addresses
// (the product of shares).
func (pl *Plan) GridSize() int {
	prod := 1
	for _, s := range pl.Shares {
		prod *= s
	}
	return prod
}

// varIndex returns the dimension of variable v.
func (pl *Plan) varIndex(v string) int {
	for i, x := range pl.Vars {
		if x == v {
			return i
		}
	}
	return -1
}

// strides returns mixed-radix strides: server = Σ coord[i]·stride[i].
func (pl *Plan) strides() []int {
	k := len(pl.Shares)
	st := make([]int, k)
	acc := 1
	for i := k - 1; i >= 0; i-- {
		st[i] = acc
		acc *= pl.Shares[i]
	}
	return st
}

// RouteTuple calls emit(server) for every grid cell that must receive a
// tuple of the given atom: dimensions of variables in the atom are
// fixed by hashing the tuple's values, the remaining dimensions range
// over their full shares (slide 37). row is in atom-variable order.
func (pl *Plan) RouteTuple(atom hypergraph.Atom, row []relation.Value, base int, emit func(server int)) {
	k := len(pl.Vars)
	fixed := make([]int, k)
	for i := range fixed {
		fixed[i] = -1
	}
	for ai, v := range atom.Vars {
		d := pl.varIndex(v)
		if d < 0 {
			panic(fmt.Sprintf("hypercube: atom %s var %s not in plan", atom.Name, v))
		}
		fixed[d] = int(relation.Hash64(row[ai], pl.Seeds[d]) % uint64(pl.Shares[d]))
	}
	st := pl.stride
	var walk func(dim, acc int)
	walk = func(dim, acc int) {
		if dim == k {
			emit(base + acc)
			return
		}
		if fixed[dim] >= 0 {
			walk(dim+1, acc+fixed[dim]*st[dim])
			return
		}
		for cRaw := 0; cRaw < pl.Shares[dim]; cRaw++ {
			walk(dim+1, acc+cRaw*st[dim])
		}
	}
	walk(0, 0)
}

// Result describes a HyperCube execution.
type Result struct {
	OutName string
	Rounds  int
	Plan    *Plan
	// Patterns holds SkewHC's per-pattern sub-plans (nil for plain runs).
	Patterns []PatternPlan
}

// LocalAlg selects the local join algorithm each server runs after the
// shuffle (slide 32: the local algorithm is independent of the parallel
// one).
type LocalAlg int

// Local join algorithm choices.
const (
	// LocalGeneric is the worst-case-optimal generic join — the default;
	// it never builds oversized intermediates on cyclic queries.
	LocalGeneric LocalAlg = iota
	// LocalBinary evaluates by iterative binary hash joins; exists as an
	// ablation baseline (slide 63's intermediate blowup can resurface
	// locally with this choice).
	LocalBinary
	// LocalLeapfrog is the sorted-trie Leapfrog Triejoin — a second
	// worst-case-optimal implementation with different constants.
	LocalLeapfrog
)

// prepare renames each input relation's attributes to the query's
// variable names (matched by position) and validates arities.
func prepare(q hypergraph.Query, rels map[string]*relation.Relation) map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, len(q.Atoms))
	for _, a := range q.Atoms {
		r, ok := rels[a.Name]
		if !ok {
			panic(fmt.Sprintf("hypercube: no relation for atom %s", a.Name))
		}
		if r.Arity() != len(a.Vars) {
			panic(fmt.Sprintf("hypercube: relation %s arity %d, atom wants %d", a.Name, r.Arity(), len(a.Vars)))
		}
		renamed := relation.New(a.Name, a.Vars...)
		for i := 0; i < r.Len(); i++ {
			renamed.AppendRow(r.Row(i))
		}
		out[a.Name] = renamed
	}
	return out
}

// Run executes the one-round HyperCube algorithm with LP-optimal shares
// and leaves the join result (schema = q.Vars()) distributed under
// outName.
func Run(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64, alg LocalAlg) (*Result, error) {
	sizes := map[string]int64{}
	for _, a := range q.Atoms {
		sizes[a.Name] = int64(rels[a.Name].Len())
		if sizes[a.Name] == 0 {
			sizes[a.Name] = 1 // LP needs positive sizes
		}
	}
	pl, err := NewPlan(q, sizes, c.P(), seed)
	if err != nil {
		return nil, err
	}
	res := RunWithPlan(c, pl, rels, outName, alg)
	return res, nil
}

// RunWithPlan executes HyperCube with an explicit plan.
func RunWithPlan(c *mpc.Cluster, pl *Plan, rels map[string]*relation.Relation, outName string, alg LocalAlg) *Result {
	q := pl.Query
	prepped := prepare(q, rels)
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(prepped[a.Name])
	}
	trace.Annotatef(c, "hypercube.Run %s shares %v on %v", q.Name, pl.Shares, pl.Vars)
	start := c.Metrics().Rounds()
	atoms := q.Atoms
	c.Round("hypercube:shuffle", func(srv *mpc.Server, out *mpc.Out) {
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			st := out.Open(outName+":"+a.Name, a.Vars...)
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				pl.RouteTuple(a, row, 0, func(server int) {
					st.SendRow(server, row)
				})
			}
		}
	})
	localJoin(c, q, outName, "", alg)
	return &Result{OutName: outName, Rounds: c.Metrics().Rounds() - start, Plan: pl}
}

// localJoin joins each server's atom fragments (stored under
// outName+":"+atom+suffix) into outName (appending).
func localJoin(c *mpc.Cluster, q hypergraph.Query, outName, suffix string, alg LocalAlg) {
	atoms := q.Atoms
	vars := q.Vars()
	c.LocalStep(func(srv *mpc.Server) {
		inputs := make([]*relation.Relation, len(atoms))
		for i, a := range atoms {
			inputs[i] = srv.RelOrEmpty(outName+":"+a.Name+suffix, a.Vars...)
			srv.Delete(outName + ":" + a.Name + suffix)
		}
		var joined *relation.Relation
		switch alg {
		case LocalGeneric:
			joined = relation.GenericJoin(outName, vars, inputs...)
		case LocalBinary:
			joined = relation.MultiJoin(outName, inputs...).Project(outName, vars...)
		case LocalLeapfrog:
			joined = relation.LeapfrogJoin(outName, vars, inputs...)
		default:
			panic("hypercube: unknown local algorithm")
		}
		if prev := srv.Rel(outName); prev != nil {
			prev.AppendAll(joined)
		} else {
			srv.Put(joined)
		}
	})
}

// PatternPlan describes one heavy/light pattern of a SkewHC execution.
type PatternPlan struct {
	Heavy  map[string]bool // variables bound to heavy values
	Plan   *Plan           // shares: 1 on heavy vars, optimized on light
	TauRes float64         // τ* of the residual query (for reporting)
}

// RunSkewHC executes the SkewHC algorithm of slides 47–51:
//
//	round 1: per-variable degree summaries are exchanged;
//	round 2: owners broadcast each variable's heavy hitters
//	         (degree ≥ threshold; threshold = N_max/p if ≤ 0);
//	round 3: one sub-HyperCube per heavy/light pattern, all in the same
//	         round; heavy variables get share 1, light shares are
//	         re-optimized for the pattern's residual query.
//
// Every server then joins each pattern's fragments separately and the
// union of the pattern joins is the answer, exactly once.
func RunSkewHC(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64, threshold int, alg LocalAlg) (*Result, error) {
	p := c.P()
	prepped := prepare(q, rels)
	maxN := 0
	for _, r := range prepped {
		if r.Len() > maxN {
			maxN = r.Len()
		}
	}
	if threshold <= 0 {
		threshold = maxN / p
		if threshold < 1 {
			threshold = 1
		}
	}
	for _, a := range q.Atoms {
		c.ScatterRoundRobin(prepped[a.Name])
	}
	trace.Annotatef(c, "hypercube.RunSkewHC %s (heavy threshold %d)", q.Name, threshold)
	start := c.Metrics().Rounds()
	vars := q.Vars()
	varIdx := map[string]int{}
	for i, v := range vars {
		varIdx[v] = i
	}
	atoms := q.Atoms

	// Round 1: per-(variable, value) degree summaries to owner servers.
	c.Round("skewhc:degrees", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":deg", "var", "v", "d")
		counts := map[[2]relation.Value]int{}
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			for _, v := range a.Vars {
				col := frag.MustCol(v)
				vi := relation.Value(varIdx[v])
				for i := 0; i < frag.Len(); i++ {
					counts[[2]relation.Value{vi, frag.Row(i)[col]}]++
				}
			}
		}
		keys := make([][2]relation.Value, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			dst := relation.Bucket(relation.Hash64(k[1], 0x5eed)^uint64(k[0]), p)
			st.Send(dst, k[0], k[1], relation.Value(counts[k]))
		}
	})

	// Round 2: owners aggregate and broadcast heavy hitters.
	thr := threshold
	c.Round("skewhc:heavy", func(srv *mpc.Server, out *mpc.Out) {
		st := out.Open(outName+":heavy", "var", "v")
		deg := srv.Rel(outName + ":deg")
		if deg == nil {
			return
		}
		agg := map[[2]relation.Value]int{}
		for i := 0; i < deg.Len(); i++ {
			row := deg.Row(i)
			agg[[2]relation.Value{row[0], row[1]}] += int(row[2])
		}
		keys := make([][2]relation.Value, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			if agg[k] >= thr {
				st.Broadcast(k[0], k[1])
			}
		}
		srv.Delete(outName + ":deg")
	})

	// Driver derives the (globally agreed) heavy sets from server 0.
	heavyByVar := make([]map[relation.Value]bool, len(vars))
	for i := range heavyByVar {
		heavyByVar[i] = map[relation.Value]bool{}
	}
	if hrel := c.Server(0).Rel(outName + ":heavy"); hrel != nil {
		for i := 0; i < hrel.Len(); i++ {
			row := hrel.Row(i)
			heavyByVar[int(row[0])][row[1]] = true
		}
	}
	c.DeleteAll(outName + ":heavy")

	// Enumerate patterns; skip heavy patterns over vars with no heavy
	// values (they'd be empty).
	var patterns []PatternPlan
	for _, heavy := range q.VarSubsets() {
		skip := false
		for v := range heavy {
			if heavy[v] && len(heavyByVar[varIdx[v]]) == 0 {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		res, _ := q.Residual(heavy)
		var subPlan *Plan
		tauRes := 0.0
		shares := make([]int, len(vars))
		for i := range shares {
			shares[i] = 1
		}
		if len(res.Atoms) > 0 {
			ep, err := fractional.MaxEdgePacking(res)
			if err != nil {
				return nil, fmt.Errorf("skewhc pattern: %w", err)
			}
			tauRes = ep.Tau
			sizes := map[string]int64{}
			for _, a := range res.Atoms {
				sizes[a.Name] = int64(prepped[a.Name].Len())
				if sizes[a.Name] == 0 {
					sizes[a.Name] = 1
				}
			}
			sh, err := fractional.OptimalShares(res, sizes, p)
			if err != nil {
				return nil, fmt.Errorf("skewhc shares: %w", err)
			}
			for i, v := range sh.Vars {
				shares[varIdx[v]] = sh.Integer[i]
			}
		}
		subPlan = PlanWithShares(q, shares, seed+uint64(len(patterns))+1)
		patterns = append(patterns, PatternPlan{Heavy: heavy, Plan: subPlan, TauRes: tauRes})
	}

	// Round 3: route every tuple under every pattern consistent with its
	// own variables' heavy status.
	hbv := heavyByVar
	pats := patterns
	c.Round("skewhc:shuffle", func(srv *mpc.Server, out *mpc.Out) {
		for _, a := range atoms {
			frag := srv.Rel(a.Name)
			if frag == nil {
				continue
			}
			cols := make([]int, len(a.Vars))
			dims := make([]int, len(a.Vars))
			for i, v := range a.Vars {
				cols[i] = frag.MustCol(v)
				dims[i] = varIdx[v]
			}
			streams := make([]*mpc.Stream, len(pats))
			for pi := range pats {
				streams[pi] = out.Open(fmt.Sprintf("%s:%s@%d", outName, a.Name, pi), a.Vars...)
			}
			for i := 0; i < frag.Len(); i++ {
				row := frag.Row(i)
				for pi, pat := range pats {
					match := true
					for j, v := range a.Vars {
						isHeavy := hbv[dims[j]][row[cols[j]]]
						if isHeavy != pat.Heavy[v] {
							match = false
							break
						}
					}
					if !match {
						continue
					}
					pat.Plan.RouteTuple(a, row, 0, func(server int) {
						streams[pi].SendRow(server, row)
					})
				}
			}
		}
	})
	// Local join per pattern; union the results.
	for pi := range patterns {
		localJoin(c, q, outName, fmt.Sprintf("@%d", pi), alg)
	}
	return &Result{
		OutName:  outName,
		Rounds:   c.Metrics().Rounds() - start,
		Patterns: patterns,
	}, nil
}

// HeavyByVar computes, centrally, the per-variable heavy-hitter sets
// for the given threshold — a verification helper mirroring what the
// distributed rounds of RunSkewHC compute.
func HeavyByVar(q hypergraph.Query, rels map[string]*relation.Relation, threshold int) map[string]map[relation.Value]bool {
	prepped := prepare(q, rels)
	out := map[string]map[relation.Value]bool{}
	for _, v := range q.Vars() {
		agg := stats.Degrees{}
		for _, a := range q.Atoms {
			if a.HasVar(v) {
				agg.Merge(stats.DegreesOf(prepped[a.Name], v))
			}
		}
		out[v] = agg.HeavySet(threshold)
	}
	return out
}
