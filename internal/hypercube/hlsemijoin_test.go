package hypercube

import (
	"math"
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// hubTriangle builds the skewed input of slide 59: vertex 0 is a hot z
// value, with enough light structure around it that both code paths
// (heavy blocks and light HyperCube) produce output.
func hubTriangle(k int) map[string]*relation.Relation {
	r := relation.New("R", "x", "y")
	s := relation.New("S", "y", "z")
	u := relation.New("T", "z", "x")
	// Heavy z = 0: S(y, 0) for many y, T(0, x) for many x, and R(x, y)
	// connecting them so triangles (x, y, 0) exist.
	for i := relation.Value(1); i <= relation.Value(k); i++ {
		s.Append(i, 0)
		u.Append(0, i)
		r.Append(i, i) // triangle (i, i, 0) for every i
	}
	// Light triangles on a separate vertex range.
	base := relation.Value(10 * k)
	for i := relation.Value(0); i < 30; i += 3 {
		r.Append(base+i, base+i+1)
		s.Append(base+i+1, base+i+2)
		u.Append(base+i+2, base+i)
	}
	return map[string]*relation.Relation{"R": r, "S": s, "T": u}
}

func TestHeavyLightTriangleCorrect(t *testing.T) {
	rels := hubTriangle(300)
	want := expectedTriangle(rels)
	if want.Len() < 310 {
		t.Fatalf("test input should have ≥ 310 triangles, got %d", want.Len())
	}
	c := mpc.NewCluster(64, 1)
	res, err := HeavyLightTriangle(c, rels, "out", 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4 (2 stats + 2 compute)", res.Rounds)
	}
	got := c.Gather("out")
	if got.Len() != want.Len() || !got.EqualAsSets(want) {
		t.Fatalf("HL+semijoins: got %d triangles, want %d", got.Len(), want.Len())
	}
}

func TestHeavyLightTriangleNoSkew(t *testing.T) {
	// Without heavy values it degenerates to plain HyperCube and must
	// still be exactly right.
	rels := triangleRels(50, 300, 21)
	want := expectedTriangle(rels)
	c := mpc.NewCluster(27, 1)
	if _, err := HeavyLightTriangle(c, rels, "out", 42); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	if !got.EqualAsSets(want) {
		t.Fatalf("no-skew HL wrong: got %d, want %d", got.Len(), want.Len())
	}
}

func TestHeavyLightNoDuplicates(t *testing.T) {
	rels := hubTriangle(200)
	c := mpc.NewCluster(27, 1)
	if _, err := HeavyLightTriangle(c, rels, "out", 42); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("out")
	d := got.Clone()
	d.Dedup()
	if got.Len() != d.Len() {
		t.Fatalf("duplicates: %d vs %d distinct", got.Len(), d.Len())
	}
}

func TestHeavyLightLoadBeatsHashOnHotZ(t *testing.T) {
	// The point of the algorithm (slide 59): load stays O(IN/p^{2/3})
	// under z skew. Compare to plain HyperCube whose S and T collapse
	// into the z-slab.
	const k = 3000
	rels := hubTriangle(k)
	p := 64
	cp := mpc.NewCluster(p, 1)
	if _, err := Run(cp, hypergraph.Triangle(), rels, "out", 42, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	plain := cp.Metrics().MaxLoad()
	chl := mpc.NewCluster(p, 1)
	if _, err := HeavyLightTriangle(chl, rels, "out", 42); err != nil {
		t.Fatal(err)
	}
	hl := chl.Metrics().MaxLoadOfRound("hl:shuffle")
	if hl >= plain {
		t.Fatalf("HL shuffle load %d should beat plain HC %d under z skew", hl, plain)
	}
	in := float64(3*k + 60)
	bound := 6 * in / math.Pow(float64(p), 2.0/3.0)
	if float64(hl) > bound {
		t.Fatalf("HL load %d exceeds 6·IN/p^{2/3} = %.0f", hl, bound)
	}
}

func TestHeavyZCount(t *testing.T) {
	rels := hubTriangle(1000)
	if got := HeavyZCount(rels, 64); got != 1 {
		t.Fatalf("heavy z count = %d, want 1 (the hub)", got)
	}
	uniform := triangleRels(100, 400, 5)
	if got := HeavyZCount(uniform, 8); got != 0 {
		t.Fatalf("uniform data should have no heavy z, got %d", got)
	}
}
