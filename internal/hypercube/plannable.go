package hypercube

import (
	"fmt"
	"math"
	"strings"

	"mpcquery/internal/cost"
	"mpcquery/internal/fractional"
)

// Plannables describes the one-round HyperCube family to the query
// planner (internal/plan):
//
//   - hypercube: LP-optimal integer shares; the prediction is the
//     per-atom expected load *including* the heavy-hitter term — a
//     value of degree d on variable x cannot be split across the x
//     dimension, so plain HyperCube degrades under skew exactly as
//     slide 46 warns.
//   - skewhc: the heavy/light residual-query variant whose load stays
//     IN/p^{1/ψ*} for any skew (slides 47-51); three rounds (degree
//     statistics, pattern shuffle, local join).
//   - hl-triangle: the multi-round Heavy-Light + Semijoins algorithm
//     for the triangle query only (slides 58-60): L = O(IN/p^{2/3})
//     under arbitrary skew in four rounds.
func Plannables() []cost.Plannable {
	return []cost.Plannable{
		{
			Alg:        "hypercube",
			Doc:        "one-round HyperCube/Shares join with LP-optimal shares (slides 34-45)",
			Executable: true,
			Applies:    func(st *cost.QueryStats) error { return nil },
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				sh, err := fractional.OptimalShares(st.Query, st.Sizes, st.P)
				if err != nil {
					return cost.Estimate{}, err
				}
				parts := make([]string, len(sh.Vars))
				for i, v := range sh.Vars {
					parts[i] = fmt.Sprintf("%s=%d", v, sh.Integer[i])
				}
				return cost.Estimate{
					L:      cost.HyperCubeSkewedLoad(st, sh.Vars, sh.Integer),
					R:      1,
					C:      cost.HyperCubeReplication(st.Query, st.Sizes, sh.Vars, sh.Integer),
					Detail: "shares " + strings.Join(parts, " "),
				}, nil
			},
		},
		{
			Alg:        "skewhc",
			Doc:        "skew-resilient HyperCube over heavy/light residual queries (slides 47-51)",
			Executable: true,
			Applies:    func(st *cost.QueryStats) error { return nil },
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				load, err := cost.SkewedOneRoundLoad(st.Query, float64(st.IN), st.P)
				if err != nil {
					return cost.Estimate{}, err
				}
				sh, err := fractional.OptimalShares(st.Query, st.Sizes, st.P)
				if err != nil {
					return cost.Estimate{}, err
				}
				psi, err := cost.PsiStar(st.Query)
				if err != nil {
					return cost.Estimate{}, err
				}
				// SkewHC runs one residual sub-query per heavy/light
				// pattern — up to 2^k of them for k skewed variables —
				// and every pattern replicates its inputs on its own
				// sub-grid, so the shuffle volume multiplies with the
				// pattern count. Charge that, and floor the load by the
				// per-server share of the total shuffle: the theoretical
				// IN/p^{1/ψ*} only holds when the residual decomposition
				// stays cheap.
				patterns, skewed := 1.0, 0
				for _, n := range st.HeavyVars {
					if n > 0 && skewed < 6 {
						skewed++
						patterns *= 2
					}
				}
				c := cost.HyperCubeReplication(st.Query, st.Sizes, sh.Vars, sh.Integer)*patterns + float64(st.IN)
				if perServer := c / float64(st.P); perServer > load {
					load = perServer
				}
				detail := fmt.Sprintf("ψ*=%.3g", psi)
				if skewed > 0 {
					detail += fmt.Sprintf(", %d skewed vars → %.0f residual patterns", skewed, patterns)
				}
				return cost.Estimate{L: load, R: 3, C: c, Detail: detail}, nil
			},
		},
		{
			Alg:        "hl-triangle",
			Doc:        "multi-round Heavy-Light + Semijoins triangle algorithm (slides 58-60)",
			Executable: true,
			Applies: func(st *cost.QueryStats) error {
				if st.Query.Name != "triangle" || len(st.Query.Atoms) != 3 {
					return fmt.Errorf("applies only to the triangle query")
				}
				return nil
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				p := float64(st.P)
				in := float64(st.IN)
				return cost.Estimate{
					L: in/math.Pow(p, 2.0/3.0) + in/p,
					R: 4,
					// Light part: one HyperCube round at p^{1/3} replication;
					// heavy part and the two statistics rounds ship O(IN).
					C: in*math.Cbrt(p) + 2*in,
				}, nil
			},
		},
	}
}
