package hypercube_test

import (
	"fmt"

	"mpcquery/internal/hypercube"
	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// ExampleRun computes the triangle query in ONE communication round on
// a 27-server cluster — the tutorial's headline result (slide 34).
func ExampleRun() {
	edges := [][]relation.Value{{1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 5}}
	rels := map[string]*relation.Relation{
		"R": relation.FromRows("R", []string{"x", "y"}, edges),
		"S": relation.FromRows("S", []string{"y", "z"}, edges),
		"T": relation.FromRows("T", []string{"z", "x"}, edges),
	}
	c := mpc.NewCluster(27, 1)
	res, err := hypercube.Run(c, hypergraph.Triangle(), rels, "out", 42, hypercube.LocalGeneric)
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("triangles:", c.Gather("out").Len())
	fmt.Println("shares:", res.Plan.Shares)
	// Output:
	// rounds: 1
	// triangles: 3
	// shares: [3 3 3]
}

// ExamplePlanWithShares shows manual share control: a 2×2×2 grid on 8
// servers and where one R-tuple is replicated (along the free z
// dimension).
func ExamplePlanWithShares() {
	pl := hypercube.PlanWithShares(hypergraph.Triangle(), []int{2, 2, 2}, 7)
	var targets []int
	pl.RouteTuple(hypergraph.Triangle().Atom("R"), []relation.Value{10, 20}, 0,
		func(server int) { targets = append(targets, server) })
	fmt.Println("copies:", len(targets))
	// Output:
	// copies: 2
}
