package hypercube

import (
	"testing"

	"mpcquery/internal/hypergraph"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Heterogeneity-aware execution tests: capacity-proportional cell
// ownership must stay correct on every instance, put load where the
// capacity is, and beat the uniform plan on the capacity-normalized
// makespan.

// hetCaps returns the deterministic unequal profile the tests use:
// capacities cycling 1, 2, 4 — spanning a 4x speed ratio.
func hetCaps(p int) []float64 {
	caps := make([]float64, p)
	for i := range caps {
		caps[i] = float64(int(1) << (i % 3))
	}
	return caps
}

func hetAlgo(alg LocalAlg) testkit.Algo {
	return func(c *mpc.Cluster, q hypergraph.Query, rels map[string]*relation.Relation, outName string, seed uint64) error {
		c.SetCapacities(hetCaps(c.P()))
		_, err := RunHet(c, q, rels, outName, seed, alg)
		return err
	}
}

// TestHetDiff sweeps RunHet under an unequal capacity profile over the
// full differential matrix: the virtual-cell split must never change
// the answer, whatever the skew.
func TestHetDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	testkit.RunDiff(t, hypergraph.Triangle(), cfg, hetAlgo(LocalGeneric))
}

func TestHetDiffPath(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Seeds = []int64{1, 2}
	testkit.RunDiff(t, hypergraph.Path(3), cfg, hetAlgo(LocalGeneric))
}

// TestHetChaosDiff runs the capacity-aware shuffle under fault
// injection: per-cell streams are just more fragment names, so
// recovery must hold exactly as for the uniform shuffle.
func TestHetChaosDiff(t *testing.T) {
	testkit.RunChaosDiff(t, hypergraph.Triangle(), testkit.Config{}, hetAlgo(LocalGeneric))
}

// TestHetUniformCapsMatchesOracle pins the degenerate profile: no
// capacities attached means uniform ownership of the refined grid.
func TestHetUniformCapsMatchesOracle(t *testing.T) {
	q := hypergraph.Triangle()
	rels := testkit.GenInstance(q, testkit.SkewUniform, testkit.GenConfig{Tuples: 200}, 7)
	want := testkit.OracleJoin(q, rels)
	c := mpc.NewCluster(8, 7)
	res, err := RunHet(c, q, rels, "out", 11, LocalGeneric)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	got := testkit.GatherResult(c, "out", q.Vars())
	got.Dedup()
	if !testkit.BagEqual(got, want) {
		t.Fatalf("het with uniform caps differs from oracle: %s", testkit.DiffSample(got, want))
	}
}

// TestHetLoadFollowsCapacity checks the whole point of the cell
// apportionment: on skew-free input, a server with twice the capacity
// receives roughly twice the tuples.
func TestHetLoadFollowsCapacity(t *testing.T) {
	q := hypergraph.Triangle()
	const p, seed = 4, 3
	caps := []float64{4, 2, 1, 1}
	rels := testkit.GenInstance(q, testkit.SkewNone, testkit.GenConfig{Tuples: 800}, seed)
	c := mpc.NewCluster(p, seed)
	c.SetCapacities(caps)
	res, err := RunHet(c, q, rels, "out", 5, LocalGeneric)
	if err != nil {
		t.Fatal(err)
	}
	// Cell counts must follow the largest-remainder apportionment.
	counts := make([]int, p)
	for _, own := range res.Plan.Owner {
		counts[own]++
	}
	g := res.Plan.GridSize()
	var sumCap float64
	for _, cp := range caps {
		sumCap += cp
	}
	for i, n := range counts {
		exact := float64(g) * caps[i] / sumCap
		if float64(n) < exact-1 || float64(n) > exact+1 {
			t.Errorf("server %d owns %d cells, want %.2f ± 1 of %d", i, n, exact, g)
		}
	}
	// Received load must track capacity within a generous factor
	// (hashing is only asymptotically balanced).
	st := c.Metrics().RoundStats()[0]
	fast, slow := float64(st.Recv[0])/caps[0], (float64(st.Recv[2])+float64(st.Recv[3]))/2
	if fast > 2*slow || slow > 2*fast {
		t.Errorf("normalized loads diverge: fast %0.f vs slow mean %.0f (recv %v)", fast, slow, st.Recv)
	}
}

// TestHetBeatsUniformNormalizedMakespan is the acceptance criterion:
// on an unequal-capacity profile, capacity-aware shares must reduce
// the capacity-normalized makespan versus the uniform plan, which
// dumps load on slow machines at the same rate as fast ones.
func TestHetBeatsUniformNormalizedMakespan(t *testing.T) {
	q := hypergraph.Triangle()
	const p, seed = 8, 1
	caps := []float64{4, 4, 1, 1, 1, 1, 1, 1}
	rels := testkit.GenInstance(q, testkit.SkewNone, testkit.GenConfig{Tuples: 1200}, seed)
	want := testkit.OracleJoin(q, rels)

	cu := mpc.NewCluster(p, seed)
	if _, err := Run(cu, q, rels, "out", 9, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	uniform := cu.Metrics().NormalizedMakespan(caps)

	ch := mpc.NewCluster(p, seed)
	ch.SetCapacities(caps)
	if _, err := RunHet(ch, q, rels, "out", 9, LocalGeneric); err != nil {
		t.Fatal(err)
	}
	het := ch.Metrics().NormalizedMakespan(caps)

	got := testkit.GatherResult(ch, "out", q.Vars())
	got.Dedup()
	if !testkit.BagEqual(got, want) {
		t.Fatalf("het result differs from oracle: %s", testkit.DiffSample(got, want))
	}
	if het >= uniform {
		t.Errorf("het normalized makespan %.1f not below uniform %.1f", het, uniform)
	}
}
