package chaos_test

import (
	"testing"

	"mpcquery/internal/chaos"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// FuzzScheduleParse pins the parser contract: Parse never panics, and
// whenever it accepts a spec, Config.String() is a canonical form that
// reparses to the identical Config.
func FuzzScheduleParse(f *testing.F) {
	for _, seed := range []string{
		"7",
		"7:drop=0.05",
		"1:drop=0.05,dup=0.02,crash=0.01,straggle=0.1,delay=8,persist=2,attempts=8",
		"18446744073709551615:straggle=1",
		"0:dup=1e-05",
		"9: drop = 0.5 , crash = 0.25 ",
		"7:drop=1.5",
		"::",
		"7:drop=NaN",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := chaos.Parse(spec)
		if err != nil {
			return
		}
		out := cfg.String()
		cfg2, err := chaos.Parse(out)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical form %q rejected: %v", spec, out, err)
		}
		if cfg2 != cfg {
			t.Fatalf("Parse(%q) round-trip mismatch: %+v vs %+v (canonical %q)", spec, cfg, cfg2, out)
		}
		if out2 := cfg2.String(); out2 != out {
			t.Fatalf("String not a fixed point for %q: %q vs %q", spec, out, out2)
		}
	})
}

// fuzzRate maps a fuzz byte to a rate in [0, 0.5]: high enough to
// exercise every fault path, low enough that the bounded persistence
// guarantee (Attempts > Persist) always converges.
func fuzzRate(b byte) float64 { return float64(b%128) / 254 }

// runFuzzProgram executes a small two-round shuffle on c and returns
// the gathered output. The program routes every tuple through a
// partition round and a rebalance round, plus an arity-0 control
// stream, so drops/dups/crashes hit multi-stream, multi-round traffic.
func runFuzzProgram(c *mpc.Cluster, rows int) *relation.Relation {
	r := relation.New("R", "a", "b")
	for i := 0; i < rows; i++ {
		r.Append(int64(i%13), int64(i))
	}
	c.ScatterRoundRobin(r)
	c.Round("partition", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open("P", "a", "b")
		done := out.Open("done")
		local := s.RelOrEmpty("R", "a", "b")
		for i := 0; i < local.Len(); i++ {
			row := local.Row(i)
			st.SendRow(int(row[0])%s.P(), row)
		}
		done.Send((s.ID() + 1) % s.P())
	})
	c.Round("rebalance", func(s *mpc.Server, out *mpc.Out) {
		st := out.Open("out", "a", "b")
		local := s.RelOrEmpty("P", "a", "b")
		for i := 0; i < local.Len(); i++ {
			row := local.Row(i)
			st.SendRow(int(row[1])%s.P(), row)
		}
	})
	return c.Gather("out")
}

// FuzzChaosDeliver drives the recovery protocol with fuzz-chosen rates
// and asserts the central chaos guarantee: a recovered run commits
// state and metering bit-for-bit identical to the fault-free run, and
// replaying the same schedule reproduces the same recovery ledger.
func FuzzChaosDeliver(f *testing.F) {
	f.Add(uint64(1), byte(20), byte(10), byte(15), byte(30), uint16(64))
	f.Add(uint64(99), byte(0), byte(0), byte(0), byte(0), uint16(7))
	f.Add(uint64(3), byte(127), byte(127), byte(127), byte(127), uint16(200))
	f.Fuzz(func(t *testing.T, seed uint64, drop, dup, crash, straggle byte, size uint16) {
		rows := int(size%512) + 1
		cfg := chaos.Config{
			Seed:     seed,
			Drop:     fuzzRate(drop),
			Dup:      fuzzRate(dup),
			Crash:    fuzzRate(crash),
			Straggle: fuzzRate(straggle),
		}
		sched, err := chaos.New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}

		const p, clusterSeed = 4, 11
		clean := mpc.NewCluster(p, clusterSeed)
		want := runFuzzProgram(clean, rows)

		run := func() (*relation.Relation, *mpc.Metrics) {
			c := mpc.NewCluster(p, clusterSeed)
			c.SetFaultInjector(sched)
			out := runFuzzProgram(c, rows)
			if c.Failed() != nil {
				t.Fatalf("bounded-persistence run failed recovery: %v", c.Failed())
			}
			return out, c.Metrics()
		}
		got1, m1 := run()
		got2, m2 := run()

		if !got1.EqualAsSets(want) {
			t.Fatalf("chaos run output differs from fault-free run (rates %+v)", cfg)
		}
		if !got2.EqualAsSets(got1) {
			t.Fatalf("replaying the same schedule produced different output (rates %+v)", cfg)
		}
		cleanStats, s1, s2 := clean.Metrics().RoundStats(), m1.RoundStats(), m2.RoundStats()
		if len(s1) != len(cleanStats) || len(s2) != len(cleanStats) {
			t.Fatalf("round counts differ: clean=%d chaos=%d/%d", len(cleanStats), len(s1), len(s2))
		}
		for i := range cleanStats {
			for srv := 0; srv < p; srv++ {
				if s1[i].Recv[srv] != cleanStats[i].Recv[srv] || s1[i].RecvWords[srv] != cleanStats[i].RecvWords[srv] {
					t.Fatalf("round %d server %d metering differs from fault-free run", i, srv)
				}
			}
			if s1[i].Chaos == nil || !s1[i].Chaos.Equal(s2[i].Chaos) {
				t.Fatalf("round %d recovery ledger not reproduced on replay: %+v vs %+v", i, s1[i].Chaos, s2[i].Chaos)
			}
		}
	})
}
