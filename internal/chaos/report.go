package chaos

import (
	"fmt"

	"mpcquery/internal/mpc"
)

// Report summarizes one execution under a fault schedule: the spec that
// reproduces it, the recovery activity aggregated over rounds, and the
// failure if recovery exhausted its budget. Because schedules are
// deterministic, re-running the same program with the Spec reproduces
// the run — faults, replays, and output — bit for bit.
type Report struct {
	// Spec is the compact schedule form accepted by ParseSchedule.
	Spec string
	// Rounds counts metered rounds; Replays delivery attempts beyond
	// the first; Crashes crash events.
	Rounds, Replays, Crashes int
	// Dropped, Duplicated and Redelivered are fragment-event totals.
	Dropped, Duplicated, Redelivered int64
	// BackoffUnits and MaxStraggle aggregate the simulated delays.
	BackoffUnits, MaxStraggle int64
	// Failure is non-nil when a round's recovery failed.
	Failure *mpc.RecoveryFailure
}

// Report builds the run summary from the cluster metrics (nil is
// allowed when the run died before metering anything) and the recovery
// failure, if any.
func (s *Schedule) Report(m *mpc.Metrics, failure *mpc.RecoveryFailure) *Report {
	r := &Report{Spec: s.Config().String(), Failure: failure}
	if m == nil {
		return r
	}
	for _, st := range m.RoundStats() {
		r.Rounds++
		cs := st.Chaos
		if cs == nil {
			continue
		}
		r.Replays += cs.Replays()
		r.Crashes += cs.Crashes
		r.Dropped += cs.Dropped
		r.Duplicated += cs.Duplicated
		r.Redelivered += cs.Redelivered
		r.BackoffUnits += cs.BackoffUnits
		if v := cs.MaxStraggle(); v > r.MaxStraggle {
			r.MaxStraggle = v
		}
	}
	return r
}

// Failed reports whether the run ended in an unrecovered fault.
func (r *Report) Failed() bool { return r.Failure != nil }

func (r *Report) String() string {
	status := "recovered"
	if r.Failure != nil {
		status = "FAILED: " + r.Failure.Error()
	}
	return fmt.Sprintf("rounds=%d replays=%d dropped=%d duplicated=%d redelivered=%d crashes=%d backoff=%d maxStraggle=%d — %s (reproduce with -chaos %s)",
		r.Rounds, r.Replays, r.Dropped, r.Duplicated, r.Redelivered, r.Crashes, r.BackoffUnits, r.MaxStraggle, status, r.Spec)
}

// Capture runs fn, converting a *mpc.RecoveryFailure panic — the loud
// failure path of a round whose recovery exhausted its replay budget —
// into an ordinary return value. Other panics propagate.
func Capture(fn func() error) (failure *mpc.RecoveryFailure, err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*mpc.RecoveryFailure); ok {
				failure, err = f, f
				return
			}
			panic(r)
		}
	}()
	return nil, fn()
}
