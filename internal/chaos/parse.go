package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the compact text form of a Config:
//
//	seed[:key=value[,key=value...]]
//
// e.g. "7", "7:drop=0.05", or
// "7:drop=0.05,dup=0.02,crash=0.01,straggle=0.1,delay=8,persist=2,attempts=8".
// Keys are drop, dup, crash, straggle (rates in [0, 1]) and delay,
// persist, attempts, after (non-negative integers); omitted keys stay
// zero and pick up their defaults at schedule construction. Parse is
// the inverse of Config.String: Parse(cfg.String()) == cfg for every
// Config Parse accepts.
func Parse(s string) (Config, error) {
	head, rest, hasRest := strings.Cut(s, ":")
	seed, err := strconv.ParseUint(strings.TrimSpace(head), 10, 64)
	if err != nil {
		return Config{}, fmt.Errorf("chaos: bad seed %q in spec %q", head, s)
	}
	cfg := Config{Seed: seed}
	if hasRest && strings.TrimSpace(rest) != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Config{}, fmt.Errorf("chaos: bad field %q in spec %q (want key=value)", kv, s)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			switch k {
			case "drop", "dup", "crash", "straggle":
				r, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return Config{}, fmt.Errorf("chaos: bad rate %s=%q in spec %q", k, v, s)
				}
				switch k {
				case "drop":
					cfg.Drop = r
				case "dup":
					cfg.Dup = r
				case "crash":
					cfg.Crash = r
				case "straggle":
					cfg.Straggle = r
				}
			case "delay", "persist", "attempts", "after":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return Config{}, fmt.Errorf("chaos: bad integer %s=%q in spec %q", k, v, s)
				}
				switch k {
				case "delay":
					cfg.MaxDelay = n
				case "persist":
					if n > 1<<30 {
						return Config{}, fmt.Errorf("chaos: persist %d too large in spec %q", n, s)
					}
					cfg.Persist = int(n)
				case "attempts":
					if n > 1<<30 {
						return Config{}, fmt.Errorf("chaos: attempts %d too large in spec %q", n, s)
					}
					cfg.Attempts = int(n)
				case "after":
					if n > 1<<30 {
						return Config{}, fmt.Errorf("chaos: after %d too large in spec %q", n, s)
					}
					cfg.After = int(n)
				}
			default:
				return Config{}, fmt.Errorf("chaos: unknown key %q in spec %q", k, s)
			}
		}
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ParseSchedule parses a compact spec and builds the schedule.
func ParseSchedule(s string) (*Schedule, error) {
	cfg, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return New(cfg)
}

// MustParseSchedule is ParseSchedule, panicking on error — for tests
// and package-level schedule tables.
func MustParseSchedule(s string) *Schedule {
	sched, err := ParseSchedule(s)
	if err != nil {
		panic(err)
	}
	return sched
}

// String renders the compact text form accepted by Parse, emitting
// only non-zero fields in a canonical order.
func (c Config) String() string {
	var parts []string
	rate := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	rate("drop", c.Drop)
	rate("dup", c.Dup)
	rate("crash", c.Crash)
	rate("straggle", c.Straggle)
	if c.MaxDelay != 0 {
		parts = append(parts, "delay="+strconv.FormatInt(c.MaxDelay, 10))
	}
	if c.Persist != 0 {
		parts = append(parts, "persist="+strconv.Itoa(c.Persist))
	}
	if c.Attempts != 0 {
		parts = append(parts, "attempts="+strconv.Itoa(c.Attempts))
	}
	if c.After != 0 {
		parts = append(parts, "after="+strconv.Itoa(c.After))
	}
	if len(parts) == 0 {
		return strconv.FormatUint(c.Seed, 10)
	}
	return strconv.FormatUint(c.Seed, 10) + ":" + strings.Join(parts, ",")
}
