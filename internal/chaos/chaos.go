// Package chaos provides deterministic, seeded fault schedules for the
// MPC simulator. A Schedule implements mpc.FaultInjector: given a seed
// and a rate configuration it decides — as a pure function of
// (seed, round, attempt, server/fragment coordinates) — which servers
// straggle or crash and which message fragments are dropped or
// duplicated. Equal configurations therefore produce bit-for-bit equal
// fault sequences, recoveries and outputs: a failure observed under a
// schedule is reproduced exactly by re-running with the same compact
// spec (see Parse), which is what Report prints.
//
// Fault persistence is bounded: each fault point re-fires on at most
// Persist consecutive delivery attempts, so whenever the replay budget
// (Attempts) exceeds Persist every round is guaranteed to recover. A
// schedule with Persist ≥ Attempts can produce permanent faults — the
// regime used to test the failure path.
package chaos

import (
	"fmt"
	"math"

	"mpcquery/internal/mpc"
)

// Defaults applied by New for zero-valued Config knobs.
const (
	DefaultMaxDelay = 8
	DefaultPersist  = 2
	DefaultAttempts = 8
)

// Config is a fault schedule specification. The zero value of each
// knob (other than the probabilities) falls back to the Default*
// constant at schedule construction; a zero probability disables that
// fault class. Config round-trips through its compact text form: see
// Parse and String.
type Config struct {
	// Seed drives every fault decision.
	Seed uint64
	// Drop and Dup are per-fragment, per-round probabilities of a
	// transit loss or a wire duplicate. Crash is the per-(round, server)
	// probability of a crash at the round's delivery boundary. Straggle
	// is the per-(round, server) probability of straggling. All must
	// lie in [0, 1].
	Drop, Dup, Crash, Straggle float64
	// MaxDelay is the largest straggler delay in simulated units; a
	// straggling server is delayed by 1..MaxDelay units.
	MaxDelay int64
	// Persist is the maximum number of consecutive delivery attempts a
	// single fault point re-fires on (1 = every fault is transient).
	Persist int
	// Attempts is the per-round replay budget handed to the recovery
	// driver.
	Attempts int
	// After gates the whole schedule to late rounds: no fault of any
	// class fires before metered round index After (zero-based, the same
	// index the recovery driver passes in). Zero means faults are live
	// from the first round. Iterative workloads use this to aim faults
	// *between* fixpoint iterations rather than at the setup rounds.
	After int
}

func (c Config) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"dup", c.Dup}, {"crash", c.Crash}, {"straggle", c.Straggle}} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: rate %s=%v outside [0, 1]", r.name, r.v)
		}
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("chaos: delay %d < 0", c.MaxDelay)
	}
	if c.Persist < 0 {
		return fmt.Errorf("chaos: persist %d < 0", c.Persist)
	}
	if c.Attempts < 0 {
		return fmt.Errorf("chaos: attempts %d < 0", c.Attempts)
	}
	if c.After < 0 {
		return fmt.Errorf("chaos: after %d < 0", c.After)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	if c.Persist == 0 {
		c.Persist = DefaultPersist
	}
	if c.Attempts == 0 {
		c.Attempts = DefaultAttempts
	}
	return c
}

// Schedule is a deterministic fault schedule; it implements
// mpc.FaultInjector and is safe for concurrent use (it is immutable
// after construction).
type Schedule struct {
	cfg Config // normalized: defaults applied
	raw Config // as written, for Config()/String round-trips
}

var _ mpc.FaultInjector = (*Schedule)(nil)

// New builds a schedule from cfg, validating rates and applying
// defaults to zero-valued knobs.
func New(cfg Config) (*Schedule, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Schedule{cfg: cfg.withDefaults(), raw: cfg}, nil
}

// MustNew is New, panicking on invalid configuration.
func MustNew(cfg Config) *Schedule {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the configuration as written (defaults not
// materialized), so Config().String() reproduces the original spec.
func (s *Schedule) Config() Config { return s.raw }

// Fault-point kinds, mixed into the hash so the decision streams of
// different fault classes are independent.
const (
	kindDrop = 1 + iota
	kindDup
	kindCrash
	kindStraggle
	kindDelay
)

// splitmix64 is the finalizer used throughout the repo for seed mixing.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash derives the decision word of one fault point. Every coordinate
// passes through the full finalizer so nearby points are uncorrelated.
func (s *Schedule) hash(kind int, coords ...int) uint64 {
	h := splitmix64(s.cfg.Seed ^ uint64(kind)*0x9e3779b97f4a7c15)
	for _, c := range coords {
		h = splitmix64(h ^ uint64(c+1)*0xbf58476d1ce4e5b9)
	}
	return h
}

// prob maps a hash to a uniform [0, 1) sample.
func prob(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// persistence returns how many consecutive attempts the fault point
// with decision word h re-fires: uniform in [1, Persist].
func (s *Schedule) persistence(h uint64) int {
	if s.cfg.Persist <= 1 {
		return 1
	}
	return 1 + int((h>>7)%uint64(s.cfg.Persist))
}

// StragglerUnits implements mpc.FaultInjector.
func (s *Schedule) StragglerUnits(round, server int) int64 {
	if round < s.cfg.After {
		return 0
	}
	if s.cfg.Straggle == 0 || s.cfg.MaxDelay <= 0 {
		return 0
	}
	if prob(s.hash(kindStraggle, round, server)) >= s.cfg.Straggle {
		return 0
	}
	return 1 + int64(s.hash(kindDelay, round, server)%uint64(s.cfg.MaxDelay))
}

// CrashedAt implements mpc.FaultInjector: a crash point fires from
// attempt 0 for its full persistence (the server is down until its
// restart completes).
func (s *Schedule) CrashedAt(round, attempt, server int) bool {
	if round < s.cfg.After {
		return false
	}
	if s.cfg.Crash == 0 {
		return false
	}
	h := s.hash(kindCrash, round, server)
	return prob(h) < s.cfg.Crash && attempt < s.persistence(h)
}

// FragmentFate implements mpc.FaultInjector. Drop shadows duplicate
// when both fire for the same fragment.
func (s *Schedule) FragmentFate(round, attempt, src, dst, streamIdx int) mpc.FaultFate {
	if round < s.cfg.After {
		return mpc.FateDeliver
	}
	if s.cfg.Drop > 0 {
		if h := s.hash(kindDrop, round, src, dst, streamIdx); prob(h) < s.cfg.Drop && attempt < s.persistence(h) {
			return mpc.FateDrop
		}
	}
	if s.cfg.Dup > 0 {
		if h := s.hash(kindDup, round, src, dst, streamIdx); prob(h) < s.cfg.Dup && attempt < s.persistence(h) {
			return mpc.FateDuplicate
		}
	}
	return mpc.FateDeliver
}

// MaxAttempts implements mpc.FaultInjector.
func (s *Schedule) MaxAttempts() int { return s.cfg.Attempts }

// BackoffUnits implements mpc.FaultInjector: exponential in the
// attempt, capped at 64 units.
func (s *Schedule) BackoffUnits(attempt int) int64 {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 6 {
		attempt = 6
	}
	return 1 << uint(attempt)
}
