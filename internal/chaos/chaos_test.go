package chaos

import (
	"strings"
	"testing"

	"mpcquery/internal/mpc"
)

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"7",
		"7:drop=0.05",
		"1:drop=0.05,dup=0.02,crash=0.01,straggle=0.1,delay=8,persist=2,attempts=8",
		"18446744073709551615:straggle=1",
		"0:dup=1e-05",
		"3:crash=0.5,attempts=16",
		"404:crash=0.35,after=3",
		"1:drop=0.05,dup=0.02,crash=0.01,straggle=0.1,delay=8,persist=2,attempts=8,after=4",
	} {
		cfg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		out := cfg.String()
		cfg2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", spec, out, err)
		}
		if cfg2 != cfg {
			t.Errorf("%q: round-trip mismatch: %+v vs %+v", spec, cfg, cfg2)
		}
		if out2 := cfg2.String(); out2 != out {
			t.Errorf("%q: String not canonical: %q vs %q", spec, out, out2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                             // no seed
		"x",                            // non-numeric seed
		"-1",                           // negative seed
		"7:drop",                       // missing value
		"7:bogus=1",                    // unknown key
		"7:drop=nope",                  // bad rate
		"7:drop=1.5",                   // rate > 1
		"7:drop=-0.1",                  // rate < 0
		"7:drop=NaN",                   // NaN rate
		"7:drop=+Inf",                  // infinite rate
		"7:delay=-1",                   // negative delay
		"7:persist=-2",                 // negative persist
		"7:attempts=-3",                // negative attempts
		"7:after=-1",                   // negative after
		"7:delay=99999999999999999999", // overflow
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestScheduleDeterminism(t *testing.T) {
	a := MustParseSchedule("42:drop=0.3,dup=0.2,crash=0.25,straggle=0.5")
	b := MustParseSchedule("42:drop=0.3,dup=0.2,crash=0.25,straggle=0.5")
	other := MustParseSchedule("43:drop=0.3,dup=0.2,crash=0.25,straggle=0.5")
	same, diff := true, true
	for round := 0; round < 4; round++ {
		for srv := 0; srv < 16; srv++ {
			if a.StragglerUnits(round, srv) != b.StragglerUnits(round, srv) ||
				a.CrashedAt(round, 0, srv) != b.CrashedAt(round, 0, srv) {
				same = false
			}
			if a.StragglerUnits(round, srv) != other.StragglerUnits(round, srv) ||
				a.CrashedAt(round, 0, srv) != other.CrashedAt(round, 0, srv) {
				diff = false
			}
			for dst := 0; dst < 16; dst++ {
				if a.FragmentFate(round, 0, srv, dst, 0) != b.FragmentFate(round, 0, srv, dst, 0) {
					same = false
				}
				if a.FragmentFate(round, 0, srv, dst, 0) != other.FragmentFate(round, 0, srv, dst, 0) {
					diff = false
				}
			}
		}
	}
	if !same {
		t.Error("equal configs produced different fault decisions")
	}
	if diff {
		t.Error("different seeds produced identical fault decisions everywhere")
	}
}

func TestZeroRatesFireNothing(t *testing.T) {
	s := MustParseSchedule("9")
	for round := 0; round < 3; round++ {
		for srv := 0; srv < 8; srv++ {
			if s.StragglerUnits(round, srv) != 0 {
				t.Fatalf("straggler fired with zero rate")
			}
			if s.CrashedAt(round, 0, srv) {
				t.Fatalf("crash fired with zero rate")
			}
			for dst := 0; dst < 8; dst++ {
				if s.FragmentFate(round, 0, srv, dst, 0) != mpc.FateDeliver {
					t.Fatalf("fragment fate fired with zero rates")
				}
			}
		}
	}
}

// TestPersistenceBounded pins the convergence guarantee: with the
// default Persist, every fault point stops firing after Persist
// attempts, so the default replay budget always suffices.
func TestPersistenceBounded(t *testing.T) {
	s := MustParseSchedule("5:drop=1,crash=1")
	persist := s.cfg.Persist
	for round := 0; round < 3; round++ {
		for srv := 0; srv < 8; srv++ {
			if s.CrashedAt(round, persist, srv) {
				t.Fatalf("crash point fired past its persistence bound")
			}
			for dst := 0; dst < 8; dst++ {
				if s.FragmentFate(round, persist, srv, dst, 0) == mpc.FateDrop {
					t.Fatalf("drop point fired past its persistence bound")
				}
			}
		}
	}
	// Rate 1 means every point fires on attempt 0.
	if !s.CrashedAt(0, 0, 3) || s.FragmentFate(0, 0, 1, 2, 0) != mpc.FateDrop {
		t.Fatal("rate-1 fault point did not fire on attempt 0")
	}
}

// TestAfterGatesAllFaultClasses pins the mid-run fault axis: a schedule
// with after=N is completely silent on rounds < N and behaves exactly
// like its ungated twin from round N on.
func TestAfterGatesAllFaultClasses(t *testing.T) {
	gated := MustParseSchedule("42:drop=0.3,dup=0.2,crash=0.25,straggle=0.5,after=3")
	open := MustParseSchedule("42:drop=0.3,dup=0.2,crash=0.25,straggle=0.5")
	fired := false
	for round := 0; round < 8; round++ {
		for srv := 0; srv < 8; srv++ {
			if round < 3 {
				if gated.StragglerUnits(round, srv) != 0 || gated.CrashedAt(round, 0, srv) {
					t.Fatalf("round %d: gated schedule fired before after", round)
				}
			} else {
				if gated.StragglerUnits(round, srv) != open.StragglerUnits(round, srv) ||
					gated.CrashedAt(round, 0, srv) != open.CrashedAt(round, 0, srv) {
					t.Fatalf("round %d: gated schedule differs from ungated twin past after", round)
				}
			}
			for dst := 0; dst < 8; dst++ {
				fate := gated.FragmentFate(round, 0, srv, dst, 0)
				if round < 3 && fate != mpc.FateDeliver {
					t.Fatalf("round %d: gated fragment fate fired before after", round)
				}
				if round >= 3 {
					if fate != open.FragmentFate(round, 0, srv, dst, 0) {
						t.Fatalf("round %d: gated fragment fate differs past after", round)
					}
					if fate != mpc.FateDeliver {
						fired = true
					}
				}
			}
		}
	}
	if !fired {
		t.Fatal("gated schedule never fired past its after round")
	}
}

func TestRatesRoughlyCalibrated(t *testing.T) {
	s := MustParseSchedule("77:drop=0.25")
	fired := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if s.FragmentFate(i, 0, i%7, i%11, i%3) == mpc.FateDrop {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("drop rate 0.25 fired at %.3f over %d points", frac, n)
	}
}

func TestBackoffUnits(t *testing.T) {
	s := MustParseSchedule("1")
	prev := int64(0)
	for attempt := 0; attempt < 12; attempt++ {
		u := s.BackoffUnits(attempt)
		if u < 1 || u > 64 {
			t.Fatalf("backoff(%d) = %d outside [1, 64]", attempt, u)
		}
		if u < prev {
			t.Fatalf("backoff not monotone at attempt %d", attempt)
		}
		prev = u
	}
}

func TestReportString(t *testing.T) {
	s := MustParseSchedule("7:drop=0.1")
	rep := s.Report(nil, &mpc.RecoveryFailure{Round: 2, Name: "shuffle", Attempts: 8, Lost: 3})
	if !rep.Failed() {
		t.Fatal("report with failure not Failed()")
	}
	str := rep.String()
	for _, want := range []string{"FAILED", "shuffle", "-chaos 7:drop=0.1"} {
		if !strings.Contains(str, want) {
			t.Errorf("report %q missing %q", str, want)
		}
	}
}

func TestCapture(t *testing.T) {
	fail := &mpc.RecoveryFailure{Round: 0, Name: "r", Attempts: 1, Lost: 1}
	failure, err := Capture(func() error { panic(fail) })
	if failure != fail || err == nil {
		t.Fatalf("Capture did not surface the recovery failure: %v, %v", failure, err)
	}
	failure, err = Capture(func() error { return nil })
	if failure != nil || err != nil {
		t.Fatalf("clean Capture returned %v, %v", failure, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Capture swallowed a non-recovery panic")
		}
	}()
	Capture(func() error { panic("unrelated") })
}
