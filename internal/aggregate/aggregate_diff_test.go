package aggregate

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Differential tests: distributed grouped aggregation vs the sequential
// oracle, for every aggregate function, with and without the combiner,
// over skewed and skew-free group-key distributions. Aggregation is
// bag-sensitive (duplicates change Sum/Count), and both sides here
// consume the same un-deduplicated input.

var aggFns = []struct {
	name string
	fn   relation.AggFunc
}{
	{"sum", relation.Sum},
	{"count", relation.Count},
	{"min", relation.Min},
	{"max", relation.Max},
}

func gatherAgg(c *mpc.Cluster, outRel string, attrs []string) *relation.Relation {
	out := relation.New(outRel, attrs...)
	for i := 0; i < c.P(); i++ {
		if f := c.Server(i).Rel(outRel); f != nil {
			out.AppendAll(f.Project(outRel, attrs...))
		}
	}
	return out
}

// TestAggregateDiff: the one-round combiner aggregation must match the
// oracle exactly — same groups, same aggregate values.
func TestAggregateDiff(t *testing.T) {
	for _, af := range aggFns {
		af := af
		t.Run(af.name, func(t *testing.T) {
			testkit.Sweep(t, testkit.DefaultConfig(), func(t *testing.T, p int, seed int64, skew testkit.Skew) {
				rel := testkit.GenRelation("R", []string{"g", "v"}, skew, testkit.GenConfig{Tuples: 200}, seed)
				want := testkit.OracleGroupBy("out", rel, []string{"g"}, af.fn, "v", "a")
				c := mpc.NewCluster(p, seed)
				c.ScatterRoundRobin(rel)
				res, err := Run(c, Spec{
					Rel: "R", GroupBy: []string{"g"}, Fn: af.fn,
					AggAttr: "v", OutAttr: "a", OutRel: "out",
					Seed: uint64(seed),
				})
				if err != nil {
					t.Fatalf("aggregate: %v", err)
				}
				testkit.AssertRounds(t, c, 1)
				if res.Rounds != 1 {
					t.Errorf("Result.Rounds = %d, want 1", res.Rounds)
				}
				got := gatherAgg(c, "out", []string{"g", "a"})
				if !testkit.BagEqual(got, want) {
					t.Errorf("differential mismatch: %s", testkit.DiffSample(got, want))
				}
				if res.Groups != want.Len() {
					t.Errorf("Result.Groups = %d, want %d", res.Groups, want.Len())
				}
			})
		})
	}
}

// TestAggregateNoCombinerDiff: the ablation shipping raw tuples must
// produce identical results to both the combiner path and the oracle.
func TestAggregateNoCombinerDiff(t *testing.T) {
	cfg := testkit.DefaultConfig()
	cfg.Ps = []int{2, 4, 8}
	cfg.Seeds = []int64{1, 2, 3, 4, 5}
	for _, af := range aggFns {
		af := af
		t.Run(af.name, func(t *testing.T) {
			testkit.Sweep(t, cfg, func(t *testing.T, p int, seed int64, skew testkit.Skew) {
				rel := testkit.GenRelation("R", []string{"g", "v"}, skew, testkit.GenConfig{Tuples: 200}, seed)
				want := testkit.OracleGroupBy("out", rel, []string{"g"}, af.fn, "v", "a")
				c := mpc.NewCluster(p, seed)
				c.ScatterRoundRobin(rel)
				if _, err := Run(c, Spec{
					Rel: "R", GroupBy: []string{"g"}, Fn: af.fn,
					AggAttr: "v", OutAttr: "a", OutRel: "out",
					Seed: uint64(seed), NoCombiner: true,
				}); err != nil {
					t.Fatalf("aggregate: %v", err)
				}
				testkit.AssertRounds(t, c, 1)
				got := gatherAgg(c, "out", []string{"g", "a"})
				if !testkit.BagEqual(got, want) {
					t.Errorf("differential mismatch: %s", testkit.DiffSample(got, want))
				}
			})
		})
	}
}

// TestCombinerReducesShuffle pins the reason the combiner exists: on a
// heavy-hitter distribution the pre-aggregated shuffle must carry
// strictly fewer tuples than the raw one.
func TestCombinerReducesShuffle(t *testing.T) {
	rel := testkit.GenRelation("R", []string{"g", "v"}, testkit.SkewHeavy, testkit.GenConfig{Tuples: 400}, 7)
	load := func(noCombiner bool) int64 {
		c := mpc.NewCluster(4, 1)
		c.ScatterRoundRobin(rel)
		if _, err := Run(c, Spec{
			Rel: "R", GroupBy: []string{"g"}, Fn: relation.Sum,
			AggAttr: "v", OutAttr: "a", OutRel: "out",
			NoCombiner: noCombiner,
		}); err != nil {
			t.Fatalf("aggregate: %v", err)
		}
		return c.Metrics().TotalComm()
	}
	with, without := load(false), load(true)
	if with >= without {
		t.Fatalf("combiner did not reduce communication: %d (combiner) vs %d (raw)", with, without)
	}
}
