package aggregate

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Cross-backend differential tests: grouped aggregation is outside the
// conjunctive-query harness, so SweepBackends runs the same workload on
// the in-process engine and the TCP transport and asserts the runs
// indistinguishable. The combiner path exercises pre-aggregated partial
// streams; the ablation ships raw tuples (the heaviest shuffle here).

func aggBackendWorkload(fn relation.AggFunc, combiner bool) func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
	return func(t *testing.T, c *mpc.Cluster, p int, seed int64, skew testkit.Skew) {
		rel := testkit.GenRelation("R", []string{"g", "v"}, skew, testkit.GenConfig{Tuples: 200}, seed)
		c.ScatterRoundRobin(rel)
		_, err := Run(c, Spec{
			Rel: "R", GroupBy: []string{"g"}, Fn: fn,
			AggAttr: "v", OutAttr: "a", OutRel: "out",
			Seed: uint64(seed), NoCombiner: !combiner,
		})
		if err != nil {
			t.Fatalf("aggregate: %v", err)
		}
	}
}

func TestAggregateBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, aggBackendWorkload(relation.Sum, true))
}

func TestAggregateNoCombinerBackendDiff(t *testing.T) {
	testkit.SweepBackends(t, testkit.Config{}, aggBackendWorkload(relation.Max, false))
}
