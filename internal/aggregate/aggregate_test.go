package aggregate

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/workload"
)

func scatter(t *testing.T, p int, rel *relation.Relation) *mpc.Cluster {
	t.Helper()
	c := mpc.NewCluster(p, 1)
	c.ScatterRoundRobin(rel)
	return c
}

func salesRel(n int, seed int64) *relation.Relation {
	u := workload.Uniform("sales", []string{"g1", "g2", "v"}, n, 20, seed)
	return u
}

func TestRunSumMatchesLocal(t *testing.T) {
	rel := salesRel(5000, 3)
	c := scatter(t, 8, rel)
	spec := Spec{Rel: "sales", GroupBy: []string{"g1", "g2"}, Fn: relation.Sum,
		AggAttr: "v", OutAttr: "total", OutRel: "agg", Seed: 7}
	res, err := Run(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	got := c.Gather("agg")
	want := Local(rel, spec)
	if !got.EqualAsSets(want) {
		t.Fatalf("distributed sum differs: %d vs %d groups", got.Len(), want.Len())
	}
	if res.Groups != want.Len() {
		t.Fatalf("Groups = %d, want %d", res.Groups, want.Len())
	}
}

func TestRunCountMinMax(t *testing.T) {
	rel := salesRel(3000, 5)
	for _, fn := range []relation.AggFunc{relation.Count, relation.Min, relation.Max} {
		c := scatter(t, 4, rel)
		spec := Spec{Rel: "sales", GroupBy: []string{"g1"}, Fn: fn,
			AggAttr: "v", OutAttr: "a", OutRel: "agg", Seed: 9}
		if _, err := Run(c, spec); err != nil {
			t.Fatal(err)
		}
		got := c.Gather("agg")
		want := Local(rel, spec)
		if !got.EqualAsSets(want) {
			t.Fatalf("fn %d differs from local reference", fn)
		}
	}
}

// Groups split across servers must merge correctly: every server holds
// part of every group under round-robin placement.
func TestGroupsSplitAcrossServers(t *testing.T) {
	rel := relation.New("sales", "g", "v")
	for i := 0; i < 100; i++ {
		rel.Append(relation.Value(i%3), relation.Value(i))
	}
	c := scatter(t, 8, rel)
	spec := Spec{Rel: "sales", GroupBy: []string{"g"}, Fn: relation.Sum,
		AggAttr: "v", OutAttr: "s", OutRel: "agg", Seed: 1}
	if _, err := Run(c, spec); err != nil {
		t.Fatal(err)
	}
	got := c.Gather("agg")
	if got.Len() != 3 {
		t.Fatalf("groups = %d, want 3", got.Len())
	}
	if !got.EqualAsSets(Local(rel, spec)) {
		t.Fatal("split-group sums wrong")
	}
}

// Each group's final aggregate must live on exactly one server.
func TestGroupOwnership(t *testing.T) {
	rel := salesRel(2000, 7)
	c := scatter(t, 8, rel)
	spec := Spec{Rel: "sales", GroupBy: []string{"g1", "g2"}, Fn: relation.Count,
		OutAttr: "n", OutRel: "agg", Seed: 3}
	if _, err := Run(c, spec); err != nil {
		t.Fatal(err)
	}
	// EncodeKey is an identity key here (which server owns this group);
	// nothing depends on the lexicographic order of the encoded strings.
	seen := map[string]int{}
	for i := 0; i < c.P(); i++ {
		frag := c.Server(i).Rel("agg")
		if frag == nil {
			continue
		}
		for j := 0; j < frag.Len(); j++ {
			k := relation.EncodeKey(frag.Row(j), []int{0, 1})
			if prev, ok := seen[k]; ok && prev != i {
				t.Fatalf("group on servers %d and %d", prev, i)
			}
			seen[k] = i
		}
	}
}

// TestCombinerReducesLoad is the ablation: with the combiner the
// shuffle ships at most |groups| per server; without it, every tuple.
func TestCombinerReducesLoad(t *testing.T) {
	rel := salesRel(20000, 9) // only 20×20 = 400 possible groups
	base := Spec{Rel: "sales", GroupBy: []string{"g1", "g2"}, Fn: relation.Sum,
		AggAttr: "v", OutAttr: "s", OutRel: "agg", Seed: 5}

	cWith := scatter(t, 8, rel)
	if _, err := Run(cWith, base); err != nil {
		t.Fatal(err)
	}
	withLoad := cWith.Metrics().MaxLoad()

	specNo := base
	specNo.NoCombiner = true
	cWithout := scatter(t, 8, rel)
	if _, err := Run(cWithout, specNo); err != nil {
		t.Fatal(err)
	}
	withoutLoad := cWithout.Metrics().MaxLoad()

	if withLoad*4 > withoutLoad {
		t.Fatalf("combiner should cut load dramatically: with %d, without %d", withLoad, withoutLoad)
	}
	// Results agree regardless.
	if !cWith.Gather("agg").EqualAsSets(cWithout.Gather("agg")) {
		t.Fatal("combiner changed the result")
	}
}

func TestCountWithoutCombinerCorrect(t *testing.T) {
	rel := salesRel(1000, 11)
	spec := Spec{Rel: "sales", GroupBy: []string{"g1"}, Fn: relation.Count,
		OutAttr: "n", OutRel: "agg", Seed: 2, NoCombiner: true}
	c := scatter(t, 4, rel)
	if _, err := Run(c, spec); err != nil {
		t.Fatal(err)
	}
	if !c.Gather("agg").EqualAsSets(Local(rel, spec)) {
		t.Fatal("no-combiner count wrong")
	}
}

func TestRunValidation(t *testing.T) {
	c := mpc.NewCluster(2, 1)
	if _, err := Run(c, Spec{Rel: "x", OutRel: "y"}); err == nil {
		t.Fatal("missing group-by should error")
	}
	if _, err := Run(c, Spec{GroupBy: []string{"g"}}); err == nil {
		t.Fatal("missing relation names should error")
	}
}

func TestEmptyInput(t *testing.T) {
	c := mpc.NewCluster(4, 1)
	c.ScatterRoundRobin(relation.New("sales", "g", "v"))
	res, err := Run(c, Spec{Rel: "sales", GroupBy: []string{"g"}, Fn: relation.Sum,
		AggAttr: "v", OutAttr: "s", OutRel: "agg", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 0 {
		t.Fatalf("empty input produced %d groups", res.Groups)
	}
}
