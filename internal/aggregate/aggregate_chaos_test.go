package aggregate

import (
	"testing"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/testkit"
)

// Chaos-differential tests: grouped aggregation under seeded fault
// schedules. Aggregation is bag-sensitive — a duplicate the
// exactly-once filter failed to discard would change Sum/Count, and a
// lost fragment would drop groups — so oracle equality here pins the
// recovery driver's delivery semantics, not just its bookkeeping.

func TestAggregateChaos(t *testing.T) {
	for _, af := range aggFns {
		af := af
		t.Run(af.name, func(t *testing.T) {
			testkit.SweepChaos(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
				rel := testkit.GenRelation("R", []string{"g", "v"}, skew, testkit.GenConfig{Tuples: 200}, seed)
				want := testkit.OracleGroupBy("out", rel, []string{"g"}, af.fn, "v", "a")
				spec2 := Spec{
					Rel: "R", GroupBy: []string{"g"}, Fn: af.fn,
					AggAttr: "v", OutAttr: "a", OutRel: "out",
					Seed: uint64(seed),
				}

				clean := mpc.NewCluster(p, seed)
				clean.ScatterRoundRobin(rel)
				if _, err := Run(clean, spec2); err != nil {
					t.Fatalf("fault-free aggregate: %v", err)
				}

				c := testkit.NewChaosCluster(p, seed, spec)
				c.ScatterRoundRobin(rel)
				if _, err := Run(c, spec2); err != nil {
					t.Fatalf("chaos aggregate: %v", err)
				}
				testkit.AssertRecovered(t, c)
				testkit.AssertSameLRC(t, clean, c)
				got := gatherAgg(c, "out", []string{"g", "a"})
				if !testkit.BagEqual(got, want) {
					t.Errorf("chaos run differs from oracle: %s", testkit.DiffSample(got, want))
				}
			})
		})
	}
}

// TestAggregateNoCombinerChaos: the raw-shuffle ablation ships one
// fragment per input tuple group, the largest fragment population the
// package can offer the injector.
func TestAggregateNoCombinerChaos(t *testing.T) {
	testkit.SweepChaos(t, testkit.Config{}, func(t *testing.T, p int, seed int64, skew testkit.Skew, spec string) {
		rel := testkit.GenRelation("R", []string{"g", "v"}, skew, testkit.GenConfig{Tuples: 200}, seed)
		want := testkit.OracleGroupBy("out", rel, []string{"g"}, relation.Sum, "v", "a")
		c := testkit.NewChaosCluster(p, seed, spec)
		c.ScatterRoundRobin(rel)
		if _, err := Run(c, Spec{
			Rel: "R", GroupBy: []string{"g"}, Fn: relation.Sum,
			AggAttr: "v", OutAttr: "a", OutRel: "out",
			Seed: uint64(seed), NoCombiner: true,
		}); err != nil {
			t.Fatalf("chaos aggregate: %v", err)
		}
		testkit.AssertRecovered(t, c)
		got := gatherAgg(c, "out", []string{"g", "a"})
		if !testkit.BagEqual(got, want) {
			t.Errorf("chaos run differs from oracle: %s", testkit.DiffSample(got, want))
		}
	})
}
