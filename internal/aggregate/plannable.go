package aggregate

import (
	"fmt"

	"mpcquery/internal/cost"
)

// EstimateGroups predicts the number of output groups of a group-by
// over the join result: the product over group-by variables of the
// smallest distinct count observed for that variable in any atom,
// capped at the estimated join output (grouping can only shrink it).
// The planner uses it to cost the aggregation round it appends to a
// join plan when plan.Options.Aggregate is set.
func EstimateGroups(st *cost.QueryStats, groupBy []string) float64 {
	groups := 1.0
	for _, v := range groupBy {
		min := 0
		for _, a := range st.Query.Atoms {
			if !a.HasVar(v) {
				continue
			}
			d := st.Distinct[a.Name][v]
			if d < 1 {
				d = 1
			}
			if min == 0 || d < min {
				min = d
			}
		}
		if min > 0 {
			groups *= float64(min)
		}
	}
	if st.OutEst > 0 && groups > st.OutEst {
		groups = st.OutEst
	}
	return groups
}

// Plannables describes the aggregation operator to the planner. It is
// not a standalone join strategy — it rides on top of whatever plan
// produced the join result — so its descriptor never applies on its
// own; it exists so EXPLAIN can list the operator and its cost shape.
func Plannables() []cost.Plannable {
	return []cost.Plannable{
		{
			Alg:        "aggregate",
			Doc:        "combiner-style group-by pushdown, one extra round (slides 87-90)",
			Executable: false,
			Applies: func(st *cost.QueryStats) error {
				return fmt.Errorf("post-processing operator: attaches to a join plan via plan.Options.Aggregate, not a standalone strategy")
			},
			Predict: func(st *cost.QueryStats) (cost.Estimate, error) {
				p := float64(st.P)
				return cost.Estimate{L: st.OutEst / p, R: 1, C: st.OutEst}, nil
			},
		},
	}
}
