// Package aggregate implements distributed grouping and aggregation in
// the MPC model — the "queries are typically executed in multiple
// rounds" workload of slide 52 (GROUP BY cKey, month SUM(price)).
//
// The algorithm is the standard one-round combiner pattern: every
// server pre-aggregates its local fragment (the combiner), the partial
// aggregates are hash-partitioned by group key, and each server
// finalizes its groups locally. Pre-aggregation makes the communication
// proportional to the number of *distinct groups* per server rather
// than the number of input tuples, which is what makes grouped
// aggregation cheap in practice.
package aggregate

import (
	"fmt"

	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
	"mpcquery/internal/trace"
)

// Spec describes one distributed aggregation.
type Spec struct {
	// Rel is the name of the distributed input relation.
	Rel string
	// GroupBy lists the grouping attributes.
	GroupBy []string
	// Fn is the aggregate function.
	Fn relation.AggFunc
	// AggAttr is the aggregated attribute (ignored for Count).
	AggAttr string
	// OutAttr names the aggregate output column.
	OutAttr string
	// OutRel names the distributed output relation.
	OutRel string
	// Seed drives the group-key hash.
	Seed uint64
	// NoCombiner disables local pre-aggregation (for ablations: the
	// shuffle then carries every input tuple).
	NoCombiner bool
}

// Result reports a distributed aggregation.
type Result struct {
	OutRel string
	Rounds int
	// Groups is the total number of output groups.
	Groups int
}

// decomposable reports whether fn can be pre-aggregated with itself as
// the merge function. Sum/Min/Max merge with themselves; Count merges
// with Sum.
func mergeFn(fn relation.AggFunc) relation.AggFunc {
	if fn == relation.Count {
		return relation.Sum
	}
	return fn
}

// Run executes the aggregation in one MPC round.
func Run(c *mpc.Cluster, spec Spec) (*Result, error) {
	if len(spec.GroupBy) == 0 {
		return nil, fmt.Errorf("aggregate: no group-by attributes")
	}
	if spec.OutRel == "" || spec.Rel == "" {
		return nil, fmt.Errorf("aggregate: missing relation names")
	}
	outAttrs := append(append([]string(nil), spec.GroupBy...), spec.OutAttr)
	trace.Annotatef(c, "aggregate.Run %s group-by %v", spec.Rel, spec.GroupBy)
	start := c.Metrics().Rounds()
	gb := spec.GroupBy
	c.Round("aggregate:"+spec.OutRel, func(srv *mpc.Server, out *mpc.Out) {
		frag := srv.Rel(spec.Rel)
		if frag == nil || frag.Len() == 0 {
			return
		}
		var partial *relation.Relation
		if spec.NoCombiner {
			// Ship raw tuples re-shaped to (group..., value): for Count
			// the value column is a constant 1.
			partial = relation.New("p", outAttrs...)
			gcols := make([]int, len(gb))
			for i, a := range gb {
				gcols[i] = frag.MustCol(a)
			}
			acol := -1
			if spec.Fn != relation.Count {
				acol = frag.MustCol(spec.AggAttr)
			}
			row := make([]relation.Value, len(outAttrs))
			for i := 0; i < frag.Len(); i++ {
				src := frag.Row(i)
				for j, cix := range gcols {
					row[j] = src[cix]
				}
				if acol >= 0 {
					row[len(row)-1] = src[acol]
				} else {
					row[len(row)-1] = 1
				}
				partial.AppendRow(row)
			}
		} else {
			partial = relation.GroupBy("p", frag, gb, spec.Fn, spec.AggAttr, spec.OutAttr)
		}
		st := out.Open(spec.OutRel+":partial", outAttrs...)
		gcols := make([]int, len(gb))
		for i := range gb {
			gcols[i] = i // partial's group columns are leading
		}
		for i := 0; i < partial.Len(); i++ {
			row := partial.Row(i)
			st.SendRow(relation.Bucket(relation.HashRow(row, gcols, spec.Seed), c.P()), row)
		}
	})
	merge := mergeFn(spec.Fn)
	if spec.NoCombiner {
		merge = spec.Fn
		if spec.Fn == relation.Count {
			merge = relation.Sum
		}
	}
	c.LocalStep(func(srv *mpc.Server) {
		frag := srv.RelOrEmpty(spec.OutRel+":partial", outAttrs...)
		srv.Put(relation.GroupBy(spec.OutRel, frag, gb, merge, spec.OutAttr, spec.OutAttr))
		srv.Delete(spec.OutRel + ":partial")
	})
	return &Result{
		OutRel: spec.OutRel,
		Rounds: c.Metrics().Rounds() - start,
		Groups: c.TotalLen(spec.OutRel),
	}, nil
}

// Local computes the same aggregation on a gathered relation — the
// single-machine reference for verification.
func Local(rel *relation.Relation, spec Spec) *relation.Relation {
	return relation.GroupBy(spec.OutRel, rel, spec.GroupBy, spec.Fn, spec.AggAttr, spec.OutAttr)
}
