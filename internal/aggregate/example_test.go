package aggregate_test

import (
	"fmt"

	"mpcquery/internal/aggregate"
	"mpcquery/internal/mpc"
	"mpcquery/internal/relation"
)

// ExampleRun computes a distributed GROUP BY ... SUM with combiner
// pre-aggregation (the slide-52 workload).
func ExampleRun() {
	sales := relation.New("sales", "month", "price")
	for i := 0; i < 120; i++ {
		sales.Append(relation.Value(i%12), 10)
	}
	c := mpc.NewCluster(4, 1)
	c.ScatterRoundRobin(sales)
	res, err := aggregate.Run(c, aggregate.Spec{
		Rel: "sales", GroupBy: []string{"month"}, Fn: relation.Sum,
		AggAttr: "price", OutAttr: "total", OutRel: "agg", Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("groups:", res.Groups)
	out := c.Gather("agg")
	out.Sort()
	fmt.Println("january total:", out.Row(0)[1])
	// Output:
	// rounds: 1
	// groups: 12
	// january total: 100
}
