package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestMaximizeSimple(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 (classic Dantzig).
	p := NewMaximize([]float64{3, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 36, 1e-6, "objective")
	approx(t, sol.X[0], 2, 1e-6, "x")
	approx(t, sol.X[1], 6, 1e-6, "y")
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2  → x=8? No: cheaper to use x.
	// Optimal: x=10,y=0? check x≥2 satisfied; obj=20.
	p := NewMinimize([]float64{2, 3})
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 20, 1e-6, "objective")
}

func TestEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x - y = 1 → x=2, y=1.
	p := NewMinimize([]float64{1, 1})
	p.AddConstraint([]float64{1, 2}, EQ, 4)
	p.AddConstraint([]float64{1, -1}, EQ, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.X[0], 2, 1e-6, "x")
	approx(t, sol.X[1], 1, 1e-6, "y")
}

func TestInfeasible(t *testing.T) {
	p := NewMinimize([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewMaximize([]float64{1})
	p.AddConstraint([]float64{-1}, LE, 1)
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x ≤ -? normalization path: -x ≤ -2 means x ≥ 2.
	p := NewMinimize([]float64{1})
	p.AddConstraint([]float64{-1}, LE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.X[0], 2, 1e-6, "x")
}

func TestDegenerateTies(t *testing.T) {
	// Degenerate vertex: multiple constraints meet; Bland's rule must
	// terminate.
	p := NewMaximize([]float64{1, 1})
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 2, 1e-6, "objective")
}

func TestTriangleEdgePackingLP(t *testing.T) {
	// The triangle query's fractional edge packing: max uR+uS+uT with
	// each vertex constraint uR+uT ≤ 1 (x), uR+uS ≤ 1 (y), uS+uT ≤ 1 (z).
	// Optimum is 3/2 at u = (1/2,1/2,1/2).
	p := NewMaximize([]float64{1, 1, 1})
	p.AddConstraint([]float64{1, 0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1, 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 1.5, 1e-6, "tau*")
}

func TestTriangleEdgeCoverLP(t *testing.T) {
	// Fractional edge cover of the triangle: min uR+uS+uT with each
	// vertex covered ≥ 1. Optimum 3/2.
	p := NewMinimize([]float64{1, 1, 1})
	p.AddConstraint([]float64{1, 0, 1}, GE, 1)
	p.AddConstraint([]float64{1, 1, 0}, GE, 1)
	p.AddConstraint([]float64{0, 1, 1}, GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 1.5, 1e-6, "rho*")
}

func TestConstraintArityPanics(t *testing.T) {
	p := NewMinimize([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong constraint arity")
		}
	}()
	p.AddConstraint([]float64{1}, LE, 1)
}

// TestRandomLPDualityGap solves random primal/dual pairs and checks
// strong duality: max{c·x : Ax ≤ b, x ≥ 0} = min{b·y : Aᵀy ≥ c, y ≥ 0}
// whenever both are feasible and bounded.
func TestRandomLPDualityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	solved := 0
	for trial := 0; trial < 200 && solved < 50; trial++ {
		nv := 1 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		c := make([]float64, nv)
		for j := range c {
			c[j] = float64(rng.Intn(9) + 1)
		}
		A := make([][]float64, nc)
		b := make([]float64, nc)
		for i := range A {
			A[i] = make([]float64, nv)
			for j := range A[i] {
				A[i][j] = float64(rng.Intn(5))
			}
			b[i] = float64(rng.Intn(10) + 1)
		}
		primal := NewMaximize(c)
		for i := range A {
			primal.AddConstraint(A[i], LE, b[i])
		}
		psol, perr := primal.Solve()
		dual := NewMinimize(b)
		for j := 0; j < nv; j++ {
			col := make([]float64, nc)
			for i := 0; i < nc; i++ {
				col[i] = A[i][j]
			}
			dual.AddConstraint(col, GE, c[j])
		}
		dsol, derr := dual.Solve()
		if perr == ErrUnbounded {
			if derr != ErrInfeasible {
				t.Fatalf("trial %d: primal unbounded but dual err = %v", trial, derr)
			}
			continue
		}
		if perr != nil || derr != nil {
			continue
		}
		if math.Abs(psol.Objective-dsol.Objective) > 1e-6*(1+math.Abs(psol.Objective)) {
			t.Fatalf("trial %d: duality gap: primal %g, dual %g", trial, psol.Objective, dsol.Objective)
		}
		solved++
	}
	if solved < 20 {
		t.Fatalf("too few solvable random LPs: %d", solved)
	}
}

// TestFeasibilityOfSolution checks the returned point satisfies all
// constraints on random problems.
func TestFeasibilityOfSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		nv := 1 + rng.Intn(5)
		nc := 1 + rng.Intn(5)
		c := make([]float64, nv)
		for j := range c {
			c[j] = float64(rng.Intn(11) - 5)
		}
		p := NewMinimize(c)
		type con struct {
			a   []float64
			op  Op
			rhs float64
		}
		var cons []con
		for i := 0; i < nc; i++ {
			a := make([]float64, nv)
			for j := range a {
				a[j] = float64(rng.Intn(7) - 3)
			}
			op := Op(rng.Intn(3))
			rhs := float64(rng.Intn(21) - 10)
			p.AddConstraint(a, op, rhs)
			cons = append(cons, con{a, op, rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			continue // infeasible/unbounded is fine
		}
		for _, x := range sol.X {
			if x < -1e-7 {
				t.Fatalf("trial %d: negative variable %g", trial, x)
			}
		}
		for ci, con := range cons {
			dot := 0.0
			for j := range con.a {
				dot += con.a[j] * sol.X[j]
			}
			switch con.op {
			case LE:
				if dot > con.rhs+1e-6 {
					t.Fatalf("trial %d con %d: %g ≰ %g", trial, ci, dot, con.rhs)
				}
			case GE:
				if dot < con.rhs-1e-6 {
					t.Fatalf("trial %d con %d: %g ≱ %g", trial, ci, dot, con.rhs)
				}
			case EQ:
				if math.Abs(dot-con.rhs) > 1e-6 {
					t.Fatalf("trial %d con %d: %g ≠ %g", trial, ci, dot, con.rhs)
				}
			}
		}
	}
}

// Duals of the triangle edge-packing LP must be the optimal fractional
// vertex cover (LP duality, slide 39): (1/2, 1/2, 1/2) with value 3/2.
func TestDualsTrianglePacking(t *testing.T) {
	p := NewMaximize([]float64{1, 1, 1})
	p.AddConstraint([]float64{1, 0, 1}, LE, 1) // vertex x
	p.AddConstraint([]float64{1, 1, 0}, LE, 1) // vertex y
	p.AddConstraint([]float64{0, 1, 1}, LE, 1) // vertex z
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, d := range sol.Duals {
		approx(t, d, 0.5, 1e-6, "dual "+string(rune('x'+i)))
		sum += d
	}
	approx(t, sum, sol.Objective, 1e-6, "strong duality")
}

// Strong duality via Duals on random max/≤ problems: Σ y_i b_i must
// equal the primal optimum, and every dual must be ≥ 0.
func TestDualsStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	checked := 0
	for trial := 0; trial < 200 && checked < 40; trial++ {
		nv := 1 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		c := make([]float64, nv)
		for j := range c {
			c[j] = float64(rng.Intn(9) + 1)
		}
		p := NewMaximize(c)
		b := make([]float64, nc)
		for i := 0; i < nc; i++ {
			a := make([]float64, nv)
			nz := false
			for j := range a {
				a[j] = float64(rng.Intn(5))
				if a[j] != 0 {
					nz = true
				}
			}
			if !nz {
				a[0] = 1
			}
			b[i] = float64(rng.Intn(10) + 1)
			p.AddConstraint(a, LE, b[i])
		}
		sol, err := p.Solve()
		if err != nil {
			continue
		}
		dot := 0.0
		for i, d := range sol.Duals {
			if d < -1e-7 {
				t.Fatalf("trial %d: negative dual %g", trial, d)
			}
			dot += d * b[i]
		}
		if math.Abs(dot-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: Σy·b = %g != objective %g", trial, dot, sol.Objective)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("too few dual checks: %d", checked)
	}
}

// Minimize/GE duals: min b·y dual of the cover LP should certify ρ*.
func TestDualsMinimizeGE(t *testing.T) {
	// Triangle fractional edge cover: min Σw, each vertex covered.
	p := NewMinimize([]float64{1, 1, 1})
	p.AddConstraint([]float64{1, 0, 1}, GE, 1)
	p.AddConstraint([]float64{1, 1, 0}, GE, 1)
	p.AddConstraint([]float64{0, 1, 1}, GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	dot := 0.0
	for _, d := range sol.Duals {
		if d < -1e-7 {
			t.Fatalf("negative dual %g", d)
		}
		dot += d // rhs all 1
	}
	approx(t, dot, sol.Objective, 1e-6, "cover strong duality")
}

// Duals of equality constraints are explicitly NaN.
func TestDualsEqualityNaN(t *testing.T) {
	p := NewMinimize([]float64{1, 1})
	p.AddConstraint([]float64{1, 2}, EQ, 4)
	p.AddConstraint([]float64{1, 0}, LE, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(sol.Duals[0]) {
		t.Fatalf("EQ dual = %g, want NaN", sol.Duals[0])
	}
	if math.IsNaN(sol.Duals[1]) {
		t.Fatal("LE dual should be defined")
	}
}
