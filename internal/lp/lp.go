// Package lp implements a small dense two-phase primal simplex solver
// for linear programs in the form
//
//	minimize   c·x
//	subject to a_i·x (≤ | = | ≥) b_i   for each constraint i
//	           x ≥ 0
//
// It exists to solve the tiny LPs the MPC join theory needs — fractional
// edge packings and covers of query hypergraphs (a handful of variables
// and constraints) and the HyperCube share-optimization LP — so
// robustness on small problems matters and large-scale performance does
// not. Bland's anti-cycling rule keeps termination guaranteed.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // a·x ≤ b
	GE           // a·x ≥ b
	EQ           // a·x = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

type constraint struct {
	coefs []float64
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create with NewMinimize or NewMaximize.
type Problem struct {
	c        []float64 // objective for minimization (negated if maximizing)
	maximize bool
	cons     []constraint
}

// NewMinimize creates a minimization problem with the given objective
// coefficients; the number of variables is len(c).
func NewMinimize(c []float64) *Problem {
	return &Problem{c: append([]float64(nil), c...)}
}

// NewMaximize creates a maximization problem.
func NewMaximize(c []float64) *Problem {
	p := NewMinimize(c)
	p.maximize = true
	return p
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.c) }

// AddConstraint appends the constraint coefs·x (op) rhs. The coefficient
// slice must have exactly NumVars entries.
func (p *Problem) AddConstraint(coefs []float64, op Op, rhs float64) {
	if len(coefs) != len(p.c) {
		panic(fmt.Sprintf("lp: constraint has %d coefficients, want %d", len(coefs), len(p.c)))
	}
	p.cons = append(p.cons, constraint{coefs: append([]float64(nil), coefs...), op: op, rhs: rhs})
}

// Solution is an optimal LP solution.
type Solution struct {
	X         []float64 // optimal variable assignment
	Objective float64   // optimal objective value (in the user's sense)
	// Duals holds one dual value per constraint, in the user's sense
	// (maximize/≤ and minimize/≥ duals are ≥ 0). Duals of equality
	// constraints are reported as NaN: the two-phase solver drops their
	// artificial columns before phase 2, so their multipliers are not
	// recoverable from the final tableau.
	Duals []float64
}

const eps = 1e-9

// Solve runs two-phase simplex and returns an optimal solution, or
// ErrInfeasible / ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	n := len(p.c)
	m := len(p.cons)

	// Column layout: [0,n) decision vars, then one slack/surplus column
	// per inequality, then one artificial column per GE/EQ row (and per
	// LE row with negative rhs after normalization... normalization
	// below guarantees rhs ≥ 0 first, so artificials are only needed for
	// GE and EQ rows).
	type rowSpec struct {
		coefs []float64
		op    Op
		rhs   float64
	}
	rows := make([]rowSpec, m)
	for i, con := range p.cons {
		coefs := append([]float64(nil), con.coefs...)
		op, rhs := con.op, con.rhs
		if rhs < 0 {
			for j := range coefs {
				coefs[j] = -coefs[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = rowSpec{coefs: coefs, op: op, rhs: rhs}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
		if r.op != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows × (total+1) columns, last column is rhs.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	artRows := []int{}
	// slackOf[i] records constraint i's slack/surplus column (−1 for
	// EQ), and flip[i] whether normalization negated the row; both feed
	// dual recovery.
	slackOf := make([]int, m)
	flip := make([]bool, m)
	for i, con := range p.cons {
		flip[i] = con.rhs < 0
	}
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.coefs)
		row[total] = r.rhs
		slackOf[i] = -1
		switch r.op {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackOf[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackOf[i] = slackCol
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
			artRows = append(artRows, i)
		case EQ:
			row[artCol] = 1
			basis[i] = artCol
			artCol++
			artRows = append(artRows, i)
		}
		t[i] = row
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for j := n + nSlack; j < total; j++ {
			obj[j] = 1
		}
		// Reduce objective over basic artificial rows.
		for _, i := range artRows {
			for j := 0; j <= total; j++ {
				obj[j] -= t[i][j]
			}
		}
		if err := simplexIterate(t, obj, basis, total); err != nil {
			return nil, err
		}
		if -obj[total] > 1e-6 {
			return nil, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis.
		for i := range basis {
			if basis[i] >= n+nSlack {
				pivoted := false
				for j := 0; j < n+nSlack; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(t, basis, i, j, total)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Row is all zeros among real variables: redundant
					// constraint; it stays with the artificial at value 0.
					_ = pivoted
				}
			}
		}
	}

	// Phase 2: minimize c over decision variables (artificial columns
	// are forbidden: force them out by giving them +inf-ish cost, i.e.
	// simply never pivot on them — we zero their columns instead).
	for i := range t {
		for j := n + nSlack; j < total; j++ {
			t[i][j] = 0
		}
	}
	obj := make([]float64, total+1)
	copy(obj, p.c)
	if p.maximize {
		for j := 0; j < n; j++ {
			obj[j] = -obj[j]
		}
	}
	// Reduce objective over current basis.
	for i, b := range basis {
		if b < total && math.Abs(obj[b]) > eps {
			f := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= f * t[i][j]
			}
		}
	}
	if err := simplexIterate(t, obj, basis, n+nSlack); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.c[j] * x[j]
	}
	// Recover duals from the reduced costs of the slack/surplus columns:
	// for the internal minimization, y_i = −rc(slack_i) for a ≤ row and
	// +rc(surplus_i) for a ≥ row; rows normalized by negation flip the
	// sign once more, and a maximize problem flips it again (its duals
	// are those of the negated objective).
	duals := make([]float64, m)
	for i := range rows {
		if slackOf[i] < 0 {
			duals[i] = math.NaN()
			continue
		}
		y := obj[slackOf[i]]
		if rows[i].op == LE {
			y = -y
		}
		if flip[i] {
			y = -y
		}
		if p.maximize {
			y = -y
		}
		duals[i] = y
	}
	return &Solution{X: x, Objective: objVal, Duals: duals}, nil
}

// simplexIterate runs primal simplex on the tableau until optimal,
// pivoting only on columns [0, allowCols). obj is the reduced objective
// row (length total+1 where the last entry is the negated objective
// value). Bland's rule: choose the lowest-index entering column with a
// negative reduced cost and the lowest-index leaving row among ties.
func simplexIterate(t [][]float64, obj []float64, basis []int, allowCols int) error {
	total := len(obj) - 1
	for iter := 0; ; iter++ {
		if iter > 10000 {
			return errors.New("lp: iteration limit exceeded")
		}
		enter := -1
		for j := 0; j < allowCols; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		leave := -1
		best := math.Inf(1)
		for i := range t {
			if t[i][enter] > eps {
				ratio := t[i][total] / t[i][enter]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(t, basis, leave, enter, total)
		// Update reduced costs.
		f := obj[enter]
		if math.Abs(f) > eps {
			for j := 0; j <= total; j++ {
				obj[j] -= f * t[leave][j]
			}
		}
	}
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter, total int) {
	pr := t[leave]
	pv := pr[enter]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if math.Abs(f) <= eps {
			continue
		}
		for j := 0; j <= total; j++ {
			t[i][j] -= f * pr[j]
		}
	}
	basis[leave] = enter
}
